// Head-to-head comparison of every partitioner in the suite on one circuit
// — a miniature of the paper's Tables 2-4.
//
//   ./compare_partitioners [--circuit struct] [--runs 10] [--balance 50-50]
#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/window.h"
#include "core/prop_partitioner.h"
#include "fm/fm_partitioner.h"
#include "hypergraph/mcnc_suite.h"
#include "hypergraph/stats.h"
#include "kl/kl_partitioner.h"
#include "la/la_partitioner.h"
#include "partition/runner.h"
#include "placement/paraboli.h"
#include "spectral/eig1.h"
#include "spectral/melo.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::validate_flags(
          args, {"circuit", "runs", "balance"},
          "[--circuit NAME] [--runs N] [--balance 50-50|45-55]")) {
    return 2;
  }
  const prop::Hypergraph g =
      prop::make_mcnc_circuit(args.get_or("circuit", "struct"));
  const int runs = static_cast<int>(args.get_int_or("runs", 10));
  const prop::BalanceConstraint balance =
      args.get_or("balance", "50-50") == "45-55"
          ? prop::BalanceConstraint::forty_five(g)
          : prop::BalanceConstraint::fifty_fifty(g);

  std::printf("%s\n", prop::describe(g).c_str());
  std::printf("%-10s %10s %10s %12s\n", "method", "best cut", "mean cut",
              "sec/run");

  struct Entry {
    std::unique_ptr<prop::Bipartitioner> algo;
    int runs;
  };
  std::vector<Entry> entries;
  entries.push_back({std::make_unique<prop::KlPartitioner>(), runs});
  entries.push_back({std::make_unique<prop::FmPartitioner>(), runs});
  entries.push_back({std::make_unique<prop::LaPartitioner>(prop::LaConfig{2}), runs});
  entries.push_back({std::make_unique<prop::LaPartitioner>(prop::LaConfig{3}), runs});
  entries.push_back({std::make_unique<prop::PropPartitioner>(), runs});
  entries.push_back({std::make_unique<prop::WindowPartitioner>(), 1});
  entries.push_back({std::make_unique<prop::Eig1Partitioner>(), 1});
  entries.push_back({std::make_unique<prop::MeloPartitioner>(), 1});
  entries.push_back({std::make_unique<prop::ParaboliPartitioner>(), 1});

  for (const auto& entry : entries) {
    const prop::MultiRunResult r =
        prop::run_many(*entry.algo, g, balance, entry.runs, 1);
    std::printf("%-10s %10.0f %10.1f %12.4f\n", entry.algo->name().c_str(),
                r.best_cut(), r.mean_cut(), r.seconds_per_run);
  }
  return 0;
}
