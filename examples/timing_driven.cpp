// Timing-driven partitioning — the paper's Sec. 1 motivation: "if we are
// trying to minimize timing, then a critical net is assigned more weight
// ... to ensure that the length of critical or near-critical nets are kept
// as short as possible".
//
// Pipeline: unit-delay STA over the netlist -> per-net criticality ->
// net weights 1 + alpha * criticality -> PROP (AVL tree handles weighted
// nets natively).  Compares how many *critical* nets are cut with and
// without the weighting.
//
//   ./timing_driven [--circuit t5] [--alpha 4] [--runs 10] [--seed 1]
#include <cstdio>

#include "core/prop_partitioner.h"
#include "hypergraph/mcnc_suite.h"
#include "hypergraph/stats.h"
#include "partition/partition.h"
#include "partition/runner.h"
#include "timing/timing_graph.h"
#include "util/cli.h"

namespace {

struct CutSummary {
  double raw_cut = 0.0;       ///< number of cut nets
  double critical_cut = 0.0;  ///< cut nets with criticality >= 0.9
};

CutSummary summarize(const prop::Hypergraph& g, const prop::TimingAnalysis& sta,
                     const std::vector<std::uint8_t>& side) {
  const prop::Partition part(g, side);
  CutSummary s;
  for (prop::NetId n = 0; n < g.num_nets(); ++n) {
    if (!part.is_cut(n)) continue;
    s.raw_cut += 1.0;
    if (sta.net_criticality(n) >= 0.9) s.critical_cut += 1.0;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::validate_flags(
          args, {"circuit", "alpha", "runs", "seed"},
          "[--circuit NAME] [--alpha A] [--runs N] [--seed N]")) {
    return 2;
  }
  const prop::Hypergraph g =
      prop::make_mcnc_circuit(args.get_or("circuit", "t5"));
  const double alpha = args.get_double_or("alpha", 4.0);
  const int runs = static_cast<int>(args.get_int_or("runs", 10));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));

  std::printf("%s\n", prop::describe(g).c_str());
  const prop::TimingAnalysis sta = prop::analyze_timing(g);
  std::size_t critical_nets = 0;
  for (prop::NetId n = 0; n < g.num_nets(); ++n) {
    if (sta.net_criticality(n) >= 0.9) ++critical_nets;
  }
  std::printf("critical path %.0f, %zu near-critical nets, %zu cycle edges "
              "broken\n\n",
              sta.critical_path, critical_nets, sta.back_edges);

  const prop::BalanceConstraint balance = prop::BalanceConstraint::forty_five(g);
  prop::PropPartitioner prop_algo;

  // Baseline: unit weights (pure min-cut).
  const prop::MultiRunResult plain = prop::run_many(prop_algo, g, balance, runs, seed);
  const CutSummary plain_summary = summarize(g, sta, plain.best.side);

  // Timing-driven: critical nets weighted up, then partition the weighted
  // netlist but report cuts on the original.
  const prop::Hypergraph weighted = prop::apply_timing_weights(g, sta, alpha);
  const prop::BalanceConstraint wbalance =
      prop::BalanceConstraint::forty_five(weighted);
  const prop::MultiRunResult timed =
      prop::run_many(prop_algo, weighted, wbalance, runs, seed);
  const CutSummary timed_summary = summarize(g, sta, timed.best.side);

  std::printf("%-18s %10s %16s\n", "objective", "cut nets", "critical cut");
  std::printf("%-18s %10.0f %16.0f\n", "min-cut", plain_summary.raw_cut,
              plain_summary.critical_cut);
  std::printf("%-18s %10.0f %16.0f\n", "timing-driven", timed_summary.raw_cut,
              timed_summary.critical_cut);
  std::printf("\nalpha = %.1f: the weighted objective trades a few extra cut "
              "nets for fewer critical ones.\n",
              alpha);
  return 0;
}
