// Walkthrough of the paper's Figure 1: why PROP's probabilistic gain
// separates nodes that FM and LA cannot.
//
// Prints the FM gains (Fig. 1a), the LA-3 gain vectors (Fig. 1a), and the
// probabilistic gains after the second gain/probability iteration
// (Fig. 1c), then shows which node each method would move first.
#include <cstdio>

#include "core/figure1_example.h"
#include "core/prob_gain.h"
#include "fm/fm_gains.h"
#include "la/la_gains.h"
#include "partition/partition.h"

int main() {
  const prop::Figure1Example ex = prop::make_figure1_example();
  const prop::Partition part(ex.graph, ex.side);

  std::printf("Figure 1 netlist: %u nodes, %u nets, cut = %.0f\n\n",
              ex.graph.num_nodes(), ex.graph.num_nets(), part.cut_cost());

  prop::LaGainCalculator la(part, 3);
  prop::ProbGainCalculator calc(part);
  for (prop::NodeId u = 0; u < ex.graph.num_nodes(); ++u) {
    calc.set_probability(u, ex.initial_probability[u]);
  }

  std::printf("%-6s %8s %10s %14s %8s\n", "node", "FM gain", "LA-3 gain",
              "PROP gain", "p(u)");
  int best_prop = 1;
  for (int k = 1; k <= 11; ++k) {
    const prop::NodeId u = ex.node(k);
    const double g = calc.gain(u);
    if (g > calc.gain(ex.node(best_prop))) best_prop = k;
    std::printf("%-6d %8.0f %10s %14.4f %8.2f\n", k, prop::fm_gain(part, u),
                la.gain(u).to_string().c_str(), g, ex.initial_probability[u]);
  }

  std::printf(
      "\nFM:   nodes 1, 2, 3 tie at gain 2 - FM may well move node 1 first.\n"
      "LA-3: (2,0,1) > (2,0,0) separates node 1, but nodes 2 and 3 still "
      "tie.\n"
      "PROP: gains 2.0016 < 2.04 < 2.64 - node %d is correctly preferred,\n"
      "      because its net n11 leads to nodes 10/11 whose moves free "
      "three\n"
      "      more nets (n5, n8, n11) from the cut.\n",
      best_prop);
  return best_prop == 3 ? 0 : 1;
}
