// Recursive k-way partitioning with PROP — the paper's Sec. 1 framing
// ("each subset is further partitioned into two smaller subsets with a
// minimum cut, and so forth") and one of its named future applications
// (multiple-FPGA partitioning).
//
//   ./recursive_kway [--circuit p2] [--k 8] [--seed 1] [--tolerance 0.1]
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/prop_partitioner.h"
#include "fm/fm_partitioner.h"
#include "hypergraph/mcnc_suite.h"
#include "hypergraph/stats.h"
#include "kway/kway_refine.h"
#include "partition/recursive.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::validate_flags(
          args, {"circuit", "k", "seed", "tolerance"},
          "[--circuit NAME] [--k K] [--seed N] [--tolerance T]")) {
    return 2;
  }
  const prop::Hypergraph g =
      prop::make_mcnc_circuit(args.get_or("circuit", "p2"));
  const auto k = static_cast<prop::NodeId>(args.get_int_or("k", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  prop::KWayOptions options;
  options.tolerance = args.get_double_or("tolerance", 0.1);

  std::printf("%s\n", prop::describe(g).c_str());
  std::printf("recursive %u-way partition (tolerance %.0f%%)\n\n", k,
              options.tolerance * 100.0);

  prop::PropPartitioner prop_algo;
  prop::FmPartitioner fm;
  for (prop::Bipartitioner* algo :
       std::vector<prop::Bipartitioner*>{&fm, &prop_algo}) {
    prop::KWayResult r = prop::recursive_bisection(*algo, g, k, seed, options);
    std::vector<std::int64_t> sizes(k, 0);
    for (prop::NodeId u = 0; u < g.num_nodes(); ++u) {
      sizes[r.part[u]] += g.node_size(u);
    }
    std::printf("%-6s recursive cut = %6.0f   part sizes:", algo->name().c_str(),
                r.cut_cost);
    for (const auto s : sizes) std::printf(" %lld", static_cast<long long>(s));
    std::printf("\n");

    // Direct k-way polish (the paper's Sec. 5 future-work direction): move
    // nodes between arbitrary parts to claw back what the one-bisection-at-
    // a-time decomposition left on the table.  The window accepts the
    // spread recursive bisection actually produced (its per-split tolerance
    // compounds across levels), so polishing never has to legalize.
    const double share = static_cast<double>(g.total_node_size()) / k;
    double spread = options.tolerance;
    for (const auto s : sizes) {
      spread = std::max(spread, std::abs(static_cast<double>(s) - share) / share);
    }
    const prop::KWayRefineOutcome polished = prop::kway_refine(
        g, r.part, k, seed,
        {prop::KWayObjective::kCut, spread + 0.01, 16});
    std::printf("%-6s + k-way refine = %6.0f   (%d moves)\n",
                algo->name().c_str(), polished.cut_cost, polished.moves);
  }
  return 0;
}
