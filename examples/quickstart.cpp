// Quickstart: generate a circuit, bipartition it with PROP, inspect the
// result.
//
//   ./quickstart [--circuit p2] [--runs 20] [--seed 1] [--balance 45-55]
//   ./quickstart --hgr my_netlist.hgr
#include <cstdio>
#include <string>

#include "core/prop_partitioner.h"
#include "hypergraph/hgr_io.h"
#include "hypergraph/mcnc_suite.h"
#include "hypergraph/stats.h"
#include "partition/runner.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::validate_flags(
          args, {"hgr", "circuit", "runs", "seed", "balance"},
          "[--circuit NAME | --hgr FILE] [--runs N] [--seed N] "
          "[--balance 45-55|50-50]")) {
    return 2;
  }

  // 1. Get a netlist: a bundled Table 1 stand-in, or any hMETIS .hgr file.
  prop::Hypergraph circuit;
  if (const auto path = args.get("hgr")) {
    circuit = prop::read_hgr_file(*path);
  } else {
    circuit = prop::make_mcnc_circuit(args.get_or("circuit", "p2"));
  }
  std::printf("circuit  %s\n", prop::describe(circuit).c_str());

  // 2. Pick a balance criterion (the paper uses 50-50% and 45-55%).
  const std::string balance_name = args.get_or("balance", "45-55");
  const prop::BalanceConstraint balance =
      balance_name == "50-50" ? prop::BalanceConstraint::fifty_fifty(circuit)
                              : prop::BalanceConstraint::forty_five(circuit);

  // 3. Run PROP from several random starts and keep the best cut.
  prop::PropPartitioner prop_algo;  // paper defaults: pinit=0.95, pmin=0.4, ...
  const int runs = static_cast<int>(args.get_int_or("runs", 20));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const prop::MultiRunResult result =
      prop::run_many(prop_algo, circuit, balance, runs, seed);

  // 4. Inspect.
  std::printf("balance  %s (side-0 window [%lld, %lld])\n", balance_name.c_str(),
              static_cast<long long>(balance.lo()),
              static_cast<long long>(balance.hi()));
  std::printf("runs     %d\n", runs);
  std::printf("best cut %.0f nets\n", result.best_cut());
  std::printf("mean cut %.1f nets\n", result.mean_cut());
  std::printf("time     %.3f s total, %.4f s/run\n", result.total_seconds,
              result.seconds_per_run);

  std::int64_t side0 = 0;
  for (prop::NodeId u = 0; u < circuit.num_nodes(); ++u) {
    if (result.best.side[u] == 0) side0 += circuit.node_size(u);
  }
  std::printf("sizes    %lld | %lld\n", static_cast<long long>(side0),
              static_cast<long long>(circuit.total_node_size() - side0));
  return 0;
}
