// Building a netlist by hand with HypergraphBuilder, partitioning it with
// weighted nets (the paper's timing-driven motivation: critical nets get
// higher cost so the partitioner keeps them uncut), and exporting to .hgr.
#include <cstdio>
#include <sstream>

#include "core/prop_partitioner.h"
#include "fm/fm_partitioner.h"
#include "hypergraph/builder.h"
#include "hypergraph/hgr_io.h"
#include "partition/partition.h"
#include "partition/runner.h"

int main() {
  // A small datapath: two 4-cell ALU slices exchanging a critical bus.
  // Nets: local connections cost 1; the bus between slices costs 5 — a
  // timing-critical net we would rather not cut (paper Sec. 1: "a critical
  // net is assigned more weight").
  prop::HypergraphBuilder builder(8);
  builder.set_name("datapath");
  // Slice A: cells 0-3.
  builder.add_net({0, 1});
  builder.add_net({1, 2});
  builder.add_net({2, 3});
  builder.add_net({0, 2, 3});
  // Slice B: cells 4-7.
  builder.add_net({4, 5});
  builder.add_net({5, 6});
  builder.add_net({6, 7});
  builder.add_net({4, 6, 7});
  // Critical inter-slice bus and a cheap control net.
  builder.add_net({3, 4}, 5.0);
  builder.add_net({0, 7}, 1.0);
  const prop::Hypergraph g = std::move(builder).build();

  const prop::BalanceConstraint balance = prop::BalanceConstraint::fifty_fifty(g);

  // PROP (AVL-tree based) handles weighted nets natively; FM falls back to
  // its tree variant — exactly the trade-off discussed in the paper's
  // Sec. 4 timing analysis.
  prop::PropPartitioner prop_algo;
  const prop::MultiRunResult result = prop::run_many(prop_algo, g, balance, 5, 3);

  std::printf("datapath: 8 cells, 10 nets (bus cost 5)\n");
  std::printf("best cut cost = %.0f\n", result.best_cut());
  std::printf("assignment   =");
  for (prop::NodeId u = 0; u < 8; ++u) {
    std::printf(" %d", static_cast<int>(result.best.side[u]));
  }
  std::printf("\n");

  // Splitting slice-vs-slice cuts the bus (cost 5) plus the control net;
  // any split keeping the bus whole must divide a slice instead.  The
  // weighted objective should steer the partitioner away from the bus.
  prop::Partition best(g, result.best.side);
  const bool bus_cut = best.is_cut(8);
  std::printf("critical bus cut? %s (cut nets = %zu)\n", bus_cut ? "yes" : "no",
              best.cut_nets());

  // Round-trip through the interchange format.
  std::ostringstream hgr;
  prop::write_hgr(g, hgr);
  std::printf("\n.hgr export:\n%s", hgr.str().c_str());
  return 0;
}
