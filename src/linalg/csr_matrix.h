// Sparse symmetric matrix in CSR form — substrate for the spectral (EIG1,
// MELO) and analytic-placement (PARABOLI) comparators.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace prop {

struct Triplet {
  std::uint32_t row = 0;
  std::uint32_t col = 0;
  double value = 0.0;
};

class CsrMatrix {
 public:
  CsrMatrix() = default;

  /// Builds an n x n matrix; duplicate (row, col) entries are summed.
  /// Only the entries given are stored — callers wanting symmetry must
  /// provide both (i, j) and (j, i) (see laplacian.cpp).
  static CsrMatrix from_triplets(std::uint32_t n, std::vector<Triplet> entries);

  std::uint32_t size() const noexcept {
    return offsets_.empty() ? 0 : static_cast<std::uint32_t>(offsets_.size() - 1);
  }
  std::size_t nnz() const noexcept { return values_.size(); }

  /// y = A * x.  Spans must have length size().
  void multiply(std::span<const double> x, std::span<double> y) const;

  /// Copy of the diagonal (0 where absent) — Jacobi preconditioner.
  std::vector<double> diagonal() const;

  std::span<const std::uint32_t> row_cols(std::uint32_t r) const noexcept {
    return {cols_.data() + offsets_[r], offsets_[r + 1] - offsets_[r]};
  }
  std::span<const double> row_values(std::uint32_t r) const noexcept {
    return {values_.data() + offsets_[r], offsets_[r + 1] - offsets_[r]};
  }

 private:
  std::vector<std::size_t> offsets_;
  std::vector<std::uint32_t> cols_;
  std::vector<double> values_;
};

}  // namespace prop
