// Jacobi-preconditioned conjugate gradient for SPD systems — used by the
// PARABOLI-style quadratic placer.
#pragma once

#include <vector>

#include "linalg/csr_matrix.h"
#include "runtime/run_context.h"

namespace prop {

struct CgOptions {
  int max_iterations = 500;
  double tolerance = 1e-8;  ///< relative residual ||r|| / ||b||

  /// Optional runtime context: the iteration polls its cancel token (the
  /// partial iterate in x is still the best solution so far) and honors an
  /// injected cg-stall, which stops the iteration immediately.  Null = inert.
  const RunContext* context = nullptr;
};

struct CgResult {
  int iterations = 0;
  double residual = 0.0;  ///< final relative residual
  bool converged = false;
  bool interrupted = false;  ///< cancel/injection stopped the iteration early
};

/// Solves A x = b in place (x is the starting guess and the solution).
/// A must be symmetric positive definite.
CgResult conjugate_gradient(const CsrMatrix& A, const std::vector<double>& b,
                            std::vector<double>& x,
                            const CgOptions& options = {});

}  // namespace prop
