// Jacobi-preconditioned conjugate gradient for SPD systems — used by the
// PARABOLI-style quadratic placer.
#pragma once

#include <vector>

#include "linalg/csr_matrix.h"

namespace prop {

struct CgOptions {
  int max_iterations = 500;
  double tolerance = 1e-8;  ///< relative residual ||r|| / ||b||
};

struct CgResult {
  int iterations = 0;
  double residual = 0.0;  ///< final relative residual
  bool converged = false;
};

/// Solves A x = b in place (x is the starting guess and the solution).
/// A must be symmetric positive definite.
CgResult conjugate_gradient(const CsrMatrix& A, const std::vector<double>& b,
                            std::vector<double>& x,
                            const CgOptions& options = {});

}  // namespace prop
