#include "linalg/vector_ops.h"

#include <cmath>

namespace prop {

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(std::span<const double> a) { return std::sqrt(dot(a, a)); }

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scale(std::span<double> x, double alpha) {
  for (double& v : x) v *= alpha;
}

void project_out(std::span<double> v, std::span<const double> u) {
  const double uu = dot(u, u);
  if (uu <= 0.0) return;
  const double coeff = dot(v, u) / uu;
  for (std::size_t i = 0; i < v.size(); ++i) v[i] -= coeff * u[i];
}

double normalize(std::span<double> v) {
  const double n = norm2(v);
  if (n > 0.0) scale(v, 1.0 / n);
  return n;
}

}  // namespace prop
