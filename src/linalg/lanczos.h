// Lanczos eigensolver for the smallest eigenpairs of a sparse symmetric
// matrix — used to extract Fiedler (EIG1) and higher (MELO) eigenvectors of
// netlist Laplacians.
//
// Full reorthogonalization keeps the Krylov basis numerically orthogonal
// (circuit Laplacians are small enough here that the O(n * iters^2) cost is
// negligible next to the partitioners).  For Laplacians the trivial
// constant eigenvector is deflated by projecting it out of every basis
// vector.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/csr_matrix.h"
#include "util/rng.h"

namespace prop {

struct LanczosOptions {
  int max_iterations = 160;  ///< Krylov dimension cap
  double tolerance = 1e-8;   ///< residual tolerance on wanted Ritz pairs
  bool deflate_constant = true;  ///< project out the all-ones vector
};

struct EigenResult {
  std::vector<double> values;                ///< ascending
  std::vector<std::vector<double>> vectors;  ///< unit-norm, same order
};

/// Returns the `k` smallest eigenpairs of A (excluding the deflated
/// constant direction when deflate_constant is set).  Deterministic in rng.
EigenResult smallest_eigenpairs(const CsrMatrix& A, int k, Rng& rng,
                                const LanczosOptions& options = {});

/// Dense symmetric tridiagonal eigensolver (EISPACK tql2): diag/offdiag of
/// length m (offdiag[0] unused); returns eigenvalues ascending in `diag`
/// and accumulates eigenvectors into the m x m row-major matrix `z`
/// (initialized to identity by the function).  Exposed for tests.
bool tridiagonal_eigen(std::vector<double>& diag, std::vector<double>& offdiag,
                       std::vector<double>& z);

}  // namespace prop
