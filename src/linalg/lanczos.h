// Lanczos eigensolver for the smallest eigenpairs of a sparse symmetric
// matrix — used to extract Fiedler (EIG1) and higher (MELO) eigenvectors of
// netlist Laplacians.
//
// Full reorthogonalization keeps the Krylov basis numerically orthogonal
// (circuit Laplacians are small enough here that the O(n * iters^2) cost is
// negligible next to the partitioners).  For Laplacians the trivial
// constant eigenvector is deflated by projecting it out of every basis
// vector.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/csr_matrix.h"
#include "runtime/run_context.h"
#include "util/rng.h"

namespace prop {

struct LanczosOptions {
  int max_iterations = 160;  ///< Krylov dimension cap
  double tolerance = 1e-8;   ///< residual tolerance on wanted Ritz pairs
  bool deflate_constant = true;  ///< project out the all-ones vector

  /// Optional runtime context: the Krylov loop polls its cancel token
  /// (returning the Ritz pairs of the basis built so far), and the
  /// lanczos-stall fault site can force a stalled result.  Null = inert.
  const RunContext* context = nullptr;
};

struct EigenResult {
  std::vector<double> values;                ///< ascending
  std::vector<std::vector<double>> vectors;  ///< unit-norm, same order

  /// The tridiagonal QL iteration failed to converge (or a stall was
  /// injected): values/vectors are zero-padded placeholders and must not be
  /// trusted.  Callers degrade (e.g. EIG1/MELO fall back to a random
  /// ordering) instead of aborting.
  bool stalled = false;

  /// Cancellation truncated the Krylov basis: the pairs are genuine Ritz
  /// approximations of the partial basis, usable as a degraded result.
  bool truncated = false;
};

/// Returns the `k` smallest eigenpairs of A (excluding the deflated
/// constant direction when deflate_constant is set).  Deterministic in rng.
/// Never throws on numerical failure — check EigenResult::stalled.
EigenResult smallest_eigenpairs(const CsrMatrix& A, int k, Rng& rng,
                                const LanczosOptions& options = {});

/// Dense symmetric tridiagonal eigensolver (EISPACK tql2): diag/offdiag of
/// length m (offdiag[0] unused); returns eigenvalues ascending in `diag`
/// and accumulates eigenvectors into the m x m row-major matrix `z`
/// (initialized to identity by the function).  Exposed for tests.
bool tridiagonal_eigen(std::vector<double>& diag, std::vector<double>& offdiag,
                       std::vector<double>& z);

}  // namespace prop
