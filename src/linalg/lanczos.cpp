#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "linalg/vector_ops.h"

namespace prop {

bool tridiagonal_eigen(std::vector<double>& d, std::vector<double>& e,
                       std::vector<double>& z) {
  // EISPACK tql2 / Numerical-Recipes tqli, 0-based.  e[i] couples d[i] and
  // d[i+1]; e[n-1] is workspace.  z accumulates the rotations (initialized
  // to identity here); eigenvector j ends up in column j of the row-major
  // n x n matrix z.
  const int n = static_cast<int>(d.size());
  if (static_cast<int>(e.size()) < n) e.resize(n, 0.0);
  z.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i) z[static_cast<std::size_t>(i) * n + i] = 1.0;
  if (n == 0) return true;
  e[n - 1] = 0.0;

  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::abs(d[m]) + std::abs(d[m + 1]);
        if (std::abs(e[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        if (iter++ == 64) return false;
        double g = (d[l + 1] - d[l]) / (2.0 * e[l]);
        double r = std::hypot(g, 1.0);
        g = d[m] - d[l] + e[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int i;
        for (i = m - 1; i >= l; --i) {
          double f = s * e[i];
          const double b = c * e[i];
          r = std::hypot(f, g);
          e[i + 1] = r;
          if (r == 0.0) {
            d[i + 1] -= p;
            e[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = d[i + 1] - p;
          r = (d[i] - g) * s + 2.0 * c * b;
          p = s * r;
          d[i + 1] = g + p;
          g = c * r - b;
          for (int k = 0; k < n; ++k) {
            const std::size_t row = static_cast<std::size_t>(k) * n;
            f = z[row + i + 1];
            z[row + i + 1] = s * z[row + i] + c * f;
            z[row + i] = c * z[row + i] - s * f;
          }
        }
        if (r == 0.0 && i >= l) continue;
        d[l] -= p;
        e[l] = g;
        e[m] = 0.0;
      }
    } while (m != l);
  }
  return true;
}

namespace {

/// Zero-padded placeholder result for a stalled solve: k entries so callers
/// indexing values[j]/vectors[j] stay in bounds while they degrade.
EigenResult stalled_result(std::uint32_t n, int k) {
  EigenResult out;
  out.stalled = true;
  for (int i = 0; i < k; ++i) {
    out.values.push_back(0.0);
    out.vectors.emplace_back(n, 0.0);
  }
  return out;
}

}  // namespace

EigenResult smallest_eigenpairs(const CsrMatrix& A, int k, Rng& rng,
                                const LanczosOptions& options) {
  const std::uint32_t n = A.size();
  if (k < 1) throw std::invalid_argument("lanczos: k must be >= 1");
  if (n == 0) return {};
  const RunContext* ctx = options.context;
  if (ctx && ctx->inject(FaultSite::kLanczosStall)) {
    return stalled_result(n, k);
  }

  const std::vector<double> ones(n, 1.0);
  const int dim_cap = std::min<int>(options.max_iterations, static_cast<int>(n));

  std::vector<std::vector<double>> basis;
  std::vector<double> alpha;
  std::vector<double> beta;  // beta[j] couples basis[j] and basis[j+1]

  const auto full_orthogonalize = [&](std::vector<double>& w) {
    if (options.deflate_constant) project_out(w, ones);
    for (const auto& v : basis) project_out(w, v);
    // Second sweep guards against cancellation in the first.
    if (options.deflate_constant) project_out(w, ones);
    for (const auto& v : basis) project_out(w, v);
  };

  const auto random_start = [&](std::vector<double>& w) {
    for (auto& x : w) x = rng.uniform() - 0.5;
    full_orthogonalize(w);
    return normalize(w) > 1e-10;
  };

  std::vector<double> v(n);
  if (!random_start(v)) {
    // Space orthogonal to ones is empty (n == 1 with deflation).
    EigenResult trivial;
    for (int i = 0; i < k; ++i) {
      trivial.values.push_back(0.0);
      trivial.vectors.emplace_back(n, 0.0);
    }
    return trivial;
  }
  basis.push_back(v);

  bool truncated = false;
  std::vector<double> w(n);
  while (static_cast<int>(basis.size()) < dim_cap) {
    if (ctx && ctx->should_stop()) {
      // Budget hit mid-solve: the basis built so far still yields genuine
      // (coarser) Ritz pairs — an anytime result, not an abort.
      truncated = true;
      break;
    }
    const std::size_t j = basis.size() - 1;
    A.multiply(basis[j], w);
    alpha.resize(j + 1);
    alpha[j] = dot(w, basis[j]);
    full_orthogonalize(w);
    const double b = norm2(w);
    if (b < 1e-10) {
      // Invariant subspace exhausted: restart in a fresh direction (handles
      // disconnected graphs / multiple eigenvalues).
      std::vector<double> fresh(n);
      if (!random_start(fresh)) break;
      beta.push_back(0.0);
      basis.push_back(std::move(fresh));
      continue;
    }
    scale(std::span<double>(w), 1.0 / b);
    beta.push_back(b);
    basis.push_back(w);
  }
  // alpha for the final vector.
  {
    const std::size_t j = basis.size() - 1;
    if (alpha.size() < basis.size()) {
      A.multiply(basis[j], w);
      alpha.resize(basis.size());
      alpha[j] = dot(w, basis[j]);
    }
  }

  const int m = static_cast<int>(basis.size());
  std::vector<double> d(alpha.begin(), alpha.begin() + m);
  std::vector<double> e(m, 0.0);
  for (int i = 0; i + 1 < m; ++i) e[i] = beta[i];
  std::vector<double> z;
  if (!tridiagonal_eigen(d, e, z)) {
    // Reported as data, not an exception: a stalled QL iteration must not
    // abort a whole EIG1/MELO experiment (callers degrade instead).
    return stalled_result(n, k);
  }

  std::vector<int> order(m);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return d[a] < d[b]; });

  EigenResult out;
  out.truncated = truncated;
  const int take = std::min(k, m);
  for (int t = 0; t < take; ++t) {
    const int col = order[t];
    out.values.push_back(d[col]);
    std::vector<double> x(n, 0.0);
    for (int j = 0; j < m; ++j) {
      axpy(z[static_cast<std::size_t>(j) * m + col], basis[j], x);
    }
    normalize(x);
    out.vectors.push_back(std::move(x));
  }
  // Pad (degenerate tiny systems) so callers can rely on k entries.
  while (static_cast<int>(out.values.size()) < k) {
    out.values.push_back(out.values.empty() ? 0.0 : out.values.back());
    out.vectors.emplace_back(n, 0.0);
  }
  return out;
}

}  // namespace prop
