#include "linalg/cg.h"

#include <cmath>
#include <stdexcept>

#include "linalg/vector_ops.h"

namespace prop {

CgResult conjugate_gradient(const CsrMatrix& A, const std::vector<double>& b,
                            std::vector<double>& x, const CgOptions& options) {
  const std::size_t n = A.size();
  if (b.size() != n || x.size() != n) {
    throw std::invalid_argument("cg: dimension mismatch");
  }
  CgResult out;
  const RunContext* ctx = options.context;
  if (ctx && ctx->inject(FaultSite::kCgStall)) {
    out.interrupted = true;
    out.residual = 1.0;
    return out;
  }
  const double bnorm = norm2(b);
  if (bnorm == 0.0) {
    std::fill(x.begin(), x.end(), 0.0);
    out.converged = true;
    return out;
  }

  std::vector<double> inv_diag = A.diagonal();
  for (auto& dv : inv_diag) dv = dv > 0.0 ? 1.0 / dv : 1.0;

  std::vector<double> r(n);
  std::vector<double> zv(n);
  std::vector<double> p(n);
  std::vector<double> Ap(n);

  A.multiply(x, r);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - r[i];
  for (std::size_t i = 0; i < n; ++i) zv[i] = inv_diag[i] * r[i];
  p = zv;
  double rz = dot(r, zv);

  for (int it = 0; it < options.max_iterations; ++it) {
    if (ctx && ctx->should_stop()) {
      // x holds the best iterate so far; report and let the caller degrade.
      out.interrupted = true;
      break;
    }
    out.iterations = it + 1;
    A.multiply(p, Ap);
    const double pAp = dot(p, Ap);
    if (pAp <= 0.0) break;  // not SPD (or p == 0)
    const double alpha = rz / pAp;
    axpy(alpha, p, x);
    axpy(-alpha, Ap, r);
    const double rel = norm2(r) / bnorm;
    if (rel < options.tolerance) {
      out.residual = rel;
      out.converged = true;
      return out;
    }
    for (std::size_t i = 0; i < n; ++i) zv[i] = inv_diag[i] * r[i];
    const double rz_next = dot(r, zv);
    const double beta = rz_next / rz;
    rz = rz_next;
    for (std::size_t i = 0; i < n; ++i) p[i] = zv[i] + beta * p[i];
  }
  out.residual = norm2(r) / bnorm;
  out.converged = out.residual < options.tolerance;
  return out;
}

}  // namespace prop
