#include "linalg/csr_matrix.h"

#include <algorithm>
#include <stdexcept>

namespace prop {

CsrMatrix CsrMatrix::from_triplets(std::uint32_t n,
                                   std::vector<Triplet> entries) {
  for (const Triplet& t : entries) {
    if (t.row >= n || t.col >= n) {
      throw std::out_of_range("csr: triplet index out of range");
    }
  }
  std::sort(entries.begin(), entries.end(),
            [](const Triplet& a, const Triplet& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });

  CsrMatrix m;
  m.offsets_.assign(n + 1, 0);
  m.cols_.reserve(entries.size());
  m.values_.reserve(entries.size());
  std::size_t i = 0;
  for (std::uint32_t r = 0; r < n; ++r) {
    while (i < entries.size() && entries[i].row == r) {
      const std::uint32_t c = entries[i].col;
      double v = 0.0;
      while (i < entries.size() && entries[i].row == r && entries[i].col == c) {
        v += entries[i].value;
        ++i;
      }
      m.cols_.push_back(c);
      m.values_.push_back(v);
    }
    m.offsets_[r + 1] = m.cols_.size();
  }
  return m;
}

void CsrMatrix::multiply(std::span<const double> x, std::span<double> y) const {
  const std::uint32_t n = size();
  for (std::uint32_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (std::size_t i = offsets_[r]; i < offsets_[r + 1]; ++i) {
      acc += values_[i] * x[cols_[i]];
    }
    y[r] = acc;
  }
}

std::vector<double> CsrMatrix::diagonal() const {
  const std::uint32_t n = size();
  std::vector<double> d(n, 0.0);
  for (std::uint32_t r = 0; r < n; ++r) {
    for (std::size_t i = offsets_[r]; i < offsets_[r + 1]; ++i) {
      if (cols_[i] == r) d[r] += values_[i];
    }
  }
  return d;
}

}  // namespace prop
