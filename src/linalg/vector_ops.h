// Dense vector helpers shared by the Lanczos and CG solvers.
#pragma once

#include <span>
#include <vector>

namespace prop {

double dot(std::span<const double> a, std::span<const double> b);
double norm2(std::span<const double> a);

/// y += alpha * x.
void axpy(double alpha, std::span<const double> x, std::span<double> y);

/// x *= alpha.
void scale(std::span<double> x, double alpha);

/// Removes from v its component along u (u need not be normalized; no-op
/// for u = 0).
void project_out(std::span<double> v, std::span<const double> u);

/// Scales v to unit 2-norm; returns the original norm (0 -> v untouched).
double normalize(std::span<double> v);

}  // namespace prop
