#include "la/la_gains.h"

#include <stdexcept>

namespace prop {

LaGainCalculator::LaGainCalculator(const Partition& part, int levels)
    : part_(&part), levels_(levels) {
  if (levels < 1 || levels > GainVector::kMaxLevels) {
    throw std::invalid_argument("LA: lookahead depth out of range");
  }
  reset();
}

void LaGainCalculator::reset() {
  const Hypergraph& g = part_->graph();
  locked_.assign(g.num_nodes(), 0);
  free_count_.assign(2 * g.num_nets(), 0);
  locked_count_.assign(2 * g.num_nets(), 0);
  for (NetId n = 0; n < g.num_nets(); ++n) {
    free_count_[2 * n + 0] = part_->pins_on_side(n, 0);
    free_count_[2 * n + 1] = part_->pins_on_side(n, 1);
  }
}

void LaGainCalculator::lock(NodeId u) {
  if (locked_[u]) throw std::logic_error("LA: node already locked");
  locked_[u] = 1;
  const int s = part_->side(u);
  for (const NetId n : part_->graph().nets_of(u)) {
    --free_count_[2 * n + s];
    ++locked_count_[2 * n + s];
  }
}

void LaGainCalculator::move_locked(NodeId u, int from_side) {
  if (!locked_[u]) throw std::logic_error("LA: moved node must be locked");
  const int to = 1 - from_side;
  for (const NetId n : part_->graph().nets_of(u)) {
    --locked_count_[2 * n + from_side];
    ++locked_count_[2 * n + to];
  }
}

void LaGainCalculator::audit_consistency() const {
  const Hypergraph& g = part_->graph();
  std::vector<std::uint32_t> free_recount(2 * g.num_nets(), 0);
  std::vector<std::uint32_t> locked_recount(2 * g.num_nets(), 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const int s = part_->side(u);
    for (const NetId n : g.nets_of(u)) {
      ++(locked_[u] ? locked_recount : free_recount)[2 * n + s];
    }
  }
  if (free_recount != free_count_) {
    throw std::logic_error(
        "LA audit: free-pin counts diverged from scratch recount");
  }
  if (locked_recount != locked_count_) {
    throw std::logic_error(
        "LA audit: locked-pin counts diverged from scratch recount");
  }
}

GainVector LaGainCalculator::net_contribution(NetId n, NodeId v) const {
  const int a = part_->side(v);
  const int b = 1 - a;
  GainVector gv(levels_);
  if (!side_locked(n, a)) {
    const int beta_a = static_cast<int>(free_pins(n, a));  // includes v
    if (beta_a >= 1 && beta_a <= levels_) gv.add(beta_a, +1);
  }
  if (!side_locked(n, b)) {
    const int beta_b = static_cast<int>(free_pins(n, b));
    if (beta_b + 1 <= levels_) gv.add(beta_b + 1, -1);
  }
  return gv;
}

GainVector LaGainCalculator::gain(NodeId u) const {
  GainVector v(levels_);
  for (const NetId n : part_->graph().nets_of(u)) {
    v += net_contribution(n, u);
  }
  return v;
}

}  // namespace prop
