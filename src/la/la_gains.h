// Lookahead (LA-k) gain vectors — Krishnamurthy's refinement of FM
// (paper Sec. 2).
//
// For node u in subset A, level i of the vector counts:
//   +1 for each net n of u whose binding number beta_A(n) equals i,
//   -1 for each net n of u whose binding number beta_B(n) equals i-1,
// where beta_S(n) is the number of FREE pins of n in S, or "infinite"
// (contributing nothing) when n has a locked pin in S — a net with a locked
// pin in S can never be pulled out of S this pass.  With nothing locked
// this reduces to the paper's wording ("nets to which i-1 other nodes of V1
// are connected ... minus nets that have i-1 nodes of V2") and level 1
// equals the FM gain.
//
// Restricted to unit net costs, as in the paper's experiments.
#pragma once

#include <cstdint>
#include <vector>

#include "datastruct/gain_vector.h"
#include "hypergraph/hypergraph.h"
#include "partition/partition.h"

namespace prop {

/// Tracks free-pin counts per net side so binding numbers are O(1).
class LaGainCalculator {
 public:
  LaGainCalculator(const Partition& part, int levels);

  int levels() const noexcept { return levels_; }

  /// Marks u locked (it must be free) and updates free-pin counts.
  void lock(NodeId u);

  /// Records that locked node u moved from `from_side` to the other side
  /// (call after Partition::move so locked-pin counts track the partition).
  void move_locked(NodeId u, int from_side);

  bool is_free(NodeId u) const noexcept { return locked_[u] == 0; }

  /// Gain vector of free node u under the current lock state.
  /// O(degree) via O(1) binding-number lookups per net.
  GainVector gain(NodeId u) const;

  /// Contribution of a single net to free node v's vector, O(1).  Summing
  /// over v's nets equals gain(v); the LA pass uses before/after deltas of
  /// this per net touched by a move, making updates O(pins of the mover).
  GainVector net_contribution(NetId n, NodeId v) const;

  /// Resets all locks (start of a new pass); `part` must be the partition
  /// this calculator was built on, in its current state.
  void reset();

  /// Debug invariant audit: recounts the per-(net, side) free/locked pin
  /// tables from the lock flags and the partition; throws std::logic_error
  /// on any mismatch.  O(pins); used by LA's audit_interval mode.
  void audit_consistency() const;

 private:
  std::uint32_t free_pins(NetId n, int s) const noexcept {
    return free_count_[2 * n + s];
  }
  bool side_locked(NetId n, int s) const noexcept {
    return locked_count_[2 * n + s] > 0;
  }

  const Partition* part_;
  int levels_;
  std::vector<std::uint32_t> free_count_;    // free pins per (net, side)
  std::vector<std::uint32_t> locked_count_;  // locked pins per (net, side)
  std::vector<std::uint8_t> locked_;
};

}  // namespace prop
