#include "la/la_partitioner.h"

#include <vector>

#include "datastruct/avl_tree.h"
#include "datastruct/gain_vector.h"
#include "la/la_gains.h"
#include "partition/initial.h"
#include "util/rng.h"

namespace prop {
namespace {

constexpr double kEps = 1e-9;

using GainTree = AvlTree<GainVector>;

/// One LA-k pass.  Returns the accepted prefix improvement.
double la_pass(Partition& part, const BalanceConstraint& balance,
               LaGainCalculator& calc, GainTree& side0, GainTree& side1) {
  const Hypergraph& g = part.graph();
  const NodeId n = g.num_nodes();

  calc.reset();
  side0.clear();
  side1.clear();
  std::vector<GainVector> gains(n);
  for (NodeId u = 0; u < n; ++u) {
    gains[u] = calc.gain(u);
    (part.side(u) == 0 ? side0 : side1).insert(u, gains[u]);
  }

  // Scratch for per-move delta accumulation.
  std::vector<GainVector> delta(n);
  std::vector<std::uint32_t> touched(n, 0);
  std::uint32_t stamp = 0;
  std::vector<NodeId> affected;

  std::vector<NodeId> moved;
  moved.reserve(n);
  double prefix = 0.0;
  double best_prefix = 0.0;
  std::size_t best_count = 0;

  // With unit node sizes feasibility is uniform per side, so it is checked
  // once instead of walking the tree past every infeasible node.
  const bool unit_sizes = g.unit_node_sizes();
  const auto best_feasible = [&](GainTree& tree, int side) {
    if (tree.empty()) return GainTree::kNull;
    if (unit_sizes) {
      if (!balance.move_feasible(part.side_size(0), side, 1)) {
        return GainTree::kNull;
      }
      return tree.max();
    }
    GainTree::Handle found = GainTree::kNull;
    tree.for_each_descending([&](GainTree::Handle h, const GainVector&) {
      if (balance.move_feasible(part.side_size(0), side, g.node_size(h))) {
        found = h;
        return false;
      }
      return true;
    });
    return found;
  };

  while (true) {
    const auto h0 = best_feasible(side0, 0);
    const auto h1 = best_feasible(side1, 1);
    if (h0 == GainTree::kNull && h1 == GainTree::kNull) break;

    NodeId u;
    if (h0 == GainTree::kNull) {
      u = h1;
    } else if (h1 == GainTree::kNull) {
      u = h0;
    } else if (side0.key(h0) != side1.key(h1)) {
      u = side0.key(h0) > side1.key(h1) ? h0 : h1;
    } else {
      u = part.side_size(0) >= part.side_size(1) ? h0 : h1;
    }

    const int from = part.side(u);
    const double immediate = part.immediate_gain(u);
    (from == 0 ? side0 : side1).erase(u);

    // Locking and moving u changes binding numbers only on u's nets; each
    // free pin of those nets gets the before/after delta of that net's O(1)
    // contribution — O(pins of u's nets) per move in total.
    ++stamp;
    affected.clear();
    const auto visit = [&](double sign) {
      for (const NetId net : g.nets_of(u)) {
        for (const NodeId v : g.pins_of(net)) {
          if (v == u || !calc.is_free(v)) continue;
          if (touched[v] != stamp) {
            touched[v] = stamp;
            delta[v] = GainVector(gains[v].levels());
            affected.push_back(v);
          }
          GainVector c = calc.net_contribution(net, v);
          if (sign < 0) {
            delta[v] -= c;
          } else {
            delta[v] += c;
          }
        }
      }
    };
    visit(-1.0);
    calc.lock(u);
    part.move(u);
    calc.move_locked(u, from);
    visit(+1.0);

    for (const NodeId v : affected) {
      if (delta[v].is_zero()) continue;  // contribution unchanged
      gains[v] += delta[v];
      GainTree& tree = part.side(v) == 0 ? side0 : side1;
      if (tree.contains(v)) tree.update(v, gains[v]);
    }

    moved.push_back(u);
    prefix += immediate;
    if (prefix > best_prefix + kEps) {
      best_prefix = prefix;
      best_count = moved.size();
    }
  }

  for (std::size_t i = moved.size(); i > best_count; --i) {
    part.move(moved[i - 1]);
  }
  return best_prefix;
}

}  // namespace

RefineOutcome la_refine(Partition& part, const BalanceConstraint& balance,
                        const LaConfig& config) {
  LaGainCalculator calc(part, config.lookahead);
  GainTree side0(part.graph().num_nodes());
  GainTree side1(part.graph().num_nodes());
  RefineOutcome out;
  for (int pass = 0; pass < config.max_passes; ++pass) {
    const double gained = la_pass(part, balance, calc, side0, side1);
    ++out.passes;
    if (gained <= kEps) break;
  }
  out.cut_cost = part.cut_cost();
  return out;
}

PartitionResult LaPartitioner::run(const Hypergraph& g,
                                   const BalanceConstraint& balance,
                                   std::uint64_t seed) {
  Rng rng(seed);
  Partition part(g, random_balanced_sides(g, balance, rng));
  const RefineOutcome outcome = la_refine(part, balance, config_);
  PartitionResult result;
  result.side = part.sides();
  result.cut_cost = outcome.cut_cost;
  result.passes = outcome.passes;
  return result;
}

}  // namespace prop
