#include "la/la_partitioner.h"

#include <cmath>
#include <cstdlib>
#include <vector>

#include "datastruct/avl_tree.h"
#include "datastruct/gain_vector.h"
#include "la/la_gains.h"
#include "partition/initial.h"
#include "telemetry/invariant_audit.h"
#include "util/rng.h"
#include "util/timer.h"

namespace prop {
namespace {

constexpr double kEps = 1e-9;

using GainTree = AvlTree<GainVector>;

/// Debug audit (LaConfig::audit_interval): gain vectors are integral, so
/// the incrementally-maintained vectors, the tree keys and the calculator's
/// binding-number counts must all match a from-scratch recompute exactly.
void la_audit(const Partition& part, const LaGainCalculator& calc,
              const std::vector<GainVector>& gains, const GainTree& side0,
              const GainTree& side1, const LaConfig& config,
              PassStats* stats) {
  audit::check_cut(part, config.audit_tolerance);
  calc.audit_consistency();
  audit::DriftTracker drift;
  const NodeId n = part.graph().num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    const GainTree& own = part.side(v) == 0 ? side0 : side1;
    const GainTree& other = part.side(v) == 0 ? side1 : side0;
    if (!calc.is_free(v)) {
      audit::check_node(!side0.contains(v) && !side1.contains(v),
                        "LA: locked node still in a gain tree", v);
      continue;
    }
    audit::check_node(own.contains(v) && !other.contains(v),
                      "LA: free node not in its side's gain tree", v);
    audit::check_node(own.key(v) == gains[v],
                      "LA: tree key out of sync with gains[]", v);
    const GainVector scratch = calc.gain(v);
    for (int level = 1; level <= scratch.levels(); ++level) {
      drift.observe(v, gains[v].at(level), scratch.at(level));
    }
    audit::check_node(gains[v] == scratch,
                      "LA: incremental gain vector != scratch recompute", v);
  }
  if (stats) {
    ++stats->audits;
    if (drift.max_abs > stats->max_gain_drift) {
      stats->max_gain_drift = drift.max_abs;
    }
  }
}

/// One LA-k pass.  Returns the accepted prefix improvement; sets
/// `interrupted` when a deadline/cancellation cut the pass short (the
/// rollback to the best prefix still runs, so the partition stays valid).
double la_pass(Partition& part, const BalanceConstraint& balance,
               const LaConfig& config, LaGainCalculator& calc,
               GainTree& side0, GainTree& side1, PassStats* stats,
               bool& interrupted) {
  const Hypergraph& g = part.graph();
  const NodeId n = g.num_nodes();

  calc.reset();
  side0.clear();
  side1.clear();
  std::vector<GainVector> gains(n);
  for (NodeId u = 0; u < n; ++u) {
    gains[u] = calc.gain(u);
    (part.side(u) == 0 ? side0 : side1).insert(u, gains[u]);
  }
  if (stats) stats->ops.inserts += n;

  // Scratch for per-move delta accumulation.
  std::vector<GainVector> delta(n);
  std::vector<std::uint32_t> touched(n, 0);
  std::uint32_t stamp = 0;
  std::vector<NodeId> affected;

  std::vector<NodeId> moved;
  moved.reserve(n);
  double prefix = 0.0;
  double best_prefix = 0.0;
  std::size_t best_count = 0;

  // With unit node sizes feasibility is uniform per side, so it is checked
  // once instead of walking the tree past every infeasible node.
  const bool unit_sizes = g.unit_node_sizes();
  const auto best_feasible = [&](GainTree& tree, int side) {
    if (tree.empty()) return GainTree::kNull;
    if (unit_sizes) {
      if (!balance.move_feasible(part.side_size(0), side, 1)) {
        return GainTree::kNull;
      }
      return tree.max();
    }
    GainTree::Handle found = GainTree::kNull;
    tree.for_each_descending([&](GainTree::Handle h, const GainVector&) {
      if (balance.move_feasible(part.side_size(0), side, g.node_size(h))) {
        found = h;
        return false;
      }
      return true;
    });
    return found;
  };

  while (true) {
    if (config.context && config.context->refine_should_stop()) {
      interrupted = true;
      break;
    }
    const auto h0 = best_feasible(side0, 0);
    const auto h1 = best_feasible(side1, 1);
    if (h0 == GainTree::kNull && h1 == GainTree::kNull) break;

    NodeId u;
    if (h0 == GainTree::kNull) {
      u = h1;
    } else if (h1 == GainTree::kNull) {
      u = h0;
    } else if (side0.key(h0) != side1.key(h1)) {
      u = side0.key(h0) > side1.key(h1) ? h0 : h1;
    } else {
      u = part.side_size(0) >= part.side_size(1) ? h0 : h1;
    }

    const int from = part.side(u);
    const double immediate = part.immediate_gain(u);
    (from == 0 ? side0 : side1).erase(u);
    if (stats) ++stats->ops.erases;

    // Locking and moving u changes binding numbers only on u's nets; each
    // free pin of those nets gets the before/after delta of that net's O(1)
    // contribution — O(pins of u's nets) per move in total.
    ++stamp;
    affected.clear();
    const auto visit = [&](double sign) {
      for (const NetId net : g.nets_of(u)) {
        for (const NodeId v : g.pins_of(net)) {
          if (v == u || !calc.is_free(v)) continue;
          if (touched[v] != stamp) {
            touched[v] = stamp;
            delta[v] = GainVector(gains[v].levels());
            affected.push_back(v);
          }
          GainVector c = calc.net_contribution(net, v);
          if (sign < 0) {
            delta[v] -= c;
          } else {
            delta[v] += c;
          }
        }
      }
    };
    visit(-1.0);
    calc.lock(u);
    part.move(u);
    calc.move_locked(u, from);
    visit(+1.0);

    for (const NodeId v : affected) {
      if (delta[v].is_zero()) continue;  // contribution unchanged
      gains[v] += delta[v];
      GainTree& tree = part.side(v) == 0 ? side0 : side1;
      if (tree.contains(v)) {
        tree.update(v, gains[v]);
        if (stats) ++stats->ops.updates;
      }
    }

    moved.push_back(u);
    prefix += immediate;
    if (prefix > best_prefix + kEps) {
      best_prefix = prefix;
      best_count = moved.size();
    }

    if (config.audit_interval > 0 &&
        moved.size() % static_cast<std::size_t>(config.audit_interval) == 0) {
      la_audit(part, calc, gains, side0, side1, config, stats);
    }
  }

  for (std::size_t i = moved.size(); i > best_count; --i) {
    part.move(moved[i - 1]);
  }
  if (stats) {
    stats->moves_attempted = moved.size();
    stats->moves_accepted = best_count;
    stats->best_prefix_gain = best_prefix;
  }
  return best_prefix;
}

}  // namespace

RefineOutcome la_refine(Partition& part, const BalanceConstraint& balance,
                        const LaConfig& config) {
  LaGainCalculator calc(part, config.lookahead);
  GainTree side0(part.graph().num_nodes());
  GainTree side1(part.graph().num_nodes());
  RefineOutcome out;
  for (int pass = 0; pass < config.max_passes; ++pass) {
    PassStats* stats = nullptr;
    WallTimer wall;
    CpuTimer cpu;
    if (config.telemetry) {
      stats = &config.telemetry->begin_pass(part.cut_cost());
    }
    bool interrupted = false;
    const double gained =
        la_pass(part, balance, config, calc, side0, side1, stats, interrupted);
    ++out.passes;
    if (stats) {
      stats->cut_after = part.cut_cost();
      stats->wall_seconds = wall.seconds();
      stats->cpu_seconds = cpu.seconds();
    }
    if (interrupted) {
      out.interrupted = true;
      break;
    }
    if (gained <= kEps) break;
  }
  out.cut_cost = part.cut_cost();
  return out;
}

PartitionResult LaPartitioner::run(const Hypergraph& g,
                                   const BalanceConstraint& balance,
                                   std::uint64_t seed) {
  Rng rng(seed);
  Partition part(g, random_balanced_sides(g, balance, rng));
  const RefineOutcome outcome = la_refine(part, balance, config_);
  PartitionResult result;
  result.side = part.sides();
  result.cut_cost = outcome.cut_cost;
  result.passes = outcome.passes;
  return result;
}

}  // namespace prop
