// LA-k bipartitioner: FM-style passes selecting by lexicographic lookahead
// gain vector (paper Sec. 2).  Gain vectors live in an AVL tree, avoiding
// the Theta(p^k) bucket memory blow-up the paper criticizes.
#pragma once

#include <cstdint>
#include <string>

#include "partition/partition.h"
#include "partition/partitioner.h"
#include "runtime/run_context.h"
#include "telemetry/telemetry.h"

namespace prop {

struct LaConfig {
  /// Lookahead depth k; the paper reports k = 2..4 as useful.
  int lookahead = 2;
  int max_passes = 64;

  /// Opt-in per-pass trajectory recording; null records nothing.
  RefineTelemetry* telemetry = nullptr;

  /// Optional runtime context: the move loop polls for deadline expiry /
  /// injected cancellation and stops mid-pass, rolling back to the best
  /// prefix as usual (the partition stays valid).  Null = inert.
  const RunContext* context = nullptr;

  /// Debug auditor cadence: every `audit_interval` moves the pass checks
  /// incremental gain vectors, binding-number counts and cut cost against
  /// a from-scratch recompute (throws std::logic_error on mismatch).
  /// Gain vectors are integral, so the comparison is exact.  0 = off.
  int audit_interval = 0;
  double audit_tolerance = 1e-6;
};

/// Improves `part` in place with LA-k passes until no positive gain.
RefineOutcome la_refine(Partition& part, const BalanceConstraint& balance,
                        const LaConfig& config = {});

class LaPartitioner final : public Bipartitioner {
 public:
  explicit LaPartitioner(LaConfig config = {}) : config_(config) {}

  std::string name() const override {
    return "LA-" + std::to_string(config_.lookahead);
  }

  bool attach_telemetry(RefineTelemetry* telemetry) noexcept override {
    config_.telemetry = telemetry;
    return true;
  }

  bool attach_context(const RunContext* context) noexcept override {
    config_.context = context;
    return true;
  }

  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

  std::unique_ptr<Bipartitioner> clone() const override {
    auto copy = std::make_unique<LaPartitioner>(config_);
    copy->attach_telemetry(nullptr);
    copy->attach_context(nullptr);
    return copy;
  }

 private:
  LaConfig config_;
};

}  // namespace prop
