// LA-k bipartitioner: FM-style passes selecting by lexicographic lookahead
// gain vector (paper Sec. 2).  Gain vectors live in an AVL tree, avoiding
// the Theta(p^k) bucket memory blow-up the paper criticizes.
#pragma once

#include <cstdint>
#include <string>

#include "partition/partition.h"
#include "partition/partitioner.h"

namespace prop {

struct LaConfig {
  /// Lookahead depth k; the paper reports k = 2..4 as useful.
  int lookahead = 2;
  int max_passes = 64;
};

/// Improves `part` in place with LA-k passes until no positive gain.
RefineOutcome la_refine(Partition& part, const BalanceConstraint& balance,
                        const LaConfig& config = {});

class LaPartitioner final : public Bipartitioner {
 public:
  explicit LaPartitioner(LaConfig config = {}) : config_(config) {}

  std::string name() const override {
    return "LA-" + std::to_string(config_.lookahead);
  }

  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

 private:
  LaConfig config_;
};

}  // namespace prop
