// 1-D quadratic placement with anchors — substrate for the PARABOLI-style
// partitioner.
//
// Minimizes sum over clique-model edges of w_ij (x_i - x_j)^2 plus anchor
// springs a_u (x_u - t_u)^2, i.e. solves (L + A) x = A t with the SPD
// system handled by preconditioned CG.
#pragma once

#include <vector>

#include "hypergraph/hypergraph.h"
#include "linalg/cg.h"
#include "linalg/csr_matrix.h"

namespace prop {

struct Anchor {
  NodeId node = 0;
  double target = 0.0;
  double weight = 1.0;
};

class QuadraticPlacer {
 public:
  /// Builds the clique-model Laplacian once; solve() reuses it.
  explicit QuadraticPlacer(const Hypergraph& g);

  /// Solves for placement coordinates given anchors (at least one anchor is
  /// required to make the system definite).  `x` is the starting guess and
  /// receives the solution.
  CgResult solve(const std::vector<Anchor>& anchors, std::vector<double>& x,
                 const CgOptions& options = {}) const;

 private:
  const Hypergraph* g_;
  CsrMatrix laplacian_;
};

}  // namespace prop
