#include "placement/quadratic_placer.h"

#include <stdexcept>

#include "spectral/laplacian.h"

namespace prop {

QuadraticPlacer::QuadraticPlacer(const Hypergraph& g)
    : g_(&g), laplacian_(clique_laplacian(g)) {}

CgResult QuadraticPlacer::solve(const std::vector<Anchor>& anchors,
                                std::vector<double>& x,
                                const CgOptions& options) const {
  if (anchors.empty()) {
    throw std::invalid_argument("placer: at least one anchor required");
  }
  const std::uint32_t n = g_->num_nodes();
  if (x.size() != n) x.assign(n, 0.0);

  // A = L + diag(anchor weights); b = anchor weight * target.
  std::vector<Triplet> extra;
  extra.reserve(anchors.size());
  std::vector<double> b(n, 0.0);
  for (const Anchor& a : anchors) {
    if (a.node >= n) throw std::out_of_range("placer: anchor node out of range");
    if (a.weight <= 0.0) throw std::invalid_argument("placer: anchor weight <= 0");
    extra.push_back({a.node, a.node, a.weight});
    b[a.node] += a.weight * a.target;
  }
  // Cheap way to add the diagonal: rebuild from the Laplacian rows plus the
  // anchor triplets.  The Laplacian dominates nnz, so this costs one sort.
  std::vector<Triplet> entries;
  entries.reserve(laplacian_.nnz() + extra.size());
  for (std::uint32_t r = 0; r < n; ++r) {
    const auto cols = laplacian_.row_cols(r);
    const auto vals = laplacian_.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) {
      entries.push_back({r, cols[i], vals[i]});
    }
  }
  entries.insert(entries.end(), extra.begin(), extra.end());
  const CsrMatrix system = CsrMatrix::from_triplets(n, std::move(entries));

  return conjugate_gradient(system, b, x, options);
}

}  // namespace prop
