#include "placement/paraboli.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <string>
#include <vector>

#include "placement/quadratic_placer.h"
#include "spectral/sweep_split.h"
#include "util/rng.h"

namespace prop {
namespace {

/// Farthest node from `start` in hops (BFS over shared nets); used to seed
/// the first placement with two well-separated anchors.
NodeId farthest_node(const Hypergraph& g, NodeId start) {
  std::vector<int> dist(g.num_nodes(), -1);
  std::queue<NodeId> queue;
  dist[start] = 0;
  queue.push(start);
  NodeId last = start;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop();
    last = u;
    for (const NetId n : g.nets_of(u)) {
      for (const NodeId v : g.pins_of(n)) {
        if (dist[v] < 0) {
          dist[v] = dist[u] + 1;
          queue.push(v);
        }
      }
    }
  }
  return last;
}

}  // namespace

PartitionResult ParaboliPartitioner::run(const Hypergraph& g,
                                         const BalanceConstraint& balance,
                                         std::uint64_t seed) {
  Rng rng(seed);
  const NodeId n = g.num_nodes();
  QuadraticPlacer placer(g);

  // Seed solve: two far-apart nodes pinned to the line ends.  The global
  // quadratic optimum with two pins tracks the dominant separation
  // direction, giving the re-anchoring rounds a structured start.
  const NodeId a = static_cast<NodeId>(rng.bounded(n));
  const NodeId b0 = farthest_node(g, a);
  const NodeId b = b0 == a ? static_cast<NodeId>((a + 1) % n) : b0;
  std::vector<double> x(n, 0.5);
  placer.solve({{a, 0.0, config_.anchor_weight}, {b, 1.0, config_.anchor_weight}},
               x, config_.cg);

  // Re-anchoring rounds: pin the current extremes to the ends and re-solve,
  // progressively separating the two natural halves.  Every intermediate
  // placement is also a split candidate — the schedule is not monotone in
  // cut quality, so the best one over all rounds is kept (mirroring
  // PARABOLI's evaluation of each partitioning step).
  const std::size_t pin_count = std::max<std::size_t>(
      1, static_cast<std::size_t>(config_.anchor_fraction * n));
  std::vector<NodeId> order(n);
  const auto sort_by_position = [&] {
    std::iota(order.begin(), order.end(), NodeId{0});
    std::sort(order.begin(), order.end(), [&](NodeId p, NodeId q) {
      return x[p] != x[q] ? x[p] < x[q] : p < q;
    });
  };

  PartitionResult best;
  for (int it = 0; it < config_.iterations; ++it) {
    if (config_.context && config_.context->should_stop() && best.valid()) {
      // Deadline hit between rounds: the best split seen so far is already
      // balanced and validated — return it rather than starting a new solve.
      config_.context->degrade("paraboli.rounds", "early-stop",
                               "stopped before round " + std::to_string(it));
      return best;
    }
    sort_by_position();
    PartitionResult candidate = best_prefix_split(g, balance, order);
    if (!best.valid() || candidate.cut_cost < best.cut_cost) {
      best = std::move(candidate);
    }
    std::vector<Anchor> anchors;
    anchors.reserve(2 * pin_count);
    for (std::size_t i = 0; i < pin_count; ++i) {
      anchors.push_back({order[i], 0.0, config_.anchor_weight});
      anchors.push_back({order[n - 1 - i], 1.0, config_.anchor_weight});
    }
    placer.solve(anchors, x, config_.cg);
  }

  sort_by_position();
  PartitionResult candidate = best_prefix_split(g, balance, order);
  if (!best.valid() || candidate.cut_cost < best.cut_cost) {
    best = std::move(candidate);
  }
  return best;
}

}  // namespace prop
