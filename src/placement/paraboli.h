// PARABOLI-style analytic partitioner (Riess, Doll & Johannes, DAC 1994),
// a Table 3 comparator.
//
// Faithful core, simplified schedule (substitution documented in
// DESIGN.md): place the netlist on a line by quadratic programming, pull
// the extremes apart with anchor springs, re-solve a few times
// (GORDIAN-style iteration), then take the best balanced prefix split of
// the final coordinates.
#pragma once

#include <cstdint>
#include <string>

#include "linalg/cg.h"
#include "partition/partitioner.h"
#include "runtime/run_context.h"

namespace prop {

struct ParaboliConfig {
  int iterations = 8;            ///< re-anchoring rounds
  double anchor_fraction = 0.25; ///< share of nodes pinned per end
  double anchor_weight = 2.0;
  CgOptions cg;

  /// Optional runtime context.  Forwarded into the CG solves (deadline
  /// polls, cg-stall injection); the re-anchoring loop also polls between
  /// rounds and returns the best split found so far.  Null = inert.
  const RunContext* context = nullptr;
};

class ParaboliPartitioner final : public Bipartitioner {
 public:
  explicit ParaboliPartitioner(ParaboliConfig config = {}) : config_(config) {}

  std::string name() const override { return "PARABOLI"; }

  bool attach_context(const RunContext* context) noexcept override {
    config_.context = context;
    config_.cg.context = context;
    return true;
  }

  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

  std::unique_ptr<Bipartitioner> clone() const override {
    auto copy = std::make_unique<ParaboliPartitioner>(config_);
    copy->attach_context(nullptr);
    return copy;
  }

 private:
  ParaboliConfig config_;
};

}  // namespace prop
