// EIG1 — Hagen & Kahng's spectral partitioner (ICCAD 1991), one of the
// clustering-based comparators in the paper's Table 3.
//
// Computes the Fiedler vector (second-smallest Laplacian eigenvector) of
// the clique-expanded netlist, orders nodes by their eigenvector component
// and takes the best balanced prefix split of that ordering.
#pragma once

#include <cstdint>
#include <string>

#include "linalg/lanczos.h"
#include "partition/partitioner.h"
#include "runtime/run_context.h"

namespace prop {

struct Eig1Config {
  LanczosOptions lanczos;

  /// Optional runtime context.  Forwarded into the Lanczos solve (deadline
  /// polls, lanczos-stall injection); when the eigensolver stalls the run
  /// degrades to a random ordering instead of aborting.  Null = inert.
  const RunContext* context = nullptr;
};

class Eig1Partitioner final : public Bipartitioner {
 public:
  explicit Eig1Partitioner(Eig1Config config = {}) : config_(config) {}

  std::string name() const override { return "EIG1"; }

  bool attach_context(const RunContext* context) noexcept override {
    config_.context = context;
    config_.lanczos.context = context;
    return true;
  }

  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

  std::unique_ptr<Bipartitioner> clone() const override {
    auto copy = std::make_unique<Eig1Partitioner>(config_);
    copy->attach_context(nullptr);
    return copy;
  }

 private:
  Eig1Config config_;
};

}  // namespace prop
