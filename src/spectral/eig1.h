// EIG1 — Hagen & Kahng's spectral partitioner (ICCAD 1991), one of the
// clustering-based comparators in the paper's Table 3.
//
// Computes the Fiedler vector (second-smallest Laplacian eigenvector) of
// the clique-expanded netlist, orders nodes by their eigenvector component
// and takes the best balanced prefix split of that ordering.
#pragma once

#include <cstdint>
#include <string>

#include "linalg/lanczos.h"
#include "partition/partitioner.h"

namespace prop {

struct Eig1Config {
  LanczosOptions lanczos;
};

class Eig1Partitioner final : public Bipartitioner {
 public:
  explicit Eig1Partitioner(Eig1Config config = {}) : config_(config) {}

  std::string name() const override { return "EIG1"; }

  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

 private:
  Eig1Config config_;
};

}  // namespace prop
