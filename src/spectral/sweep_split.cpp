#include "spectral/sweep_split.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace prop {

PartitionResult best_prefix_split(const Hypergraph& g,
                                  const BalanceConstraint& balance,
                                  const std::vector<NodeId>& order) {
  const NodeId n = g.num_nodes();
  if (order.size() != n) {
    throw std::invalid_argument("sweep: order must cover all nodes");
  }

  // Incremental cut as nodes migrate from side 1 (suffix) to side 0
  // (prefix): a net is cut while it has pins on both sides.
  std::vector<std::uint32_t> prefix_pins(g.num_nets(), 0);
  double cut = 0.0;
  std::int64_t size0 = 0;

  double best_cut = std::numeric_limits<double>::infinity();
  std::size_t best_prefix = 0;
  // Fallback when no feasible prefix exists: least window violation.
  std::int64_t best_violation = std::numeric_limits<std::int64_t>::max();
  std::size_t fallback_prefix = 0;

  for (std::size_t i = 0; i + 1 <= n; ++i) {
    const NodeId u = order[i];
    for (const NetId net : g.nets_of(u)) {
      const std::uint32_t before = prefix_pins[net]++;
      const std::size_t sz = g.net_size(net);
      if (before == 0 && sz > 1) cut += g.net_cost(net);  // first pin crosses in
      if (before + 1 == sz && sz > 1) cut -= g.net_cost(net);  // fully inside
    }
    size0 += g.node_size(u);
    if (i + 1 == n) break;  // degenerate: everything on one side

    if (balance.feasible(size0)) {
      if (cut < best_cut) {
        best_cut = cut;
        best_prefix = i + 1;
      }
    } else {
      const std::int64_t violation =
          size0 < balance.lo() ? balance.lo() - size0 : size0 - balance.hi();
      if (violation < best_violation) {
        best_violation = violation;
        fallback_prefix = i + 1;
      }
    }
  }

  const std::size_t split =
      std::isinf(best_cut) ? fallback_prefix : best_prefix;
  PartitionResult result;
  result.side.assign(n, 1);
  for (std::size_t i = 0; i < split; ++i) result.side[order[i]] = 0;

  // Recompute the exact cost of the chosen split (cheap, and immune to the
  // incremental bookkeeping).
  double cost = 0.0;
  for (NetId net = 0; net < g.num_nets(); ++net) {
    bool s0 = false;
    bool s1 = false;
    for (const NodeId u : g.pins_of(net)) {
      (result.side[u] == 0 ? s0 : s1) = true;
    }
    if (s0 && s1) cost += g.net_cost(net);
  }
  result.cut_cost = cost;
  return result;
}

}  // namespace prop
