// Graph Laplacian of a netlist under the standard clique net model:
// a net of size s and cost c contributes an edge of weight c/(s-1) between
// every pin pair, so every net's total induced weight stays bounded.  This
// is the model EIG1/MELO-era spectral partitioners operate on.
#pragma once

#include "hypergraph/hypergraph.h"
#include "linalg/csr_matrix.h"

namespace prop {

/// L = D - W (symmetric positive semidefinite, row sums 0).
CsrMatrix clique_laplacian(const Hypergraph& g);

/// W alone (adjacency weights of the clique expansion).
CsrMatrix clique_adjacency(const Hypergraph& g);

}  // namespace prop
