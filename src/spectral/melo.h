// MELO — Alpert & Yao's multiple-eigenvector linear-ordering partitioner
// (DAC 1995), a Table 3 comparator.
//
// Faithful core, simplified construction (documented substitution in
// DESIGN.md): project nodes into the subspace of the d smallest non-trivial
// Laplacian eigenvectors, build a linear ordering by greedy
// nearest-neighbor traversal of that embedding (starting from the extreme
// node along the Fiedler direction), and take the best balanced prefix
// split.  Like the original, it spends most of its time in eigenvector
// computation and ordering construction, which Table 4 reflects.
#pragma once

#include <cstdint>
#include <string>

#include "linalg/lanczos.h"
#include "partition/partitioner.h"

namespace prop {

struct MeloConfig {
  int num_eigenvectors = 4;
  LanczosOptions lanczos;
};

class MeloPartitioner final : public Bipartitioner {
 public:
  explicit MeloPartitioner(MeloConfig config = {}) : config_(config) {}

  std::string name() const override { return "MELO"; }

  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

 private:
  MeloConfig config_;
};

}  // namespace prop
