// MELO — Alpert & Yao's multiple-eigenvector linear-ordering partitioner
// (DAC 1995), a Table 3 comparator.
//
// Faithful core, simplified construction (documented substitution in
// DESIGN.md): project nodes into the subspace of the d smallest non-trivial
// Laplacian eigenvectors, build a linear ordering by greedy
// nearest-neighbor traversal of that embedding (starting from the extreme
// node along the Fiedler direction), and take the best balanced prefix
// split.  Like the original, it spends most of its time in eigenvector
// computation and ordering construction, which Table 4 reflects.
#pragma once

#include <cstdint>
#include <string>

#include "linalg/lanczos.h"
#include "partition/partitioner.h"
#include "runtime/run_context.h"

namespace prop {

struct MeloConfig {
  int num_eigenvectors = 4;
  LanczosOptions lanczos;

  /// Optional runtime context.  Forwarded into the Lanczos solve; a stalled
  /// eigensolver degrades to a random ordering, and the O(n^2) greedy
  /// ordering loop polls for deadline expiry (falling back to the partial
  /// chain plus identity tail).  Null = inert.
  const RunContext* context = nullptr;
};

class MeloPartitioner final : public Bipartitioner {
 public:
  explicit MeloPartitioner(MeloConfig config = {}) : config_(config) {}

  std::string name() const override { return "MELO"; }

  bool attach_context(const RunContext* context) noexcept override {
    config_.context = context;
    config_.lanczos.context = context;
    return true;
  }

  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

  std::unique_ptr<Bipartitioner> clone() const override {
    auto copy = std::make_unique<MeloPartitioner>(config_);
    copy->attach_context(nullptr);
    return copy;
  }

 private:
  MeloConfig config_;
};

}  // namespace prop
