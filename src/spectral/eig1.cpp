#include "spectral/eig1.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "spectral/laplacian.h"
#include "spectral/sweep_split.h"
#include "util/rng.h"

namespace prop {

PartitionResult Eig1Partitioner::run(const Hypergraph& g,
                                     const BalanceConstraint& balance,
                                     std::uint64_t seed) {
  Rng rng(seed);
  const CsrMatrix laplacian = clique_laplacian(g);
  // With the constant direction deflated, the smallest remaining eigenpair
  // is the Fiedler vector.
  const EigenResult eig = smallest_eigenpairs(laplacian, 1, rng, config_.lanczos);

  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  if (eig.stalled) {
    // Degradation chain: a stalled eigensolver yields no Fiedler vector, so
    // fall back to a random ordering — best_prefix_split still returns a
    // valid balanced partition, just without spectral guidance.
    if (config_.context) {
      config_.context->degrade("eig1.lanczos", "random-order-fallback",
                               "eigensolver stalled; using shuffled ordering");
    }
    rng.shuffle(order);
  } else {
    const std::vector<double>& fiedler = eig.vectors.front();
    std::sort(order.begin(), order.end(), [&](NodeId a, NodeId b) {
      return fiedler[a] != fiedler[b] ? fiedler[a] < fiedler[b] : a < b;
    });
  }

  return best_prefix_split(g, balance, order);
}

}  // namespace prop
