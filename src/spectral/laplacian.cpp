#include "spectral/laplacian.h"

#include <vector>

namespace prop {
namespace {

std::vector<Triplet> clique_triplets(const Hypergraph& g, bool laplacian) {
  std::vector<Triplet> entries;
  for (NetId n = 0; n < g.num_nets(); ++n) {
    const auto pins = g.pins_of(n);
    const std::size_t s = pins.size();
    if (s < 2) continue;
    const double w = g.net_cost(n) / static_cast<double>(s - 1);
    for (std::size_t i = 0; i < s; ++i) {
      for (std::size_t j = i + 1; j < s; ++j) {
        const double off = laplacian ? -w : w;
        entries.push_back({pins[i], pins[j], off});
        entries.push_back({pins[j], pins[i], off});
        if (laplacian) {
          entries.push_back({pins[i], pins[i], w});
          entries.push_back({pins[j], pins[j], w});
        }
      }
    }
  }
  return entries;
}

}  // namespace

CsrMatrix clique_laplacian(const Hypergraph& g) {
  return CsrMatrix::from_triplets(g.num_nodes(), clique_triplets(g, true));
}

CsrMatrix clique_adjacency(const Hypergraph& g) {
  return CsrMatrix::from_triplets(g.num_nodes(), clique_triplets(g, false));
}

}  // namespace prop
