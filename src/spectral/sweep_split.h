// Linear-ordering sweep split: given a vertex ordering, evaluate every
// prefix/suffix bipartition in O(m) total and return the best one inside
// the balance window.  This is the final step of EIG1, MELO and the
// PARABOLI-style placer.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "partition/balance.h"
#include "partition/partitioner.h"

namespace prop {

/// `order` must be a permutation of all nodes; the prefix becomes side 0.
/// Returns the minimum-cut feasible split; if no prefix is feasible
/// (possible only with weighted nodes), the split closest to the window is
/// returned.
PartitionResult best_prefix_split(const Hypergraph& g,
                                  const BalanceConstraint& balance,
                                  const std::vector<NodeId>& order);

}  // namespace prop
