#include "spectral/melo.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "spectral/laplacian.h"
#include "spectral/sweep_split.h"
#include "util/rng.h"

namespace prop {

PartitionResult MeloPartitioner::run(const Hypergraph& g,
                                     const BalanceConstraint& balance,
                                     std::uint64_t seed) {
  Rng rng(seed);
  const NodeId n = g.num_nodes();
  const int d = std::max(1, config_.num_eigenvectors);

  const CsrMatrix laplacian = clique_laplacian(g);
  const EigenResult eig = smallest_eigenpairs(laplacian, d, rng, config_.lanczos);

  if (eig.stalled) {
    // Degradation chain: no usable eigenvectors — fall back to a random
    // ordering so the run still returns a valid balanced split.
    if (config_.context) {
      config_.context->degrade("melo.lanczos", "random-order-fallback",
                               "eigensolver stalled; using shuffled ordering");
    }
    std::vector<NodeId> order(n);
    for (NodeId u = 0; u < n; ++u) order[u] = u;
    rng.shuffle(order);
    return best_prefix_split(g, balance, order);
  }

  // Row-major n x d embedding, each eigenvector scaled by 1/sqrt(lambda)
  // so smoother (more informative) directions dominate distances.
  std::vector<double> embed(static_cast<std::size_t>(n) * d);
  for (int j = 0; j < d; ++j) {
    const double lambda = std::max(eig.values[static_cast<std::size_t>(j)], 1e-12);
    const double s = 1.0 / std::sqrt(lambda);
    for (NodeId u = 0; u < n; ++u) {
      embed[static_cast<std::size_t>(u) * d + j] =
          s * eig.vectors[static_cast<std::size_t>(j)][u];
    }
  }

  // Start from the node most extreme along the Fiedler direction.
  NodeId start = 0;
  for (NodeId u = 1; u < n; ++u) {
    if (embed[static_cast<std::size_t>(u) * d] <
        embed[static_cast<std::size_t>(start) * d]) {
      start = u;
    }
  }

  // Greedy nearest-neighbor chain through the embedding.
  std::vector<char> placed(n, 0);
  std::vector<NodeId> order;
  order.reserve(n);
  order.push_back(start);
  placed[start] = 1;
  NodeId current = start;
  for (NodeId step = 1; step < n; ++step) {
    if (config_.context && config_.context->should_stop()) {
      // Deadline hit mid-ordering: keep the chain built so far and append
      // the rest in index order — still a full permutation for the sweep.
      for (NodeId v = 0; v < n; ++v) {
        if (!placed[v]) order.push_back(v);
      }
      config_.context->degrade("melo.ordering", "truncated-chain",
                               "greedy ordering stopped at step " +
                                   std::to_string(step) + " of " +
                                   std::to_string(n));
      break;
    }
    NodeId best = kInvalidNode;
    double best_dist = std::numeric_limits<double>::infinity();
    const double* cur = &embed[static_cast<std::size_t>(current) * d];
    for (NodeId v = 0; v < n; ++v) {
      if (placed[v]) continue;
      const double* pv = &embed[static_cast<std::size_t>(v) * d];
      double dist = 0.0;
      for (int j = 0; j < d; ++j) {
        const double diff = cur[j] - pv[j];
        dist += diff * diff;
      }
      if (dist < best_dist) {
        best_dist = dist;
        best = v;
      }
    }
    order.push_back(best);
    placed[best] = 1;
    current = best;
  }

  // MELO's thesis is "the more eigenvectors the better": evaluate several
  // candidate linear orderings — the chain through the d-dimensional
  // embedding plus the per-eigenvector sorts (the j = 0 sort is exactly
  // EIG1's ordering, so MELO can never lose to EIG1) — and keep the best
  // balanced split.
  PartitionResult best_result = best_prefix_split(g, balance, order);
  std::vector<NodeId> by_vector(n);
  for (int j = 0; j < d; ++j) {
    for (NodeId u = 0; u < n; ++u) by_vector[u] = u;
    std::sort(by_vector.begin(), by_vector.end(), [&](NodeId a, NodeId b) {
      const double va = embed[static_cast<std::size_t>(a) * d + j];
      const double vb = embed[static_cast<std::size_t>(b) * d + j];
      return va != vb ? va < vb : a < b;
    });
    PartitionResult candidate = best_prefix_split(g, balance, by_vector);
    if (candidate.cut_cost < best_result.cut_cost) {
      best_result = std::move(candidate);
    }
  }
  return best_result;
}

}  // namespace prop
