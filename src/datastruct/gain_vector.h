// Krishnamurthy lookahead gain vectors (LA-k).
//
// A gain vector has k integer levels; vector a beats vector b when the
// first differing level is larger in a (lexicographic order) — the paper's
// Sec. 2 definition.  Level 1 equals the FM immediate gain.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <string>

namespace prop {

class GainVector {
 public:
  /// Largest supported lookahead depth.  The paper reports k = 2..4 as the
  /// useful range; 8 leaves headroom for experiments.
  static constexpr int kMaxLevels = 8;

  GainVector() = default;
  explicit GainVector(int levels) : levels_(levels) { v_.fill(0); }

  int levels() const noexcept { return levels_; }

  int at(int level) const noexcept { return v_[static_cast<std::size_t>(level - 1)]; }
  void set(int level, int value) noexcept {
    v_[static_cast<std::size_t>(level - 1)] = value;
  }
  void add(int level, int delta) noexcept {
    v_[static_cast<std::size_t>(level - 1)] += delta;
  }

  /// Level-wise accumulation (used by incremental gain maintenance).
  GainVector& operator+=(const GainVector& o) noexcept {
    for (int i = 0; i < kMaxLevels; ++i) {
      v_[static_cast<std::size_t>(i)] += o.v_[static_cast<std::size_t>(i)];
    }
    if (o.levels_ > levels_) levels_ = o.levels_;
    return *this;
  }
  GainVector& operator-=(const GainVector& o) noexcept {
    for (int i = 0; i < kMaxLevels; ++i) {
      v_[static_cast<std::size_t>(i)] -= o.v_[static_cast<std::size_t>(i)];
    }
    if (o.levels_ > levels_) levels_ = o.levels_;
    return *this;
  }

  /// Lexicographic order over the first `levels` entries.
  friend std::strong_ordering operator<=>(const GainVector& a,
                                          const GainVector& b) noexcept {
    const int k = a.levels_ < b.levels_ ? a.levels_ : b.levels_;
    for (int i = 0; i < k; ++i) {
      if (a.v_[static_cast<std::size_t>(i)] != b.v_[static_cast<std::size_t>(i)]) {
        return a.v_[static_cast<std::size_t>(i)] <=> b.v_[static_cast<std::size_t>(i)];
      }
    }
    return std::strong_ordering::equal;
  }
  friend bool operator==(const GainVector& a, const GainVector& b) noexcept {
    return (a <=> b) == std::strong_ordering::equal;
  }

  /// True when every level is 0 (no-op as a delta).
  bool is_zero() const noexcept {
    for (int i = 0; i < kMaxLevels; ++i) {
      if (v_[static_cast<std::size_t>(i)] != 0) return false;
    }
    return true;
  }

  /// "(2,0,1)" — the paper's notation.
  std::string to_string() const;

 private:
  std::array<int, kMaxLevels> v_{};
  int levels_ = 0;
};

}  // namespace prop
