// Gain-container key for native k-way refinement.
//
// The 2-way refiners keep one AVL tree per side keyed by a plain double
// gain.  K-way refiners keep one tree over all nodes, where each entry
// carries the node's best move: the gain of that move and the target part
// it goes to.  The k - 1 per-target gains are collapsed to the best one at
// insertion/refresh time (recomputing the runner-up lazily on selection is
// cheaper than keeping k - 1 live entries per node), so the container
// itself stays (k - 1)-agnostic and the AVL's O(1) cached-max and O(n)
// assign_sorted fast paths keep working unchanged.
//
// Ordering compares gains only — the target rides along as a payload, so
// equal-gain entries keep the tree's LIFO tie order regardless of target.
#pragma once

#include "hypergraph/hypergraph.h"

namespace prop {

struct KWayGainEntry {
  double gain = 0.0;
  NodeId target = 0;  ///< best target part for this node
};

struct KWayGainEntryLess {
  bool operator()(const KWayGainEntry& a,
                  const KWayGainEntry& b) const noexcept {
    return a.gain < b.gain;
  }
};

}  // namespace prop
