// Handle-based AVL tree keyed by gain — the ordered container the paper
// prescribes for PROP and for FM under non-unit net costs ("we ... store
// nodes, according to their gains, in a balanced binary AVL tree",
// Sec. 3.5).
//
// Each handle (a node id in [0, capacity)) appears at most once.  All
// storage is in flat arrays indexed by handle, so there is no per-operation
// allocation.  Duplicate keys are allowed; among equal keys the most
// recently inserted handle is returned first by max(), giving the LIFO
// tie-breaking that FM-family implementations traditionally use.
//
// Operations: insert/erase/update O(log n), max O(log n), descending
// iteration O(log n) per step.  Verified against std::multiset by property
// tests (tests/datastruct/avl_tree_test.cpp).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <vector>

namespace prop {

template <typename Key, typename Compare = std::less<Key>>
class AvlTree {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNull = static_cast<Handle>(-1);

  explicit AvlTree(Handle capacity, Compare cmp = Compare())
      : cmp_(cmp),
        keys_(capacity),
        left_(capacity, kNull),
        right_(capacity, kNull),
        parent_(capacity, kNull),
        height_(capacity, 0),
        in_tree_(capacity, 0) {}

  Handle capacity() const noexcept { return static_cast<Handle>(keys_.size()); }
  std::uint32_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool contains(Handle h) const noexcept { return in_tree_[h] != 0; }
  const Key& key(Handle h) const noexcept { return keys_[h]; }

  void clear() {
    if (size_ == 0) return;
    std::fill(in_tree_.begin(), in_tree_.end(), 0);
    root_ = kNull;
    size_ = 0;
  }

  /// Inserts handle h with the given key.  h must not be present.
  void insert(Handle h, Key key) {
    assert(!contains(h));
    keys_[h] = std::move(key);
    left_[h] = right_[h] = kNull;
    height_[h] = 1;
    in_tree_[h] = 1;
    ++size_;
    if (root_ == kNull) {
      parent_[h] = kNull;
      root_ = h;
      return;
    }
    Handle cur = root_;
    for (;;) {
      // Ties descend right so the newest equal-key handle is rightmost,
      // i.e. returned first by max().
      if (cmp_(keys_[h], keys_[cur])) {
        if (left_[cur] == kNull) {
          left_[cur] = h;
          break;
        }
        cur = left_[cur];
      } else {
        if (right_[cur] == kNull) {
          right_[cur] = h;
          break;
        }
        cur = right_[cur];
      }
    }
    parent_[h] = cur;
    rebalance_up(cur);
  }

  /// Removes handle h.  h must be present.
  void erase(Handle h) {
    assert(contains(h));
    Handle rebalance_from = kNull;
    if (left_[h] != kNull && right_[h] != kNull) {
      // Two children: splice in the successor (min of right subtree).
      Handle s = right_[h];
      while (left_[s] != kNull) s = left_[s];
      rebalance_from = (parent_[s] == h) ? s : parent_[s];
      // Detach s from its parent (s has no left child).
      if (parent_[s] != h) {
        set_child(parent_[s], s, right_[s]);
        right_[s] = right_[h];
        parent_[right_[s]] = s;
      }
      // Put s where h was.
      left_[s] = left_[h];
      if (left_[s] != kNull) parent_[left_[s]] = s;
      replace_at_parent(h, s);
      height_[s] = height_[h];
    } else {
      const Handle child = (left_[h] != kNull) ? left_[h] : right_[h];
      rebalance_from = parent_[h];
      replace_at_parent(h, child);
    }
    in_tree_[h] = 0;
    --size_;
    if (rebalance_from != kNull) rebalance_up(rebalance_from);
  }

  /// Changes the key of handle h (erase + insert).
  void update(Handle h, Key key) {
    erase(h);
    insert(h, std::move(key));
  }

  /// Handle with the maximum key (ties: most recently inserted).
  /// Tree must be non-empty.
  Handle max() const noexcept {
    assert(!empty());
    Handle cur = root_;
    while (right_[cur] != kNull) cur = right_[cur];
    return cur;
  }

  /// Handle with the minimum key.  Tree must be non-empty.
  Handle min() const noexcept {
    assert(!empty());
    Handle cur = root_;
    while (left_[cur] != kNull) cur = left_[cur];
    return cur;
  }

  /// In-order predecessor of h (next handle in descending key order), or
  /// kNull at the minimum.
  Handle prev(Handle h) const noexcept {
    if (left_[h] != kNull) {
      Handle cur = left_[h];
      while (right_[cur] != kNull) cur = right_[cur];
      return cur;
    }
    // No left subtree: the predecessor is the first ancestor of which h
    // lies in the right subtree — climb while we are a left child.
    Handle cur = h;
    Handle up = parent_[cur];
    while (up != kNull && left_[up] == cur) {
      cur = up;
      up = parent_[cur];
    }
    return up;
  }

  /// Visits handles in descending key order while `visit` returns true.
  template <typename Visitor>
  void for_each_descending(Visitor&& visit) const {
    if (empty()) return;
    for (Handle h = max(); h != kNull; h = prev(h)) {
      if (!visit(h, keys_[h])) return;
    }
  }

  /// Validation helpers for tests: checks BST order, AVL balance, parent
  /// links and size.  O(n).
  bool check_invariants() const {
    std::uint32_t counted = 0;
    const int h = check_subtree(root_, kNull, counted);
    return h >= 0 && counted == size_;
  }

 private:
  int height_of(Handle h) const noexcept { return h == kNull ? 0 : height_[h]; }

  void update_height(Handle h) noexcept {
    const int hl = height_of(left_[h]);
    const int hr = height_of(right_[h]);
    height_[h] = 1 + (hl > hr ? hl : hr);
  }

  int balance_factor(Handle h) const noexcept {
    return height_of(left_[h]) - height_of(right_[h]);
  }

  void set_child(Handle parent, Handle old_child, Handle new_child) noexcept {
    if (left_[parent] == old_child) {
      left_[parent] = new_child;
    } else {
      right_[parent] = new_child;
    }
    if (new_child != kNull) parent_[new_child] = parent;
  }

  /// Makes `replacement` occupy h's position relative to h's parent/root.
  void replace_at_parent(Handle h, Handle replacement) noexcept {
    const Handle p = parent_[h];
    if (p == kNull) {
      root_ = replacement;
      if (replacement != kNull) parent_[replacement] = kNull;
    } else {
      set_child(p, h, replacement);
    }
  }

  Handle rotate_left(Handle x) noexcept {
    const Handle y = right_[x];
    right_[x] = left_[y];
    if (left_[y] != kNull) parent_[left_[y]] = x;
    replace_at_parent(x, y);
    left_[y] = x;
    parent_[x] = y;
    update_height(x);
    update_height(y);
    return y;
  }

  Handle rotate_right(Handle x) noexcept {
    const Handle y = left_[x];
    left_[x] = right_[y];
    if (right_[y] != kNull) parent_[right_[y]] = x;
    replace_at_parent(x, y);
    right_[y] = x;
    parent_[x] = y;
    update_height(x);
    update_height(y);
    return y;
  }

  void rebalance_up(Handle h) noexcept {
    while (h != kNull) {
      update_height(h);
      const int bf = balance_factor(h);
      if (bf > 1) {
        if (balance_factor(left_[h]) < 0) rotate_left(left_[h]);
        h = rotate_right(h);
      } else if (bf < -1) {
        if (balance_factor(right_[h]) > 0) rotate_right(right_[h]);
        h = rotate_left(h);
      }
      h = parent_[h];
    }
  }

  /// Returns subtree height, or -1 on any violated invariant.
  int check_subtree(Handle h, Handle expected_parent,
                    std::uint32_t& counted) const {
    if (h == kNull) return 0;
    if (!in_tree_[h] || parent_[h] != expected_parent) return -1;
    ++counted;
    const int hl = check_subtree(left_[h], h, counted);
    const int hr = check_subtree(right_[h], h, counted);
    if (hl < 0 || hr < 0) return -1;
    if (hl - hr > 1 || hr - hl > 1) return -1;
    if (left_[h] != kNull && cmp_(keys_[h], keys_[left_[h]])) return -1;
    if (right_[h] != kNull && cmp_(keys_[right_[h]], keys_[h])) return -1;
    const int height = 1 + (hl > hr ? hl : hr);
    if (height != height_[h]) return -1;
    return height;
  }

  Compare cmp_;
  std::vector<Key> keys_;
  std::vector<Handle> left_;
  std::vector<Handle> right_;
  std::vector<Handle> parent_;
  std::vector<int> height_;
  std::vector<std::uint8_t> in_tree_;
  Handle root_ = kNull;
  std::uint32_t size_ = 0;
};

}  // namespace prop
