// Handle-based AVL tree keyed by gain — the ordered container the paper
// prescribes for PROP and for FM under non-unit net costs ("we ... store
// nodes, according to their gains, in a balanced binary AVL tree",
// Sec. 3.5).
//
// Each handle (a node id in [0, capacity)) appears at most once.  All
// storage is in flat arrays indexed by handle, so there is no per-operation
// allocation.  Duplicate keys are allowed; among equal keys the most
// recently inserted handle is returned first by max(), giving the LIFO
// tie-breaking that FM-family implementations traditionally use.
//
// Operations: insert/erase/update O(log n), max O(log n), descending
// iteration O(log n) per step.  Verified against std::multiset by property
// tests (tests/datastruct/avl_tree_test.cpp).
#pragma once

#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace prop {

template <typename Key, typename Compare = std::less<Key>>
class AvlTree {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNull = static_cast<Handle>(-1);

  explicit AvlTree(Handle capacity, Compare cmp = Compare())
      : cmp_(cmp),
        nodes_(capacity, Node{Key(), kNull, kNull, kNull, 0}),
        in_tree_(capacity, 0) {}

  Handle capacity() const noexcept { return static_cast<Handle>(nodes_.size()); }
  std::uint32_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool contains(Handle h) const noexcept { return in_tree_[h] != 0; }
  const Key& key(Handle h) const noexcept { return nodes_[h].key; }

  void clear() {
    if (size_ == 0) return;
    std::fill(in_tree_.begin(), in_tree_.end(), 0);
    root_ = kNull;
    max_ = kNull;
    size_ = 0;
  }

  /// Inserts handle h with the given key.  h must not be present.
  void insert(Handle h, Key key) {
    assert(!contains(h));
    nodes_[h].key = std::move(key);
    nodes_[h].left = nodes_[h].right = kNull;
    nodes_[h].height = 1;
    in_tree_[h] = 1;
    ++size_;
    // Maintain the O(1) max: a new key >= the current max becomes the
    // rightmost node (ties descend right), i.e. the new max.
    if (max_ == kNull || !cmp_(nodes_[h].key, nodes_[max_].key)) max_ = h;
    if (root_ == kNull) {
      nodes_[h].parent = kNull;
      root_ = h;
      return;
    }
    Handle cur = root_;
    for (;;) {
      // Ties descend right so the newest equal-key handle is rightmost,
      // i.e. returned first by max().
      if (cmp_(nodes_[h].key, nodes_[cur].key)) {
        if (nodes_[cur].left == kNull) {
          nodes_[cur].left = h;
          break;
        }
        cur = nodes_[cur].left;
      } else {
        if (nodes_[cur].right == kNull) {
          nodes_[cur].right = h;
          break;
        }
        cur = nodes_[cur].right;
      }
    }
    nodes_[h].parent = cur;
    rebalance_up(cur);
  }

  /// Removes handle h.  h must be present.
  void erase(Handle h) {
    assert(contains(h));
    // The max's predecessor (computed while h is still linked) becomes the
    // new max; the max has no right child, so it never hits the two-child
    // splice below.
    if (h == max_) max_ = prev(h);
    Handle rebalance_from = kNull;
    if (nodes_[h].left != kNull && nodes_[h].right != kNull) {
      // Two children: splice in the successor (min of right subtree).
      Handle s = nodes_[h].right;
      while (nodes_[s].left != kNull) s = nodes_[s].left;
      rebalance_from = (nodes_[s].parent == h) ? s : nodes_[s].parent;
      // Detach s from its parent (s has no left child).
      if (nodes_[s].parent != h) {
        set_child(nodes_[s].parent, s, nodes_[s].right);
        nodes_[s].right = nodes_[h].right;
        nodes_[nodes_[s].right].parent = s;
      }
      // Put s where h was.
      nodes_[s].left = nodes_[h].left;
      if (nodes_[s].left != kNull) nodes_[nodes_[s].left].parent = s;
      replace_at_parent(h, s);
      nodes_[s].height = nodes_[h].height;
    } else {
      const Handle child = (nodes_[h].left != kNull) ? nodes_[h].left : nodes_[h].right;
      rebalance_from = nodes_[h].parent;
      replace_at_parent(h, child);
    }
    in_tree_[h] = 0;
    --size_;
    if (rebalance_from != kNull) rebalance_up(rebalance_from);
  }

  /// Changes the key of handle h.  Fast path: when the new key still falls
  /// *strictly* between h's in-order neighbors, h's position in the ordered
  /// sequence is unchanged and the key is rewritten in place — no structural
  /// change, no rebalancing.  The strict bounds mean no other handle holds
  /// the new key, so LIFO tie order is unaffected; ties (and genuine
  /// reorderings) fall back to erase + insert.  This is the hot operation of
  /// the refiners' delta updates, where most gain changes are small.
  void update(Handle h, Key key) {
    assert(contains(h));
    const Handle p = prev(h);
    if (p == kNull || cmp_(nodes_[p].key, key)) {
      const Handle s = next(h);
      if (s == kNull || cmp_(key, nodes_[s].key)) {
        // In-order position (and hence the max handle) is unchanged.
        nodes_[h].key = std::move(key);
        return;
      }
    } else {
    }
    erase(h);
    insert(h, std::move(key));
  }

  /// Rebuilds the whole tree as the perfectly height-balanced BST over
  /// `items`, which must be sorted ascending by key, stably: among equal
  /// keys the "newest" handle comes last.  The in-order sequence (and hence
  /// max()/prev()/next()/LIFO tie order — everything observable) is exactly
  /// what inserting the items oldest-first would produce, but the links are
  /// set up in O(n) instead of n log n root descents.  This is the pass-
  /// start bulk load of the refiners.
  void assign_sorted(const std::pair<Key, Handle>* items,
                     std::uint32_t count) {
    clear();
    if (count == 0) return;
    assert(count <= capacity());
    root_ = build_range(items, 0, count, kNull);
    max_ = items[count - 1].second;
    size_ = count;
  }

  /// Handle with the maximum key (ties: most recently inserted).
  /// Tree must be non-empty.  O(1): maintained across mutations.
  Handle max() const noexcept {
    assert(!empty());
    return max_;
  }

  /// Handle with the minimum key.  Tree must be non-empty.
  Handle min() const noexcept {
    assert(!empty());
    Handle cur = root_;
    while (nodes_[cur].left != kNull) cur = nodes_[cur].left;
    return cur;
  }

  /// In-order predecessor of h (next handle in descending key order), or
  /// kNull at the minimum.
  Handle prev(Handle h) const noexcept {
    if (nodes_[h].left != kNull) {
      Handle cur = nodes_[h].left;
      while (nodes_[cur].right != kNull) cur = nodes_[cur].right;
      return cur;
    }
    // No left subtree: the predecessor is the first ancestor of which h
    // lies in the right subtree — climb while we are a left child.
    Handle cur = h;
    Handle up = nodes_[cur].parent;
    while (up != kNull && nodes_[up].left == cur) {
      cur = up;
      up = nodes_[cur].parent;
    }
    return up;
  }

  /// In-order successor of h (next handle in ascending key order), or
  /// kNull at the maximum.
  Handle next(Handle h) const noexcept {
    if (nodes_[h].right != kNull) {
      Handle cur = nodes_[h].right;
      while (nodes_[cur].left != kNull) cur = nodes_[cur].left;
      return cur;
    }
    // No right subtree: the successor is the first ancestor of which h
    // lies in the left subtree — climb while we are a right child.
    Handle cur = h;
    Handle up = nodes_[cur].parent;
    while (up != kNull && nodes_[up].right == cur) {
      cur = up;
      up = nodes_[cur].parent;
    }
    return up;
  }

  /// Visits handles in descending key order while `visit` returns true.
  template <typename Visitor>
  void for_each_descending(Visitor&& visit) const {
    if (empty()) return;
    for (Handle h = max(); h != kNull; h = prev(h)) {
      if (!visit(h, nodes_[h].key)) return;
    }
  }

  /// Validation helpers for tests: checks BST order, AVL balance, parent
  /// links and size.  O(n).
  bool check_invariants() const {
    std::uint32_t counted = 0;
    const int h = check_subtree(root_, kNull, counted);
    if (h < 0 || counted != size_) return false;
    // The cached max must be the rightmost node.
    Handle rightmost = root_;
    while (rightmost != kNull && nodes_[rightmost].right != kNull) {
      rightmost = nodes_[rightmost].right;
    }
    return max_ == rightmost;
  }

 private:
  /// Links items[lo, hi) into a height-balanced subtree under `parent` and
  /// returns its root.  The mid split keeps subtree sizes within 1 of each
  /// other, so heights differ by at most 1 — a valid AVL shape.
  Handle build_range(const std::pair<Key, Handle>* items, std::uint32_t lo,
                     std::uint32_t hi, Handle parent) {
    if (lo >= hi) return kNull;
    const std::uint32_t mid = lo + (hi - lo) / 2;
    const Handle h = items[mid].second;
    nodes_[h].key = items[mid].first;
    in_tree_[h] = 1;
    nodes_[h].parent = parent;
    nodes_[h].left = build_range(items, lo, mid, h);
    nodes_[h].right = build_range(items, mid + 1, hi, h);
    const int hl = height_of(nodes_[h].left);
    const int hr = height_of(nodes_[h].right);
    nodes_[h].height = 1 + (hl > hr ? hl : hr);
    return h;
  }

  int height_of(Handle h) const noexcept { return h == kNull ? 0 : nodes_[h].height; }

  void update_height(Handle h) noexcept {
    const int hl = height_of(nodes_[h].left);
    const int hr = height_of(nodes_[h].right);
    nodes_[h].height = 1 + (hl > hr ? hl : hr);
  }

  int balance_factor(Handle h) const noexcept {
    return height_of(nodes_[h].left) - height_of(nodes_[h].right);
  }

  void set_child(Handle parent, Handle old_child, Handle new_child) noexcept {
    if (nodes_[parent].left == old_child) {
      nodes_[parent].left = new_child;
    } else {
      nodes_[parent].right = new_child;
    }
    if (new_child != kNull) nodes_[new_child].parent = parent;
  }

  /// Makes `replacement` occupy h's position relative to h's parent/root.
  void replace_at_parent(Handle h, Handle replacement) noexcept {
    const Handle p = nodes_[h].parent;
    if (p == kNull) {
      root_ = replacement;
      if (replacement != kNull) nodes_[replacement].parent = kNull;
    } else {
      set_child(p, h, replacement);
    }
  }

  Handle rotate_left(Handle x) noexcept {
    const Handle y = nodes_[x].right;
    nodes_[x].right = nodes_[y].left;
    if (nodes_[y].left != kNull) nodes_[nodes_[y].left].parent = x;
    replace_at_parent(x, y);
    nodes_[y].left = x;
    nodes_[x].parent = y;
    update_height(x);
    update_height(y);
    return y;
  }

  Handle rotate_right(Handle x) noexcept {
    const Handle y = nodes_[x].left;
    nodes_[x].left = nodes_[y].right;
    if (nodes_[y].right != kNull) nodes_[nodes_[y].right].parent = x;
    replace_at_parent(x, y);
    nodes_[y].right = x;
    nodes_[x].parent = y;
    update_height(x);
    update_height(y);
    return y;
  }

  void rebalance_up(Handle h) noexcept {
    while (h != kNull) {
      const int old_height = nodes_[h].height;
      update_height(h);
      const int bf = balance_factor(h);
      if (bf > 1) {
        if (balance_factor(nodes_[h].left) < 0) rotate_left(nodes_[h].left);
        h = rotate_right(h);
      } else if (bf < -1) {
        if (balance_factor(nodes_[h].right) > 0) rotate_right(nodes_[h].right);
        h = rotate_left(h);
      } else if (nodes_[h].height == old_height) {
        // No rotation and the subtree height is what the ancestors already
        // account for: nothing above can change.
        return;
      }
      h = nodes_[h].parent;
    }
  }

  /// Returns subtree height, or -1 on any violated invariant.
  int check_subtree(Handle h, Handle expected_parent,
                    std::uint32_t& counted) const {
    if (h == kNull) return 0;
    if (!in_tree_[h] || nodes_[h].parent != expected_parent) return -1;
    ++counted;
    const int hl = check_subtree(nodes_[h].left, h, counted);
    const int hr = check_subtree(nodes_[h].right, h, counted);
    if (hl < 0 || hr < 0) return -1;
    if (hl - hr > 1 || hr - hl > 1) return -1;
    if (nodes_[h].left != kNull &&
        cmp_(nodes_[h].key, nodes_[nodes_[h].left].key)) {
      return -1;
    }
    if (nodes_[h].right != kNull &&
        cmp_(nodes_[nodes_[h].right].key, nodes_[h].key)) {
      return -1;
    }
    const int height = 1 + (hl > hr ? hl : hr);
    if (height != nodes_[h].height) return -1;
    return height;
  }

  // Key, links and height are packed into one 24-byte record so that every
  // hop of a descend / neighbor walk / rebalance touches a single cache
  // line.
  struct Node {
    Key key;
    Handle left;
    Handle right;
    Handle parent;
    std::int32_t height;
  };

  Compare cmp_;
  std::vector<Node> nodes_;
  std::vector<std::uint8_t> in_tree_;
  Handle root_ = kNull;
  Handle max_ = kNull;
  std::uint32_t size_ = 0;
};

}  // namespace prop
