// Classic FM bucket structure (Fiduccia–Mattheyses 1982).
//
// Integer gains in [-max_gain, +max_gain] index an array of doubly-linked
// lists of node handles; a max-gain cursor makes "extract best" amortized
// O(1) across a pass.  Links live in flat per-handle arrays, so insert,
// erase and gain updates are true O(1) with no allocation.  Valid only for
// unit net costs (integer gains); the AVL tree (avl_tree.h) covers the
// weighted case, exactly as the paper discusses in Sec. 4.
#pragma once

#include <cstdint>
#include <vector>

namespace prop {

class BucketList {
 public:
  using Handle = std::uint32_t;
  static constexpr Handle kNull = static_cast<Handle>(-1);

  /// `capacity` handles, gains clamped to [-max_gain, +max_gain].
  BucketList(Handle capacity, int max_gain);

  std::uint32_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  bool contains(Handle h) const noexcept { return in_list_[h] != 0; }
  int gain(Handle h) const noexcept { return gain_[h]; }
  int max_gain_bound() const noexcept { return max_gain_; }

  /// Target part riding along with h's gain (k-way refiners store the best
  /// move's destination here; 2-way users can ignore it — it defaults to 0).
  std::uint32_t target(Handle h) const noexcept { return target_[h]; }

  void clear();

  /// Inserts h with the given gain (LIFO within its bucket).  h must not be
  /// present; gain must be within the bound.  `target` is the payload
  /// returned by target(h) — the best move's destination part for k-way
  /// refiners.
  void insert(Handle h, int gain, std::uint32_t target = 0);

  /// Removes h; it must be present.
  void erase(Handle h);

  /// Changes h's gain and target payload (no-op when both are unchanged).
  void update(Handle h, int new_gain, std::uint32_t target = 0);

  /// Handle with the maximum gain (most recently inserted first).
  /// Structure must be non-empty.  Non-const on purpose: selection tightens
  /// the lazy max-gain cursor (`top_`), a real mutation — hiding it behind
  /// `const` + const_cast was a logical-const violation that turns into a
  /// data race the moment a "read-only" list is shared across threads.
  Handle best() noexcept;

  /// Highest-gain handle satisfying `pred`, or kNull if none does.  Scans
  /// buckets downward; used for balance-constrained selection with
  /// non-uniform node sizes.  Like best(), tightens the lazy max-gain
  /// cursor past empty buckets so repeated selections stay amortized O(1)
  /// (and is therefore non-const, see best()).
  template <typename Pred>
  Handle best_where(Pred&& pred) {
    bool tightened = false;
    for (int g = top_; g >= -max_gain_; --g) {
      const Handle head = buckets_[index(g)];
      if (head == kNull) continue;
      if (!tightened) {
        top_ = g;
        tightened = true;
      }
      for (Handle h = head; h != kNull; h = next_[h]) {
        if (pred(h)) return h;
      }
    }
    if (!tightened) top_ = -max_gain_;
    return kNull;
  }

 private:
  std::size_t index(int gain) const noexcept {
    return static_cast<std::size_t>(gain + max_gain_);
  }

  int max_gain_;
  std::vector<Handle> buckets_;      // head per gain value
  std::vector<Handle> next_;         // per handle
  std::vector<Handle> prev_;         // per handle
  std::vector<int> gain_;            // per handle
  std::vector<std::uint32_t> target_;  // per handle: best-move destination
  std::vector<std::uint8_t> in_list_;
  int top_;  // highest possibly non-empty bucket
  std::uint32_t size_ = 0;
};

}  // namespace prop
