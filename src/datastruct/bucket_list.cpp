#include "datastruct/bucket_list.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace prop {

BucketList::BucketList(Handle capacity, int max_gain)
    : max_gain_(max_gain),
      buckets_(2 * static_cast<std::size_t>(max_gain) + 1, kNull),
      next_(capacity, kNull),
      prev_(capacity, kNull),
      gain_(capacity, 0),
      target_(capacity, 0),
      in_list_(capacity, 0),
      top_(-max_gain) {
  if (max_gain < 0) throw std::invalid_argument("bucket: max_gain must be >= 0");
}

void BucketList::clear() {
  std::fill(buckets_.begin(), buckets_.end(), kNull);
  std::fill(in_list_.begin(), in_list_.end(), 0);
  top_ = -max_gain_;
  size_ = 0;
}

void BucketList::insert(Handle h, int gain, std::uint32_t target) {
  assert(!contains(h));
  assert(gain >= -max_gain_ && gain <= max_gain_);
  gain_[h] = gain;
  target_[h] = target;
  in_list_[h] = 1;
  const std::size_t b = index(gain);
  next_[h] = buckets_[b];
  prev_[h] = kNull;
  if (buckets_[b] != kNull) prev_[buckets_[b]] = h;
  buckets_[b] = h;
  top_ = std::max(top_, gain);
  ++size_;
}

void BucketList::erase(Handle h) {
  assert(contains(h));
  const std::size_t b = index(gain_[h]);
  if (prev_[h] != kNull) {
    next_[prev_[h]] = next_[h];
  } else {
    buckets_[b] = next_[h];
  }
  if (next_[h] != kNull) prev_[next_[h]] = prev_[h];
  in_list_[h] = 0;
  --size_;
}

void BucketList::update(Handle h, int new_gain, std::uint32_t target) {
  if (gain_[h] == new_gain && target_[h] == target && contains(h)) return;
  if (gain_[h] == new_gain && contains(h)) {
    target_[h] = target;  // payload-only change: no relink needed
    return;
  }
  erase(h);
  insert(h, new_gain, target);
}

BucketList::Handle BucketList::best() noexcept {
  assert(!empty());
  int g = top_;
  while (buckets_[index(g)] == kNull) --g;
  // top_ is a lazy upper bound; tightening it here keeps best() amortized
  // O(1) over a pass.
  top_ = g;
  return buckets_[index(g)];
}

}  // namespace prop
