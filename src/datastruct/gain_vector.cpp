#include "datastruct/gain_vector.h"

namespace prop {

std::string GainVector::to_string() const {
  std::string out = "(";
  for (int i = 1; i <= levels_; ++i) {
    if (i > 1) out += ',';
    out += std::to_string(at(i));
  }
  out += ')';
  return out;
}

}  // namespace prop
