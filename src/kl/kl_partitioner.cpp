#include "kl/kl_partitioner.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "partition/initial.h"
#include "util/rng.h"

namespace prop {
namespace {

constexpr double kEps = 1e-9;

/// Top free nodes of `side` by immediate gain (partial selection).
void top_candidates(const Partition& part, const std::vector<std::uint8_t>& locked,
                    int side, int width, std::vector<NodeId>& out) {
  out.clear();
  const Hypergraph& g = part.graph();
  // (gain, node) max-selection without a full sort: keep a small sorted
  // buffer — width is tiny (default 8).
  std::vector<std::pair<double, NodeId>> best;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (locked[u] || part.side(u) != side) continue;
    const double gain = part.immediate_gain(u);
    if (static_cast<int>(best.size()) < width) {
      best.emplace_back(gain, u);
      std::push_heap(best.begin(), best.end(), std::greater<>{});  // min-heap
    } else if (gain > best.front().first) {
      std::pop_heap(best.begin(), best.end(), std::greater<>{});
      best.back() = {gain, u};
      std::push_heap(best.begin(), best.end(), std::greater<>{});
    }
  }
  for (const auto& [gain, u] : best) out.push_back(u);
}

/// Exact cut delta of swapping (a, b): uses tentative moves, restoring the
/// partition before returning.
double swap_gain(Partition& part, NodeId a, NodeId b) {
  const double before = part.cut_cost();
  part.move(a);
  part.move(b);
  const double after = part.cut_cost();
  part.move(b);
  part.move(a);
  return before - after;
}

/// One KL pass.  Returns the accepted prefix improvement; sets
/// `interrupted` on a mid-pass deadline/cancellation (the rollback to the
/// best swap prefix still runs, so balance is preserved).
double kl_pass(Partition& part, const KlConfig& config, bool& interrupted) {
  const Hypergraph& g = part.graph();
  const NodeId n = g.num_nodes();
  std::vector<std::uint8_t> locked(n, 0);

  std::vector<std::pair<NodeId, NodeId>> swapped;
  double prefix = 0.0;
  double best_prefix = 0.0;
  std::size_t best_count = 0;

  std::vector<NodeId> cand0;
  std::vector<NodeId> cand1;
  for (;;) {
    if (config.context && config.context->refine_should_stop()) {
      interrupted = true;
      break;
    }
    top_candidates(part, locked, 0, config.candidate_width, cand0);
    top_candidates(part, locked, 1, config.candidate_width, cand1);
    if (cand0.empty() || cand1.empty()) break;

    NodeId best_a = kInvalidNode;
    NodeId best_b = kInvalidNode;
    double best_gain = 0.0;
    bool have = false;
    for (const NodeId a : cand0) {
      for (const NodeId b : cand1) {
        const double gain = swap_gain(part, a, b);
        if (!have || gain > best_gain) {
          have = true;
          best_gain = gain;
          best_a = a;
          best_b = b;
        }
      }
    }
    part.move(best_a);
    part.move(best_b);
    locked[best_a] = 1;
    locked[best_b] = 1;
    swapped.emplace_back(best_a, best_b);
    prefix += best_gain;
    if (prefix > best_prefix + kEps) {
      best_prefix = prefix;
      best_count = swapped.size();
    }
  }

  for (std::size_t i = swapped.size(); i > best_count; --i) {
    part.move(swapped[i - 1].second);
    part.move(swapped[i - 1].first);
  }
  return best_prefix;
}

}  // namespace

RefineOutcome kl_refine(Partition& part, const BalanceConstraint& balance,
                        const KlConfig& config) {
  if (!part.graph().unit_node_sizes()) {
    throw std::invalid_argument("KL requires unit node sizes");
  }
  if (!balance.feasible(part.side_size(0))) {
    throw std::invalid_argument("KL requires a feasible starting partition");
  }
  RefineOutcome out;
  for (int pass = 0; pass < config.max_passes; ++pass) {
    bool interrupted = false;
    const double gained = kl_pass(part, config, interrupted);
    ++out.passes;
    if (interrupted) {
      out.interrupted = true;
      break;
    }
    if (gained <= kEps) break;
  }
  out.cut_cost = part.cut_cost();
  return out;
}

PartitionResult KlPartitioner::run(const Hypergraph& g,
                                   const BalanceConstraint& balance,
                                   std::uint64_t seed) {
  Rng rng(seed);
  Partition part(g, random_balanced_sides(g, balance, rng));
  const RefineOutcome outcome = kl_refine(part, balance, config_);
  PartitionResult result;
  result.side = part.sides();
  result.cut_cost = outcome.cut_cost;
  result.passes = outcome.passes;
  return result;
}

}  // namespace prop
