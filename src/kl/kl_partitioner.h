// Kernighan–Lin pair-swap bipartitioner (Bell System Tech. J., 1970) — the
// ancestor of the whole iterative-improvement family discussed in the
// paper's Sec. 1/2 ("Kernighan and Lin proposed the well-known KL graph
// partitioning algorithm using pair swaps").
//
// Classic KL swaps one node from each side per step, so balance is
// preserved exactly; a pass tentatively swaps everything and rolls back to
// the best prefix, like FM.  Evaluating all O(n^2) pairs per step is
// KL's notorious cost; as is standard, each step considers only the
// top-`candidate_width` FM-gain nodes per side and scores those pairs
// exactly (hyperedge-exact, via tentative moves).
#pragma once

#include <cstdint>
#include <string>

#include "partition/partition.h"
#include "partition/partitioner.h"
#include "runtime/run_context.h"

namespace prop {

struct KlConfig {
  /// Candidates per side considered for each swap (classic KL is
  /// effectively unbounded; 8 preserves its behaviour at tractable cost).
  int candidate_width = 8;
  int max_passes = 16;

  /// Optional runtime context: the swap loop polls for deadline expiry /
  /// injected cancellation and stops mid-pass, rolling back to the best
  /// prefix of swaps (pair swaps preserve balance throughout).  Null = inert.
  const RunContext* context = nullptr;
};

/// Improves `part` in place with KL passes until no positive gain.
/// Requires equal side sizes to stay within `balance` (swaps preserve the
/// initial size difference; node sizes are ignored by classic KL, so this
/// implementation requires unit node sizes).
RefineOutcome kl_refine(Partition& part, const BalanceConstraint& balance,
                        const KlConfig& config = {});

class KlPartitioner final : public Bipartitioner {
 public:
  explicit KlPartitioner(KlConfig config = {}) : config_(config) {}

  std::string name() const override { return "KL"; }

  bool attach_context(const RunContext* context) noexcept override {
    config_.context = context;
    return true;
  }

  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

  std::unique_ptr<Bipartitioner> clone() const override {
    auto copy = std::make_unique<KlPartitioner>(config_);
    copy->attach_context(nullptr);
    return copy;
  }

 private:
  KlConfig config_;
};

}  // namespace prop
