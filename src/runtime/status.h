// Execution-status vocabulary of the runtime layer.
//
// The paper's headline claim is cut quality *per unit CPU time* (Table 4),
// which makes the partitioners anytime algorithms in practice: a run that
// hits its wall-clock budget, a stalled eigensolver or an injected fault
// should surface as *data* — a Status attached to the best-so-far result —
// not as an exception that aborts a whole multi-start experiment.
#pragma once

#include <optional>
#include <string>
#include <string_view>

namespace prop {

enum class StatusCode {
  kOk,                 ///< run completed normally
  kBudgetExhausted,    ///< wall-clock deadline hit; best-so-far returned
  kCancelled,          ///< explicit cooperative cancellation
  kInjectedFault,      ///< a FaultInjector fired at this point
  kEigensolverStalled, ///< Lanczos/tridiagonal iteration failed to converge
  kInvalidResult,      ///< partitioner output failed validation
  kSkipped,            ///< run never started (budget spent by earlier runs)
  kError,              ///< partitioner raised an exception
  kShedOverload,       ///< service admission queue at depth limit; job shed
  kInvalidRequest,     ///< malformed/oversized job payload or protocol line
};

/// Stable snake_case identifier used in --stats-json and log lines.
const char* to_string(StatusCode code) noexcept;

/// Inverse of to_string, for wire-format parsing (service protocol).
/// Returns nullopt for an unknown identifier.
std::optional<StatusCode> status_code_from_name(std::string_view name) noexcept;

struct Status {
  StatusCode code = StatusCode::kOk;
  std::string message;  ///< empty for kOk

  bool ok() const noexcept { return code == StatusCode::kOk; }

  static Status success() { return {}; }
  static Status failure(StatusCode code, std::string message) {
    return {code, std::move(message)};
  }

  /// "budget_exhausted: deadline hit after 2 of 20 runs" (or just the code
  /// name when there is no message).
  std::string describe() const;
};

}  // namespace prop
