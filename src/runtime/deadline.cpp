#include "runtime/deadline.h"

#include <limits>

namespace prop {

Deadline Deadline::after_ms(double budget_ms) noexcept {
  Deadline d;
  d.unlimited_ = false;
  const auto now = Clock::now();
  if (budget_ms <= 0.0) {
    d.at_ = now;
    return d;
  }
  d.at_ = now + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double, std::milli>(budget_ms));
  return d;
}

bool Deadline::expired() const noexcept {
  if (unlimited_) return false;
  return Clock::now() >= at_;
}

double Deadline::remaining_ms() const noexcept {
  if (unlimited_) return std::numeric_limits<double>::infinity();
  const auto left = std::chrono::duration<double, std::milli>(at_ - Clock::now());
  return left.count() > 0.0 ? left.count() : 0.0;
}

}  // namespace prop
