#include "runtime/fault_injection.h"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

namespace prop {
namespace {

std::optional<FaultSite> site_from_name(std::string_view name) noexcept {
  if (name == "lanczos-stall") return FaultSite::kLanczosStall;
  if (name == "cancel-mid-pass") return FaultSite::kCancelMidPass;
  if (name == "validate-fail") return FaultSite::kValidateFail;
  if (name == "prop-drift") return FaultSite::kPropDrift;
  if (name == "cg-stall") return FaultSite::kCgStall;
  if (name == "serve-exec") return FaultSite::kServeExec;
  return std::nullopt;
}

[[noreturn]] void bad_spec(std::string_view entry, const char* why) {
  throw std::invalid_argument("fault spec '" + std::string(entry) + "': " + why);
}

}  // namespace

const char* to_string(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kLanczosStall: return "lanczos-stall";
    case FaultSite::kCancelMidPass: return "cancel-mid-pass";
    case FaultSite::kValidateFail: return "validate-fail";
    case FaultSite::kPropDrift: return "prop-drift";
    case FaultSite::kCgStall: return "cg-stall";
    case FaultSite::kServeExec: return "serve-exec";
  }
  return "unknown";
}

FaultInjector FaultInjector::fork(std::uint64_t salt) const {
  FaultInjector out(*this);
  out.rng_ = Rng(mix_seed(seed_, salt));
  for (auto& slot : out.rules_) {
    if (slot) {
      slot->queries = 0;
      slot->fires = 0;
    }
  }
  return out;
}

FaultInjector::FaultInjector(const std::string& spec, std::uint64_t seed)
    : rng_(seed), seed_(seed) {
  std::string_view rest = spec;
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    std::string_view entry = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{}
                                           : rest.substr(comma + 1);
    if (entry.empty()) continue;

    Rule rule;
    // Probability suffix first ('~P'), then occurrence ('@N').
    if (const auto tilde = entry.find('~'); tilde != std::string_view::npos) {
      const std::string p(entry.substr(tilde + 1));
      char* end = nullptr;
      rule.probability = std::strtod(p.c_str(), &end);
      if (p.empty() || end != p.c_str() + p.size() || rule.probability < 0.0 ||
          rule.probability > 1.0) {
        bad_spec(entry, "probability must be in [0, 1]");
      }
      entry = entry.substr(0, tilde);
    }
    if (const auto at = entry.find('@'); at != std::string_view::npos) {
      const std::string n(entry.substr(at + 1));
      char* end = nullptr;
      const long long v = std::strtoll(n.c_str(), &end, 10);
      if (n.empty() || end != n.c_str() + n.size() || v < 1) {
        bad_spec(entry, "occurrence must be a positive integer");
      }
      rule.at = static_cast<std::uint64_t>(v);
      entry = entry.substr(0, at);
    }
    const auto site = site_from_name(entry);
    if (!site) bad_spec(entry, "unknown site");
    rules_[static_cast<int>(*site)] = rule;
  }
}

bool FaultInjector::armed(FaultSite site) const noexcept {
  return rules_[static_cast<int>(site)].has_value();
}

bool FaultInjector::should_fail(FaultSite site) noexcept {
  auto& slot = rules_[static_cast<int>(site)];
  if (!slot) return false;
  Rule& rule = *slot;
  ++rule.queries;
  if (rule.at != 0 && rule.queries != rule.at) return false;
  if (rule.probability < 1.0 && !rng_.chance(rule.probability)) return false;
  ++rule.fires;
  return true;
}

std::uint64_t FaultInjector::query_count(FaultSite site) const noexcept {
  const auto& slot = rules_[static_cast<int>(site)];
  return slot ? slot->queries : 0;
}

std::uint64_t FaultInjector::fire_count(FaultSite site) const noexcept {
  const auto& slot = rules_[static_cast<int>(site)];
  return slot ? slot->fires : 0;
}

}  // namespace prop
