// Deterministic fault injection for exercising the degradation paths.
//
// Every fallback in the runtime layer (eigensolver stall -> random-order
// init, gain-drift blowup -> resync -> deterministic-FM fallback, mid-pass
// cancellation -> best-so-far rollback, validation failure -> per-run
// isolation in run_many) must be testable without waiting for the fault to
// occur naturally.  A FaultInjector is armed from a spec string and queried
// at fixed sites in the code; a query either fires (the code behaves as if
// the fault happened) or passes through.
//
// Spec grammar (comma-separated entries):
//
//   entry := site ['@' N] ['~' P]
//   site  := lanczos-stall | cancel-mid-pass | validate-fail
//          | prop-drift | cg-stall | serve-exec
//
// Without '@', every query of the site is eligible; with '@N' only the
// N-th query (1-based) is.  Eligible queries fire with probability P
// (default 1.0), drawn from a SplitMix64-seeded xoshiro256** stream so a
// given (spec, seed) pair always fires at the same queries.
//
// Examples:
//   --inject=lanczos-stall            every eigensolver call stalls
//   --inject=cancel-mid-pass@100      cancel exactly at the 100th poll
//   --inject=validate-fail@2          second validation fails
//   --inject=prop-drift~0.01          ~1% of moves report drift blowup
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>

#include "util/rng.h"

namespace prop {

enum class FaultSite {
  kLanczosStall,   ///< queried once per smallest_eigenpairs call
  kCancelMidPass,  ///< queried at every refiner move-loop poll
  kValidateFail,   ///< queried once per run_checked validation
  kPropDrift,      ///< queried at every PROP move (drift blowup signal)
  kCgStall,        ///< queried once per conjugate_gradient call
  kServeExec,      ///< queried once per service job attempt (worker throws)
};

inline constexpr int kNumFaultSites = 6;

/// Stable identifier used in specs, telemetry and error messages.
const char* to_string(FaultSite site) noexcept;

class FaultInjector {
 public:
  /// Nothing armed; every should_fail() returns false.
  FaultInjector() = default;

  /// Arms the sites named in `spec` (see grammar above).  Throws
  /// std::invalid_argument on an unknown site or malformed entry.
  explicit FaultInjector(const std::string& spec,
                         std::uint64_t seed = 0x5eedfa017ULL);

  /// Derives an independent injector with the same armed rules: query/fire
  /// counters reset to zero and the probability stream reseeded by mixing
  /// `salt` into this injector's seed.  The parallel runner forks one
  /// injector per run, so '@N' means "the run's N-th query" regardless of
  /// how runs are scheduled across workers, and '~P' streams are
  /// uncorrelated between runs but identical for a given (spec, seed, salt).
  FaultInjector fork(std::uint64_t salt) const;

  bool armed(FaultSite site) const noexcept;

  /// Advances the site's query counter and reports whether this query
  /// fires.  Unarmed sites never fire and count nothing.
  bool should_fail(FaultSite site) noexcept;

  /// Queries / fires observed so far at `site` (for tests and telemetry).
  std::uint64_t query_count(FaultSite site) const noexcept;
  std::uint64_t fire_count(FaultSite site) const noexcept;

 private:
  struct Rule {
    std::uint64_t at = 0;       ///< 0 = every query; else the 1-based query
    double probability = 1.0;   ///< chance an eligible query fires
    std::uint64_t queries = 0;
    std::uint64_t fires = 0;
  };

  std::array<std::optional<Rule>, kNumFaultSites> rules_;
  Rng rng_;
  std::uint64_t seed_ = 0x5eedfa017ULL;
};

}  // namespace prop
