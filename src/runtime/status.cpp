#include "runtime/status.h"

namespace prop {

const char* to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kBudgetExhausted: return "budget_exhausted";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kInjectedFault: return "injected_fault";
    case StatusCode::kEigensolverStalled: return "eigensolver_stalled";
    case StatusCode::kInvalidResult: return "invalid_result";
    case StatusCode::kSkipped: return "skipped";
    case StatusCode::kError: return "error";
    case StatusCode::kShedOverload: return "shed_overload";
    case StatusCode::kInvalidRequest: return "invalid_request";
  }
  return "unknown";
}

std::optional<StatusCode> status_code_from_name(std::string_view name) noexcept {
  // The enum is small and this only runs on wire-format parses, so a linear
  // scan over the canonical names keeps the two directions trivially in sync.
  for (const StatusCode code :
       {StatusCode::kOk, StatusCode::kBudgetExhausted, StatusCode::kCancelled,
        StatusCode::kInjectedFault, StatusCode::kEigensolverStalled,
        StatusCode::kInvalidResult, StatusCode::kSkipped, StatusCode::kError,
        StatusCode::kShedOverload, StatusCode::kInvalidRequest}) {
    if (name == to_string(code)) return code;
  }
  return std::nullopt;
}

std::string Status::describe() const {
  std::string out = to_string(code);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace prop
