#include "runtime/status.h"

namespace prop {

const char* to_string(StatusCode code) noexcept {
  switch (code) {
    case StatusCode::kOk: return "ok";
    case StatusCode::kBudgetExhausted: return "budget_exhausted";
    case StatusCode::kCancelled: return "cancelled";
    case StatusCode::kInjectedFault: return "injected_fault";
    case StatusCode::kEigensolverStalled: return "eigensolver_stalled";
    case StatusCode::kInvalidResult: return "invalid_result";
    case StatusCode::kSkipped: return "skipped";
    case StatusCode::kError: return "error";
  }
  return "unknown";
}

std::string Status::describe() const {
  std::string out = to_string(code);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  return out;
}

}  // namespace prop
