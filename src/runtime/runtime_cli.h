// Uniform command-line surface of the runtime layer.
//
// Every harness (prop_cli, the table benches) accepts the same four flags:
//
//   --time-budget-ms N     wall-clock budget for the whole invocation
//   --on-timeout=best|fail exit 0 with the best-so-far result (default) or
//                          exit nonzero when the budget expires
//   --inject=SPEC          arm the FaultInjector (grammar in
//                          fault_injection.h)
//   --inject-seed N        seed of the injector's probability stream
//
// RuntimeSession owns the CancelToken / FaultInjector / DegradationLog that
// a RunContext merely borrows, so a harness needs exactly one local of this
// type.  When none of the flags is given, context() is null and the runtime
// layer stays fully inert.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "runtime/run_context.h"
#include "util/cli.h"

namespace prop {

/// The flag names above, for inclusion in validate_flags() known-lists.
const std::vector<std::string>& runtime_flag_names();

/// The shared unknown-flag gate: appends the uniform runtime flag names to
/// `known` and rejects anything else via validate_flags.  Every binary
/// (prop_cli, prop_serve, the bench drivers) routes through this so a typo'd
/// flag fails identically everywhere instead of silently becoming a no-op.
bool check_flags(const CliArgs& args, std::vector<std::string> known,
                 const std::string& usage);

/// Parses --threads uniformly: absent or 0 means "harness default"
/// (sequential run_many / auto), >= 1 selects that worker count.  A negative
/// or non-numeric value prints a diagnostic to stderr and returns nullopt so
/// the caller can exit with its usage line.
std::optional<int> parse_thread_count(const CliArgs& args);

/// Uniform usage-line emission: "usage: <program> <usage>" plus an optional
/// extra block (e.g. an algorithm list).  Returns 2, the conventional
/// bad-invocation exit code, so callers can `return usage_error(...)`.
int usage_error(const std::string& program, const std::string& usage,
                const std::string& extra = "");

/// One line per degradation event ("degraded: eig1.lanczos -> ..."), for
/// harness stderr reporting.  Empty string when nothing degraded.
std::string describe_degradations(const DegradationLog& log);

class RuntimeSession {
 public:
  /// Parses the runtime flags out of `args`.  Throws std::invalid_argument
  /// on a malformed --on-timeout value or --inject spec.
  explicit RuntimeSession(const CliArgs& args);

  RuntimeSession(const RuntimeSession&) = delete;
  RuntimeSession& operator=(const RuntimeSession&) = delete;

  /// Context to thread into runs; null when no runtime flag was given.
  const RunContext* context() const noexcept {
    return active_ ? &context_ : nullptr;
  }

  bool active() const noexcept { return active_; }

  /// --on-timeout=fail was given: a budget-exhausted outcome should exit
  /// nonzero instead of reporting the best-so-far result.
  bool fail_on_timeout() const noexcept { return fail_on_timeout_; }

  CancelToken& cancel() noexcept { return cancel_; }
  FaultInjector& injector() noexcept { return injector_; }
  const DegradationLog& degradations() const noexcept { return degradations_; }

 private:
  CancelToken cancel_;
  FaultInjector injector_;
  DegradationLog degradations_;
  RunContext context_;
  bool active_ = false;
  bool fail_on_timeout_ = false;
};

}  // namespace prop
