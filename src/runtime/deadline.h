// Wall-clock budgets and cooperative cancellation.
//
// A Deadline is a fixed point in wall-clock time; a CancelToken combines a
// Deadline with an explicit cancel request into a single poll point that a
// pass engine can query at the top of its inner move loop.  Polling is
// cheap by construction: the token only consults the clock every
// kPollStride-th call (a counter increment and mask otherwise), so the FM
// family's million-moves-per-second loops can poll every move without a
// measurable slowdown.  None of this is thread-safe — the runtime layer is
// single-threaded like the rest of the reproduction.
#pragma once

#include <chrono>
#include <cstdint>

#include "runtime/status.h"

namespace prop {

class Deadline {
 public:
  /// A deadline that never expires.
  static Deadline never() noexcept { return Deadline{}; }

  /// Expires `budget_ms` wall-clock milliseconds from now; a non-positive
  /// budget is already expired.
  static Deadline after_ms(double budget_ms) noexcept;

  bool unlimited() const noexcept { return unlimited_; }
  bool expired() const noexcept;

  /// Milliseconds until expiry (0 when expired; +inf when unlimited).
  double remaining_ms() const noexcept;

 private:
  using Clock = std::chrono::steady_clock;

  Deadline() noexcept = default;

  Clock::time_point at_{};
  bool unlimited_ = true;
};

/// Poll-based cooperative cancellation: deadline expiry, explicit cancel(),
/// or an injected fault all funnel into one sticky stop flag.
class CancelToken {
 public:
  CancelToken() noexcept : deadline_(Deadline::never()) {}
  explicit CancelToken(Deadline deadline) noexcept : deadline_(deadline) {}

  /// The poll point for hot loops.  Counts calls and consults the deadline
  /// only every kPollStride-th call; once stopped, stays stopped.
  bool should_stop() noexcept {
    if (stopped_) return true;
    if ((++polls_ & (kPollStride - 1)) != 0) return false;
    return check_deadline();
  }

  /// Stops the token immediately with `reason`.
  void cancel(StatusCode reason = StatusCode::kCancelled) noexcept {
    if (!stopped_) {
      stopped_ = true;
      reason_ = reason;
    }
  }

  /// Side-effect-free query: has a stop already been observed/requested?
  /// (Unlike should_stop(), does not advance the poll counter, but does
  /// honor an already-expired deadline.)
  bool stop_requested() const noexcept {
    return stopped_ || (!deadline_.unlimited() && deadline_.expired());
  }

  /// Why the token stopped (kOk while still running).  Deadline expiry
  /// observed via stop_requested() alone reports kBudgetExhausted.
  StatusCode stop_code() const noexcept {
    if (stopped_) return reason_;
    if (!deadline_.unlimited() && deadline_.expired()) {
      return StatusCode::kBudgetExhausted;
    }
    return StatusCode::kOk;
  }

  const Deadline& deadline() const noexcept { return deadline_; }
  std::uint64_t polls() const noexcept { return polls_; }

  /// Clock checks happen every kPollStride-th poll.  64 keeps worst-case
  /// overshoot below ~a microsecond of moves while making the common poll a
  /// single increment-and-mask.
  static constexpr std::uint64_t kPollStride = 64;

 private:
  bool check_deadline() noexcept {
    if (!deadline_.unlimited() && deadline_.expired()) {
      stopped_ = true;
      reason_ = StatusCode::kBudgetExhausted;
    }
    return stopped_;
  }

  Deadline deadline_;
  std::uint64_t polls_ = 0;
  bool stopped_ = false;
  StatusCode reason_ = StatusCode::kOk;
};

}  // namespace prop
