// Wall-clock budgets and cooperative cancellation.
//
// A Deadline is a fixed point in wall-clock time; a CancelToken combines a
// Deadline with an explicit cancel request into a single poll point that a
// pass engine can query at the top of its inner move loop.  Polling is
// cheap by construction: the token only consults the clock every
// kPollStride-th call (a counter increment and mask otherwise), so the FM
// family's million-moves-per-second loops can poll every move without a
// measurable slowdown.
//
// Threading model: a CancelToken is owned and polled by exactly one thread.
// The only cross-thread primitive is StopBroadcast — a lock-free latch the
// parallel multi-start runner shares between its per-worker tokens so that
// one worker observing a deadline expiry (or an external cancellation)
// stops every sibling at its next poll.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "runtime/status.h"

namespace prop {

class Deadline {
 public:
  /// A deadline that never expires.
  static Deadline never() noexcept { return Deadline{}; }

  /// Expires `budget_ms` wall-clock milliseconds from now; a non-positive
  /// budget is already expired.
  static Deadline after_ms(double budget_ms) noexcept;

  bool unlimited() const noexcept { return unlimited_; }
  bool expired() const noexcept;

  /// Milliseconds until expiry (0 when expired; +inf when unlimited).
  double remaining_ms() const noexcept;

 private:
  using Clock = std::chrono::steady_clock;

  Deadline() noexcept = default;

  Clock::time_point at_{};
  bool unlimited_ = true;
};

/// Sticky one-shot stop latch shared across threads.  The first publish
/// wins; later publishes are ignored.  Injected faults are deliberately
/// *not* published by CancelToken (see cancel() below): they are a per-run
/// failure-isolation mechanism, and broadcasting them would make a parallel
/// multi-start's results depend on worker scheduling.
class StopBroadcast {
 public:
  bool stopped() const noexcept {
    return code_.load(std::memory_order_relaxed) !=
           static_cast<int>(StatusCode::kOk);
  }

  StatusCode code() const noexcept {
    return static_cast<StatusCode>(code_.load(std::memory_order_relaxed));
  }

  /// Publishes `reason` unless a stop was already published.
  void publish(StatusCode reason) noexcept {
    int expected = static_cast<int>(StatusCode::kOk);
    code_.compare_exchange_strong(expected, static_cast<int>(reason),
                                  std::memory_order_relaxed);
  }

 private:
  std::atomic<int> code_{static_cast<int>(StatusCode::kOk)};
};

/// Poll-based cooperative cancellation: deadline expiry, explicit cancel(),
/// or an injected fault all funnel into one sticky stop flag.
class CancelToken {
 public:
  CancelToken() noexcept : deadline_(Deadline::never()) {}
  explicit CancelToken(Deadline deadline) noexcept : deadline_(deadline) {}

  /// Links this token to a shared latch: every poll observes a published
  /// stop, and this token's own deadline expiry / explicit cancellation is
  /// published for sibling tokens.  The broadcast must outlive the token.
  void bind_broadcast(StopBroadcast* broadcast) noexcept {
    broadcast_ = broadcast;
  }

  /// The poll point for hot loops.  Counts calls and consults the deadline
  /// only every kPollStride-th call (a broadcast stop is observed on every
  /// call — one relaxed atomic load); once stopped, stays stopped.
  bool should_stop() noexcept {
    if (stopped_) return true;
    if (broadcast_ && broadcast_->stopped()) {
      stopped_ = true;
      reason_ = broadcast_->code();
      return true;
    }
    if ((++polls_ & (kPollStride - 1)) != 0) return false;
    return check_deadline();
  }

  /// Stops the token immediately with `reason`.  Budget expiry and explicit
  /// cancellation are broadcast to sibling tokens; kInjectedFault stays
  /// local to this token so injected faults remain per-run-isolated (and
  /// parallel results schedule-independent).
  void cancel(StatusCode reason = StatusCode::kCancelled) noexcept {
    if (!stopped_) {
      stopped_ = true;
      reason_ = reason;
      if (broadcast_ && (reason == StatusCode::kCancelled ||
                         reason == StatusCode::kBudgetExhausted)) {
        broadcast_->publish(reason);
      }
    }
  }

  /// Side-effect-free query: has a stop already been observed/requested?
  /// (Unlike should_stop(), does not advance the poll counter, but does
  /// honor an already-expired deadline and a published broadcast stop.)
  bool stop_requested() const noexcept {
    return stopped_ || (broadcast_ && broadcast_->stopped()) ||
           (!deadline_.unlimited() && deadline_.expired());
  }

  /// Why the token stopped (kOk while still running).  Deadline expiry
  /// observed via stop_requested() alone reports kBudgetExhausted.
  StatusCode stop_code() const noexcept {
    if (stopped_) return reason_;
    if (broadcast_ && broadcast_->stopped()) return broadcast_->code();
    if (!deadline_.unlimited() && deadline_.expired()) {
      return StatusCode::kBudgetExhausted;
    }
    return StatusCode::kOk;
  }

  const Deadline& deadline() const noexcept { return deadline_; }
  std::uint64_t polls() const noexcept { return polls_; }

  /// Clock checks happen every kPollStride-th poll.  64 keeps worst-case
  /// overshoot below ~a microsecond of moves while making the common poll a
  /// single increment-and-mask.
  static constexpr std::uint64_t kPollStride = 64;

 private:
  bool check_deadline() noexcept {
    if (!deadline_.unlimited() && deadline_.expired()) {
      stopped_ = true;
      reason_ = StatusCode::kBudgetExhausted;
      if (broadcast_) broadcast_->publish(StatusCode::kBudgetExhausted);
    }
    return stopped_;
  }

  Deadline deadline_;
  StopBroadcast* broadcast_ = nullptr;
  std::uint64_t polls_ = 0;
  bool stopped_ = false;
  StatusCode reason_ = StatusCode::kOk;
};

}  // namespace prop
