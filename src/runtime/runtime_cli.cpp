#include "runtime/runtime_cli.h"

#include <cstdio>
#include <stdexcept>

namespace prop {

const std::vector<std::string>& runtime_flag_names() {
  static const std::vector<std::string> names = {
      "time-budget-ms", "on-timeout", "inject", "inject-seed"};
  return names;
}

bool check_flags(const CliArgs& args, std::vector<std::string> known,
                 const std::string& usage) {
  for (const auto& name : runtime_flag_names()) known.push_back(name);
  return validate_flags(args, known, usage);
}

std::optional<int> parse_thread_count(const CliArgs& args) {
  if (!args.has("threads")) return 0;
  const auto threads = args.get_int("threads");
  if (!threads || *threads < 0) {
    std::fprintf(stderr, "error: --threads must be an integer >= 0\n");
    return std::nullopt;
  }
  return static_cast<int>(*threads);
}

int usage_error(const std::string& program, const std::string& usage,
                const std::string& extra) {
  std::fprintf(stderr, "usage: %s %s\n", program.c_str(), usage.c_str());
  if (!extra.empty()) std::fprintf(stderr, "%s\n", extra.c_str());
  return 2;
}

std::string describe_degradations(const DegradationLog& log) {
  std::string out;
  for (const DegradationEvent& e : log.events()) {
    out += "degraded: " + e.site + " -> " + e.action;
    if (!e.detail.empty()) out += " (" + e.detail + ")";
    out += "\n";
  }
  return out;
}

RuntimeSession::RuntimeSession(const CliArgs& args) {
  const double budget_ms = args.get_double_or("time-budget-ms", 0.0);
  if (budget_ms > 0.0) {
    cancel_ = CancelToken(Deadline::after_ms(budget_ms));
    active_ = true;
  }
  const std::string on_timeout = args.get_or("on-timeout", "best");
  if (on_timeout == "fail") {
    fail_on_timeout_ = true;
  } else if (on_timeout != "best") {
    throw std::invalid_argument("--on-timeout must be 'best' or 'fail', got '" +
                                on_timeout + "'");
  }
  if (const auto spec = args.get("inject"); spec && !spec->empty()) {
    const auto seed = args.get_int(std::string("inject-seed"));
    injector_ = seed ? FaultInjector(*spec, static_cast<std::uint64_t>(*seed))
                     : FaultInjector(*spec);
    active_ = true;
  }
  context_.cancel = &cancel_;
  context_.injector = &injector_;
  context_.degradations = &degradations_;
}

}  // namespace prop
