// The execution context threaded through partitioner entry points.
//
// A RunContext bundles the three runtime concerns — cooperative
// cancellation (CancelToken), deterministic fault injection (FaultInjector)
// and the degradation trail (DegradationLog) — behind null-safe helpers so
// pass engines and solvers can poll it unconditionally.  All members are
// optional; a default-constructed RunContext is inert and costs one branch
// per poll.
//
// Ownership: the context only borrows its pointers; the caller (typically
// run_checked / run_many) keeps them alive for the duration of the run.
#pragma once

#include <string>
#include <vector>

#include "runtime/deadline.h"
#include "runtime/fault_injection.h"
#include "runtime/status.h"

namespace prop {

/// One recorded fallback: where the failure was detected, what the runtime
/// degraded to, and optional detail ("drift 3.2e-2 > bound 1e-3").
struct DegradationEvent {
  std::string site;    ///< e.g. "eig1.lanczos", "prop.gain-drift"
  std::string action;  ///< e.g. "random-order-fallback", "resync"
  std::string detail;  ///< free-form, may be empty
};

class DegradationLog {
 public:
  void record(std::string site, std::string action, std::string detail = {}) {
    events_.push_back(
        {std::move(site), std::move(action), std::move(detail)});
  }

  const std::vector<DegradationEvent>& events() const noexcept {
    return events_;
  }
  bool empty() const noexcept { return events_.empty(); }
  void clear() noexcept { events_.clear(); }
  std::vector<DegradationEvent> take() noexcept { return std::move(events_); }

 private:
  std::vector<DegradationEvent> events_;
};

struct RunContext {
  CancelToken* cancel = nullptr;
  FaultInjector* injector = nullptr;
  DegradationLog* degradations = nullptr;

  /// Poll point for solver loops (Lanczos/CG/orderings): expired budget or
  /// requested cancellation.
  bool should_stop() const noexcept { return cancel && cancel->should_stop(); }

  /// Poll point for the refiners' move loops: additionally lets the
  /// injector force a mid-pass cancellation (which marks the token, so the
  /// outcome reports kInjectedFault rather than a clean finish).
  bool refine_should_stop() const noexcept {
    if (injector && injector->should_fail(FaultSite::kCancelMidPass)) {
      if (cancel) cancel->cancel(StatusCode::kInjectedFault);
      return true;
    }
    return should_stop();
  }

  /// Queries the injector at `site` (false when no injector is armed).
  bool inject(FaultSite site) const noexcept {
    return injector && injector->should_fail(site);
  }

  /// Records a degradation event (dropped silently without a log — the
  /// fallback itself must still happen).
  void degrade(std::string site, std::string action,
               std::string detail = {}) const {
    if (degradations) {
      degradations->record(std::move(site), std::move(action),
                           std::move(detail));
    }
  }

  /// Why the run is stopping (kOk while still running).
  StatusCode stop_code() const noexcept {
    return cancel ? cancel->stop_code() : StatusCode::kOk;
  }
};

}  // namespace prop
