#include "util/timer.h"

#include <ctime>

namespace prop {

double CpuTimer::now() noexcept {
  std::timespec ts{};
  if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

double ThreadCpuTimer::now() noexcept {
  std::timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

}  // namespace prop
