// Wall-clock and CPU timers used by the Table 4 runtime reproduction.
#pragma once

#include <chrono>
#include <cstdint>

namespace prop {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process CPU-time stopwatch (user + system), matching the paper's
/// "CPU times in secs per run" methodology.  Counts the CPU time of *all*
/// threads of the process; for the per-run columns of a parallel
/// multi-start use ThreadCpuTimer instead.
class CpuTimer {
 public:
  CpuTimer() noexcept { reset(); }
  void reset() noexcept { start_ = now(); }
  double seconds() const noexcept { return now() - start_; }

 private:
  static double now() noexcept;
  double start_ = 0.0;
};

/// CPU-time stopwatch scoped to the calling thread.  This is the
/// paper-comparable "CPU seconds of this run" metric: it stays correct when
/// independent runs execute concurrently on a thread pool, where process
/// CPU time would charge every run with its siblings' work.  Construct and
/// read on the same thread.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() noexcept { reset(); }
  void reset() noexcept { start_ = now(); }
  double seconds() const noexcept { return now() - start_; }

 private:
  static double now() noexcept;
  double start_ = 0.0;
};

/// Accumulates timing samples and reports simple statistics.
class TimingStats {
 public:
  void add(double seconds) noexcept {
    total_ += seconds;
    if (count_ == 0 || seconds < min_) min_ = seconds;
    if (count_ == 0 || seconds > max_) max_ = seconds;
    ++count_;
  }

  double total() const noexcept { return total_; }
  double mean() const noexcept { return count_ ? total_ / count_ : 0.0; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  std::uint64_t count() const noexcept { return count_; }

 private:
  double total_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t count_ = 0;
};

}  // namespace prop
