// Wall-clock and CPU timers used by the Table 4 runtime reproduction.
#pragma once

#include <chrono>
#include <cstdint>

namespace prop {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() noexcept { reset(); }

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double milliseconds() const noexcept { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Process CPU-time stopwatch (user + system), matching the paper's
/// "CPU times in secs per run" methodology.
class CpuTimer {
 public:
  CpuTimer() noexcept { reset(); }
  void reset() noexcept { start_ = now(); }
  double seconds() const noexcept { return now() - start_; }

 private:
  static double now() noexcept;
  double start_ = 0.0;
};

/// Accumulates timing samples and reports simple statistics.
class TimingStats {
 public:
  void add(double seconds) noexcept {
    total_ += seconds;
    if (count_ == 0 || seconds < min_) min_ = seconds;
    if (count_ == 0 || seconds > max_) max_ = seconds;
    ++count_;
  }

  double total() const noexcept { return total_; }
  double mean() const noexcept { return count_ ? total_ / count_ : 0.0; }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  std::uint64_t count() const noexcept { return count_; }

 private:
  double total_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::uint64_t count_ = 0;
};

}  // namespace prop
