#include "util/cli.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace prop {
namespace {

bool looks_like_flag(std::string_view arg) {
  return arg.size() > 2 && arg.substr(0, 2) == "--";
}

}  // namespace

CliArgs::CliArgs(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const auto eq = body.find('=');
    if (eq != std::string_view::npos) {
      flags_[std::string(body.substr(0, eq))] = std::string(body.substr(eq + 1));
      continue;
    }
    // --name value (when the next token is not itself a flag), else boolean.
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      flags_[std::string(body)] = argv[i + 1];
      ++i;
    } else {
      flags_[std::string(body)] = "";
    }
  }
}

bool CliArgs::has(const std::string& name) const {
  return flags_.count(name) > 0;
}

std::optional<std::string> CliArgs::get(const std::string& name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

std::string CliArgs::get_or(const std::string& name, std::string fallback) const {
  const auto v = get(name);
  return v ? *v : std::move(fallback);
}

std::optional<std::int64_t> CliArgs::get_int(const std::string& name) const {
  const auto v = get(name);
  if (!v || v->empty()) return std::nullopt;
  return std::strtoll(v->c_str(), nullptr, 10);
}

std::int64_t CliArgs::get_int_or(const std::string& name,
                                 std::int64_t fallback) const {
  const auto v = get_int(name);
  return v ? *v : fallback;
}

std::optional<double> CliArgs::get_double(const std::string& name) const {
  const auto v = get(name);
  if (!v || v->empty()) return std::nullopt;
  return std::strtod(v->c_str(), nullptr);
}

double CliArgs::get_double_or(const std::string& name, double fallback) const {
  const auto v = get_double(name);
  return v ? *v : fallback;
}

bool CliArgs::get_bool_or(const std::string& name, bool fallback) const {
  const auto v = get(name);
  if (!v) return fallback;
  if (v->empty() || *v == "1" || *v == "true" || *v == "yes" || *v == "on")
    return true;
  if (*v == "0" || *v == "false" || *v == "no" || *v == "off") return false;
  return fallback;
}

std::vector<std::string> CliArgs::flag_names() const {
  std::vector<std::string> names;
  names.reserve(flags_.size());
  for (const auto& [name, value] : flags_) names.push_back(name);
  return names;
}

bool validate_flags(const CliArgs& args, const std::vector<std::string>& known,
                    const std::string& usage) {
  bool ok = true;
  for (const std::string& name : args.flag_names()) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      std::fprintf(stderr, "%s: unknown flag --%s\n", args.program().c_str(),
                   name.c_str());
      ok = false;
    }
  }
  if (!ok) {
    std::fprintf(stderr, "usage: %s %s\n", args.program().c_str(),
                 usage.c_str());
  }
  return ok;
}

}  // namespace prop
