// Minimal leveled logging for the library.  Examples and benches keep the
// default WARN level quiet; set PROP_LOG=info|debug or call set_log_level()
// for diagnostics.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace prop {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Current global threshold; messages below it are dropped.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parses "debug"/"info"/"warn"/"error"/"off"; anything else -> kWarn.
LogLevel parse_log_level(std::string_view text) noexcept;

namespace detail {
void emit(LogLevel level, const std::string& message);

class LogLine {
 public:
  explicit LogLine(LogLevel level) noexcept : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { emit(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::kDebug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::kInfo); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::kWarn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::kError); }

}  // namespace prop
