#include "util/rng.h"

// Header-only implementation; this translation unit anchors the library and
// provides a home for future out-of-line additions.
namespace prop {}
