#include "util/thread_pool.h"

namespace prop {

ThreadPool::ThreadPool(int threads) {
  const int n = threads < 1 ? 1 : threads;
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

int ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

std::vector<IndexRange> split_index_range(std::size_t n, int parts) {
  std::vector<IndexRange> ranges;
  if (n == 0) return ranges;
  const std::size_t p =
      parts < 1 ? 1 : (static_cast<std::size_t>(parts) > n
                           ? n
                           : static_cast<std::size_t>(parts));
  ranges.reserve(p);
  const std::size_t base = n / p;
  const std::size_t extra = n % p;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < p; ++i) {
    const std::size_t len = base + (i < extra ? 1 : 0);
    ranges.push_back(IndexRange{begin, begin + len});
    begin += len;
  }
  return ranges;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    // packaged_task captures any exception into the future; nothing
    // escapes into the worker thread.
    task();
  }
}

}  // namespace prop
