// Tiny command-line flag parser shared by the examples and bench harnesses.
//
// Supports --name=value, --name value, and boolean --name forms, plus
// positional arguments.  Unknown flags are collected so callers can reject
// or ignore them.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace prop {

class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  /// Program name (argv[0]).
  const std::string& program() const noexcept { return program_; }

  bool has(const std::string& name) const;

  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, std::string fallback) const;

  std::optional<std::int64_t> get_int(const std::string& name) const;
  std::int64_t get_int_or(const std::string& name, std::int64_t fallback) const;

  std::optional<double> get_double(const std::string& name) const;
  double get_double_or(const std::string& name, double fallback) const;

  /// Boolean flag: present without value, or with value in
  /// {1,true,yes,on} / {0,false,no,off}.
  bool get_bool_or(const std::string& name, bool fallback) const;

  const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Names of all flags that were parsed (for unknown-flag validation).
  std::vector<std::string> flag_names() const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

/// Rejects unrecognized flags: prints "<program>: unknown flag --X" and a
/// "usage: <program> <usage>" line to stderr for each flag not in `known`,
/// returning false so callers can exit nonzero.  Every binary that parses
/// CliArgs should gate on this instead of silently ignoring typos
/// (--time-budget-ms misspelled must not become an unbudgeted run).
bool validate_flags(const CliArgs& args, const std::vector<std::string>& known,
                    const std::string& usage);

}  // namespace prop
