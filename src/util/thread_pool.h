// Fixed-size worker pool for the deterministic parallel multi-start runner
// and the intra-pass round engine (parallel_for below).
//
// Deliberately minimal: a bounded set of workers started in the
// constructor, a FIFO task queue, and exception-capturing futures.  The
// pool itself adds no ordering semantics beyond FIFO dispatch — callers
// that need schedule-independent results (partition/runner.h) must make
// every task independent and merge task outputs in a deterministic order,
// never in completion order.
//
// Tasks must not themselves block on futures of tasks submitted to the
// same pool (no work stealing, so that can deadlock a full pool).  The
// destructor drains the queue: already-submitted tasks still run, then the
// workers join.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace prop {

class ThreadPool {
 public:
  /// Starts `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads);

  /// Drains the queue and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Best-effort hardware parallelism (>= 1) for "--threads=0 means auto"
  /// surfaces.
  static int hardware_threads() noexcept;

  /// Enqueues `fn` and returns a future for its result.  An exception
  /// thrown by the task is captured and rethrown by future::get(), never
  /// propagated into a worker.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<decltype(fn())> {
    using Result = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.push([task]() { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// One contiguous [begin, end) chunk of an index range handed to a single
/// parallel_for task.
struct IndexRange {
  std::size_t begin = 0;
  std::size_t end = 0;
};

/// Deterministic split of [0, n) into at most `parts` near-equal contiguous
/// ranges (the first n % parts ranges are one element longer; empty ranges
/// are dropped).  The boundaries depend only on (n, parts) — never on
/// scheduling — which is what lets parallel_for promise byte-identical
/// results for any worker count.
std::vector<IndexRange> split_index_range(std::size_t n, int parts);

/// Runs fn(begin, end) over a deterministic partition of [0, n).
///
/// When `pool` is null the whole range runs inline as fn(0, n) — the serial
/// reference execution.  Otherwise the range is split into pool->size() + 1
/// chunks; the caller runs the first chunk itself while the pool runs the
/// rest, then everything joins before returning (exceptions from chunks are
/// rethrown, lowest chunk first).
///
/// Determinism contract: `fn` must compute each slot purely from state that
/// is read-only for the duration of the call and write only to slots inside
/// its own [begin, end).  Under that contract the combined output is
/// byte-identical to the serial reference execution for every worker count,
/// because no value ever depends on which chunk (or thread) produced it.
template <typename Fn>
void parallel_for(ThreadPool* pool, std::size_t n, Fn&& fn) {
  if (n == 0) return;
  if (pool == nullptr || n == 1) {
    fn(std::size_t{0}, n);
    return;
  }
  const std::vector<IndexRange> ranges = split_index_range(n, pool->size() + 1);
  std::vector<std::future<void>> pending;
  pending.reserve(ranges.size() - 1);
  for (std::size_t i = 1; i < ranges.size(); ++i) {
    const IndexRange r = ranges[i];
    pending.push_back(pool->submit([&fn, r] { fn(r.begin, r.end); }));
  }
  std::exception_ptr first_error;
  try {
    fn(ranges[0].begin, ranges[0].end);
  } catch (...) {
    first_error = std::current_exception();
  }
  for (std::future<void>& f : pending) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace prop
