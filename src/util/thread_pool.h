// Fixed-size worker pool for the deterministic parallel multi-start runner.
//
// Deliberately minimal: a bounded set of workers started in the
// constructor, a FIFO task queue, and exception-capturing futures.  The
// pool itself adds no ordering semantics beyond FIFO dispatch — callers
// that need schedule-independent results (partition/runner.h) must make
// every task independent and merge task outputs in a deterministic order,
// never in completion order.
//
// Tasks must not themselves block on futures of tasks submitted to the
// same pool (no work stealing, so that can deadlock a full pool).  The
// destructor drains the queue: already-submitted tasks still run, then the
// workers join.
#pragma once

#include <condition_variable>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace prop {

class ThreadPool {
 public:
  /// Starts `threads` workers (clamped to at least 1).
  explicit ThreadPool(int threads);

  /// Drains the queue and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const noexcept { return static_cast<int>(workers_.size()); }

  /// Best-effort hardware parallelism (>= 1) for "--threads=0 means auto"
  /// surfaces.
  static int hardware_threads() noexcept;

  /// Enqueues `fn` and returns a future for its result.  An exception
  /// thrown by the task is captured and rethrown by future::get(), never
  /// propagated into a worker.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<decltype(fn())> {
    using Result = decltype(fn());
    auto task =
        std::make_shared<std::packaged_task<Result()>>(std::forward<Fn>(fn));
    std::future<Result> future = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.push([task]() { (*task)(); });
    }
    wake_.notify_one();
    return future;
  }

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable wake_;
  std::queue<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace prop
