// Deterministic pseudo-random number generation for reproducible experiments.
//
// All randomness in the library flows through Rng so that every table in
// EXPERIMENTS.md can be regenerated bit-for-bit from a base seed.  The
// generator is xoshiro256** (Blackman & Vigna), seeded through SplitMix64 as
// its authors recommend.
#pragma once

#include <cstdint>
#include <limits>
#include <utility>

namespace prop {

/// SplitMix64 step: used to expand a single 64-bit seed into generator state
/// and to hash tuples (circuit id, run index) into independent seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Mixes an arbitrary list of 64-bit values into a single well-distributed
/// seed.  Used to derive per-(circuit, run) seeds from a base seed.
template <typename... Ts>
constexpr std::uint64_t mix_seed(std::uint64_t base, Ts... parts) noexcept {
  std::uint64_t s = base;
  ((s = splitmix64(s) ^ static_cast<std::uint64_t>(parts)), ...);
  return splitmix64(s);
}

/// xoshiro256** — fast, high-quality, 256-bit state PRNG.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9badf00ddeadbeefULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift (unbiased for
  /// practical purposes at 64-bit width).  bound must be > 0.
  std::uint64_t bounded(std::uint64_t bound) noexcept {
    const auto x = operator()();
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(x) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.  Requires lo <= hi.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    bounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  bool chance(double p) noexcept { return uniform() < p; }

  /// Fisher–Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) noexcept {
    const auto n = c.size();
    if (n < 2) return;
    for (std::size_t i = n - 1; i > 0; --i) {
      const auto j = bounded(i + 1);
      using std::swap;
      swap(c[i], c[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace prop
