// Refinement telemetry: per-pass trajectory of an FM-family refiner.
//
// The pass engines (fm_refine, la_refine, prop_refine) are hot loops; the
// paper's claims are about their *dynamics* (which nodes move, how deep the
// speculative pass goes before rollback, how many passes until convergence).
// A RefineTelemetry pointer in the refiner config opts into recording one
// PassStats per pass — cut before/after, moves attempted vs. accepted,
// rollback depth, best-prefix gain, wall/CPU seconds, and gain-container
// operation counts.  A null pointer (the default) records nothing and adds
// no measurable overhead.
//
// The multi-run harness (partition/runner.h) aggregates one RunTelemetry
// per run into MultiRunResult, and tools/bench expose the whole trajectory
// as JSON via --stats-json.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace prop {

/// Operation counts on the pass's gain container (bucket list or AVL tree).
struct GainContainerOps {
  std::uint64_t inserts = 0;
  std::uint64_t erases = 0;
  std::uint64_t updates = 0;

  std::uint64_t total() const noexcept { return inserts + erases + updates; }

  GainContainerOps& operator+=(const GainContainerOps& o) noexcept {
    inserts += o.inserts;
    erases += o.erases;
    updates += o.updates;
    return *this;
  }
};

/// Everything recorded about one speculative pass of a refiner.
struct PassStats {
  int pass = 0;               ///< 0-based pass index within the refine call
  double cut_before = 0.0;    ///< cut cost entering the pass
  double cut_after = 0.0;     ///< cut cost after rollback to the best prefix
  std::uint64_t moves_attempted = 0;  ///< nodes speculatively moved
  std::uint64_t moves_accepted = 0;   ///< best-prefix position kept
  double best_prefix_gain = 0.0;      ///< accepted immediate-gain improvement
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  GainContainerOps ops;

  /// Top-of-tree refreshes whose recomputed gain matched the stored value
  /// within tolerance, skipping the AVL remove/reinsert (PROP only).
  std::uint64_t refresh_skips = 0;

  /// Synchronous move rounds executed (PROP round engine only, DESIGN §4i;
  /// 0 under the sequential move-by-move engine).
  std::uint64_t rounds = 0;

  // Invariant-audit observations (zero unless auditing was enabled).
  std::uint64_t audits = 0;        ///< audit sweeps performed this pass
  std::uint64_t resyncs = 0;       ///< node gains resynced from scratch
  double max_gain_drift = 0.0;     ///< max |incremental - scratch| observed

  /// Moves undone by the rollback to the best prefix.
  std::uint64_t rollback_depth() const noexcept {
    return moves_attempted - moves_accepted;
  }
};

/// Trajectory of one refine call: one PassStats per executed pass.
struct RefineTelemetry {
  std::vector<PassStats> passes;

  void clear() { passes.clear(); }

  /// Appends a pass record (index assigned automatically) and returns it.
  /// The reference is invalidated by the next begin_pass.
  PassStats& begin_pass(double cut_before);

  // Aggregates over all passes.
  std::uint64_t total_moves_attempted() const noexcept;
  std::uint64_t total_moves_accepted() const noexcept;
  std::uint64_t max_rollback_depth() const noexcept;
  std::uint64_t total_audits() const noexcept;
  std::uint64_t total_resyncs() const noexcept;
  double max_gain_drift() const noexcept;
  GainContainerOps total_ops() const noexcept;
};

/// Telemetry of one run inside a multi-run experiment.
struct RunTelemetry {
  std::uint64_t seed = 0;
  double cut = 0.0;       ///< final validated cut of the run
  double seconds = 0.0;   ///< CPU seconds of the run
  RefineTelemetry refine;
};

// JSON emission (hand-rolled; the schema is documented in EXPERIMENTS.md).
// `include_timing = false` omits the measured wall/CPU seconds fields — the
// one part of the schema that cannot be byte-identical across repeated or
// parallel runs (see StatsJsonOptions in partition/runner.h).
void write_json(std::ostream& out, const PassStats& s,
                bool include_timing = true);
void write_json(std::ostream& out, const RefineTelemetry& t,
                bool include_timing = true);
void write_json(std::ostream& out, const RunTelemetry& r,
                bool include_timing = true);
std::string to_json(const RefineTelemetry& t);

}  // namespace prop
