// Debug-mode invariant auditing shared by the FM / LA / PROP pass engines.
//
// When a refiner config sets audit_interval = K > 0, the pass engine calls
// its auditor every K moves.  The auditor recomputes the refiner's
// incremental state from scratch (node gains via the refiner's own scratch
// gain calculator, the partition's cut cost via recompute_cut_cost, the
// calculators' per-net lock counts) and throws std::logic_error on any
// mismatch beyond the configured tolerance.  This is a correctness
// instrument, not a production path: an audit sweep is O(m) or worse and is
// meant for tests, sanitizer runs, and drift measurements.
//
// Drift semantics per refiner:
//   * FM / LA: incremental gains are exact restatements of the scratch
//     definition, so any drift beyond FP accumulation noise (<= tolerance)
//     is a bug and the auditor throws.
//   * PROP: gains are *approximately* consistent by design — the paper's
//     Sec. 3.4 update policy deliberately leaves gains stale w.r.t. later
//     probability updates of neighboring nodes.  The PROP auditor therefore
//     asserts the exact structural invariants (tree/gain sync, lock counts,
//     probability bounds, cut cost) and *records* the gain drift in
//     telemetry; the hard gain-vs-scratch assertion applies right after a
//     resync (PropConfig::resync_interval), where exact agreement is the
//     invariant being checked.
#pragma once

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <string>

#include "partition/partition.h"

namespace prop::audit {

[[noreturn]] inline void fail(const std::string& what) {
  throw std::logic_error("invariant audit: " + what);
}

inline void check(bool ok, const char* what) {
  if (!ok) fail(what);
}

inline void check_node(bool ok, const char* what, NodeId u) {
  if (!ok) {
    std::ostringstream msg;
    msg << what << " (node " << u << ")";
    fail(msg.str());
  }
}

/// Asserts |incremental - scratch| <= tol, naming the node on failure.
inline void check_close(double incremental, double scratch, double tol,
                        const char* what, NodeId u) {
  if (!(std::abs(incremental - scratch) <= tol)) {
    std::ostringstream msg;
    msg << what << " (node " << u << "): incremental " << incremental
        << " vs scratch " << scratch << ", tol " << tol;
    fail(msg.str());
  }
}

/// Asserts the partition's incrementally-maintained cut cost matches a
/// from-scratch recount.
inline void check_cut(const Partition& part, double tol) {
  const double scratch = part.recompute_cut_cost();
  if (!(std::abs(part.cut_cost() - scratch) <= tol)) {
    std::ostringstream msg;
    msg << "incremental cut cost " << part.cut_cost()
        << " != recomputed " << scratch << ", tol " << tol;
    fail(msg.str());
  }
}

/// Tracks the largest |incremental - scratch| gap seen across a sweep.
struct DriftTracker {
  double max_abs = 0.0;
  NodeId argmax = 0;

  void observe(NodeId u, double incremental, double scratch) noexcept {
    const double d = std::abs(incremental - scratch);
    if (d > max_abs) {
      max_abs = d;
      argmax = u;
    }
  }
};

}  // namespace prop::audit
