#include "telemetry/telemetry.h"

#include <ostream>
#include <sstream>

namespace prop {
namespace {

/// Doubles are emitted with enough digits to round-trip (cut costs are
/// often exact integers; drift values are tiny).
void put_double(std::ostream& out, double v) {
  std::ostringstream s;
  s.precision(17);
  s << v;
  out << s.str();
}

}  // namespace

PassStats& RefineTelemetry::begin_pass(double cut_before) {
  PassStats s;
  s.pass = static_cast<int>(passes.size());
  s.cut_before = cut_before;
  passes.push_back(s);
  return passes.back();
}

std::uint64_t RefineTelemetry::total_moves_attempted() const noexcept {
  std::uint64_t total = 0;
  for (const PassStats& s : passes) total += s.moves_attempted;
  return total;
}

std::uint64_t RefineTelemetry::total_moves_accepted() const noexcept {
  std::uint64_t total = 0;
  for (const PassStats& s : passes) total += s.moves_accepted;
  return total;
}

std::uint64_t RefineTelemetry::max_rollback_depth() const noexcept {
  std::uint64_t best = 0;
  for (const PassStats& s : passes) {
    if (s.rollback_depth() > best) best = s.rollback_depth();
  }
  return best;
}

std::uint64_t RefineTelemetry::total_audits() const noexcept {
  std::uint64_t total = 0;
  for (const PassStats& s : passes) total += s.audits;
  return total;
}

std::uint64_t RefineTelemetry::total_resyncs() const noexcept {
  std::uint64_t total = 0;
  for (const PassStats& s : passes) total += s.resyncs;
  return total;
}

double RefineTelemetry::max_gain_drift() const noexcept {
  double best = 0.0;
  for (const PassStats& s : passes) {
    if (s.max_gain_drift > best) best = s.max_gain_drift;
  }
  return best;
}

GainContainerOps RefineTelemetry::total_ops() const noexcept {
  GainContainerOps total;
  for (const PassStats& s : passes) total += s.ops;
  return total;
}

void write_json(std::ostream& out, const PassStats& s, bool include_timing) {
  out << "{\"pass\":" << s.pass;
  out << ",\"cut_before\":";
  put_double(out, s.cut_before);
  out << ",\"cut_after\":";
  put_double(out, s.cut_after);
  out << ",\"moves_attempted\":" << s.moves_attempted;
  out << ",\"moves_accepted\":" << s.moves_accepted;
  out << ",\"rollback_depth\":" << s.rollback_depth();
  out << ",\"best_prefix_gain\":";
  put_double(out, s.best_prefix_gain);
  if (include_timing) {
    out << ",\"wall_seconds\":";
    put_double(out, s.wall_seconds);
    out << ",\"cpu_seconds\":";
    put_double(out, s.cpu_seconds);
  }
  out << ",\"container_ops\":{\"inserts\":" << s.ops.inserts
      << ",\"erases\":" << s.ops.erases << ",\"updates\":" << s.ops.updates
      << "}";
  out << ",\"refresh_skips\":" << s.refresh_skips;
  out << ",\"rounds\":" << s.rounds;
  out << ",\"audits\":" << s.audits;
  out << ",\"resyncs\":" << s.resyncs;
  out << ",\"max_gain_drift\":";
  put_double(out, s.max_gain_drift);
  out << "}";
}

void write_json(std::ostream& out, const RefineTelemetry& t,
                bool include_timing) {
  out << "[";
  bool first = true;
  for (const PassStats& s : t.passes) {
    if (!first) out << ",";
    first = false;
    write_json(out, s, include_timing);
  }
  out << "]";
}

void write_json(std::ostream& out, const RunTelemetry& r,
                bool include_timing) {
  out << "{\"seed\":" << r.seed;
  out << ",\"cut\":";
  put_double(out, r.cut);
  if (include_timing) {
    out << ",\"seconds\":";
    put_double(out, r.seconds);
  }
  out << ",\"passes\":";
  write_json(out, r.refine, include_timing);
  out << "}";
}

std::string to_json(const RefineTelemetry& t) {
  std::ostringstream out;
  write_json(out, t);
  return out.str();
}

}  // namespace prop
