// Descriptive statistics of a netlist — the quantities in the paper's
// Table 1 and complexity discussion (n, e, m, p, q, d).
#pragma once

#include <cstddef>
#include <string>

#include "hypergraph/hypergraph.h"

namespace prop {

struct HypergraphStats {
  std::size_t num_nodes = 0;     ///< n
  std::size_t num_nets = 0;      ///< e
  std::size_t num_pins = 0;      ///< m = p*n = q*e
  double avg_degree = 0.0;       ///< p: average nets per node
  double avg_net_size = 0.0;     ///< q: average nodes per net
  double avg_neighbors = 0.0;    ///< d = p*(q-1), the paper's neighbor count
  std::size_t max_degree = 0;    ///< pmax
  std::size_t max_net_size = 0;  ///< qmax
  std::size_t single_pin_nets = 0;  ///< degenerate nets (never cut)
};

HypergraphStats compute_stats(const Hypergraph& g);

/// One-line summary, e.g. "balu: n=801 e=735 m=2697 p=3.37 q=3.67".
std::string describe(const Hypergraph& g);

}  // namespace prop
