// Reader/writer for the hMETIS .hgr hypergraph exchange format.
//
// Format: first line "E N [fmt]" where fmt is 1 (weighted nets), 10
// (weighted nodes) or 11 (both).  Then E lines listing the 1-based pins of
// each net (prefixed by the net weight when fmt has the 1-bit), then — when
// fmt has the 10-bit — N lines of node weights.  Lines starting with '%' are
// comments.
//
// This lets users run the suite on real MCNC/ISPD translations; the bundled
// experiments use the synthetic generator (see generator.h).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "hypergraph/hypergraph.h"

namespace prop {

/// Resource caps for parsing untrusted .hgr payloads (the service ingest
/// path).  Every limit is enforced *before* the corresponding allocation:
/// the node/net counts are checked against the header before the builder
/// reserves anything, the pin count is checked as pins stream in, and the
/// byte count is checked per input line.  0 means unlimited (the historical
/// trusted-file behavior).  Violations surface as the uniform
/// "hgr: ..." std::runtime_error diagnostics; the service layer converts
/// those to a structured Status instead of letting them escape.
struct HgrLimits {
  std::uint64_t max_nodes = 0;  ///< header node count cap
  std::uint64_t max_nets = 0;   ///< header net count cap
  std::uint64_t max_pins = 0;   ///< total pins across all net lines
  std::uint64_t max_bytes = 0;  ///< input bytes consumed (comments included)
};

/// Parses a .hgr stream.  Throws std::runtime_error on malformed input or
/// on a `limits` violation.
Hypergraph read_hgr(std::istream& in, std::string name = "",
                    const HgrLimits& limits = {});

/// Reads a .hgr file from disk; the hypergraph name defaults to the path.
Hypergraph read_hgr_file(const std::string& path);

/// Writes `g` in .hgr format (choosing the minimal fmt code that preserves
/// its weights).
void write_hgr(const Hypergraph& g, std::ostream& out);
void write_hgr_file(const Hypergraph& g, const std::string& path);

}  // namespace prop
