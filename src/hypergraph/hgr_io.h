// Reader/writer for the hMETIS .hgr hypergraph exchange format.
//
// Format: first line "E N [fmt]" where fmt is 1 (weighted nets), 10
// (weighted nodes) or 11 (both).  Then E lines listing the 1-based pins of
// each net (prefixed by the net weight when fmt has the 1-bit), then — when
// fmt has the 10-bit — N lines of node weights.  Lines starting with '%' are
// comments.
//
// This lets users run the suite on real MCNC/ISPD translations; the bundled
// experiments use the synthetic generator (see generator.h).
#pragma once

#include <iosfwd>
#include <string>

#include "hypergraph/hypergraph.h"

namespace prop {

/// Parses a .hgr stream.  Throws std::runtime_error on malformed input.
Hypergraph read_hgr(std::istream& in, std::string name = "");

/// Reads a .hgr file from disk; the hypergraph name defaults to the path.
Hypergraph read_hgr_file(const std::string& path);

/// Writes `g` in .hgr format (choosing the minimal fmt code that preserves
/// its weights).
void write_hgr(const Hypergraph& g, std::ostream& out);
void write_hgr_file(const Hypergraph& g, const std::string& path);

}  // namespace prop
