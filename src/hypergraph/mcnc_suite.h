// The 16-circuit benchmark suite of the paper's Table 1.
//
// The real ACM/SIGDA netlists are not redistributable; each suite entry is a
// synthetic circuit (see generator.h) whose node/net/pin counts match
// Table 1 exactly.  Every call with the same base seed reproduces the same
// suite bit-for-bit.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "hypergraph/generator.h"
#include "hypergraph/hypergraph.h"

namespace prop {

/// Default base seed used by the bundled experiments.
inline constexpr std::uint64_t kSuiteSeed = 0xDAC1996ULL;

/// All 16 specs in the paper's Table 1 order.
const std::vector<CircuitSpec>& mcnc_specs();

/// Spec lookup by benchmark name; throws std::out_of_range if unknown.
const CircuitSpec& mcnc_spec(std::string_view name);

/// Generates the synthetic stand-in for one Table 1 circuit.
Hypergraph make_mcnc_circuit(std::string_view name,
                             std::uint64_t base_seed = kSuiteSeed);

/// Generates the whole suite in Table 1 order.
std::vector<Hypergraph> make_mcnc_suite(std::uint64_t base_seed = kSuiteSeed);

}  // namespace prop
