// Synthetic benchmark-circuit generator.
//
// The paper evaluates on ACM/SIGDA (MCNC) netlists, which are not
// redistributable.  This generator synthesizes, for a requested
// (#nodes, #nets, #pins) triple, a netlist with:
//
//   * exactly the requested node, net and pin counts;
//   * a shifted-geometric net-size distribution (2-pin nets dominate, mean
//     size = pins/nets, matching the paper's observation that the average
//     net connects about 3-4 nodes);
//   * Rent-rule hierarchical locality: nodes form nested aligned blocks of
//     geometrically growing size; each net is confined to one block, with
//     the number of nets at a level decaying as 2^((gamma-1)*level) up the
//     hierarchy (gamma ~ 0.62, a typical Rent exponent).  This plants the
//     natural-cluster structure that min-cut partitioners exploit in real
//     circuits, so algorithm *rankings* transfer;
//   * no isolated nodes;
//   * a final secret node/net permutation so the planted hierarchy is not
//     recoverable from ids.
//
// Generation is deterministic in the seed.
#pragma once

#include <cstdint>
#include <string>

#include "hypergraph/hypergraph.h"

namespace prop {

struct CircuitSpec {
  std::string name;
  NodeId num_nodes = 0;
  NetId num_nets = 0;
  std::size_t num_pins = 0;
};

struct GeneratorOptions {
  /// Smallest locality block (leaf module size).
  std::size_t leaf_block = 24;
  /// Rent exponent controlling how fast net counts decay up the hierarchy.
  double rent_exponent = 0.62;
  /// Largest net size emitted (real netlists clip a long geometric tail).
  std::size_t max_net_size = 32;
};

/// Generates a circuit matching `spec` exactly.  Requires
/// 2 * num_nets <= num_pins (every net has at least 2 pins) and
/// num_nodes >= 2.  Throws std::invalid_argument otherwise.
Hypergraph generate_circuit(const CircuitSpec& spec, std::uint64_t seed,
                            const GeneratorOptions& options = {});

/// MCNC-like spec scaled to an arbitrary node count: nets ~= 1.03x nodes
/// and pins ~= 3.5x nodes, the median ratios of the paper's Table 1 suite,
/// clamped so every net can hold >= 2 pins.  This is how the multilevel
/// experiments synthesize 10^4-10^5-node instances beyond Table 1's range
/// while keeping the Rent-rule cluster structure the generator plants.
CircuitSpec scaled_spec(std::string name, NodeId nodes);

}  // namespace prop
