// Mutable accumulator that assembles an immutable Hypergraph.
//
// Usage:
//   HypergraphBuilder b(num_nodes);
//   b.add_net({0, 3, 7});            // unit cost
//   b.add_net({1, 2}, 2.5);          // weighted net
//   Hypergraph g = std::move(b).build();
//
// build() validates pin ids, deduplicates repeated pins within a net, and
// constructs both CSR incidence directions.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace prop {

class HypergraphBuilder {
 public:
  explicit HypergraphBuilder(NodeId num_nodes)
      : num_nodes_(num_nodes), node_sizes_(num_nodes, 1) {}

  NodeId num_nodes() const noexcept { return num_nodes_; }
  NetId num_nets() const noexcept { return static_cast<NetId>(net_costs_.size()); }

  /// Appends a net connecting `pins`; returns its id.  Duplicate pins within
  /// a net are removed at build() time.  Throws std::out_of_range on a bad
  /// pin id and std::invalid_argument on non-positive cost.
  NetId add_net(std::span<const NodeId> pins, double cost = 1.0);
  NetId add_net(std::initializer_list<NodeId> pins, double cost = 1.0) {
    return add_net(std::span<const NodeId>(pins.begin(), pins.size()), cost);
  }

  /// Sets the size (weight) of node u used by the balance criterion.
  void set_node_size(NodeId u, std::int64_t size);

  void set_name(std::string name) { name_ = std::move(name); }

  /// Consumes the builder and produces the immutable hypergraph.
  Hypergraph build() &&;

 private:
  NodeId num_nodes_ = 0;
  std::vector<std::size_t> net_offsets_{0};
  std::vector<NodeId> net_pins_;
  std::vector<double> net_costs_;
  std::vector<std::int64_t> node_sizes_;
  std::string name_;
};

}  // namespace prop
