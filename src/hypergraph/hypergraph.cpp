#include "hypergraph/hypergraph.h"

// Hypergraph is a plain immutable container; construction logic lives in
// HypergraphBuilder (builder.cpp).
namespace prop {}
