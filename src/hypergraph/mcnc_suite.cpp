#include "hypergraph/mcnc_suite.h"

#include <stdexcept>
#include <string>

#include "util/rng.h"

namespace prop {

const std::vector<CircuitSpec>& mcnc_specs() {
  // Table 1 of the paper: name, #nodes, #nets, #pins.
  static const std::vector<CircuitSpec> specs = {
      {"balu", 801, 735, 2697},        {"bm1", 882, 903, 2910},
      {"p1", 833, 902, 2908},          {"p2", 3014, 3029, 11219},
      {"s13207", 8772, 8651, 20606},   {"s15850", 10470, 10383, 24712},
      {"s9234", 5866, 5844, 14065},    {"struct", 1952, 1920, 5471},
      {"19ks", 2844, 3282, 10547},     {"biomed", 6514, 5742, 21040},
      {"industry2", 12637, 13419, 48404}, {"t2", 1663, 1720, 6134},
      {"t3", 1607, 1618, 5807},        {"t4", 1515, 1658, 5975},
      {"t5", 2595, 2750, 10076},       {"t6", 1752, 1541, 6638},
  };
  return specs;
}

const CircuitSpec& mcnc_spec(std::string_view name) {
  for (const auto& spec : mcnc_specs()) {
    if (spec.name == name) return spec;
  }
  throw std::out_of_range("unknown MCNC benchmark: " + std::string(name));
}

Hypergraph make_mcnc_circuit(std::string_view name, std::uint64_t base_seed) {
  const CircuitSpec& spec = mcnc_spec(name);
  // Per-circuit seed derived from the base seed and the circuit's identity.
  std::uint64_t h = base_seed;
  for (const char c : spec.name) h = mix_seed(h, static_cast<std::uint64_t>(c));
  return generate_circuit(spec, h);
}

std::vector<Hypergraph> make_mcnc_suite(std::uint64_t base_seed) {
  std::vector<Hypergraph> suite;
  suite.reserve(mcnc_specs().size());
  for (const auto& spec : mcnc_specs()) {
    suite.push_back(make_mcnc_circuit(spec.name, base_seed));
  }
  return suite;
}

}  // namespace prop
