#include "hypergraph/contraction.h"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "hypergraph/builder.h"

namespace prop {

ContractionResult contract(const Hypergraph& g,
                           const std::vector<NodeId>& cluster_of,
                           NodeId num_clusters) {
  if (cluster_of.size() != g.num_nodes()) {
    throw std::invalid_argument("contract: clustering size mismatch");
  }
  for (const NodeId c : cluster_of) {
    if (c >= num_clusters) {
      throw std::invalid_argument("contract: cluster id out of range");
    }
  }

  HypergraphBuilder builder(num_clusters);
  builder.set_name(g.name() + ".coarse");

  // Accumulate node sizes per cluster.
  std::vector<std::int64_t> cluster_size(num_clusters, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    cluster_size[cluster_of[u]] += g.node_size(u);
  }
  for (NodeId c = 0; c < num_clusters; ++c) {
    builder.set_node_size(c, std::max<std::int64_t>(cluster_size[c], 1));
  }

  // Map nets to cluster pin sets; merge identical nets, summing costs.
  std::map<std::vector<NodeId>, double> merged;
  std::vector<NodeId> pins;
  for (NetId n = 0; n < g.num_nets(); ++n) {
    pins.clear();
    for (const NodeId u : g.pins_of(n)) pins.push_back(cluster_of[u]);
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() < 2) continue;  // internal to one cluster: never cut
    merged[pins] += g.net_cost(n);
  }
  for (const auto& [cluster_pins, cost] : merged) {
    builder.add_net(cluster_pins, cost);
  }

  return ContractionResult{std::move(builder).build(), cluster_of};
}

std::vector<int> project_partition(const std::vector<NodeId>& fine_to_coarse,
                                   const std::vector<int>& coarse_side) {
  std::vector<int> fine_side(fine_to_coarse.size());
  for (std::size_t u = 0; u < fine_to_coarse.size(); ++u) {
    fine_side[u] = coarse_side[fine_to_coarse[u]];
  }
  return fine_side;
}

}  // namespace prop
