#include "hypergraph/contraction.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "hypergraph/builder.h"

namespace prop {
namespace {

/// FNV-1a over the pin sequence.  Pin vectors arriving here are sorted and
/// deduplicated, so equal pin *sets* hash equally and the hash map below
/// never compares two vectors that merely permute each other.
struct PinSeqHash {
  std::size_t operator()(const std::vector<NodeId>& pins) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const NodeId p : pins) {
      h ^= p;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

}  // namespace

ContractionResult contract(const Hypergraph& g,
                           const std::vector<NodeId>& cluster_of,
                           NodeId num_clusters) {
  if (cluster_of.size() != g.num_nodes()) {
    throw std::invalid_argument("contract: clustering size mismatch");
  }

  // Accumulate node sizes per cluster, then compact away cluster ids no
  // node maps to (order-preserving).  Phantom zero-member clusters would
  // otherwise need a fake nonzero size, inflating the coarse total and
  // skewing every fraction-mapped balance window on the coarse graph.
  std::vector<std::int64_t> cluster_size(num_clusters, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId c = cluster_of[u];
    if (c >= num_clusters) {
      throw std::invalid_argument("contract: cluster id out of range");
    }
    cluster_size[c] += g.node_size(u);
  }
  std::vector<NodeId> compact(num_clusters, kInvalidNode);
  NodeId num_coarse = 0;
  for (NodeId c = 0; c < num_clusters; ++c) {
    if (cluster_size[c] > 0) compact[c] = num_coarse++;
  }

  HypergraphBuilder builder(num_coarse);
  builder.set_name(g.name() + ".coarse");
  for (NodeId c = 0; c < num_clusters; ++c) {
    if (compact[c] != kInvalidNode) {
      builder.set_node_size(compact[c], cluster_size[c]);
    }
  }

  std::vector<NodeId> fine_to_coarse(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    fine_to_coarse[u] = compact[cluster_of[u]];
  }

  // Map nets to cluster pin sets; merge identical parallel nets, summing
  // costs.  Contraction sits on the multilevel critical path, so the merge
  // uses a hash of the sorted pin sequence (one O(|pins|) hash per net,
  // vector compares only on genuine duplicates) instead of a std::map with
  // its O(log nets) full lexicographic compares per insertion.
  struct MergedNet {
    std::vector<NodeId> pins;
    double cost;
  };
  std::unordered_map<std::vector<NodeId>, std::size_t, PinSeqHash> index;
  index.reserve(g.num_nets());
  std::vector<MergedNet> merged;
  merged.reserve(g.num_nets());
  std::vector<NodeId> pins;
  for (NetId n = 0; n < g.num_nets(); ++n) {
    pins.clear();
    for (const NodeId u : g.pins_of(n)) pins.push_back(fine_to_coarse[u]);
    std::sort(pins.begin(), pins.end());
    pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
    if (pins.size() < 2) continue;  // internal to one cluster: never cut
    const auto [it, inserted] = index.try_emplace(pins, merged.size());
    if (inserted) {
      merged.push_back(MergedNet{pins, g.net_cost(n)});
    } else {
      merged[it->second].cost += g.net_cost(n);
    }
  }
  // Emit in lexicographic pin order — the order the old ordered-map merge
  // produced — so coarse net ids stay deterministic and platform-independent
  // (unordered_map iteration order is neither).
  std::sort(merged.begin(), merged.end(),
            [](const MergedNet& a, const MergedNet& b) { return a.pins < b.pins; });
  for (const MergedNet& net : merged) {
    builder.add_net(net.pins, net.cost);
  }

  return ContractionResult{std::move(builder).build(), std::move(fine_to_coarse)};
}

std::vector<int> project_partition(const std::vector<NodeId>& fine_to_coarse,
                                   const std::vector<int>& coarse_side) {
  std::vector<int> fine_side(fine_to_coarse.size());
  for (std::size_t u = 0; u < fine_to_coarse.size(); ++u) {
    fine_side[u] = coarse_side[fine_to_coarse[u]];
  }
  return fine_side;
}

std::vector<std::uint8_t> project_partition(
    const std::vector<NodeId>& fine_to_coarse,
    const std::vector<std::uint8_t>& coarse_side) {
  std::vector<std::uint8_t> fine_side(fine_to_coarse.size());
  for (std::size_t u = 0; u < fine_to_coarse.size(); ++u) {
    fine_side[u] = coarse_side[fine_to_coarse[u]];
  }
  return fine_side;
}

}  // namespace prop
