#include "hypergraph/stats.h"

#include <cstdio>

namespace prop {

HypergraphStats compute_stats(const Hypergraph& g) {
  HypergraphStats s;
  s.num_nodes = g.num_nodes();
  s.num_nets = g.num_nets();
  s.num_pins = g.num_pins();
  s.max_degree = g.max_degree();
  s.max_net_size = g.max_net_size();
  if (s.num_nodes > 0) {
    s.avg_degree = static_cast<double>(s.num_pins) / static_cast<double>(s.num_nodes);
  }
  if (s.num_nets > 0) {
    s.avg_net_size = static_cast<double>(s.num_pins) / static_cast<double>(s.num_nets);
  }
  s.avg_neighbors = s.avg_degree * (s.avg_net_size > 1.0 ? s.avg_net_size - 1.0 : 0.0);
  for (NetId n = 0; n < g.num_nets(); ++n) {
    if (g.net_size(n) <= 1) ++s.single_pin_nets;
  }
  return s;
}

std::string describe(const Hypergraph& g) {
  const HypergraphStats s = compute_stats(g);
  char buf[256];
  std::snprintf(buf, sizeof(buf), "%s: n=%zu e=%zu m=%zu p=%.2f q=%.2f d=%.2f",
                g.name().empty() ? "<unnamed>" : g.name().c_str(), s.num_nodes,
                s.num_nets, s.num_pins, s.avg_degree, s.avg_net_size,
                s.avg_neighbors);
  return buf;
}

}  // namespace prop
