#include "hypergraph/builder.h"

#include <algorithm>

namespace prop {

NetId HypergraphBuilder::add_net(std::span<const NodeId> pins, double cost) {
  if (cost <= 0.0) {
    throw std::invalid_argument("net cost must be positive");
  }
  for (const NodeId u : pins) {
    if (u >= num_nodes_) {
      throw std::out_of_range("net pin refers to nonexistent node " +
                              std::to_string(u));
    }
  }
  net_pins_.insert(net_pins_.end(), pins.begin(), pins.end());
  net_offsets_.push_back(net_pins_.size());
  net_costs_.push_back(cost);
  return static_cast<NetId>(net_costs_.size() - 1);
}

void HypergraphBuilder::set_node_size(NodeId u, std::int64_t size) {
  if (u >= num_nodes_) throw std::out_of_range("node id out of range");
  if (size <= 0) throw std::invalid_argument("node size must be positive");
  node_sizes_[u] = size;
}

Hypergraph HypergraphBuilder::build() && {
  Hypergraph g;
  const NetId e = num_nets();

  // Deduplicate pins within each net (a component can touch a net through
  // several terminals; for partitioning only membership matters).  The
  // dedup is stable: pin order is preserved, because the first pin carries
  // the conventional driver role used by the timing substrate.
  std::vector<std::size_t> clean_offsets{0};
  std::vector<NodeId> clean_pins;
  clean_offsets.reserve(e + 1);
  clean_pins.reserve(net_pins_.size());
  std::vector<NetId> last_net_of(num_nodes_, kInvalidNet);
  for (NetId n = 0; n < e; ++n) {
    for (std::size_t i = net_offsets_[n]; i < net_offsets_[n + 1]; ++i) {
      const NodeId u = net_pins_[i];
      if (last_net_of[u] != n) {
        last_net_of[u] = n;
        clean_pins.push_back(u);
      }
    }
    clean_offsets.push_back(clean_pins.size());
  }

  g.net_offsets_ = std::move(clean_offsets);
  g.net_pins_ = std::move(clean_pins);
  g.net_costs_ = std::move(net_costs_);
  g.node_sizes_ = std::move(node_sizes_);
  g.name_ = std::move(name_);

  // Transpose: counting sort of pins by node to form node -> nets CSR.
  g.node_offsets_.assign(num_nodes_ + 1, 0);
  for (const NodeId u : g.net_pins_) ++g.node_offsets_[u + 1];
  for (NodeId u = 0; u < num_nodes_; ++u) {
    g.node_offsets_[u + 1] += g.node_offsets_[u];
  }
  g.node_pins_.resize(g.net_pins_.size());
  std::vector<std::size_t> cursor(g.node_offsets_.begin(),
                                  g.node_offsets_.end() - 1);
  for (NetId n = 0; n < e; ++n) {
    for (std::size_t i = g.net_offsets_[n]; i < g.net_offsets_[n + 1]; ++i) {
      g.node_pins_[cursor[g.net_pins_[i]]++] = n;
    }
  }

  g.unit_net_costs_ =
      std::all_of(g.net_costs_.begin(), g.net_costs_.end(),
                  [](double c) { return c == 1.0; });
  g.unit_node_sizes_ =
      std::all_of(g.node_sizes_.begin(), g.node_sizes_.end(),
                  [](std::int64_t s) { return s == 1; });
  g.total_node_size_ = 0;
  for (const auto s : g.node_sizes_) g.total_node_size_ += s;

  g.max_degree_ = 0;
  for (NodeId u = 0; u < num_nodes_; ++u) {
    g.max_degree_ = std::max(g.max_degree_, g.degree(u));
  }
  g.max_net_size_ = 0;
  for (NetId n = 0; n < e; ++n) {
    g.max_net_size_ = std::max(g.max_net_size_, g.net_size(n));
  }
  return g;
}

}  // namespace prop
