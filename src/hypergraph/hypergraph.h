// Immutable hypergraph (circuit netlist) in CSR form.
//
// The paper's model (Sec. 1): a circuit C is a hypergraph G = (V, E) where V
// are components and E are nets; a net is the set of nodes it connects.  We
// store both incidence directions — node -> nets ("pins of a node") and
// net -> nodes ("pins of a net") — as compressed sparse rows for cache-
// friendly traversal, since every partitioner here spends its time walking
// these lists.
//
// Nets carry a cost c(n) (paper Sec. 1: width for area, criticality weight
// for timing); nodes carry a size used by the balance criterion.  Both
// default to 1.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace prop {

using NodeId = std::uint32_t;
using NetId = std::uint32_t;

inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
inline constexpr NetId kInvalidNet = static_cast<NetId>(-1);

class HypergraphBuilder;

class Hypergraph {
 public:
  Hypergraph() = default;

  /// Number of nodes n.
  NodeId num_nodes() const noexcept { return static_cast<NodeId>(node_offsets_.empty() ? 0 : node_offsets_.size() - 1); }
  /// Number of nets e.
  NetId num_nets() const noexcept { return static_cast<NetId>(net_offsets_.empty() ? 0 : net_offsets_.size() - 1); }
  /// Total pin count m = sum of net sizes = sum of node degrees.
  std::size_t num_pins() const noexcept { return net_pins_.size(); }

  /// Nets incident to node u (the nets u "is connected to").
  std::span<const NetId> nets_of(NodeId u) const noexcept {
    return {node_pins_.data() + node_offsets_[u],
            node_offsets_[u + 1] - node_offsets_[u]};
  }

  /// Nodes connected by net n.
  std::span<const NodeId> pins_of(NetId n) const noexcept {
    return {net_pins_.data() + net_offsets_[n],
            net_offsets_[n + 1] - net_offsets_[n]};
  }

  /// Degree (number of incident nets) of node u — the paper's "pins on a
  /// node".
  std::size_t degree(NodeId u) const noexcept {
    return node_offsets_[u + 1] - node_offsets_[u];
  }

  /// Size (number of pins) of net n.
  std::size_t net_size(NetId n) const noexcept {
    return net_offsets_[n + 1] - net_offsets_[n];
  }

  /// Net cost c(n).
  double net_cost(NetId n) const noexcept { return net_costs_[n]; }

  /// Node size (weight) used by the balance criterion.
  std::int64_t node_size(NodeId u) const noexcept { return node_sizes_[u]; }

  /// Sum of all node sizes.
  std::int64_t total_node_size() const noexcept { return total_node_size_; }

  /// True when every net has cost exactly 1 (enables the FM bucket
  /// structure's integer-gain assumption).
  bool unit_net_costs() const noexcept { return unit_net_costs_; }

  /// True when every node has size exactly 1.
  bool unit_node_sizes() const noexcept { return unit_node_sizes_; }

  /// Maximum node degree (pmax in the paper's complexity discussion).
  std::size_t max_degree() const noexcept { return max_degree_; }

  /// Maximum net size.
  std::size_t max_net_size() const noexcept { return max_net_size_; }

  /// Optional human-readable name (benchmark id).
  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

 private:
  friend class HypergraphBuilder;

  std::vector<std::size_t> node_offsets_;  // size n+1
  std::vector<NetId> node_pins_;           // nets of each node, concatenated
  std::vector<std::size_t> net_offsets_;   // size e+1
  std::vector<NodeId> net_pins_;           // nodes of each net, concatenated
  std::vector<double> net_costs_;          // size e
  std::vector<std::int64_t> node_sizes_;   // size n
  std::int64_t total_node_size_ = 0;
  bool unit_net_costs_ = true;
  bool unit_node_sizes_ = true;
  std::size_t max_degree_ = 0;
  std::size_t max_net_size_ = 0;
  std::string name_;
};

}  // namespace prop
