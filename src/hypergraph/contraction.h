// Cluster contraction: collapses groups of nodes into super-nodes.
//
// Used by the WINDOW-style clustering partitioner: clusters become nodes of
// a smaller hypergraph, each net maps to the set of clusters it touches.
// Nets that fall entirely inside one cluster disappear (they can never be
// cut), and identical parallel nets are merged with summed cost, so a
// partition of the contracted graph has exactly the same cut cost as the
// corresponding flat partition.
#pragma once

#include <vector>

#include "hypergraph/hypergraph.h"

namespace prop {

struct ContractionResult {
  Hypergraph coarse;
  /// fine node id -> coarse node id (same as the input clustering, kept for
  /// symmetry / projection convenience).
  std::vector<NodeId> fine_to_coarse;
};

/// Contracts `g` according to `cluster_of` (one entry per node, cluster ids
/// must be dense in [0, num_clusters)).  Node sizes accumulate into their
/// cluster so balance constraints stay meaningful.
ContractionResult contract(const Hypergraph& g,
                           const std::vector<NodeId>& cluster_of,
                           NodeId num_clusters);

/// Projects a partition of the coarse graph back to the fine graph.
std::vector<int> project_partition(const std::vector<NodeId>& fine_to_coarse,
                                   const std::vector<int>& coarse_side);

}  // namespace prop
