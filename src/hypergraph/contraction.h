// Cluster contraction: collapses groups of nodes into super-nodes.
//
// Used by the WINDOW-style clustering partitioner and the multilevel
// V-cycle driver: clusters become nodes of a smaller hypergraph, each net
// maps to the set of clusters it touches.  Nets that fall entirely inside
// one cluster disappear (they can never be cut), and identical parallel
// nets are merged with summed cost, so a partition of the contracted graph
// has exactly the same cut cost as the corresponding flat partition.
//
// Cluster ids that no node maps to are compacted away, so the coarse graph
// has no zero-size phantom nodes and its total node size always equals the
// fine total — the invariant every balance constraint mapped through a
// level hierarchy depends on.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace prop {

struct ContractionResult {
  Hypergraph coarse;
  /// fine node id -> coarse node id.  Equal to the input clustering when
  /// every cluster id in [0, num_clusters) is used; otherwise the empty
  /// cluster ids are compacted away (order-preserving), and this holds the
  /// compacted ids.
  std::vector<NodeId> fine_to_coarse;
};

/// Contracts `g` according to `cluster_of` (one entry per node, cluster ids
/// must be < num_clusters).  Node sizes accumulate exactly into their
/// cluster — total coarse size == total fine size — so balance constraints
/// stay meaningful on the coarse graph.  Cluster ids with no member are
/// removed by compaction, not materialized as phantom nodes.
ContractionResult contract(const Hypergraph& g,
                           const std::vector<NodeId>& cluster_of,
                           NodeId num_clusters);

/// Projects a partition of the coarse graph back to the fine graph.
std::vector<int> project_partition(const std::vector<NodeId>& fine_to_coarse,
                                   const std::vector<int>& coarse_side);

/// Same projection for the 0/1 byte sides Partition uses.
std::vector<std::uint8_t> project_partition(
    const std::vector<NodeId>& fine_to_coarse,
    const std::vector<std::uint8_t>& coarse_side);

}  // namespace prop
