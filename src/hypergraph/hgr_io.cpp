#include "hypergraph/hgr_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "hypergraph/builder.h"

namespace prop {
namespace {

/// Line reader with a running byte budget: every consumed line (comments
/// and blanks included — an attacker controls those too) counts toward
/// HgrLimits::max_bytes before any of its content is acted on.
class LineReader {
 public:
  LineReader(std::istream& in, std::uint64_t max_bytes)
      : in_(in), max_bytes_(max_bytes) {}

  /// Reads the next non-comment, non-blank line; returns false at EOF.
  bool next(std::string& line) {
    while (std::getline(in_, line)) {
      bytes_ += line.size() + 1;  // + the consumed newline
      if (max_bytes_ != 0 && bytes_ > max_bytes_) {
        throw std::runtime_error("hgr: payload exceeds max bytes (" +
                                 std::to_string(max_bytes_) + ")");
      }
      std::size_t i = 0;
      while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
      if (i == line.size() || line[i] == '%') continue;
      return true;
    }
    return false;
  }

 private:
  std::istream& in_;
  std::uint64_t max_bytes_;
  std::uint64_t bytes_ = 0;
};

}  // namespace

Hypergraph read_hgr(std::istream& in, std::string name,
                    const HgrLimits& limits) {
  LineReader reader(in, limits.max_bytes);
  std::string line;
  if (!reader.next(line)) {
    throw std::runtime_error("hgr: empty input");
  }
  std::istringstream header(line);
  long long num_nets = 0;
  long long num_nodes = 0;
  int fmt = 0;
  header >> num_nets >> num_nodes;
  if (header.fail() || num_nets < 0 || num_nodes < 0) {
    throw std::runtime_error("hgr: malformed header");
  }
  if (header >> fmt) {  // optional fmt code
    std::string junk;
    if (header >> junk) {
      throw std::runtime_error("hgr: malformed header (trailing junk)");
    }
  } else if (!header.eof()) {
    throw std::runtime_error("hgr: malformed header");
  }
  const bool weighted_nets = (fmt == 1 || fmt == 11);
  const bool weighted_nodes = (fmt == 10 || fmt == 11);
  if (fmt != 0 && !weighted_nets && !weighted_nodes) {
    throw std::runtime_error("hgr: unknown fmt code");
  }
  // All header-driven caps fire before HypergraphBuilder allocates anything:
  // a hostile "999999999999 999999999999" header must be rejected by
  // arithmetic alone.  The id-width cap holds unconditionally (NodeId/NetId
  // are 32-bit); the configurable limits only when nonzero.
  if (limits.max_nodes != 0 &&
      static_cast<std::uint64_t>(num_nodes) > limits.max_nodes) {
    throw std::runtime_error("hgr: node count " + std::to_string(num_nodes) +
                             " exceeds limit " +
                             std::to_string(limits.max_nodes));
  }
  if (limits.max_nets != 0 &&
      static_cast<std::uint64_t>(num_nets) > limits.max_nets) {
    throw std::runtime_error("hgr: net count " + std::to_string(num_nets) +
                             " exceeds limit " + std::to_string(limits.max_nets));
  }
  constexpr long long kMaxIdWidth = 0x7fffffffLL;
  if (num_nodes > kMaxIdWidth || num_nets > kMaxIdWidth) {
    throw std::runtime_error("hgr: header counts exceed 31-bit id range");
  }

  HypergraphBuilder b(static_cast<NodeId>(num_nodes));
  b.set_name(std::move(name));
  std::vector<NodeId> pins;
  std::uint64_t total_pins = 0;
  for (long long n = 0; n < num_nets; ++n) {
    if (!reader.next(line)) {
      throw std::runtime_error("hgr: truncated net list");
    }
    std::istringstream net_line(line);
    double cost = 1.0;
    if (weighted_nets) {
      net_line >> cost;
      if (net_line.fail() || cost <= 0.0) {
        throw std::runtime_error("hgr: bad net weight");
      }
    }
    pins.clear();
    long long pin = 0;
    while (net_line >> pin) {
      if (pin < 1 || pin > num_nodes) {
        throw std::runtime_error("hgr: pin id out of range");
      }
      if (limits.max_pins != 0 && ++total_pins > limits.max_pins) {
        throw std::runtime_error("hgr: pin count exceeds limit " +
                                 std::to_string(limits.max_pins));
      }
      pins.push_back(static_cast<NodeId>(pin - 1));
    }
    if (!net_line.eof()) {
      throw std::runtime_error("hgr: junk token in net line");
    }
    if (pins.empty()) {
      throw std::runtime_error("hgr: net with no pins");
    }
    b.add_net(pins, cost);
  }
  if (weighted_nodes) {
    for (long long u = 0; u < num_nodes; ++u) {
      if (!reader.next(line)) {
        throw std::runtime_error("hgr: truncated node weights");
      }
      // Stream-parse like the net lines so malformed or overflowing values
      // surface as a uniform "hgr: ..." diagnostic (failbit covers both)
      // and trailing garbage is rejected instead of silently ignored.
      std::istringstream weight_line(line);
      long long w = 0;
      weight_line >> w;
      if (weight_line.fail() || w <= 0) {
        throw std::runtime_error("hgr: bad node weight");
      }
      std::string junk;
      if (weight_line >> junk) {
        throw std::runtime_error("hgr: junk token after node weight");
      }
      b.set_node_size(static_cast<NodeId>(u), w);
    }
  }
  return std::move(b).build();
}

Hypergraph read_hgr_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("hgr: cannot open " + path);
  return read_hgr(in, path);
}

void write_hgr(const Hypergraph& g, std::ostream& out) {
  const bool weighted_nets = !g.unit_net_costs();
  const bool weighted_nodes = !g.unit_node_sizes();
  int fmt = 0;
  if (weighted_nets) fmt += 1;
  if (weighted_nodes) fmt += 10;
  out << g.num_nets() << ' ' << g.num_nodes();
  if (fmt != 0) out << ' ' << (fmt < 10 ? "1" : (fmt == 10 ? "10" : "11"));
  out << '\n';
  for (NetId n = 0; n < g.num_nets(); ++n) {
    if (weighted_nets) out << g.net_cost(n) << ' ';
    bool first = true;
    for (const NodeId u : g.pins_of(n)) {
      if (!first) out << ' ';
      out << (u + 1);
      first = false;
    }
    out << '\n';
  }
  if (weighted_nodes) {
    for (NodeId u = 0; u < g.num_nodes(); ++u) out << g.node_size(u) << '\n';
  }
  // A full disk or broken pipe surfaces as stream failbits, not exceptions;
  // without this check a truncated file would pass silently.
  out.flush();
  if (!out) {
    throw std::runtime_error("hgr: write failed (stream error after flush)");
  }
}

void write_hgr_file(const Hypergraph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("hgr: cannot write " + path);
  write_hgr(g, out);
  out.close();
  if (!out) throw std::runtime_error("hgr: write failed for " + path);
}

}  // namespace prop
