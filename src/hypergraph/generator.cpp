#include "hypergraph/generator.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <utility>
#include <vector>

#include "hypergraph/builder.h"
#include "util/rng.h"

namespace prop {
namespace {

/// Draws net sizes >= 2 from a bimodal distribution — a 2/3-pin bulk plus
/// a geometric multi-pin tail, the shape real netlists have — and then
/// nudges them so they sum to exactly `total_pins`.  The multi-pin tail is
/// what makes min-cut landscapes rugged: large nets create wide plateaus of
/// tied immediate gains, the regime Fig. 1 of the paper targets.
std::vector<std::size_t> draw_net_sizes(std::size_t num_nets,
                                        std::size_t total_pins,
                                        std::size_t max_size, Rng& rng) {
  const double mean = static_cast<double>(total_pins) / static_cast<double>(num_nets);
  // Mixture: a 2-pin bulk, some 3-pin nets, else a 4+ geometric tail whose
  // mean is solved from the target q so expectation matches pre-rebalance.
  constexpr double kP2 = 0.70;
  constexpr double kP3 = 0.15;
  const double tail_prob = 1.0 - kP2 - kP3;
  double tail_mean = (mean - kP2 * 2.0 - kP3 * 3.0) / tail_prob;
  if (tail_mean < 4.0) tail_mean = 4.0;
  const double p = 1.0 / (1.0 + (tail_mean - 4.0));

  std::vector<std::size_t> sizes(num_nets);
  std::size_t sum = 0;
  for (auto& s : sizes) {
    const double x = rng.uniform();
    if (x < kP2) {
      s = 2;
    } else if (x < kP2 + kP3) {
      s = 3;
    } else {
      std::size_t g = 0;
      while (g + 4 < max_size && !rng.chance(p)) ++g;
      s = 4 + g;
    }
    if (s > max_size) s = max_size;
    sum += s;
  }

  // Rebalance to the exact pin count by moving single pins between nets.
  while (sum > total_pins) {
    const std::size_t i = rng.bounded(num_nets);
    if (sizes[i] > 2) {
      --sizes[i];
      --sum;
    }
  }
  while (sum < total_pins) {
    const std::size_t i = rng.bounded(num_nets);
    if (sizes[i] < max_size) {
      ++sizes[i];
      ++sum;
    }
  }
  return sizes;
}

}  // namespace

CircuitSpec scaled_spec(std::string name, NodeId nodes) {
  if (nodes < 2) throw std::invalid_argument("scaled_spec: need >= 2 nodes");
  CircuitSpec spec;
  spec.name = std::move(name);
  spec.num_nodes = nodes;
  spec.num_nets = static_cast<NetId>(
      std::max<std::uint64_t>(1, static_cast<std::uint64_t>(nodes) * 103 / 100));
  spec.num_pins = std::max<std::size_t>(
      2 * static_cast<std::size_t>(spec.num_nets),
      static_cast<std::size_t>(nodes) * 7 / 2);
  return spec;
}

Hypergraph generate_circuit(const CircuitSpec& spec, std::uint64_t seed,
                            const GeneratorOptions& options) {
  const std::size_t n = spec.num_nodes;
  const std::size_t e = spec.num_nets;
  const std::size_t m = spec.num_pins;
  if (n < 2) throw std::invalid_argument("generator: need at least 2 nodes");
  if (e == 0) throw std::invalid_argument("generator: need at least 1 net");
  if (m < 2 * e) {
    throw std::invalid_argument("generator: pins must allow >=2 pins per net");
  }

  Rng rng(mix_seed(seed, n, e, m));

  const std::size_t max_net_size =
      std::min<std::size_t>(options.max_net_size, n);
  std::vector<std::size_t> sizes = draw_net_sizes(e, m, max_net_size, rng);

  // Hierarchy levels: block size at level l is leaf_block * 2^l, clamped to
  // n at the top.  P(level l) ~ 2^((gamma-1)*l): most nets are local, a few
  // percent span the whole circuit — Rent-rule decay.
  std::size_t num_levels = 1;
  while (options.leaf_block << num_levels < n) ++num_levels;
  ++num_levels;  // include the root level (block = n)
  std::vector<double> level_cdf(num_levels);
  {
    const double rho = std::pow(2.0, options.rent_exponent - 1.0);
    double w = 1.0;
    double acc = 0.0;
    for (std::size_t l = 0; l < num_levels; ++l) {
      acc += w;
      level_cdf[l] = acc;
      w *= rho;
    }
    for (auto& c : level_cdf) c /= acc;
  }

  // Secret permutation: planted block structure lives in "slot" space; the
  // emitted netlist uses permuted node ids.
  std::vector<NodeId> slot_to_node(n);
  std::iota(slot_to_node.begin(), slot_to_node.end(), NodeId{0});
  rng.shuffle(slot_to_node);

  HypergraphBuilder builder(static_cast<NodeId>(n));
  builder.set_name(spec.name);

  std::vector<std::size_t> node_degree(n, 0);
  std::vector<std::vector<NodeId>> nets(e);
  std::vector<NodeId> pins;
  std::vector<char> in_net(n, 0);
  for (std::size_t i = 0; i < e; ++i) {
    const std::size_t want = sizes[i];
    // Pick the net's level, then a window at that level big enough
    // to host all pins.
    std::size_t level = 0;
    {
      const double x = rng.uniform();
      while (level + 1 < num_levels && x > level_cdf[level]) ++level;
    }
    std::size_t block = std::min<std::size_t>(options.leaf_block << level, n);
    while (block < want) block = std::min(block * 2, n);
    // Unaligned window: overlapping communities make the min-cut landscape
    // rugged (no single canonical split every heuristic trivially finds).
    const std::size_t lo = block < n ? rng.bounded(n - block + 1) : 0;
    const std::size_t hi = lo + block;

    pins.clear();
    while (pins.size() < want) {
      const std::size_t slot = lo + rng.bounded(hi - lo);
      const NodeId u = slot_to_node[slot];
      if (!in_net[u]) {
        in_net[u] = 1;
        pins.push_back(u);
      }
    }
    for (const NodeId u : pins) {
      in_net[u] = 0;
      ++node_degree[u];
    }
    nets[i] = pins;
  }

  // Repair isolated nodes by swapping them into nets in place of nodes with
  // spare degree; preserves all net sizes and the exact pin count.
  std::vector<NodeId> isolated;
  for (std::size_t u = 0; u < n; ++u) {
    if (node_degree[u] == 0) isolated.push_back(static_cast<NodeId>(u));
  }
  for (const NodeId u : isolated) {
    for (int attempt = 0; attempt < 10000; ++attempt) {
      auto& net = nets[rng.bounded(e)];
      const std::size_t k = rng.bounded(net.size());
      const NodeId victim = net[k];
      if (node_degree[victim] < 2) continue;
      if (std::find(net.begin(), net.end(), u) != net.end()) continue;
      --node_degree[victim];
      ++node_degree[u];
      net[k] = u;
      break;
    }
  }

  // Emit nets in shuffled order so net ids carry no level information.
  std::vector<std::size_t> order(e);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  for (const std::size_t i : order) builder.add_net(nets[i]);

  return std::move(builder).build();
}

}  // namespace prop
