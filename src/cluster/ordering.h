// Attraction-based vertex ordering (Alpert & Kahng, ICCAD 1994) — the
// ordering phase of the WINDOW comparator.
//
// Starting from a seed, repeatedly appends the unordered node with the
// largest attraction to the sliding window of the last `window` ordered
// nodes, where attraction accumulates c(n)/(|n|-1) per net shared with a
// window member.  Clusters appear as contiguous runs of high attraction.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "util/rng.h"

namespace prop {

struct OrderingResult {
  std::vector<NodeId> order;
  /// attraction[i]: attraction of order[i] to the window at the moment it
  /// was appended (0 for the seed and for nodes picked when attraction was
  /// exhausted, i.e. component boundaries).
  std::vector<double> attraction;
};

/// `window` = 0 means an unbounded window (plain attraction ordering).
OrderingResult window_ordering(const Hypergraph& g, std::size_t window,
                               Rng& rng);

}  // namespace prop
