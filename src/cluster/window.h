// WINDOW — Alpert & Kahng's vertex-ordering clustering partitioner
// (ICCAD 1994), a Table 2 comparator ("clustering followed by 20 runs of
// FM", paper Table 2 caption).
//
// Pipeline: window vertex ordering -> cluster extraction at attraction
// dips -> contraction -> multi-start FM on the coarse netlist -> projection
// -> flat FM refinement (the "FM20 final phase").
#pragma once

#include <cstdint>
#include <string>

#include "fm/fm_partitioner.h"
#include "partition/partitioner.h"

namespace prop {

struct WindowConfig {
  std::size_t window = 10;          ///< ordering window width
  std::size_t max_cluster_size = 10;
  /// Start a new cluster when the next node's attraction drops below this
  /// fraction of the current cluster's running mean.
  double dip_ratio = 0.5;
  int coarse_runs = 20;  ///< FM starts on the contracted netlist
  FmConfig fm;
};

class WindowPartitioner final : public Bipartitioner {
 public:
  explicit WindowPartitioner(WindowConfig config = {}) : config_(config) {}

  std::string name() const override { return "WINDOW"; }

  bool attach_context(const RunContext* context) noexcept override {
    // Both the coarse multi-start FM and the flat refinement phase run
    // through config_.fm, so the one pointer covers the whole pipeline.
    config_.fm.context = context;
    return true;
  }

  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

  std::unique_ptr<Bipartitioner> clone() const override {
    auto copy = std::make_unique<WindowPartitioner>(config_);
    copy->attach_context(nullptr);
    return copy;
  }

 private:
  WindowConfig config_;
};

}  // namespace prop
