#include "cluster/ordering.h"

#include <limits>

namespace prop {
namespace {

/// Adds (sign = +1) or removes (sign = -1) node u's contribution to the
/// attraction of its unordered neighbors.
void adjust_attraction(const Hypergraph& g, NodeId u, double sign,
                       const std::vector<char>& ordered,
                       std::vector<double>& attraction) {
  for (const NetId n : g.nets_of(u)) {
    const std::size_t s = g.net_size(n);
    if (s < 2) continue;
    const double w = sign * g.net_cost(n) / static_cast<double>(s - 1);
    for (const NodeId v : g.pins_of(n)) {
      if (v != u && !ordered[v]) attraction[v] += w;
    }
  }
}

}  // namespace

OrderingResult window_ordering(const Hypergraph& g, std::size_t window,
                               Rng& rng) {
  const NodeId n = g.num_nodes();
  OrderingResult out;
  out.order.reserve(n);
  out.attraction.reserve(n);

  std::vector<char> ordered(n, 0);
  std::vector<double> attraction(n, 0.0);

  const NodeId seed = n > 0 ? static_cast<NodeId>(rng.bounded(n)) : 0;
  NodeId next = seed;
  double next_attraction = 0.0;

  for (NodeId step = 0; step < n; ++step) {
    const NodeId u = next;
    out.order.push_back(u);
    out.attraction.push_back(next_attraction);
    ordered[u] = 1;
    adjust_attraction(g, u, +1.0, ordered, attraction);
    if (window > 0 && out.order.size() > window) {
      adjust_attraction(g, out.order[out.order.size() - 1 - window], -1.0,
                        ordered, attraction);
    }
    if (step + 1 == n) break;

    // Highest-attraction unordered node; ties and isolated components fall
    // back to the lowest id (deterministic).
    NodeId best = kInvalidNode;
    double best_val = -std::numeric_limits<double>::infinity();
    for (NodeId v = 0; v < n; ++v) {
      if (!ordered[v] && attraction[v] > best_val) {
        best_val = attraction[v];
        best = v;
      }
    }
    next = best;
    next_attraction = best_val > 0.0 ? best_val : 0.0;
  }
  return out;
}

}  // namespace prop
