#include "cluster/window.h"

#include <vector>

#include "cluster/ordering.h"
#include "hypergraph/contraction.h"
#include "partition/initial.h"
#include "partition/partition.h"
#include "util/rng.h"

namespace prop {
namespace {

/// Splits the ordering into contiguous clusters at attraction dips.
std::vector<NodeId> extract_clusters(const OrderingResult& ordering,
                                     const WindowConfig& config,
                                     NodeId num_nodes, NodeId& num_clusters) {
  std::vector<NodeId> cluster_of(num_nodes, 0);
  NodeId cluster = 0;
  std::size_t cluster_size = 0;
  double cluster_attraction_sum = 0.0;

  for (std::size_t i = 0; i < ordering.order.size(); ++i) {
    const double att = ordering.attraction[i];
    const bool dip =
        cluster_size > 0 &&
        att < config.dip_ratio * (cluster_attraction_sum /
                                  static_cast<double>(cluster_size));
    if (cluster_size >= config.max_cluster_size || dip ||
        (cluster_size > 0 && att == 0.0)) {
      ++cluster;
      cluster_size = 0;
      cluster_attraction_sum = 0.0;
    }
    cluster_of[ordering.order[i]] = cluster;
    ++cluster_size;
    cluster_attraction_sum += att;
  }
  num_clusters = cluster + 1;
  return cluster_of;
}

}  // namespace

PartitionResult WindowPartitioner::run(const Hypergraph& g,
                                       const BalanceConstraint& balance,
                                       std::uint64_t seed) {
  Rng rng(seed);

  // Phase 1: ordering + clustering + contraction.
  const OrderingResult ordering = window_ordering(g, config_.window, rng);
  NodeId num_clusters = 0;
  const std::vector<NodeId> cluster_of =
      extract_clusters(ordering, config_, g.num_nodes(), num_clusters);
  const ContractionResult coarse = contract(g, cluster_of, num_clusters);

  // Phase 2: multi-start FM on the coarse netlist.  The coarse window uses
  // the same fractions but is naturally widened by the cluster granularity.
  const double r1 = static_cast<double>(balance.lo()) /
                    static_cast<double>(std::max<std::int64_t>(balance.total(), 1));
  const double r2 = static_cast<double>(balance.hi()) /
                    static_cast<double>(std::max<std::int64_t>(balance.total(), 1));
  const BalanceConstraint coarse_balance = BalanceConstraint::fraction(
      coarse.coarse, std::max(0.01, r1), std::min(0.99, r2));

  PartitionResult best_coarse;
  for (int run = 0; run < config_.coarse_runs; ++run) {
    Partition part(coarse.coarse,
                   random_balanced_sides(coarse.coarse, coarse_balance, rng));
    const RefineOutcome outcome = fm_refine(part, coarse_balance, config_.fm);
    if (!best_coarse.valid() || outcome.cut_cost < best_coarse.cut_cost) {
      best_coarse.side = part.sides();
      best_coarse.cut_cost = outcome.cut_cost;
      // The best run's actual refinement passes, not a count of improving
      // runs — `passes` feeds PartitionResult/--stats-json verbatim.
      best_coarse.passes = outcome.passes;
    }
  }

  // Phase 3: project and refine flat under the true balance window.
  Partition part(g, project_partition(coarse.fine_to_coarse, best_coarse.side));
  repair_balance(part, balance);
  const RefineOutcome outcome = fm_refine(part, balance, config_.fm);

  PartitionResult result;
  result.side = part.sides();
  result.cut_cost = outcome.cut_cost;
  result.passes = best_coarse.passes + outcome.passes;
  return result;
}

}  // namespace prop
