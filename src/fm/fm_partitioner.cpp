#include "fm/fm_partitioner.h"

#include <cmath>
#include <vector>

#include "datastruct/avl_tree.h"
#include "datastruct/bucket_list.h"
#include "fm/fm_gains.h"
#include "partition/initial.h"
#include "telemetry/invariant_audit.h"
#include "util/timer.h"

namespace prop {
namespace {

constexpr double kEps = 1e-9;

/// Bucket-array gain container (unit net costs: gains are integers).
class BucketContainer {
 public:
  using Handle = BucketList::Handle;
  static constexpr Handle kNull = BucketList::kNull;

  BucketContainer(Handle capacity, int max_gain) : list_(capacity, max_gain) {}

  void clear() { list_.clear(); }
  bool empty() const { return list_.empty(); }
  double gain(Handle h) const { return list_.gain(h); }
  bool contains(Handle h) const { return list_.contains(h); }
  void insert(Handle h, double g) {
    list_.insert(h, static_cast<int>(std::llround(g)));
  }
  void erase(Handle h) { list_.erase(h); }
  void update(Handle h, double g) {
    list_.update(h, static_cast<int>(std::llround(g)));
  }
  // Non-const like the underlying BucketList: selection tightens the lazy
  // max-gain cursor.
  Handle best() { return list_.best(); }
  template <typename Pred>
  Handle best_where(Pred&& pred) {
    return list_.best_where(pred);
  }

 private:
  BucketList list_;
};

/// AVL-tree gain container (general net costs).
class TreeContainer {
 public:
  using Tree = AvlTree<double>;
  using Handle = Tree::Handle;
  static constexpr Handle kNull = Tree::kNull;

  TreeContainer(Handle capacity, int /*max_gain*/) : tree_(capacity) {}

  void clear() { tree_.clear(); }
  bool empty() const { return tree_.empty(); }
  double gain(Handle h) const { return tree_.key(h); }
  bool contains(Handle h) const { return tree_.contains(h); }
  void insert(Handle h, double g) { tree_.insert(h, g); }
  void erase(Handle h) { tree_.erase(h); }
  void update(Handle h, double g) { tree_.update(h, g); }
  Handle best() const { return tree_.max(); }
  template <typename Pred>
  Handle best_where(Pred&& pred) const {
    Handle found = kNull;
    tree_.for_each_descending([&](Handle h, double) {
      if (pred(h)) {
        found = h;
        return false;
      }
      return true;
    });
    return found;
  }

 private:
  Tree tree_;
};

/// Debug audit (FmConfig::audit_interval): checks every free node's
/// container gain against a from-scratch Eqn. 1 recompute, container
/// membership against the lock flags, and the incremental cut cost.  The
/// FM update rules restate the scratch definition exactly, so any gap
/// beyond FP accumulation noise is a bug.
template <typename Container>
void fm_audit(const Partition& part, const std::vector<std::uint8_t>& locked,
              const Container& side0, const Container& side1,
              const FmConfig& config, PassStats* stats) {
  audit::check_cut(part, config.audit_tolerance);
  audit::DriftTracker drift;
  const NodeId n = part.graph().num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    const Container& own = part.side(v) == 0 ? side0 : side1;
    const Container& other = part.side(v) == 0 ? side1 : side0;
    if (locked[v]) {
      audit::check_node(!side0.contains(v) && !side1.contains(v),
                        "FM: locked node still in a gain container", v);
      continue;
    }
    audit::check_node(own.contains(v) && !other.contains(v),
                      "FM: free node not in its side's gain container", v);
    const double scratch = part.immediate_gain(v);
    drift.observe(v, own.gain(v), scratch);
    audit::check_close(own.gain(v), scratch, config.audit_tolerance,
                       "FM incremental gain", v);
  }
  if (stats) {
    ++stats->audits;
    if (drift.max_abs > stats->max_gain_drift) {
      stats->max_gain_drift = drift.max_abs;
    }
  }
}

/// Per-pass scratch hoisted out of fm_pass so repeated passes of one
/// refine call reuse the same buffers instead of reallocating them.
struct FmScratch {
  std::vector<std::uint8_t> locked;
  std::vector<NodeId> moved;
};

/// One FM pass: virtually move everything, roll back to the best prefix.
/// Returns the accepted (positive part of the) improvement.  Sets
/// `interrupted` when a deadline/cancellation cut the pass short (the
/// rollback to the best prefix still runs, so the partition stays valid).
template <typename Container>
double fm_pass(Partition& part, const BalanceConstraint& balance,
               const FmConfig& config, Container& side0, Container& side1,
               FmScratch& scratch, PassStats* stats, bool& interrupted) {
  const Hypergraph& g = part.graph();
  const NodeId n = g.num_nodes();

  scratch.locked.assign(n, 0);
  std::vector<std::uint8_t>& locked = scratch.locked;
  side0.clear();
  side1.clear();
  for (NodeId u = 0; u < n; ++u) {
    (part.side(u) == 0 ? side0 : side1).insert(u, part.immediate_gain(u));
  }
  if (stats) stats->ops.inserts += n;

  scratch.moved.clear();
  std::vector<NodeId>& moved = scratch.moved;
  moved.reserve(n);
  double prefix = 0.0;
  double best_prefix = 0.0;
  std::size_t best_count = 0;

  const auto feasible_from = [&](int side) {
    return [&part, &balance, &g, side](NodeId h) {
      return balance.move_feasible(part.side_size(0), side, g.node_size(h));
    };
  };
  // With unit node sizes feasibility is uniform per side, so it is checked
  // once instead of scanning the container past every infeasible node.
  const bool unit_sizes = g.unit_node_sizes();
  const auto candidate = [&](Container& c, int side) -> NodeId {
    if (c.empty()) return Container::kNull;
    if (unit_sizes) {
      if (!balance.move_feasible(part.side_size(0), side, 1)) {
        return Container::kNull;
      }
      return c.best();
    }
    return c.best_where(feasible_from(side));
  };

  while (true) {
    if (config.context && config.context->refine_should_stop()) {
      interrupted = true;
      break;
    }
    const NodeId h0 = candidate(side0, 0);
    const NodeId h1 = candidate(side1, 1);
    if (h0 == Container::kNull && h1 == Container::kNull) break;

    NodeId u;
    if (h0 == Container::kNull) {
      u = h1;
    } else if (h1 == Container::kNull) {
      u = h0;
    } else if (side0.gain(h0) != side1.gain(h1)) {
      u = side0.gain(h0) > side1.gain(h1) ? h0 : h1;
    } else {
      // Gain tie: move from the heavier side to improve balance headroom.
      u = part.side_size(0) >= part.side_size(1) ? h0 : h1;
    }

    const double immediate = part.immediate_gain(u);
    (part.side(u) == 0 ? side0 : side1).erase(u);
    locked[u] = 1;
    if (stats) ++stats->ops.erases;

    fm_move_with_updates(
        part, u, [&](NodeId v) { return locked[v] == 0; },
        [&](NodeId v, double delta) {
          Container& c = part.side(v) == 0 ? side0 : side1;
          c.update(v, c.gain(v) + delta);
          if (stats) ++stats->ops.updates;
        });

    moved.push_back(u);
    prefix += immediate;
    if (prefix > best_prefix + kEps) {
      best_prefix = prefix;
      best_count = moved.size();
    }

    if (config.audit_interval > 0 &&
        moved.size() % static_cast<std::size_t>(config.audit_interval) == 0) {
      fm_audit(part, locked, side0, side1, config, stats);
    }
  }

  // Roll back every move beyond the maximum-prefix point.
  for (std::size_t i = moved.size(); i > best_count; --i) {
    part.move(moved[i - 1]);
  }
  if (stats) {
    stats->moves_attempted = moved.size();
    stats->moves_accepted = best_count;
    stats->best_prefix_gain = best_prefix;
  }
  return best_prefix;
}

template <typename Container>
RefineOutcome refine_with(Partition& part, const BalanceConstraint& balance,
                          const FmConfig& config) {
  const int max_gain =
      static_cast<int>(part.graph().max_degree()) + 1;
  Container side0(part.graph().num_nodes(), max_gain);
  Container side1(part.graph().num_nodes(), max_gain);
  FmScratch scratch;
  RefineOutcome out;
  for (int pass = 0; pass < config.max_passes; ++pass) {
    PassStats* stats = nullptr;
    WallTimer wall;
    CpuTimer cpu;
    if (config.telemetry) {
      stats = &config.telemetry->begin_pass(part.cut_cost());
    }
    bool interrupted = false;
    const double gained = fm_pass(part, balance, config, side0, side1,
                                  scratch, stats, interrupted);
    ++out.passes;
    if (stats) {
      stats->cut_after = part.cut_cost();
      stats->wall_seconds = wall.seconds();
      stats->cpu_seconds = cpu.seconds();
    }
    if (interrupted) {
      out.interrupted = true;
      break;
    }
    if (gained <= kEps) break;
  }
  out.cut_cost = part.cut_cost();
  return out;
}

}  // namespace

RefineOutcome fm_refine(Partition& part, const BalanceConstraint& balance,
                        const FmConfig& config) {
  if (config.structure == FmStructure::kBucket) {
    if (!part.graph().unit_net_costs()) {
      // The bucket array indexes integer gains; fall back to the tree for
      // weighted nets — exactly the trade-off the paper discusses in Sec. 4.
      return refine_with<TreeContainer>(part, balance, config);
    }
    return refine_with<BucketContainer>(part, balance, config);
  }
  return refine_with<TreeContainer>(part, balance, config);
}

PartitionResult FmPartitioner::run(const Hypergraph& g,
                                   const BalanceConstraint& balance,
                                   std::uint64_t seed) {
  Rng rng(seed);
  Partition part(g, random_balanced_sides(g, balance, rng));
  const RefineOutcome outcome = fm_refine(part, balance, config_);
  PartitionResult result;
  result.side = part.sides();
  result.cut_cost = outcome.cut_cost;
  result.passes = outcome.passes;
  return result;
}

}  // namespace prop
