// Fiduccia–Mattheyses iterative-improvement bipartitioner.
//
// Two interchangeable gain containers, matching the paper's Table 4
// comparison:
//   * kBucket — the classic O(1) bucket array (requires unit net costs);
//   * kTree   — the AVL tree, needed for weighted nets and shared with PROP.
//
// A pass virtually moves every node (highest-gain feasible node first,
// lock after move, classic neighbor updates), then rolls back to the
// maximum-prefix-gain point; passes repeat until no positive improvement
// (paper Sec. 2).
#pragma once

#include <cstdint>
#include <string>

#include "partition/partition.h"
#include "partition/partitioner.h"
#include "runtime/run_context.h"
#include "telemetry/telemetry.h"
#include "util/rng.h"

namespace prop {

enum class FmStructure { kBucket, kTree };

struct FmConfig {
  FmStructure structure = FmStructure::kBucket;
  /// Safety bound; the paper observes convergence in 2-4 passes.
  int max_passes = 64;

  /// Opt-in per-pass trajectory recording; null records nothing.
  RefineTelemetry* telemetry = nullptr;

  /// Optional runtime context: the move loop polls for deadline expiry /
  /// injected cancellation and stops mid-pass, rolling back to the best
  /// prefix as usual (the partition stays valid).  Null = inert.
  const RunContext* context = nullptr;

  /// Debug auditor cadence: every `audit_interval` moves the pass
  /// recomputes gains and cut cost from scratch and throws
  /// std::logic_error on a mismatch beyond `audit_tolerance`.  0 = off.
  int audit_interval = 0;
  double audit_tolerance = 1e-6;
};

/// Improves `part` in place until a pass yields no gain.  Deterministic in
/// the partition's state (selection ties are broken LIFO).
RefineOutcome fm_refine(Partition& part, const BalanceConstraint& balance,
                        const FmConfig& config = {});

class FmPartitioner final : public Bipartitioner {
 public:
  explicit FmPartitioner(FmConfig config = {}) : config_(config) {}

  std::string name() const override {
    return config_.structure == FmStructure::kBucket ? "FM-bucket" : "FM-tree";
  }

  bool attach_telemetry(RefineTelemetry* telemetry) noexcept override {
    config_.telemetry = telemetry;
    return true;
  }

  bool attach_context(const RunContext* context) noexcept override {
    config_.context = context;
    return true;
  }

  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

  std::unique_ptr<Bipartitioner> clone() const override {
    auto copy = std::make_unique<FmPartitioner>(config_);
    copy->attach_telemetry(nullptr);
    copy->attach_context(nullptr);
    return copy;
  }

 private:
  FmConfig config_;
};

}  // namespace prop
