#include "fm/fm_gains.h"

namespace prop {

double fm_gain(const Partition& part, NodeId u) {
  return part.immediate_gain(u);
}

std::vector<double> fm_all_gains(const Partition& part) {
  std::vector<double> gains(part.graph().num_nodes());
  for (NodeId u = 0; u < part.graph().num_nodes(); ++u) {
    gains[u] = fm_gain(part, u);
  }
  return gains;
}

}  // namespace prop
