// FM deterministic gain computation (paper Eqn. 1) and the classic
// incremental update applied around each move.
#pragma once

#include <vector>

#include "hypergraph/hypergraph.h"
#include "partition/partition.h"

namespace prop {

/// Immediate FM gain of node u under `part`: sum over nets in E(u) of c(n)
/// minus sum over nets in I(u) of c(n) (Eqn. 1).  Equals
/// part.immediate_gain(u); provided as a free function for clarity and for
/// tests against the incremental updates.
double fm_gain(const Partition& part, NodeId u);

/// All node gains (O(m)).
std::vector<double> fm_all_gains(const Partition& part);

/// Applies the classic FM neighbor-gain delta rules around moving `u`.
/// `apply` is called as apply(v, delta) for every free neighbor whose gain
/// changes; `is_free(v)` says whether v is unlocked.  The function performs
/// part.move(u) itself (deltas must straddle the pin-count change).
template <typename IsFree, typename Apply>
void fm_move_with_updates(Partition& part, NodeId u, IsFree&& is_free,
                          Apply&& apply) {
  const Hypergraph& g = part.graph();
  const int from = part.side(u);
  const int to = 1 - from;

  for (const NetId n : g.nets_of(u)) {
    const double c = g.net_cost(n);
    const auto to_count = part.pins_on_side(n, to);
    if (to_count == 0) {
      // Net was uncut; moving u makes every free pin want to follow.
      for (const NodeId v : g.pins_of(n)) {
        if (v != u && is_free(v)) apply(v, +c);
      }
    } else if (to_count == 1) {
      // The single to-side pin loses its "critical" bonus.
      for (const NodeId v : g.pins_of(n)) {
        if (part.side(v) == to && is_free(v)) {
          apply(v, -c);
          break;
        }
      }
    }
  }

  part.move(u);

  for (const NetId n : g.nets_of(u)) {
    const double c = g.net_cost(n);
    const auto from_count = part.pins_on_side(n, from);
    if (from_count == 0) {
      // Net fully migrated; followers no longer gain by leaving.
      for (const NodeId v : g.pins_of(n)) {
        if (v != u && is_free(v)) apply(v, -c);
      }
    } else if (from_count == 1) {
      // The single remaining from-side pin becomes critical.
      for (const NodeId v : g.pins_of(n)) {
        if (part.side(v) == from && is_free(v)) {
          apply(v, +c);
          break;
        }
      }
    }
  }
}

}  // namespace prop
