// Probabilistic k-way node-gain computation — the per-(net, part)
// generalization of core/prob_gain.h (paper Sec. 5's k-way direction;
// DESIGN.md §4j).
//
// Every free node u carries a probability p(u) of being actually moved in
// the current pass.  The gain contributed to u (in part a) by net n for a
// move toward part b generalizes Eqns. 3/4 with "the other side" replaced
// by "the target part":
//
//   net already touches b  (k = 2: exactly "net in cut"):
//     g_n(u -> b) = c(n) * [ prod_{x in free(n^a) - u} p(x)
//                            - prod_{y in free(n^b)} p(y) ]
//   net has no pin in b    (k = 2: exactly "net entirely in a"):
//     g_n(u -> b) = -c(n) * (1 - prod_{x in free(n^a) - u} p(x))
//
// A locked pin in part p zeroes p's removal product (the net can never be
// pulled out of p this pass), empty products are 1 — the same locked-net
// rules as 2-way.  For k = 2 the branch predicate pins_in(n, b) > 0 is
// equivalent to Partition::is_cut(n) given u in a, and every product,
// counter and accumulation runs in the same order over the same slots as
// ProbGainCalculator — so the k = 2 specialization is bit-identical to the
// 2-way engine by construction (asserted in kway_gain_engine_test).
//
// The same three engines as 2-way (GainEngine in core/prob_gain.h):
// kCached answers from per-(net, part) products with zero-factor counters,
// per-node reciprocals and epoch renormalization; kScratch recomputes from
// the pins (the exact oracle); kShadow answers from scratch while
// maintaining and cross-checking the cache on every query.
#pragma once

#include <cstdint>
#include <vector>

#include "core/prob_gain.h"  // GainEngine + shared renorm/audit constants
#include "kway/kway_state.h"

namespace prop {

class KWayProbGainCalculator {
 public:
  // Shared with the 2-way engine so the two caches age and audit
  // identically (see core/prob_gain.h for the rationale).
  static constexpr int kDefaultRenormInterval =
      ProbGainCalculator::kDefaultRenormInterval;
  static constexpr double kRenormMagLo = ProbGainCalculator::kRenormMagLo;
  static constexpr double kRenormMagHi = ProbGainCalculator::kRenormMagHi;
  static constexpr double kProductAuditTol =
      ProbGainCalculator::kProductAuditTol;

  explicit KWayProbGainCalculator(const KWayState& state,
                                  GainEngine engine = GainEngine::kCached,
                                  int renorm_interval = kDefaultRenormInterval);

  GainEngine engine() const noexcept { return engine_; }

  /// Unlocks everything; probabilities must then be (re)initialized by the
  /// caller via set_probability.  Must also be called after any
  /// KWayState::move performed outside lock/move_locked bookkeeping.
  void reset();

  bool is_free(NodeId u) const noexcept { return locked_[u] == 0; }
  double probability(NodeId u) const noexcept { return p_[u]; }

  /// Sets p(u); u must be free.  O(degree(u)) cached, O(1) scratch.
  void set_probability(NodeId u, double p);

  /// Locks u: p(u) := 0 (paper Sec. 3.4).  Call BEFORE KWayState::move so
  /// the lock lands on u's current part.
  void lock(NodeId u);

  /// Records that locked node u moved from `from_part` to its current part
  /// (call after KWayState::move).
  void move_locked(NodeId u, NodeId from_part);

  /// Probabilistic gain of moving u to part `to`: sum over u's nets of the
  /// per-net gain above.  O(degree(u)) cached, O(degree(u) * netsize)
  /// scratch; shadow answers scratch after cross-checking the cache
  /// (std::logic_error past kProductAuditTol).  `to` must differ from u's
  /// part.
  double gain(NodeId u, NodeId to) const;

  /// Gain restricted to one net, always computed from scratch by explicit
  /// pin iteration — the reference oracle for tests.
  double net_gain(NodeId u, NetId n, NodeId to) const;

  /// From-scratch total gain regardless of the configured engine.
  double scratch_gain(NodeId u, NodeId to) const;

  /// Recomputes every cached (net, part) product and zero counter exactly
  /// from the pins and restarts all renormalization epochs.  No-op under
  /// the scratch engine.  O(pins * k).
  void renormalize_all();

  /// Max |cached product - scratch recompute| over all (net, part) slots;
  /// 0 under the scratch engine.
  double max_product_drift() const;

  /// Debug invariant audit mirroring ProbGainCalculator::audit_consistency:
  /// locked-pin recount, probability bounds, exact reciprocal/zero-counter
  /// checks and product cross-check within kProductAuditTol.  Throws
  /// std::logic_error on any mismatch.
  void audit_consistency() const;

 private:
  std::size_t slot(NetId n, NodeId p) const noexcept {
    return static_cast<std::size_t>(n) * k_ + p;
  }

  bool part_locked(NetId n, NodeId p) const noexcept {
    return locked_pins_[slot(n, p)] > 0;
  }

  bool maintains_cache() const noexcept {
    return engine_ != GainEngine::kScratch;
  }

  double cached_gain(NodeId u, NodeId to) const;

  /// One factor change old_p -> new_p on the (net, part) slot; renormalizes
  /// when the epoch expires or the product degenerates.  Identical update
  /// discipline to the 2-way engine.
  void update_factor(NetId n, NodeId p, double old_p, double old_r,
                     double new_p);

  void renormalize_slot(NetId n, NodeId p);

  /// Scratch recompute of (product of nonzero free-pin probabilities, zero
  /// count) for one part of a net, multiplying in pin order.
  void scratch_part(NetId n, NodeId p, double& prod,
                    std::uint32_t& zeros) const;

  const KWayState* state_;
  NodeId k_;
  GainEngine engine_;
  int renorm_interval_;
  std::vector<double> p_;
  std::vector<std::uint8_t> locked_;
  std::vector<std::uint32_t> locked_pins_;  // locked pins per (net, part)

  // Cached-engine state; unused (empty) under kScratch.  One slot per
  // (net, part); recip_ caches 1/p per node.
  std::vector<double> prod_;
  std::vector<std::uint32_t> zero_free_;
  std::vector<std::uint32_t> updates_;
  std::vector<double> recip_;
};

}  // namespace prop
