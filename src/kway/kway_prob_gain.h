// Probabilistic k-way node-gain computation — the per-(net, part)
// generalization of core/prob_gain.h (paper Sec. 5's k-way direction;
// DESIGN.md §4j).
//
// Every free node u carries a probability p(u) of being actually moved in
// the current pass.  The gain contributed to u (in part a) by net n for a
// move toward part b generalizes Eqns. 3/4 with "the other side" replaced
// by "the target part":
//
//   net already touches b  (k = 2: exactly "net in cut"):
//     g_n(u -> b) = c(n) * [ prod_{x in free(n^a) - u} p(x)
//                            - prod_{y in free(n^b)} p(y) ]
//   net has no pin in b    (k = 2: exactly "net entirely in a"):
//     g_n(u -> b) = -c(n) * (1 - prod_{x in free(n^a) - u} p(x))
//
// A locked pin in part p zeroes p's removal product (the net can never be
// pulled out of p this pass), empty products are 1 — the same locked-net
// rules as 2-way.  For k = 2 the branch predicate pins_in(n, b) > 0 is
// equivalent to Partition::is_cut(n) given u in a, and every product,
// counter and accumulation runs in the same order over the same slots as
// ProbGainCalculator — so the k = 2 specialization is bit-identical to the
// 2-way engine by construction (asserted in kway_gain_engine_test).
//
// The same three engines as 2-way (GainEngine in core/prob_gain.h):
// kCached answers from per-(net, part) products with zero-factor counters,
// per-node reciprocals and epoch renormalization; kScratch recomputes from
// the pins (the exact oracle); kShadow answers from scratch while
// maintaining and cross-checking the cache on every query.
#pragma once

#include <cstdint>
#include <vector>

#include "core/prob_gain.h"  // GainEngine + shared renorm/audit constants
#include "kway/kway_state.h"

namespace prop {

class KWayProbGainCalculator {
 public:
  // Shared with the 2-way engine so the two caches age and audit
  // identically (see core/prob_gain.h for the rationale).
  static constexpr int kDefaultRenormInterval =
      ProbGainCalculator::kDefaultRenormInterval;
  static constexpr double kRenormMagLo = ProbGainCalculator::kRenormMagLo;
  static constexpr double kRenormMagHi = ProbGainCalculator::kRenormMagHi;
  static constexpr double kProductAuditTol =
      ProbGainCalculator::kProductAuditTol;

  explicit KWayProbGainCalculator(const KWayState& state,
                                  GainEngine engine = GainEngine::kCached,
                                  int renorm_interval = kDefaultRenormInterval);

  GainEngine engine() const noexcept { return engine_; }

  /// Unlocks everything; probabilities must then be (re)initialized by the
  /// caller via set_probability.  Must also be called after any
  /// KWayState::move performed outside lock/move_locked bookkeeping.
  void reset();

  bool is_free(NodeId u) const noexcept { return locked_[u] == 0; }
  double probability(NodeId u) const noexcept { return p_[u]; }

  /// Sets p(u); u must be free.  O(degree(u)) cached, O(1) scratch.
  void set_probability(NodeId u, double p);

  /// Locks u: p(u) := 0 (paper Sec. 3.4).  Call BEFORE KWayState::move so
  /// the lock lands on u's current part.
  void lock(NodeId u);

  /// Records that locked node u moved from `from_part` to its current part
  /// (call after KWayState::move).
  void move_locked(NodeId u, NodeId from_part);

  // --- Batched interface for the deterministic round engine (DESIGN §4i) --
  //
  // The k-way mirror of ProbGainCalculator's batched interface: per-node
  // state written in bulk from node-disjoint chunks (stage_probability), a
  // whole round's committed moves applied in one deterministic sweep
  // (apply_moves), and the per-(net, part) products rebuilt exactly by
  // partitioned per-net reduction — every slot recomputed once, in pin
  // order, so the rebuilt cache is bit-identical to a scratch recompute for
  // any thread count.  The read path (gain / net_gain) is const and safe to
  // share while no thread is inside a mutating call.

  /// Writes p(u) (and its cached reciprocal) WITHOUT maintaining the
  /// per-(net, part) products; u must be free.  Concurrent calls for
  /// distinct nodes are race-free.  Every product slot of every net of a
  /// staged node is stale until rebuilt.
  void stage_probability(NodeId u, double p);

  /// Exactly recomputes all k product slots and zero counters of every net
  /// in [begin, end) from the pins — pin-order multiplication, bit-identical
  /// to the scratch oracle — and restarts their renormalization epochs.
  /// Concurrent calls on disjoint net ranges are race-free.  No-op under
  /// the scratch engine.
  void rebuild_products(NetId begin, NetId end);

  /// rebuild_products over an explicit net list: recomputes every slot of
  /// nets[i] for i in [begin, end).  Concurrent calls on disjoint index
  /// ranges are race-free (lists from dirty_nets() are duplicate-free).
  void rebuild_products_for(const NetId* nets, std::size_t begin,
                            std::size_t end);

  /// Applies one committed round of moves, in order: for each mover i —
  /// lock (p := 0), KWayState::move to targets[i], locked-pin table update
  /// — with NO product maintenance.  `state` must be the state this
  /// calculator observes; the caller must rebuild the products of every
  /// touched net (or all nets) before the next gain query.  Throws if a
  /// mover is already locked.
  void apply_moves(KWayState& state, const NodeId* movers,
                   const NodeId* targets, std::size_t count);

  // --- Active-set (dirty-net) tracking (DESIGN §4k) -----------------------
  //
  // Identical contract to ProbGainCalculator's: every mutation that can
  // change a gain input of a net's pins marks that net dirty (byte bitmap +
  // append-once list); full-state invalidations (reset, renormalize_all)
  // raise all_dirty() instead.  Pure bookkeeping — no tracked call changes
  // any cache bit, so enabling tracking never changes any gain.

  /// Enables/disables tracking.  Enabling (re)starts in the all-dirty
  /// state; buffers are sized on first enable (re-enabling reuses them).
  void set_dirty_tracking(bool on);
  bool dirty_tracking() const noexcept { return track_dirty_; }

  /// True when the next sweep must cover everything: tracking disabled, or
  /// a full-state invalidation since the last clear_dirty().
  bool all_dirty() const noexcept { return !track_dirty_ || all_dirty_; }

  /// Nets marked dirty since the last clear_dirty(), in marking order
  /// (deterministic, duplicate-free).  Meaningless while all_dirty().
  const std::vector<NetId>& dirty_nets() const noexcept { return dirty_nets_; }

  /// Leaves the all-dirty state / empties the dirty list.
  void clear_dirty();

  /// Sequentially folds staged probability changes into the dirty set: for
  /// each listed node whose stage_probability call actually changed p since
  /// the last note, marks its nets and clears the per-node changed flag.
  void note_staged_changes(const NodeId* nodes, std::size_t count);
  /// note_staged_changes over the full node range [0, num_nodes).
  void note_staged_changes_all();

  /// Probabilistic gain of moving u to part `to`: sum over u's nets of the
  /// per-net gain above.  O(degree(u)) cached, O(degree(u) * netsize)
  /// scratch; shadow answers scratch after cross-checking the cache
  /// (std::logic_error past kProductAuditTol).  `to` must differ from u's
  /// part.
  double gain(NodeId u, NodeId to) const;

  /// Gain restricted to one net, always computed from scratch by explicit
  /// pin iteration — the reference oracle for tests.
  double net_gain(NodeId u, NetId n, NodeId to) const;

  /// From-scratch total gain regardless of the configured engine.
  double scratch_gain(NodeId u, NodeId to) const;

  /// Recomputes every cached (net, part) product and zero counter exactly
  /// from the pins and restarts all renormalization epochs.  No-op under
  /// the scratch engine.  O(pins * k).
  void renormalize_all();

  /// Max |cached product - scratch recompute| over all (net, part) slots;
  /// 0 under the scratch engine.
  double max_product_drift() const;

  /// Debug invariant audit mirroring ProbGainCalculator::audit_consistency:
  /// locked-pin recount, probability bounds, exact reciprocal/zero-counter
  /// checks and product cross-check within kProductAuditTol.  Throws
  /// std::logic_error on any mismatch.
  void audit_consistency() const;

 private:
  std::size_t slot(NetId n, NodeId p) const noexcept {
    return static_cast<std::size_t>(n) * k_ + p;
  }

  bool part_locked(NetId n, NodeId p) const noexcept {
    return locked_pins_[slot(n, p)] > 0;
  }

  bool maintains_cache() const noexcept {
    return engine_ != GainEngine::kScratch;
  }

  double cached_gain(NodeId u, NodeId to) const;

  /// One factor change old_p -> new_p on the (net, part) slot; renormalizes
  /// when the epoch expires or the product degenerates.  Identical update
  /// discipline to the 2-way engine.
  void update_factor(NetId n, NodeId p, double old_p, double old_r,
                     double new_p);

  void renormalize_slot(NetId n, NodeId p);

  /// Appends n to the dirty list once.  No-op while all_dirty_ is raised.
  /// Only called under track_dirty_.
  void mark_net(NetId n) {
    if (all_dirty_) return;
    if (!net_dirty_[n]) {
      net_dirty_[n] = 1;
      dirty_nets_.push_back(n);
    }
  }
  void mark_nets_of(NodeId u);
  /// Raises all_dirty(), superseding (and emptying) the per-net list.
  void mark_all_dirty();

  /// Scratch recompute of (product of nonzero free-pin probabilities, zero
  /// count) for one part of a net, multiplying in pin order.
  void scratch_part(NetId n, NodeId p, double& prod,
                    std::uint32_t& zeros) const;

  const KWayState* state_;
  NodeId k_;
  GainEngine engine_;
  int renorm_interval_;
  std::vector<double> p_;
  std::vector<std::uint8_t> locked_;
  std::vector<std::uint32_t> locked_pins_;  // locked pins per (net, part)

  // Cached-engine state; unused (empty) under kScratch.  One slot per
  // (net, part); recip_ caches 1/p per node.
  std::vector<double> prod_;
  std::vector<std::uint32_t> zero_free_;
  std::vector<std::uint32_t> updates_;
  std::vector<double> recip_;

  // Active-set state (sized by set_dirty_tracking; see the section above).
  bool track_dirty_ = false;
  bool all_dirty_ = true;
  std::vector<std::uint8_t> net_dirty_;       // per net: on the dirty list?
  std::vector<NetId> dirty_nets_;
  std::vector<std::uint8_t> staged_changed_;  // per node: staged p changed?
};

}  // namespace prop
