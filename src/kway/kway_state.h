// Mutable k-way partition state with incremental cost maintenance — the
// substrate for the paper's "k-way partitioning" future-work direction
// (Sec. 5), used to refine recursive-bisection results directly in k-way
// space.
//
// Tracks per-net pin counts for every part.  Two standard objectives:
//   * cut cost: sum of c(n) over nets touching >= 2 parts (matches
//     kway_cut_cost in partition/recursive.h);
//   * connectivity cost: sum of c(n) * (lambda(n) - 1), where lambda is the
//     number of parts a net touches — the objective recursive bisection
//     implicitly accumulates.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace prop {

class KWayState {
 public:
  KWayState(const Hypergraph& g, std::vector<NodeId> part, NodeId k);

  const Hypergraph& graph() const noexcept { return *g_; }
  NodeId k() const noexcept { return k_; }
  NodeId part(NodeId u) const noexcept { return part_[u]; }
  const std::vector<NodeId>& parts() const noexcept { return part_; }

  std::int64_t part_size(NodeId p) const noexcept { return size_[p]; }

  /// Pins of net n in part p.
  std::uint32_t pins_in(NetId n, NodeId p) const noexcept {
    return pin_count_[static_cast<std::size_t>(n) * k_ + p];
  }

  /// Number of parts net n touches.
  std::uint32_t spanned(NetId n) const noexcept { return spanned_[n]; }

  double cut_cost() const noexcept { return cut_cost_; }
  double connectivity_cost() const noexcept { return connectivity_cost_; }

  /// Moves u to part `to`, updating all incremental state.  O(degree).
  void move(NodeId u, NodeId to);

  /// Cut-cost decrease if u moved to part `to` (positive is good).
  double cut_gain(NodeId u, NodeId to) const;

  /// Connectivity-cost decrease if u moved to part `to`.
  double connectivity_gain(NodeId u, NodeId to) const;

  /// From-scratch recomputation of both costs (validation).
  void verify_costs(double* cut, double* connectivity) const;

 private:
  const Hypergraph* g_;
  NodeId k_;
  std::vector<NodeId> part_;
  std::vector<std::uint32_t> pin_count_;  // e x k
  std::vector<std::uint32_t> spanned_;    // per net
  std::vector<std::int64_t> size_;        // per part
  double cut_cost_ = 0.0;
  double connectivity_cost_ = 0.0;
};

}  // namespace prop
