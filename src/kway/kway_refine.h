// Direct k-way greedy refinement — improves a k-way partition (typically
// from recursive bisection) by moving nodes between arbitrary parts, the
// paper's Sec. 5 "k-way partitioning" future-work direction.
//
// Each pass visits free nodes in a seeded random order; a node moves to the
// part with the highest positive gain among balance-feasible targets.
// Passes repeat until one yields no improvement.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "kway/kway_state.h"
#include "partition/partitioner.h"

namespace prop {

enum class KWayObjective {
  kCut,           ///< nets spanning >= 2 parts
  kConnectivity,  ///< sum of c(n) * (lambda(n) - 1)
};

struct KWayRefineConfig {
  KWayObjective objective = KWayObjective::kConnectivity;
  /// Per-part size window as fractions of total (defaults: proportional
  /// share +-10%).
  double tolerance = 0.1;
  int max_passes = 16;
};

struct KWayRefineOutcome {
  double cut_cost = 0.0;
  double connectivity_cost = 0.0;
  int passes = 0;
  int moves = 0;
};

/// Refines `part` (k parts) in place.  Deterministic in `seed`.
KWayRefineOutcome kway_refine(const Hypergraph& g, std::vector<NodeId>& part,
                              NodeId k, std::uint64_t seed,
                              const KWayRefineConfig& config = {});

}  // namespace prop
