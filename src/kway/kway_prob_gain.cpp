#include "kway/kway_prob_gain.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace prop {

KWayProbGainCalculator::KWayProbGainCalculator(const KWayState& state,
                                               GainEngine engine,
                                               int renorm_interval)
    : state_(&state),
      k_(state.k()),
      engine_(engine),
      renorm_interval_(renorm_interval < 1 ? 1 : renorm_interval) {
  reset();
}

void KWayProbGainCalculator::reset() {
  const Hypergraph& g = state_->graph();
  const std::size_t slots = static_cast<std::size_t>(g.num_nets()) * k_;
  p_.assign(g.num_nodes(), 0.0);
  locked_.assign(g.num_nodes(), 0);
  locked_pins_.assign(slots, 0);
  if (maintains_cache()) {
    // Everything is free with p = 0, so each part's product is an empty
    // product of nonzero factors (1) and the zero counter is the part's
    // full pin count.
    prod_.assign(slots, 1.0);
    zero_free_.resize(slots);
    updates_.assign(slots, 0);
    recip_.assign(g.num_nodes(), 0.0);
    for (NetId n = 0; n < g.num_nets(); ++n) {
      for (NodeId p = 0; p < k_; ++p) {
        zero_free_[slot(n, p)] = state_->pins_in(n, p);
      }
    }
  }
  mark_all_dirty();
}

void KWayProbGainCalculator::set_dirty_tracking(bool on) {
  if (on && !track_dirty_) {
    const Hypergraph& g = state_->graph();
    net_dirty_.assign(g.num_nets(), 0);
    staged_changed_.assign(g.num_nodes(), 0);
    dirty_nets_.clear();
    dirty_nets_.reserve(g.num_nets());
    all_dirty_ = true;
  }
  track_dirty_ = on;
}

void KWayProbGainCalculator::clear_dirty() {
  for (const NetId n : dirty_nets_) net_dirty_[n] = 0;
  dirty_nets_.clear();
  all_dirty_ = false;
}

void KWayProbGainCalculator::mark_all_dirty() {
  if (!track_dirty_) return;
  for (const NetId n : dirty_nets_) net_dirty_[n] = 0;
  dirty_nets_.clear();
  std::fill(staged_changed_.begin(), staged_changed_.end(),
            static_cast<std::uint8_t>(0));
  all_dirty_ = true;
}

void KWayProbGainCalculator::mark_nets_of(NodeId u) {
  if (!track_dirty_ || all_dirty_) return;
  for (const NetId n : state_->graph().nets_of(u)) mark_net(n);
}

void KWayProbGainCalculator::note_staged_changes(const NodeId* nodes,
                                                 std::size_t count) {
  if (!track_dirty_) return;
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId u = nodes[i];
    if (staged_changed_[u]) {
      staged_changed_[u] = 0;
      mark_nets_of(u);
    }
  }
}

void KWayProbGainCalculator::note_staged_changes_all() {
  if (!track_dirty_) return;
  const NodeId nodes = state_->graph().num_nodes();
  for (NodeId u = 0; u < nodes; ++u) {
    if (staged_changed_[u]) {
      staged_changed_[u] = 0;
      mark_nets_of(u);
    }
  }
}

void KWayProbGainCalculator::scratch_part(NetId n, NodeId p, double& prod,
                                          std::uint32_t& zeros) const {
  prod = 1.0;
  zeros = 0;
  for (const NodeId v : state_->graph().pins_of(n)) {
    if (locked_[v] || state_->part(v) != p) continue;
    if (p_[v] == 0.0) {
      ++zeros;
    } else {
      prod *= p_[v];
    }
  }
}

void KWayProbGainCalculator::renormalize_slot(NetId n, NodeId p) {
  scratch_part(n, p, prod_[slot(n, p)], zero_free_[slot(n, p)]);
  updates_[slot(n, p)] = 0;
}

void KWayProbGainCalculator::renormalize_all() {
  // An exact global renormalization may rewrite the bits of every cached
  // product, so no per-net delta is meaningful afterwards.
  mark_all_dirty();
  if (!maintains_cache()) return;
  const NetId nets = state_->graph().num_nets();
  for (NetId n = 0; n < nets; ++n) {
    for (NodeId p = 0; p < k_; ++p) renormalize_slot(n, p);
  }
}

void KWayProbGainCalculator::update_factor(NetId n, NodeId p, double old_p,
                                           double old_r, double new_p) {
  const std::size_t s = slot(n, p);
  if (old_p == 0.0) {
    --zero_free_[s];
  } else {
    prod_[s] *= old_r;  // remove the old factor: multiply by 1/old_p
  }
  if (new_p == 0.0) {
    ++zero_free_[s];
  } else {
    prod_[s] *= new_p;
  }
  // Epoch renormalization; the !(a && b) form also catches NaN.
  const double prod = prod_[s];
  if (static_cast<int>(++updates_[s]) >= renorm_interval_ ||
      !(prod >= kRenormMagLo && prod <= kRenormMagHi)) {
    renormalize_slot(n, p);
  }
}

void KWayProbGainCalculator::set_probability(NodeId u, double p) {
  if (locked_[u]) throw std::logic_error("kway prob gain: node is locked");
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("kway prob gain: p out of [0,1]");
  }
  const double old_p = p_[u];
  if (p != old_p) mark_nets_of(u);
  // Commit the node's new state before touching the per-net cache: an epoch
  // renormalization firing inside update_factor recomputes from p_/locked_,
  // which must already describe the post-update world.
  p_[u] = p;
  if (maintains_cache()) {
    const double old_r = recip_[u];
    recip_[u] = p == 0.0 ? 0.0 : 1.0 / p;
    if (p != old_p) {
      const NodeId a = state_->part(u);
      for (const NetId n : state_->graph().nets_of(u)) {
        update_factor(n, a, old_p, old_r, p);
      }
    }
  }
}

void KWayProbGainCalculator::lock(NodeId u) {
  if (locked_[u]) {
    throw std::logic_error("kway prob gain: node already locked");
  }
  const NodeId a = state_->part(u);
  const double old_p = p_[u];
  mark_nets_of(u);
  // Flag the lock first so a renormalization inside update_factor already
  // excludes u from the free products.
  locked_[u] = 1;
  p_[u] = 0.0;
  if (maintains_cache()) {
    const double old_r = recip_[u];
    recip_[u] = 0.0;
    for (const NetId n : state_->graph().nets_of(u)) {
      ++locked_pins_[slot(n, a)];
      // Remove u's factor from the part's free product; 1.0 is the identity.
      update_factor(n, a, old_p, old_r, 1.0);
    }
  } else {
    for (const NetId n : state_->graph().nets_of(u)) {
      ++locked_pins_[slot(n, a)];
    }
  }
}

void KWayProbGainCalculator::move_locked(NodeId u, NodeId from_part) {
  if (!locked_[u]) {
    throw std::logic_error("kway prob gain: moved node must be locked");
  }
  mark_nets_of(u);
  const NodeId to = state_->part(u);
  // Locked pins are outside every free product, so only the locked-pin
  // table moves parts.
  for (const NetId n : state_->graph().nets_of(u)) {
    --locked_pins_[slot(n, from_part)];
    ++locked_pins_[slot(n, to)];
  }
}

void KWayProbGainCalculator::stage_probability(NodeId u, double p) {
  if (locked_[u]) throw std::logic_error("kway prob gain: node is locked");
  if (p < 0.0 || p > 1.0) {
    throw std::invalid_argument("kway prob gain: p out of [0,1]");
  }
  // Flag-then-write keeps concurrent stagings of distinct nodes race-free:
  // the flag is folded into the dirty set later, sequentially, by
  // note_staged_changes.
  if (track_dirty_ && p != p_[u]) staged_changed_[u] = 1;
  p_[u] = p;
  if (maintains_cache()) recip_[u] = p == 0.0 ? 0.0 : 1.0 / p;
}

void KWayProbGainCalculator::rebuild_products(NetId begin, NetId end) {
  if (!maintains_cache()) return;
  for (NetId n = begin; n < end; ++n) {
    for (NodeId p = 0; p < k_; ++p) renormalize_slot(n, p);
  }
}

void KWayProbGainCalculator::rebuild_products_for(const NetId* nets,
                                                  std::size_t begin,
                                                  std::size_t end) {
  if (!maintains_cache()) return;
  for (std::size_t i = begin; i < end; ++i) {
    const NetId n = nets[i];
    for (NodeId p = 0; p < k_; ++p) renormalize_slot(n, p);
  }
}

void KWayProbGainCalculator::apply_moves(KWayState& state,
                                         const NodeId* movers,
                                         const NodeId* targets,
                                         std::size_t count) {
  if (&state != state_) {
    throw std::logic_error("kway prob gain: apply_moves on foreign state");
  }
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId u = movers[i];
    const NodeId to = targets[i];
    if (locked_[u]) {
      throw std::logic_error("kway prob gain: mover already locked");
    }
    // Moving changes no net membership of u, so the dirty marks are the
    // same before or after the move.
    mark_nets_of(u);
    locked_[u] = 1;
    p_[u] = 0.0;
    if (maintains_cache()) recip_[u] = 0.0;
    state.move(u, to);
    // The locked pin lands on the target part; every product slot of u's
    // nets is stale until the caller rebuilds.
    for (const NetId n : state.graph().nets_of(u)) {
      ++locked_pins_[slot(n, to)];
    }
  }
}

double KWayProbGainCalculator::net_gain(NodeId u, NetId n, NodeId to) const {
  const KWayState& state = *state_;
  const double c = state.graph().net_cost(n);
  const NodeId a = state.part(u);

  // Product of p over free a-part pins other than u; 0 if a holds a locked
  // pin (the net then can never leave a this pass).  Same for the target.
  double prod_a = 1.0;
  const bool a_blocked = part_locked(n, a);
  double prod_b = 1.0;
  const bool b_blocked = part_locked(n, to);
  for (const NodeId v : state.graph().pins_of(n)) {
    if (v == u) continue;
    const NodeId pv = state.part(v);
    if (pv == a) {
      prod_a *= p_[v];  // locked pins have p = 0, blocking the product too
    } else if (pv == to) {
      prod_b *= p_[v];
    }
  }
  if (a_blocked) prod_a = 0.0;
  if (b_blocked) prod_b = 0.0;

  if (state.pins_in(n, to) > 0) {
    // Generalized Eqn. 3: moving u helps complete the a -> to evacuation
    // and precludes the to -> a one.
    return c * (prod_a - prod_b);
  }
  // No pin in the target yet (k = 2: the net lies entirely in a).
  // Generalized Eqn. 4: moving u spreads the net into a new part; it stays
  // spread unless everyone else in a follows.
  return -c * (1.0 - prod_a);
}

double KWayProbGainCalculator::scratch_gain(NodeId u, NodeId to) const {
  double total = 0.0;
  for (const NetId n : state_->graph().nets_of(u)) {
    total += net_gain(u, n, to);
  }
  return total;
}

double KWayProbGainCalculator::cached_gain(NodeId u, NodeId to) const {
  const KWayState& state = *state_;
  const Hypergraph& g = state.graph();
  const NodeId a = state.part(u);
  const double pu = p_[u];
  const double ru = recip_[u];
  double total = 0.0;
  for (const NetId n : g.nets_of(u)) {
    const bool a_blocked = part_locked(n, a);
    // Frozen pair (locked pins in both the source and target part): both
    // removal products are 0 — contributes exactly nothing.
    if (a_blocked && part_locked(n, to)) continue;
    const double c = g.net_cost(n);
    double prod_a_excl;
    if (a_blocked) {
      prod_a_excl = 0.0;
    } else {
      const std::uint32_t zeros_a = zero_free_[slot(n, a)];
      if (pu == 0.0) {
        prod_a_excl = zeros_a > 1 ? 0.0 : prod_[slot(n, a)];
      } else {
        prod_a_excl = zeros_a > 0 ? 0.0 : prod_[slot(n, a)] * ru;
      }
    }
    if (state.pins_in(n, to) > 0) {
      const double prod_b =
          (part_locked(n, to) || zero_free_[slot(n, to)] > 0)
              ? 0.0
              : prod_[slot(n, to)];
      total += c * (prod_a_excl - prod_b);
    } else {
      total += -c * (1.0 - prod_a_excl);
    }
  }
  return total;
}

double KWayProbGainCalculator::gain(NodeId u, NodeId to) const {
  switch (engine_) {
    case GainEngine::kCached:
      return cached_gain(u, to);
    case GainEngine::kScratch:
      return scratch_gain(u, to);
    case GainEngine::kShadow:
      break;
  }
  // Shadow: answer from scratch so the trajectory is identical to the
  // scratch engine's, but cross-check the cache on every query.
  const double scratch = scratch_gain(u, to);
  const double cached = cached_gain(u, to);
  if (!(std::abs(cached - scratch) <= kProductAuditTol)) {
    std::ostringstream msg;
    msg << "kway prob gain shadow: gain diverged (node " << u << " to " << to
        << "): cached " << cached << " vs scratch " << scratch;
    throw std::logic_error(msg.str());
  }
  return scratch;
}

double KWayProbGainCalculator::max_product_drift() const {
  if (!maintains_cache()) return 0.0;
  double max_abs = 0.0;
  const NetId nets = state_->graph().num_nets();
  for (NetId n = 0; n < nets; ++n) {
    for (NodeId p = 0; p < k_; ++p) {
      double prod;
      std::uint32_t zeros;
      scratch_part(n, p, prod, zeros);
      const double d = std::abs(prod_[slot(n, p)] - prod);
      if (d > max_abs) max_abs = d;
    }
  }
  return max_abs;
}

void KWayProbGainCalculator::audit_consistency() const {
  const Hypergraph& g = state_->graph();
  std::vector<std::uint32_t> recount(
      static_cast<std::size_t>(g.num_nets()) * k_, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (locked_[u]) {
      if (p_[u] != 0.0) {
        throw std::logic_error("kway prob gain audit: locked node with p != 0");
      }
      const NodeId a = state_->part(u);
      for (const NetId n : g.nets_of(u)) ++recount[slot(n, a)];
    } else if (p_[u] < 0.0 || p_[u] > 1.0) {
      throw std::logic_error(
          "kway prob gain audit: free probability out of [0,1]");
    }
  }
  if (recount != locked_pins_) {
    throw std::logic_error(
        "kway prob gain audit: locked-pin counts diverged from recount");
  }
  if (!maintains_cache()) return;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const double want = p_[u] == 0.0 ? 0.0 : 1.0 / p_[u];
    if (recip_[u] != want) {
      throw std::logic_error(
          "kway prob gain audit: cached reciprocal out of sync with p");
    }
  }
  for (NetId n = 0; n < g.num_nets(); ++n) {
    for (NodeId p = 0; p < k_; ++p) {
      double prod;
      std::uint32_t zeros;
      scratch_part(n, p, prod, zeros);
      if (zeros != zero_free_[slot(n, p)]) {
        std::ostringstream msg;
        msg << "kway prob gain audit: zero-factor counter diverged (net " << n
            << " part " << p << "): cached " << zero_free_[slot(n, p)]
            << " vs recount " << zeros;
        throw std::logic_error(msg.str());
      }
      const double cached = prod_[slot(n, p)];
      if (!(std::abs(cached - prod) <= kProductAuditTol)) {
        std::ostringstream msg;
        msg << "kway prob gain audit: cached product drifted (net " << n
            << " part " << p << "): cached " << cached << " vs scratch "
            << prod;
        throw std::logic_error(msg.str());
      }
    }
  }
}

}  // namespace prop
