#include "kway/kway_prop_refiner.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "core/round_policy.h"
#include "datastruct/avl_tree.h"
#include "datastruct/kway_gain_entry.h"
#include "kway/kway_state.h"
#include "runtime/run_context.h"
#include "telemetry/telemetry.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace prop {
namespace {

// Same thresholds as the 2-way pass engine (core/prop_partitioner.cpp):
// a pass must improve the exact objective by more than kEps to continue,
// and a recomputed gain within kGainEps of the stored one skips the tree
// reposition.
constexpr double kEps = 1e-9;
constexpr double kGainEps = 1e-12;

using GainTree = AvlTree<KWayGainEntry, KWayGainEntryLess>;

struct MoveRecord {
  NodeId node;
  NodeId from;
};

class PassEngine {
 public:
  PassEngine(const Hypergraph& g, KWayState& state,
             const KWayBalanceWindow& window, const KWayPropConfig& config)
      : g_(g),
        state_(state),
        window_(window),
        config_(config),
        calc_(state, config.gain_engine, config.renorm_interval),
        tree_(g.num_nodes()),
        gains_(g.num_nodes()),
        stamp_(g.num_nodes(), 0) {
    moved_.reserve(g.num_nodes());
    sort_scratch_.reserve(g.num_nodes());
    top_scratch_.reserve(
        config.top_update_width > 0
            ? static_cast<std::size_t>(config.top_update_width)
            : 0);
    if (config.pass_threads >= 1) {
      entries_.assign(g.num_nodes(), KWayGainEntry{});
      round_order_.reserve(g.num_nodes());
      free_candidates_.reserve(g.num_nodes());
      sweep_nodes_.reserve(g.num_nodes());
      net_stamp_.assign(g.num_nets(), 0);
      calc_.set_dirty_tracking(true);
      if (config.pass_threads >= 2) {
        pass_pool_ = std::make_unique<ThreadPool>(config.pass_threads - 1);
      }
    }
  }

  bool interrupted() const noexcept { return interrupted_; }

  double objective_cost() const noexcept {
    return config_.objective == KWayObjective::kCut
               ? state_.cut_cost()
               : state_.connectivity_cost();
  }

  /// One speculative pass; returns the accepted exact-objective improvement
  /// (the best prefix, everything past it rolled back).  Dispatches to the
  /// sequential tree-driven engine (pass_threads == 0) or the deterministic
  /// round engine (pass_threads >= 1, DESIGN §4i/§4k).
  double run_pass(PassStats* stats) {
    return config_.pass_threads >= 1 ? run_round_pass(stats)
                                     : run_sequential_pass(stats);
  }

 private:
  double run_sequential_pass(PassStats* stats) {
    calc_.reset();
    bootstrap_probabilities();
    load_tree();

    moved_.clear();
    double prefix = 0.0;
    double best_prefix = 0.0;
    std::size_t best_count = 0;
    const RunContext* ctx = config_.context;

    for (;;) {
      if (ctx && ctx->refine_should_stop()) {
        interrupted_ = true;
        break;
      }
      NodeId pick = kInvalidNode;
      NodeId pick_to = 0;
      tree_.for_each_descending([&](GainTree::Handle h,
                                    const KWayGainEntry& e) {
        const NodeId u = h;
        const NodeId from = state_.part(u);
        const std::int64_t sz = g_.node_size(u);
        if (state_.part_size(from) - sz < window_.lo) return true;
        NodeId to = e.target;
        if (to == from || state_.part_size(to) + sz > window_.hi) {
          // The stored best target went infeasible since the entry was
          // refreshed — fall back to the best feasible one, live.
          to = best_feasible_target(u, from, sz);
          if (to == from) return true;  // no feasible destination
        }
        pick = u;
        pick_to = to;
        return false;
      });
      if (pick == kInvalidNode) break;

      const NodeId from = state_.part(pick);
      const double immediate = objective_gain(pick, pick_to);
      tree_.erase(pick);
      if (stats) ++stats->ops.erases;
      calc_.lock(pick);
      state_.move(pick, pick_to);
      calc_.move_locked(pick, from);
      moved_.push_back({pick, from});
      prefix += immediate;
      if (prefix > best_prefix + kEps) {
        best_prefix = prefix;
        best_count = moved_.size();
      }
      if (stats) ++stats->moves_attempted;
      refresh_neighbors(pick, stats);
      refresh_top(stats);
    }

    // Roll back everything past the best exact-gain prefix, newest first.
    for (std::size_t i = moved_.size(); i > best_count; --i) {
      state_.move(moved_[i - 1].node, moved_[i - 1].from);
    }
    if (stats) {
      stats->moves_accepted = best_count;
      stats->best_prefix_gain = best_prefix;
    }
    return best_prefix;
  }

  /// One k-way pass as synchronous move rounds — the §4i schedule with
  /// KWayGainEntry target payloads, active-set sweeps per §4k.  Each round:
  /// (1) free nodes' best moves (gain + target) are snapshotted in parallel
  /// against the round-start probabilities and cached products — all of
  /// them on a full-sweep round, otherwise only nodes on nets dirtied since
  /// the previous sweep (everyone else's stored entry is bitwise what the
  /// full sweep would recompute, since none of its nets' slots or pin
  /// counts changed);
  /// (2) candidates are heap-ordered deterministically (gain descending,
  /// node id ascending — a strict total order, so lazy pops visit exactly
  /// the sorted sequence);
  /// (3) a sequential walk commits the maximal ordered subset that is
  /// window-feasible against the live part sizes and net-disjoint within
  /// the round.  The snapshotted target is the only move tried — a live
  /// fallback would read mid-walk state and break snapshot purity.  For a
  /// committed (net-disjoint) mover the live objective gain equals its
  /// round-start value;
  /// (4) survivors' probabilities are restaged from the snapshot entries
  /// and the stale products rebuilt by partitioned per-net reduction (all
  /// nets when all-dirty, else exactly the dirty ones).
  /// Byte-identical for any pass_threads >= 1; pass_threads == 1 is the
  /// serial reference execution of the same code.
  double run_round_pass(PassStats* stats) {
    const NodeId n = g_.num_nodes();
    // Full-sweep reference mode disables tracking outright: all_dirty()
    // then always reads true and every round takes the sweep-everything /
    // rebuild-everything branches.
    calc_.set_dirty_tracking(!config_.full_sweep_rounds);
    calc_.reset();

    // Stamp-epoch rewinds before anything can wrap: one net stamp per
    // round (at most n rounds per pass), one visit stamp per
    // collect_sweep_nodes call.
    if (static_cast<std::uint64_t>(round_stamp_) + n + 2 >=
        static_cast<std::uint32_t>(-1)) {
      std::fill(net_stamp_.begin(), net_stamp_.end(), 0);
      round_stamp_ = 0;
    }
    const std::uint64_t iters =
        config_.refine_iterations > 0 ? config_.refine_iterations : 0;
    if (static_cast<std::uint64_t>(stamp_value_) + n + iters + 2 >=
        static_cast<std::uint32_t>(-1)) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      stamp_value_ = 0;
    }

    bootstrap_probabilities_parallel();

    // Every node is free after reset(); compacted as the walk locks movers.
    free_candidates_.resize(n);
    for (NodeId u = 0; u < n; ++u) free_candidates_[u] = u;

    moved_.clear();
    double prefix = 0.0;
    double best_prefix = 0.0;
    std::size_t best_count = 0;
    const RunContext* ctx = config_.context;

    const std::uint64_t rounds_per_barrier =
        config_.rounds_per_barrier < 1 ? 1 : config_.rounds_per_barrier;
    std::uint64_t round_index = 0;

    while (true) {
      if (ctx && ctx->refine_should_stop()) {
        interrupted_ = true;
        break;
      }
      // Barrier batching (DESIGN §4k): only every rounds_per_barrier-th
      // round engages the worker pool; the rest run inline.  Chunk layout
      // never affects any computed value.
      ThreadPool* pool =
          round_index % rounds_per_barrier == 0 ? pass_pool_.get() : nullptr;
      ++round_index;

      // (1) Snapshot best entries.
      const bool dirty = collect_sweep_nodes();
      if (dirty) {
        parallel_entry_sweep_dirty(pool);
      } else {
        parallel_entry_sweep(pool);
      }

      // (2) Candidate heap (gain desc, id asc — strict total order).
      round_order_.clear();
      std::size_t kept = 0;
      for (const NodeId u : free_candidates_) {
        if (!calc_.is_free(u)) continue;
        free_candidates_[kept++] = u;
        round_order_.emplace_back(entries_[u].gain, u);
      }
      free_candidates_.resize(kept);
      if (round_order_.empty()) break;
      const auto cand_below = [](const std::pair<double, NodeId>& a,
                                 const std::pair<double, NodeId>& b) {
        if (a.first != b.first) return a.first < b.first;
        return a.second > b.second;
      };
      std::make_heap(round_order_.begin(), round_order_.end(), cand_below);

      // (3) Sequential conflict-resolution walk.
      const std::size_t max_commits = round_commit_cap(round_order_.size());
      ++round_stamp_;
      const std::size_t round_begin = moved_.size();
      while (!round_order_.empty()) {
        if (moved_.size() - round_begin >= max_commits) break;
        std::pop_heap(round_order_.begin(), round_order_.end(), cand_below);
        const NodeId u = round_order_.back().second;
        round_order_.pop_back();
        const NodeId from = state_.part(u);
        const NodeId to = entries_[u].target;
        const std::int64_t sz = g_.node_size(u);
        // The snapshotted target is the only move tried: a live
        // best-feasible fallback (as in the sequential engine) would read
        // part sizes and gains the walk itself is mutating.
        if (to == from || state_.part_size(from) - sz < window_.lo ||
            state_.part_size(to) + sz > window_.hi) {
          continue;
        }
        bool conflict = false;
        for (const NetId net : g_.nets_of(u)) {
          if (net_stamp_[net] == round_stamp_) {
            conflict = true;
            break;
          }
        }
        if (conflict) continue;
        for (const NetId net : g_.nets_of(u)) net_stamp_[net] = round_stamp_;

        // Net-disjointness makes the live objective gain equal to its
        // round-start snapshot value: no net of u changed this round.
        const double immediate = objective_gain(u, to);
        calc_.apply_moves(state_, &u, &to, 1);
        moved_.push_back({u, from});
        prefix += immediate;
        if (prefix > best_prefix + kEps) {
          best_prefix = prefix;
          best_count = moved_.size();
        }
      }
      if (stats) ++stats->rounds;
      if (moved_.size() == round_begin) break;  // nothing movable: pass over

      // (4) Refresh probabilities from the snapshot entries, rebuild cache.
      stage_entries_and_rebuild(pool, dirty);
    }

    // Roll back everything past the best exact-gain prefix, newest first.
    for (std::size_t i = moved_.size(); i > best_count; --i) {
      state_.move(moved_[i - 1].node, moved_[i - 1].from);
    }
    if (stats) {
      stats->moves_attempted = moved_.size();
      stats->moves_accepted = best_count;
      stats->best_prefix_gain = best_prefix;
    }
    return best_prefix;
  }

  /// Expands the calculator's dirty nets into sweep_nodes_ (sorted,
  /// duplicate-free free nodes incident to a dirty net) and consumes the
  /// dirty set.  Returns false (sweep everything) from the all-dirty state.
  bool collect_sweep_nodes() {
    if (calc_.all_dirty()) {
      calc_.clear_dirty();
      return false;
    }
    sweep_nodes_.clear();
    ++stamp_value_;
    for (const NetId net : calc_.dirty_nets()) {
      for (const NodeId v : g_.pins_of(net)) {
        if (!calc_.is_free(v) || stamp_[v] == stamp_value_) continue;
        stamp_[v] = stamp_value_;
        sweep_nodes_.push_back(v);
      }
    }
    // Ascending node order: values never depend on it, deterministic
    // chunking of the parallel dirty sweep does.
    std::sort(sweep_nodes_.begin(), sweep_nodes_.end());
    calc_.clear_dirty();
    return true;
  }

  /// Parallel node-major snapshot of every node's best entry (locked nodes
  /// get the zero entry; their slots are never read).
  void parallel_entry_sweep(ThreadPool* pool) {
    parallel_for(pool, g_.num_nodes(),
                 [this](std::size_t begin, std::size_t end) {
                   for (std::size_t u = begin; u < end; ++u) {
                     const NodeId v = static_cast<NodeId>(u);
                     entries_[v] =
                         calc_.is_free(v) ? best_entry(v) : KWayGainEntry{};
                   }
                 });
  }

  /// Active-set variant: re-snapshots entries_ of sweep_nodes_ only.  Every
  /// other free node's stored entry is bitwise current — none of its nets'
  /// products, locked-pin counts or pin counts changed.
  void parallel_entry_sweep_dirty(ThreadPool* pool) {
    parallel_for(pool, sweep_nodes_.size(),
                 [this](std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     const NodeId v = sweep_nodes_[i];
                     entries_[v] = best_entry(v);
                   }
                 });
  }

  /// Stages p(u) = f(entries_[u].gain) — for every free node, or for
  /// sweep_nodes_ only when `dirty_only` (unswept nodes would restage
  /// unchanged bits) — then rebuilds the stale (net, part) products: all
  /// nets in the all-dirty state, else exactly the dirty ones (a clean
  /// net's stored products already equal their exact recompute).
  void stage_entries_and_rebuild(ThreadPool* pool, bool dirty_only) {
    const ProbabilityModel& model = config_.model;
    if (dirty_only) {
      parallel_for(pool, sweep_nodes_.size(),
                   [this, &model](std::size_t begin, std::size_t end) {
                     for (std::size_t i = begin; i < end; ++i) {
                       const NodeId v = sweep_nodes_[i];
                       if (calc_.is_free(v)) {
                         calc_.stage_probability(
                             v, model.from_gain(entries_[v].gain));
                       }
                     }
                   });
      calc_.note_staged_changes(sweep_nodes_.data(), sweep_nodes_.size());
    } else {
      parallel_for(pool, g_.num_nodes(),
                   [this, &model](std::size_t begin, std::size_t end) {
                     for (std::size_t u = begin; u < end; ++u) {
                       const NodeId v = static_cast<NodeId>(u);
                       if (calc_.is_free(v)) {
                         calc_.stage_probability(
                             v, model.from_gain(entries_[v].gain));
                       }
                     }
                   });
      calc_.note_staged_changes_all();
    }
    if (calc_.all_dirty()) {
      parallel_for(pool, g_.num_nets(),
                   [this](std::size_t begin, std::size_t end) {
                     calc_.rebuild_products(static_cast<NetId>(begin),
                                            static_cast<NetId>(end));
                   });
    } else {
      // Read non-destructively: the next round's sweep consumes this set.
      const std::vector<NetId>& dirty_nets = calc_.dirty_nets();
      parallel_for(pool, dirty_nets.size(),
                   [this, &dirty_nets](std::size_t begin, std::size_t end) {
                     calc_.rebuild_products_for(dirty_nets.data(), begin, end);
                   });
    }
  }

  /// Round-engine bootstrap: the same pinit fixed point as
  /// bootstrap_probabilities, via bulk staging + partitioned rebuilds +
  /// node-major parallel entry sweeps — byte-identical for any thread
  /// count.  Leaves entries_ filled.
  void bootstrap_probabilities_parallel() {
    ThreadPool* pool = pass_pool_.get();
    const double pinit = config_.model.pinit;
    parallel_for(pool, g_.num_nodes(),
                 [this, pinit](std::size_t begin, std::size_t end) {
                   for (std::size_t u = begin; u < end; ++u) {
                     calc_.stage_probability(static_cast<NodeId>(u), pinit);
                   }
                 });
    // All-dirty straight after reset, so this marks nothing — it just
    // clears the per-node staged flags ahead of the first tracked round.
    calc_.note_staged_changes_all();
    parallel_for(pool, g_.num_nets(),
                 [this](std::size_t begin, std::size_t end) {
                   calc_.rebuild_products(static_cast<NetId>(begin),
                                          static_cast<NetId>(end));
                 });
    for (int it = 0; it < config_.refine_iterations; ++it) {
      const bool dirty = collect_sweep_nodes();
      if (dirty) {
        parallel_entry_sweep_dirty(pool);
      } else {
        parallel_entry_sweep(pool);
      }
      stage_entries_and_rebuild(pool, dirty);
    }
  }

  double objective_gain(NodeId u, NodeId to) const {
    return config_.objective == KWayObjective::kCut
               ? state_.cut_gain(u, to)
               : state_.connectivity_gain(u, to);
  }

  /// Best probabilistic move of u: max gain over the k - 1 targets, lowest
  /// part id winning ties (deterministic).  Feasibility is NOT checked here
  /// — the selection walk re-checks it and falls back live.
  KWayGainEntry best_entry(NodeId u) const {
    const NodeId from = state_.part(u);
    KWayGainEntry e{0.0, from};
    bool first = true;
    for (NodeId to = 0; to < state_.k(); ++to) {
      if (to == from) continue;
      const double gain = calc_.gain(u, to);
      if (first || gain > e.gain + kGainEps) {
        e.gain = gain;
        e.target = to;
        first = false;
      }
    }
    return e;
  }

  NodeId best_feasible_target(NodeId u, NodeId from, std::int64_t sz) const {
    NodeId best = from;
    double best_gain = 0.0;
    for (NodeId to = 0; to < state_.k(); ++to) {
      if (to == from || state_.part_size(to) + sz > window_.hi) continue;
      const double gain = calc_.gain(u, to);
      if (best == from || gain > best_gain + kGainEps) {
        best = to;
        best_gain = gain;
      }
    }
    return best;
  }

  void bootstrap_probabilities() {
    const NodeId nodes = g_.num_nodes();
    for (NodeId u = 0; u < nodes; ++u) {
      calc_.set_probability(u, config_.model.pinit);
    }
    // Jacobi-style refinement sweeps (Sec. 3.3): gains against the current
    // probabilities first, then all probabilities rewritten — so the sweep
    // is order-independent and engine ulps don't feed back mid-sweep.
    for (int it = 0; it < config_.refine_iterations; ++it) {
      for (NodeId u = 0; u < nodes; ++u) {
        gains_[u] = best_entry(u).gain;
      }
      for (NodeId u = 0; u < nodes; ++u) {
        calc_.set_probability(u, config_.model.from_gain(gains_[u]));
      }
    }
  }

  void load_tree() {
    sort_scratch_.clear();
    const NodeId nodes = g_.num_nodes();
    for (NodeId u = 0; u < nodes; ++u) {
      sort_scratch_.emplace_back(best_entry(u), u);
    }
    // Ascending by (gain, node): equal gains keep node order, which fixes
    // the tree's LIFO tie order deterministically.
    std::sort(sort_scratch_.begin(), sort_scratch_.end(),
              [](const std::pair<KWayGainEntry, GainTree::Handle>& a,
                 const std::pair<KWayGainEntry, GainTree::Handle>& b) {
                if (a.first.gain != b.first.gain) {
                  return a.first.gain < b.first.gain;
                }
                return a.second < b.second;
              });
    tree_.assign_sorted(sort_scratch_.data(),
                        static_cast<std::uint32_t>(sort_scratch_.size()));
  }

  /// Re-evaluates every free pin of every net of the mover once (stamp
  /// de-dup), repositioning its tree entry and rewriting its probability
  /// when the best gain moved by more than kGainEps.
  void refresh_neighbors(NodeId mover, PassStats* stats) {
    ++stamp_value_;
    for (const NetId n : g_.nets_of(mover)) {
      for (const NodeId v : g_.pins_of(n)) {
        if (!calc_.is_free(v) || stamp_[v] == stamp_value_) continue;
        stamp_[v] = stamp_value_;
        if (!tree_.contains(v)) continue;
        const KWayGainEntry e = best_entry(v);
        const KWayGainEntry& old = tree_.key(v);
        const bool gain_moved = std::abs(e.gain - old.gain) > kGainEps;
        if (gain_moved || e.target != old.target) {
          tree_.update(v, e);
          if (stats) ++stats->ops.updates;
        }
        if (gain_moved) {
          calc_.set_probability(v, config_.model.from_gain(e.gain));
        }
      }
    }
  }

  /// Re-verifies the top entries of the tree (Sec. 3.4's bounded update):
  /// stale maxima would otherwise steer selection with outdated gains.
  void refresh_top(PassStats* stats) {
    if (config_.top_update_width <= 0 || tree_.empty()) return;
    top_scratch_.clear();
    int budget = config_.top_update_width;
    tree_.for_each_descending(
        [&](GainTree::Handle h, const KWayGainEntry&) {
          top_scratch_.push_back(h);
          return --budget > 0;
        });
    for (const GainTree::Handle h : top_scratch_) {
      const KWayGainEntry e = best_entry(h);
      const KWayGainEntry& old = tree_.key(h);
      if (std::abs(e.gain - old.gain) <= kGainEps && e.target == old.target) {
        if (stats) ++stats->refresh_skips;
        continue;
      }
      tree_.update(h, e);
      if (stats) ++stats->ops.updates;
    }
  }

  const Hypergraph& g_;
  KWayState& state_;
  const KWayBalanceWindow& window_;
  const KWayPropConfig& config_;
  KWayProbGainCalculator calc_;
  GainTree tree_;
  std::vector<double> gains_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t stamp_value_ = 0;
  std::vector<MoveRecord> moved_;
  std::vector<std::pair<KWayGainEntry, GainTree::Handle>> sort_scratch_;
  std::vector<GainTree::Handle> top_scratch_;

  // Round-engine state (pass_threads >= 1 only; empty/null otherwise).
  // pass_pool_ holds pass_threads - 1 workers — the calling thread runs
  // the first chunk of every parallel_for — or stays null at
  // pass_threads == 1, the serial reference execution.
  std::unique_ptr<ThreadPool> pass_pool_;
  std::vector<KWayGainEntry> entries_;
  std::vector<std::pair<double, NodeId>> round_order_;
  std::vector<NodeId> free_candidates_;
  std::vector<NodeId> sweep_nodes_;
  std::vector<std::uint32_t> net_stamp_;
  std::uint32_t round_stamp_ = 0;

  bool interrupted_ = false;
};

}  // namespace

KWayPropOutcome kway_prop_refine(const Hypergraph& g,
                                 std::vector<NodeId>& part, NodeId k,
                                 const KWayBalanceWindow& window,
                                 const KWayPropConfig& config) {
  if (k < 2) {
    throw std::invalid_argument("kway_prop_refine: k must be >= 2");
  }
  config.model.validate();
  KWayState state(g, part, k);
  PassEngine engine(g, state, window, config);

  KWayPropOutcome out;
  for (int pass = 0; pass < config.max_passes; ++pass) {
    const double before = engine.objective_cost();
    PassStats* stats =
        config.telemetry ? &config.telemetry->begin_pass(before) : nullptr;
    WallTimer wall;
    ThreadCpuTimer cpu;
    const double gained = engine.run_pass(stats);
    ++out.passes;
    if (stats) {
      stats->cut_after = engine.objective_cost();
      stats->wall_seconds = wall.seconds();
      stats->cpu_seconds = cpu.seconds();
    }
    if (engine.interrupted()) {
      out.interrupted = true;
      break;
    }
    if (gained <= kEps) break;
  }
  part = state.parts();
  out.cut_cost = state.cut_cost();
  out.connectivity_cost = state.connectivity_cost();
  return out;
}

}  // namespace prop
