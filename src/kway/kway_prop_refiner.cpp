#include "kway/kway_prop_refiner.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>
#include <vector>

#include "datastruct/avl_tree.h"
#include "datastruct/kway_gain_entry.h"
#include "kway/kway_state.h"
#include "runtime/run_context.h"
#include "telemetry/telemetry.h"
#include "util/timer.h"

namespace prop {
namespace {

// Same thresholds as the 2-way pass engine (core/prop_partitioner.cpp):
// a pass must improve the exact objective by more than kEps to continue,
// and a recomputed gain within kGainEps of the stored one skips the tree
// reposition.
constexpr double kEps = 1e-9;
constexpr double kGainEps = 1e-12;

using GainTree = AvlTree<KWayGainEntry, KWayGainEntryLess>;

struct MoveRecord {
  NodeId node;
  NodeId from;
};

class PassEngine {
 public:
  PassEngine(const Hypergraph& g, KWayState& state,
             const KWayBalanceWindow& window, const KWayPropConfig& config)
      : g_(g),
        state_(state),
        window_(window),
        config_(config),
        calc_(state, config.gain_engine, config.renorm_interval),
        tree_(g.num_nodes()),
        gains_(g.num_nodes()),
        stamp_(g.num_nodes(), 0) {
    moved_.reserve(g.num_nodes());
    sort_scratch_.reserve(g.num_nodes());
    top_scratch_.reserve(
        config.top_update_width > 0
            ? static_cast<std::size_t>(config.top_update_width)
            : 0);
  }

  bool interrupted() const noexcept { return interrupted_; }

  double objective_cost() const noexcept {
    return config_.objective == KWayObjective::kCut
               ? state_.cut_cost()
               : state_.connectivity_cost();
  }

  /// One speculative pass; returns the accepted exact-objective improvement
  /// (the best prefix, everything past it rolled back).
  double run_pass(PassStats* stats) {
    calc_.reset();
    bootstrap_probabilities();
    load_tree();

    moved_.clear();
    double prefix = 0.0;
    double best_prefix = 0.0;
    std::size_t best_count = 0;
    const RunContext* ctx = config_.context;

    for (;;) {
      if (ctx && ctx->refine_should_stop()) {
        interrupted_ = true;
        break;
      }
      NodeId pick = kInvalidNode;
      NodeId pick_to = 0;
      tree_.for_each_descending([&](GainTree::Handle h,
                                    const KWayGainEntry& e) {
        const NodeId u = h;
        const NodeId from = state_.part(u);
        const std::int64_t sz = g_.node_size(u);
        if (state_.part_size(from) - sz < window_.lo) return true;
        NodeId to = e.target;
        if (to == from || state_.part_size(to) + sz > window_.hi) {
          // The stored best target went infeasible since the entry was
          // refreshed — fall back to the best feasible one, live.
          to = best_feasible_target(u, from, sz);
          if (to == from) return true;  // no feasible destination
        }
        pick = u;
        pick_to = to;
        return false;
      });
      if (pick == kInvalidNode) break;

      const NodeId from = state_.part(pick);
      const double immediate = objective_gain(pick, pick_to);
      tree_.erase(pick);
      if (stats) ++stats->ops.erases;
      calc_.lock(pick);
      state_.move(pick, pick_to);
      calc_.move_locked(pick, from);
      moved_.push_back({pick, from});
      prefix += immediate;
      if (prefix > best_prefix + kEps) {
        best_prefix = prefix;
        best_count = moved_.size();
      }
      if (stats) ++stats->moves_attempted;
      refresh_neighbors(pick, stats);
      refresh_top(stats);
    }

    // Roll back everything past the best exact-gain prefix, newest first.
    for (std::size_t i = moved_.size(); i > best_count; --i) {
      state_.move(moved_[i - 1].node, moved_[i - 1].from);
    }
    if (stats) {
      stats->moves_accepted = best_count;
      stats->best_prefix_gain = best_prefix;
    }
    return best_prefix;
  }

 private:
  double objective_gain(NodeId u, NodeId to) const {
    return config_.objective == KWayObjective::kCut
               ? state_.cut_gain(u, to)
               : state_.connectivity_gain(u, to);
  }

  /// Best probabilistic move of u: max gain over the k - 1 targets, lowest
  /// part id winning ties (deterministic).  Feasibility is NOT checked here
  /// — the selection walk re-checks it and falls back live.
  KWayGainEntry best_entry(NodeId u) const {
    const NodeId from = state_.part(u);
    KWayGainEntry e{0.0, from};
    bool first = true;
    for (NodeId to = 0; to < state_.k(); ++to) {
      if (to == from) continue;
      const double gain = calc_.gain(u, to);
      if (first || gain > e.gain + kGainEps) {
        e.gain = gain;
        e.target = to;
        first = false;
      }
    }
    return e;
  }

  NodeId best_feasible_target(NodeId u, NodeId from, std::int64_t sz) const {
    NodeId best = from;
    double best_gain = 0.0;
    for (NodeId to = 0; to < state_.k(); ++to) {
      if (to == from || state_.part_size(to) + sz > window_.hi) continue;
      const double gain = calc_.gain(u, to);
      if (best == from || gain > best_gain + kGainEps) {
        best = to;
        best_gain = gain;
      }
    }
    return best;
  }

  void bootstrap_probabilities() {
    const NodeId nodes = g_.num_nodes();
    for (NodeId u = 0; u < nodes; ++u) {
      calc_.set_probability(u, config_.model.pinit);
    }
    // Jacobi-style refinement sweeps (Sec. 3.3): gains against the current
    // probabilities first, then all probabilities rewritten — so the sweep
    // is order-independent and engine ulps don't feed back mid-sweep.
    for (int it = 0; it < config_.refine_iterations; ++it) {
      for (NodeId u = 0; u < nodes; ++u) {
        gains_[u] = best_entry(u).gain;
      }
      for (NodeId u = 0; u < nodes; ++u) {
        calc_.set_probability(u, config_.model.from_gain(gains_[u]));
      }
    }
  }

  void load_tree() {
    sort_scratch_.clear();
    const NodeId nodes = g_.num_nodes();
    for (NodeId u = 0; u < nodes; ++u) {
      sort_scratch_.emplace_back(best_entry(u), u);
    }
    // Ascending by (gain, node): equal gains keep node order, which fixes
    // the tree's LIFO tie order deterministically.
    std::sort(sort_scratch_.begin(), sort_scratch_.end(),
              [](const std::pair<KWayGainEntry, GainTree::Handle>& a,
                 const std::pair<KWayGainEntry, GainTree::Handle>& b) {
                if (a.first.gain != b.first.gain) {
                  return a.first.gain < b.first.gain;
                }
                return a.second < b.second;
              });
    tree_.assign_sorted(sort_scratch_.data(),
                        static_cast<std::uint32_t>(sort_scratch_.size()));
  }

  /// Re-evaluates every free pin of every net of the mover once (stamp
  /// de-dup), repositioning its tree entry and rewriting its probability
  /// when the best gain moved by more than kGainEps.
  void refresh_neighbors(NodeId mover, PassStats* stats) {
    ++stamp_value_;
    for (const NetId n : g_.nets_of(mover)) {
      for (const NodeId v : g_.pins_of(n)) {
        if (!calc_.is_free(v) || stamp_[v] == stamp_value_) continue;
        stamp_[v] = stamp_value_;
        if (!tree_.contains(v)) continue;
        const KWayGainEntry e = best_entry(v);
        const KWayGainEntry& old = tree_.key(v);
        const bool gain_moved = std::abs(e.gain - old.gain) > kGainEps;
        if (gain_moved || e.target != old.target) {
          tree_.update(v, e);
          if (stats) ++stats->ops.updates;
        }
        if (gain_moved) {
          calc_.set_probability(v, config_.model.from_gain(e.gain));
        }
      }
    }
  }

  /// Re-verifies the top entries of the tree (Sec. 3.4's bounded update):
  /// stale maxima would otherwise steer selection with outdated gains.
  void refresh_top(PassStats* stats) {
    if (config_.top_update_width <= 0 || tree_.empty()) return;
    top_scratch_.clear();
    int budget = config_.top_update_width;
    tree_.for_each_descending(
        [&](GainTree::Handle h, const KWayGainEntry&) {
          top_scratch_.push_back(h);
          return --budget > 0;
        });
    for (const GainTree::Handle h : top_scratch_) {
      const KWayGainEntry e = best_entry(h);
      const KWayGainEntry& old = tree_.key(h);
      if (std::abs(e.gain - old.gain) <= kGainEps && e.target == old.target) {
        if (stats) ++stats->refresh_skips;
        continue;
      }
      tree_.update(h, e);
      if (stats) ++stats->ops.updates;
    }
  }

  const Hypergraph& g_;
  KWayState& state_;
  const KWayBalanceWindow& window_;
  const KWayPropConfig& config_;
  KWayProbGainCalculator calc_;
  GainTree tree_;
  std::vector<double> gains_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t stamp_value_ = 0;
  std::vector<MoveRecord> moved_;
  std::vector<std::pair<KWayGainEntry, GainTree::Handle>> sort_scratch_;
  std::vector<GainTree::Handle> top_scratch_;
  bool interrupted_ = false;
};

}  // namespace

KWayPropOutcome kway_prop_refine(const Hypergraph& g,
                                 std::vector<NodeId>& part, NodeId k,
                                 const KWayBalanceWindow& window,
                                 const KWayPropConfig& config) {
  if (k < 2) {
    throw std::invalid_argument("kway_prop_refine: k must be >= 2");
  }
  config.model.validate();
  KWayState state(g, part, k);
  PassEngine engine(g, state, window, config);

  KWayPropOutcome out;
  for (int pass = 0; pass < config.max_passes; ++pass) {
    const double before = engine.objective_cost();
    PassStats* stats =
        config.telemetry ? &config.telemetry->begin_pass(before) : nullptr;
    WallTimer wall;
    ThreadCpuTimer cpu;
    const double gained = engine.run_pass(stats);
    ++out.passes;
    if (stats) {
      stats->cut_after = engine.objective_cost();
      stats->wall_seconds = wall.seconds();
      stats->cpu_seconds = cpu.seconds();
    }
    if (engine.interrupted()) {
      out.interrupted = true;
      break;
    }
    if (gained <= kEps) break;
  }
  part = state.parts();
  out.cut_cost = state.cut_cost();
  out.connectivity_cost = state.connectivity_cost();
  return out;
}

}  // namespace prop
