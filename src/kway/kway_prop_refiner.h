// Native k-way PROP refinement (paper Sec. 5's k-way direction).
//
// The same speculative pass discipline as the 2-way PROP refiner
// (core/prop_partitioner.h) lifted to k parts: every free node carries a
// probability of moving, gains are the probabilistic per-(net, part)
// products of kway_prob_gain.h, nodes are held in ONE AVL tree keyed by
// their best move (KWayGainEntry: gain + target part), and each pass
// speculatively moves best-feasible nodes — locking movers, refreshing
// neighbor gains — then rolls back to the prefix with the best exact
// objective improvement.  The exact-prefix acceptance makes every pass
// monotone in the configured objective: the refined partition is never
// worse than the input, so running this after the greedy k-way polish can
// only improve (or match) it.
//
// Balance is a per-part size window (partition/kway_balance.h), shared
// with the greedy refiner and recursive bisection so feasibility cannot
// drift between layers.  Deadline/cancel polling and per-pass telemetry
// match the 2-way refiner's contract.
#pragma once

#include <cstdint>
#include <vector>

#include "core/probability_model.h"
#include "kway/kway_prob_gain.h"
#include "kway/kway_refine.h"  // KWayObjective
#include "partition/kway_balance.h"

namespace prop {

struct RefineTelemetry;
struct RunContext;

struct KWayPropConfig {
  ProbabilityModel model;
  /// Probability-refinement sweeps per pass before moves start (Sec. 3.3).
  int refine_iterations = 2;
  GainEngine gain_engine = GainEngine::kCached;
  int renorm_interval = KWayProbGainCalculator::kDefaultRenormInterval;
  /// Top-of-tree entries re-verified after each move (Sec. 3.4).
  int top_update_width = 5;
  int max_passes = 64;
  KWayObjective objective = KWayObjective::kConnectivity;

  /// Intra-pass parallelism, mirroring PropConfig::pass_threads (DESIGN
  /// §4i).  0 — the default — runs the sequential tree-driven engine above,
  /// byte-for-byte unchanged.  N >= 1 switches to the deterministic round
  /// engine: every free node's best move (KWayGainEntry) is snapshotted
  /// concurrently against the read-only cached products, a deterministic
  /// conflict-resolution walk (gain-ordered, id tie-broken, window-feasible,
  /// net-disjoint, sqrt commit cap) commits a compatible subset, and the
  /// per-(net, part) products are rebuilt by partitioned per-net reduction.
  /// N = 1 is the serial reference execution; every N >= 2 produces
  /// byte-identical partitions and stats.  Like 2-way, the round engine is
  /// a different (synchronous) schedule, so its cuts legitimately differ
  /// from pass_threads = 0.
  int pass_threads = 0;

  /// Round batching (DESIGN §4k): the worker pool is engaged only on every
  /// Nth round, the rest run inline.  Output byte-identical for every
  /// setting; ignored when pass_threads == 0.
  int rounds_per_barrier = 1;

  /// Debug/bench reference mode: every round sweeps all free nodes and
  /// rebuilds all nets — the pre-active-set schedule.  Output is
  /// byte-identical either way; ignored when pass_threads == 0.
  bool full_sweep_rounds = false;

  RefineTelemetry* telemetry = nullptr;
  const RunContext* context = nullptr;
};

struct KWayPropOutcome {
  double cut_cost = 0.0;
  double connectivity_cost = 0.0;
  int passes = 0;
  /// A deadline/cancellation stopped refinement early; the partition is the
  /// best-so-far state (every pass rolls back to its best prefix).
  bool interrupted = false;
};

/// Refines `part` (part ids in [0, k)) in place toward the configured
/// objective, keeping every part inside `window`.  Parts already outside
/// the window are tolerated: nodes only move when source stays >= lo and
/// destination stays <= hi, so imbalance never grows.  Deterministic: equal
/// inputs give equal outputs (no RNG).
KWayPropOutcome kway_prop_refine(const Hypergraph& g,
                                 std::vector<NodeId>& part, NodeId k,
                                 const KWayBalanceWindow& window,
                                 const KWayPropConfig& config);

}  // namespace prop
