// The native k-way pipeline and its Bipartitioner adapter.
//
// kway_partition composes the three stages the bench compares:
//   1. recursive_bisection with a 2-way bisector (always);
//   2. the greedy k-way polish (kway_refine) — also the window legalizer,
//      since recursive bisection compounds per-split tolerance;
//   3. the native k-way PROP refiner (kway_prop_refine).
// PROP runs after greedy and accepts only exact-objective-improving move
// prefixes, so the kProp pipeline's objective cost is never worse than the
// kGreedy pipeline's — the bench gate's quality guarantee by construction.
//
// KWayPartitioner wraps the pipeline in the Bipartitioner interface so the
// multi-start runner (run_many: clones, threads, seed-ordered reduction,
// byte-identical stats) and the service layer drive k-way jobs unchanged.
// The `side` vector of its PartitionResult carries part ids in [0, k)
// (hence k <= 256) and `cut_cost` is the configured k-way objective; its
// validate() override checks exactly that contract.
#pragma once

#include <memory>
#include <string>

#include "kway/kway_prop_refiner.h"
#include "kway/kway_refine.h"
#include "partition/partitioner.h"
#include "partition/recursive.h"

namespace prop {

/// Which post-pass runs after recursive bisection.
enum class KWayRefinerKind {
  kNone,    ///< recursive bisection only
  kGreedy,  ///< + greedy k-way polish (kway_refine)
  kProp,    ///< + greedy legalization + native k-way PROP
};

const char* to_string(KWayRefinerKind kind) noexcept;

struct KWayPipelineConfig {
  NodeId k = 2;
  /// Proportional-share balance tolerance, shared by every stage via
  /// partition/kway_balance.h.
  double tolerance = 0.1;
  KWayObjective objective = KWayObjective::kConnectivity;
  KWayRefinerKind refiner = KWayRefinerKind::kProp;
  /// PROP-stage knobs; objective/telemetry/context are synced from the
  /// fields above at run time.
  KWayPropConfig prop;
  /// Greedy-stage pass cap (its tolerance/objective are synced too).
  int greedy_max_passes = 16;
};

struct KWayPipelineResult {
  std::vector<NodeId> part;  ///< part id in [0, k) per node
  NodeId k = 0;
  double cut_cost = 0.0;
  double connectivity_cost = 0.0;
  int passes = 0;  ///< refinement passes (greedy + PROP)
  bool interrupted = false;
};

/// Runs the configured pipeline.  `context`/`telemetry` reach the PROP
/// stage (the bisector's own hooks are whatever the caller attached to it).
KWayPipelineResult kway_partition(Bipartitioner& bisector, const Hypergraph& g,
                                  std::uint64_t seed,
                                  const KWayPipelineConfig& config,
                                  RefineTelemetry* telemetry = nullptr,
                                  const RunContext* context = nullptr);

/// The k-way PartitionResult contract shared by every k-way adapter: part
/// ids < k and the claimed cost equal (1e-6 relative) to a from-scratch
/// KWayState recomputation of `objective`.  Part sizes are NOT checked
/// against the balance window: an input whose legalization gave up
/// (pathological node sizes) is still a valid result, just imbalanced.
ValidationReport validate_kway_result(const Hypergraph& g, NodeId k,
                                      KWayObjective objective,
                                      const PartitionResult& result);

class KWayPartitioner : public Bipartitioner {
 public:
  /// Takes ownership of the 2-way bisector used inside recursive
  /// bisection; it must be cloneable for run_many with threads > 1.
  KWayPartitioner(std::unique_ptr<Bipartitioner> bisector,
                  KWayPipelineConfig config);

  std::string name() const override;

  /// The BalanceConstraint parameter is IGNORED: k-way balance is the
  /// per-part window derived from config.tolerance (the 2-way side-0
  /// constraint has no k-way meaning).  validate() is overridden to match.
  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

  std::unique_ptr<Bipartitioner> clone() const override;
  bool attach_telemetry(RefineTelemetry* telemetry) noexcept override;
  bool attach_context(const RunContext* context) noexcept override;

  /// Delegates to validate_kway_result (the balance parameter is ignored,
  /// matching run()).
  ValidationReport validate(const Hypergraph& g,
                            const BalanceConstraint& balance,
                            const PartitionResult& result) const override;

 private:
  std::unique_ptr<Bipartitioner> bisector_;
  KWayPipelineConfig config_;
  RefineTelemetry* telemetry_ = nullptr;
  const RunContext* context_ = nullptr;
};

}  // namespace prop
