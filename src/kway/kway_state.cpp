#include "kway/kway_state.h"

#include <stdexcept>

namespace prop {

KWayState::KWayState(const Hypergraph& g, std::vector<NodeId> part, NodeId k)
    : g_(&g), k_(k), part_(std::move(part)) {
  if (k_ == 0) throw std::invalid_argument("kway: k must be >= 1");
  if (part_.size() != g.num_nodes()) {
    throw std::invalid_argument("kway: part vector size mismatch");
  }
  for (const NodeId p : part_) {
    if (p >= k_) throw std::invalid_argument("kway: part id out of range");
  }
  size_.assign(k_, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) size_[part_[u]] += g.node_size(u);

  pin_count_.assign(static_cast<std::size_t>(g.num_nets()) * k_, 0);
  spanned_.assign(g.num_nets(), 0);
  for (NetId n = 0; n < g.num_nets(); ++n) {
    for (const NodeId u : g.pins_of(n)) {
      auto& count = pin_count_[static_cast<std::size_t>(n) * k_ + part_[u]];
      if (count == 0) ++spanned_[n];
      ++count;
    }
    if (spanned_[n] > 1) {
      cut_cost_ += g.net_cost(n);
      connectivity_cost_ += g.net_cost(n) * (spanned_[n] - 1);
    }
  }
}

void KWayState::move(NodeId u, NodeId to) {
  const NodeId from = part_[u];
  if (from == to) return;
  for (const NetId n : g_->nets_of(u)) {
    const double c = g_->net_cost(n);
    auto& from_count = pin_count_[static_cast<std::size_t>(n) * k_ + from];
    auto& to_count = pin_count_[static_cast<std::size_t>(n) * k_ + to];
    const std::uint32_t before = spanned_[n];
    --from_count;
    if (from_count == 0) --spanned_[n];
    if (to_count == 0) ++spanned_[n];
    ++to_count;
    const std::uint32_t after = spanned_[n];
    if (after != before) {
      connectivity_cost_ +=
          c * (static_cast<double>(after) - static_cast<double>(before));
      if (before > 1 && after == 1) cut_cost_ -= c;
      if (before == 1 && after > 1) cut_cost_ += c;
    }
  }
  part_[u] = to;
  size_[from] -= g_->node_size(u);
  size_[to] += g_->node_size(u);
}

double KWayState::cut_gain(NodeId u, NodeId to) const {
  const NodeId from = part_[u];
  if (from == to) return 0.0;
  double gain = 0.0;
  for (const NetId n : g_->nets_of(u)) {
    const double c = g_->net_cost(n);
    const std::uint32_t in_from = pins_in(n, from);
    const std::uint32_t in_to = pins_in(n, to);
    const std::uint32_t span = spanned_[n];
    // After moving u: from loses one pin, to gains one.
    std::uint32_t new_span = span;
    if (in_from == 1) --new_span;
    if (in_to == 0) ++new_span;
    if (span > 1 && new_span == 1) gain += c;
    if (span == 1 && new_span > 1) gain -= c;
  }
  return gain;
}

double KWayState::connectivity_gain(NodeId u, NodeId to) const {
  const NodeId from = part_[u];
  if (from == to) return 0.0;
  double gain = 0.0;
  for (const NetId n : g_->nets_of(u)) {
    const double c = g_->net_cost(n);
    if (pins_in(n, from) == 1) gain += c;  // net leaves `from`
    if (pins_in(n, to) == 0) gain -= c;    // net enters `to`
  }
  return gain;
}

void KWayState::verify_costs(double* cut, double* connectivity) const {
  double cut_acc = 0.0;
  double conn_acc = 0.0;
  std::vector<std::uint8_t> seen(k_, 0);
  for (NetId n = 0; n < g_->num_nets(); ++n) {
    std::fill(seen.begin(), seen.end(), 0);
    std::uint32_t span = 0;
    for (const NodeId u : g_->pins_of(n)) {
      if (!seen[part_[u]]) {
        seen[part_[u]] = 1;
        ++span;
      }
    }
    if (span > 1) {
      cut_acc += g_->net_cost(n);
      conn_acc += g_->net_cost(n) * (span - 1);
    }
  }
  if (cut) *cut = cut_acc;
  if (connectivity) *connectivity = conn_acc;
}

}  // namespace prop
