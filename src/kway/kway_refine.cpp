#include "kway/kway_refine.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "partition/kway_balance.h"
#include "util/rng.h"

namespace prop {

KWayRefineOutcome kway_refine(const Hypergraph& g, std::vector<NodeId>& part,
                              NodeId k, std::uint64_t seed,
                              const KWayRefineConfig& config) {
  KWayState state(g, part, k);
  Rng rng(seed);

  const KWayBalanceWindow window = kway_part_window(
      g.total_node_size(), k, config.tolerance, kway_max_node_size(g));
  const std::int64_t lo = window.lo;
  const std::int64_t hi = window.hi;

  KWayRefineOutcome out;
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});

  const auto gain_of = [&](NodeId u, NodeId to) {
    return config.objective == KWayObjective::kCut
               ? state.cut_gain(u, to)
               : state.connectivity_gain(u, to);
  };

  // Legalization: recursive bisection compounds its per-split tolerance, so
  // the input can sit outside the k-way window.  Shift lowest-loss nodes
  // from over- to under-full parts until every part fits.
  {
    long guard = 2L * g.num_nodes() + 16;
    for (;;) {
      if (--guard < 0) break;  // window unreachable (pathological sizes)
      NodeId over = k;
      NodeId under = k;
      for (NodeId p = 0; p < k; ++p) {
        if (state.part_size(p) > hi) over = p;
        if (state.part_size(p) < lo) under = p;
      }
      if (over == k && under == k) break;
      // Receiver: the underfull part if any, else the smallest part.
      NodeId to = under;
      if (to == k) {
        to = 0;
        for (NodeId p = 1; p < k; ++p) {
          if (state.part_size(p) < state.part_size(to)) to = p;
        }
      }
      // Donor: the overfull part if any, else the largest part.
      NodeId from = over;
      if (from == k) {
        from = 0;
        for (NodeId p = 1; p < k; ++p) {
          if (state.part_size(p) > state.part_size(from)) from = p;
        }
      }
      if (from == to) break;
      NodeId best = kInvalidNode;
      double best_gain = 0.0;
      for (NodeId u = 0; u < g.num_nodes(); ++u) {
        if (state.part(u) != from) continue;
        const double gain = gain_of(u, to);
        if (best == kInvalidNode || gain > best_gain) {
          best = u;
          best_gain = gain;
        }
      }
      if (best == kInvalidNode) break;
      state.move(best, to);
      ++out.moves;
    }
  }

  for (int pass = 0; pass < config.max_passes; ++pass) {
    ++out.passes;
    rng.shuffle(order);
    int moves_this_pass = 0;
    for (const NodeId u : order) {
      const NodeId from = state.part(u);
      const std::int64_t sz = g.node_size(u);
      if (state.part_size(from) - sz < lo) continue;  // would underfill
      NodeId best_to = from;
      double best_gain = 0.0;
      for (NodeId to = 0; to < k; ++to) {
        if (to == from || state.part_size(to) + sz > hi) continue;
        const double gain = gain_of(u, to);
        if (gain > best_gain + 1e-12) {
          best_gain = gain;
          best_to = to;
        }
      }
      if (best_to != from) {
        state.move(u, best_to);
        ++moves_this_pass;
      }
    }
    out.moves += moves_this_pass;
    if (moves_this_pass == 0) break;
  }

  part = state.parts();
  out.cut_cost = state.cut_cost();
  out.connectivity_cost = state.connectivity_cost();
  return out;
}

}  // namespace prop
