#include "kway/kway_partitioner.h"

#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "kway/kway_state.h"

namespace prop {

const char* to_string(KWayRefinerKind kind) noexcept {
  switch (kind) {
    case KWayRefinerKind::kNone:
      return "none";
    case KWayRefinerKind::kGreedy:
      return "greedy";
    case KWayRefinerKind::kProp:
      return "prop";
  }
  return "?";
}

KWayPipelineResult kway_partition(Bipartitioner& bisector, const Hypergraph& g,
                                  std::uint64_t seed,
                                  const KWayPipelineConfig& config,
                                  RefineTelemetry* telemetry,
                                  const RunContext* context) {
  KWayOptions rb_options;
  rb_options.tolerance = config.tolerance;
  KWayResult rb = recursive_bisection(bisector, g, config.k, seed, rb_options);

  KWayPipelineResult out;
  out.k = config.k;
  out.part = std::move(rb.part);

  if (config.refiner != KWayRefinerKind::kNone && config.k >= 2) {
    // Greedy stage: polishes AND legalizes the window (recursive bisection
    // compounds per-split tolerance, so parts can start outside it).
    KWayRefineConfig greedy;
    greedy.objective = config.objective;
    greedy.tolerance = config.tolerance;
    greedy.max_passes = config.greedy_max_passes;
    const KWayRefineOutcome gr =
        kway_refine(g, out.part, config.k, seed, greedy);
    out.passes += gr.passes;

    if (config.refiner == KWayRefinerKind::kProp) {
      KWayPropConfig prop = config.prop;
      prop.objective = config.objective;
      prop.telemetry = telemetry;
      prop.context = context;
      const KWayBalanceWindow window = kway_part_window(
          g.total_node_size(), config.k, config.tolerance,
          kway_max_node_size(g));
      const KWayPropOutcome pr =
          kway_prop_refine(g, out.part, config.k, window, prop);
      out.passes += pr.passes;
      out.interrupted = pr.interrupted;
      out.cut_cost = pr.cut_cost;
      out.connectivity_cost = pr.connectivity_cost;
      return out;
    }
    out.cut_cost = gr.cut_cost;
    out.connectivity_cost = gr.connectivity_cost;
    return out;
  }

  // RB-only: recompute both objectives once for the result record.
  const KWayState state(g, out.part, config.k);
  out.cut_cost = state.cut_cost();
  out.connectivity_cost = state.connectivity_cost();
  return out;
}

KWayPartitioner::KWayPartitioner(std::unique_ptr<Bipartitioner> bisector,
                                 KWayPipelineConfig config)
    : bisector_(std::move(bisector)), config_(config) {
  if (!bisector_) {
    throw std::invalid_argument("kway partitioner: null bisector");
  }
  if (config_.k < 2) {
    throw std::invalid_argument("kway partitioner: k must be >= 2");
  }
  if (config_.k > 256) {
    // PartitionResult::side is uint8_t per node.
    throw std::invalid_argument("kway partitioner: k must be <= 256");
  }
}

std::string KWayPartitioner::name() const {
  std::ostringstream s;
  s << "KWAY-" << config_.k << "(" << bisector_->name() << "+"
    << to_string(config_.refiner) << ","
    << (config_.objective == KWayObjective::kCut ? "cut" : "connectivity")
    << ")";
  return s.str();
}

PartitionResult KWayPartitioner::run(const Hypergraph& g,
                                     const BalanceConstraint& balance,
                                     std::uint64_t seed) {
  (void)balance;  // see header: k-way balance comes from config_.tolerance
  if (config_.k > g.num_nodes()) {
    throw std::invalid_argument("kway partitioner: k exceeds node count");
  }
  const KWayPipelineResult r =
      kway_partition(*bisector_, g, seed, config_, telemetry_, context_);
  PartitionResult out;
  out.side.resize(r.part.size());
  for (std::size_t i = 0; i < r.part.size(); ++i) {
    out.side[i] = static_cast<std::uint8_t>(r.part[i]);
  }
  out.cut_cost = config_.objective == KWayObjective::kCut
                     ? r.cut_cost
                     : r.connectivity_cost;
  out.passes = r.passes;
  return out;
}

std::unique_ptr<Bipartitioner> KWayPartitioner::clone() const {
  std::unique_ptr<Bipartitioner> inner = bisector_->clone();
  if (!inner) return nullptr;
  // Telemetry/context hooks stay detached on the clone (Bipartitioner
  // contract); config_ carries none (they are passed at run time).
  return std::make_unique<KWayPartitioner>(std::move(inner), config_);
}

bool KWayPartitioner::attach_telemetry(RefineTelemetry* telemetry) noexcept {
  telemetry_ = telemetry;
  // Only the PROP stage records passes.
  return config_.refiner == KWayRefinerKind::kProp;
}

bool KWayPartitioner::attach_context(const RunContext* context) noexcept {
  context_ = context;
  bisector_->attach_context(context);
  return true;
}

ValidationReport validate_kway_result(const Hypergraph& g, NodeId k,
                                      KWayObjective objective,
                                      const PartitionResult& result) {
  ValidationReport report;
  if (result.side.size() != g.num_nodes()) {
    report.ok = false;
    report.message = "side vector size mismatch";
    return report;
  }
  std::vector<NodeId> part(result.side.size());
  for (std::size_t i = 0; i < result.side.size(); ++i) {
    if (result.side[i] >= k) {
      std::ostringstream msg;
      msg << "node " << i << " has part id " << int(result.side[i])
          << " >= k = " << k;
      report.ok = false;
      report.message = msg.str();
      return report;
    }
    part[i] = result.side[i];
  }
  const KWayState state(g, std::move(part), k);
  double cut = 0.0;
  double connectivity = 0.0;
  state.verify_costs(&cut, &connectivity);
  const double want = objective == KWayObjective::kCut ? cut : connectivity;
  const double tol = 1e-6 * std::max(1.0, std::abs(want));
  if (!(std::abs(result.cut_cost - want) <= tol)) {
    std::ostringstream msg;
    msg << "claimed objective cost " << result.cut_cost
        << " != recomputed " << want;
    report.ok = false;
    report.message = msg.str();
  }
  return report;
}

ValidationReport KWayPartitioner::validate(const Hypergraph& g,
                                           const BalanceConstraint& balance,
                                           const PartitionResult& result) const {
  (void)balance;
  return validate_kway_result(g, config_.k, config_.objective, result);
}

}  // namespace prop
