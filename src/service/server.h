// The partitioning job server: accepts line-delimited JSON requests, runs
// them on a fixed worker pool, and streams one response line per job.
//
// Fault-tolerance contract (DESIGN.md §4h):
//   * exactly-once responses — every admitted id produces exactly one
//     response line, enforced by JobStore::mark_responded; duplicate ids are
//     rejected at the door,
//   * bounded memory — the admission queue sheds with a structured
//     kShedOverload Status at its depth limit; oversized request lines and
//     oversized .hgr payloads are rejected before any allocation is sized
//     from untrusted counts (HgrLimits),
//   * panic isolation — an exception anywhere in a job (ingest, partitioner,
//     injected serve-exec fault) becomes a failed response for that job; the
//     worker and the server keep serving,
//   * deadlines — each job's wall-clock budget starts when execution starts
//     (not at admission), so a queued job is not charged for load it did not
//     cause,
//   * retry with backoff — a transient failure (an injected fault that left
//     no result) is retried up to max_retries times with doubling capped
//     backoff; every other failure is terminal,
//   * determinism — a job's result JSON (stats_timing=false) depends only on
//     (spec, seed): jobs execute their runs sequentially in-worker, and the
//     chaos injector is forked per (job seed, attempt), never shared across
//     jobs, so worker count and load cannot change any job's bytes.
//
// Threading: handle_line() is called from one protocol thread; workers run
// jobs concurrently; the ResponseSink is invoked under a mutex (whole lines,
// never interleaved) from whichever thread finishes a job.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "hypergraph/hgr_io.h"
#include "runtime/fault_injection.h"
#include "service/admission.h"
#include "service/job_store.h"
#include "service/wire.h"
#include "util/thread_pool.h"

namespace prop::service {

struct ServerConfig {
  int workers = 2;                   ///< job execution threads
  std::size_t queue_limit = 64;      ///< admission depth before shedding
  std::uint64_t aging_interval = 4;  ///< admissions per +1 priority boost
  int max_retries = 2;               ///< default when a spec says -1
  double retry_backoff_ms = 1.0;     ///< first retry delay (doubles per retry)
  double retry_backoff_max_ms = 50.0;
  std::string inject;                ///< chaos spec (fault_injection.h); "" = off
  std::uint64_t inject_seed = 0x5eedfa017ULL;
  std::size_t max_request_bytes = 4u << 20;  ///< one protocol line
  /// Ingest caps applied to inline .hgr payloads before allocation.
  HgrLimits hgr_limits{/*max_nodes=*/1u << 20, /*max_nets=*/1u << 21,
                       /*max_pins=*/1u << 26, /*max_bytes=*/1u << 28};
  double default_deadline_ms = 0.0;  ///< job budget when a spec says 0; 0 = none
};

/// Monotonic counters for the stats op and the soak harness's bookkeeping.
struct ServerStats {
  std::uint64_t lines = 0;      ///< protocol lines handled
  std::uint64_t submitted = 0;  ///< submit requests seen
  std::uint64_t accepted = 0;   ///< jobs admitted to the queue
  std::uint64_t shed = 0;       ///< jobs rejected by admission control
  std::uint64_t invalid = 0;    ///< malformed / oversized / duplicate requests
  std::uint64_t done = 0;       ///< jobs that executed and produced a result
  std::uint64_t failed = 0;     ///< jobs that executed and failed terminally
  std::uint64_t retries = 0;    ///< transient-fault re-attempts
  std::uint64_t responses = 0;  ///< response lines emitted
  std::size_t max_queue_depth = 0;
};

/// Receives complete response lines (no trailing newline), one call per
/// response, serialized by the server's sink mutex.
using ResponseSink = std::function<void(const std::string&)>;

class Server {
 public:
  Server(ServerConfig config, ResponseSink sink);

  /// Drains outstanding jobs, then joins the workers.
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Handles one protocol line (without its newline).  Emits any synchronous
  /// response (shed / invalid / stats) before returning; an accepted submit
  /// responds later from a worker.  Returns false when the line was a
  /// shutdown request (the caller should stop reading).
  bool handle_line(const std::string& line);

  /// Blocks until every accepted job has responded.
  void drain();

  ServerStats stats() const;
  const JobStore& store() const noexcept { return store_; }
  std::size_t queue_depth() const { return queue_.depth(); }

 private:
  struct JobTiming {
    std::chrono::steady_clock::time_point admitted;
  };

  void submit(JobSpec spec);
  void execute_one();
  void run_job(const JobSpec& spec);

  /// Emits the single response for `id` (exactly-once gate) and counts it
  /// under the terminal state's counter (done / failed; shed and invalid are
  /// counted at their rejection sites).
  void respond(const std::string& id, const std::string& line, JobState state);
  /// Emits a response line that is not tied to an admitted id (parse errors,
  /// stats, shutdown acks).
  void emit(const std::string& line);

  std::string envelope(const JobSpec& spec, JobState state, int attempts,
                       const Status& status, const std::string& result_json,
                       const std::string& partition,
                       const std::vector<DegradationEvent>& degradations,
                       double queue_ms, double exec_ms) const;

  ServerConfig config_;
  ResponseSink sink_;
  std::mutex sink_mutex_;

  AdmissionQueue queue_;
  JobStore store_;
  FaultInjector chaos_;
  bool chaos_armed_ = false;

  std::atomic<std::uint64_t> lines_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> invalid_{0};
  std::atomic<std::uint64_t> done_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> responses_{0};

  std::mutex drain_mutex_;
  std::condition_variable drained_;
  std::size_t outstanding_ = 0;

  /// Admission timestamps keyed by id (steady_clock points are not part of
  /// JobRecord so the store stays a plain value type).
  std::mutex timing_mutex_;
  std::unordered_map<std::string, JobTiming> timings_;

  /// Last member: destroyed first, so workers finish (each holding `this`)
  /// before any other member goes away.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace prop::service
