#include "service/wire.h"

#include <limits>

namespace prop::service {
namespace {

bool set_error(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

/// Fetches an object member of the given type; missing vs wrong-type are
/// separate failures so diagnostics stay actionable.
const JsonValue* expect(const JsonValue& v, const char* key,
                        JsonValue::Type type, bool required,
                        std::string* error, bool* ok) {
  const JsonValue* member = v.find(key);
  if (!member) {
    if (required) {
      *ok = set_error(error, std::string("missing field '") + key + "'");
    }
    return nullptr;
  }
  if (member->type() != type) {
    *ok = set_error(error, std::string("field '") + key + "' has wrong type");
    return nullptr;
  }
  return member;
}

}  // namespace

JsonValue status_to_json(const Status& status) {
  JsonValue out = JsonValue::object();
  out.set("code", JsonValue::string(to_string(status.code)));
  if (!status.message.empty()) {
    out.set("message", JsonValue::string(status.message));
  }
  return out;
}

std::optional<Status> status_from_json(const JsonValue& v, std::string* error) {
  if (!v.is_object()) {
    set_error(error, "status must be an object");
    return std::nullopt;
  }
  bool ok = true;
  const JsonValue* code =
      expect(v, "code", JsonValue::Type::kString, true, error, &ok);
  if (!code) return std::nullopt;
  const auto parsed = status_code_from_name(code->as_string());
  if (!parsed) {
    set_error(error, "unknown status code '" + code->as_string() + "'");
    return std::nullopt;
  }
  Status out;
  out.code = *parsed;
  if (const JsonValue* message =
          expect(v, "message", JsonValue::Type::kString, false, error, &ok)) {
    out.message = message->as_string();
  } else if (!ok) {
    return std::nullopt;
  }
  return out;
}

JsonValue degradation_to_json(const DegradationEvent& event) {
  JsonValue out = JsonValue::object();
  out.set("site", JsonValue::string(event.site));
  out.set("action", JsonValue::string(event.action));
  if (!event.detail.empty()) out.set("detail", JsonValue::string(event.detail));
  return out;
}

std::optional<DegradationEvent> degradation_from_json(const JsonValue& v,
                                                      std::string* error) {
  if (!v.is_object()) {
    set_error(error, "degradation must be an object");
    return std::nullopt;
  }
  bool ok = true;
  const JsonValue* site =
      expect(v, "site", JsonValue::Type::kString, true, error, &ok);
  const JsonValue* action =
      expect(v, "action", JsonValue::Type::kString, true, error, &ok);
  if (!site || !action) return std::nullopt;
  DegradationEvent out;
  out.site = site->as_string();
  out.action = action->as_string();
  if (const JsonValue* detail =
          expect(v, "detail", JsonValue::Type::kString, false, error, &ok)) {
    out.detail = detail->as_string();
  } else if (!ok) {
    return std::nullopt;
  }
  return out;
}

JsonValue degradations_to_json(const std::vector<DegradationEvent>& events) {
  JsonValue out = JsonValue::array();
  for (const DegradationEvent& e : events) out.push_back(degradation_to_json(e));
  return out;
}

std::optional<std::vector<DegradationEvent>> degradations_from_json(
    const JsonValue& v, std::string* error) {
  if (!v.is_array()) {
    set_error(error, "degradations must be an array");
    return std::nullopt;
  }
  std::vector<DegradationEvent> out;
  out.reserve(v.items().size());
  for (const JsonValue& item : v.items()) {
    auto event = degradation_from_json(item, error);
    if (!event) return std::nullopt;
    out.push_back(std::move(*event));
  }
  return out;
}

std::string encode_side(const std::vector<std::uint8_t>& side) {
  std::string out;
  out.reserve(side.size());
  for (const std::uint8_t s : side) {
    // Base 36: part ids 0-9 as digits, 10-35 as 'a'-'z'.  2-way vectors
    // stay pure 0/1 strings, byte-identical to the old encoding.
    out += s < 10 ? static_cast<char>('0' + s)
                  : static_cast<char>('a' + (s - 10));
  }
  return out;
}

std::optional<std::vector<std::uint8_t>> decode_side(const std::string& s) {
  std::vector<std::uint8_t> out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c >= '0' && c <= '9') {
      out.push_back(static_cast<std::uint8_t>(c - '0'));
    } else if (c >= 'a' && c <= 'z') {
      out.push_back(static_cast<std::uint8_t>(c - 'a' + 10));
    } else {
      return std::nullopt;
    }
  }
  return out;
}

JsonValue run_outcome_to_json(const RunOutcome& outcome,
                              const RunOutcomeJsonOptions& options) {
  JsonValue out = JsonValue::object();
  out.set("status", status_to_json(outcome.status));
  if (outcome.has_result()) {
    out.set("cut", JsonValue::number(outcome.result.cut_cost));
    out.set("passes",
            JsonValue::number(static_cast<std::int64_t>(outcome.result.passes)));
    if (options.include_side) {
      out.set("side", JsonValue::string(encode_side(outcome.result.side)));
    }
  }
  if (options.include_timing) {
    out.set("wall_seconds", JsonValue::number(outcome.wall_seconds));
    out.set("cpu_seconds", JsonValue::number(outcome.cpu_seconds));
  }
  if (!outcome.degradations.empty()) {
    out.set("degradations", degradations_to_json(outcome.degradations));
  }
  return out;
}

std::optional<RunOutcome> run_outcome_from_json(const JsonValue& v,
                                                std::string* error) {
  if (!v.is_object()) {
    set_error(error, "run outcome must be an object");
    return std::nullopt;
  }
  bool ok = true;
  const JsonValue* status =
      expect(v, "status", JsonValue::Type::kObject, true, error, &ok);
  if (!status) return std::nullopt;
  auto parsed_status = status_from_json(*status, error);
  if (!parsed_status) return std::nullopt;

  RunOutcome out;
  out.status = std::move(*parsed_status);
  if (const JsonValue* side =
          expect(v, "side", JsonValue::Type::kString, false, error, &ok)) {
    auto decoded = decode_side(side->as_string());
    if (!decoded) {
      set_error(error, "field 'side' must be a 0/1 string");
      return std::nullopt;
    }
    out.result.side = std::move(*decoded);
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* cut =
          expect(v, "cut", JsonValue::Type::kNumber, false, error, &ok)) {
    out.result.cut_cost = cut->as_double();
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* passes =
          expect(v, "passes", JsonValue::Type::kNumber, false, error, &ok)) {
    out.result.passes = static_cast<int>(passes->as_int64());
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* wall = expect(v, "wall_seconds",
                                     JsonValue::Type::kNumber, false, error,
                                     &ok)) {
    out.wall_seconds = wall->as_double();
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* cpu = expect(v, "cpu_seconds", JsonValue::Type::kNumber,
                                    false, error, &ok)) {
    out.cpu_seconds = cpu->as_double();
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* degradations = expect(
          v, "degradations", JsonValue::Type::kArray, false, error, &ok)) {
    auto events = degradations_from_json(*degradations, error);
    if (!events) return std::nullopt;
    out.degradations = std::move(*events);
  } else if (!ok) {
    return std::nullopt;
  }
  return out;
}

std::optional<JobSpec> job_spec_from_json(const JsonValue& v,
                                          std::string* error) {
  if (!v.is_object()) {
    set_error(error, "job must be an object");
    return std::nullopt;
  }
  // Unknown-field rejection, the protocol analogue of validate_flags: a
  // misspelled "deadline_Ms" must fail loudly, not run unbudgeted.
  static constexpr const char* kKnown[] = {
      "op",       "id",          "tenant",     "priority",
      "algo",     "circuit",     "hgr",        "runs",
      "seed",     "balance",     "deadline_ms", "max_retries",
      "stats_timing", "return_partition", "pass_threads",
      "rounds_per_barrier",
      "k",        "kway_refiner", "kway_objective"};
  for (const JsonValue::Member& m : v.members()) {
    bool known = false;
    for (const char* k : kKnown) {
      if (m.first == k) {
        known = true;
        break;
      }
    }
    if (!known) {
      set_error(error, "unknown field '" + m.first + "'");
      return std::nullopt;
    }
  }

  bool ok = true;
  JobSpec spec;
  const JsonValue* id =
      expect(v, "id", JsonValue::Type::kString, true, error, &ok);
  if (!id) return std::nullopt;
  spec.id = id->as_string();
  if (spec.id.empty()) {
    set_error(error, "field 'id' must be non-empty");
    return std::nullopt;
  }

  if (const JsonValue* tenant =
          expect(v, "tenant", JsonValue::Type::kString, false, error, &ok)) {
    spec.tenant = tenant->as_string();
    if (spec.tenant.empty()) {
      set_error(error, "field 'tenant' must be non-empty");
      return std::nullopt;
    }
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* priority =
          expect(v, "priority", JsonValue::Type::kNumber, false, error, &ok)) {
    const std::int64_t p = priority->as_int64();
    if (p < -1000000 || p > 1000000) {
      set_error(error, "field 'priority' out of range");
      return std::nullopt;
    }
    spec.priority = static_cast<int>(p);
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* algo =
          expect(v, "algo", JsonValue::Type::kString, false, error, &ok)) {
    spec.algo = algo->as_string();
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* circuit =
          expect(v, "circuit", JsonValue::Type::kString, false, error, &ok)) {
    spec.circuit = circuit->as_string();
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* hgr =
          expect(v, "hgr", JsonValue::Type::kString, false, error, &ok)) {
    spec.hgr = hgr->as_string();
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* runs =
          expect(v, "runs", JsonValue::Type::kNumber, false, error, &ok)) {
    const std::int64_t r = runs->as_int64();
    if (r < 1 || r > 100000) {
      set_error(error, "field 'runs' must be in [1, 100000]");
      return std::nullopt;
    }
    spec.runs = static_cast<int>(r);
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* seed =
          expect(v, "seed", JsonValue::Type::kNumber, false, error, &ok)) {
    spec.seed = seed->as_uint64();
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* balance =
          expect(v, "balance", JsonValue::Type::kString, false, error, &ok)) {
    spec.balance = balance->as_string();
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* deadline = expect(v, "deadline_ms",
                                         JsonValue::Type::kNumber, false,
                                         error, &ok)) {
    spec.deadline_ms = deadline->as_double();
    if (!(spec.deadline_ms >= 0.0) ||
        spec.deadline_ms > 1e12) {  // also rejects NaN
      set_error(error, "field 'deadline_ms' must be in [0, 1e12]");
      return std::nullopt;
    }
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* retries = expect(v, "max_retries",
                                        JsonValue::Type::kNumber, false, error,
                                        &ok)) {
    const std::int64_t r = retries->as_int64();
    if (r < -1 || r > 100) {
      set_error(error, "field 'max_retries' must be in [-1, 100]");
      return std::nullopt;
    }
    spec.max_retries = static_cast<int>(r);
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* timing = expect(v, "stats_timing",
                                       JsonValue::Type::kBool, false, error,
                                       &ok)) {
    spec.stats_timing = timing->as_bool();
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* side = expect(v, "return_partition",
                                     JsonValue::Type::kBool, false, error,
                                     &ok)) {
    spec.return_partition = side->as_bool();
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* pass_threads = expect(v, "pass_threads",
                                             JsonValue::Type::kNumber, false,
                                             error, &ok)) {
    const std::int64_t t = pass_threads->as_int64();
    if (t < 0 || t > 256) {
      set_error(error, "field 'pass_threads' must be in [0, 256]");
      return std::nullopt;
    }
    spec.pass_threads = static_cast<int>(t);
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* rpb = expect(v, "rounds_per_barrier",
                                    JsonValue::Type::kNumber, false, error,
                                    &ok)) {
    const std::int64_t r = rpb->as_int64();
    if (r < 1 || r > 1024) {
      set_error(error, "field 'rounds_per_barrier' must be in [1, 1024]");
      return std::nullopt;
    }
    spec.rounds_per_barrier = static_cast<int>(r);
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* k =
          expect(v, "k", JsonValue::Type::kNumber, false, error, &ok)) {
    const std::int64_t parts = k->as_int64();
    if (parts < 2 || parts > 36) {
      // 36 parts is what one base-36 character of encode_side can carry.
      set_error(error, "field 'k' must be in [2, 36]");
      return std::nullopt;
    }
    spec.k = static_cast<int>(parts);
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* refiner = expect(v, "kway_refiner",
                                        JsonValue::Type::kString, false, error,
                                        &ok)) {
    spec.kway_refiner = refiner->as_string();
  } else if (!ok) {
    return std::nullopt;
  }
  if (const JsonValue* objective = expect(v, "kway_objective",
                                          JsonValue::Type::kString, false,
                                          error, &ok)) {
    spec.kway_objective = objective->as_string();
  } else if (!ok) {
    return std::nullopt;
  }
  return spec;
}

JsonValue job_spec_to_json(const JobSpec& spec) {
  JsonValue out = JsonValue::object();
  out.set("id", JsonValue::string(spec.id));
  out.set("tenant", JsonValue::string(spec.tenant));
  out.set("priority", JsonValue::number(static_cast<std::int64_t>(spec.priority)));
  out.set("algo", JsonValue::string(spec.algo));
  if (!spec.circuit.empty()) out.set("circuit", JsonValue::string(spec.circuit));
  if (!spec.hgr.empty()) out.set("hgr", JsonValue::string(spec.hgr));
  out.set("runs", JsonValue::number(static_cast<std::int64_t>(spec.runs)));
  out.set("seed", JsonValue::number(spec.seed));
  out.set("balance", JsonValue::string(spec.balance));
  out.set("deadline_ms", JsonValue::number(spec.deadline_ms));
  out.set("max_retries",
          JsonValue::number(static_cast<std::int64_t>(spec.max_retries)));
  out.set("stats_timing", JsonValue::boolean(spec.stats_timing));
  out.set("return_partition", JsonValue::boolean(spec.return_partition));
  out.set("pass_threads",
          JsonValue::number(static_cast<std::int64_t>(spec.pass_threads)));
  out.set("rounds_per_barrier",
          JsonValue::number(
              static_cast<std::int64_t>(spec.rounds_per_barrier)));
  out.set("k", JsonValue::number(static_cast<std::int64_t>(spec.k)));
  out.set("kway_refiner", JsonValue::string(spec.kway_refiner));
  out.set("kway_objective", JsonValue::string(spec.kway_objective));
  return out;
}

}  // namespace prop::service
