// Unix-domain-socket front end of the partitioning job server (DESIGN §4h).
//
// Extracted from tools/prop_serve.cpp so the wire framing and the accept
// loop are unit-testable with a real in-process AF_UNIX client.  One client
// is served at a time; the server drains between connections so a slow
// job's response can never land on a later client's stream.
//
// Wire framing: one JSON request per '\n'-terminated line.  A final line
// that arrives WITHOUT a trailing newline before the client closes its
// write side is still a complete request — EOF is its terminator.  Signals
// interrupting read() (EINTR) are retried, never treated as EOF; only a
// 0-byte read or a real error (logged with errno) ends a connection.
#pragma once

#ifndef _WIN32

#include <atomic>
#include <cstddef>
#include <functional>
#include <string>

#include "service/server.h"

namespace prop::service {

/// Splits an incoming byte stream into newline-delimited protocol lines.
/// Bytes may arrive in arbitrary chunks; partial lines stay buffered across
/// feed() calls.
class LineFramer {
 public:
  /// Appends a chunk and invokes on_line(line) — line excludes the '\n' —
  /// for each line completed by it, in order.  Returns false (leaving any
  /// later completed lines and the partial tail buffered) as soon as
  /// on_line returns false.
  bool feed(const char* data, std::size_t size,
            const std::function<bool(const std::string&)>& on_line);

  /// Signals end of stream: a buffered final line without a trailing
  /// newline is handed to on_line as a complete request (a client that
  /// closes right after its last request must not have it dropped).
  /// Returns on_line's verdict, or true if nothing was buffered.
  bool finish(const std::function<bool(const std::string&)>& on_line);

  /// Bytes currently buffered without a terminating newline.
  const std::string& residual() const noexcept { return buffer_; }

 private:
  std::string buffer_;
};

/// The socket-mode deployment of Server: bind + listen on a unix-domain
/// path, then serve clients sequentially until a shutdown request or a
/// listener failure.  Owns the socket fds and unlinks the path on
/// destruction.
class SocketLineServer {
 public:
  SocketLineServer(const ServerConfig& config, std::string path);
  ~SocketLineServer();

  SocketLineServer(const SocketLineServer&) = delete;
  SocketLineServer& operator=(const SocketLineServer&) = delete;

  /// Creates, binds and listens the socket (ignoring SIGPIPE — a vanished
  /// client must not kill the server).  Returns false after a stderr
  /// diagnostic on failure.  Once this returns true, clients can connect
  /// (the backlog queues them until serve() accepts).
  bool listen();

  /// Accept loop: serves one client at a time until a shutdown request or
  /// an accept failure, draining the job server between connections.
  /// Blocking — run it from the thread that owns the server's lifetime.
  void serve();

  ServerStats stats() const { return server_.stats(); }

 private:
  /// Reads one connection to EOF/shutdown.  Returns false when a shutdown
  /// request was seen (the accept loop then stops).
  bool serve_client(int fd);

  std::string path_;
  int listener_ = -1;
  /// Fd of the connection currently being served.  Worker threads read it
  /// through the Server's response sink while the accept loop replaces it
  /// between connections, so the handoff must be atomic — the sink either
  /// sees the live client or -1, never a torn/stale value.
  std::atomic<int> client_{-1};
  /// Declared after client_: the Server's sink captures `this` and reads
  /// client_, so the atomic must outlive the worker pool (members destroy
  /// in reverse declaration order).
  Server server_;
};

}  // namespace prop::service

#endif  // !_WIN32
