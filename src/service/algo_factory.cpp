#include "service/algo_factory.h"

#include "cluster/window.h"
#include "fm/fm_partitioner.h"
#include "kl/kl_partitioner.h"
#include "la/la_partitioner.h"
#include "placement/paraboli.h"
#include "spectral/eig1.h"
#include "spectral/melo.h"

namespace prop::service {

std::optional<GainEngine> parse_gain_engine(const std::string& name) {
  if (name == "cached") return GainEngine::kCached;
  if (name == "scratch") return GainEngine::kScratch;
  if (name == "shadow") return GainEngine::kShadow;
  return std::nullopt;
}

std::optional<KWayRefinerKind> parse_kway_refiner(const std::string& name) {
  if (name == "prop") return KWayRefinerKind::kProp;
  if (name == "greedy") return KWayRefinerKind::kGreedy;
  if (name == "none") return KWayRefinerKind::kNone;
  return std::nullopt;
}

std::optional<KWayObjective> parse_kway_objective(const std::string& name) {
  if (name == "cut") return KWayObjective::kCut;
  if (name == "connectivity") return KWayObjective::kConnectivity;
  return std::nullopt;
}

std::unique_ptr<Bipartitioner> make_algo(const std::string& name,
                                         GainEngine gain_engine,
                                         int pass_threads,
                                         int rounds_per_barrier) {
  if (name == "fm") return std::make_unique<FmPartitioner>();
  if (name == "fm-tree") {
    return std::make_unique<FmPartitioner>(FmConfig{FmStructure::kTree});
  }
  if (name == "la2") return std::make_unique<LaPartitioner>(LaConfig{2});
  if (name == "la3") return std::make_unique<LaPartitioner>(LaConfig{3});
  if (name == "kl") return std::make_unique<KlPartitioner>();
  if (name == "prop") {
    PropConfig config;
    config.gain_engine = gain_engine;
    config.pass_threads = pass_threads < 0 ? 0 : pass_threads;
    config.rounds_per_barrier = rounds_per_barrier < 1 ? 1 : rounds_per_barrier;
    return std::make_unique<PropPartitioner>(config);
  }
  if (name == "eig1") return std::make_unique<Eig1Partitioner>();
  if (name == "melo") return std::make_unique<MeloPartitioner>();
  if (name == "paraboli") return std::make_unique<ParaboliPartitioner>();
  if (name == "window") return std::make_unique<WindowPartitioner>();
  return nullptr;
}

const std::string& algo_names() {
  static const std::string names =
      "fm fm-tree la2 la3 kl prop eig1 melo paraboli window";
  return names;
}

std::unique_ptr<Bipartitioner> make_kway_algo(const std::string& base,
                                              NodeId k,
                                              KWayRefinerKind refiner,
                                              KWayObjective objective,
                                              GainEngine gain_engine,
                                              int pass_threads,
                                              int rounds_per_barrier) {
  std::unique_ptr<Bipartitioner> bisector =
      make_algo(base, gain_engine, pass_threads, rounds_per_barrier);
  if (!bisector) return nullptr;
  KWayPipelineConfig config;
  config.k = k;
  config.refiner = refiner;
  config.objective = objective;
  config.prop.gain_engine = gain_engine;
  // The native k-way polish inherits the same intra-pass parallelism as
  // the 2-way bisections (its own deterministic round engine).
  config.prop.pass_threads = pass_threads < 0 ? 0 : pass_threads;
  config.prop.rounds_per_barrier =
      rounds_per_barrier < 1 ? 1 : rounds_per_barrier;
  return std::make_unique<KWayPartitioner>(std::move(bisector), config);
}

}  // namespace prop::service
