#include "service/admission.h"

#include <iterator>
#include <stdexcept>

namespace prop::service {

AdmissionQueue::AdmissionQueue(AdmissionConfig config) : config_(config) {
  if (config_.max_depth == 0) config_.max_depth = 1;
  if (config_.aging_interval == 0) config_.aging_interval = 1;
}

Status AdmissionQueue::push(JobSpec spec) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.size() >= config_.max_depth) {
    ++sheds_;
    return Status::failure(
        StatusCode::kShedOverload,
        "admission queue depth " + std::to_string(entries_.size()) +
            " at limit " + std::to_string(config_.max_depth));
  }
  Entry entry;
  entry.spec = std::move(spec);
  entry.seq = next_seq_++;
  entries_.push_back(std::move(entry));
  if (entries_.size() > max_depth_seen_) max_depth_seen_ = entries_.size();
  return Status::success();
}

double AdmissionQueue::effective(const Entry& e, std::uint64_t now) const {
  const std::uint64_t age = now - e.seq;
  return static_cast<double>(e.spec.priority) +
         static_cast<double>(age / config_.aging_interval);
}

JobSpec AdmissionQueue::pop() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (entries_.empty()) {
    throw std::logic_error(
        "AdmissionQueue::pop on empty queue (task-per-job invariant broken)");
  }
  const std::uint64_t now = next_seq_;
  std::size_t best = 0;
  for (std::size_t i = 1; i < entries_.size(); ++i) {
    const Entry& candidate = entries_[i];
    const Entry& incumbent = entries_[best];
    const double cand_eff = effective(candidate, now);
    const double inc_eff = effective(incumbent, now);
    if (cand_eff > inc_eff) {
      best = i;
      continue;
    }
    if (cand_eff < inc_eff) continue;
    // Equal effective priority: prefer the tenant served longest ago (a
    // never-served tenant counts as oldest), then FIFO.  find() misses map
    // to 0, which is exactly "never served".
    const auto cand_served = last_served_.find(candidate.spec.tenant);
    const auto inc_served = last_served_.find(incumbent.spec.tenant);
    const std::uint64_t cand_last =
        cand_served == last_served_.end() ? 0 : cand_served->second;
    const std::uint64_t inc_last =
        inc_served == last_served_.end() ? 0 : inc_served->second;
    if (cand_last < inc_last) {
      best = i;
      continue;
    }
    if (cand_last == inc_last && candidate.seq < incumbent.seq) best = i;
  }
  JobSpec out = std::move(entries_[best].spec);
  entries_.erase(entries_.begin() + static_cast<std::ptrdiff_t>(best));
  last_served_[out.tenant] = next_seq_++;
  // Tenant names are client-controlled; bound the fairness history so a
  // stream of one-shot tenants cannot grow the map without limit.  Evicting
  // the least-recently-served tenant demotes it back to "never served",
  // which is the same (oldest) tie-break position it was heading for anyway.
  constexpr std::size_t kMaxTenantHistory = 1024;
  if (last_served_.size() > kMaxTenantHistory) {
    auto oldest = last_served_.begin();
    for (auto it = std::next(last_served_.begin()); it != last_served_.end();
         ++it) {
      if (it->second < oldest->second) oldest = it;
    }
    last_served_.erase(oldest);
  }
  return out;
}

std::size_t AdmissionQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

std::size_t AdmissionQueue::max_depth_seen() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return max_depth_seen_;
}

std::uint64_t AdmissionQueue::shed_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sheds_;
}

}  // namespace prop::service
