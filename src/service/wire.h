// Wire format of the partitioning service: job specs in, Status /
// RunOutcome / degradation trails out.
//
// The protocol reuses the runtime layer's failures-as-data types directly,
// which makes their JSON encodings a public contract: serialize -> parse ->
// re-serialize must be byte-identical (tests/service/wire_roundtrip_test).
// All encoders build lexeme-preserving JsonValues (json.h) with fixed member
// order; all decoders are exception-free (nullopt + diagnostic) because they
// face untrusted clients.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "partition/runner.h"
#include "runtime/run_context.h"
#include "runtime/status.h"
#include "service/json.h"

namespace prop::service {

// --- Status -----------------------------------------------------------------

/// {"code":"ok"} / {"code":"injected_fault","message":"..."}
JsonValue status_to_json(const Status& status);
std::optional<Status> status_from_json(const JsonValue& v, std::string* error);

// --- DegradationEvent / DegradationLog ---------------------------------------

/// {"site":"...","action":"...","detail":"..."} (detail omitted when empty) —
/// the exact shape write_stats_json emits inside run_records.
JsonValue degradation_to_json(const DegradationEvent& event);
std::optional<DegradationEvent> degradation_from_json(const JsonValue& v,
                                                      std::string* error);

JsonValue degradations_to_json(const std::vector<DegradationEvent>& events);
std::optional<std::vector<DegradationEvent>> degradations_from_json(
    const JsonValue& v, std::string* error);

// --- RunOutcome ---------------------------------------------------------------

/// Compact one-character-per-node encoding of a partition side / part-id
/// vector: values 0-9 as digits, 10-35 as 'a'-'z' (base 36, k <= 36 on the
/// wire).  2-way partitions still encode as pure 0/1 strings, so existing
/// clients see unchanged bytes.
std::string encode_side(const std::vector<std::uint8_t>& side);
std::optional<std::vector<std::uint8_t>> decode_side(const std::string& s);

struct RunOutcomeJsonOptions {
  /// Timing is the one schedule-dependent field; excluded for the
  /// byte-identical determinism contract.
  bool include_timing = true;
  /// The partition side vector can dominate the payload; clients opt in.
  bool include_side = true;
};

JsonValue run_outcome_to_json(const RunOutcome& outcome,
                              const RunOutcomeJsonOptions& options = {});
std::optional<RunOutcome> run_outcome_from_json(const JsonValue& v,
                                                std::string* error);

// --- Job specs ----------------------------------------------------------------

/// One partition job as submitted over the protocol.  Exactly one of
/// `circuit` (bundled Table 1 name) / `hgr` (inline payload) must be set;
/// the server validates that plus algo/balance semantics at admission.
struct JobSpec {
  std::string id;                ///< client-chosen, unique per connection
  std::string tenant = "default";
  int priority = 0;              ///< higher = more urgent
  std::string algo = "prop";
  std::string circuit;           ///< bundled circuit name
  std::string hgr;               ///< inline .hgr payload (untrusted)
  int runs = 1;
  std::uint64_t seed = 1;
  std::string balance = "45-55";  ///< "45-55" or "50-50"
  double deadline_ms = 0.0;      ///< execution budget; 0 = server default
  int max_retries = -1;          ///< transient-fault retries; -1 = server default
  bool stats_timing = true;      ///< timing fields inside the result stats
  bool return_partition = false; ///< include the best side vector
  /// PROP intra-pass threads (PropConfig::pass_threads): 0 = sequential
  /// engine, N >= 1 = deterministic round engine — part of the spec because
  /// the two engines produce different (each deterministic) results; any
  /// N >= 1 yields identical bytes, so results stay a function of the spec.
  int pass_threads = 0;
  /// Round batching of the round engine (PropConfig::rounds_per_barrier):
  /// the worker pool is engaged only on every Nth round.  Output-neutral by
  /// construction (byte-identical results for every value), carried in the
  /// spec so operators can tune barrier overhead per job.  Ignored when
  /// pass_threads = 0.
  int rounds_per_barrier = 1;
  /// Number of parts.  2 = classic bisection through `algo` directly;
  /// 3-36 = recursive bisection with `algo` plus the k-way refiner below
  /// (36 caps what encode_side can carry per character).
  int k = 2;
  /// K-way post-pass when k > 2: "prop" (native k-way PROP), "greedy", or
  /// "none" (recursive bisection only).  Ignored for k = 2.
  std::string kway_refiner = "prop";
  /// K-way objective when k > 2: "connectivity" (sum c(n)*(lambda-1)) or
  /// "cut" (nets spanning >= 2 parts).  Ignored for k = 2.
  std::string kway_objective = "connectivity";
};

/// Parses a submit-request object.  Unknown fields are rejected (the flag
/// analogue: a typo'd "deadline_Ms" must not silently become an unbudgeted
/// job).  `op` is accepted and ignored — the server dispatches on it first.
std::optional<JobSpec> job_spec_from_json(const JsonValue& v,
                                          std::string* error);

/// Inverse of job_spec_from_json (load generators, tests).  Defaults are
/// emitted explicitly so a spec round-trips field-for-field.
JsonValue job_spec_to_json(const JobSpec& spec);

}  // namespace prop::service
