#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "hypergraph/mcnc_suite.h"
#include "partition/balance.h"
#include "partition/runner.h"
#include "runtime/deadline.h"
#include "runtime/run_context.h"
#include "service/algo_factory.h"
#include "util/rng.h"

namespace prop::service {
namespace {

double ms_between(std::chrono::steady_clock::time_point from,
                  std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::milli>(to - from).count();
}

/// Pre-admission checks beyond JSON shape: the request must name work the
/// server can actually execute, and an inline payload must fit the ingest
/// byte cap *before* it sits in the queue.
Status validate_spec(const JobSpec& spec, const HgrLimits& limits) {
  const bool has_circuit = !spec.circuit.empty();
  const bool has_hgr = !spec.hgr.empty();
  if (has_circuit == has_hgr) {
    return Status::failure(StatusCode::kInvalidRequest,
                           "exactly one of 'circuit' and 'hgr' must be set");
  }
  if (has_circuit) {
    try {
      (void)mcnc_spec(spec.circuit);
    } catch (const std::out_of_range&) {
      return Status::failure(StatusCode::kInvalidRequest,
                             "unknown circuit '" + spec.circuit + "'");
    }
  }
  if (has_hgr && limits.max_bytes != 0 && spec.hgr.size() > limits.max_bytes) {
    return Status::failure(
        StatusCode::kInvalidRequest,
        "hgr payload of " + std::to_string(spec.hgr.size()) +
            " bytes exceeds limit " + std::to_string(limits.max_bytes));
  }
  if (spec.balance != "45-55" && spec.balance != "50-50") {
    return Status::failure(StatusCode::kInvalidRequest,
                           "unknown balance '" + spec.balance +
                               "' (45-55|50-50)");
  }
  if (!make_algo(spec.algo)) {
    return Status::failure(StatusCode::kInvalidRequest,
                           "unknown algorithm '" + spec.algo + "' (" +
                               algo_names() + ")");
  }
  // k is range-checked by the wire parser; the refiner/objective names are
  // free strings there, so reject unknowns at admission rather than at exec.
  if (!parse_kway_refiner(spec.kway_refiner)) {
    return Status::failure(StatusCode::kInvalidRequest,
                           "unknown kway_refiner '" + spec.kway_refiner +
                               "' (prop|greedy|none)");
  }
  if (!parse_kway_objective(spec.kway_objective)) {
    return Status::failure(StatusCode::kInvalidRequest,
                           "unknown kway_objective '" + spec.kway_objective +
                               "' (cut|connectivity)");
  }
  return Status::success();
}

}  // namespace

Server::Server(ServerConfig config, ResponseSink sink)
    : config_(std::move(config)),
      sink_(std::move(sink)),
      queue_(AdmissionConfig{config_.queue_limit, config_.aging_interval}) {
  if (!config_.inject.empty()) {
    chaos_ = FaultInjector(config_.inject, config_.inject_seed);
    chaos_armed_ = true;
  }
  pool_ = std::make_unique<ThreadPool>(std::max(1, config_.workers));
}

Server::~Server() {
  drain();
  pool_.reset();
}

void Server::drain() {
  std::unique_lock<std::mutex> lock(drain_mutex_);
  drained_.wait(lock, [&] { return outstanding_ == 0; });
}

ServerStats Server::stats() const {
  ServerStats s;
  s.lines = lines_.load(std::memory_order_relaxed);
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.shed = queue_.shed_count();
  s.invalid = invalid_.load(std::memory_order_relaxed);
  s.done = done_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.responses = responses_.load(std::memory_order_relaxed);
  s.max_queue_depth = queue_.max_depth_seen();
  return s;
}

void Server::emit(const std::string& line) {
  responses_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(sink_mutex_);
  if (sink_) sink_(line);
}

void Server::respond(const std::string& id, const std::string& line,
                     JobState state) {
  // The exactly-once gate: the first responder for an id wins; a second
  // attempt to respond (which would be a server bug) is suppressed, never
  // emitted.
  if (store_.mark_responded(id) != 1) return;
  // done/failed count only jobs that executed; shed and invalid rejections
  // are counted where they happen (queue_.shed_count(), invalid_).
  if (state == JobState::kDone) {
    done_.fetch_add(1, std::memory_order_relaxed);
  } else if (state == JobState::kFailed) {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  emit(line);
}

std::string Server::envelope(
    const JobSpec& spec, JobState state, int attempts, const Status& status,
    const std::string& result_json, const std::string& partition,
    const std::vector<DegradationEvent>& degradations, double queue_ms,
    double exec_ms) const {
  std::ostringstream out;
  out << "{\"id\":\"" << json_escape(spec.id) << "\",\"tenant\":\""
      << json_escape(spec.tenant) << "\",\"state\":\"" << to_string(state)
      << "\",\"attempts\":" << attempts
      << ",\"status\":" << status_to_json(status).dump();
  if (!result_json.empty()) out << ",\"result\":" << result_json;
  if (!partition.empty()) out << ",\"partition\":\"" << partition << "\"";
  if (!degradations.empty()) {
    out << ",\"degradations\":" << degradations_to_json(degradations).dump();
  }
  // Timing is the one schedule-dependent part of a response; it rides on the
  // same opt-out as the result's timing fields so stats_timing=false yields
  // fully load-independent bytes.
  if (attempts > 0 && spec.stats_timing) {
    out << ",\"queue_ms\":";
    json_put_double(out, queue_ms);
    out << ",\"exec_ms\":";
    json_put_double(out, exec_ms);
  }
  out << "}";
  return out.str();
}

bool Server::handle_line(const std::string& line) {
  lines_.fetch_add(1, std::memory_order_relaxed);
  if (line.find_first_not_of(" \t\r\n") == std::string::npos) return true;

  if (line.size() > config_.max_request_bytes) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    const Status status = Status::failure(
        StatusCode::kInvalidRequest,
        "request line of " + std::to_string(line.size()) +
            " bytes exceeds limit " + std::to_string(config_.max_request_bytes));
    emit("{\"state\":\"invalid\",\"status\":" + status_to_json(status).dump() +
         "}");
    return true;
  }

  std::string error;
  const auto doc = json_parse(line, &error);
  if (!doc || !doc->is_object()) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    const Status status = Status::failure(
        StatusCode::kInvalidRequest,
        doc ? "request must be a JSON object" : error);
    emit("{\"state\":\"invalid\",\"status\":" + status_to_json(status).dump() +
         "}");
    return true;
  }

  std::string op = "submit";
  if (const JsonValue* opv = doc->find("op")) {
    op = opv->is_string() ? opv->as_string() : std::string();
  }

  if (op == "stats") {
    const ServerStats s = stats();
    std::ostringstream out;
    out << "{\"op\":\"stats\",\"lines\":" << s.lines
        << ",\"submitted\":" << s.submitted << ",\"accepted\":" << s.accepted
        << ",\"shed\":" << s.shed << ",\"invalid\":" << s.invalid
        << ",\"done\":" << s.done << ",\"failed\":" << s.failed
        << ",\"retries\":" << s.retries << ",\"responses\":" << s.responses
        << ",\"queue_depth\":" << queue_.depth()
        << ",\"max_queue_depth\":" << s.max_queue_depth
        << ",\"jobs\":" << store_.size() << "}";
    emit(out.str());
    return true;
  }

  if (op == "shutdown") {
    drain();
    emit("{\"op\":\"shutdown\",\"status\":{\"code\":\"ok\"}}");
    return false;
  }

  if (op != "submit") {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    const Status status =
        Status::failure(StatusCode::kInvalidRequest,
                        "unknown op '" + op + "' (submit|stats|shutdown)");
    emit("{\"state\":\"invalid\",\"status\":" + status_to_json(status).dump() +
         "}");
    return true;
  }

  submitted_.fetch_add(1, std::memory_order_relaxed);
  auto spec = job_spec_from_json(*doc, &error);
  if (!spec) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    const Status status = Status::failure(StatusCode::kInvalidRequest, error);
    std::string id_field;
    if (const JsonValue* id = doc->find("id"); id && id->is_string()) {
      id_field = "\"id\":\"" + json_escape(id->as_string()) + "\",";
    }
    emit("{" + id_field +
         "\"state\":\"invalid\",\"status\":" + status_to_json(status).dump() +
         "}");
    return true;
  }
  submit(std::move(*spec));
  return true;
}

void Server::submit(JobSpec spec) {
  // Duplicate-id gate.  The rejection is emitted directly (not via
  // respond()): the id's exactly-once response still belongs to its first
  // submission.
  if (!store_.try_insert(spec.id)) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    const Status status = Status::failure(
        StatusCode::kInvalidRequest, "duplicate job id '" + spec.id + "'");
    emit(envelope(spec, JobState::kInvalid, 0, status, "", "", {}, 0.0, 0.0));
    return;
  }

  const Status valid = validate_spec(spec, config_.hgr_limits);
  if (!valid.ok()) {
    invalid_.fetch_add(1, std::memory_order_relaxed);
    store_.update(spec.id, [&](JobRecord& r) {
      r.state = JobState::kInvalid;
      r.final_status = valid;
    });
    respond(spec.id,
            envelope(spec, JobState::kInvalid, 0, valid, "", "", {}, 0.0, 0.0),
            JobState::kInvalid);
    return;
  }

  const Status admitted = queue_.push(spec);
  if (!admitted.ok()) {
    store_.update(spec.id, [&](JobRecord& r) {
      r.state = JobState::kShed;
      r.final_status = admitted;
    });
    respond(
        spec.id,
        envelope(spec, JobState::kShed, 0, admitted, "", "", {}, 0.0, 0.0),
        JobState::kShed);
    return;
  }

  accepted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(timing_mutex_);
    timings_[spec.id] = JobTiming{std::chrono::steady_clock::now()};
  }
  {
    std::lock_guard<std::mutex> lock(drain_mutex_);
    ++outstanding_;
  }
  // Task-per-job: exactly one executor task per admitted job, so pop() in
  // execute_one() always finds work (AdmissionQueue documents the
  // invariant).
  pool_->submit([this] { execute_one(); });
}

void Server::execute_one() {
  struct OutstandingGuard {
    Server& server;
    ~OutstandingGuard() {
      std::lock_guard<std::mutex> lock(server.drain_mutex_);
      if (--server.outstanding_ == 0) server.drained_.notify_all();
    }
  } guard{*this};

  const JobSpec spec = queue_.pop();
  try {
    run_job(spec);
  } catch (const std::exception& e) {
    // Panic isolation of last resort: run_job converts job failures to data
    // itself, so reaching here means a bug in the response path — still
    // answer the client and keep the worker alive.
    const Status status = Status::failure(
        StatusCode::kError, std::string("internal error: ") + e.what());
    store_.update(spec.id, [&](JobRecord& r) {
      r.state = JobState::kFailed;
      r.final_status = status;
      if (r.attempts == 0) r.attempts = 1;
    });
    respond(spec.id,
            envelope(spec, JobState::kFailed, 1, status, "", "", {}, 0.0, 0.0),
            JobState::kFailed);
  } catch (...) {
    const Status status =
        Status::failure(StatusCode::kError, "internal non-standard exception");
    store_.update(spec.id, [&](JobRecord& r) {
      r.state = JobState::kFailed;
      r.final_status = status;
      if (r.attempts == 0) r.attempts = 1;
    });
    respond(spec.id,
            envelope(spec, JobState::kFailed, 1, status, "", "", {}, 0.0, 0.0),
            JobState::kFailed);
  }
}

void Server::run_job(const JobSpec& spec) {
  const auto exec_start = std::chrono::steady_clock::now();
  double queue_ms = 0.0;
  {
    std::lock_guard<std::mutex> lock(timing_mutex_);
    if (const auto it = timings_.find(spec.id); it != timings_.end()) {
      queue_ms = ms_between(it->second.admitted, exec_start);
      timings_.erase(it);
    }
  }
  store_.update(spec.id, [&](JobRecord& r) {
    r.state = JobState::kRunning;
    r.queue_ms = queue_ms;
  });

  // Ingest under the configured limits.  An oversized or malformed payload
  // is a structured failure for *this* job, never an exception escaping the
  // worker.
  Hypergraph g;
  try {
    if (!spec.circuit.empty()) {
      g = make_mcnc_circuit(spec.circuit);
    } else {
      std::istringstream in(spec.hgr);
      g = read_hgr(in, "inline", config_.hgr_limits);
    }
  } catch (const std::exception& e) {
    const Status status =
        Status::failure(StatusCode::kInvalidRequest, e.what());
    const double exec_ms =
        ms_between(exec_start, std::chrono::steady_clock::now());
    store_.update(spec.id, [&](JobRecord& r) {
      r.state = JobState::kFailed;
      r.final_status = status;
      r.attempts = 1;
      r.exec_ms = exec_ms;
    });
    respond(spec.id,
            envelope(spec, JobState::kFailed, 1, status, "", "", {}, queue_ms,
                     exec_ms),
            JobState::kFailed);
    return;
  }

  // k = 2 keeps the classic bisection path byte-for-byte; k > 2 wraps the
  // same base algorithm in the recursive-bisection + k-way-refiner pipeline
  // (refiner/objective names were validated at admission).
  const auto algo =
      spec.k > 2
          ? make_kway_algo(spec.algo, static_cast<NodeId>(spec.k),
                           *parse_kway_refiner(spec.kway_refiner),
                           *parse_kway_objective(spec.kway_objective),
                           GainEngine::kCached, spec.pass_threads,
                           spec.rounds_per_barrier)
          : make_algo(spec.algo, GainEngine::kCached, spec.pass_threads,
                      spec.rounds_per_barrier);
  const BalanceConstraint balance = spec.balance == "50-50"
                                        ? BalanceConstraint::fifty_fifty(g)
                                        : BalanceConstraint::forty_five(g);
  const double budget_ms =
      spec.deadline_ms > 0.0 ? spec.deadline_ms : config_.default_deadline_ms;
  // The budget starts at execution, not admission: a job must not pay for
  // queueing delay caused by other tenants' load.
  const Deadline deadline =
      budget_ms > 0.0 ? Deadline::after_ms(budget_ms) : Deadline::never();
  const int max_retries =
      spec.max_retries >= 0 ? spec.max_retries : config_.max_retries;

  int attempts = 0;
  Status status;
  MultiRunResult result;
  bool have_run = false;
  std::vector<DegradationEvent> degradations;
  double backoff_ms = config_.retry_backoff_ms;

  for (int attempt = 0;; ++attempt) {
    attempts = attempt + 1;
    // Chaos is forked per (job seed, attempt): which attempt of which job a
    // fault hits never depends on scheduling, so the whole soak is
    // replayable and the retry ladder is spec-deterministic.
    FaultInjector injector =
        chaos_.fork(mix_seed(spec.seed, static_cast<std::uint64_t>(attempt)));
    CancelToken cancel(deadline);
    DegradationLog log;
    RunContext ctx;
    ctx.cancel = &cancel;
    ctx.injector = chaos_armed_ ? &injector : nullptr;
    ctx.degradations = &log;

    bool attempt_threw = false;
    bool injected_throw = false;
    std::string what;
    MultiRunResult r;
    try {
      if (chaos_armed_ && injector.should_fail(FaultSite::kServeExec)) {
        // The injected "panic": an exception from inside the job body.  The
        // catch below classifies it as transient because the injection is
        // known to have fired; a real (unexpected) exception is terminal.
        injected_throw = true;
        throw std::runtime_error("injected fault at serve-exec");
      }
      RunnerOptions options;
      options.context = &ctx;
      options.threads = 0;  // in-worker sequential: load-independent results
      options.allow_all_failed = true;
      r = run_many(*algo, g, balance, spec.runs, spec.seed, options);
    } catch (const std::exception& e) {
      attempt_threw = true;
      what = e.what();
    } catch (...) {
      attempt_threw = true;
      what = "non-standard exception";
    }

    degradations = log.take();
    if (attempt_threw) {
      have_run = false;
      status = Status::failure(
          injected_throw ? StatusCode::kInjectedFault : StatusCode::kError,
          what);
    } else {
      have_run = true;
      result = std::move(r);
      status = result.status;
    }

    const bool produced = have_run && result.best.valid();
    const bool transient =
        !produced && status.code == StatusCode::kInjectedFault;
    if (transient && attempt < max_retries) {
      retries_.fetch_add(1, std::memory_order_relaxed);
      store_.update(spec.id, [&](JobRecord& r2) { r2.attempts = attempts; });
      if (backoff_ms > 0.0) {
        const double delay =
            std::min(backoff_ms, config_.retry_backoff_max_ms);
        std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
        backoff_ms = std::min(backoff_ms * 2.0, config_.retry_backoff_max_ms);
      }
      continue;
    }
    break;
  }

  const bool produced = have_run && result.best.valid();
  std::string result_json;
  if (produced) {
    std::ostringstream ss;
    StatsJsonOptions json_options;
    json_options.include_timing = spec.stats_timing;
    write_stats_json(ss, g.name(), algo->name(), result, json_options);
    result_json = ss.str();
  }
  const std::string partition =
      produced && spec.return_partition ? encode_side(result.best.side) : "";

  const JobState state = produced ? JobState::kDone : JobState::kFailed;
  const double exec_ms =
      ms_between(exec_start, std::chrono::steady_clock::now());
  store_.update(spec.id, [&](JobRecord& r) {
    r.state = state;
    r.attempts = attempts;
    r.final_status = status;
    r.exec_ms = exec_ms;
  });
  respond(spec.id,
          envelope(spec, state, attempts, status, result_json, partition,
                   degradations, queue_ms, exec_ms),
          state);
}

}  // namespace prop::service
