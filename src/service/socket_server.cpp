#include "service/socket_server.h"

#ifndef _WIN32

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

namespace prop::service {
namespace {

/// Writes the whole buffer, retrying short writes and EINTR.  False when
/// the client is gone (EPIPE & co.) — responses to a dead peer are dropped,
/// not fatal (exactly-once is about emission; a hung-up client forfeits
/// delivery).
bool write_all(int fd, const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::write(fd, data, size);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    data += n;
    size -= static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

bool LineFramer::feed(const char* data, std::size_t size,
                      const std::function<bool(const std::string&)>& on_line) {
  buffer_.append(data, size);
  std::size_t start = 0;
  bool keep_going = true;
  for (std::size_t nl = buffer_.find('\n', start);
       nl != std::string::npos && keep_going; nl = buffer_.find('\n', start)) {
    const std::string line = buffer_.substr(start, nl - start);
    start = nl + 1;
    keep_going = on_line(line);
  }
  buffer_.erase(0, start);
  return keep_going;
}

bool LineFramer::finish(
    const std::function<bool(const std::string&)>& on_line) {
  if (buffer_.empty()) return true;
  // A client may close its write side right after the last request without
  // a trailing '\n'; EOF terminates the line (documented wire framing).
  std::string line;
  line.swap(buffer_);
  return on_line(line);
}

SocketLineServer::SocketLineServer(const ServerConfig& config,
                                   std::string path)
    : path_(std::move(path)),
      server_(config, [this](const std::string& line) {
        // Called from worker threads under the Server's sink mutex; the
        // accept loop publishes/retires the connection fd atomically, so
        // this either writes to the live client or drops the response.
        const int fd = client_.load(std::memory_order_acquire);
        if (fd < 0) return;
        if (!write_all(fd, line.data(), line.size()) ||
            !write_all(fd, "\n", 1)) {
          // Client hung up mid-response; keep serving.
        }
      }) {}

SocketLineServer::~SocketLineServer() {
  if (listener_ >= 0) {
    ::close(listener_);
    ::unlink(path_.c_str());
  }
}

bool SocketLineServer::listen() {
  ::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the server

  listener_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener_ < 0) {
    std::perror("prop_serve: socket");
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path_.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long\n");
    ::close(listener_);
    listener_ = -1;
    return false;
  }
  std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path_.c_str());
  ::unlink(path_.c_str());
  if (::bind(listener_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listener_, 4) != 0) {
    std::perror("prop_serve: bind/listen");
    ::close(listener_);
    listener_ = -1;
    return false;
  }
  return true;
}

bool SocketLineServer::serve_client(int fd) {
  LineFramer framer;
  const auto on_line = [this](const std::string& line) {
    return server_.handle_line(line);
  };
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      // A signal during a long job interrupts read(); that is not EOF —
      // retry.  Only a real error ends the connection (logged: a silently
      // dropped client is the bug this replaces).
      if (errno == EINTR) continue;
      std::fprintf(stderr, "prop_serve: read: %s\n", std::strerror(errno));
      return true;
    }
    if (n == 0) break;  // EOF: client closed its write side
    if (!framer.feed(chunk, static_cast<std::size_t>(n), on_line)) {
      return false;  // shutdown request
    }
  }
  return framer.finish(on_line);
}

void SocketLineServer::serve() {
  bool running = true;
  while (running) {
    int fd;
    do {
      fd = ::accept(listener_, nullptr, nullptr);
    } while (fd < 0 && errno == EINTR);
    if (fd < 0) break;
    client_.store(fd, std::memory_order_release);
    running = serve_client(fd);
    // All of this client's responses out before it goes away: a later
    // client must never receive them.
    server_.drain();
    client_.store(-1, std::memory_order_release);
    ::close(fd);
  }
}

}  // namespace prop::service

#endif  // !_WIN32
