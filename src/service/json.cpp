#include "service/json.h"

#include <cstdio>
#include <cstdlib>
#include <ostream>
#include <sstream>

namespace prop::service {
namespace {

/// Nesting cap for untrusted documents: deep enough for any legitimate job
/// spec or stats blob, shallow enough that a "[[[[..." bomb cannot blow the
/// parser's recursion.
constexpr int kMaxDepth = 64;

std::string format_double(double v) {
  std::ostringstream s;
  s.precision(17);
  s << v;
  return s.str();
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<JsonValue> parse(std::string* error) {
    std::optional<JsonValue> value = parse_value(0);
    if (value) {
      skip_ws();
      if (pos_ != text_.size()) fail("trailing characters after document");
    }
    if (!error_.empty()) {
      if (error) *error = "json: " + error_ + " at offset " + std::to_string(pos_);
      return std::nullopt;
    }
    return value;
  }

 private:
  void fail(const std::string& why) {
    if (error_.empty()) error_ = why;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume(char expected) {
    if (pos_ < text_.size() && text_[pos_] == expected) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<JsonValue> parse_value(int depth) {
    if (!error_.empty()) return std::nullopt;
    if (depth > kMaxDepth) {
      fail("nesting too deep");
      return std::nullopt;
    }
    skip_ws();
    if (pos_ >= text_.size()) {
      fail("unexpected end of input");
      return std::nullopt;
    }
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return parse_string_value();
      case 't': return parse_literal("true", JsonValue::boolean(true));
      case 'f': return parse_literal("false", JsonValue::boolean(false));
      case 'n': return parse_literal("null", JsonValue::null());
      default: return parse_number();
    }
  }

  std::optional<JsonValue> parse_literal(std::string_view word,
                                         JsonValue value) {
    if (text_.substr(pos_, word.size()) != word) {
      fail("invalid literal");
      return std::nullopt;
    }
    pos_ += word.size();
    return value;
  }

  std::optional<JsonValue> parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {}
    if (!consume_digits()) {
      fail("invalid number");
      return std::nullopt;
    }
    if (consume('.')) {
      if (!consume_digits()) {
        fail("invalid number (no digits after '.')");
        return std::nullopt;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (!consume_digits()) {
        fail("invalid number (empty exponent)");
        return std::nullopt;
      }
    }
    return JsonValue::number_lexeme(
        std::string(text_.substr(start, pos_ - start)));
  }

  bool consume_digits() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
      ++pos_;
    }
    return pos_ > start;
  }

  std::optional<JsonValue> parse_string_value() {
    std::optional<std::string> s = parse_string();
    if (!s) return std::nullopt;
    return JsonValue::string(std::move(*s));
  }

  std::optional<std::string> parse_string() {
    if (!consume('"')) {
      fail("expected '\"'");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
        return std::nullopt;
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (!append_unicode_escape(out)) return std::nullopt;
          break;
        }
        default:
          fail("unknown escape");
          return std::nullopt;
      }
    }
    fail("unterminated string");
    return std::nullopt;
  }

  bool append_unicode_escape(std::string& out) {
    if (pos_ + 4 > text_.size()) {
      fail("truncated \\u escape");
      return false;
    }
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = text_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') {
        code |= static_cast<unsigned>(h - '0');
      } else if (h >= 'a' && h <= 'f') {
        code |= static_cast<unsigned>(h - 'a' + 10);
      } else if (h >= 'A' && h <= 'F') {
        code |= static_cast<unsigned>(h - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
        return false;
      }
    }
    if (code >= 0xd800 && code <= 0xdfff) {
      // Surrogate pairs never appear in this suite's own output; reject
      // rather than half-decode untrusted input.
      fail("surrogate \\u escapes unsupported");
      return false;
    }
    if (code < 0x80) {
      out += static_cast<char>(code);
    } else if (code < 0x800) {
      out += static_cast<char>(0xc0 | (code >> 6));
      out += static_cast<char>(0x80 | (code & 0x3f));
    } else {
      out += static_cast<char>(0xe0 | (code >> 12));
      out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
      out += static_cast<char>(0x80 | (code & 0x3f));
    }
    return true;
  }

  std::optional<JsonValue> parse_array(int depth) {
    consume('[');
    JsonValue out = JsonValue::array();
    skip_ws();
    if (consume(']')) return out;
    while (true) {
      std::optional<JsonValue> item = parse_value(depth + 1);
      if (!item) return std::nullopt;
      out.push_back(std::move(*item));
      skip_ws();
      if (consume(',')) continue;
      if (consume(']')) return out;
      fail("expected ',' or ']' in array");
      return std::nullopt;
    }
  }

  std::optional<JsonValue> parse_object(int depth) {
    consume('{');
    JsonValue out = JsonValue::object();
    skip_ws();
    if (consume('}')) return out;
    while (true) {
      skip_ws();
      std::optional<std::string> key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) {
        fail("expected ':' after object key");
        return std::nullopt;
      }
      std::optional<JsonValue> value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      out.set(std::move(*key), std::move(*value));
      skip_ws();
      if (consume(',')) continue;
      if (consume('}')) return out;
      fail("expected ',' or '}' in object");
      return std::nullopt;
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
};

}  // namespace

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number_lexeme(std::string lexeme) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.scalar_ = std::move(lexeme);
  return v;
}

JsonValue JsonValue::number(double value) {
  return number_lexeme(format_double(value));
}

JsonValue JsonValue::number(std::int64_t value) {
  return number_lexeme(std::to_string(value));
}

JsonValue JsonValue::number(std::uint64_t value) {
  return number_lexeme(std::to_string(value));
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.type_ = Type::kString;
  v.scalar_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.type_ = Type::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.type_ = Type::kObject;
  return v;
}

double JsonValue::as_double() const noexcept {
  if (type_ != Type::kNumber) return 0.0;
  return std::strtod(scalar_.c_str(), nullptr);
}

std::int64_t JsonValue::as_int64() const noexcept {
  if (type_ != Type::kNumber) return 0;
  return std::strtoll(scalar_.c_str(), nullptr, 10);
}

std::uint64_t JsonValue::as_uint64() const noexcept {
  if (type_ != Type::kNumber) return 0;
  if (!scalar_.empty() && scalar_[0] == '-') {
    return static_cast<std::uint64_t>(as_int64());
  }
  return std::strtoull(scalar_.c_str(), nullptr, 10);
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (type_ != Type::kObject) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

void JsonValue::push_back(JsonValue v) {
  if (type_ == Type::kArray) items_.push_back(std::move(v));
}

void JsonValue::set(std::string key, JsonValue v) {
  if (type_ == Type::kObject) {
    members_.emplace_back(std::move(key), std::move(v));
  }
}

void JsonValue::write(std::ostream& out) const {
  switch (type_) {
    case Type::kNull:
      out << "null";
      return;
    case Type::kBool:
      out << (bool_ ? "true" : "false");
      return;
    case Type::kNumber:
      out << scalar_;
      return;
    case Type::kString:
      out << '"' << json_escape(scalar_) << '"';
      return;
    case Type::kArray: {
      out << '[';
      bool first = true;
      for (const JsonValue& item : items_) {
        if (!first) out << ',';
        first = false;
        item.write(out);
      }
      out << ']';
      return;
    }
    case Type::kObject: {
      out << '{';
      bool first = true;
      for (const Member& m : members_) {
        if (!first) out << ',';
        first = false;
        out << '"' << json_escape(m.first) << "\":";
        m.second.write(out);
      }
      out << '}';
      return;
    }
  }
}

std::string JsonValue::dump() const {
  std::ostringstream out;
  write(out);
  return out.str();
}

std::optional<JsonValue> json_parse(std::string_view text, std::string* error) {
  return Parser(text).parse(error);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void json_put_double(std::ostream& out, double v) {
  out << format_double(v);
}

}  // namespace prop::service
