// Bounded admission control for the partitioning service.
//
// The queue is the server's only elastic buffer, so it is the place where
// overload becomes a *decision* instead of an OOM: push() rejects with a
// structured kShedOverload Status the moment the depth limit is reached —
// memory use is bounded by max_depth jobs no matter how fast clients submit.
//
// Scheduling is priority-with-aging plus per-tenant fairness:
//   effective(job) = priority + (admissions_since(job) / aging_interval)
// pop() takes the highest effective priority; ties break to the tenant
// served least recently, then to FIFO order.  Aging guarantees a starving
// low-priority job eventually outranks a stream of fresh high-priority ones;
// the tenant tie-break stops one heavy client from monopolizing equal-
// priority service.  All ordering is driven by a logical admission counter,
// never the wall clock, so schedules are deterministic and testable.
//
// Thread safety: every method locks; pop() never blocks because the server
// maintains the invariant "one executor task submitted per admitted job", so
// an executor always finds work.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>

#include "runtime/status.h"
#include "service/wire.h"

namespace prop::service {

struct AdmissionConfig {
  std::size_t max_depth = 64;        ///< jobs queued before shedding
  std::uint64_t aging_interval = 4;  ///< admissions per +1 priority boost
};

class AdmissionQueue {
 public:
  explicit AdmissionQueue(AdmissionConfig config);

  /// Admits `spec` or sheds it: returns kOk and queues the job, or a
  /// kShedOverload Status naming the depth and limit.  Never allocates
  /// beyond the configured depth.
  Status push(JobSpec spec);

  /// Removes and returns the scheduled-next job.  Precondition: non-empty
  /// (the server's task-per-job invariant); throws std::logic_error
  /// otherwise — that is a server bug, not a client condition.
  JobSpec pop();

  std::size_t depth() const;
  std::size_t max_depth_seen() const;
  std::uint64_t shed_count() const;

 private:
  struct Entry {
    JobSpec spec;
    std::uint64_t seq = 0;  ///< admission order (logical time)
  };

  /// Effective priority under aging at logical time `now`.
  double effective(const Entry& e, std::uint64_t now) const;

  AdmissionConfig config_;
  mutable std::mutex mutex_;
  std::deque<Entry> entries_;
  /// seq of the last pop that served each tenant (0 = never served).
  std::unordered_map<std::string, std::uint64_t> last_served_;
  std::uint64_t next_seq_ = 1;
  std::size_t max_depth_seen_ = 0;
  std::uint64_t sheds_ = 0;
};

}  // namespace prop::service
