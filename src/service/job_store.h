// Sharded job/result store of the partitioning service.
//
// Follows the sharded-container idiom (SNIPPETS.md §2): the id space is
// split across independently locked shards so bookkeeping from concurrent
// worker threads contends only per shard, never globally.  The store is the
// service's single source of truth for the response invariant — every
// admitted id gets *exactly one* response: try_insert() rejects duplicate
// ids at the door, and mark_responded() is the atomic emit-once gate the
// responder must win before writing to the wire.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "runtime/status.h"

namespace prop::service {

enum class JobState {
  kQueued,   ///< admitted, waiting in the admission queue
  kRunning,  ///< picked up by a worker
  kDone,     ///< responded with a result
  kFailed,   ///< responded without a result (error / retries exhausted)
  kShed,     ///< rejected by admission control
  kInvalid,  ///< rejected before admission (malformed spec / payload)
};

const char* to_string(JobState state) noexcept;

struct JobRecord {
  JobState state = JobState::kQueued;
  int attempts = 0;          ///< execution attempts (retries included)
  Status final_status;       ///< set when a response was produced
  double queue_ms = 0.0;     ///< admission -> first execution
  double exec_ms = 0.0;      ///< execution wall time (all attempts)
  int responses = 0;         ///< responses emitted (must end at exactly 1)
};

class JobStore {
 public:
  static constexpr std::size_t kShards = 16;

  JobStore() = default;
  JobStore(const JobStore&) = delete;
  JobStore& operator=(const JobStore&) = delete;

  /// Registers a fresh id; false when the id already exists (the caller
  /// must reject the job — a duplicate id would break exactly-once).
  bool try_insert(const std::string& id);

  /// Runs `fn` on the record under its shard lock; false for unknown ids.
  bool update(const std::string& id,
              const std::function<void(JobRecord&)>& fn);

  /// Claims the right to emit the response for `id`: increments the
  /// response count and returns its new value.  The caller may write to the
  /// wire only when this returns 1; 0 means the id is unknown.
  int mark_responded(const std::string& id);

  std::optional<JobRecord> find(const std::string& id) const;

  std::size_t size() const;

  /// Snapshot iteration (stats reporting): `fn` runs under each shard's
  /// lock in shard order.
  void for_each(const std::function<void(const std::string&,
                                         const JobRecord&)>& fn) const;

 private:
  struct Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, JobRecord> jobs;
  };

  Shard& shard_for(const std::string& id) noexcept;
  const Shard& shard_for(const std::string& id) const noexcept;

  std::array<Shard, kShards> shards_;
};

}  // namespace prop::service
