// Minimal JSON value / parser / writer for the service wire protocol.
//
// The service layer promises byte-identical re-serialization of everything
// the suite itself emits (write_stats_json, the wire formats in wire.h), so
// JsonValue deliberately keeps the *lexeme* of every number instead of a
// decoded double: 64-bit seeds survive above 2^53, "3" stays "3", and a
// precision-17 double round-trips bit-for-bit.  Object member order is
// preserved for the same reason.
//
// Parsing is from untrusted clients: the parser never throws past its API
// (json_parse returns nullopt + a diagnostic), enforces a nesting-depth cap
// and rejects trailing junk.  Strings decode the standard escapes
// (\" \\ \/ \b \f \n \r \t \uXXXX with UTF-8 encoding of non-surrogate code
// points).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace prop::service {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;  // null

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b);
  /// Number from a pre-formed lexeme (must be a valid JSON number).
  static JsonValue number_lexeme(std::string lexeme);
  /// Number from a double, formatted at round-trip precision (17 digits) —
  /// the same formatting write_stats_json uses.
  static JsonValue number(double v);
  static JsonValue number(std::int64_t v);
  static JsonValue number(std::uint64_t v);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }
  bool is_bool() const noexcept { return type_ == Type::kBool; }
  bool is_number() const noexcept { return type_ == Type::kNumber; }
  bool is_string() const noexcept { return type_ == Type::kString; }
  bool is_array() const noexcept { return type_ == Type::kArray; }
  bool is_object() const noexcept { return type_ == Type::kObject; }

  bool as_bool() const noexcept { return bool_; }
  /// The verbatim number token ("3", "0.5", "18446744073709551615").
  const std::string& lexeme() const noexcept { return scalar_; }
  double as_double() const noexcept;
  std::int64_t as_int64() const noexcept;
  std::uint64_t as_uint64() const noexcept;
  const std::string& as_string() const noexcept { return scalar_; }

  const std::vector<JsonValue>& items() const noexcept { return items_; }
  const std::vector<Member>& members() const noexcept { return members_; }

  /// Object lookup (first match); null for non-objects / missing keys.
  const JsonValue* find(std::string_view key) const noexcept;

  // Builders (no-ops on the wrong type, so misuse is inert, not UB).
  void push_back(JsonValue v);
  void set(std::string key, JsonValue v);

  /// Compact serialization: no whitespace, members in insertion order,
  /// numbers emitted as their lexeme, strings escaped exactly like the
  /// stats-JSON writer.
  void write(std::ostream& out) const;
  std::string dump() const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string scalar_;  // number lexeme or string payload
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parses one JSON document occupying the whole of `text` (trailing
/// whitespace allowed).  Returns nullopt and fills `*error` (when non-null)
/// with a "json: ..." diagnostic on malformed input.
std::optional<JsonValue> json_parse(std::string_view text,
                                    std::string* error = nullptr);

/// Escapes quotes, backslashes and control characters — the exact escaping
/// used by write_stats_json, so service output parses back byte-identically.
std::string json_escape(std::string_view s);

/// Round-trip (precision-17) double formatting shared by every service
/// writer.
void json_put_double(std::ostream& out, double v);

}  // namespace prop::service
