#include "service/job_store.h"

namespace prop::service {
namespace {

/// FNV-1a over the job id; same keying scheme for every shard lookup so a
/// given id always maps to the same mutex.
std::size_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

}  // namespace

const char* to_string(JobState state) noexcept {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kShed:
      return "shed";
    case JobState::kInvalid:
      return "invalid";
  }
  return "unknown";
}

JobStore::Shard& JobStore::shard_for(const std::string& id) noexcept {
  return shards_[fnv1a(id) % kShards];
}

const JobStore::Shard& JobStore::shard_for(const std::string& id) const noexcept {
  return shards_[fnv1a(id) % kShards];
}

bool JobStore::try_insert(const std::string& id) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.jobs.emplace(id, JobRecord{}).second;
}

bool JobStore::update(const std::string& id,
                      const std::function<void(JobRecord&)>& fn) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.jobs.find(id);
  if (it == shard.jobs.end()) return false;
  fn(it->second);
  return true;
}

int JobStore::mark_responded(const std::string& id) {
  Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.jobs.find(id);
  if (it == shard.jobs.end()) return 0;
  return ++it->second.responses;
}

std::optional<JobRecord> JobStore::find(const std::string& id) const {
  const Shard& shard = shard_for(id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.jobs.find(id);
  if (it == shard.jobs.end()) return std::nullopt;
  return it->second;
}

std::size_t JobStore::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.jobs.size();
  }
  return total;
}

void JobStore::for_each(const std::function<void(const std::string&,
                                                 const JobRecord&)>& fn) const {
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [id, record] : shard.jobs) fn(id, record);
  }
}

}  // namespace prop::service
