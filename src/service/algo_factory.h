// Name -> Bipartitioner factory shared by prop_cli, prop_serve and the
// service benches, so "which strings name which algorithms" lives in exactly
// one place.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/prop_partitioner.h"
#include "kway/kway_partitioner.h"
#include "partition/partitioner.h"

namespace prop::service {

/// Parses a --gain-engine value; nullopt for unknown names.
std::optional<GainEngine> parse_gain_engine(const std::string& name);

/// Parses a --kway-refiner value (prop, greedy, none); nullopt for unknown.
std::optional<KWayRefinerKind> parse_kway_refiner(const std::string& name);

/// Parses a --kway-objective value (cut, connectivity); nullopt for unknown.
std::optional<KWayObjective> parse_kway_objective(const std::string& name);

/// Builds the partitioner registered under `name` (fm, fm-tree, la2, la3,
/// kl, prop, eig1, melo, paraboli, window); nullptr for unknown names.
/// `gain_engine`, `pass_threads` (PropConfig::pass_threads: 0 = sequential
/// engine, >= 1 = deterministic round engine on that many threads) and
/// `rounds_per_barrier` (PropConfig::rounds_per_barrier, round batching of
/// the round engine) apply to the PROP family only.
std::unique_ptr<Bipartitioner> make_algo(
    const std::string& name, GainEngine gain_engine = GainEngine::kCached,
    int pass_threads = 0, int rounds_per_barrier = 1);

/// Space-separated list of the registered names, for usage/error messages.
const std::string& algo_names();

/// Builds the k-way pipeline (recursive bisection with the `base` 2-way
/// algorithm + the selected k-way refiner) wrapped as a Bipartitioner, so
/// run_many / the service drive k-way jobs through the normal interface.
/// nullptr when `base` is unknown.  k must be in [2, 256].
/// `pass_threads` / `rounds_per_barrier` reach both the 2-way bisections
/// and the native k-way PROP polish (KWayPropConfig mirrors PropConfig).
std::unique_ptr<Bipartitioner> make_kway_algo(
    const std::string& base, NodeId k,
    KWayRefinerKind refiner = KWayRefinerKind::kProp,
    KWayObjective objective = KWayObjective::kConnectivity,
    GainEngine gain_engine = GainEngine::kCached, int pass_threads = 0,
    int rounds_per_barrier = 1);

}  // namespace prop::service
