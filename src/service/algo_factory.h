// Name -> Bipartitioner factory shared by prop_cli, prop_serve and the
// service benches, so "which strings name which algorithms" lives in exactly
// one place.
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/prop_partitioner.h"
#include "partition/partitioner.h"

namespace prop::service {

/// Parses a --gain-engine value; nullopt for unknown names.
std::optional<GainEngine> parse_gain_engine(const std::string& name);

/// Builds the partitioner registered under `name` (fm, fm-tree, la2, la3,
/// kl, prop, eig1, melo, paraboli, window); nullptr for unknown names.
/// `gain_engine` and `pass_threads` (PropConfig::pass_threads: 0 =
/// sequential engine, >= 1 = deterministic round engine on that many
/// threads) apply to the PROP family only.
std::unique_ptr<Bipartitioner> make_algo(
    const std::string& name, GainEngine gain_engine = GainEngine::kCached,
    int pass_threads = 0);

/// Space-separated list of the registered names, for usage/error messages.
const std::string& algo_names();

}  // namespace prop::service
