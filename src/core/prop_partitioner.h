// PROP — the PRObabilistic Partitioner (paper Fig. 2).
//
// An FM-style pass engine that *selects* moves by probabilistic gain
// (prob_gain.h) while *accepting* the maximum prefix of deterministic
// immediate gains, so every accepted pass is a true cut improvement.  Node
// gains live in the AVL tree; after each move the mover's neighbors and the
// top few nodes of each side get fresh gains and probabilities (Sec. 3.4).
#pragma once

#include <cstdint>
#include <string>

#include "core/prop_config.h"
#include "partition/partition.h"
#include "partition/partitioner.h"

namespace prop {

/// Improves `part` in place with PROP passes until no positive gain.
RefineOutcome prop_refine(Partition& part, const BalanceConstraint& balance,
                          const PropConfig& config = {});

class PropPartitioner final : public Bipartitioner {
 public:
  explicit PropPartitioner(PropConfig config = {}) : config_(config) {
    config_.model.validate();
  }

  std::string name() const override { return "PROP"; }

  bool attach_telemetry(RefineTelemetry* telemetry) noexcept override {
    config_.telemetry = telemetry;
    return true;
  }

  bool attach_context(const RunContext* context) noexcept override {
    config_.context = context;
    return true;
  }

  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

  std::unique_ptr<Bipartitioner> clone() const override {
    auto copy = std::make_unique<PropPartitioner>(config_);
    copy->attach_telemetry(nullptr);
    copy->attach_context(nullptr);
    return copy;
  }

  const PropConfig& config() const noexcept { return config_; }

 private:
  PropConfig config_;
};

}  // namespace prop
