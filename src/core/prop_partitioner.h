// PROP — the PRObabilistic Partitioner (paper Fig. 2).
//
// An FM-style pass engine that *selects* moves by probabilistic gain
// (prob_gain.h) while *accepting* the maximum prefix of deterministic
// immediate gains, so every accepted pass is a true cut improvement.  Node
// gains live in the AVL tree; after each move the mover's neighbors and the
// top few nodes of each side get fresh gains and probabilities (Sec. 3.4).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/prob_gain.h"
#include "core/prop_config.h"
#include "datastruct/avl_tree.h"
#include "partition/partition.h"
#include "partition/partitioner.h"
#include "util/thread_pool.h"

namespace prop {

/// Improves `part` in place with PROP passes until no positive gain.
RefineOutcome prop_refine(Partition& part, const BalanceConstraint& balance,
                          const PropConfig& config = {});

/// Reusable PROP pass engine.  Owns the gain calculator, the per-side AVL
/// trees and every per-pass scratch vector (gains, deltas, move log, visit
/// stamps), so repeated passes allocate nothing after construction — the
/// gain-kernel microbenchmark asserts exactly that.  `part`, `balance` and
/// `config` must outlive the refiner.  prop_refine() is the convenience
/// wrapper that adds the pass loop and the deterministic-FM fallback.
class PropRefiner {
 public:
  PropRefiner(Partition& part, const BalanceConstraint& balance,
              const PropConfig& config);

  /// Runs one PROP pass (steps 3-10 of Fig. 2): bootstrap probabilities,
  /// speculatively move every feasible node by probabilistic gain, roll
  /// back to the maximum prefix of immediate gains.  Returns the accepted
  /// improvement.  Dispatches to the sequential move-by-move engine
  /// (PropConfig::pass_threads == 0) or the deterministic round engine
  /// (pass_threads >= 1, DESIGN §4i).
  double run_pass(PassStats* stats = nullptr);

  /// Deadline/cancellation stopped the last pass early (sticky).
  bool interrupted() const noexcept { return interrupted_; }
  /// The drift degradation chain gave up on probabilistic gains (sticky);
  /// the caller should finish with deterministic FM.
  bool fallback_to_fm() const noexcept { return fallback_to_fm_; }
  /// Emergency resyncs performed across all passes of this refiner.
  int emergency_resyncs() const noexcept { return emergency_resyncs_; }

  const ProbGainCalculator& calculator() const noexcept { return calc_; }

 private:
  using GainTree = AvlTree<double>;

  double run_sequential_pass(PassStats* stats);
  double run_round_pass(PassStats* stats);
  void bootstrap_probabilities();
  /// Round-engine bootstrap: same fixed point as bootstrap_probabilities,
  /// but via bulk staging + partitioned product rebuilds + node-major
  /// parallel gain sweeps, so the result is byte-identical for any thread
  /// count.  Leaves gains_ filled.
  void bootstrap_probabilities_parallel();
  /// Expands the calculator's dirty nets into sweep_nodes_ — the sorted,
  /// duplicate-free list of free nodes incident to a net whose gain inputs
  /// changed since the previous sweep — and consumes the dirty set.
  /// Returns false (sweep everything) from the all-dirty state.
  bool collect_sweep_nodes();
  /// Parallel node-major sweep: gains_[u] = calc_.gain(u) for every node
  /// (locked nodes read 0).  Disjoint writes against a read-only snapshot.
  void parallel_gain_sweep(ThreadPool* pool);
  /// The active-set variant: recomputes gains_ of sweep_nodes_ only.  Every
  /// other node's stored gain is still bitwise current (none of its nets
  /// changed), so the combined gains_ array equals a full sweep's exactly.
  void parallel_gain_sweep_dirty(ThreadPool* pool);
  /// Stages p(u) = f(gains_[u]) — for every free node, or for sweep_nodes_
  /// only when `dirty_only` (unswept nodes would restage unchanged bits) —
  /// then rebuilds the stale cached (net, side) products by partitioned
  /// per-net reduction: all nets in the all-dirty state, else exactly the
  /// dirty ones (a clean net's stored product already equals its exact
  /// recompute, so skipping it is an identity).
  void stage_probabilities_and_rebuild(ThreadPool* pool, bool dirty_only);
  void refresh_node(NodeId v, PassStats* stats);
  void resync_gains(PassStats* stats);
  double audit(PassStats* stats, bool expect_scratch_match) const;

  Partition* part_;
  const BalanceConstraint* balance_;
  const PropConfig* config_;
  ProbGainCalculator calc_;
  GainTree side0_;
  GainTree side1_;

  // Per-pass workspace, cleared and reused across passes instead of
  // reallocated (perf: the bootstrap + move loop must be allocation-free).
  std::vector<double> gains_;
  std::vector<double> delta_;
  std::vector<NodeId> moved_;
  std::vector<NodeId> to_refresh_;
  std::vector<std::uint32_t> visit_stamp_;
  // Pass-start (gain, node) staging for the sorted bulk load of the trees.
  std::vector<std::pair<double, NodeId>> sort_scratch_[2];
  std::uint32_t stamp_ = 0;

  // Round-engine state (pass_threads >= 1 only; empty/null otherwise).
  // pass_pool_ holds pass_threads - 1 workers — the calling thread runs the
  // first chunk of every parallel_for — or stays null at pass_threads == 1,
  // the serial reference execution.
  std::unique_ptr<ThreadPool> pass_pool_;
  std::vector<std::pair<double, NodeId>> round_order_;
  std::vector<std::uint32_t> net_stamp_;
  std::uint32_t round_stamp_ = 0;
  // Active-set sweep list (DESIGN §4k), filled by collect_sweep_nodes.
  std::vector<NodeId> sweep_nodes_;
  // Still-free nodes, compacted in place each round so candidate
  // collection is O(free) rather than O(n).  Order is irrelevant to the
  // candidate heap (pop order depends only on the values), but compaction
  // is stable anyway.
  std::vector<NodeId> free_candidates_;

  bool interrupted_ = false;
  bool fallback_to_fm_ = false;
  int emergency_resyncs_ = 0;
};

class PropPartitioner final : public Bipartitioner {
 public:
  explicit PropPartitioner(PropConfig config = {}) : config_(config) {
    config_.model.validate();
  }

  std::string name() const override { return "PROP"; }

  bool attach_telemetry(RefineTelemetry* telemetry) noexcept override {
    config_.telemetry = telemetry;
    return true;
  }

  bool attach_context(const RunContext* context) noexcept override {
    config_.context = context;
    return true;
  }

  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

  std::unique_ptr<Bipartitioner> clone() const override {
    auto copy = std::make_unique<PropPartitioner>(config_);
    copy->attach_telemetry(nullptr);
    copy->attach_context(nullptr);
    return copy;
  }

  const PropConfig& config() const noexcept { return config_; }

 private:
  PropConfig config_;
};

}  // namespace prop
