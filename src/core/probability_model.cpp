#include "core/probability_model.h"

// Header-only; anchors the translation unit.
namespace prop {}
