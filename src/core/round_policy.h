// Shared policy constants of the deterministic round engines (DESIGN §4i):
// the 2-way PropRefiner round pass and the k-way round pass use the same
// commit cap so their schedules degrade identically with instance size.
#pragma once

#include <cmath>
#include <cstddef>

namespace prop {

/// Per-round commit cap for the round engines: at most ~sqrt(free)/3 moves
/// commit per round.  Whole-snapshot commits are maximally parallel but
/// order moves far worse than the sequential engine's adaptive best-first
/// selection: a committed move invalidates the snapshot gains of its
/// neighborhood, so good follow-up moves end up interleaved with the
/// round's bad tail in the prefix order, which best-prefix rollback cannot
/// separate (measured: ~2x worse mean cut with unbounded rounds).  The
/// quality-neutral cap grows sublinearly with instance size (~8 at 800
/// nodes, ~32 at 10^4 — steep degradation past ~4x those), which sqrt(n)/3
/// tracks on both scales.  The cap depends only on the candidate count —
/// never on scheduling — so determinism is preserved; std::sqrt on exact
/// small integers is correctly rounded and platform-stable.
inline std::size_t round_commit_cap(std::size_t candidates) {
  const auto cap =
      static_cast<std::size_t>(std::sqrt(static_cast<double>(candidates)) / 3.0);
  return cap < 1 ? 1 : cap;
}

}  // namespace prop
