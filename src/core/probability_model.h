// Gain -> probability mapping (paper Sec. 3.2).
//
// p(u) = f(g(u)) must be monotonically increasing, capped to
// [pmin, pmax] with 0 < pmin and pmax <= 1, and saturate at gain
// thresholds glo/gup: nodes with gain >= gup will "ultimately be moved no
// matter what" (p = pmax) and nodes below glo will almost surely stay
// (p = pmin).  The paper's experiments use the linear function with
// pinit = pmax = 0.95, pmin = 0.4, gup = 1, glo = -1.
#pragma once

#include <stdexcept>

namespace prop {

struct ProbabilityModel {
  double pinit = 0.95;  ///< blind initial probability (bootstrap method 1)
  double pmax = 0.95;
  double pmin = 0.4;
  double gup = 1.0;
  double glo = -1.0;

  /// Throws std::invalid_argument on an inconsistent configuration.
  void validate() const {
    if (!(pmin > 0.0)) throw std::invalid_argument("prob model: pmin must be > 0");
    if (!(pmax <= 1.0)) throw std::invalid_argument("prob model: pmax must be <= 1");
    if (!(pmin <= pmax)) throw std::invalid_argument("prob model: pmin <= pmax");
    if (!(glo < gup)) throw std::invalid_argument("prob model: glo < gup");
    if (!(pinit >= pmin && pinit <= pmax)) {
      throw std::invalid_argument("prob model: pinit in [pmin, pmax]");
    }
  }

  /// Linear interpolation between (glo, pmin) and (gup, pmax), clamped.
  double from_gain(double gain) const noexcept {
    if (gain >= gup) return pmax;
    if (gain <= glo) return pmin;
    return pmin + (gain - glo) / (gup - glo) * (pmax - pmin);
  }
};

}  // namespace prop
