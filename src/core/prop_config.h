// Configuration of the PROP partitioner (paper Secs. 3 and 4).
#pragma once

#include "core/probability_model.h"
#include "telemetry/telemetry.h"

namespace prop {

/// How initial node probabilities are obtained at the start of a pass
/// (paper Sec. 3: "one of two ways").
enum class PropBootstrap {
  /// Method 1: every node starts at pinit ("blind" assignment).  This is
  /// the setting used for the paper's experiments (pinit = 0.95).
  kUniform,
  /// Method 2: p(u) = f(deterministic FM gain of u) — "reasonable
  /// first-cut probability estimates".
  kDeterministicGain,
};

struct PropConfig {
  ProbabilityModel model;  ///< defaults are the paper's Table 2/3 settings
  PropBootstrap bootstrap = PropBootstrap::kUniform;

  /// Gain/probability fixed-point iterations at pass start ("we have used
  /// 2 iterations in our implementations", Sec. 3).
  int refine_iterations = 2;

  /// Number of top-ranked nodes per side whose gains are recomputed after
  /// every move ("a few, say, five, of the top ranked nodes", Sec. 3.4).
  int top_update_width = 5;

  int max_passes = 64;

  /// Opt-in per-pass trajectory recording; null records nothing.
  RefineTelemetry* telemetry = nullptr;

  /// Debug auditor cadence: every `audit_interval` moves the pass verifies
  /// the exact incremental invariants from scratch — per-(net, side) locked
  /// pin counts, tree keys == gains[], probability bounds, cut cost — and
  /// throws std::logic_error on a mismatch beyond `audit_tolerance`.  The
  /// gap between gains[] and a from-scratch ProbGainCalculator recompute is
  /// *recorded* as PassStats::max_gain_drift (it mixes FP drift with the
  /// deliberate staleness of the paper's Sec. 3.4 update policy); it is
  /// hard-asserted only immediately after a resync, where exact agreement
  /// is guaranteed.  0 = off.
  int audit_interval = 0;
  double audit_tolerance = 1e-6;

  /// Every `resync_interval` moves, recompute gains[] of all free nodes
  /// from scratch (probabilities are left to the normal per-move updates),
  /// bounding incremental drift.  0 = off (the paper's plain scheme).
  int resync_interval = 0;
};

}  // namespace prop
