// Configuration of the PROP partitioner (paper Secs. 3 and 4).
#pragma once

#include "core/prob_gain.h"
#include "core/probability_model.h"
#include "runtime/run_context.h"
#include "telemetry/telemetry.h"

namespace prop {

/// How initial node probabilities are obtained at the start of a pass
/// (paper Sec. 3: "one of two ways").
enum class PropBootstrap {
  /// Method 1: every node starts at pinit ("blind" assignment).  This is
  /// the setting used for the paper's experiments (pinit = 0.95).
  kUniform,
  /// Method 2: p(u) = f(deterministic FM gain of u) — "reasonable
  /// first-cut probability estimates".
  kDeterministicGain,
};

struct PropConfig {
  ProbabilityModel model;  ///< defaults are the paper's Table 2/3 settings
  PropBootstrap bootstrap = PropBootstrap::kUniform;

  /// Gain/probability fixed-point iterations at pass start ("we have used
  /// 2 iterations in our implementations", Sec. 3).
  int refine_iterations = 2;

  /// Which product engine backs the probabilistic gains (DESIGN.md
  /// Sec. 4f).  kCached is the production path: O(1) incremental
  /// per-(net, side) products, a net-major bootstrap sweep, and epoch
  /// renormalization bounding FP drift.  kScratch recomputes every product
  /// by pin iteration — the pre-cache cost model, kept as the audit oracle
  /// and the benchmark baseline (bench/gain_kernels).  kShadow answers
  /// every query through the scratch path while maintaining and
  /// cross-checking the cache: a shadow run reproduces the scratch run's
  /// cuts exactly, which is how engine equivalence is asserted
  /// (tests/integration/engine_equivalence_test.cpp).
  GainEngine gain_engine = GainEngine::kCached;

  /// Renormalization epoch of the cached engine: every (net, side) product
  /// is recomputed exactly after this many incremental updates (see
  /// ProbGainCalculator::kDefaultRenormInterval).  The resulting drift
  /// bound composes with resync_interval and drift_hard_bound below —
  /// product drift feeds gain drift, which the audit/resync machinery
  /// already polices.
  int renorm_interval = ProbGainCalculator::kDefaultRenormInterval;

  /// Number of top-ranked nodes per side whose gains are recomputed after
  /// every move ("a few, say, five, of the top ranked nodes", Sec. 3.4).
  int top_update_width = 5;

  int max_passes = 64;

  /// Intra-pass parallelism (DESIGN.md §4i).  0 — the default — runs the
  /// classic sequential move-by-move engine of Fig. 2, byte-for-byte
  /// unchanged.  N >= 1 switches to the deterministic round-based engine:
  /// each round every free node's probabilistic gain is computed
  /// concurrently against a read-only snapshot of the cached products, a
  /// deterministic conflict-resolution walk (gain-ordered, id tie-broken,
  /// balance-prefix-feasible, net-disjoint) commits a compatible subset of
  /// moves, and the product cache is rebuilt by partitioned per-net
  /// reduction.  N = 1 is the serial reference execution of that engine —
  /// the oracle — and every N >= 2 runs the same rounds on N threads
  /// (1 owned pool of N-1 workers + the calling thread) producing
  /// byte-identical partitions and stats for any N.  Note the round engine
  /// is a different (synchronous) schedule from the sequential engine, so
  /// its cuts legitimately differ from pass_threads = 0.
  int pass_threads = 0;

  /// Round batching for the round engine (DESIGN §4k): the worker pool is
  /// only engaged on every `rounds_per_barrier`-th round; the rounds in
  /// between run inline on the calling thread, skipping the fork/join
  /// barriers that dominate on small instances.  Chunking never affects
  /// any computed value, so output stays byte-identical for every setting.
  /// 1 (default) keeps the one-barrier-per-round schedule; ignored when
  /// pass_threads == 0.
  int rounds_per_barrier = 1;

  /// Debug/bench reference mode for the round engine (DESIGN §4k): forces
  /// every round to sweep gains of ALL free nodes and rebuild ALL nets —
  /// the pre-active-set schedule — instead of only those incident to nets
  /// dirtied since the previous round.  Output is byte-identical either
  /// way (the active-set sweep is an exact-identity optimization); this
  /// knob exists so benches and property tests can measure and assert
  /// that.  Ignored when pass_threads == 0.
  bool full_sweep_rounds = false;

  /// Opt-in per-pass trajectory recording; null records nothing.
  RefineTelemetry* telemetry = nullptr;

  /// Debug auditor cadence: every `audit_interval` moves the pass verifies
  /// the exact incremental invariants from scratch — per-(net, side) locked
  /// pin counts, tree keys == gains[], probability bounds, cut cost — and
  /// throws std::logic_error on a mismatch beyond `audit_tolerance`.  The
  /// gap between gains[] and a from-scratch ProbGainCalculator recompute is
  /// *recorded* as PassStats::max_gain_drift (it mixes FP drift with the
  /// deliberate staleness of the paper's Sec. 3.4 update policy); it is
  /// hard-asserted only immediately after a resync, where exact agreement
  /// is guaranteed.  0 = off.
  int audit_interval = 0;
  double audit_tolerance = 1e-6;

  /// Every `resync_interval` moves, recompute gains[] of all free nodes
  /// from scratch (probabilities are left to the normal per-move updates),
  /// bounding incremental drift.  0 = off (the paper's plain scheme).
  int resync_interval = 0;

  /// Optional runtime context: the move loop polls for deadline expiry /
  /// injected cancellation (stopping mid-pass with the usual best-prefix
  /// rollback), and the prop-drift fault site can force the degradation
  /// chain below.  Null = inert.
  const RunContext* context = nullptr;

  /// Degradation chain for probabilistic-gain drift.  When an audit
  /// observes max |incremental - scratch| drift above this bound (or the
  /// prop-drift fault fires), the pass performs an *emergency resync* of
  /// gains[] — the same sweep as resync_interval, just demand-driven.
  /// After `max_emergency_resyncs` of those in one refine call the
  /// probabilistic bookkeeping is deemed untrustworthy: the current pass is
  /// rolled back to its best prefix and refinement finishes with
  /// deterministic FM passes instead.  <= 0 disables the drift check
  /// (injection still works).
  double drift_hard_bound = 1e-3;
  int max_emergency_resyncs = 3;
};

}  // namespace prop
