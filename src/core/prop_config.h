// Configuration of the PROP partitioner (paper Secs. 3 and 4).
#pragma once

#include "core/probability_model.h"

namespace prop {

/// How initial node probabilities are obtained at the start of a pass
/// (paper Sec. 3: "one of two ways").
enum class PropBootstrap {
  /// Method 1: every node starts at pinit ("blind" assignment).  This is
  /// the setting used for the paper's experiments (pinit = 0.95).
  kUniform,
  /// Method 2: p(u) = f(deterministic FM gain of u) — "reasonable
  /// first-cut probability estimates".
  kDeterministicGain,
};

struct PropConfig {
  ProbabilityModel model;  ///< defaults are the paper's Table 2/3 settings
  PropBootstrap bootstrap = PropBootstrap::kUniform;

  /// Gain/probability fixed-point iterations at pass start ("we have used
  /// 2 iterations in our implementations", Sec. 3).
  int refine_iterations = 2;

  /// Number of top-ranked nodes per side whose gains are recomputed after
  /// every move ("a few, say, five, of the top ranked nodes", Sec. 3.4).
  int top_update_width = 5;

  int max_passes = 64;
};

}  // namespace prop
