#include "core/prob_gain.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace prop {

const char* to_string(GainEngine engine) noexcept {
  switch (engine) {
    case GainEngine::kCached:
      return "cached";
    case GainEngine::kScratch:
      return "scratch";
    case GainEngine::kShadow:
      return "shadow";
  }
  return "?";
}

ProbGainCalculator::ProbGainCalculator(const Partition& part, GainEngine engine,
                                       int renorm_interval)
    : part_(&part),
      engine_(engine),
      renorm_interval_(renorm_interval < 1 ? 1 : renorm_interval) {
  reset();
}

void ProbGainCalculator::reset() {
  const Hypergraph& g = part_->graph();
  p_.assign(g.num_nodes(), 0.0);
  locked_.assign(g.num_nodes(), 0);
  locked_pins_.assign(2 * g.num_nets(), 0);
  if (maintains_cache()) {
    // Everything is free with p = 0, so each side's product is an empty
    // product of nonzero factors (1) and the zero counter is the side's
    // full pin count.
    prod_.assign(2 * g.num_nets(), 1.0);
    zero_free_.resize(2 * g.num_nets());
    updates_.assign(2 * g.num_nets(), 0);
    recip_.assign(g.num_nodes(), 0.0);
    for (NetId n = 0; n < g.num_nets(); ++n) {
      zero_free_[2 * n] = part_->pins_on_side(n, 0);
      zero_free_[2 * n + 1] = part_->pins_on_side(n, 1);
    }
  }
  mark_all_dirty();
}

void ProbGainCalculator::set_dirty_tracking(bool on) {
  if (on && !track_dirty_) {
    const Hypergraph& g = part_->graph();
    net_dirty_.assign(g.num_nets(), 0);
    staged_changed_.assign(g.num_nodes(), 0);
    dirty_nets_.clear();
    dirty_nets_.reserve(g.num_nets());
    all_dirty_ = true;
  }
  track_dirty_ = on;
}

void ProbGainCalculator::clear_dirty() {
  for (const NetId n : dirty_nets_) net_dirty_[n] = 0;
  dirty_nets_.clear();
  all_dirty_ = false;
}

void ProbGainCalculator::mark_all_dirty() {
  if (!track_dirty_) return;
  for (const NetId n : dirty_nets_) net_dirty_[n] = 0;
  dirty_nets_.clear();
  std::fill(staged_changed_.begin(), staged_changed_.end(), 0);
  all_dirty_ = true;
}

void ProbGainCalculator::mark_nets_of(NodeId u) {
  if (!track_dirty_ || all_dirty_) return;
  for (const NetId n : part_->graph().nets_of(u)) mark_net(n);
}

void ProbGainCalculator::note_staged_changes(const NodeId* nodes,
                                             std::size_t count) {
  if (!track_dirty_) return;
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId u = nodes[i];
    if (staged_changed_[u]) {
      staged_changed_[u] = 0;
      mark_nets_of(u);
    }
  }
}

void ProbGainCalculator::note_staged_changes_all() {
  if (!track_dirty_) return;
  const NodeId nodes = part_->graph().num_nodes();
  for (NodeId u = 0; u < nodes; ++u) {
    if (staged_changed_[u]) {
      staged_changed_[u] = 0;
      mark_nets_of(u);
    }
  }
}

void ProbGainCalculator::scratch_side(NetId n, int s, double& prod,
                                      std::uint32_t& zeros) const {
  prod = 1.0;
  zeros = 0;
  for (const NodeId v : part_->graph().pins_of(n)) {
    if (locked_[v] || part_->side(v) != s) continue;
    if (p_[v] == 0.0) {
      ++zeros;
    } else {
      prod *= p_[v];
    }
  }
}

void ProbGainCalculator::renormalize_side(NetId n, int s) {
  scratch_side(n, s, prod_[2 * n + s], zero_free_[2 * n + s]);
  updates_[2 * n + s] = 0;
}

void ProbGainCalculator::renormalize_all() {
  // Every cached product may pick up new bits, so per-net deltas are
  // meaningless: the next sweep has to be full.
  mark_all_dirty();
  if (!maintains_cache()) return;
  const NetId nets = part_->graph().num_nets();
  for (NetId n = 0; n < nets; ++n) {
    renormalize_side(n, 0);
    renormalize_side(n, 1);
  }
}

void ProbGainCalculator::update_factor(NetId n, int s, double old_p,
                                       double old_r, double new_p) {
  const std::size_t slot = 2 * n + s;
  if (old_p == 0.0) {
    --zero_free_[slot];
  } else {
    prod_[slot] *= old_r;  // remove the old factor: multiply by 1/old_p
  }
  if (new_p == 0.0) {
    ++zero_free_[slot];
  } else {
    prod_[slot] *= new_p;
  }
  // Epoch renormalization: bound drift after renorm_interval_ incremental
  // updates, and rescue a product that left the sane-magnitude window (the
  // !(a && b) form also catches NaN).
  const double prod = prod_[slot];
  if (static_cast<int>(++updates_[slot]) >= renorm_interval_ ||
      !(prod >= kRenormMagLo && prod <= kRenormMagHi)) {
    renormalize_side(n, s);
  }
}

void ProbGainCalculator::set_probability(NodeId u, double p) {
  if (locked_[u]) throw std::logic_error("prob gain: node is locked");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("prob gain: p out of [0,1]");
  const double old_p = p_[u];
  if (p != old_p) mark_nets_of(u);
  // Commit the node's new state before touching the per-net cache: an epoch
  // renormalization firing inside update_factor recomputes from p_/locked_,
  // which must already describe the post-update world.
  p_[u] = p;
  if (maintains_cache()) {
    const double old_r = recip_[u];
    recip_[u] = p == 0.0 ? 0.0 : 1.0 / p;
    if (p != old_p) {
      const int s = part_->side(u);
      for (const NetId n : part_->graph().nets_of(u)) {
        update_factor(n, s, old_p, old_r, p);
      }
    }
  }
}

void ProbGainCalculator::lock(NodeId u) {
  if (locked_[u]) throw std::logic_error("prob gain: node already locked");
  const int s = part_->side(u);
  const double old_p = p_[u];
  mark_nets_of(u);
  // As in set_probability: flag the lock first so a renormalization inside
  // update_factor already excludes u from the free products.
  locked_[u] = 1;
  p_[u] = 0.0;
  if (maintains_cache()) {
    const double old_r = recip_[u];
    recip_[u] = 0.0;
    for (const NetId n : part_->graph().nets_of(u)) {
      ++locked_pins_[2 * n + s];
      // Remove u's factor from the side's free product (a locked pin no
      // longer participates); the 1.0 "new factor" is the identity.
      update_factor(n, s, old_p, old_r, 1.0);
    }
  } else {
    for (const NetId n : part_->graph().nets_of(u)) {
      ++locked_pins_[2 * n + s];
    }
  }
}

void ProbGainCalculator::stage_probability(NodeId u, double p) {
  if (locked_[u]) throw std::logic_error("prob gain: node is locked");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("prob gain: p out of [0,1]");
  // Per-node changed flag, set before the write: distinct nodes touch
  // distinct slots, so concurrent staging stays race-free, and a later
  // sequential note_staged_changes folds the flags into the dirty set.
  if (track_dirty_ && p != p_[u]) staged_changed_[u] = 1;
  p_[u] = p;
  if (maintains_cache()) {
    recip_[u] = p == 0.0 ? 0.0 : 1.0 / p;
  }
}

void ProbGainCalculator::rebuild_products(NetId begin, NetId end) {
  if (!maintains_cache()) return;
  for (NetId n = begin; n < end; ++n) {
    renormalize_side(n, 0);
    renormalize_side(n, 1);
  }
}

void ProbGainCalculator::rebuild_products_for(const NetId* nets,
                                              std::size_t begin,
                                              std::size_t end) {
  if (!maintains_cache()) return;
  for (std::size_t i = begin; i < end; ++i) {
    renormalize_side(nets[i], 0);
    renormalize_side(nets[i], 1);
  }
}

void ProbGainCalculator::apply_moves(Partition& part, const NodeId* movers,
                                     std::size_t count) {
  if (&part != part_) {
    throw std::logic_error("prob gain: apply_moves on a foreign partition");
  }
  const Hypergraph& g = part.graph();
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId u = movers[i];
    if (locked_[u]) throw std::logic_error("prob gain: mover already locked");
    const int from = part.side(u);
    mark_nets_of(u);
    part.move(u);
    locked_[u] = 1;
    p_[u] = 0.0;
    if (maintains_cache()) recip_[u] = 0.0;
    // lock() would add u to locked_pins_[from] and move_locked() would then
    // shift it to the destination; batched, only the destination increment
    // survives.  Products are left stale for the caller's rebuild.
    for (const NetId n : g.nets_of(u)) {
      ++locked_pins_[2 * n + (1 - from)];
    }
  }
}

void ProbGainCalculator::move_locked(NodeId u, int from_side) {
  if (!locked_[u]) throw std::logic_error("prob gain: moved node must be locked");
  mark_nets_of(u);
  // Locked pins are outside every free product, so only the locked-pin
  // table moves sides.
  for (const NetId n : part_->graph().nets_of(u)) {
    --locked_pins_[2 * n + from_side];
    ++locked_pins_[2 * n + (1 - from_side)];
  }
}

void ProbGainCalculator::audit_consistency() const {
  const Hypergraph& g = part_->graph();
  std::vector<std::uint32_t> recount(2 * g.num_nets(), 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (locked_[u]) {
      if (p_[u] != 0.0) {
        throw std::logic_error("prob gain audit: locked node with p != 0");
      }
      const int s = part_->side(u);
      for (const NetId n : g.nets_of(u)) ++recount[2 * n + s];
    } else if (p_[u] < 0.0 || p_[u] > 1.0) {
      throw std::logic_error("prob gain audit: free probability out of [0,1]");
    }
  }
  if (recount != locked_pins_) {
    throw std::logic_error(
        "prob gain audit: locked-pin counts diverged from scratch recount");
  }
  if (!maintains_cache()) return;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const double want = p_[u] == 0.0 ? 0.0 : 1.0 / p_[u];
    if (recip_[u] != want) {
      throw std::logic_error(
          "prob gain audit: cached reciprocal out of sync with p");
    }
  }
  for (NetId n = 0; n < g.num_nets(); ++n) {
    for (int s = 0; s < 2; ++s) {
      double prod;
      std::uint32_t zeros;
      scratch_side(n, s, prod, zeros);
      if (zeros != zero_free_[2 * n + s]) {
        std::ostringstream msg;
        msg << "prob gain audit: zero-factor counter diverged (net " << n
            << " side " << s << "): cached " << zero_free_[2 * n + s]
            << " vs recount " << zeros;
        throw std::logic_error(msg.str());
      }
      const double cached = prod_[2 * n + s];
      if (!(std::abs(cached - prod) <= kProductAuditTol)) {
        std::ostringstream msg;
        msg << "prob gain audit: cached product drifted (net " << n
            << " side " << s << "): cached " << cached << " vs scratch "
            << prod;
        throw std::logic_error(msg.str());
      }
    }
  }
}

double ProbGainCalculator::max_product_drift() const {
  if (!maintains_cache()) return 0.0;
  double max_abs = 0.0;
  const NetId nets = part_->graph().num_nets();
  for (NetId n = 0; n < nets; ++n) {
    for (int s = 0; s < 2; ++s) {
      double prod;
      std::uint32_t zeros;
      scratch_side(n, s, prod, zeros);
      const double d = std::abs(prod_[2 * n + s] - prod);
      if (d > max_abs) max_abs = d;
    }
  }
  return max_abs;
}

double ProbGainCalculator::removal_probability(NetId n, int to) const {
  const int from = 1 - to;
  if (side_locked(n, from)) return 0.0;
  const double cached =
      maintains_cache() && zero_free_[2 * n + from] == 0
          ? prod_[2 * n + from]
          : 0.0;
  if (engine_ == GainEngine::kCached) return cached;
  double prod = 1.0;
  for (const NodeId v : part_->graph().pins_of(n)) {
    if (part_->side(v) == from) prod *= p_[v];
  }
  if (engine_ == GainEngine::kShadow &&
      !(std::abs(cached - prod) <= kProductAuditTol)) {
    std::ostringstream msg;
    msg << "prob gain shadow: removal probability diverged (net " << n
        << " to " << to << "): cached " << cached << " vs scratch " << prod;
    throw std::logic_error(msg.str());
  }
  return prod;
}

double ProbGainCalculator::net_gain(NodeId u, NetId n) const {
  const Partition& part = *part_;
  const double c = part.graph().net_cost(n);
  const int a = part.side(u);
  const int b = 1 - a;

  // Product of p over free A-side pins other than u; 0 if A holds a locked
  // pin (the net then can never leave A this pass).
  double prod_a = 1.0;
  bool a_blocked = side_locked(n, a);
  double prod_b = 1.0;
  const bool b_blocked = side_locked(n, b);
  for (const NodeId v : part.graph().pins_of(n)) {
    if (v == u) continue;
    if (part.side(v) == a) {
      prod_a *= p_[v];  // locked pins have p = 0, blocking the product too
    } else {
      prod_b *= p_[v];
    }
  }
  if (a_blocked) prod_a = 0.0;
  if (b_blocked) prod_b = 0.0;

  if (part.is_cut(n)) {
    // Eqn. 3: moving u helps complete the A->B evacuation and precludes the
    // B->A one.
    return c * (prod_a - prod_b);
  }
  // Net lies entirely on u's side (it contains u).  Eqn. 4: moving u cuts
  // it; it stays cut unless everyone else follows.
  return -c * (1.0 - prod_a);
}

double ProbGainCalculator::scratch_gain(NodeId u) const {
  double total = 0.0;
  for (const NetId n : part_->graph().nets_of(u)) {
    total += net_gain(u, n);
  }
  return total;
}

double ProbGainCalculator::cached_gain(NodeId u) const {
  const Partition& part = *part_;
  const Hypergraph& g = part.graph();
  const int a = part.side(u);
  const int b = 1 - a;
  const double pu = p_[u];
  const double ru = recip_[u];
  double total = 0.0;
  for (const NetId n : g.nets_of(u)) {
    const bool a_blocked = side_locked(n, a);
    // Frozen net (locked pins on both sides): pinned in the cut with both
    // removal products 0 — contributes exactly nothing.
    if (a_blocked && side_locked(n, b)) continue;
    const double c = g.net_cost(n);
    double prod_a_excl;
    if (a_blocked) {
      prod_a_excl = 0.0;
    } else {
      const std::uint32_t zeros_a = zero_free_[2 * n + a];
      if (pu == 0.0) {
        prod_a_excl = zeros_a > 1 ? 0.0 : prod_[2 * n + a];
      } else {
        prod_a_excl = zeros_a > 0 ? 0.0 : prod_[2 * n + a] * ru;
      }
    }
    if (part.is_cut(n)) {
      const double prod_b = (side_locked(n, b) || zero_free_[2 * n + b] > 0)
                                ? 0.0
                                : prod_[2 * n + b];
      total += c * (prod_a_excl - prod_b);
    } else {
      total += -c * (1.0 - prod_a_excl);
    }
  }
  return total;
}

double ProbGainCalculator::gain(NodeId u) const {
  switch (engine_) {
    case GainEngine::kCached:
      return cached_gain(u);
    case GainEngine::kScratch:
      return scratch_gain(u);
    case GainEngine::kShadow:
      break;
  }
  // Shadow: answer from scratch so the trajectory is identical to the
  // scratch engine's, but cross-check the cache on every query.
  const double scratch = scratch_gain(u);
  const double cached = cached_gain(u);
  if (!(std::abs(cached - scratch) <= kProductAuditTol)) {
    std::ostringstream msg;
    msg << "prob gain shadow: gain diverged (node " << u << "): cached "
        << cached << " vs scratch " << scratch;
    throw std::logic_error(msg.str());
  }
  return scratch;
}

}  // namespace prop
