#include "core/prob_gain.h"

#include <stdexcept>

namespace prop {

ProbGainCalculator::ProbGainCalculator(const Partition& part) : part_(&part) {
  reset();
}

void ProbGainCalculator::reset() {
  const Hypergraph& g = part_->graph();
  p_.assign(g.num_nodes(), 0.0);
  locked_.assign(g.num_nodes(), 0);
  locked_pins_.assign(2 * g.num_nets(), 0);
}

void ProbGainCalculator::set_probability(NodeId u, double p) {
  if (locked_[u]) throw std::logic_error("prob gain: node is locked");
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("prob gain: p out of [0,1]");
  p_[u] = p;
}

void ProbGainCalculator::lock(NodeId u) {
  if (locked_[u]) throw std::logic_error("prob gain: node already locked");
  locked_[u] = 1;
  p_[u] = 0.0;
  const int s = part_->side(u);
  for (const NetId n : part_->graph().nets_of(u)) {
    ++locked_pins_[2 * n + s];
  }
}

void ProbGainCalculator::move_locked(NodeId u, int from_side) {
  if (!locked_[u]) throw std::logic_error("prob gain: moved node must be locked");
  for (const NetId n : part_->graph().nets_of(u)) {
    --locked_pins_[2 * n + from_side];
    ++locked_pins_[2 * n + (1 - from_side)];
  }
}

void ProbGainCalculator::audit_consistency() const {
  const Hypergraph& g = part_->graph();
  std::vector<std::uint32_t> recount(2 * g.num_nets(), 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (locked_[u]) {
      if (p_[u] != 0.0) {
        throw std::logic_error("prob gain audit: locked node with p != 0");
      }
      const int s = part_->side(u);
      for (const NetId n : g.nets_of(u)) ++recount[2 * n + s];
    } else if (p_[u] < 0.0 || p_[u] > 1.0) {
      throw std::logic_error("prob gain audit: free probability out of [0,1]");
    }
  }
  if (recount != locked_pins_) {
    throw std::logic_error(
        "prob gain audit: locked-pin counts diverged from scratch recount");
  }
}

double ProbGainCalculator::removal_probability(NetId n, int to) const {
  const int from = 1 - to;
  if (side_locked(n, from)) return 0.0;
  double prod = 1.0;
  for (const NodeId v : part_->graph().pins_of(n)) {
    if (part_->side(v) == from) prod *= p_[v];
  }
  return prod;
}

double ProbGainCalculator::net_gain(NodeId u, NetId n) const {
  const Partition& part = *part_;
  const double c = part.graph().net_cost(n);
  const int a = part.side(u);
  const int b = 1 - a;

  // Product of p over free A-side pins other than u; 0 if A holds a locked
  // pin (the net then can never leave A this pass).
  double prod_a = 1.0;
  bool a_blocked = side_locked(n, a);
  double prod_b = 1.0;
  const bool b_blocked = side_locked(n, b);
  for (const NodeId v : part.graph().pins_of(n)) {
    if (v == u) continue;
    if (part.side(v) == a) {
      prod_a *= p_[v];  // locked pins have p = 0, blocking the product too
    } else {
      prod_b *= p_[v];
    }
  }
  if (a_blocked) prod_a = 0.0;
  if (b_blocked) prod_b = 0.0;

  if (part.is_cut(n)) {
    // Eqn. 3: moving u helps complete the A->B evacuation and precludes the
    // B->A one.
    return c * (prod_a - prod_b);
  }
  // Net lies entirely on u's side (it contains u).  Eqn. 4: moving u cuts
  // it; it stays cut unless everyone else follows.
  return -c * (1.0 - prod_a);
}

double ProbGainCalculator::gain(NodeId u) const {
  double total = 0.0;
  for (const NetId n : part_->graph().nets_of(u)) {
    total += net_gain(u, n);
  }
  return total;
}

}  // namespace prop
