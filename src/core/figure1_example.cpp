#include "core/figure1_example.h"

#include "hypergraph/builder.h"

namespace prop {

Figure1Example make_figure1_example() {
  // Ids: paper node k (1..11) -> k-1; hidden partner of node k (4..9) ->
  // 7+k (11..16); three V2 nodes per cut net n_j (j = 1..11) -> 17+3(j-1)+i.
  constexpr NodeId kNumV1 = 17;
  constexpr int kCutNets = 11;
  constexpr NodeId kNumNodes = kNumV1 + 3 * kCutNets;

  HypergraphBuilder b(kNumNodes);
  b.set_name("figure1");

  const auto v2 = [&](int j, int i) {
    return static_cast<NodeId>(kNumV1 + 3 * (j - 1) + i);
  };
  const auto node = [](int k) { return static_cast<NodeId>(k - 1); };
  const auto partner = [](int k) { return static_cast<NodeId>(7 + k); };

  // Cut nets n1..n11 (net ids 0..10), each with its V1 pins plus three V2
  // pins.  Order matters: net(j) must be net id j-1.
  const std::vector<std::vector<NodeId>> v1_pins = {
      {node(1)},                     // n1
      {node(1)},                     // n2
      {node(2)},                     // n3
      {node(2)},                     // n4
      {node(10)},                    // n5
      {node(3)},                     // n6
      {node(3)},                     // n7
      {node(11)},                    // n8
      {node(1), node(4), node(5), node(6), node(7)},  // n9
      {node(2), node(8), node(9)},                    // n10
      {node(3), node(10), node(11)},                  // n11
  };
  for (int j = 1; j <= kCutNets; ++j) {
    std::vector<NodeId> pins = v1_pins[static_cast<std::size_t>(j - 1)];
    for (int i = 0; i < 3; ++i) pins.push_back(v2(j, i));
    b.add_net(pins);
  }
  // Uncut nets n12..n17: node k paired with its hidden partner.
  for (int k = 4; k <= 9; ++k) {
    b.add_net({node(k), partner(k)});
  }

  Figure1Example ex;
  ex.graph = std::move(b).build();
  ex.side.assign(kNumNodes, 1);
  for (NodeId u = 0; u < kNumV1; ++u) ex.side[u] = 0;

  ex.initial_probability.assign(kNumNodes, 0.0);
  for (int k = 1; k <= 3; ++k) ex.initial_probability[node(k)] = 1.0;
  for (int k = 4; k <= 9; ++k) ex.initial_probability[node(k)] = 0.2;
  ex.initial_probability[node(10)] = 0.8;
  ex.initial_probability[node(11)] = 0.8;
  for (int k = 4; k <= 9; ++k) ex.initial_probability[partner(k)] = 0.5;
  return ex;
}

}  // namespace prop
