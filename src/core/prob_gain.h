// Probabilistic node-gain computation — the heart of PROP (paper Sec. 3.1).
//
// Every free node u carries a probability p(u) of being actually moved in
// the current pass.  The gain contributed to u by net n (u on side A, other
// side B) is:
//
//   net in cut (pins on both sides), Eqn. 3:
//     g_n(u) = c(n) * [ prod_{x in free(n^A) - u} p(x)
//                       - prod_{y in free(n^B)} p(y) ]
//   net entirely in A, Eqn. 4:
//     g_n(u) = -c(n) * (1 - prod_{x in free(n^A) - u} p(x))
//
// with the locked-net rules of Sec. 3.4 (Eqns. 5/6) falling out naturally:
// a locked pin on a side zeroes that side's removal product, because a net
// with a locked pin in S can never be pulled out of S during this pass.
// Empty products are 1, so a cut net where u is the only A-side pin
// contributes the full +c(n), and a single-pin net contributes 0.
//
// Products are recomputed on demand by iterating the net's pins: nets
// average ~4 pins (paper Sec. 3.1), so gain(u) costs O(degree * netsize)
// with no floating-point drift from incremental division.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "partition/partition.h"

namespace prop {

class ProbGainCalculator {
 public:
  explicit ProbGainCalculator(const Partition& part);

  /// Unlocks everything; probabilities must then be (re)initialized by the
  /// caller via set_probability.
  void reset();

  bool is_free(NodeId u) const noexcept { return locked_[u] == 0; }
  double probability(NodeId u) const noexcept { return p_[u]; }

  /// Sets p(u); u must be free (locked nodes stay at p = 0).
  void set_probability(NodeId u, double p);

  /// Locks u: p(u) := 0 (paper Sec. 3.4).
  void lock(NodeId u);

  /// Records that locked node u moved sides (call after Partition::move).
  void move_locked(NodeId u, int from_side);

  /// Probabilistic gain g(u) = sum over nets of u of g_n(u).
  double gain(NodeId u) const;

  /// Gain restricted to one net — exposed for tests and the Figure 1
  /// walkthrough example.
  double net_gain(NodeId u, NetId n) const;

  /// Emits (v, g_n(v)) for every FREE pin v of net n in O(|n|) total: the
  /// side products are computed once and each pin's own probability is
  /// divided back out (free probabilities are bounded below by the model's
  /// pmin > 0, so the division is safe).  Summing per-net emissions over a
  /// node's nets equals gain(v); the PROP pass uses before/after deltas of
  /// this per net touched by a move.
  template <typename Emit>
  void for_each_net_gain(NetId n, Emit&& emit) const {
    const Partition& part = *part_;
    const Hypergraph& g = part.graph();
    const auto pins = g.pins_of(n);
    const double c = g.net_cost(n);
    double prod[2] = {1.0, 1.0};
    for (const NodeId v : pins) {
      if (!locked_[v]) prod[part.side(v)] *= p_[v];
    }
    const bool blocked[2] = {side_locked(n, 0), side_locked(n, 1)};
    const bool cut = part.is_cut(n);
    for (const NodeId v : pins) {
      if (locked_[v]) continue;
      const int a = part.side(v);
      const int b = 1 - a;
      const double prod_a_excl = blocked[a] ? 0.0 : prod[a] / p_[v];
      if (cut) {
        const double prod_b = blocked[b] ? 0.0 : prod[b];
        emit(v, c * (prod_a_excl - prod_b));
      } else {
        // Net lies entirely on v's side (it contains v).
        emit(v, -c * (1.0 - prod_a_excl));
      }
    }
  }

  /// P(net n is removed from the cut toward side `to`): the product of
  /// p over free pins of n on the *other* side, 0 if that side has a locked
  /// pin.  This is the paper's p(n^{1->2}) / p(n^{2->1}).
  double removal_probability(NetId n, int to) const;

  /// Debug invariant audit: recounts the per-(net, side) locked-pin table
  /// from the lock flags and the partition, and checks probability bounds
  /// (locked => p == 0, free => p in [0, 1]).  Throws std::logic_error on
  /// any mismatch.  O(pins); used by PROP's audit_interval mode.
  void audit_consistency() const;

 private:
  bool side_locked(NetId n, int s) const noexcept {
    return locked_pins_[2 * n + s] > 0;
  }

  const Partition* part_;
  std::vector<double> p_;
  std::vector<std::uint8_t> locked_;
  std::vector<std::uint32_t> locked_pins_;  // locked pins per (net, side)
};

}  // namespace prop
