// Probabilistic node-gain computation — the heart of PROP (paper Sec. 3.1).
//
// Every free node u carries a probability p(u) of being actually moved in
// the current pass.  The gain contributed to u by net n (u on side A, other
// side B) is:
//
//   net in cut (pins on both sides), Eqn. 3:
//     g_n(u) = c(n) * [ prod_{x in free(n^A) - u} p(x)
//                       - prod_{y in free(n^B)} p(y) ]
//   net entirely in A, Eqn. 4:
//     g_n(u) = -c(n) * (1 - prod_{x in free(n^A) - u} p(x))
//
// with the locked-net rules of Sec. 3.4 (Eqns. 5/6) falling out naturally:
// a locked pin on a side zeroes that side's removal product, because a net
// with a locked pin in S can never be pulled out of S during this pass.
// Empty products are 1, so a cut net where u is the only A-side pin
// contributes the full +c(n), and a single-pin net contributes 0.
//
// Three engines compute those products (DESIGN.md Sec. 4f):
//
//   * kCached (default): maintains prod[2n+s] = product of p(v) over free
//     pins of net n on side s with p(v) != 0, plus a zero-factor counter
//     and a cached reciprocal 1/p(v) per node, updated in O(1) per
//     set_probability / lock by multiplication (no divisions on the hot
//     path).  gain(u) is then O(degree(u)) and for_each_net_gain is O(|n|)
//     with no per-call product pass; nets with a locked pin on *both*
//     sides contribute exactly zero to every free pin and are skipped
//     outright.  Floating-point drift from the incremental updates is
//     bounded by epoch renormalization: after kRenormInterval updates of a
//     (net, side) slot — or whenever its product leaves
//     [kRenormMagLo, kRenormMagHi] or stops being finite — the product is
//     recomputed exactly from the pins.
//   * kScratch: recomputes every product on demand by iterating the net's
//     pins.  O(degree * netsize) per gain query and drift-free; kept
//     compiled-in as the audit oracle (audit_consistency, tests, the
//     gain-kernel benchmark baseline).
//   * kShadow: the equivalence harness.  Answers every query through the
//     scratch code path — so a kShadow run makes move-for-move identical
//     decisions to a kScratch run — while still performing the full cached
//     maintenance and cross-checking the cache against the scratch answer
//     at every gain query (throws std::logic_error past kProductAuditTol).
//     This is how "the cached engine reproduces the scratch engine's cuts
//     exactly" is made a testable statement: the cached *fast* read path
//     agrees with scratch only within the drift bound, and ulp-level
//     differences feed back through probabilities chaotically, so exact
//     trajectory equality is asserted in shadow mode (see DESIGN.md 4f).
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "partition/partition.h"

namespace prop {

/// Which product engine a ProbGainCalculator uses (see file comment).
enum class GainEngine {
  kCached,   ///< incremental per-(net, side) products, O(1) updates
  kScratch,  ///< on-demand pin iteration — exact, slow, the audit oracle
  kShadow,   ///< scratch answers + cached maintenance + per-query cross-check
};

const char* to_string(GainEngine engine) noexcept;

class ProbGainCalculator {
 public:
  /// Default epoch length: a (net, side) product is recomputed exactly
  /// after this many incremental multiply/divide updates.  Each update
  /// contributes ~1 ulp of relative error, so drift per epoch stays around
  /// 128 * 2^-52 ~ 3e-14 — orders of magnitude inside kProductAuditTol.
  static constexpr int kDefaultRenormInterval = 128;

  /// Magnitude window outside which a product is renormalized immediately
  /// (underflow toward 0 or drift above 1 would otherwise poison later
  /// divisions).  Probabilities lie in [0, 1] and zero factors are counted
  /// separately, so legitimate products essentially never leave the window.
  static constexpr double kRenormMagLo = 1e-120;
  static constexpr double kRenormMagHi = 1e120;

  /// audit_consistency / kShadow cross-check tolerance on
  /// |cached - scratch| products and gains.  Drift between
  /// renormalizations is ~#updates * ulp; this bound is orders of
  /// magnitude above that but far below anything gain-relevant.
  static constexpr double kProductAuditTol = 1e-9;

  explicit ProbGainCalculator(const Partition& part,
                              GainEngine engine = GainEngine::kCached,
                              int renorm_interval = kDefaultRenormInterval);

  GainEngine engine() const noexcept { return engine_; }

  /// Unlocks everything; probabilities must then be (re)initialized by the
  /// caller via set_probability.
  void reset();

  bool is_free(NodeId u) const noexcept { return locked_[u] == 0; }
  double probability(NodeId u) const noexcept { return p_[u]; }

  /// Sets p(u); u must be free (locked nodes stay at p = 0).  O(degree(u))
  /// under the cached engine, O(1) under scratch.
  void set_probability(NodeId u, double p);

  /// Locks u: p(u) := 0 (paper Sec. 3.4).
  void lock(NodeId u);

  /// Records that locked node u moved sides (call after Partition::move).
  void move_locked(NodeId u, int from_side);

  // --- Batched interface for the deterministic round engine (DESIGN §4i) --
  //
  // The parallel pass engine never drives the cache through the O(degree)
  // incremental updates above.  Instead it writes per-node state in bulk
  // from concurrent node-disjoint chunks (stage_probability), applies a
  // whole round's committed moves in one deterministic sweep (apply_moves),
  // and then rebuilds the per-(net, side) products by partitioned per-net
  // reduction (rebuild_products over disjoint net ranges) — every slot is
  // recomputed exactly once, in pin order, by whichever chunk owns the net,
  // so the rebuilt cache is bit-identical to a scratch recompute and
  // carries zero incremental drift regardless of how many threads ran.
  //
  // The read path is safe to share: gain() / for_each_net_gain() /
  // removal_probability() are const, touch no mutable state, and
  // renormalization only ever fires inside the write path — so any number
  // of threads may query gains concurrently as long as no thread is inside
  // one of the mutating calls.

  /// Writes p(u) (and its cached reciprocal) WITHOUT maintaining the
  /// per-(net, side) products; u must be free.  Concurrent calls for
  /// distinct nodes are race-free (each touches only its own slots).  The
  /// products of every net of every staged node are stale until the caller
  /// runs rebuild_products over them.
  void stage_probability(NodeId u, double p);

  /// Exactly recomputes both (net, side) product slots and zero counters of
  /// every net in [begin, end) from the pins — pin-order multiplication,
  /// bit-identical to the scratch oracle — and restarts their
  /// renormalization epochs.  Concurrent calls on disjoint net ranges are
  /// race-free.  No-op under the scratch engine.
  void rebuild_products(NetId begin, NetId end);

  /// Applies one committed round of moves, in order: for each mover —
  /// Partition::move, lock (p := 0), and the locked-pin table update — with
  /// NO product maintenance.  `part` must be the partition this calculator
  /// observes; the caller must rebuild_products over every touched net (or
  /// all nets) before the next gain query.  Throws if a mover is already
  /// locked.
  void apply_moves(Partition& part, const NodeId* movers, std::size_t count);

  // --- Active-set (dirty-net) tracking (DESIGN §4k) -----------------------
  //
  // Opt-in bookkeeping consumed by the delta-driven sweeps: when enabled,
  // every mutation that can change any gain input of a net's pins — a
  // probability change, a lock, a locked-pin side shift, a committed move,
  // or a staged probability folded in through note_staged_changes — marks
  // that net dirty (byte bitmap + append-once list, deterministic order).
  // Full-state invalidations (reset, renormalize_all) raise all_dirty()
  // instead: after an exact global renormalization every cached product may
  // carry new bits, so no per-net delta is meaningful and the next sweep
  // must be full.  Consumers sweep the pins of dirty_nets(), then
  // clear_dirty().  Tracking is pure bookkeeping: no tracked call changes
  // any cache bit, so enabling it never changes any gain.

  /// Enables/disables tracking.  Enabling (re)starts in the all-dirty
  /// state; buffers are sized on first enable (O(n + m); re-enabling reuses
  /// them, allocation-free).
  void set_dirty_tracking(bool on);
  bool dirty_tracking() const noexcept { return track_dirty_; }

  /// True when the next sweep must cover everything: tracking disabled, or
  /// a full-state invalidation since the last clear_dirty().
  bool all_dirty() const noexcept { return !track_dirty_ || all_dirty_; }

  /// Nets marked dirty since the last clear_dirty(), in marking order
  /// (deterministic, duplicate-free).  Meaningless while all_dirty().
  const std::vector<NetId>& dirty_nets() const noexcept { return dirty_nets_; }

  /// Leaves the all-dirty state / empties the dirty list.
  void clear_dirty();

  /// Sequentially folds staged probability changes into the dirty set: for
  /// each listed node whose stage_probability call actually changed p since
  /// the last note, marks its nets and clears the per-node changed flag.
  /// The list must cover every node staged since the last note (a staged
  /// node left unnoted would leak a stale flag into a later round).
  void note_staged_changes(const NodeId* nodes, std::size_t count);
  /// note_staged_changes over the full node range [0, num_nodes).
  void note_staged_changes_all();

  /// rebuild_products over an explicit net list: exactly recomputes both
  /// product slots of nets[i] for i in [begin, end).  Concurrent calls on
  /// disjoint index ranges are race-free (net lists from dirty_nets() are
  /// duplicate-free).  No-op under the scratch engine.
  void rebuild_products_for(const NetId* nets, std::size_t begin,
                            std::size_t end);

  /// Probabilistic gain g(u) = sum over nets of u of g_n(u).
  /// O(degree(u)) cached, O(degree(u) * netsize) scratch.  Shadow returns
  /// the scratch answer after asserting the cached one agrees within
  /// kProductAuditTol (std::logic_error otherwise).
  double gain(NodeId u) const;

  /// Gain restricted to one net, always computed from scratch by explicit
  /// pin iteration — the reference oracle for tests, the Figure 1
  /// walkthrough and the property suite.
  double net_gain(NodeId u, NetId n) const;

  /// From-scratch total gain (sum of net_gain over u's nets) regardless of
  /// the configured engine — the oracle the cached engine is audited
  /// against.
  double scratch_gain(NodeId u) const;

  /// Emits (v, g_n(v)) for every FREE pin v of net n with a nonzero
  /// contribution, in O(|n|) total.  The cached engine reads the side
  /// products straight from the cache, excludes each pin's own probability
  /// by multiplying with its cached reciprocal, and skips frozen nets
  /// (locked pins on both sides: every free-pin contribution is exactly 0)
  /// without emitting.  The scratch/shadow engines compute the products
  /// with one pin pass and divide each pin's probability back out — the
  /// legacy cost model — and emit every free pin, zero contributions
  /// included.  Summing per-net emissions over a node's nets equals
  /// gain(v); the PROP pass uses before/after deltas of this per net
  /// touched by a move, and the net-major bootstrap sweep accumulates it
  /// over all nets.
  template <typename Emit>
  void for_each_net_gain(NetId n, Emit&& emit) const {
    const Partition& part = *part_;
    const Hypergraph& g = part.graph();
    const auto pins = g.pins_of(n);
    const double c = g.net_cost(n);
    const bool blocked[2] = {side_locked(n, 0), side_locked(n, 1)};

    if (engine_ == GainEngine::kCached) {
      // Frozen net: locked pins on both sides mean the net is pinned in the
      // cut and both removal products are 0, so g_n(v) == 0 for every free
      // pin v for the rest of the pass.
      if (blocked[0] && blocked[1]) return;
      const bool cut = part.is_cut(n);
      const double prod[2] = {prod_[2 * n], prod_[2 * n + 1]};
      const std::uint32_t zeros[2] = {zero_free_[2 * n],
                                      zero_free_[2 * n + 1]};
      const double side_prod[2] = {
          (blocked[0] || zeros[0] > 0) ? 0.0 : prod[0],
          (blocked[1] || zeros[1] > 0) ? 0.0 : prod[1]};
      for (const NodeId v : pins) {
        if (locked_[v]) continue;
        const int a = part.side(v);
        double prod_a_excl;
        if (blocked[a]) {
          prod_a_excl = 0.0;
        } else if (p_[v] == 0.0) {
          prod_a_excl = zeros[a] > 1 ? 0.0 : prod[a];
        } else {
          prod_a_excl = zeros[a] > 0 ? 0.0 : prod[a] * recip_[v];
        }
        if (cut) {
          emit(v, c * (prod_a_excl - side_prod[1 - a]));
        } else {
          // Net lies entirely on v's side (it contains v).
          emit(v, -c * (1.0 - prod_a_excl));
        }
      }
      return;
    }

    const bool cut = part.is_cut(n);
    double prod[2] = {1.0, 1.0};
    std::uint32_t zeros[2] = {0, 0};
    for (const NodeId v : pins) {
      if (locked_[v]) continue;
      if (p_[v] == 0.0) {
        ++zeros[part.side(v)];
      } else {
        prod[part.side(v)] *= p_[v];
      }
    }
    const double side_prod[2] = {
        (blocked[0] || zeros[0] > 0) ? 0.0 : prod[0],
        (blocked[1] || zeros[1] > 0) ? 0.0 : prod[1]};

    for (const NodeId v : pins) {
      if (locked_[v]) continue;
      const int a = part.side(v);
      const double prod_a_excl =
          excl_product(blocked[a], zeros[a], prod[a], p_[v]);
      if (cut) {
        emit(v, c * (prod_a_excl - side_prod[1 - a]));
      } else {
        // Net lies entirely on v's side (it contains v).
        emit(v, -c * (1.0 - prod_a_excl));
      }
    }
  }

  /// P(net n is removed from the cut toward side `to`): the product of
  /// p over free pins of n on the *other* side, 0 if that side has a locked
  /// pin.  This is the paper's p(n^{1->2}) / p(n^{2->1}).
  double removal_probability(NetId n, int to) const;

  /// Recomputes every cached (net, side) product and zero counter exactly
  /// from the pins and restarts all renormalization epochs.  Immediately
  /// afterwards the cache is bit-identical to a scratch in-pin-order
  /// recompute.  No-op under the scratch engine.  O(pins).
  void renormalize_all();

  /// Max |cached product - scratch recompute| over all (net, side) slots;
  /// 0 under the scratch engine.  O(pins); telemetry/test instrument.
  double max_product_drift() const;

  /// Debug invariant audit: recounts the per-(net, side) locked-pin table
  /// from the lock flags and the partition, checks probability bounds
  /// (locked => p == 0, free => p in [0, 1]) and — when the cache is
  /// maintained (kCached/kShadow) — cross-checks every zero-factor counter
  /// and cached reciprocal exactly and every cached product against the
  /// scratch oracle within kProductAuditTol.  Throws std::logic_error on
  /// any mismatch.  O(pins); used by PROP's audit_interval mode.
  void audit_consistency() const;

 private:
  bool side_locked(NetId n, int s) const noexcept {
    return locked_pins_[2 * n + s] > 0;
  }

  /// Both kCached and kShadow keep the incremental product state up to
  /// date; only kCached *answers* queries from it.
  bool maintains_cache() const noexcept {
    return engine_ != GainEngine::kScratch;
  }

  /// Product over free pins of one side excluding a free pin whose
  /// probability is `p_self`, given the side's blocked flag, zero-factor
  /// count and nonzero-factor product (scratch/shadow emission form).
  static double excl_product(bool blocked, std::uint32_t zeros, double prod,
                             double p_self) noexcept {
    if (blocked) return 0.0;
    if (p_self == 0.0) return zeros > 1 ? 0.0 : prod;
    return zeros > 0 ? 0.0 : prod / p_self;
  }

  /// gain(u) computed from the cached products — the kCached fast path,
  /// and the value kShadow cross-checks against the scratch answer.
  double cached_gain(NodeId u) const;

  /// Applies one factor change old_p -> new_p to the (net, side) slot —
  /// old_r is the cached reciprocal of old_p, so the removal is a multiply
  /// — and renormalizes when the epoch expires or the product degenerates.
  void update_factor(NetId n, int s, double old_p, double old_r,
                     double new_p);

  /// Exact recompute of one (net, side) product/zero counter from the pins.
  void renormalize_side(NetId n, int s);

  /// Scratch recompute of (product of nonzero free-pin p, zero count) for
  /// one side of a net, multiplying in pin order (the renormalized cache is
  /// bit-identical to this).
  void scratch_side(NetId n, int s, double& prod,
                    std::uint32_t& zeros) const;

  /// Appends n to the dirty list once.  No-op while all_dirty_ is raised
  /// (the list is already superseded).  Only called under track_dirty_.
  void mark_net(NetId n) {
    if (all_dirty_) return;
    if (!net_dirty_[n]) {
      net_dirty_[n] = 1;
      dirty_nets_.push_back(n);
    }
  }
  void mark_nets_of(NodeId u);
  /// Raises all_dirty(), superseding (and emptying) the per-net list.
  void mark_all_dirty();

  const Partition* part_;
  GainEngine engine_;
  int renorm_interval_;
  std::vector<double> p_;
  std::vector<std::uint8_t> locked_;
  std::vector<std::uint32_t> locked_pins_;  // locked pins per (net, side)

  // Cached-engine state; unused (empty) under kScratch.  prod_, zero_free_
  // and updates_ have one slot per (net, side); recip_ caches 1/p per node
  // so factor removal and pin exclusion are multiplies, not divides.
  std::vector<double> prod_;           // product of nonzero free-pin p
  std::vector<std::uint32_t> zero_free_;  // free pins with p == 0
  std::vector<std::uint32_t> updates_;    // incremental updates this epoch
  std::vector<double> recip_;          // 1/p, 0 where p == 0

  // Active-set state (sized by set_dirty_tracking; see the section above).
  bool track_dirty_ = false;
  bool all_dirty_ = true;
  std::vector<std::uint8_t> net_dirty_;       // per net: on the dirty list?
  std::vector<NetId> dirty_nets_;
  std::vector<std::uint8_t> staged_changed_;  // per node: staged p changed?
};

}  // namespace prop
