#include "core/prop_partitioner.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "core/round_policy.h"
#include "fm/fm_partitioner.h"
#include "partition/initial.h"
#include "telemetry/invariant_audit.h"
#include "util/rng.h"
#include "util/timer.h"

namespace prop {
namespace {

constexpr double kEps = 1e-9;

/// Probabilistic gains are products/sums of doubles, so exact comparisons
/// essentially never fire; anything within this absolute tolerance is
/// treated as equal (selection ties) or as unchanged (delta application,
/// refresh-node tree updates).
constexpr double kGainEps = 1e-12;

}  // namespace

PropRefiner::PropRefiner(Partition& part, const BalanceConstraint& balance,
                         const PropConfig& config)
    : part_(&part),
      balance_(&balance),
      config_(&config),
      calc_(part, config.gain_engine, config.renorm_interval),
      side0_(part.graph().num_nodes()),
      side1_(part.graph().num_nodes()),
      gains_(part.graph().num_nodes(), 0.0),
      delta_(part.graph().num_nodes(), 0.0),
      to_refresh_(),
      visit_stamp_(part.graph().num_nodes(), 0) {
  moved_.reserve(part.graph().num_nodes());
  to_refresh_.reserve(part.graph().num_nodes());
  sort_scratch_[0].reserve(part.graph().num_nodes());
  sort_scratch_[1].reserve(part.graph().num_nodes());
  if (config.pass_threads >= 1) {
    round_order_.reserve(part.graph().num_nodes());
    free_candidates_.reserve(part.graph().num_nodes());
    net_stamp_.assign(part.graph().num_nets(), 0);
    if (config.pass_threads >= 2) {
      pass_pool_ = std::make_unique<ThreadPool>(config.pass_threads - 1);
    }
  }
  if (config.pass_threads >= 1 || config.gain_engine == GainEngine::kCached) {
    // Size the active-set buffers up front so toggling tracking per pass
    // stays allocation-free (the gain-kernel bench asserts steady-state
    // passes allocate nothing).
    sweep_nodes_.reserve(part.graph().num_nodes());
    calc_.set_dirty_tracking(true);
  }
}

double PropRefiner::run_pass(PassStats* stats) {
  return config_->pass_threads >= 1 ? run_round_pass(stats)
                                    : run_sequential_pass(stats);
}

bool PropRefiner::collect_sweep_nodes() {
  if (calc_.all_dirty()) {
    calc_.clear_dirty();
    return false;
  }
  const Hypergraph& g = part_->graph();
  sweep_nodes_.clear();
  ++stamp_;
  for (const NetId net : calc_.dirty_nets()) {
    for (const NodeId v : g.pins_of(net)) {
      if (!calc_.is_free(v) || visit_stamp_[v] == stamp_) continue;
      visit_stamp_[v] = stamp_;
      sweep_nodes_.push_back(v);
    }
  }
  // Ascending node order: the computed values never depend on the order,
  // but deterministic chunking of the parallel dirty sweep does.
  std::sort(sweep_nodes_.begin(), sweep_nodes_.end());
  calc_.clear_dirty();
  return true;
}

void PropRefiner::parallel_gain_sweep(ThreadPool* pool) {
  parallel_for(pool, part_->graph().num_nodes(),
               [this](std::size_t begin, std::size_t end) {
                 for (std::size_t u = begin; u < end; ++u) {
                   const NodeId v = static_cast<NodeId>(u);
                   gains_[v] = calc_.is_free(v) ? calc_.gain(v) : 0.0;
                 }
               });
}

void PropRefiner::parallel_gain_sweep_dirty(ThreadPool* pool) {
  parallel_for(pool, sweep_nodes_.size(),
               [this](std::size_t begin, std::size_t end) {
                 for (std::size_t i = begin; i < end; ++i) {
                   const NodeId v = sweep_nodes_[i];
                   gains_[v] = calc_.gain(v);
                 }
               });
}

void PropRefiner::stage_probabilities_and_rebuild(ThreadPool* pool,
                                                  bool dirty_only) {
  const ProbabilityModel& model = config_->model;
  if (dirty_only) {
    // Only swept nodes can have a fresh gain; restaging anyone else would
    // rewrite the same probability bits.  Movers locked by this round's
    // walk are skipped exactly as in the full staging.
    parallel_for(pool, sweep_nodes_.size(),
                 [this, &model](std::size_t begin, std::size_t end) {
                   for (std::size_t i = begin; i < end; ++i) {
                     const NodeId v = sweep_nodes_[i];
                     if (calc_.is_free(v)) {
                       calc_.stage_probability(v, model.from_gain(gains_[v]));
                     }
                   }
                 });
    calc_.note_staged_changes(sweep_nodes_.data(), sweep_nodes_.size());
  } else {
    parallel_for(pool, part_->graph().num_nodes(),
                 [this, &model](std::size_t begin, std::size_t end) {
                   for (std::size_t u = begin; u < end; ++u) {
                     const NodeId v = static_cast<NodeId>(u);
                     if (calc_.is_free(v)) {
                       calc_.stage_probability(v, model.from_gain(gains_[v]));
                     }
                   }
                 });
    calc_.note_staged_changes_all();
  }
  if (calc_.all_dirty()) {
    parallel_for(pool, part_->graph().num_nets(),
                 [this](std::size_t begin, std::size_t end) {
                   calc_.rebuild_products(static_cast<NetId>(begin),
                                          static_cast<NetId>(end));
                 });
  } else {
    // Active-set rebuild (DESIGN §4k): a clean net's stored products are
    // the exact pin-order recompute from unchanged inputs, so rebuilding
    // only the dirty nets leaves every slot bit-identical to a full
    // rebuild.  The dirty list is read non-destructively — the next
    // round's sweep consumes the same set.
    const std::vector<NetId>& dirty = calc_.dirty_nets();
    parallel_for(pool, dirty.size(),
                 [this, &dirty](std::size_t begin, std::size_t end) {
                   calc_.rebuild_products_for(dirty.data(), begin, end);
                 });
  }
}

void PropRefiner::bootstrap_probabilities_parallel() {
  const Partition& part = *part_;
  const PropConfig& config = *config_;
  ThreadPool* pool = pass_pool_.get();
  const bool uniform = config.bootstrap == PropBootstrap::kUniform;
  parallel_for(pool, part.graph().num_nodes(),
               [this, &part, &config, uniform](std::size_t begin,
                                               std::size_t end) {
                 for (std::size_t u = begin; u < end; ++u) {
                   const NodeId v = static_cast<NodeId>(u);
                   calc_.stage_probability(
                       v, uniform ? config.model.pinit
                                  : config.model.from_gain(
                                        part.immediate_gain(v)));
                 }
               });
  // The calculator is all-dirty straight after reset, so this marks
  // nothing — it just clears the per-node staged flags ahead of the first
  // tracked staging round.
  calc_.note_staged_changes_all();
  parallel_for(pool, part.graph().num_nets(),
               [this](std::size_t begin, std::size_t end) {
                 calc_.rebuild_products(static_cast<NetId>(begin),
                                        static_cast<NetId>(end));
               });
  for (int iter = 0; iter < config.refine_iterations; ++iter) {
    // Node-major on purpose: gains_[u] accumulates over u's nets in a fixed
    // per-node order regardless of how the index range is chunked, unlike
    // the sequential engine's net-major accumulation whose FP sum order
    // would depend on the chunking.  The first iteration sweeps everything
    // (all-dirty); later ones only re-derive nodes whose nets were dirtied
    // by the previous staging — everyone else's stored gain is already the
    // value a full sweep would recompute.
    const bool dirty = collect_sweep_nodes();
    if (dirty) {
      parallel_gain_sweep_dirty(pool);
    } else {
      parallel_gain_sweep(pool);
    }
    stage_probabilities_and_rebuild(pool, dirty);
  }
}

/// One PROP pass as synchronous move rounds (DESIGN §4i; active-set sweeps
/// §4k).  Each round:
/// (1) free nodes' probabilistic gains are computed in parallel against
/// the round-start snapshot of probabilities and cached products — all of
/// them on a full-sweep round, otherwise only the active set (nodes on
/// nets dirtied since the previous sweep; everyone else's stored gain is
/// bitwise what the full sweep would recompute);
/// (2) candidates are ordered deterministically (gain descending, node id
/// ascending — an exact double compare, no scheduling influence);
/// (3) a sequential conflict-resolution walk commits the maximal ordered
/// subset that is balance-feasible against the live side sizes and
/// net-disjoint within the round (first committed pin stamps all its nets),
/// so every committed move's immediate gain — evaluated live during the
/// walk — equals its snapshot value, and the prefix bookkeeping is exact;
/// (4) surviving free nodes get probabilities refreshed from the snapshot
/// gains and the product cache is rebuilt exactly by partitioned per-net
/// reduction.  Parallel phases only ever write disjoint slots computed from
/// read-only state, and every cross-thread reduction is replaced by an
/// exact per-net pin-order recompute, so the pass is byte-identical for any
/// pass_threads >= 1 (pass_threads == 1 runs the same code inline — the
/// serial reference).  The cache carries zero incremental drift by
/// construction, so the audit/resync/degradation machinery of the
/// sequential engine has nothing to police here.
double PropRefiner::run_round_pass(PassStats* stats) {
  Partition& part = *part_;
  const Hypergraph& g = part.graph();
  const NodeId n = g.num_nodes();
  const BalanceConstraint& balance = *balance_;
  const RunContext* ctx = config_->context;

  // Full-sweep reference mode disables tracking outright: all_dirty()
  // then always reads true and every round takes the sweep-everything /
  // rebuild-everything branches — the pre-active-set schedule.
  calc_.set_dirty_tracking(!config_->full_sweep_rounds);
  calc_.reset();

  // Stamp-epoch rewinds before anything can wrap: one net stamp per round
  // (at most n rounds per pass), one visit stamp per collect_sweep_nodes
  // call (at most one per bootstrap iteration plus one per round).
  if (static_cast<std::uint64_t>(round_stamp_) + n + 2 >=
      static_cast<std::uint32_t>(-1)) {
    std::fill(net_stamp_.begin(), net_stamp_.end(), 0);
    round_stamp_ = 0;
  }
  const std::uint64_t iters =
      config_->refine_iterations > 0 ? config_->refine_iterations : 0;
  if (static_cast<std::uint64_t>(stamp_) + n + iters + 2 >=
      static_cast<std::uint32_t>(-1)) {
    std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0);
    stamp_ = 0;
  }

  bootstrap_probabilities_parallel();

  // Every node is free after reset(); the list is compacted as the walk
  // locks movers, so later (smaller) rounds collect in O(free).
  free_candidates_.resize(n);
  for (NodeId u = 0; u < n; ++u) free_candidates_[u] = u;

  moved_.clear();
  double prefix = 0.0;
  double best_prefix = 0.0;
  std::size_t best_count = 0;

  const std::uint64_t rounds_per_barrier =
      config_->rounds_per_barrier < 1 ? 1 : config_->rounds_per_barrier;
  std::uint64_t round_index = 0;

  while (true) {
    if (ctx && ctx->refine_should_stop()) {
      interrupted_ = true;
      break;
    }
    // Barrier batching (DESIGN §4k): only every rounds_per_barrier-th round
    // engages the worker pool; the rest run inline, skipping the fork/join
    // cost.  Chunk layout never affects any computed value, so the output
    // is byte-identical for every setting.
    ThreadPool* pool =
        round_index % rounds_per_barrier == 0 ? pass_pool_.get() : nullptr;
    ++round_index;

    // (1) Snapshot gains, in parallel: everything on the first round (and
    // whenever the calculator went all-dirty), afterwards only the nodes
    // incident to nets dirtied by the previous round's commits + staging —
    // every other node's stored gain is bitwise what a full sweep would
    // recompute against the identical snapshot.
    const bool dirty = collect_sweep_nodes();
    if (dirty) {
      parallel_gain_sweep_dirty(pool);
    } else {
      parallel_gain_sweep(pool);
    }

    // (2) Deterministic candidate order: gain descending, node id ascending
    // — an exact double compare over unique ids, i.e. a strict total order.
    // Heapified, not sorted: popping the max repeatedly visits candidates
    // in exactly the sorted order, but the walk below only ever consumes a
    // small prefix (the commit cap plus its skips), so the O(c log c) sort
    // becomes O(c) heapify + O(scanned * log c) pops.
    round_order_.clear();
    std::size_t kept = 0;
    for (const NodeId u : free_candidates_) {
      if (!calc_.is_free(u)) continue;
      free_candidates_[kept++] = u;
      round_order_.emplace_back(gains_[u], u);
    }
    free_candidates_.resize(kept);
    if (round_order_.empty()) break;
    const auto cand_below = [](const std::pair<double, NodeId>& a,
                               const std::pair<double, NodeId>& b) {
      if (a.first != b.first) return a.first < b.first;
      return a.second > b.second;
    };
    std::make_heap(round_order_.begin(), round_order_.end(), cand_below);

    // (3) Sequential conflict-resolution walk.  Commits per round are
    // capped: a whole-snapshot commit is maximally parallel but orders
    // moves far worse than the sequential engine's adaptive best-first
    // selection (every commit invalidates the snapshot gains of its
    // neighborhood, and with no cap the tail of the round runs on badly
    // stale gains).  Capping at a fraction of the free nodes keeps rounds
    // large enough to parallelize while re-snapshotting often enough to
    // stay close to the sequential engine's quality.
    const std::size_t max_commits = round_commit_cap(round_order_.size());
    ++round_stamp_;
    const std::size_t round_begin = moved_.size();
    while (!round_order_.empty()) {
      if (moved_.size() - round_begin >= max_commits) break;
      std::pop_heap(round_order_.begin(), round_order_.end(), cand_below);
      const NodeId u = round_order_.back().second;
      round_order_.pop_back();
      if (!balance.move_feasible(part.side_size(0), part.side(u),
                                 g.node_size(u))) {
        continue;
      }
      bool conflict = false;
      for (const NetId net : g.nets_of(u)) {
        if (net_stamp_[net] == round_stamp_) {
          conflict = true;
          break;
        }
      }
      if (conflict) continue;
      for (const NetId net : g.nets_of(u)) net_stamp_[net] = round_stamp_;

      // Net-disjointness makes the live immediate gain equal to its
      // round-start snapshot value: no net of u changed this round.
      const double immediate = part.immediate_gain(u);
      calc_.apply_moves(part, &u, 1);
      moved_.push_back(u);
      prefix += immediate;
      if (prefix > best_prefix + kEps) {
        best_prefix = prefix;
        best_count = moved_.size();
      }
    }
    if (stats) ++stats->rounds;
    if (moved_.size() == round_begin) break;  // nothing movable: pass over

    // (4) Refresh probabilities from the snapshot gains (the paper's
    // Sec. 3.4 staleness policy, batched per round) and rebuild the cache.
    stage_probabilities_and_rebuild(pool, dirty);
  }

  // Step 10: keep only the maximum-prefix moves.
  for (std::size_t i = moved_.size(); i > best_count; --i) {
    part.move(moved_[i - 1]);
  }
  if (stats) {
    stats->moves_attempted = moved_.size();
    stats->moves_accepted = best_count;
    stats->best_prefix_gain = best_prefix;
  }
  return best_prefix;
}

/// Steps 3-4 of Fig. 2: bootstrap probabilities, then iterate
/// gains -> probabilities `refine_iterations` times.  Leaves gains_ filled
/// with the final probabilistic gains.  Under the cached engine the gain
/// sweep is net-major — one for_each_net_gain emission per net, O(sum |n|)
/// total; the scratch engine keeps the legacy node-major sweep
/// (O(sum deg(u) * |n|)), which is the cost model the gain-kernel
/// benchmark measures it by.  kShadow deliberately follows the scratch
/// branch so a shadow run is decision-identical to a scratch run.
void PropRefiner::bootstrap_probabilities() {
  const Partition& part = *part_;
  const PropConfig& config = *config_;
  const NodeId n = part.graph().num_nodes();
  if (config.bootstrap == PropBootstrap::kUniform) {
    for (NodeId u = 0; u < n; ++u) {
      calc_.set_probability(u, config.model.pinit);
    }
  } else {
    for (NodeId u = 0; u < n; ++u) {
      calc_.set_probability(u, config.model.from_gain(part.immediate_gain(u)));
    }
  }
  const NetId nets = part.graph().num_nets();
  for (int iter = 0; iter < config.refine_iterations; ++iter) {
    // Gains from the current probability snapshot...  The first iteration
    // always sweeps everything (reset leaves the calculator all-dirty);
    // later iterations consume the dirty set the previous iteration's
    // set_probability calls accumulated — tracking is only ever enabled
    // here under kCached, where cached_gain(u) adds u's per-net terms in
    // ascending net order with arithmetic identical to the net-major
    // emission, so recomputing just the dirty nodes (everyone else keeps
    // their stored sum) is bit-identical to the full net-major sweep.
    const bool dirty = collect_sweep_nodes();
    if (dirty) {
      for (const NodeId v : sweep_nodes_) gains_[v] = calc_.gain(v);
    } else if (config.gain_engine == GainEngine::kCached) {
      std::fill(gains_.begin(), gains_.end(), 0.0);
      for (NetId net = 0; net < nets; ++net) {
        calc_.for_each_net_gain(
            net, [&](NodeId v, double gv) { gains_[v] += gv; });
      }
    } else {
      for (NodeId u = 0; u < n; ++u) gains_[u] = calc_.gain(u);
    }
    // ...then probabilities from those gains.
    for (NodeId u = 0; u < n; ++u) {
      calc_.set_probability(u, config.model.from_gain(gains_[u]));
    }
  }
}

/// Recomputes gain and probability of one free node from scratch at the
/// current probability state.  When the recomputed gain matches the stored
/// gains_[v] within kGainEps, the node's tree position and probability are
/// already right — skip the AVL remove/reinsert churn entirely (counted as
/// a refresh_skip in telemetry).
void PropRefiner::refresh_node(NodeId v, PassStats* stats) {
  const double g = calc_.gain(v);
  if (std::abs(g - gains_[v]) <= kGainEps) {
    if (stats) ++stats->refresh_skips;
    return;
  }
  gains_[v] = g;
  GainTree& tree = part_->side(v) == 0 ? side0_ : side1_;
  if (tree.contains(v)) {
    tree.update(v, g);
    if (stats) ++stats->ops.updates;
  }
  calc_.set_probability(v, config_->model.from_gain(g));
}

/// Drift-bounding resync (PropConfig::resync_interval): renormalizes the
/// cached products exactly, then recomputes gains_ of every free node from
/// scratch at the current probability state and refreshes the tree keys.
/// Probabilities are deliberately left to the normal per-move updates, so
/// immediately after this sweep gains_ agrees with
/// ProbGainCalculator::gain exactly.
void PropRefiner::resync_gains(PassStats* stats) {
  calc_.renormalize_all();
  const NodeId n = part_->graph().num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (!calc_.is_free(v)) continue;
    gains_[v] = calc_.gain(v);
    GainTree& tree = part_->side(v) == 0 ? side0_ : side1_;
    if (tree.contains(v)) {
      tree.update(v, gains_[v]);
      if (stats) ++stats->ops.updates;
    }
    if (stats) ++stats->resyncs;
  }
}

/// Debug audit (PropConfig::audit_interval): asserts the exact incremental
/// invariants — locked-pin counts, cached products vs the scratch oracle,
/// probability bounds, tree membership and tree keys vs gains_, incremental
/// cut cost — and records the gap between gains_ and a from-scratch
/// recompute as telemetry drift.  The gap is hard-asserted only when
/// `expect_scratch_match` is set (right after a resync): in between, gains_
/// is stale w.r.t. later probability updates of neighboring nodes *by
/// design* (the paper's Sec. 3.4 update policy).  Returns the max absolute
/// drift observed (feeds the degradation chain).
double PropRefiner::audit(PassStats* stats, bool expect_scratch_match) const {
  const Partition& part = *part_;
  const PropConfig& config = *config_;
  audit::check_cut(part, config.audit_tolerance);
  calc_.audit_consistency();
  audit::DriftTracker drift;
  const NodeId n = part.graph().num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    const GainTree& own = part.side(v) == 0 ? side0_ : side1_;
    const GainTree& other = part.side(v) == 0 ? side1_ : side0_;
    if (!calc_.is_free(v)) {
      audit::check_node(!side0_.contains(v) && !side1_.contains(v),
                        "PROP: locked node still in a gain tree", v);
      continue;
    }
    audit::check_node(own.contains(v) && !other.contains(v),
                      "PROP: free node not in its side's gain tree", v);
    audit::check_node(own.key(v) == gains_[v],
                      "PROP: tree key out of sync with gains[]", v);
    const double scratch = calc_.gain(v);
    drift.observe(v, gains_[v], scratch);
    if (expect_scratch_match) {
      audit::check_close(gains_[v], scratch, config.audit_tolerance,
                         "PROP gain after resync", v);
    }
  }
  if (stats) {
    ++stats->audits;
    if (drift.max_abs > stats->max_gain_drift) {
      stats->max_gain_drift = drift.max_abs;
    }
  }
  return drift.max_abs;
}

double PropRefiner::run_sequential_pass(PassStats* stats) {
  Partition& part = *part_;
  const PropConfig& config = *config_;
  const Hypergraph& g = part.graph();
  const NodeId n = g.num_nodes();

  // The visit-stamp epoch survives across passes (visit_stamp_ is reused,
  // not reallocated); rewind it before it can wrap around: at most one
  // stamp per bootstrap iteration plus one per move, at most n moves.
  const std::uint64_t iters =
      config.refine_iterations > 0 ? config.refine_iterations : 0;
  if (static_cast<std::uint64_t>(stamp_) + n + iters + 2 >=
      static_cast<std::uint32_t>(-1)) {
    std::fill(visit_stamp_.begin(), visit_stamp_.end(), 0);
    stamp_ = 0;
  }

  // Active-set bootstrap (DESIGN §4k): under the cached engine the
  // gain/probability fixed-point iterations only re-derive nodes whose
  // nets changed.  Tracking goes dormant for the move loop — its per-move
  // delta propagation is already incremental — and the next pass's reset
  // restarts from all-dirty either way.
  calc_.set_dirty_tracking(config.gain_engine == GainEngine::kCached);
  calc_.reset();
  bootstrap_probabilities();
  calc_.set_dirty_tracking(false);

  // Bulk-load the gain trees: stage (gain, node) per side, sort ascending
  // with node id as the tie key, link as a balanced tree in O(n).  Equal
  // gains end up in node order — the same LIFO recency order the old
  // insert-each-node loop produced — so the trees are observationally
  // identical to incremental construction, just cheaper.  (std::sort, not
  // stable_sort: the latter allocates, and this path must stay
  // allocation-free across passes.)
  sort_scratch_[0].clear();
  sort_scratch_[1].clear();
  for (NodeId u = 0; u < n; ++u) {
    sort_scratch_[part.side(u)].emplace_back(gains_[u], u);
  }
  for (int s = 0; s < 2; ++s) {
    auto& staged = sort_scratch_[s];
    std::sort(staged.begin(), staged.end());
    (s == 0 ? side0_ : side1_)
        .assign_sorted(staged.data(), static_cast<std::uint32_t>(staged.size()));
  }
  if (stats) stats->ops.inserts += n;

  moved_.clear();
  double prefix = 0.0;
  double best_prefix = 0.0;
  std::size_t best_count = 0;

  // With unit node sizes feasibility is uniform per side, so it is checked
  // once instead of walking the tree past every infeasible node.
  const bool unit_sizes = g.unit_node_sizes();
  const BalanceConstraint& balance = *balance_;
  const auto best_feasible = [&](GainTree& tree, int side) {
    if (tree.empty()) return GainTree::kNull;
    if (unit_sizes) {
      if (!balance.move_feasible(part.side_size(0), side, 1)) {
        return GainTree::kNull;
      }
      return tree.max();
    }
    GainTree::Handle found = GainTree::kNull;
    tree.for_each_descending([&](GainTree::Handle h, double) {
      if (balance.move_feasible(part.side_size(0), side, g.node_size(h))) {
        found = h;
        return false;
      }
      return true;
    });
    return found;
  };

  const RunContext* ctx = config.context;

  while (true) {
    if (ctx && ctx->refine_should_stop()) {
      interrupted_ = true;
      break;
    }
    // Step 6: best-gain node in either subset whose move keeps balance.
    const auto h0 = side0_.empty() ? GainTree::kNull : best_feasible(side0_, 0);
    const auto h1 = side1_.empty() ? GainTree::kNull : best_feasible(side1_, 1);
    if (h0 == GainTree::kNull && h1 == GainTree::kNull) break;

    NodeId u;
    if (h0 == GainTree::kNull) {
      u = h1;
    } else if (h1 == GainTree::kNull) {
      u = h0;
    } else if (std::abs(side0_.key(h0) - side1_.key(h1)) > kGainEps) {
      u = side0_.key(h0) > side1_.key(h1) ? h0 : h1;
    } else {
      // Gain tie (within FP tolerance — an exact comparison of probability
      // products never ties): move from the heavier side, mirroring FM.
      u = part.side_size(0) >= part.side_size(1) ? h0 : h1;
    }

    // Step 7: the recorded prefix uses the *immediate* deterministic gain.
    const int from = part.side(u);
    const double immediate = part.immediate_gain(u);
    (from == 0 ? side0_ : side1_).erase(u);
    if (stats) ++stats->ops.erases;

    // Step 8 / Sec. 3.4: after moving u, the removal probabilities of u's
    // nets change, so every free pin of those nets gets the before/after
    // delta of that net's gain contribution — O(pins of u's nets) per move.
    ++stamp_;
    to_refresh_.clear();
    const auto visit = [&](double sign) {
      for (const NetId net : g.nets_of(u)) {
        calc_.for_each_net_gain(net, [&](NodeId v, double gv) {
          if (v == u) return;
          if (visit_stamp_[v] != stamp_) {
            visit_stamp_[v] = stamp_;
            delta_[v] = 0.0;
            to_refresh_.push_back(v);
          }
          delta_[v] += sign * gv;
        });
      }
    };
    visit(-1.0);
    calc_.lock(u);
    part.move(u);
    calc_.move_locked(u, from);
    visit(+1.0);

    for (const NodeId v : to_refresh_) {
      // An exact == 0.0 test never fires once real contributions cancel:
      // the -old/+new accumulation leaves FP residue.  Treat residue-sized
      // deltas as "contribution unchanged" so they neither trigger tree
      // updates nor seep into gains[].
      if (std::abs(delta_[v]) <= kGainEps) continue;
      gains_[v] += delta_[v];
      GainTree& tree = part.side(v) == 0 ? side0_ : side1_;
      if (tree.contains(v)) {
        tree.update(v, gains_[v]);
        if (stats) ++stats->ops.updates;
      }
      calc_.set_probability(v, config.model.from_gain(gains_[v]));
    }

    for (GainTree* tree : {&side0_, &side1_}) {
      if (config.top_update_width <= 0) break;
      to_refresh_.clear();
      int budget = config.top_update_width;
      tree->for_each_descending([&](GainTree::Handle h, double) {
        to_refresh_.push_back(h);
        return --budget > 0;
      });
      for (const NodeId v : to_refresh_) {
        refresh_node(v, stats);
      }
    }

    moved_.push_back(u);
    prefix += immediate;
    if (prefix > best_prefix + kEps) {
      best_prefix = prefix;
      best_count = moved_.size();
    }

    const bool audit_due =
        config.audit_interval > 0 &&
        moved_.size() % static_cast<std::size_t>(config.audit_interval) == 0;
    const bool resync_due =
        config.resync_interval > 0 &&
        moved_.size() % static_cast<std::size_t>(config.resync_interval) == 0;
    double observed_drift = 0.0;
    if (audit_due) {
      // Records the accumulated drift since the last resync (or pass start).
      observed_drift = audit(stats, /*expect_scratch_match=*/false);
    }
    if (resync_due) {
      resync_gains(stats);
      if (audit_due) {
        // Post-resync, gains[] must equal the scratch recompute exactly.
        audit(stats, /*expect_scratch_match=*/true);
      }
    }

    // Degradation chain: drift beyond the hard bound (or an injected
    // prop-drift fault) means the incremental probabilistic bookkeeping is
    // diverging.  First line of defense is an emergency resync — the same
    // sweep as resync_interval, just demand-driven; past
    // max_emergency_resyncs the engine gives up on probabilistic gains and
    // requests the deterministic-FM fallback.
    bool drift_blowup = config.drift_hard_bound > 0 &&
                        observed_drift > config.drift_hard_bound;
    if (ctx && ctx->inject(FaultSite::kPropDrift)) drift_blowup = true;
    if (drift_blowup) {
      ++emergency_resyncs_;
      if (emergency_resyncs_ > config.max_emergency_resyncs) {
        fallback_to_fm_ = true;
        if (ctx) {
          ctx->degrade("prop.gain-drift", "fm-fallback",
                       std::to_string(emergency_resyncs_ - 1) +
                           " emergency resyncs did not hold; finishing with "
                           "deterministic FM gains");
        }
        break;  // roll back to the best prefix, then switch engines
      }
      resync_gains(stats);
      if (ctx) {
        ctx->degrade("prop.gain-drift", "resync",
                     "drift " + std::to_string(observed_drift) + " at move " +
                         std::to_string(moved_.size()));
      }
    }
  }

  // Step 10: keep only the maximum-prefix moves.
  for (std::size_t i = moved_.size(); i > best_count; --i) {
    part.move(moved_[i - 1]);
  }
  if (stats) {
    stats->moves_attempted = moved_.size();
    stats->moves_accepted = best_count;
    stats->best_prefix_gain = best_prefix;
  }
  return best_prefix;
}

RefineOutcome prop_refine(Partition& part, const BalanceConstraint& balance,
                          const PropConfig& config) {
  config.model.validate();
  PropRefiner refiner(part, balance, config);
  RefineOutcome out;
  for (int pass = 0; pass < config.max_passes; ++pass) {
    PassStats* stats = nullptr;
    WallTimer wall;
    CpuTimer cpu;
    if (config.telemetry) {
      stats = &config.telemetry->begin_pass(part.cut_cost());
    }
    const double gained = refiner.run_pass(stats);
    ++out.passes;
    if (stats) {
      stats->cut_after = part.cut_cost();
      stats->wall_seconds = wall.seconds();
      stats->cpu_seconds = cpu.seconds();
    }
    if (refiner.interrupted()) {
      out.interrupted = true;
      break;
    }
    if (refiner.fallback_to_fm() || gained <= kEps) break;
  }
  if (refiner.fallback_to_fm() && !out.interrupted) {
    // Last link of the degradation chain: finish with deterministic FM
    // gains — the exact incremental engine of the family — so the run still
    // converges to a locally-optimal cut.  Telemetry and the runtime
    // context carry over (FM passes append to the same trajectory).
    FmConfig fm;
    fm.max_passes = config.max_passes;
    fm.telemetry = config.telemetry;
    fm.context = config.context;
    const RefineOutcome fm_out = fm_refine(part, balance, fm);
    out.passes += fm_out.passes;
    out.interrupted = fm_out.interrupted;
  }
  out.cut_cost = part.cut_cost();
  return out;
}

PartitionResult PropPartitioner::run(const Hypergraph& g,
                                     const BalanceConstraint& balance,
                                     std::uint64_t seed) {
  Rng rng(seed);
  Partition part(g, random_balanced_sides(g, balance, rng));
  const RefineOutcome outcome = prop_refine(part, balance, config_);
  PartitionResult result;
  result.side = part.sides();
  result.cut_cost = outcome.cut_cost;
  result.passes = outcome.passes;
  return result;
}

}  // namespace prop
