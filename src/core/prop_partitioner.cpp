#include "core/prop_partitioner.h"

#include <cmath>
#include <string>
#include <vector>

#include "core/prob_gain.h"
#include "datastruct/avl_tree.h"
#include "fm/fm_partitioner.h"
#include "partition/initial.h"
#include "telemetry/invariant_audit.h"
#include "util/rng.h"
#include "util/timer.h"

namespace prop {
namespace {

constexpr double kEps = 1e-9;

/// Probabilistic gains are products/sums of doubles, so exact comparisons
/// essentially never fire; anything within this absolute tolerance is
/// treated as equal (selection ties) or as unchanged (delta application).
constexpr double kGainEps = 1e-12;

using GainTree = AvlTree<double>;

/// Steps 3-4 of Fig. 2: bootstrap probabilities, then iterate
/// gains -> probabilities `refine_iterations` times.  Leaves `gains` filled
/// with the final probabilistic gains.
void bootstrap_probabilities(const Partition& part, const PropConfig& config,
                             ProbGainCalculator& calc,
                             std::vector<double>& gains) {
  const NodeId n = part.graph().num_nodes();
  if (config.bootstrap == PropBootstrap::kUniform) {
    for (NodeId u = 0; u < n; ++u) calc.set_probability(u, config.model.pinit);
  } else {
    for (NodeId u = 0; u < n; ++u) {
      calc.set_probability(u, config.model.from_gain(part.immediate_gain(u)));
    }
  }
  gains.resize(n);
  for (int iter = 0; iter < config.refine_iterations; ++iter) {
    // Gains from the current probability snapshot...
    for (NodeId u = 0; u < n; ++u) gains[u] = calc.gain(u);
    // ...then probabilities from those gains.
    for (NodeId u = 0; u < n; ++u) {
      calc.set_probability(u, config.model.from_gain(gains[u]));
    }
  }
}

/// Recomputes gain and probability of one free node from scratch,
/// refreshing its tree position and the gains mirror.
void refresh_node(NodeId v, const PropConfig& config, ProbGainCalculator& calc,
                  const Partition& part, std::vector<double>& gains,
                  GainTree& side0, GainTree& side1, PassStats* stats) {
  const double g = calc.gain(v);
  gains[v] = g;
  GainTree& tree = part.side(v) == 0 ? side0 : side1;
  if (tree.contains(v)) {
    tree.update(v, g);
    if (stats) ++stats->ops.updates;
  }
  calc.set_probability(v, config.model.from_gain(g));
}

/// Drift-bounding resync (PropConfig::resync_interval): recomputes gains[]
/// of every free node from scratch at the current probability state and
/// refreshes the tree keys.  Probabilities are deliberately left to the
/// normal per-move updates, so immediately after this sweep gains[] agrees
/// with ProbGainCalculator::gain exactly.
void resync_gains(const Partition& part, const ProbGainCalculator& calc,
                  std::vector<double>& gains, GainTree& side0, GainTree& side1,
                  PassStats* stats) {
  const NodeId n = part.graph().num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    if (!calc.is_free(v)) continue;
    gains[v] = calc.gain(v);
    GainTree& tree = part.side(v) == 0 ? side0 : side1;
    if (tree.contains(v)) {
      tree.update(v, gains[v]);
      if (stats) ++stats->ops.updates;
    }
    if (stats) ++stats->resyncs;
  }
}

/// Debug audit (PropConfig::audit_interval): asserts the exact incremental
/// invariants — locked-pin counts, probability bounds, tree membership and
/// tree keys vs gains[], incremental cut cost — and records the gap between
/// gains[] and a from-scratch recompute as telemetry drift.  The gap is
/// hard-asserted only when `expect_scratch_match` is set (right after a
/// resync): in between, gains[] is stale w.r.t. later probability updates
/// of neighboring nodes *by design* (the paper's Sec. 3.4 update policy).
/// Returns the max absolute drift observed (feeds the degradation chain).
double prop_audit(const Partition& part, const ProbGainCalculator& calc,
                  const std::vector<double>& gains, const GainTree& side0,
                  const GainTree& side1, const PropConfig& config,
                  PassStats* stats, bool expect_scratch_match) {
  audit::check_cut(part, config.audit_tolerance);
  calc.audit_consistency();
  audit::DriftTracker drift;
  const NodeId n = part.graph().num_nodes();
  for (NodeId v = 0; v < n; ++v) {
    const GainTree& own = part.side(v) == 0 ? side0 : side1;
    const GainTree& other = part.side(v) == 0 ? side1 : side0;
    if (!calc.is_free(v)) {
      audit::check_node(!side0.contains(v) && !side1.contains(v),
                        "PROP: locked node still in a gain tree", v);
      continue;
    }
    audit::check_node(own.contains(v) && !other.contains(v),
                      "PROP: free node not in its side's gain tree", v);
    audit::check_node(own.key(v) == gains[v],
                      "PROP: tree key out of sync with gains[]", v);
    const double scratch = calc.gain(v);
    drift.observe(v, gains[v], scratch);
    if (expect_scratch_match) {
      audit::check_close(gains[v], scratch, config.audit_tolerance,
                         "PROP gain after resync", v);
    }
  }
  if (stats) {
    ++stats->audits;
    if (drift.max_abs > stats->max_gain_drift) {
      stats->max_gain_drift = drift.max_abs;
    }
  }
  return drift.max_abs;
}

/// Cross-pass state of one prop_refine call's degradation chain.
struct PassControl {
  bool interrupted = false;     ///< deadline/cancel stopped the pass
  bool fallback_to_fm = false;  ///< drift chain exhausted; switch engines
  int emergency_resyncs = 0;    ///< accumulated over the whole refine call
};

/// One PROP pass (steps 3-10 of Fig. 2).  Returns the accepted improvement.
double prop_pass(Partition& part, const BalanceConstraint& balance,
                 const PropConfig& config, ProbGainCalculator& calc,
                 GainTree& side0, GainTree& side1, PassStats* stats,
                 PassControl& control) {
  const Hypergraph& g = part.graph();
  const NodeId n = g.num_nodes();

  calc.reset();
  std::vector<double> gains;
  bootstrap_probabilities(part, config, calc, gains);

  side0.clear();
  side1.clear();
  for (NodeId u = 0; u < n; ++u) {
    (part.side(u) == 0 ? side0 : side1).insert(u, gains[u]);
  }
  if (stats) stats->ops.inserts += n;

  std::vector<double> delta(n, 0.0);

  std::vector<NodeId> moved;
  moved.reserve(n);
  double prefix = 0.0;
  double best_prefix = 0.0;
  std::size_t best_count = 0;

  // With unit node sizes feasibility is uniform per side, so it is checked
  // once instead of walking the tree past every infeasible node.
  const bool unit_sizes = g.unit_node_sizes();
  const auto best_feasible = [&](GainTree& tree, int side) {
    if (tree.empty()) return GainTree::kNull;
    if (unit_sizes) {
      if (!balance.move_feasible(part.side_size(0), side, 1)) {
        return GainTree::kNull;
      }
      return tree.max();
    }
    GainTree::Handle found = GainTree::kNull;
    tree.for_each_descending([&](GainTree::Handle h, double) {
      if (balance.move_feasible(part.side_size(0), side, g.node_size(h))) {
        found = h;
        return false;
      }
      return true;
    });
    return found;
  };

  std::vector<NodeId> to_refresh;
  std::vector<std::uint32_t> visit_stamp(n, 0);
  std::uint32_t stamp = 0;

  const RunContext* ctx = config.context;

  while (true) {
    if (ctx && ctx->refine_should_stop()) {
      control.interrupted = true;
      break;
    }
    // Step 6: best-gain node in either subset whose move keeps balance.
    const auto h0 = side0.empty() ? GainTree::kNull : best_feasible(side0, 0);
    const auto h1 = side1.empty() ? GainTree::kNull : best_feasible(side1, 1);
    if (h0 == GainTree::kNull && h1 == GainTree::kNull) break;

    NodeId u;
    if (h0 == GainTree::kNull) {
      u = h1;
    } else if (h1 == GainTree::kNull) {
      u = h0;
    } else if (std::abs(side0.key(h0) - side1.key(h1)) > kGainEps) {
      u = side0.key(h0) > side1.key(h1) ? h0 : h1;
    } else {
      // Gain tie (within FP tolerance — an exact comparison of probability
      // products never ties): move from the heavier side, mirroring FM.
      u = part.side_size(0) >= part.side_size(1) ? h0 : h1;
    }

    // Step 7: the recorded prefix uses the *immediate* deterministic gain.
    const int from = part.side(u);
    const double immediate = part.immediate_gain(u);
    (from == 0 ? side0 : side1).erase(u);
    if (stats) ++stats->ops.erases;

    // Step 8 / Sec. 3.4: after moving u, the removal probabilities of u's
    // nets change, so every free pin of those nets gets the before/after
    // delta of that net's gain contribution — O(pins of u's nets) per move.
    ++stamp;
    to_refresh.clear();
    const auto visit = [&](double sign) {
      for (const NetId net : g.nets_of(u)) {
        calc.for_each_net_gain(net, [&](NodeId v, double gv) {
          if (v == u) return;
          if (visit_stamp[v] != stamp) {
            visit_stamp[v] = stamp;
            delta[v] = 0.0;
            to_refresh.push_back(v);
          }
          delta[v] += sign * gv;
        });
      }
    };
    visit(-1.0);
    calc.lock(u);
    part.move(u);
    calc.move_locked(u, from);
    visit(+1.0);

    for (const NodeId v : to_refresh) {
      // An exact == 0.0 test never fires once real contributions cancel:
      // the -old/+new accumulation leaves FP residue.  Treat residue-sized
      // deltas as "contribution unchanged" so they neither trigger tree
      // updates nor seep into gains[].
      if (std::abs(delta[v]) <= kGainEps) continue;
      gains[v] += delta[v];
      GainTree& tree = part.side(v) == 0 ? side0 : side1;
      if (tree.contains(v)) {
        tree.update(v, gains[v]);
        if (stats) ++stats->ops.updates;
      }
      calc.set_probability(v, config.model.from_gain(gains[v]));
    }

    for (GainTree* tree : {&side0, &side1}) {
      if (config.top_update_width <= 0) break;
      to_refresh.clear();
      int budget = config.top_update_width;
      tree->for_each_descending([&](GainTree::Handle h, double) {
        to_refresh.push_back(h);
        return --budget > 0;
      });
      for (const NodeId v : to_refresh) {
        refresh_node(v, config, calc, part, gains, side0, side1, stats);
      }
    }

    moved.push_back(u);
    prefix += immediate;
    if (prefix > best_prefix + kEps) {
      best_prefix = prefix;
      best_count = moved.size();
    }

    const bool audit_due =
        config.audit_interval > 0 &&
        moved.size() % static_cast<std::size_t>(config.audit_interval) == 0;
    const bool resync_due =
        config.resync_interval > 0 &&
        moved.size() % static_cast<std::size_t>(config.resync_interval) == 0;
    double observed_drift = 0.0;
    if (audit_due) {
      // Records the accumulated drift since the last resync (or pass start).
      observed_drift = prop_audit(part, calc, gains, side0, side1, config,
                                  stats, /*expect_scratch_match=*/false);
    }
    if (resync_due) {
      resync_gains(part, calc, gains, side0, side1, stats);
      if (audit_due) {
        // Post-resync, gains[] must equal the scratch recompute exactly.
        prop_audit(part, calc, gains, side0, side1, config, stats,
                   /*expect_scratch_match=*/true);
      }
    }

    // Degradation chain: drift beyond the hard bound (or an injected
    // prop-drift fault) means the incremental probabilistic bookkeeping is
    // diverging.  First line of defense is an emergency resync — the same
    // sweep as resync_interval, just demand-driven; past
    // max_emergency_resyncs the engine gives up on probabilistic gains and
    // requests the deterministic-FM fallback.
    bool drift_blowup = config.drift_hard_bound > 0 &&
                        observed_drift > config.drift_hard_bound;
    if (ctx && ctx->inject(FaultSite::kPropDrift)) drift_blowup = true;
    if (drift_blowup) {
      ++control.emergency_resyncs;
      if (control.emergency_resyncs > config.max_emergency_resyncs) {
        control.fallback_to_fm = true;
        if (ctx) {
          ctx->degrade("prop.gain-drift", "fm-fallback",
                       std::to_string(control.emergency_resyncs - 1) +
                           " emergency resyncs did not hold; finishing with "
                           "deterministic FM gains");
        }
        break;  // roll back to the best prefix, then switch engines
      }
      resync_gains(part, calc, gains, side0, side1, stats);
      if (ctx) {
        ctx->degrade("prop.gain-drift", "resync",
                     "drift " + std::to_string(observed_drift) + " at move " +
                         std::to_string(moved.size()));
      }
    }
  }

  // Step 10: keep only the maximum-prefix moves.
  for (std::size_t i = moved.size(); i > best_count; --i) {
    part.move(moved[i - 1]);
  }
  if (stats) {
    stats->moves_attempted = moved.size();
    stats->moves_accepted = best_count;
    stats->best_prefix_gain = best_prefix;
  }
  return best_prefix;
}

}  // namespace

RefineOutcome prop_refine(Partition& part, const BalanceConstraint& balance,
                          const PropConfig& config) {
  config.model.validate();
  ProbGainCalculator calc(part);
  GainTree side0(part.graph().num_nodes());
  GainTree side1(part.graph().num_nodes());
  RefineOutcome out;
  PassControl control;
  for (int pass = 0; pass < config.max_passes; ++pass) {
    PassStats* stats = nullptr;
    WallTimer wall;
    CpuTimer cpu;
    if (config.telemetry) {
      stats = &config.telemetry->begin_pass(part.cut_cost());
    }
    const double gained =
        prop_pass(part, balance, config, calc, side0, side1, stats, control);
    ++out.passes;
    if (stats) {
      stats->cut_after = part.cut_cost();
      stats->wall_seconds = wall.seconds();
      stats->cpu_seconds = cpu.seconds();
    }
    if (control.interrupted) {
      out.interrupted = true;
      break;
    }
    if (control.fallback_to_fm || gained <= kEps) break;
  }
  if (control.fallback_to_fm && !out.interrupted) {
    // Last link of the degradation chain: finish with deterministic FM
    // gains — the exact incremental engine of the family — so the run still
    // converges to a locally-optimal cut.  Telemetry and the runtime
    // context carry over (FM passes append to the same trajectory).
    FmConfig fm;
    fm.max_passes = config.max_passes;
    fm.telemetry = config.telemetry;
    fm.context = config.context;
    const RefineOutcome fm_out = fm_refine(part, balance, fm);
    out.passes += fm_out.passes;
    out.interrupted = fm_out.interrupted;
  }
  out.cut_cost = part.cut_cost();
  return out;
}

PartitionResult PropPartitioner::run(const Hypergraph& g,
                                     const BalanceConstraint& balance,
                                     std::uint64_t seed) {
  Rng rng(seed);
  Partition part(g, random_balanced_sides(g, balance, rng));
  const RefineOutcome outcome = prop_refine(part, balance, config_);
  PartitionResult result;
  result.side = part.sides();
  result.cut_cost = outcome.cut_cost;
  result.passes = outcome.passes;
  return result;
}

}  // namespace prop
