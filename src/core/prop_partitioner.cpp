#include "core/prop_partitioner.h"

#include <vector>

#include "core/prob_gain.h"
#include "datastruct/avl_tree.h"
#include "partition/initial.h"
#include "util/rng.h"

namespace prop {
namespace {

constexpr double kEps = 1e-9;

using GainTree = AvlTree<double>;

/// Steps 3-4 of Fig. 2: bootstrap probabilities, then iterate
/// gains -> probabilities `refine_iterations` times.  Leaves `gains` filled
/// with the final probabilistic gains.
void bootstrap_probabilities(const Partition& part, const PropConfig& config,
                             ProbGainCalculator& calc,
                             std::vector<double>& gains) {
  const NodeId n = part.graph().num_nodes();
  if (config.bootstrap == PropBootstrap::kUniform) {
    for (NodeId u = 0; u < n; ++u) calc.set_probability(u, config.model.pinit);
  } else {
    for (NodeId u = 0; u < n; ++u) {
      calc.set_probability(u, config.model.from_gain(part.immediate_gain(u)));
    }
  }
  gains.resize(n);
  for (int iter = 0; iter < config.refine_iterations; ++iter) {
    // Gains from the current probability snapshot...
    for (NodeId u = 0; u < n; ++u) gains[u] = calc.gain(u);
    // ...then probabilities from those gains.
    for (NodeId u = 0; u < n; ++u) {
      calc.set_probability(u, config.model.from_gain(gains[u]));
    }
  }
}

/// Recomputes gain and probability of one free node from scratch,
/// refreshing its tree position and the gains mirror.
void refresh_node(NodeId v, const PropConfig& config, ProbGainCalculator& calc,
                  const Partition& part, std::vector<double>& gains,
                  GainTree& side0, GainTree& side1) {
  const double g = calc.gain(v);
  gains[v] = g;
  GainTree& tree = part.side(v) == 0 ? side0 : side1;
  if (tree.contains(v)) tree.update(v, g);
  calc.set_probability(v, config.model.from_gain(g));
}

/// One PROP pass (steps 3-10 of Fig. 2).  Returns the accepted improvement.
double prop_pass(Partition& part, const BalanceConstraint& balance,
                 const PropConfig& config, ProbGainCalculator& calc,
                 GainTree& side0, GainTree& side1) {
  const Hypergraph& g = part.graph();
  const NodeId n = g.num_nodes();

  calc.reset();
  std::vector<double> gains;
  bootstrap_probabilities(part, config, calc, gains);

  side0.clear();
  side1.clear();
  for (NodeId u = 0; u < n; ++u) {
    (part.side(u) == 0 ? side0 : side1).insert(u, gains[u]);
  }

  std::vector<double> delta(n, 0.0);

  std::vector<NodeId> moved;
  moved.reserve(n);
  double prefix = 0.0;
  double best_prefix = 0.0;
  std::size_t best_count = 0;

  // With unit node sizes feasibility is uniform per side, so it is checked
  // once instead of walking the tree past every infeasible node.
  const bool unit_sizes = g.unit_node_sizes();
  const auto best_feasible = [&](GainTree& tree, int side) {
    if (tree.empty()) return GainTree::kNull;
    if (unit_sizes) {
      if (!balance.move_feasible(part.side_size(0), side, 1)) {
        return GainTree::kNull;
      }
      return tree.max();
    }
    GainTree::Handle found = GainTree::kNull;
    tree.for_each_descending([&](GainTree::Handle h, double) {
      if (balance.move_feasible(part.side_size(0), side, g.node_size(h))) {
        found = h;
        return false;
      }
      return true;
    });
    return found;
  };

  std::vector<NodeId> to_refresh;
  std::vector<std::uint32_t> visit_stamp(n, 0);
  std::uint32_t stamp = 0;

  while (true) {
    // Step 6: best-gain node in either subset whose move keeps balance.
    const auto h0 = side0.empty() ? GainTree::kNull : best_feasible(side0, 0);
    const auto h1 = side1.empty() ? GainTree::kNull : best_feasible(side1, 1);
    if (h0 == GainTree::kNull && h1 == GainTree::kNull) break;

    NodeId u;
    if (h0 == GainTree::kNull) {
      u = h1;
    } else if (h1 == GainTree::kNull) {
      u = h0;
    } else if (side0.key(h0) != side1.key(h1)) {
      u = side0.key(h0) > side1.key(h1) ? h0 : h1;
    } else {
      u = part.side_size(0) >= part.side_size(1) ? h0 : h1;
    }

    // Step 7: the recorded prefix uses the *immediate* deterministic gain.
    const int from = part.side(u);
    const double immediate = part.immediate_gain(u);
    (from == 0 ? side0 : side1).erase(u);

    // Step 8 / Sec. 3.4: after moving u, the removal probabilities of u's
    // nets change, so every free pin of those nets gets the before/after
    // delta of that net's gain contribution — O(pins of u's nets) per move.
    ++stamp;
    to_refresh.clear();
    const auto visit = [&](double sign) {
      for (const NetId net : g.nets_of(u)) {
        calc.for_each_net_gain(net, [&](NodeId v, double gv) {
          if (v == u) return;
          if (visit_stamp[v] != stamp) {
            visit_stamp[v] = stamp;
            delta[v] = 0.0;
            to_refresh.push_back(v);
          }
          delta[v] += sign * gv;
        });
      }
    };
    visit(-1.0);
    calc.lock(u);
    part.move(u);
    calc.move_locked(u, from);
    visit(+1.0);

    for (const NodeId v : to_refresh) {
      if (delta[v] == 0.0) continue;  // contribution unchanged
      gains[v] += delta[v];
      GainTree& tree = part.side(v) == 0 ? side0 : side1;
      if (tree.contains(v)) tree.update(v, gains[v]);
      calc.set_probability(v, config.model.from_gain(gains[v]));
    }

    for (GainTree* tree : {&side0, &side1}) {
      if (config.top_update_width <= 0) break;
      to_refresh.clear();
      int budget = config.top_update_width;
      tree->for_each_descending([&](GainTree::Handle h, double) {
        to_refresh.push_back(h);
        return --budget > 0;
      });
      for (const NodeId v : to_refresh) {
        refresh_node(v, config, calc, part, gains, side0, side1);
      }
    }

    moved.push_back(u);
    prefix += immediate;
    if (prefix > best_prefix + kEps) {
      best_prefix = prefix;
      best_count = moved.size();
    }
  }

  // Step 10: keep only the maximum-prefix moves.
  for (std::size_t i = moved.size(); i > best_count; --i) {
    part.move(moved[i - 1]);
  }
  return best_prefix;
}

}  // namespace

RefineOutcome prop_refine(Partition& part, const BalanceConstraint& balance,
                          const PropConfig& config) {
  config.model.validate();
  ProbGainCalculator calc(part);
  GainTree side0(part.graph().num_nodes());
  GainTree side1(part.graph().num_nodes());
  RefineOutcome out;
  for (int pass = 0; pass < config.max_passes; ++pass) {
    const double gained = prop_pass(part, balance, config, calc, side0, side1);
    ++out.passes;
    if (gained <= kEps) break;
  }
  out.cut_cost = part.cut_cost();
  return out;
}

PartitionResult PropPartitioner::run(const Hypergraph& g,
                                     const BalanceConstraint& balance,
                                     std::uint64_t seed) {
  Rng rng(seed);
  Partition part(g, random_balanced_sides(g, balance, rng));
  const RefineOutcome outcome = prop_refine(part, balance, config_);
  PartitionResult result;
  result.side = part.sides();
  result.cut_cost = outcome.cut_cost;
  result.passes = outcome.passes;
  return result;
}

}  // namespace prop
