// The worked example of the paper's Figure 1, reconstructed as a netlist.
//
// Eleven labelled nodes sit in V1 with seventeen nets n1..n17:
//   * node 1 on cut nets n1, n2 and on n9 = {1,4,5,6,7,...};
//   * node 2 on cut nets n3, n4 and on n10 = {2,8,9,...};
//   * node 3 on cut nets n6, n7 and on n11 = {3,10,11,...};
//   * nodes 10/11 on sole-pin cut nets n5/n8 and on n11;
//   * nodes 4..9 each on one uncut net n12..n17 paired with a hidden
//     V1 partner of probability 0.5 (Sec. 3.3: "nets n12 to n17 ... are
//     each connected to one other node (not shown) of probability 0.5").
// Every cut net additionally connects three V2 nodes, so LA-3's negative
// terms vanish at levels <= 3 (matching the printed vectors) and the
// p(n^{2->1}) terms are negligible (the example treats them as equal;
// injecting p = 0 for V2 reproduces the printed gains exactly).
//
// FM gives nodes 1, 2, 3 identical gains (2); LA-3 separates {2,3} from 1
// via (2,0,1) > (2,0,0); PROP's second iteration yields
// g(1) = 2.0016, g(2) = 2.04, g(3) = 2.64 — only PROP ranks node 3 first.
#pragma once

#include <vector>

#include "hypergraph/hypergraph.h"

namespace prop {

struct Figure1Example {
  Hypergraph graph;
  /// side[u]: 0 for V1 (nodes 1..11 and hidden partners), 1 for V2.
  std::vector<std::uint8_t> side;
  /// Node probabilities after the first gain/probability iteration
  /// (Fig. 1b): 1.0 for nodes 1-3, 0.8 for nodes 10/11, 0.2 for nodes 4-9,
  /// 0.5 for hidden partners, 0.0 for V2 nodes.
  std::vector<double> initial_probability;

  /// Id of the paper's node k (1-based, k in [1, 11]).
  NodeId node(int k) const { return static_cast<NodeId>(k - 1); }
  /// Id of the hidden V1 partner of node k (k in [4, 9]).
  NodeId partner(int k) const { return static_cast<NodeId>(7 + k); }
  /// Net id of the paper's net n_j (1-based, j in [1, 17]).
  NetId net(int j) const { return static_cast<NetId>(j - 1); }
};

/// Builds the Figure 1 instance.
Figure1Example make_figure1_example();

}  // namespace prop
