// Static timing analysis over a netlist — the substrate behind the paper's
// timing-driven motivation ("if we are trying to minimize timing, then a
// critical net is assigned more weight", Sec. 1, citing Jackson,
// Srinivasan & Kuh).
//
// The undirected netlist is given a conventional signal orientation: each
// net's first pin drives, the remaining pins sink.  That induces a directed
// graph over nodes; any cycles (latch loops, arbitrary pin order) are
// broken by ignoring back edges discovered during the topological sort, as
// production STA tools do for combinational analysis.  Unit node delays and
// unit net delays give arrival/required times and per-net slack, from which
// net criticalities and timing-driven net weights are derived.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"

namespace prop {

struct TimingAnalysis {
  std::vector<double> arrival;    ///< per node
  std::vector<double> required;   ///< per node
  std::vector<double> net_slack;  ///< per net (min over its sink edges)
  double critical_path = 0.0;     ///< max arrival
  std::size_t back_edges = 0;     ///< edges dropped to break cycles

  /// Criticality in [0, 1]: 1 on the critical path, 0 at max slack.
  double net_criticality(NetId n) const {
    if (critical_path <= 0.0) return 0.0;
    const double s = net_slack[n];
    const double c = 1.0 - s / critical_path;
    return c < 0.0 ? 0.0 : (c > 1.0 ? 1.0 : c);
  }
};

struct TimingOptions {
  double node_delay = 1.0;
  double net_delay = 1.0;
};

/// Runs unit-delay STA with first-pin-drives orientation.
TimingAnalysis analyze_timing(const Hypergraph& g,
                              const TimingOptions& options = {});

/// Rebuilds `g` with net costs 1 + alpha * criticality(n) — the paper's
/// "critical net is assigned more weight" policy.  alpha > 0.
Hypergraph apply_timing_weights(const Hypergraph& g, const TimingAnalysis& sta,
                                double alpha);

}  // namespace prop
