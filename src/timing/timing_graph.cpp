#include "timing/timing_graph.h"

#include <algorithm>
#include <vector>

#include "hypergraph/builder.h"

namespace prop {
namespace {

/// DFS post-order over the first-pin-drives digraph, skipping back edges.
/// Returns a topological order of the acyclic remainder and counts the
/// dropped back edges.
struct TopoResult {
  std::vector<NodeId> order;  ///< topological (sources first)
  std::size_t back_edges = 0;
};

TopoResult topological_order(const Hypergraph& g) {
  const NodeId n = g.num_nodes();
  TopoResult out;
  out.order.reserve(n);
  // 0 = white, 1 = on stack (grey), 2 = done (black).
  std::vector<std::uint8_t> color(n, 0);

  struct Frame {
    NodeId node;
    std::size_t net_index;
    std::size_t pin_index;
  };
  std::vector<Frame> stack;
  std::vector<NodeId> post;
  post.reserve(n);

  for (NodeId root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    stack.push_back({root, 0, 1});
    color[root] = 1;
    while (!stack.empty()) {
      Frame& f = stack.back();
      const auto nets = g.nets_of(f.node);
      bool descended = false;
      while (f.net_index < nets.size()) {
        const NetId net = nets[f.net_index];
        const auto pins = g.pins_of(net);
        // Only nets driven by this node (first pin) fan out from it.
        if (pins.empty() || pins.front() != f.node) {
          ++f.net_index;
          f.pin_index = 1;
          continue;
        }
        if (f.pin_index >= pins.size()) {
          ++f.net_index;
          f.pin_index = 1;
          continue;
        }
        const NodeId sink = pins[f.pin_index++];
        if (color[sink] == 0) {
          color[sink] = 1;
          stack.push_back({sink, 0, 1});
          descended = true;
          break;
        }
        if (color[sink] == 1) ++out.back_edges;  // cycle edge: dropped
      }
      if (descended) continue;
      if (f.net_index >= nets.size()) {
        color[f.node] = 2;
        post.push_back(f.node);
        stack.pop_back();
      }
    }
  }
  // Reverse post-order = topological order of the DAG remainder.
  out.order.assign(post.rbegin(), post.rend());
  return out;
}

}  // namespace

TimingAnalysis analyze_timing(const Hypergraph& g, const TimingOptions& options) {
  const NodeId n = g.num_nodes();
  const double edge_delay = options.node_delay + options.net_delay;

  TimingAnalysis sta;
  sta.arrival.assign(n, 0.0);

  const TopoResult topo = topological_order(g);
  sta.back_edges = topo.back_edges;

  std::vector<std::uint32_t> rank(n, 0);
  for (std::uint32_t i = 0; i < topo.order.size(); ++i) rank[topo.order[i]] = i;

  // Forward propagation in topological order (back edges ignored by the
  // rank guard, matching the edges the DFS dropped up to tie variations).
  for (const NodeId u : topo.order) {
    for (const NetId net : g.nets_of(u)) {
      const auto pins = g.pins_of(net);
      if (pins.empty() || pins.front() != u) continue;
      for (std::size_t i = 1; i < pins.size(); ++i) {
        const NodeId sink = pins[i];
        if (rank[sink] <= rank[u]) continue;  // dropped back edge
        sta.arrival[sink] =
            std::max(sta.arrival[sink], sta.arrival[u] + edge_delay);
      }
    }
  }
  sta.critical_path = 0.0;
  for (const double a : sta.arrival) sta.critical_path = std::max(sta.critical_path, a);

  // Backward propagation for required times.
  sta.required.assign(n, sta.critical_path);
  for (auto it = topo.order.rbegin(); it != topo.order.rend(); ++it) {
    const NodeId u = *it;
    for (const NetId net : g.nets_of(u)) {
      const auto pins = g.pins_of(net);
      if (pins.empty() || pins.front() != u) continue;
      for (std::size_t i = 1; i < pins.size(); ++i) {
        const NodeId sink = pins[i];
        if (rank[sink] <= rank[u]) continue;
        sta.required[u] =
            std::min(sta.required[u], sta.required[sink] - edge_delay);
      }
    }
  }

  // Net slack: tightest of its driver->sink edges.
  sta.net_slack.assign(g.num_nets(), sta.critical_path);
  for (NetId net = 0; net < g.num_nets(); ++net) {
    const auto pins = g.pins_of(net);
    if (pins.size() < 2) continue;
    const NodeId driver = pins.front();
    double slack = sta.critical_path;
    for (std::size_t i = 1; i < pins.size(); ++i) {
      const NodeId sink = pins[i];
      if (rank[sink] <= rank[driver]) continue;
      slack = std::min(slack,
                       sta.required[sink] - (sta.arrival[driver] + edge_delay));
    }
    sta.net_slack[net] = slack;
  }
  return sta;
}

Hypergraph apply_timing_weights(const Hypergraph& g, const TimingAnalysis& sta,
                                double alpha) {
  if (alpha <= 0.0) {
    throw std::invalid_argument("timing weights: alpha must be positive");
  }
  HypergraphBuilder builder(g.num_nodes());
  builder.set_name(g.name() + ".timing");
  std::vector<NodeId> pins;
  for (NetId net = 0; net < g.num_nets(); ++net) {
    pins.assign(g.pins_of(net).begin(), g.pins_of(net).end());
    const double cost =
        g.net_cost(net) * (1.0 + alpha * sta.net_criticality(net));
    builder.add_net(pins, cost);
  }
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    builder.set_node_size(u, g.node_size(u));
  }
  return std::move(builder).build();
}

}  // namespace prop
