// Multilevel k-way V-cycle: the 2-way driver's coarsening and projection
// machinery with native k-way refinement at every uncoarsening level.
//
// Coarsening is the same attraction clustering + contract() loop as
// multilevel_driver.h.  The coarsest graph is solved by the k-way pipeline
// (recursive bisection with a multi-start FM bisector, then the configured
// k-way refiner), and each projection step hands the next finer level an
// already-good k-way partition that the greedy polish legalizes and the
// k-way PROP refiner improves toward the configured objective.  Balance at
// every level is the shared proportional-share window
// (partition/kway_balance.h) recomputed against that level's max node
// size, so super-node weight never makes the window unreachable.
//
// Deterministic: everything is seeded, so equal seeds give byte-identical
// results for any runner thread count (same contract as the 2-way driver).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "fm/fm_partitioner.h"
#include "kway/kway_partitioner.h"
#include "multilevel/multilevel_driver.h"

namespace prop {

struct MultilevelKWayConfig {
  NodeId k = 2;
  /// Proportional-share tolerance applied at every level.
  double tolerance = 0.1;
  KWayObjective objective = KWayObjective::kConnectivity;
  /// Refiner at every uncoarsening level AND inside the coarsest solve.
  KWayRefinerKind refiner = KWayRefinerKind::kProp;
  KWayPropConfig prop;  ///< PROP-stage knobs (refiner == kProp)
  int greedy_max_passes = 16;
  /// Multi-start pipeline runs on the coarsest graph (best objective wins).
  int initial_runs = 4;
  /// 2-way bisector settings for recursive bisection on the coarsest graph.
  FmConfig fm;
  // Coarsening knobs — same semantics as MultilevelConfig.
  NodeId coarsest_max_nodes = 200;
  int max_levels = 64;
  double min_reduction = 0.95;
  double max_cluster_fraction = 1.0 / 32.0;
  std::size_t rating_max_net_size = 64;
  /// Optional runtime context: polled between levels (a stop skips the
  /// remaining refinement but still projects down to the flat graph) and
  /// threaded into the PROP refiner.  Null = inert.
  const RunContext* context = nullptr;
};

struct MultilevelKWayResult {
  std::vector<NodeId> part;  ///< part id in [0, k) per node
  double cut_cost = 0.0;
  double connectivity_cost = 0.0;
  int passes = 0;
  int levels = 0;             ///< contraction levels built (0 = ran flat)
  NodeId coarsest_nodes = 0;  ///< node count of the coarsest graph
  bool interrupted = false;
};

MultilevelKWayResult multilevel_kway_partition(
    const Hypergraph& g, std::uint64_t seed,
    const MultilevelKWayConfig& config,
    RefineTelemetry* telemetry = nullptr);

/// Bipartitioner adapter with the same k-way PartitionResult contract as
/// KWayPartitioner (part ids in `side`, objective cost in `cut_cost`,
/// BalanceConstraint ignored, validate via validate_kway_result).
class MultilevelKWayPartitioner final : public Bipartitioner {
 public:
  explicit MultilevelKWayPartitioner(MultilevelKWayConfig config);

  std::string name() const override;

  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

  std::unique_ptr<Bipartitioner> clone() const override;

  bool attach_telemetry(RefineTelemetry* telemetry) noexcept override {
    telemetry_ = telemetry;
    return config_.refiner == KWayRefinerKind::kProp;
  }

  bool attach_context(const RunContext* context) noexcept override {
    config_.context = context;
    config_.fm.context = context;
    return true;
  }

  ValidationReport validate(const Hypergraph& g,
                            const BalanceConstraint& balance,
                            const PartitionResult& result) const override;

  const MultilevelKWayConfig& config() const noexcept { return config_; }

 private:
  MultilevelKWayConfig config_;
  RefineTelemetry* telemetry_ = nullptr;
};

}  // namespace prop
