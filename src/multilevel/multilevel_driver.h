// Multilevel (V-cycle) driver: coarsen -> initial partition -> uncoarsen
// with refinement at every level.
//
// Flat FM-family engines degrade on large instances: a pass sees only
// single-node moves, so well-separated clusters straddling the cut are
// never recombined.  The multilevel scheme (Henne et al., n-Level
// Hypergraph Partitioning) fixes both quality and runtime at once —
// attraction-based coarsening collapses natural clusters into super-nodes,
// the coarsest graph is small enough for a multi-start initial partition,
// and each projection step hands the refiner a partition that is already
// good, so PROP/FM only polish boundaries.  Cut costs are preserved
// exactly through every contraction level (see contraction.h), so the cut
// measured at any level is the flat cut of its projection.
//
// Level hierarchy: repeated attraction_clusters() + contract() until the
// graph has at most coarsest_max_nodes nodes, coarsening stalls
// (min_reduction), or max_levels is hit.  Refinement: PROP by default, FM
// as the ablation (MultilevelConfig::refiner).  The cached-product gain
// engine is rebuilt per level from the coarse hypergraph — see DESIGN.md
// Sec. 4g for why the remap-through-contraction fast path is deferred.
//
// Determinism: everything is seeded (clustering visit order, initial
// starts, refiner tie-breaks), so equal seeds give byte-identical results;
// clone() detaches hooks, which is all the parallel multi-start runner
// needs to extend its any-thread-count determinism contract over
// multilevel runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/prop_config.h"
#include "fm/fm_partitioner.h"
#include "partition/partitioner.h"
#include "util/rng.h"

namespace prop {

enum class MlRefiner { kProp, kFm };

struct MultilevelConfig {
  /// Coarsening stops once the level has at most this many nodes.
  NodeId coarsest_max_nodes = 200;
  /// Hard cap on contraction levels (safety; attraction coarsening roughly
  /// halves the graph per level, so ~log2(n) levels in practice).
  int max_levels = 64;
  /// Coarsening stalls when one level keeps more than this fraction of its
  /// input nodes; the V-cycle then starts from whatever it has.
  double min_reduction = 0.95;
  /// Cluster weight cap as a fraction of total node size.  Keeps coarse
  /// nodes light enough that every fraction-mapped balance window stays
  /// reachable (BalanceConstraint::fraction widens by the max node size).
  double max_cluster_fraction = 1.0 / 32.0;
  /// Nets larger than this are ignored by the attraction rating: a k-pin
  /// net contributes c/(k-1) per pin, so huge nets carry almost no signal
  /// but dominate the rating sweep's cost.
  std::size_t rating_max_net_size = 64;
  /// Multi-start FM runs for the initial partition of the coarsest graph.
  int initial_runs = 10;
  /// Refiner applied at every uncoarsening level (PROP, or FM as the
  /// ablation baseline).
  MlRefiner refiner = MlRefiner::kProp;
  PropConfig prop;  ///< PROP settings (refiner == kProp)
  FmConfig fm;      ///< FM settings (refiner == kFm, and the initial runs)
  /// Optional runtime context: polled between levels (a stop skips the
  /// remaining refinement but still projects + legalizes down to the flat
  /// graph, so the run returns a valid balanced partition) and threaded
  /// into every inner refine call.  Null = inert.
  const RunContext* context = nullptr;
};

/// V-cycle outcome: the flat partition plus the hierarchy facts the tests
/// and benches assert on.
struct MultilevelResult {
  PartitionResult part;
  int levels = 0;            ///< contraction levels built (0 = ran flat)
  NodeId coarsest_nodes = 0; ///< node count of the coarsest graph
  bool interrupted = false;  ///< a deadline/cancellation cut refinement short
};

/// One coarsening step's clustering: visits nodes in seeded random order;
/// each unassigned node joins (or forms) the cluster of its
/// highest-attraction neighbor, where attraction sums c(n)/(|n|-1) over
/// shared nets of size <= rating_max_net_size, subject to the cluster
/// weight cap.  Returns a dense clustering (every id in [0, num_clusters)
/// has at least one member).  Deterministic in `rng`.
std::vector<NodeId> attraction_clusters(const Hypergraph& g, Rng& rng,
                                        std::int64_t max_cluster_weight,
                                        std::size_t rating_max_net_size,
                                        NodeId& num_clusters);

/// Runs the full V-cycle on `g`.  The finest level is refined under
/// `balance` exactly; coarse levels use the same (r1, r2) fractions mapped
/// through BalanceConstraint::fraction.
MultilevelResult multilevel_partition(const Hypergraph& g,
                                      const BalanceConstraint& balance,
                                      std::uint64_t seed,
                                      const MultilevelConfig& config = {});

class MultilevelPartitioner final : public Bipartitioner {
 public:
  explicit MultilevelPartitioner(MultilevelConfig config = {})
      : config_(std::move(config)) {}

  std::string name() const override {
    return config_.refiner == MlRefiner::kProp ? "ML-PROP" : "ML-FM";
  }

  bool attach_telemetry(RefineTelemetry* telemetry) noexcept override {
    // Every level's refine passes append to the same trajectory, coarsest
    // first — the per-pass schema already records cut_before/cut_after, so
    // level boundaries show up as cut discontinuities.
    config_.prop.telemetry = telemetry;
    config_.fm.telemetry = telemetry;
    return true;
  }

  bool attach_context(const RunContext* context) noexcept override {
    config_.context = context;
    config_.prop.context = context;
    config_.fm.context = context;
    return true;
  }

  PartitionResult run(const Hypergraph& g, const BalanceConstraint& balance,
                      std::uint64_t seed) override;

  std::unique_ptr<Bipartitioner> clone() const override {
    auto copy = std::make_unique<MultilevelPartitioner>(config_);
    copy->attach_telemetry(nullptr);
    copy->attach_context(nullptr);
    return copy;
  }

  const MultilevelConfig& config() const noexcept { return config_; }

 private:
  MultilevelConfig config_;
};

}  // namespace prop
