#include "multilevel/multilevel_driver.h"

#include <algorithm>
#include <deque>
#include <numeric>
#include <utility>

#include "core/prop_partitioner.h"
#include "hypergraph/contraction.h"
#include "partition/initial.h"
#include "partition/partition.h"

namespace prop {
namespace {

/// One level of the hierarchy: the coarse graph and the projection map
/// from the next finer level onto it.  Levels live in a deque so earlier
/// graphs stay put while later ones append (the driver holds pointers
/// across the coarsening loop).
struct Level {
  Hypergraph graph;
  std::vector<NodeId> fine_to_coarse;
};

/// Maps the caller's (r1, r2) balance fractions onto a coarse graph.  The
/// fraction constructor re-widens by the coarse max node size, so the
/// window stays reachable even though super-nodes are heavy.
BalanceConstraint level_balance(const Hypergraph& coarse,
                                const BalanceConstraint& flat) {
  const double total =
      static_cast<double>(std::max<std::int64_t>(flat.total(), 1));
  const double r1 = static_cast<double>(flat.lo()) / total;
  const double r2 = static_cast<double>(flat.hi()) / total;
  return BalanceConstraint::fraction(coarse, std::max(0.01, r1),
                                     std::min(0.99, r2));
}

}  // namespace

std::vector<NodeId> attraction_clusters(const Hypergraph& g, Rng& rng,
                                        std::int64_t max_cluster_weight,
                                        std::size_t rating_max_net_size,
                                        NodeId& num_clusters) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> cluster_of(n, kInvalidNode);
  std::vector<std::int64_t> cluster_weight;
  cluster_weight.reserve(n);

  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.shuffle(order);

  // Sparse rating accumulator: ratings are strictly positive, so a zero
  // entry doubles as the "not touched yet" flag and `touched` lists exactly
  // the entries to reset afterwards.
  std::vector<double> rating(n, 0.0);
  std::vector<NodeId> touched;

  for (const NodeId u : order) {
    if (cluster_of[u] != kInvalidNode) continue;  // joined by an earlier pick

    touched.clear();
    for (const NetId net : g.nets_of(u)) {
      const std::size_t s = g.net_size(net);
      if (s < 2 || s > rating_max_net_size) continue;
      const double w = g.net_cost(net) / static_cast<double>(s - 1);
      for (const NodeId v : g.pins_of(net)) {
        if (v == u) continue;
        if (rating[v] == 0.0) touched.push_back(v);
        rating[v] += w;
      }
    }

    // Highest-rated neighbor whose cluster can still absorb u; exact-tie
    // break to the smallest node id (ratings accumulate in a fixed order,
    // so the whole selection is deterministic).
    const std::int64_t wu = g.node_size(u);
    NodeId best = kInvalidNode;
    double best_rating = 0.0;
    for (const NodeId v : touched) {
      const NodeId cv = cluster_of[v];
      const std::int64_t combined =
          wu + (cv == kInvalidNode ? g.node_size(v) : cluster_weight[cv]);
      if (combined > max_cluster_weight) continue;
      if (best == kInvalidNode || rating[v] > best_rating ||
          (rating[v] == best_rating && v < best)) {
        best = v;
        best_rating = rating[v];
      }
    }
    for (const NodeId v : touched) rating[v] = 0.0;

    if (best == kInvalidNode) {
      // No joinable neighbor: u opens its own cluster.
      cluster_of[u] = static_cast<NodeId>(cluster_weight.size());
      cluster_weight.push_back(wu);
    } else if (cluster_of[best] == kInvalidNode) {
      // Pair match: u and its best neighbor seed a new cluster.
      const NodeId c = static_cast<NodeId>(cluster_weight.size());
      cluster_of[u] = c;
      cluster_of[best] = c;
      cluster_weight.push_back(wu + g.node_size(best));
    } else {
      const NodeId c = cluster_of[best];
      cluster_of[u] = c;
      cluster_weight[c] += wu;
    }
  }

  num_clusters = static_cast<NodeId>(cluster_weight.size());
  return cluster_of;
}

MultilevelResult multilevel_partition(const Hypergraph& g,
                                      const BalanceConstraint& balance,
                                      std::uint64_t seed,
                                      const MultilevelConfig& config) {
  const RunContext* ctx = config.context;
  MultilevelResult out;

  // Phase 1: coarsen until small, stalled, or out of levels.
  std::deque<Level> levels;
  const Hypergraph* current = &g;
  for (int level = 0; level < config.max_levels &&
                      current->num_nodes() > config.coarsest_max_nodes;
       ++level) {
    if (ctx && ctx->should_stop()) break;
    Rng rng(mix_seed(seed, 0xC0A45EULL, static_cast<std::uint64_t>(level)));
    const std::int64_t max_weight = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               static_cast<double>(current->total_node_size()) *
               config.max_cluster_fraction));
    NodeId num_clusters = 0;
    const std::vector<NodeId> cluster_of =
        attraction_clusters(*current, rng, max_weight,
                            config.rating_max_net_size, num_clusters);
    if (static_cast<double>(num_clusters) >
        config.min_reduction * static_cast<double>(current->num_nodes())) {
      break;  // stalled: contracting further would barely shrink the graph
    }
    ContractionResult contracted = contract(*current, cluster_of, num_clusters);
    levels.push_back(
        Level{std::move(contracted.coarse), std::move(contracted.fine_to_coarse)});
    current = &levels.back().graph;
  }
  out.levels = static_cast<int>(levels.size());
  out.coarsest_nodes = current->num_nodes();

  // Phase 2: multi-start FM initial partition on the coarsest graph.
  const Hypergraph& coarsest = *current;
  const BalanceConstraint coarsest_balance =
      levels.empty() ? balance : level_balance(coarsest, balance);
  std::vector<std::uint8_t> sides;
  double best_cut = 0.0;
  int total_passes = 0;
  for (int run = 0; run < std::max(1, config.initial_runs); ++run) {
    if (run > 0 && ctx && ctx->should_stop()) break;
    Rng rng(mix_seed(seed, 0x141714ULL, static_cast<std::uint64_t>(run)));
    Partition part(coarsest,
                   random_balanced_sides(coarsest, coarsest_balance, rng));
    const RefineOutcome outcome =
        fm_refine(part, coarsest_balance, config.fm);
    if (sides.empty() || outcome.cut_cost < best_cut) {
      sides = part.sides();
      best_cut = outcome.cut_cost;
      total_passes = outcome.passes;
    }
    if (outcome.interrupted) {
      out.interrupted = true;
      break;
    }
  }

  // Phase 3: uncoarsen — refine at every level, then project one level
  // down.  After a stop the remaining levels are still projected and
  // legalized (never refined), so the flat result is always valid.
  const auto refine_level = [&](const Hypergraph& lg,
                                const BalanceConstraint& lb) {
    Partition part(lg, sides);
    repair_balance(part, lb);
    if (!(ctx && ctx->should_stop())) {
      const RefineOutcome outcome =
          config.refiner == MlRefiner::kProp
              ? prop_refine(part, lb, config.prop)
              : fm_refine(part, lb, config.fm);
      total_passes += outcome.passes;
      if (outcome.interrupted) out.interrupted = true;
    } else {
      out.interrupted = true;
    }
    sides = part.sides();
    return part.cut_cost();
  };

  double cut = 0.0;
  for (std::size_t i = levels.size(); i-- > 0;) {
    const Hypergraph& lg = levels[i].graph;
    cut = refine_level(lg, level_balance(lg, balance));
    sides = project_partition(levels[i].fine_to_coarse, sides);
  }
  cut = refine_level(g, balance);

  out.part.side = std::move(sides);
  out.part.cut_cost = cut;
  out.part.passes = total_passes;
  return out;
}

PartitionResult MultilevelPartitioner::run(const Hypergraph& g,
                                           const BalanceConstraint& balance,
                                           std::uint64_t seed) {
  return multilevel_partition(g, balance, seed, config_).part;
}

}  // namespace prop
