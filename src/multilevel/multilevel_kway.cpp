#include "multilevel/multilevel_kway.h"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

#include "hypergraph/contraction.h"
#include "kway/kway_state.h"
#include "util/rng.h"

namespace prop {
namespace {

struct Level {
  Hypergraph graph;
  std::vector<NodeId> fine_to_coarse;
};

/// Greedy legalize/polish + (optionally) PROP at one level.  Returns the
/// passes executed.
int refine_level(const Hypergraph& lg, std::vector<NodeId>& part,
                 const MultilevelKWayConfig& config, std::uint64_t seed,
                 RefineTelemetry* telemetry, bool* interrupted) {
  int passes = 0;
  if (config.refiner == KWayRefinerKind::kNone) return passes;
  KWayRefineConfig greedy;
  greedy.objective = config.objective;
  greedy.tolerance = config.tolerance;
  greedy.max_passes = config.greedy_max_passes;
  const KWayRefineOutcome gr = kway_refine(lg, part, config.k, seed, greedy);
  passes += gr.passes;
  if (config.refiner == KWayRefinerKind::kProp) {
    KWayPropConfig prop = config.prop;
    prop.objective = config.objective;
    prop.telemetry = telemetry;
    prop.context = config.context;
    const KWayBalanceWindow window =
        kway_part_window(lg.total_node_size(), config.k, config.tolerance,
                         kway_max_node_size(lg));
    const KWayPropOutcome pr =
        kway_prop_refine(lg, part, config.k, window, prop);
    passes += pr.passes;
    if (pr.interrupted) *interrupted = true;
  }
  return passes;
}

}  // namespace

MultilevelKWayResult multilevel_kway_partition(
    const Hypergraph& g, std::uint64_t seed,
    const MultilevelKWayConfig& config, RefineTelemetry* telemetry) {
  if (config.k < 1) {
    throw std::invalid_argument("multilevel kway: k must be >= 1");
  }
  const RunContext* ctx = config.context;
  MultilevelKWayResult out;

  // Phase 1: coarsen until small, stalled, or out of levels — the same
  // loop (and seeds) as the 2-way driver.  Never coarsen below k nodes.
  const NodeId floor_nodes = std::max(config.coarsest_max_nodes, config.k);
  std::deque<Level> levels;
  const Hypergraph* current = &g;
  for (int level = 0;
       level < config.max_levels && current->num_nodes() > floor_nodes;
       ++level) {
    if (ctx && ctx->should_stop()) break;
    Rng rng(mix_seed(seed, 0xC0A45EULL, static_cast<std::uint64_t>(level)));
    const std::int64_t max_weight = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               static_cast<double>(current->total_node_size()) *
               config.max_cluster_fraction));
    NodeId num_clusters = 0;
    const std::vector<NodeId> cluster_of =
        attraction_clusters(*current, rng, max_weight,
                            config.rating_max_net_size, num_clusters);
    if (num_clusters < config.k ||
        static_cast<double>(num_clusters) >
            config.min_reduction * static_cast<double>(current->num_nodes())) {
      break;  // stalled, or contracting further would drop below k nodes
    }
    ContractionResult contracted =
        contract(*current, cluster_of, num_clusters);
    levels.push_back(Level{std::move(contracted.coarse),
                           std::move(contracted.fine_to_coarse)});
    current = &levels.back().graph;
  }
  out.levels = static_cast<int>(levels.size());
  out.coarsest_nodes = current->num_nodes();

  // Phase 2: multi-start k-way pipeline on the coarsest graph.
  const Hypergraph& coarsest = *current;
  KWayPipelineConfig pipeline;
  pipeline.k = config.k;
  pipeline.tolerance = config.tolerance;
  pipeline.objective = config.objective;
  pipeline.refiner = config.refiner;
  pipeline.prop = config.prop;
  pipeline.greedy_max_passes = config.greedy_max_passes;
  std::vector<NodeId> part;
  double best_cost = 0.0;
  for (int run = 0; run < std::max(1, config.initial_runs); ++run) {
    if (run > 0 && ctx && ctx->should_stop()) break;
    FmPartitioner bisector(config.fm);
    const KWayPipelineResult r = kway_partition(
        bisector, coarsest,
        mix_seed(seed, 0x141714ULL, static_cast<std::uint64_t>(run)),
        pipeline, nullptr, ctx);
    const double cost = config.objective == KWayObjective::kCut
                            ? r.cut_cost
                            : r.connectivity_cost;
    if (part.empty() || cost < best_cost) {
      part = r.part;
      best_cost = cost;
      out.passes = r.passes;
    }
    if (r.interrupted) {
      out.interrupted = true;
      break;
    }
  }

  // Phase 3: uncoarsen — project one level down, then refine.  After a
  // stop the remaining levels are still projected (never refined), so the
  // flat result is always a valid k-way partition.
  for (std::size_t i = levels.size(); i-- > 0;) {
    std::vector<NodeId> fine(levels[i].fine_to_coarse.size());
    for (std::size_t u = 0; u < fine.size(); ++u) {
      fine[u] = part[levels[i].fine_to_coarse[u]];
    }
    part = std::move(fine);
    const Hypergraph& lg =
        i == 0 ? g : levels[i - 1].graph;
    if (ctx && ctx->should_stop()) {
      out.interrupted = true;
      continue;
    }
    out.passes += refine_level(
        lg, part, config,
        mix_seed(seed, 0x57A9EULL, static_cast<std::uint64_t>(i)), telemetry,
        &out.interrupted);
  }

  out.part = std::move(part);
  const KWayState state(g, out.part, config.k);
  out.cut_cost = state.cut_cost();
  out.connectivity_cost = state.connectivity_cost();
  return out;
}

MultilevelKWayPartitioner::MultilevelKWayPartitioner(
    MultilevelKWayConfig config)
    : config_(std::move(config)) {
  if (config_.k < 2) {
    throw std::invalid_argument("multilevel kway: k must be >= 2");
  }
  if (config_.k > 256) {
    throw std::invalid_argument("multilevel kway: k must be <= 256");
  }
}

std::string MultilevelKWayPartitioner::name() const {
  return std::string("ML-KWAY-") + std::to_string(config_.k) + "-" +
         to_string(config_.refiner);
}

PartitionResult MultilevelKWayPartitioner::run(const Hypergraph& g,
                                               const BalanceConstraint& balance,
                                               std::uint64_t seed) {
  (void)balance;  // k-way balance comes from config_.tolerance
  if (config_.k > g.num_nodes()) {
    throw std::invalid_argument("multilevel kway: k exceeds node count");
  }
  const MultilevelKWayResult r =
      multilevel_kway_partition(g, seed, config_, telemetry_);
  PartitionResult out;
  out.side.resize(r.part.size());
  for (std::size_t i = 0; i < r.part.size(); ++i) {
    out.side[i] = static_cast<std::uint8_t>(r.part[i]);
  }
  out.cut_cost = config_.objective == KWayObjective::kCut
                     ? r.cut_cost
                     : r.connectivity_cost;
  out.passes = r.passes;
  return out;
}

std::unique_ptr<Bipartitioner> MultilevelKWayPartitioner::clone() const {
  auto copy = std::make_unique<MultilevelKWayPartitioner>(config_);
  copy->attach_telemetry(nullptr);
  copy->attach_context(nullptr);
  return copy;
}

ValidationReport MultilevelKWayPartitioner::validate(
    const Hypergraph& g, const BalanceConstraint& balance,
    const PartitionResult& result) const {
  (void)balance;
  return validate_kway_result(g, config_.k, config_.objective, result);
}

}  // namespace prop
