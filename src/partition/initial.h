// Random balanced initial partitions for iterative-improvement methods.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "partition/balance.h"
#include "util/rng.h"

namespace prop {

/// Returns a uniformly random node assignment whose side-0 size lands as
/// close as possible to the middle of the balance window (always feasible
/// for unit node sizes; greedy first-fit for weighted nodes).
std::vector<std::uint8_t> random_balanced_sides(const Hypergraph& g,
                                                const BalanceConstraint& balance,
                                                Rng& rng);

}  // namespace prop

#include "partition/partition.h"

namespace prop {

/// Moves best-immediate-gain nodes off the overloaded side until `part`
/// satisfies `balance` (used to legalize projected coarse partitions).
/// Throws std::runtime_error if the window cannot be reached.
void repair_balance(Partition& part, const BalanceConstraint& balance);

}  // namespace prop
