// Invariant checks for partitions and partitioner results.
#pragma once

#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "partition/balance.h"
#include "partition/partitioner.h"

namespace prop {

struct ValidationReport {
  bool ok = true;
  std::string message;  ///< first violation found, empty when ok
};

/// Checks that `result` is a well-formed, balanced partition of `g` and
/// that its claimed cut cost matches a from-scratch recomputation.
ValidationReport validate_result(const Hypergraph& g,
                                 const BalanceConstraint& balance,
                                 const PartitionResult& result);

}  // namespace prop
