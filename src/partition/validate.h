// Invariant checks for partitions and partitioner results.
#pragma once

#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "partition/balance.h"
#include "partition/partitioner.h"

namespace prop {

// ValidationReport lives in partition/partitioner.h (Bipartitioner::validate
// returns it); this header keeps the free-function checker.

/// Checks that `result` is a well-formed, balanced partition of `g` and
/// that its claimed cut cost matches a from-scratch recomputation.
ValidationReport validate_result(const Hypergraph& g,
                                 const BalanceConstraint& balance,
                                 const PartitionResult& result);

}  // namespace prop
