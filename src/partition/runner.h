// Multi-start harness: the paper reports "FM20 / FM40 / FM100", "PROP with
// 20 runs" etc. — the best cut over N independent runs from random starts —
// plus CPU seconds per run (Table 4).
//
// Failures are data here: a run that throws, produces an invalid partition
// or trips a fault injection is recorded in its RunRecord and the multi-start
// continues with the remaining seeds.  run_many throws only when *every*
// attempted run failed to produce a validated partition.
//
// Parallel multi-start (RunnerOptions::threads >= 1) dispatches the N
// independent seeded runs onto a fixed thread pool against the shared
// read-only Hypergraph, one cloned partitioner per run, and merges per-run
// results in seed order with a deterministic best-selection, so the output
// is byte-identical for any thread count (timing fields aside — see
// StatsJsonOptions::include_timing).  The determinism contract is spelled
// out in DESIGN.md §4e.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "partition/partitioner.h"
#include "partition/validate.h"
#include "runtime/run_context.h"
#include "runtime/status.h"
#include "telemetry/telemetry.h"
#include "util/timer.h"

namespace prop {

/// Outcome of one checked run: the validated partition (when one exists)
/// plus the Status explaining how the run ended.  A non-ok code does not
/// imply a missing result — a budget-exhausted or injected-cancel run still
/// carries its best-so-far validated partition.
struct RunOutcome {
  PartitionResult result;  ///< valid() only when a validated partition exists
  Status status;
  double wall_seconds = 0.0;  ///< wall-clock seconds of this run
  double cpu_seconds = 0.0;   ///< CPU seconds of this run (calling thread)
  std::vector<DegradationEvent> degradations;  ///< fallbacks taken in-run

  bool ok() const noexcept { return status.ok(); }
  bool has_result() const noexcept { return result.valid(); }
};

/// Per-run ledger entry of a multi-start.
struct RunRecord {
  std::uint64_t seed = 0;
  Status status;
  double cut = -1.0;  ///< cut of the validated partition; < 0 when none
  double wall_seconds = 0.0;  ///< wall-clock seconds of the run
  double cpu_seconds = 0.0;   ///< CPU seconds of the run (its own thread)
  /// Deprecated alias of cpu_seconds (the historical field was documented
  /// as CPU seconds); kept for one release, mirrored into the "seconds"
  /// JSON key.
  double seconds = 0.0;
  std::vector<DegradationEvent> degradations;

  bool produced_result() const noexcept { return cut >= 0.0; }
};

struct MultiRunResult {
  PartitionResult best;
  std::uint64_t best_seed = 0;  ///< seed of the run that produced `best`
  std::vector<double> cuts;    ///< cut of every *successful* run, in run order

  // Timing, split by semantics: wall is harness elapsed time (what a user
  // waits for), cpu is the sum of per-run thread-CPU seconds (the paper's
  // Table 4 "CPU secs per run" metric).  Sequentially the two are nearly
  // equal; with threads > 1 they diverge by roughly the thread count.
  double total_wall_seconds = 0.0;
  double total_cpu_seconds = 0.0;
  double wall_seconds_per_run = 0.0;  ///< total_wall_seconds / runs_attempted
  double cpu_seconds_per_run = 0.0;   ///< total_cpu_seconds / runs_attempted

  /// Deprecated aliases of the CPU fields (the historical names were
  /// documented as CPU seconds but consumed as wall time by the Table 4
  /// driver); kept for one release.
  double total_seconds = 0.0;
  double seconds_per_run = 0.0;

  /// Overall status: ok when every requested run was attempted; the stop
  /// code (budget_exhausted / cancelled / injected_fault) when the
  /// multi-start ended early.  Individual run failures live in `records`
  /// and do not make this non-ok.
  Status status;

  /// One entry per attempted run, failures included.
  std::vector<RunRecord> records;
  int runs_requested = 0;

  /// One entry per run when RunnerOptions::collect_telemetry was set and
  /// the partitioner supports it (attach_telemetry returns true); empty
  /// otherwise.  Failed runs record no telemetry.
  std::vector<RunTelemetry> telemetry;

  int runs_attempted() const noexcept {
    return static_cast<int>(records.size());
  }
  int runs_failed() const noexcept {
    int failed = 0;
    for (const RunRecord& r : records) failed += r.produced_result() ? 0 : 1;
    return failed;
  }

  double best_cut() const noexcept { return best.cut_cost; }
  double mean_cut() const noexcept {
    if (cuts.empty()) return 0.0;
    double s = 0.0;
    for (const double c : cuts) s += c;
    return s / static_cast<double>(cuts.size());
  }

  // Trajectory aggregates over all collected runs (zero when telemetry is
  // empty).
  std::uint64_t total_passes() const noexcept;
  std::uint64_t total_moves_attempted() const noexcept;
  std::uint64_t max_rollback_depth() const noexcept;
  double max_gain_drift() const noexcept;
};

struct RunnerOptions {
  /// Record a RunTelemetry per run into MultiRunResult::telemetry.
  bool collect_telemetry = false;

  /// Optional runtime context threaded into every run (deadline polls,
  /// fault injection, degradation log).  Null = inert.
  const RunContext* context = nullptr;

  /// 0 (default): the legacy sequential path — runs share `context`
  /// verbatim (one injector counter stream across runs, a stop skips the
  /// remaining seeds).
  ///
  /// >= 1: the deterministic dispatch path — a pool of `threads` workers,
  /// one cloned partitioner and one forked runtime context per run.  Fault
  /// injection is per-run ('@N' counts within each run), every requested
  /// run is attempted (a broadcast stop makes pending runs finish at their
  /// first poll with their best validated prefix), and results are merged
  /// in seed order, so any `threads` value produces identical output.
  /// Requires Bipartitioner::clone(); throws std::invalid_argument when the
  /// partitioner does not support it.
  int threads = 0;

  /// By default run_many throws when *every* attempted run failed to produce
  /// a validated partition (a table experiment cannot continue without one).
  /// The service layer sets this to true to get the failure back as data
  /// instead: MultiRunResult::best stays invalid and the overall status
  /// carries the first per-run failure, so a served job turns into a failed
  /// response rather than an exception unwinding a worker.
  bool allow_all_failed = false;
};

/// One run of `partitioner`, never throwing on a bad run: exceptions,
/// validation failures and early stops all land in RunOutcome::status.
/// Attaches `context` for the duration of the run (when the partitioner
/// supports it) and snapshots the degradation events it recorded.
RunOutcome run_checked(Bipartitioner& partitioner, const Hypergraph& g,
                       const BalanceConstraint& balance, std::uint64_t seed,
                       const RunContext* context = nullptr);

/// Runs `partitioner` `runs` times with seeds derived from `base_seed` by
/// SplitMix64 mixing (mix_seed(base_seed, run) — identical for every
/// schedule and thread count), keeping the best validated result; cut ties
/// break to the earliest run in seed order.  A failing run is recorded and
/// the remaining seeds still execute; throws std::runtime_error only when
/// every attempted run failed.  With an expired/cancelled context, run 0 is
/// still attempted (the engines stop at their first poll and return their
/// best-so-far), so `--on-timeout=best` always has a result; later runs are
/// skipped (sequential path) and the overall status carries the stop code.
MultiRunResult run_many(Bipartitioner& partitioner, const Hypergraph& g,
                        const BalanceConstraint& balance, int runs,
                        std::uint64_t base_seed,
                        const RunnerOptions& options = {});

struct StatsJsonOptions {
  /// Emit measured wall/CPU seconds.  Disable to get the byte-identical
  /// serialization the parallel determinism contract promises across
  /// thread counts (timing is the one physically schedule-dependent field).
  bool include_timing = true;
};

/// Dumps a multi-run trajectory as one JSON object:
///   {"circuit": ..., "algo": ..., "outcome": ..., "best_cut": ...,
///    "run_records": [...], "runs": [...]}
/// (the per-run / per-pass schema is documented in EXPERIMENTS.md).
/// All doubles are emitted at round-trip precision (17 significant digits).
void write_stats_json(std::ostream& out, const std::string& circuit,
                      const std::string& algo, const MultiRunResult& result,
                      const StatsJsonOptions& json_options = {});

}  // namespace prop
