// Multi-start harness: the paper reports "FM20 / FM40 / FM100", "PROP with
// 20 runs" etc. — the best cut over N independent runs from random starts —
// plus CPU seconds per run (Table 4).
#pragma once

#include <cstdint>
#include <vector>

#include "partition/partitioner.h"
#include "partition/validate.h"
#include "util/timer.h"

namespace prop {

struct MultiRunResult {
  PartitionResult best;
  std::vector<double> cuts;    ///< cut of every run, in run order
  double total_seconds = 0.0;  ///< CPU time over all runs
  double seconds_per_run = 0.0;

  double best_cut() const noexcept { return best.cut_cost; }
  double mean_cut() const noexcept {
    if (cuts.empty()) return 0.0;
    double s = 0.0;
    for (const double c : cuts) s += c;
    return s / static_cast<double>(cuts.size());
  }
};

/// Runs `partitioner` `runs` times with seeds derived from `base_seed`,
/// validating every result (throws std::logic_error on an invalid one),
/// and keeps the best.
MultiRunResult run_many(Bipartitioner& partitioner, const Hypergraph& g,
                        const BalanceConstraint& balance, int runs,
                        std::uint64_t base_seed);

}  // namespace prop
