// Multi-start harness: the paper reports "FM20 / FM40 / FM100", "PROP with
// 20 runs" etc. — the best cut over N independent runs from random starts —
// plus CPU seconds per run (Table 4).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "partition/partitioner.h"
#include "partition/validate.h"
#include "telemetry/telemetry.h"
#include "util/timer.h"

namespace prop {

struct MultiRunResult {
  PartitionResult best;
  std::vector<double> cuts;    ///< cut of every run, in run order
  double total_seconds = 0.0;  ///< CPU time over all runs
  double seconds_per_run = 0.0;

  /// One entry per run when RunnerOptions::collect_telemetry was set and
  /// the partitioner supports it (attach_telemetry returns true); empty
  /// otherwise.
  std::vector<RunTelemetry> telemetry;

  double best_cut() const noexcept { return best.cut_cost; }
  double mean_cut() const noexcept {
    if (cuts.empty()) return 0.0;
    double s = 0.0;
    for (const double c : cuts) s += c;
    return s / static_cast<double>(cuts.size());
  }

  // Trajectory aggregates over all collected runs (zero when telemetry is
  // empty).
  std::uint64_t total_passes() const noexcept;
  std::uint64_t total_moves_attempted() const noexcept;
  std::uint64_t max_rollback_depth() const noexcept;
  double max_gain_drift() const noexcept;
};

struct RunnerOptions {
  /// Record a RunTelemetry per run into MultiRunResult::telemetry.
  bool collect_telemetry = false;
};

/// Runs `partitioner` `runs` times with seeds derived from `base_seed`,
/// validating every result (throws std::logic_error on an invalid one),
/// and keeps the best.
MultiRunResult run_many(Bipartitioner& partitioner, const Hypergraph& g,
                        const BalanceConstraint& balance, int runs,
                        std::uint64_t base_seed,
                        const RunnerOptions& options = {});

/// Dumps a multi-run trajectory as one JSON object:
///   {"circuit": ..., "algo": ..., "best_cut": ..., "runs": [...]}
/// (the per-run / per-pass schema is documented in EXPERIMENTS.md).
void write_stats_json(std::ostream& out, const std::string& circuit,
                      const std::string& algo, const MultiRunResult& result);

}  // namespace prop
