#include "partition/partition.h"

#include <stdexcept>

namespace prop {

Partition::Partition(const Hypergraph& g)
    : g_(&g), sides_(g.num_nodes(), 0), pin_count_(2 * g.num_nets(), 0) {
  rebuild();
}

Partition::Partition(const Hypergraph& g, std::span<const std::uint8_t> sides)
    : g_(&g), pin_count_(2 * g.num_nets(), 0) {
  if (sides.size() != g.num_nodes()) {
    throw std::invalid_argument("partition: side vector size mismatch");
  }
  sides_.assign(sides.begin(), sides.end());
  rebuild();
}

void Partition::assign(std::span<const std::uint8_t> sides) {
  if (sides.size() != g_->num_nodes()) {
    throw std::invalid_argument("partition: side vector size mismatch");
  }
  sides_.assign(sides.begin(), sides.end());
  rebuild();
}

void Partition::rebuild() {
  side_size_[0] = side_size_[1] = 0;
  for (NodeId u = 0; u < g_->num_nodes(); ++u) {
    if (sides_[u] > 1) throw std::invalid_argument("partition: side must be 0/1");
    side_size_[sides_[u]] += g_->node_size(u);
  }
  pin_count_.assign(2 * g_->num_nets(), 0);
  cut_cost_ = 0.0;
  cut_nets_ = 0;
  for (NetId n = 0; n < g_->num_nets(); ++n) {
    for (const NodeId u : g_->pins_of(n)) ++pin_count_[2 * n + sides_[u]];
    if (is_cut(n)) {
      cut_cost_ += g_->net_cost(n);
      ++cut_nets_;
    }
  }
}

void Partition::move(NodeId u) {
  const int from = sides_[u];
  const int to = 1 - from;
  for (const NetId n : g_->nets_of(u)) {
    const bool was_cut = is_cut(n);
    --pin_count_[2 * n + from];
    ++pin_count_[2 * n + to];
    const bool now_cut = is_cut(n);
    if (was_cut != now_cut) {
      const double c = g_->net_cost(n);
      if (now_cut) {
        cut_cost_ += c;
        ++cut_nets_;
      } else {
        cut_cost_ -= c;
        --cut_nets_;
      }
    }
  }
  sides_[u] = static_cast<std::uint8_t>(to);
  side_size_[from] -= g_->node_size(u);
  side_size_[to] += g_->node_size(u);
}

double Partition::immediate_gain(NodeId u) const noexcept {
  // Paper Eqn. 1 via pin counts: a net leaves the cutset iff u is its only
  // pin on u's side (and it has pins on the other side); a net enters the
  // cutset iff it currently lies entirely on u's side.
  const int s = sides_[u];
  double gain = 0.0;
  for (const NetId n : g_->nets_of(u)) {
    const std::uint32_t same = pins_on_side(n, s);
    const std::uint32_t other = pins_on_side(n, 1 - s);
    if (same == 1 && other > 0) gain += g_->net_cost(n);
    if (other == 0 && same > 1) gain -= g_->net_cost(n);
  }
  return gain;
}

double Partition::recompute_cut_cost() const {
  double cost = 0.0;
  for (NetId n = 0; n < g_->num_nets(); ++n) {
    bool side0 = false;
    bool side1 = false;
    for (const NodeId u : g_->pins_of(n)) {
      (sides_[u] == 0 ? side0 : side1) = true;
    }
    if (side0 && side1) cost += g_->net_cost(n);
  }
  return cost;
}

}  // namespace prop
