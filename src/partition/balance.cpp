#include "partition/balance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace prop {

BalanceConstraint BalanceConstraint::fraction(const Hypergraph& g, double r1,
                                              double r2) {
  if (!(r1 > 0.0) || !(r2 < 1.0) || r1 > r2) {
    throw std::invalid_argument("balance: need 0 < r1 <= r2 < 1");
  }
  const std::int64_t total = g.total_node_size();
  std::int64_t lo = static_cast<std::int64_t>(std::ceil(r1 * static_cast<double>(total) - 1e-9));
  std::int64_t hi = static_cast<std::int64_t>(std::floor(r2 * static_cast<double>(total) + 1e-9));

  std::int64_t max_size = 1;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_size = std::max(max_size, g.node_size(u));
  }
  if (hi - lo < 2 * max_size) {
    lo -= max_size;
    hi += max_size;
  }
  lo = std::max<std::int64_t>(lo, 0);
  hi = std::min(hi, total);
  return BalanceConstraint(lo, hi, total);
}

}  // namespace prop
