// Recursive 2-way partitioning into k subsets.
//
// The paper (Sec. 1) frames k-way partitioning as recursive min-cut
// bisection and names k-way partitioning as a direct application of PROP;
// this driver implements it for any Bipartitioner.  Subset size targets are
// proportional (ceil(k/2) : floor(k/2)) with a relative tolerance.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "partition/partitioner.h"

namespace prop {

struct KWayResult {
  std::vector<NodeId> part;  ///< part id in [0, k) per node
  NodeId k = 0;
  double cut_cost = 0.0;  ///< sum of costs of nets touching >= 2 parts
};

struct KWayOptions {
  /// Per-split relative size tolerance (0.1 = each side within 10% of its
  /// proportional share).
  double tolerance = 0.1;
};

/// Splits `g` into k parts by recursive bisection with `partitioner`.
/// Requires k >= 1.  Deterministic in `seed`.
KWayResult recursive_bisection(Bipartitioner& partitioner, const Hypergraph& g,
                               NodeId k, std::uint64_t seed,
                               const KWayOptions& options = {});

/// Cost of a k-way partition: sum of c(n) over nets spanning >= 2 parts.
double kway_cut_cost(const Hypergraph& g, const std::vector<NodeId>& part);

/// Induced sub-hypergraph on `nodes` (nets keep only their pins inside the
/// subset; nets left with < 2 pins are dropped).  `local_to_global` returns
/// the node mapping.
Hypergraph induce_subgraph(const Hypergraph& g, const std::vector<NodeId>& nodes);

}  // namespace prop
