#include "partition/metrics.h"

namespace prop {

PartitionMetrics compute_metrics(const Partition& part) {
  const Hypergraph& g = part.graph();
  PartitionMetrics m;
  m.cut_cost = part.cut_cost();
  m.cut_nets = part.cut_nets();
  m.size0 = part.side_size(0);
  m.size1 = part.side_size(1);
  const double total = static_cast<double>(m.size0 + m.size1);
  if (total > 0.0) {
    m.balance_ratio =
        static_cast<double>(m.size0 < m.size1 ? m.size0 : m.size1) / total;
  }
  const double product =
      static_cast<double>(m.size0) * static_cast<double>(m.size1);
  if (product > 0.0) {
    m.ratio_cut = m.cut_cost / product;
    m.scaled_cost = m.cut_cost / (static_cast<double>(g.num_nodes()) * product);
  }
  // Absorption (Sun-Sechen): how completely clusters absorb their nets;
  // higher is better.  For 2-way: sum over nets of (max-side pins - 1) /
  // (|n| - 1) ... the standard form credits each side's pins.
  double absorption = 0.0;
  for (NetId n = 0; n < g.num_nets(); ++n) {
    const std::size_t sz = g.net_size(n);
    if (sz < 2) continue;
    const double denom = static_cast<double>(sz - 1);
    for (int s = 0; s < 2; ++s) {
      const std::uint32_t pins = part.pins_on_side(n, s);
      if (pins > 0) {
        absorption += static_cast<double>(pins - 1) / denom;
      }
    }
  }
  m.absorption = absorption;
  return m;
}

double ratio_cut(const Hypergraph& g, std::span<const std::uint8_t> side) {
  const Partition part(g, side);
  return compute_metrics(part).ratio_cut;
}

}  // namespace prop
