#include "partition/recursive.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "hypergraph/builder.h"
#include "partition/kway_balance.h"
#include "util/rng.h"

namespace prop {

Hypergraph induce_subgraph(const Hypergraph& g, const std::vector<NodeId>& nodes) {
  std::vector<NodeId> global_to_local(g.num_nodes(), kInvalidNode);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    global_to_local[nodes[i]] = static_cast<NodeId>(i);
  }
  HypergraphBuilder builder(static_cast<NodeId>(nodes.size()));
  builder.set_name(g.name() + ".sub");
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    builder.set_node_size(static_cast<NodeId>(i), g.node_size(nodes[i]));
  }
  // Visit each net once via its lowest-indexed member inside the subset.
  std::vector<char> seen(g.num_nets(), 0);
  std::vector<NodeId> pins;
  for (const NodeId u : nodes) {
    for (const NetId n : g.nets_of(u)) {
      if (seen[n]) continue;
      seen[n] = 1;
      pins.clear();
      for (const NodeId v : g.pins_of(n)) {
        if (global_to_local[v] != kInvalidNode) {
          pins.push_back(global_to_local[v]);
        }
      }
      if (pins.size() >= 2) builder.add_net(pins, g.net_cost(n));
    }
  }
  return std::move(builder).build();
}

double kway_cut_cost(const Hypergraph& g, const std::vector<NodeId>& part) {
  double cost = 0.0;
  for (NetId n = 0; n < g.num_nets(); ++n) {
    const auto pins = g.pins_of(n);
    if (pins.empty()) continue;
    const NodeId first = part[pins.front()];
    for (const NodeId u : pins) {
      if (part[u] != first) {
        cost += g.net_cost(n);
        break;
      }
    }
  }
  return cost;
}

namespace {

void split(Bipartitioner& partitioner, const Hypergraph& g,
           const std::vector<NodeId>& nodes, NodeId k, NodeId first_part,
           std::uint64_t seed, const KWayOptions& options,
           std::vector<NodeId>& part) {
  if (k == 1) {
    for (const NodeId u : nodes) part[u] = first_part;
    return;
  }
  if (nodes.size() == k) {
    // One node per part: skip the (degenerate) balanced-bisection machinery.
    NodeId next = first_part;
    for (const NodeId u : nodes) part[u] = next++;
    return;
  }
  const NodeId k0 = (k + 1) / 2;
  const NodeId k1 = k - k0;

  const Hypergraph sub = induce_subgraph(g, nodes);
  const double share = static_cast<double>(k0) / static_cast<double>(k);
  const KWaySplitFractions frac = kway_split_fractions(share, options.tolerance);
  const BalanceConstraint balance =
      BalanceConstraint::fraction(sub, frac.r1, frac.r2);

  const PartitionResult result =
      partitioner.run(sub, balance, mix_seed(seed, k, first_part));
  if (result.side.size() != nodes.size()) {
    throw std::logic_error("recursive_bisection: partitioner returned bad result");
  }

  std::vector<NodeId> left;
  std::vector<NodeId> right;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    (result.side[i] == 0 ? left : right).push_back(nodes[i]);
  }
  split(partitioner, g, left, k0, first_part, mix_seed(seed, 0), options, part);
  split(partitioner, g, right, k1, first_part + k0, mix_seed(seed, 1), options,
        part);
}

}  // namespace

KWayResult recursive_bisection(Bipartitioner& partitioner, const Hypergraph& g,
                               NodeId k, std::uint64_t seed,
                               const KWayOptions& options) {
  if (k < 1) throw std::invalid_argument("recursive_bisection: k must be >= 1");
  if (k > g.num_nodes()) {
    throw std::invalid_argument("recursive_bisection: k exceeds node count");
  }
  KWayResult out;
  out.k = k;
  out.part.assign(g.num_nodes(), 0);
  std::vector<NodeId> all(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) all[u] = u;
  split(partitioner, g, all, k, 0, seed, options, out.part);
  out.cut_cost = kway_cut_cost(g, out.part);
  return out;
}

}  // namespace prop
