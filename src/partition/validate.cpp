#include "partition/validate.h"

#include <cmath>
#include <cstdio>

#include "partition/partition.h"

namespace prop {
namespace {

ValidationReport fail(std::string message) {
  return ValidationReport{false, std::move(message)};
}

}  // namespace

ValidationReport validate_result(const Hypergraph& g,
                                 const BalanceConstraint& balance,
                                 const PartitionResult& result) {
  if (result.side.size() != g.num_nodes()) {
    return fail("side vector has wrong length");
  }
  for (const auto s : result.side) {
    if (s > 1) return fail("side value out of {0,1}");
  }
  Partition part(g, result.side);
  if (!balance.feasible(part.side_size(0))) {
    char buf[128];
    std::snprintf(buf, sizeof(buf),
                  "balance violated: side0=%lld not in [%lld, %lld]",
                  static_cast<long long>(part.side_size(0)),
                  static_cast<long long>(balance.lo()),
                  static_cast<long long>(balance.hi()));
    return fail(buf);
  }
  const double recomputed = part.recompute_cut_cost();
  if (std::abs(recomputed - result.cut_cost) > 1e-6 * (1.0 + recomputed)) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "cut mismatch: claimed %.6f, actual %.6f",
                  result.cut_cost, recomputed);
    return fail(buf);
  }
  return ValidationReport{};
}

}  // namespace prop
