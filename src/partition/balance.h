// Balance criterion for 2-way partitions.
//
// The paper (Sec. 1) defines an (r1, r2)-balanced partition by
// r1 <= |Vi|/n <= r2 with r1 = 1 - r2 for 2-way.  Experiments use 50-50%
// (r1 = r2 = 0.5) and 45-55% (r1 = 0.45, r2 = 0.55).  As in classical FM,
// an exact 50-50 target is widened by the maximum node size so that the
// move-based process is not wedged; the 45-55 window needs no widening.
#pragma once

#include <cstdint>

#include "hypergraph/hypergraph.h"

namespace prop {

class BalanceConstraint {
 public:
  BalanceConstraint() = default;

  /// Bounds on the size of ONE side (side 0); the other side is
  /// total - size0, so the constraint is symmetric when r1 = 1 - r2.
  BalanceConstraint(std::int64_t lo, std::int64_t hi, std::int64_t total)
      : lo_(lo), hi_(hi), total_(total) {}

  /// Builds the (r1, r2) window for a hypergraph.  If the window is
  /// narrower than twice the maximum node size it is widened by the
  /// maximum node size on both ends (clamped to [0, total]).
  static BalanceConstraint fraction(const Hypergraph& g, double r1, double r2);

  /// Paper's 50-50% criterion.
  static BalanceConstraint fifty_fifty(const Hypergraph& g) {
    return fraction(g, 0.5, 0.5);
  }

  /// Paper's 45-55% criterion.
  static BalanceConstraint forty_five(const Hypergraph& g) {
    return fraction(g, 0.45, 0.55);
  }

  std::int64_t lo() const noexcept { return lo_; }
  std::int64_t hi() const noexcept { return hi_; }
  std::int64_t total() const noexcept { return total_; }

  /// Is a side-0 size acceptable?
  bool feasible(std::int64_t side0_size) const noexcept {
    return side0_size >= lo_ && side0_size <= hi_;
  }

  /// Would moving a node of size `sz` from `from_side` keep balance?
  bool move_feasible(std::int64_t side0_size, int from_side,
                     std::int64_t sz) const noexcept {
    const std::int64_t next = from_side == 0 ? side0_size - sz : side0_size + sz;
    return next >= lo_ && next <= hi_;
  }

 private:
  std::int64_t lo_ = 0;
  std::int64_t hi_ = 0;
  std::int64_t total_ = 0;
};

}  // namespace prop
