// Partition quality metrics beyond raw cut cost — the objectives the
// paper's comparator families optimize (ratio cut for EIG1/WINDOW-era
// methods, scaled cost for spectral evaluations) plus descriptive balance
// measures.
#pragma once

#include <cstdint>
#include <span>

#include "hypergraph/hypergraph.h"
#include "partition/partition.h"

namespace prop {

struct PartitionMetrics {
  double cut_cost = 0.0;       ///< sum of costs of cut nets
  std::size_t cut_nets = 0;    ///< number of cut nets
  std::int64_t size0 = 0;      ///< total node size on side 0
  std::int64_t size1 = 0;
  double balance_ratio = 0.0;  ///< min(size)/total, 0.5 = perfect
  double ratio_cut = 0.0;      ///< cut / (size0 * size1)  (Wei-Cheng)
  double scaled_cost = 0.0;    ///< cut / (n * size0 * size1) (Chan et al.)
  double absorption = 0.0;     ///< sum over nets of (pins(n, side) - 1)/(|n| - 1)
};

/// Computes all metrics in one O(m) sweep.
PartitionMetrics compute_metrics(const Partition& part);

/// Ratio cut of an explicit assignment (convenience for constructive
/// methods that have no Partition object).
double ratio_cut(const Hypergraph& g, std::span<const std::uint8_t> side);

}  // namespace prop
