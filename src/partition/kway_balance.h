// Shared k-way balance arithmetic.
//
// Three layers reason about "proportional share +- tolerance": recursive
// bisection turns the share of each split into (r1, r2) balance fractions,
// the greedy k-way refiner bounds every part by a size window, and the
// k-way PROP refiner enforces the same window per move.  Before this header
// each computed the window independently, so a rounding difference between
// layers could make one layer's output infeasible for the next.  Every
// feasibility decision now routes through these helpers — the arithmetic is
// written to be bit-identical to what the original call sites computed.
#pragma once

#include <algorithm>
#include <cstdint>

#include "hypergraph/hypergraph.h"

namespace prop {

/// Per-part size window [lo, hi] on the total node size of one part.
struct KWayBalanceWindow {
  std::int64_t lo = 0;
  std::int64_t hi = 0;

  bool contains(std::int64_t size) const noexcept {
    return size >= lo && size <= hi;
  }
};

/// (r1, r2) balance fractions of one recursive-bisection split whose left
/// side targets `share` of the nodes.  Clamped away from 0/1 so the
/// BalanceConstraint stays satisfiable on tiny subgraphs.
struct KWaySplitFractions {
  double r1 = 0.0;
  double r2 = 0.0;
};

inline KWaySplitFractions kway_split_fractions(double share,
                                               double tolerance) noexcept {
  return {std::max(0.01, share * (1.0 - tolerance)),
          std::min(0.99, share * (1.0 + tolerance))};
}

/// Largest node size in `g`, floored at 1 — the widening unit for windows
/// that are too narrow for any single move.
inline std::int64_t kway_max_node_size(const Hypergraph& g) noexcept {
  std::int64_t max_node = 1;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    max_node = std::max<std::int64_t>(max_node, g.node_size(u));
  }
  return max_node;
}

/// Size window of one of k equal parts: proportional share (total / k)
/// +- tolerance, with the upper bound rounded up.  Degenerate windows
/// (narrower than two max-size nodes, so a move could never cross them)
/// are widened by one max node size on both ends.
inline KWayBalanceWindow kway_part_window(std::int64_t total_size, NodeId k,
                                          double tolerance,
                                          std::int64_t max_node) noexcept {
  const double share = 1.0 / static_cast<double>(k);
  const auto total = static_cast<double>(total_size);
  KWayBalanceWindow w;
  w.lo = static_cast<std::int64_t>(total * share * (1.0 - tolerance));
  w.hi = static_cast<std::int64_t>(total * share * (1.0 + tolerance) + 0.999);
  if (w.hi - w.lo < 2 * max_node) {
    w.lo = std::max<std::int64_t>(0, w.lo - max_node);
    w.hi += max_node;
  }
  return w;
}

}  // namespace prop
