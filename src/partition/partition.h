// Mutable 2-way partition state with incremental cut maintenance.
//
// Tracks, for every net, how many of its pins lie on each side; the cutset
// (paper Sec. 1) is the set of nets with pins on both sides, and the cut
// cost is the sum of their costs.  move() updates all of this in
// O(degree(u)) — the workhorse of every iterative-improvement pass here.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "partition/balance.h"

namespace prop {

class Partition {
 public:
  /// Creates the all-zeros partition (everything on side 0).
  explicit Partition(const Hypergraph& g);

  /// Creates a partition from explicit side assignments (values 0/1).
  Partition(const Hypergraph& g, std::span<const std::uint8_t> sides);

  const Hypergraph& graph() const noexcept { return *g_; }

  int side(NodeId u) const noexcept { return sides_[u]; }
  const std::vector<std::uint8_t>& sides() const noexcept { return sides_; }

  /// Total node size currently on side s.
  std::int64_t side_size(int s) const noexcept { return side_size_[s]; }

  /// Number of pins of net n on side s.
  std::uint32_t pins_on_side(NetId n, int s) const noexcept {
    return pin_count_[2 * n + s];
  }

  bool is_cut(NetId n) const noexcept {
    return pin_count_[2 * n] > 0 && pin_count_[2 * n + 1] > 0;
  }

  /// Sum of costs of cut nets.
  double cut_cost() const noexcept { return cut_cost_; }

  /// Number of cut nets (the paper's tables report unit-cost cut sizes, so
  /// this equals cut_cost() there).
  std::size_t cut_nets() const noexcept { return cut_nets_; }

  /// Moves node u to the other side, updating sizes, pin counts and cut.
  void move(NodeId u);

  /// Immediate deterministic gain of moving u: decrease in cut cost
  /// (paper Eqn. 1 evaluated via pin counts).  Positive is good.
  double immediate_gain(NodeId u) const noexcept;

  /// Replaces the whole assignment (recomputes all derived state).
  void assign(std::span<const std::uint8_t> sides);

  /// Recomputes cut cost from scratch — validation helper, O(m).
  double recompute_cut_cost() const;

 private:
  void rebuild();

  const Hypergraph* g_;
  std::vector<std::uint8_t> sides_;
  std::vector<std::uint32_t> pin_count_;  // 2 entries per net
  std::int64_t side_size_[2] = {0, 0};
  double cut_cost_ = 0.0;
  std::size_t cut_nets_ = 0;
};

}  // namespace prop
