#include "partition/initial.h"

#include <numeric>
#include <stdexcept>

namespace prop {

std::vector<std::uint8_t> random_balanced_sides(const Hypergraph& g,
                                                const BalanceConstraint& balance,
                                                Rng& rng) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order(n);
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.shuffle(order);

  const std::int64_t target = (balance.lo() + balance.hi()) / 2;
  std::vector<std::uint8_t> side(n, 1);
  std::int64_t size0 = 0;
  // Greedy fill in random order: put nodes on side 0 while it stays at or
  // below the window midpoint.  With unit sizes this is an exact split.
  for (const NodeId u : order) {
    const std::int64_t sz = g.node_size(u);
    if (size0 + sz <= target) {
      side[u] = 0;
      size0 += sz;
    }
  }
  // Weighted nodes can leave side 0 short of the window; top up with the
  // smallest side-1 nodes that fit.
  if (size0 < balance.lo()) {
    for (const NodeId u : order) {
      if (side[u] == 1 && size0 + g.node_size(u) <= balance.hi()) {
        side[u] = 0;
        size0 += g.node_size(u);
        if (size0 >= balance.lo()) break;
      }
    }
  }
  return side;
}

void repair_balance(Partition& part, const BalanceConstraint& balance) {
  const Hypergraph& g = part.graph();
  int guard = static_cast<int>(g.num_nodes()) + 1;
  while (!balance.feasible(part.side_size(0))) {
    if (--guard < 0) throw std::runtime_error("repair_balance: stuck");
    const int heavy = part.side_size(0) > balance.hi() ? 0 : 1;
    NodeId best = kInvalidNode;
    double best_gain = 0.0;
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (part.side(u) != heavy) continue;
      const double gain = part.immediate_gain(u);
      if (best == kInvalidNode || gain > best_gain) {
        best = u;
        best_gain = gain;
      }
    }
    if (best == kInvalidNode) throw std::runtime_error("repair_balance: empty side");
    part.move(best);
  }
}

}  // namespace prop
