// Common interface implemented by every bipartitioner in the suite
// (FM, LA-k, PROP, EIG1, MELO, PARABOLI, WINDOW).
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "hypergraph/hypergraph.h"
#include "partition/balance.h"

namespace prop {

struct RefineTelemetry;  // telemetry/telemetry.h
struct RunContext;       // runtime/run_context.h

/// Result of checking a PartitionResult against the invariants its
/// producer promises (see Bipartitioner::validate).
struct ValidationReport {
  bool ok = true;
  std::string message;  ///< first violation found, empty when ok
};

/// Outcome of an in-place refinement (fm_refine, la_refine, prop_refine).
struct RefineOutcome {
  double cut_cost = 0.0;
  int passes = 0;
  /// A deadline/cancellation stopped refinement early.  The partition is
  /// still the best-so-far state (every pass rolls back to its best
  /// prefix), just not converged.
  bool interrupted = false;
};

struct PartitionResult {
  std::vector<std::uint8_t> side;  ///< 0/1 per node
  double cut_cost = std::numeric_limits<double>::infinity();
  int passes = 0;  ///< improvement passes executed (0 for constructive methods)

  bool valid() const noexcept { return !side.empty(); }
};

class Bipartitioner {
 public:
  virtual ~Bipartitioner() = default;

  /// Short identifier used in experiment tables (e.g. "FM-bucket", "PROP").
  virtual std::string name() const = 0;

  /// Produces a balanced 2-way partition of `g`.  `seed` drives all
  /// randomness (initial solutions, tie-breaking); equal seeds give equal
  /// results.
  virtual PartitionResult run(const Hypergraph& g,
                              const BalanceConstraint& balance,
                              std::uint64_t seed) = 0;

  /// Independent copy with the same configuration but detached telemetry /
  /// context hooks — the factory the parallel multi-start runner uses to
  /// give every concurrent run its own partitioner instance.  The default
  /// returns null ("not cloneable"); run_many with threads > 1 requires a
  /// non-null clone.  Every partitioner in the suite overrides this.
  virtual std::unique_ptr<Bipartitioner> clone() const { return nullptr; }

  /// Routes per-pass telemetry of subsequent run() calls into `telemetry`
  /// (null detaches).  Returns false if the partitioner records none
  /// (constructive methods); iterative refiners override and return true.
  virtual bool attach_telemetry(RefineTelemetry* telemetry) noexcept {
    (void)telemetry;
    return false;
  }

  /// Threads a runtime context (deadline polling, fault injection,
  /// degradation recording — runtime/run_context.h) through subsequent
  /// run() calls; null detaches.  Returns false if the partitioner ignores
  /// it; every partitioner in the suite overrides and returns true.
  virtual bool attach_context(const RunContext* context) noexcept {
    (void)context;
    return false;
  }

  /// Checks `result` against the invariants this partitioner's run()
  /// promises.  The default asserts the 2-way contract (side values in
  /// {0,1}, balance.feasible on side 0, cut recomputation matches);
  /// k-way adapters override because their `side` vector carries part ids
  /// in [0, k) and their cost is the configured k-way objective.  The
  /// checked runner routes every post-run validation through this hook.
  virtual ValidationReport validate(const Hypergraph& g,
                                    const BalanceConstraint& balance,
                                    const PartitionResult& result) const;
};

}  // namespace prop
