#include "partition/partitioner.h"

#include "partition/validate.h"

namespace prop {

ValidationReport Bipartitioner::validate(const Hypergraph& g,
                                         const BalanceConstraint& balance,
                                         const PartitionResult& result) const {
  return validate_result(g, balance, result);
}

}  // namespace prop
