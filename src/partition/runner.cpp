#include "partition/runner.h"

#include <stdexcept>

#include "util/rng.h"

namespace prop {

MultiRunResult run_many(Bipartitioner& partitioner, const Hypergraph& g,
                        const BalanceConstraint& balance, int runs,
                        std::uint64_t base_seed) {
  if (runs <= 0) throw std::invalid_argument("run_many: runs must be positive");
  MultiRunResult out;
  out.cuts.reserve(static_cast<std::size_t>(runs));
  CpuTimer timer;
  for (int r = 0; r < runs; ++r) {
    const std::uint64_t seed = mix_seed(base_seed, static_cast<std::uint64_t>(r));
    PartitionResult result = partitioner.run(g, balance, seed);
    const ValidationReport report = validate_result(g, balance, result);
    if (!report.ok) {
      throw std::logic_error(partitioner.name() + " produced invalid result on " +
                             g.name() + ": " + report.message);
    }
    out.cuts.push_back(result.cut_cost);
    if (!out.best.valid() || result.cut_cost < out.best.cut_cost) {
      out.best = std::move(result);
    }
  }
  out.total_seconds = timer.seconds();
  out.seconds_per_run = out.total_seconds / runs;
  return out;
}

}  // namespace prop
