#include "partition/runner.h"

#include <cstdio>
#include <exception>
#include <future>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace prop {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// status messages and degradation details.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Every double in the stats JSON goes through this one helper so all
/// fields round-trip bit-for-bit (cut used to get precision 17 while the
/// timing fields silently truncated at the default 6 digits).
void put_double(std::ostream& out, double v) {
  std::ostringstream s;
  s.precision(17);
  s << v;
  out << s.str();
}

void write_json(std::ostream& out, const DegradationEvent& e) {
  out << "{\"site\":\"" << json_escape(e.site) << "\",\"action\":\""
      << json_escape(e.action) << "\"";
  if (!e.detail.empty()) out << ",\"detail\":\"" << json_escape(e.detail) << "\"";
  out << "}";
}

void write_json(std::ostream& out, const RunRecord& r, bool include_timing) {
  out << "{\"seed\":" << r.seed << ",\"outcome\":\"" << to_string(r.status.code)
      << "\"";
  if (!r.status.message.empty()) {
    out << ",\"message\":\"" << json_escape(r.status.message) << "\"";
  }
  if (r.produced_result()) {
    out << ",\"cut\":";
    put_double(out, r.cut);
  }
  if (include_timing) {
    out << ",\"wall_seconds\":";
    put_double(out, r.wall_seconds);
    out << ",\"cpu_seconds\":";
    put_double(out, r.cpu_seconds);
    // Deprecated alias of cpu_seconds, kept for one release.
    out << ",\"seconds\":";
    put_double(out, r.cpu_seconds);
  }
  if (!r.degradations.empty()) {
    out << ",\"degradations\":[";
    bool first = true;
    for (const DegradationEvent& e : r.degradations) {
      if (!first) out << ",";
      first = false;
      write_json(out, e);
    }
    out << "]";
  }
  out << "}";
}

RunRecord make_record(RunOutcome& outcome, std::uint64_t seed) {
  RunRecord record;
  record.seed = seed;
  record.status = outcome.status;
  record.wall_seconds = outcome.wall_seconds;
  record.cpu_seconds = outcome.cpu_seconds;
  record.seconds = outcome.cpu_seconds;
  record.degradations = std::move(outcome.degradations);
  if (outcome.has_result()) record.cut = outcome.result.cut_cost;
  return record;
}

void finish_timing(MultiRunResult& out, double wall_seconds) {
  out.total_wall_seconds = wall_seconds;
  double cpu = 0.0;
  for (const RunRecord& r : out.records) cpu += r.cpu_seconds;
  out.total_cpu_seconds = cpu;
  const int attempted = out.runs_attempted();
  out.wall_seconds_per_run =
      attempted > 0 ? out.total_wall_seconds / attempted : 0.0;
  out.cpu_seconds_per_run =
      attempted > 0 ? out.total_cpu_seconds / attempted : 0.0;
  // Deprecated aliases: the historical names were documented as CPU
  // seconds, so they mirror the CPU fields.
  out.total_seconds = out.total_cpu_seconds;
  out.seconds_per_run = out.cpu_seconds_per_run;
}

[[noreturn]] void throw_all_failed(const Bipartitioner& partitioner,
                                   const Hypergraph& g,
                                   const MultiRunResult& out) {
  std::string first_failure;
  for (const RunRecord& rec : out.records) {
    if (!rec.status.ok()) {
      first_failure = rec.status.describe();
      break;
    }
  }
  throw std::runtime_error(
      partitioner.name() + ": all " + std::to_string(out.runs_attempted()) +
      " runs failed on " + g.name() +
      (first_failure.empty() ? "" : " (first failure: " + first_failure + ")"));
}

/// No validated result across the whole multi-start: throw (legacy harness
/// contract) or, for allow_all_failed callers, surface the first per-run
/// failure as the overall status so the caller gets failure-as-data.
void finish_all_failed(const Bipartitioner& partitioner, const Hypergraph& g,
                       MultiRunResult& out, bool allow_all_failed) {
  if (out.best.valid()) return;
  if (!allow_all_failed) throw_all_failed(partitioner, g, out);
  if (out.status.ok()) {
    for (const RunRecord& rec : out.records) {
      if (!rec.status.ok()) {
        out.status = rec.status;
        break;
      }
    }
    if (out.status.ok()) {
      out.status = Status::failure(StatusCode::kError,
                                   "all runs failed without a status");
    }
  }
}

MultiRunResult run_many_sequential(Bipartitioner& partitioner,
                                   const Hypergraph& g,
                                   const BalanceConstraint& balance, int runs,
                                   std::uint64_t base_seed,
                                   const RunnerOptions& options) {
  const RunContext* context = options.context;
  MultiRunResult out;
  out.runs_requested = runs;
  out.cuts.reserve(static_cast<std::size_t>(runs));
  out.records.reserve(static_cast<std::size_t>(runs));
  WallTimer wall;
  for (int r = 0; r < runs; ++r) {
    // Run 0 is always attempted: even with an already-expired budget the
    // engines stop at their first poll and return a validated best-effort
    // partition, so --on-timeout=best has something to report.
    if (r > 0 && context && context->stop_code() != StatusCode::kOk) {
      out.status = Status::failure(
          context->stop_code(), "multi-start stopped after " +
                                    std::to_string(r) + " of " +
                                    std::to_string(runs) + " runs");
      break;
    }
    const std::uint64_t seed = mix_seed(base_seed, static_cast<std::uint64_t>(r));
    RunTelemetry run_telemetry;
    run_telemetry.seed = seed;
    const bool collecting =
        options.collect_telemetry &&
        partitioner.attach_telemetry(&run_telemetry.refine);
    RunOutcome outcome = run_checked(partitioner, g, balance, seed, context);
    if (collecting) partitioner.attach_telemetry(nullptr);

    RunRecord record = make_record(outcome, seed);
    if (outcome.has_result()) {
      out.cuts.push_back(outcome.result.cut_cost);
      if (collecting) {
        run_telemetry.cut = outcome.result.cut_cost;
        run_telemetry.seconds = outcome.cpu_seconds;
        out.telemetry.push_back(std::move(run_telemetry));
      }
      if (!out.best.valid() || outcome.result.cut_cost < out.best.cut_cost) {
        out.best = std::move(outcome.result);
        out.best_seed = seed;
      }
    }
    // A failed run (no result) is recorded and the loop continues: one bad
    // seed must not abort the whole multi-start.
    out.records.push_back(std::move(record));
  }
  // The skip check above only runs before a next run; a budget that expired
  // during the last attempted run must still surface in the overall status.
  if (out.status.ok() && context &&
      context->stop_code() != StatusCode::kOk) {
    out.status = Status::failure(context->stop_code(),
                                 "stopped during the final attempted run");
  }
  finish_timing(out, wall.seconds());
  finish_all_failed(partitioner, g, out, options.allow_all_failed);
  return out;
}

/// The deterministic dispatch path (options.threads >= 1): every run gets a
/// cloned partitioner, a forked fault injector, its own DegradationLog and
/// a per-worker CancelToken sharing the caller's deadline through a
/// StopBroadcast.  All requested runs are attempted (a broadcast stop makes
/// the remaining runs finish at their first poll with their best validated
/// prefix — never a schedule-dependent skip), and the merge walks slots in
/// seed order, so the result is identical for every thread count.
MultiRunResult run_many_parallel(Bipartitioner& partitioner,
                                 const Hypergraph& g,
                                 const BalanceConstraint& balance, int runs,
                                 std::uint64_t base_seed,
                                 const RunnerOptions& options) {
  const RunContext* context = options.context;
  if (!partitioner.clone()) {
    throw std::invalid_argument(
        partitioner.name() +
        ": clone() unsupported; required for run_many with threads >= 1");
  }

  struct Slot {
    RunOutcome outcome;
    RunTelemetry telemetry;
    bool collected = false;
  };
  std::vector<Slot> slots(static_cast<std::size_t>(runs));

  const Deadline deadline = context && context->cancel
                                ? context->cancel->deadline()
                                : Deadline::never();
  StopBroadcast broadcast;
  // An externally pre-stopped context (expired budget, prior cancellation)
  // is observed before dispatch so every run sees it at its first poll.
  if (context && context->stop_code() != StatusCode::kOk) {
    broadcast.publish(context->stop_code());
  }

  WallTimer wall;
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<std::size_t>(runs));
  {
    ThreadPool pool(options.threads < runs ? options.threads : runs);
    for (int r = 0; r < runs; ++r) {
      futures.push_back(pool.submit([&, r] {
        Slot& slot = slots[static_cast<std::size_t>(r)];
        const std::uint64_t seed =
            mix_seed(base_seed, static_cast<std::uint64_t>(r));
        CancelToken token(deadline);
        token.bind_broadcast(&broadcast);
        FaultInjector injector =
            context && context->injector
                ? context->injector->fork(static_cast<std::uint64_t>(r))
                : FaultInjector();
        DegradationLog log;
        RunContext run_context;
        run_context.cancel = &token;
        run_context.injector = &injector;
        run_context.degradations = &log;
        const std::unique_ptr<Bipartitioner> algo = partitioner.clone();
        if (!algo) {
          slot.outcome.status =
              Status::failure(StatusCode::kError, "clone() returned null");
          return;
        }
        slot.collected = options.collect_telemetry &&
                         algo->attach_telemetry(&slot.telemetry.refine);
        slot.outcome = run_checked(*algo, g, balance, seed, &run_context);
        if (slot.collected) algo->attach_telemetry(nullptr);
      }));
    }
    for (std::size_t r = 0; r < futures.size(); ++r) {
      try {
        futures[r].get();
      } catch (const std::exception& e) {
        // run_checked never throws; this catches clone/dispatch failures.
        slots[r].outcome = RunOutcome{};
        slots[r].outcome.status = Status::failure(StatusCode::kError, e.what());
      }
    }
  }
  const double wall_seconds = wall.seconds();

  MultiRunResult out;
  out.runs_requested = runs;
  out.cuts.reserve(static_cast<std::size_t>(runs));
  out.records.reserve(static_cast<std::size_t>(runs));
  // Seed-ordered reduction: records, cuts, telemetry, the caller's
  // degradation log and the best-selection all walk the slots in run order,
  // never completion order.
  for (int r = 0; r < runs; ++r) {
    Slot& slot = slots[static_cast<std::size_t>(r)];
    const std::uint64_t seed =
        mix_seed(base_seed, static_cast<std::uint64_t>(r));
    RunRecord record = make_record(slot.outcome, seed);
    if (context && context->degradations) {
      for (const DegradationEvent& e : record.degradations) {
        context->degradations->record(e.site, e.action, e.detail);
      }
    }
    if (slot.outcome.has_result()) {
      out.cuts.push_back(slot.outcome.result.cut_cost);
      if (slot.collected) {
        slot.telemetry.seed = seed;
        slot.telemetry.cut = slot.outcome.result.cut_cost;
        slot.telemetry.seconds = slot.outcome.cpu_seconds;
        out.telemetry.push_back(std::move(slot.telemetry));
      }
      // Deterministic best-selection: strictly-lower cut wins, so a tie
      // keeps the earliest run in seed order.
      if (!out.best.valid() ||
          slot.outcome.result.cut_cost < out.best.cut_cost) {
        out.best = std::move(slot.outcome.result);
        out.best_seed = seed;
      }
    }
    out.records.push_back(std::move(record));
  }
  if (broadcast.stopped()) {
    out.status = Status::failure(
        broadcast.code(),
        "parallel multi-start stopped; every run kept its best validated "
        "prefix");
  } else if (context && context->stop_code() != StatusCode::kOk) {
    out.status = Status::failure(context->stop_code(),
                                 "stopped during the final attempted run");
  }
  finish_timing(out, wall_seconds);
  finish_all_failed(partitioner, g, out, options.allow_all_failed);
  return out;
}

}  // namespace

std::uint64_t MultiRunResult::total_passes() const noexcept {
  std::uint64_t total = 0;
  for (const RunTelemetry& r : telemetry) total += r.refine.passes.size();
  return total;
}

std::uint64_t MultiRunResult::total_moves_attempted() const noexcept {
  std::uint64_t total = 0;
  for (const RunTelemetry& r : telemetry) {
    total += r.refine.total_moves_attempted();
  }
  return total;
}

std::uint64_t MultiRunResult::max_rollback_depth() const noexcept {
  std::uint64_t best = 0;
  for (const RunTelemetry& r : telemetry) {
    if (r.refine.max_rollback_depth() > best) {
      best = r.refine.max_rollback_depth();
    }
  }
  return best;
}

double MultiRunResult::max_gain_drift() const noexcept {
  double best = 0.0;
  for (const RunTelemetry& r : telemetry) {
    if (r.refine.max_gain_drift() > best) best = r.refine.max_gain_drift();
  }
  return best;
}

RunOutcome run_checked(Bipartitioner& partitioner, const Hypergraph& g,
                       const BalanceConstraint& balance, std::uint64_t seed,
                       const RunContext* context) {
  RunOutcome out;
  const std::size_t degrade_base =
      context && context->degradations ? context->degradations->events().size()
                                       : 0;
  const bool attached = context && partitioner.attach_context(context);
  WallTimer wall;
  ThreadCpuTimer cpu;
  try {
    PartitionResult result = partitioner.run(g, balance, seed);
    if (context && context->inject(FaultSite::kValidateFail)) {
      out.status = Status::failure(StatusCode::kInjectedFault,
                                   "injected validation failure");
    } else {
      const ValidationReport report = partitioner.validate(g, balance, result);
      if (!report.ok) {
        out.status = Status::failure(
            StatusCode::kInvalidResult,
            partitioner.name() + " produced invalid result on " + g.name() +
                ": " + report.message);
      } else {
        // The partition is valid even if the run was stopped early — the
        // pass engines roll back to their best validated prefix.  Keep it
        // and let the status say *why* the run ended.
        out.result = std::move(result);
        const StatusCode stop =
            context ? context->stop_code() : StatusCode::kOk;
        if (stop != StatusCode::kOk) {
          out.status = Status::failure(
              stop, "stopped early; returning best validated partition");
        }
      }
    }
  } catch (const std::exception& e) {
    out.status = Status::failure(StatusCode::kError, e.what());
  }
  out.wall_seconds = wall.seconds();
  out.cpu_seconds = cpu.seconds();
  if (attached) partitioner.attach_context(nullptr);
  if (context && context->degradations) {
    const auto& events = context->degradations->events();
    out.degradations.assign(events.begin() + static_cast<std::ptrdiff_t>(degrade_base),
                            events.end());
  }
  return out;
}

MultiRunResult run_many(Bipartitioner& partitioner, const Hypergraph& g,
                        const BalanceConstraint& balance, int runs,
                        std::uint64_t base_seed, const RunnerOptions& options) {
  if (runs <= 0) throw std::invalid_argument("run_many: runs must be positive");
  if (options.threads < 0) {
    throw std::invalid_argument("run_many: threads must be >= 0");
  }
  if (options.threads >= 1) {
    return run_many_parallel(partitioner, g, balance, runs, base_seed, options);
  }
  return run_many_sequential(partitioner, g, balance, runs, base_seed, options);
}

void write_stats_json(std::ostream& out, const std::string& circuit,
                      const std::string& algo, const MultiRunResult& result,
                      const StatsJsonOptions& json_options) {
  const bool timing = json_options.include_timing;
  out << "{\"circuit\":\"" << circuit << "\",\"algo\":\"" << algo
      << "\",\"outcome\":\"" << to_string(result.status.code) << "\"";
  if (!result.status.message.empty()) {
    out << ",\"message\":\"" << json_escape(result.status.message) << "\"";
  }
  out << ",\"best_cut\":";
  put_double(out, result.best_cut());
  out << ",\"best_seed\":" << result.best_seed
      << ",\"runs_requested\":" << result.runs_requested
      << ",\"runs_attempted\":" << result.runs_attempted()
      << ",\"runs_failed\":" << result.runs_failed();
  if (timing) {
    out << ",\"total_wall_seconds\":";
    put_double(out, result.total_wall_seconds);
    out << ",\"total_cpu_seconds\":";
    put_double(out, result.total_cpu_seconds);
    out << ",\"wall_seconds_per_run\":";
    put_double(out, result.wall_seconds_per_run);
    out << ",\"cpu_seconds_per_run\":";
    put_double(out, result.cpu_seconds_per_run);
    // Deprecated aliases of the CPU fields, kept for one release.
    out << ",\"total_seconds\":";
    put_double(out, result.total_cpu_seconds);
    out << ",\"seconds_per_run\":";
    put_double(out, result.cpu_seconds_per_run);
  }
  out << ",\"run_records\":[";
  bool first = true;
  for (const RunRecord& r : result.records) {
    if (!first) out << ",";
    first = false;
    write_json(out, r, timing);
  }
  out << "],\"runs\":[";
  first = true;
  for (const RunTelemetry& r : result.telemetry) {
    if (!first) out << ",";
    first = false;
    write_json(out, r, timing);
  }
  out << "]}";
}

}  // namespace prop
