#include "partition/runner.h"

#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/rng.h"

namespace prop {

std::uint64_t MultiRunResult::total_passes() const noexcept {
  std::uint64_t total = 0;
  for (const RunTelemetry& r : telemetry) total += r.refine.passes.size();
  return total;
}

std::uint64_t MultiRunResult::total_moves_attempted() const noexcept {
  std::uint64_t total = 0;
  for (const RunTelemetry& r : telemetry) {
    total += r.refine.total_moves_attempted();
  }
  return total;
}

std::uint64_t MultiRunResult::max_rollback_depth() const noexcept {
  std::uint64_t best = 0;
  for (const RunTelemetry& r : telemetry) {
    if (r.refine.max_rollback_depth() > best) {
      best = r.refine.max_rollback_depth();
    }
  }
  return best;
}

double MultiRunResult::max_gain_drift() const noexcept {
  double best = 0.0;
  for (const RunTelemetry& r : telemetry) {
    if (r.refine.max_gain_drift() > best) best = r.refine.max_gain_drift();
  }
  return best;
}

MultiRunResult run_many(Bipartitioner& partitioner, const Hypergraph& g,
                        const BalanceConstraint& balance, int runs,
                        std::uint64_t base_seed, const RunnerOptions& options) {
  if (runs <= 0) throw std::invalid_argument("run_many: runs must be positive");
  MultiRunResult out;
  out.cuts.reserve(static_cast<std::size_t>(runs));
  CpuTimer timer;
  for (int r = 0; r < runs; ++r) {
    const std::uint64_t seed = mix_seed(base_seed, static_cast<std::uint64_t>(r));
    RunTelemetry run_telemetry;
    run_telemetry.seed = seed;
    const bool collecting =
        options.collect_telemetry &&
        partitioner.attach_telemetry(&run_telemetry.refine);
    CpuTimer run_timer;
    PartitionResult result = partitioner.run(g, balance, seed);
    run_telemetry.seconds = run_timer.seconds();
    if (collecting) partitioner.attach_telemetry(nullptr);
    const ValidationReport report = validate_result(g, balance, result);
    if (!report.ok) {
      throw std::logic_error(partitioner.name() + " produced invalid result on " +
                             g.name() + ": " + report.message);
    }
    out.cuts.push_back(result.cut_cost);
    if (collecting) {
      run_telemetry.cut = result.cut_cost;
      out.telemetry.push_back(std::move(run_telemetry));
    }
    if (!out.best.valid() || result.cut_cost < out.best.cut_cost) {
      out.best = std::move(result);
    }
  }
  out.total_seconds = timer.seconds();
  out.seconds_per_run = out.total_seconds / runs;
  return out;
}

void write_stats_json(std::ostream& out, const std::string& circuit,
                      const std::string& algo, const MultiRunResult& result) {
  std::ostringstream best;
  best.precision(17);
  best << result.best_cut();
  out << "{\"circuit\":\"" << circuit << "\",\"algo\":\"" << algo
      << "\",\"best_cut\":" << best.str() << ",\"runs\":[";
  bool first = true;
  for (const RunTelemetry& r : result.telemetry) {
    if (!first) out << ",";
    first = false;
    write_json(out, r);
  }
  out << "]}";
}

}  // namespace prop
