#include "partition/runner.h"

#include <cstdio>
#include <exception>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "util/rng.h"

namespace prop {
namespace {

/// Minimal JSON string escaping (quotes, backslashes, control chars) for
/// status messages and degradation details.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void write_json(std::ostream& out, const DegradationEvent& e) {
  out << "{\"site\":\"" << json_escape(e.site) << "\",\"action\":\""
      << json_escape(e.action) << "\"";
  if (!e.detail.empty()) out << ",\"detail\":\"" << json_escape(e.detail) << "\"";
  out << "}";
}

void write_json(std::ostream& out, const RunRecord& r) {
  out << "{\"seed\":" << r.seed << ",\"outcome\":\"" << to_string(r.status.code)
      << "\"";
  if (!r.status.message.empty()) {
    out << ",\"message\":\"" << json_escape(r.status.message) << "\"";
  }
  if (r.produced_result()) {
    std::ostringstream cut;
    cut.precision(17);
    cut << r.cut;
    out << ",\"cut\":" << cut.str();
  }
  out << ",\"seconds\":" << r.seconds;
  if (!r.degradations.empty()) {
    out << ",\"degradations\":[";
    bool first = true;
    for (const DegradationEvent& e : r.degradations) {
      if (!first) out << ",";
      first = false;
      write_json(out, e);
    }
    out << "]";
  }
  out << "}";
}

}  // namespace

std::uint64_t MultiRunResult::total_passes() const noexcept {
  std::uint64_t total = 0;
  for (const RunTelemetry& r : telemetry) total += r.refine.passes.size();
  return total;
}

std::uint64_t MultiRunResult::total_moves_attempted() const noexcept {
  std::uint64_t total = 0;
  for (const RunTelemetry& r : telemetry) {
    total += r.refine.total_moves_attempted();
  }
  return total;
}

std::uint64_t MultiRunResult::max_rollback_depth() const noexcept {
  std::uint64_t best = 0;
  for (const RunTelemetry& r : telemetry) {
    if (r.refine.max_rollback_depth() > best) {
      best = r.refine.max_rollback_depth();
    }
  }
  return best;
}

double MultiRunResult::max_gain_drift() const noexcept {
  double best = 0.0;
  for (const RunTelemetry& r : telemetry) {
    if (r.refine.max_gain_drift() > best) best = r.refine.max_gain_drift();
  }
  return best;
}

RunOutcome run_checked(Bipartitioner& partitioner, const Hypergraph& g,
                       const BalanceConstraint& balance, std::uint64_t seed,
                       const RunContext* context) {
  RunOutcome out;
  const std::size_t degrade_base =
      context && context->degradations ? context->degradations->events().size()
                                       : 0;
  const bool attached = context && partitioner.attach_context(context);
  CpuTimer timer;
  try {
    PartitionResult result = partitioner.run(g, balance, seed);
    if (context && context->inject(FaultSite::kValidateFail)) {
      out.status = Status::failure(StatusCode::kInjectedFault,
                                   "injected validation failure");
    } else {
      const ValidationReport report = validate_result(g, balance, result);
      if (!report.ok) {
        out.status = Status::failure(
            StatusCode::kInvalidResult,
            partitioner.name() + " produced invalid result on " + g.name() +
                ": " + report.message);
      } else {
        // The partition is valid even if the run was stopped early — the
        // pass engines roll back to their best validated prefix.  Keep it
        // and let the status say *why* the run ended.
        out.result = std::move(result);
        const StatusCode stop =
            context ? context->stop_code() : StatusCode::kOk;
        if (stop != StatusCode::kOk) {
          out.status = Status::failure(
              stop, "stopped early; returning best validated partition");
        }
      }
    }
  } catch (const std::exception& e) {
    out.status = Status::failure(StatusCode::kError, e.what());
  }
  out.seconds = timer.seconds();
  if (attached) partitioner.attach_context(nullptr);
  if (context && context->degradations) {
    const auto& events = context->degradations->events();
    out.degradations.assign(events.begin() + static_cast<std::ptrdiff_t>(degrade_base),
                            events.end());
  }
  return out;
}

MultiRunResult run_many(Bipartitioner& partitioner, const Hypergraph& g,
                        const BalanceConstraint& balance, int runs,
                        std::uint64_t base_seed, const RunnerOptions& options) {
  if (runs <= 0) throw std::invalid_argument("run_many: runs must be positive");
  const RunContext* context = options.context;
  MultiRunResult out;
  out.runs_requested = runs;
  out.cuts.reserve(static_cast<std::size_t>(runs));
  out.records.reserve(static_cast<std::size_t>(runs));
  CpuTimer timer;
  for (int r = 0; r < runs; ++r) {
    // Run 0 is always attempted: even with an already-expired budget the
    // engines stop at their first poll and return a validated best-effort
    // partition, so --on-timeout=best has something to report.
    if (r > 0 && context && context->stop_code() != StatusCode::kOk) {
      out.status = Status::failure(
          context->stop_code(), "multi-start stopped after " +
                                    std::to_string(r) + " of " +
                                    std::to_string(runs) + " runs");
      break;
    }
    const std::uint64_t seed = mix_seed(base_seed, static_cast<std::uint64_t>(r));
    RunTelemetry run_telemetry;
    run_telemetry.seed = seed;
    const bool collecting =
        options.collect_telemetry &&
        partitioner.attach_telemetry(&run_telemetry.refine);
    RunOutcome outcome = run_checked(partitioner, g, balance, seed, context);
    if (collecting) partitioner.attach_telemetry(nullptr);

    RunRecord record;
    record.seed = seed;
    record.status = outcome.status;
    record.seconds = outcome.seconds;
    record.degradations = std::move(outcome.degradations);
    if (outcome.has_result()) {
      record.cut = outcome.result.cut_cost;
      out.cuts.push_back(outcome.result.cut_cost);
      if (collecting) {
        run_telemetry.cut = outcome.result.cut_cost;
        run_telemetry.seconds = outcome.seconds;
        out.telemetry.push_back(std::move(run_telemetry));
      }
      if (!out.best.valid() || outcome.result.cut_cost < out.best.cut_cost) {
        out.best = std::move(outcome.result);
      }
    }
    // A failed run (no result) is recorded and the loop continues: one bad
    // seed must not abort the whole multi-start.
    out.records.push_back(std::move(record));
  }
  out.total_seconds = timer.seconds();
  // The skip check above only runs before a next run; a budget that expired
  // during the last attempted run must still surface in the overall status.
  if (out.status.ok() && context &&
      context->stop_code() != StatusCode::kOk) {
    out.status = Status::failure(context->stop_code(),
                                 "stopped during the final attempted run");
  }
  const int attempted = out.runs_attempted();
  out.seconds_per_run =
      attempted > 0 ? out.total_seconds / attempted : 0.0;
  if (!out.best.valid()) {
    std::string first_failure;
    for (const RunRecord& rec : out.records) {
      if (!rec.status.ok()) {
        first_failure = rec.status.describe();
        break;
      }
    }
    throw std::runtime_error(
        partitioner.name() + ": all " + std::to_string(attempted) +
        " runs failed on " + g.name() +
        (first_failure.empty() ? "" : " (first failure: " + first_failure + ")"));
  }
  return out;
}

void write_stats_json(std::ostream& out, const std::string& circuit,
                      const std::string& algo, const MultiRunResult& result) {
  std::ostringstream best;
  best.precision(17);
  best << result.best_cut();
  out << "{\"circuit\":\"" << circuit << "\",\"algo\":\"" << algo
      << "\",\"outcome\":\"" << to_string(result.status.code) << "\"";
  if (!result.status.message.empty()) {
    out << ",\"message\":\"" << json_escape(result.status.message) << "\"";
  }
  out << ",\"best_cut\":" << best.str()
      << ",\"runs_requested\":" << result.runs_requested
      << ",\"runs_attempted\":" << result.runs_attempted()
      << ",\"runs_failed\":" << result.runs_failed() << ",\"run_records\":[";
  bool first = true;
  for (const RunRecord& r : result.records) {
    if (!first) out << ",";
    first = false;
    write_json(out, r);
  }
  out << "],\"runs\":[";
  first = true;
  for (const RunTelemetry& r : result.telemetry) {
    if (!first) out << ",";
    first = false;
    write_json(out, r);
  }
  out << "]}";
}

}  // namespace prop
