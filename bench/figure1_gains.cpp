// Figure 1 reproduction: the worked example's gains under all three gain
// models, printed as the three panels of the figure.
//
// (a) FM gains and LA-3 gain vectors for nodes 1, 2, 3;
// (b) initial probabilistic gains/probabilities (first iteration);
// (c) refined gains after the second iteration — the numbers quoted in
//     Sec. 3.3: g(1)=2.0016, g(2)=2.04, g(3)=2.64, g(10)=g(11)=1.8,
//     g(8)=g(9)=-0.3, g(4..7)=-0.49.
//
// Exits nonzero if any printed value deviates from the paper.
#include <cmath>
#include <cstdio>

#include "core/figure1_example.h"
#include "core/prob_gain.h"
#include "fm/fm_gains.h"
#include "la/la_gains.h"
#include "partition/partition.h"
#include "util/cli.h"

namespace {

bool close(double a, double b) { return std::abs(a - b) < 1e-9; }

}  // namespace

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::validate_flags(args, {}, "(no flags)")) return 2;
  const prop::Figure1Example ex = prop::make_figure1_example();
  const prop::Partition part(ex.graph, ex.side);
  bool ok = true;

  std::printf("Figure 1(a): FM gains and LA-3 gain vectors\n");
  prop::LaGainCalculator la(part, 3);
  for (int k = 1; k <= 11; ++k) {
    const prop::NodeId u = ex.node(k);
    std::printf("  node %2d: FM %+.0f   LA-3 %s\n", k, prop::fm_gain(part, u),
                la.gain(u).to_string().c_str());
  }
  ok &= close(prop::fm_gain(part, ex.node(1)), 2.0);
  ok &= la.gain(ex.node(2)).to_string() == "(2,0,1)";
  ok &= la.gain(ex.node(1)).to_string() == "(2,0,0)";

  std::printf("\nFigure 1(b): first-iteration probabilities (from "
              "deterministic gains)\n");
  for (int k = 1; k <= 11; ++k) {
    std::printf("  node %2d: g=%+.0f p=%.1f\n", k,
                prop::fm_gain(part, ex.node(k)),
                ex.initial_probability[ex.node(k)]);
  }

  std::printf("\nFigure 1(c): second-iteration probabilistic gains\n");
  prop::ProbGainCalculator calc(part);
  for (prop::NodeId u = 0; u < ex.graph.num_nodes(); ++u) {
    calc.set_probability(u, ex.initial_probability[u]);
  }
  const double expected[] = {2.0016, 2.04,  2.64,  -0.492, -0.492, -0.492,
                             -0.492, -0.3,  -0.3,  1.8,    1.8};
  for (int k = 1; k <= 11; ++k) {
    const double g = calc.gain(ex.node(k));
    const double want = expected[k - 1];
    const bool match = close(g, want);
    ok &= match;
    std::printf("  node %2d: g=%+.4f (paper %+.4f) %s\n", k, g, want,
                match ? "ok" : "MISMATCH");
  }

  const bool node3_best =
      calc.gain(ex.node(3)) > calc.gain(ex.node(2)) &&
      calc.gain(ex.node(2)) > calc.gain(ex.node(1));
  ok &= node3_best;
  std::printf("\nPROP ranks node 3 > node 2 > node 1: %s "
              "(FM ties all three; LA-3 ties 2 and 3)\n",
              node3_best ? "yes" : "NO");
  std::printf("%s\n", ok ? "figure 1 reproduced exactly" : "MISMATCH");
  return ok ? 0 : 1;
}
