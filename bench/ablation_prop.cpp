// Ablation study of PROP's design choices (DESIGN.md Sec. 5):
//   * bootstrap method (uniform pinit vs deterministic-gain, Sec. 3);
//   * number of gain/probability fixed-point iterations (paper uses 2);
//   * top-k update width after each move (paper suggests ~5, Sec. 3.4);
//   * probability window pmin/pmax and thresholds gup/glo (Sec. 3.2).
//
// Prints best-of-N cuts for each variant on a few mid-size circuits.
// Flags: --fast, --circuit NAME, --runs N, --seed N.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/prop_partitioner.h"
#include "hypergraph/mcnc_suite.h"
#include "partition/runner.h"
#include "util/cli.h"

namespace {

struct Variant {
  std::string label;
  prop::PropConfig config;
};

std::vector<Variant> variants() {
  std::vector<Variant> v;
  v.push_back({"paper defaults", {}});

  prop::PropConfig c;
  c.bootstrap = prop::PropBootstrap::kDeterministicGain;
  v.push_back({"bootstrap=det-gain", c});

  c = {};
  c.refine_iterations = 1;
  v.push_back({"iterations=1", c});
  c = {};
  c.refine_iterations = 4;
  v.push_back({"iterations=4", c});

  c = {};
  c.top_update_width = 0;
  v.push_back({"top-update=0", c});
  c = {};
  c.top_update_width = 20;
  v.push_back({"top-update=20", c});

  c = {};
  c.model.pmin = 0.1;
  v.push_back({"pmin=0.1", c});
  c = {};
  c.model.pmax = 1.0;
  c.model.pinit = 1.0;
  v.push_back({"pmax=1.0", c});
  c = {};
  c.model.gup = 2.0;
  c.model.glo = -2.0;
  v.push_back({"thresholds=+-2", c});

  // Gain-engine ablation (DESIGN.md Sec. 4f): the scratch oracle must match
  // the cached default on *quality* — only the runtime differs (see
  // bench/gain_kernels for the wall-clock comparison).
  c = {};
  c.gain_engine = prop::GainEngine::kScratch;
  v.push_back({"engine=scratch", c});
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  prop::CliArgs args(argc, argv);
  if (!prop::bench::check_flags(
          args, {"fast", "circuit", "runs", "seed", "threads"},
          "[--fast] [--circuit NAME] [--runs N] [--seed N] [--threads N]\n"
          "          [--time-budget-ms N] [--on-timeout=best|fail] "
          "[--inject=SPEC] [--inject-seed N]")) {
    return 2;
  }
  prop::RuntimeSession session(args);
  prop::RunnerOptions options;
  options.context = session.context();
  options.threads = prop::bench::thread_count(args);
  prop::bench::OutcomeTracker tracker;
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const int runs = static_cast<int>(args.get_int_or("runs", 10));

  std::vector<std::string> circuits;
  if (const auto one = args.get("circuit")) {
    circuits = {*one};
  } else if (args.get_bool_or("fast", false)) {
    circuits = {"struct"};
  } else {
    circuits = {"struct", "p2", "19ks"};
  }

  std::printf("PROP ablations (best of %d runs, 50-50%% balance)\n\n", runs);
  std::printf("%-20s", "variant");
  for (const auto& name : circuits) std::printf(" %10s", name.c_str());
  std::printf(" %10s\n", "total");
  prop::bench::print_rule(24 + 11 * (static_cast<int>(circuits.size()) + 1));

  std::vector<prop::Hypergraph> graphs;
  for (const auto& name : circuits) graphs.push_back(prop::make_mcnc_circuit(name));

  for (const auto& variant : variants()) {
    std::printf("%-20s", variant.label.c_str());
    double total = 0.0;
    for (const auto& g : graphs) {
      const prop::BalanceConstraint balance =
          prop::BalanceConstraint::fifty_fifty(g);
      prop::PropPartitioner algo(variant.config);
      const prop::MultiRunResult r =
          prop::run_many(algo, g, balance, runs, prop::mix_seed(seed, 99), options);
      tracker.observe(r);
      const double cut = r.best_cut();
      total += cut;
      std::printf(" %10.0f", cut);
    }
    std::printf(" %10.0f\n", total);
  }
  return tracker.finish(session);
}
