// Gain-engine kernel benchmark (DESIGN.md Sec. 4f) — the perf contract of
// the cached-product gain engine, measured against the compiled-in scratch
// oracle on the synthetic MCNC-like suite.
//
// Four kernels, each timed per {circuit, engine}:
//   * bootstrap:   reset + pinit assignment + 2 gain/probability fixed-point
//                  iterations, using the engine-appropriate sweep (net-major
//                  for cached, node-major for scratch).
//   * gain-query:  random gain(u) queries on a mixed free/locked state —
//                  the pure read path (O(deg) cached vs O(deg*netsize)
//                  scratch).
//   * move-update: full PropRefiner passes — the production move loop with
//                  its lock/move/set_probability cache maintenance, tree
//                  updates and rollback.
//   * end-to-end:  PropPartitioner via run_many, wall time per run.
//
// The steady-state timed regions of the first three kernels must allocate
// nothing (global operator new is counted; a nonzero count is a hard
// failure, exit 6) — that is the "per-pass workspace is hoisted" invariant
// of PropRefiner made executable.
//
// Output: one JSON row per {kernel, circuit, engine} cell with wall/cpu
// seconds and, on cached rows, speedup_vs_scratch.  --baseline FILE
// compares wall times cell-by-cell against a previously committed JSON and
// fails (exit 4) when any cell regresses by more than --max-regress
// (default 0.25) beyond a small absolute floor; scripts/verify.sh runs this
// as the perf-regression gate against BENCH_gain_kernels.json.
// --assert-speedup additionally enforces the PR's headline contract (exit
// 5): aggregate cached-vs-scratch >= 3x on gain-query and >= 1.3x in-binary
// on end-to-end (the >= 2x end-to-end claim is measured against the
// pre-cache seed build, which also lacked this PR's shared pass/tree
// optimizations — see EXPERIMENTS.md).
//
// Every cell is measured --min-of K times (default 3) and the minimum
// wall time kept: host noise (preemption, cache eviction) is one-sided,
// so the min is the stable estimator a 25% gate can sit on.
//
// Flags: --fast / --circuit NAME, --reps N, --queries N, --runs N,
// --seed N, --threads N, --out FILE, --baseline FILE, --max-regress X,
// --assert-speedup, --min-of K.
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <new>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/prob_gain.h"
#include "core/prop_partitioner.h"
#include "hypergraph/generator.h"
#include "hypergraph/mcnc_suite.h"
#include "partition/initial.h"
#include "partition/runner.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"

// ---------------------------------------------------------------------------
// Allocation counter: every global operator new bumps g_allocations, so a
// timed region can assert it performed no heap allocation at all.
// ---------------------------------------------------------------------------
namespace {
std::atomic<std::uint64_t> g_allocations{0};

void* counted_alloc(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  const auto a = static_cast<std::size_t>(align);
  if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using prop::GainEngine;
using prop::NetId;
using prop::NodeId;

struct Row {
  std::string kernel;
  std::string circuit;
  std::string engine;
  std::uint64_t ops = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  double speedup_vs_scratch = 0.0;  // 0 on scratch rows
};

// Shared sink so the compiler cannot discard kernel work.
double g_sink = 0.0;

bool g_alloc_failure = false;

void assert_no_allocs(const char* kernel, const char* circuit,
                      std::uint64_t count) {
  if (count == 0) return;
  g_alloc_failure = true;
  std::fprintf(stderr,
               "ALLOCATION VIOLATION: %s/%s performed %llu heap "
               "allocations in its steady-state timed region\n",
               kernel, circuit, static_cast<unsigned long long>(count));
}

// One timed measurement: wall + calling-thread CPU seconds.
struct Timed {
  double wall = 0.0;
  double cpu = 0.0;
};

// --- bootstrap kernel ------------------------------------------------------
// reset + blind pinit + `refine_iterations` gain/probability fixed-point
// rounds, exactly the sweep structure PropRefiner::bootstrap_probabilities
// uses per engine: net-major accumulation for cached, node-major gain(u)
// for scratch.
Timed run_bootstrap(const prop::Hypergraph& g, const prop::Partition& part,
                    GainEngine engine, int reps, const char* circuit) {
  const prop::ProbabilityModel model;
  prop::ProbGainCalculator calc(part, engine);
  const auto n = static_cast<NodeId>(g.num_nodes());
  const auto m = static_cast<NetId>(g.num_nets());
  std::vector<double> gains(n, 0.0);

  const auto one_rep = [&] {
    calc.reset();
    for (NodeId u = 0; u < n; ++u) calc.set_probability(u, model.pinit);
    for (int iter = 0; iter < 2; ++iter) {
      if (engine == GainEngine::kCached) {
        std::fill(gains.begin(), gains.end(), 0.0);
        for (NetId net = 0; net < m; ++net) {
          calc.for_each_net_gain(net,
                                 [&](NodeId v, double gn) { gains[v] += gn; });
        }
      } else {
        for (NodeId u = 0; u < n; ++u) gains[u] = calc.gain(u);
      }
      for (NodeId u = 0; u < n; ++u) {
        calc.set_probability(u, model.from_gain(gains[u]));
      }
    }
    g_sink += gains[n / 2];
  };

  one_rep();  // warmup: first-touch paging, no further allocations allowed
  const std::uint64_t allocs_before = g_allocations.load();
  prop::WallTimer wall;
  prop::ThreadCpuTimer cpu;
  for (int r = 0; r < reps; ++r) one_rep();
  const Timed t{wall.seconds(), cpu.seconds()};
  assert_no_allocs("bootstrap", circuit, g_allocations.load() - allocs_before);
  return t;
}

// --- gain-query kernel -----------------------------------------------------
// Mixed state: randomized probabilities (seed stream 11), ~10% of nodes
// locked (stream 13, every other locked node also moved sides), then
// `queries` random gain(u) reads over the free nodes (stream 17).
Timed run_gain_query(const prop::Hypergraph& g, prop::Partition& part,
                     GainEngine engine, std::uint64_t queries,
                     std::uint64_t seed, const char* circuit) {
  prop::ProbGainCalculator calc(part, engine);
  calc.reset();
  const auto n = static_cast<NodeId>(g.num_nodes());

  prop::Rng prng(prop::mix_seed(seed, 11));
  for (NodeId u = 0; u < n; ++u) {
    calc.set_probability(u, 0.4 + 0.55 * prng.uniform());
  }
  prop::Rng lrng(prop::mix_seed(seed, 13));
  bool move_this = false;
  std::vector<NodeId> free_nodes;
  free_nodes.reserve(n);
  for (NodeId u = 0; u < n; ++u) {
    if (lrng.chance(0.1)) {
      const int from = part.side(u);
      calc.lock(u);
      if (move_this) {
        part.move(u);
        calc.move_locked(u, from);
      }
      move_this = !move_this;
    } else {
      free_nodes.push_back(u);
    }
  }

  prop::Rng qrng(prop::mix_seed(seed, 17));
  const auto pool = static_cast<std::int64_t>(free_nodes.size());
  double acc = 0.0;
  for (int w = 0; w < 1000; ++w) {  // warmup
    acc += calc.gain(free_nodes[static_cast<std::size_t>(qrng.range(0, pool - 1))]);
  }
  const std::uint64_t allocs_before = g_allocations.load();
  prop::WallTimer wall;
  prop::ThreadCpuTimer cpu;
  for (std::uint64_t q = 0; q < queries; ++q) {
    acc += calc.gain(free_nodes[static_cast<std::size_t>(qrng.range(0, pool - 1))]);
  }
  const Timed t{wall.seconds(), cpu.seconds()};
  assert_no_allocs("gain-query", circuit, g_allocations.load() - allocs_before);
  g_sink += acc;
  return t;
}

// --- move-update kernel ----------------------------------------------------
// Repeated PropRefiner passes: the production move loop (speculative move of
// every feasible node with lock / move_locked / neighbor set_probability
// cache maintenance, AVL bulk load + updates, best-prefix rollback).  The
// first pass is the untimed warmup; every later pass must allocate nothing.
Timed run_move_update(const prop::Hypergraph& g,
                      const std::vector<std::uint8_t>& sides,
                      const prop::BalanceConstraint& balance,
                      GainEngine engine, int reps, const char* circuit) {
  prop::PropConfig config;
  config.gain_engine = engine;
  prop::Partition part(g, sides);
  prop::PropRefiner refiner(part, balance, config);

  g_sink += refiner.run_pass();  // warmup pass
  const std::uint64_t allocs_before = g_allocations.load();
  prop::WallTimer wall;
  prop::ThreadCpuTimer cpu;
  for (int r = 0; r < reps; ++r) g_sink += refiner.run_pass();
  const Timed t{wall.seconds(), cpu.seconds()};
  assert_no_allocs("move-update", circuit, g_allocations.load() - allocs_before);
  return t;
}

// --- active-sweep kernel ---------------------------------------------------
// The §4k active-set contract under the microscope, on the synthetic
// 10^3/10^4-node instances.  Each rep stages a batch of probability changes
// (the round engine's apply/stage step), folds them into the dirty-net set
// and rebuilds exactly those nets, then recomputes gains either for every
// node ("full" — the pre-§4k round sweep) or only for the pins of the
// dirty nets ("dirty" — the active-set sweep).  The gains array is carried
// across reps, so in dirty mode unswept entries go stale by design; the
// §4k invariant says stale is still exact.  That is asserted in-binary
// after the timed region: every entry must be BITWISE equal to a fresh
// gain(u) (exit 7 on mismatch).  Steady state allocates nothing.
bool g_identity_failure = false;

Timed run_active_sweep(const prop::Hypergraph& g,
                       const std::vector<std::uint8_t>& sides,
                       bool dirty_sweep, int reps, std::uint64_t seed,
                       const char* circuit) {
  const prop::ProbabilityModel model;
  prop::Partition part(g, sides);
  prop::ProbGainCalculator calc(part, GainEngine::kCached);
  const auto n = static_cast<NodeId>(g.num_nodes());
  calc.set_dirty_tracking(true);
  calc.reset();
  for (NodeId u = 0; u < n; ++u) calc.set_probability(u, model.pinit);
  calc.clear_dirty();

  std::vector<double> gains(n, 0.0);
  const auto batch_size = static_cast<std::size_t>(std::max<NodeId>(8, n / 64));
  std::vector<NodeId> batch(batch_size, 0);
  std::vector<NodeId> sweep;
  sweep.reserve(n);
  std::vector<std::uint32_t> stamp(n, 0);
  std::uint32_t epoch = 0;
  prop::Rng rng(prop::mix_seed(seed, 23));

  // Capacity warmup: mark every net dirty once through the staging path so
  // the calculator's internal dirty list reaches its maximum size and never
  // reallocates inside the timed region.
  for (NodeId u = 0; u < n; ++u) calc.stage_probability(u, 0.5);
  calc.note_staged_changes_all();
  {
    const auto& dirty = calc.dirty_nets();
    calc.rebuild_products_for(dirty.data(), 0, dirty.size());
  }
  calc.clear_dirty();
  for (NodeId u = 0; u < n; ++u) gains[u] = calc.gain(u);

  const auto one_rep = [&] {
    for (auto& u : batch) {
      u = static_cast<NodeId>(
          rng.range(0, static_cast<std::int64_t>(n) - 1));
      calc.stage_probability(u, 0.4 + 0.55 * rng.uniform());
    }
    calc.note_staged_changes(batch.data(), batch.size());
    const auto& dirty = calc.dirty_nets();
    calc.rebuild_products_for(dirty.data(), 0, dirty.size());
    if (dirty_sweep) {
      ++epoch;
      sweep.clear();
      for (const NetId net : dirty) {
        for (const NodeId v : g.pins_of(net)) {
          if (stamp[v] != epoch) {
            stamp[v] = epoch;
            sweep.push_back(v);
          }
        }
      }
      for (const NodeId v : sweep) gains[v] = calc.gain(v);
      if (!sweep.empty()) g_sink += gains[sweep.front()];
    } else {
      for (NodeId v = 0; v < n; ++v) gains[v] = calc.gain(v);
      g_sink += gains[n / 2];
    }
    calc.clear_dirty();
  };

  one_rep();  // warmup: first-touch paging, no further allocations allowed
  const std::uint64_t allocs_before = g_allocations.load();
  prop::WallTimer wall;
  prop::ThreadCpuTimer cpu;
  for (int r = 0; r < reps; ++r) one_rep();
  const Timed t{wall.seconds(), cpu.seconds()};
  assert_no_allocs("active-sweep", circuit,
                   g_allocations.load() - allocs_before);

  // §4k identity: every entry — including the ones dirty mode never
  // re-swept — must equal a fresh gain(u) bitwise.
  for (NodeId u = 0; u < n; ++u) {
    if (gains[u] != calc.gain(u)) {
      g_identity_failure = true;
      std::fprintf(stderr,
                   "ACTIVE-SET IDENTITY VIOLATION: %s/%s node %u gain "
                   "%.17g != fresh %.17g\n",
                   dirty_sweep ? "dirty" : "full", circuit,
                   static_cast<unsigned>(u), gains[u], calc.gain(u));
      break;
    }
  }
  return t;
}

// --- end-to-end kernel -----------------------------------------------------
Timed run_end_to_end(const prop::Hypergraph& g,
                     const prop::BalanceConstraint& balance, GainEngine engine,
                     int runs, std::uint64_t seed, int threads) {
  prop::PropConfig config;
  config.gain_engine = engine;
  prop::PropPartitioner algo(config);
  prop::RunnerOptions options;
  options.threads = threads;
  prop::WallTimer wall;
  const prop::MultiRunResult r =
      prop::run_many(algo, g, balance, runs, prop::mix_seed(seed, 7), options);
  g_sink += r.best_cut();
  return Timed{wall.seconds(), r.total_cpu_seconds};
}

// --- baseline comparison ---------------------------------------------------
// The JSON we emit keeps one row per line, so the baseline reader is a
// line-oriented field extractor rather than a general JSON parser.
std::string extract_string(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\": \"";
  const auto at = line.find(pat);
  if (at == std::string::npos) return {};
  const auto start = at + pat.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return {};
  return line.substr(start, end - start);
}

double extract_double(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\": ";
  const auto at = line.find(pat);
  if (at == std::string::npos) return 0.0;
  return std::atof(line.c_str() + at + pat.size());
}

std::vector<Row> load_baseline(const std::string& path) {
  std::vector<Row> rows;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    if (line.find("\"kernel\"") == std::string::npos) continue;
    Row r;
    r.kernel = extract_string(line, "kernel");
    r.circuit = extract_string(line, "circuit");
    r.engine = extract_string(line, "engine");
    r.ops = static_cast<std::uint64_t>(extract_double(line, "ops"));
    r.wall_seconds = extract_double(line, "wall_seconds");
    rows.push_back(r);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::bench::check_flags(
          args,
          {"fast", "circuit", "reps", "queries", "runs", "seed", "threads",
           "out", "baseline", "max-regress", "assert-speedup", "min-of"},
          "[--fast] [--circuit NAME] [--reps N] [--queries N] [--runs N]\n"
          "          [--seed N] [--threads N] [--out FILE] [--baseline FILE]\n"
          "          [--max-regress X] [--assert-speedup] [--min-of K]")) {
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const int reps = static_cast<int>(args.get_int_or("reps", 10));
  const auto queries =
      static_cast<std::uint64_t>(args.get_int_or("queries", 500000));
  const int runs = static_cast<int>(args.get_int_or("runs", 3));
  const int min_of = static_cast<int>(args.get_int_or("min-of", 3));
  const int threads = prop::bench::thread_count(args);
  const std::string out_path = args.get_or("out", "BENCH_gain_kernels.json");
  const std::string baseline_path = args.get_or("baseline", "");
  const double max_regress = args.get_double_or("max-regress", 0.25);
  const bool assert_speedup = args.get_bool_or("assert-speedup", false);
  const std::vector<std::string> circuits = prop::bench::circuit_names(args);

  std::printf("gain-engine kernels: cached vs scratch "
              "(reps=%d, queries=%llu, runs=%d)\n\n",
              reps, static_cast<unsigned long long>(queries), runs);
  std::printf("%-12s %-10s %-8s %12s %12s %9s\n", "kernel", "circuit",
              "engine", "ops", "wall (s)", "speedup");
  prop::bench::print_rule(68);

  const GainEngine engines[2] = {GainEngine::kScratch, GainEngine::kCached};
  std::vector<Row> rows;
  // kernel name -> [scratch total wall, cached total wall]
  struct Aggregate {
    double wall[2] = {0.0, 0.0};
  };
  std::vector<std::pair<std::string, Aggregate>> totals = {
      {"bootstrap", {}}, {"gain-query", {}}, {"move-update", {}},
      {"end-to-end", {}}};
  const auto add_total = [&](const std::string& kernel, int engine_idx,
                             double wall) {
    for (auto& [name, agg] : totals) {
      if (name == kernel) agg.wall[engine_idx] += wall;
    }
  };

  for (const auto& name : circuits) {
    const prop::Hypergraph g = prop::make_mcnc_circuit(name);
    const prop::BalanceConstraint balance =
        prop::BalanceConstraint::forty_five(g);
    prop::Rng init_rng(prop::mix_seed(seed, 41));
    const std::vector<std::uint8_t> sides =
        prop::random_balanced_sides(g, balance, init_rng);

    const struct Kernel {
      const char* kernel;
      std::uint64_t ops;
    } kernels[4] = {{"bootstrap", static_cast<std::uint64_t>(reps)},
                    {"gain-query", queries},
                    {"move-update", static_cast<std::uint64_t>(reps)},
                    {"end-to-end", static_cast<std::uint64_t>(runs)}};

    for (const Kernel& k : kernels) {
      double scratch_wall = 0.0;
      for (int e = 0; e < 2; ++e) {
        const GainEngine engine = engines[e];
        const auto measure = [&]() -> Timed {
          if (std::strcmp(k.kernel, "bootstrap") == 0) {
            prop::Partition part(g, sides);
            return run_bootstrap(g, part, engine, reps, name.c_str());
          }
          if (std::strcmp(k.kernel, "gain-query") == 0) {
            prop::Partition part(g, sides);
            return run_gain_query(g, part, engine, queries, seed,
                                  name.c_str());
          }
          if (std::strcmp(k.kernel, "move-update") == 0) {
            return run_move_update(g, sides, balance, engine, reps,
                                   name.c_str());
          }
          return run_end_to_end(g, balance, engine, runs, seed, threads);
        };
        // Min-of-K: wall time on a shared host is one-sided noise (cache
        // evictions, scheduler preemption only ever slow a run down), so
        // the minimum is the stable estimator the regression gate needs.
        Timed t = measure();
        for (int m = 1; m < min_of; ++m) {
          const Timed s = measure();
          if (s.wall < t.wall) t = s;
        }

        Row row;
        row.kernel = k.kernel;
        row.circuit = name;
        row.engine = prop::to_string(engine);
        row.ops = k.ops;
        row.wall_seconds = t.wall;
        row.cpu_seconds = t.cpu;
        if (e == 0) {
          scratch_wall = t.wall;
        } else if (t.wall > 0.0) {
          row.speedup_vs_scratch = scratch_wall / t.wall;
        }
        rows.push_back(row);
        add_total(k.kernel, e, t.wall);

        if (e == 1) {
          std::printf("%-12s %-10s %-8s %12llu %12.4f %8.2fx\n", k.kernel,
                      name.c_str(), row.engine.c_str(),
                      static_cast<unsigned long long>(row.ops), t.wall,
                      row.speedup_vs_scratch);
        } else {
          std::printf("%-12s %-10s %-8s %12llu %12.4f %9s\n", k.kernel,
                      name.c_str(), row.engine.c_str(),
                      static_cast<unsigned long long>(row.ops), t.wall, "-");
        }
      }
    }
  }

  // Active-sweep section: full vs dirty sweeps on the scaled synthetic
  // instances (cached engine only — the active set is a cached-engine
  // feature).  The "engine" column carries the sweep mode; the dirty row's
  // speedup field is full wall / dirty wall.
  for (const char* name : {"synth1000", "synth10000"}) {
    const long long nodes = std::atoll(name + 5);
    const prop::Hypergraph g = prop::generate_circuit(
        prop::scaled_spec(name, static_cast<prop::NodeId>(nodes)),
        prop::kSuiteSeed);
    const prop::BalanceConstraint balance =
        prop::BalanceConstraint::forty_five(g);
    prop::Rng init_rng(prop::mix_seed(seed, 41));
    const std::vector<std::uint8_t> sides =
        prop::random_balanced_sides(g, balance, init_rng);

    double full_wall = 0.0;
    for (const bool dirty_sweep : {false, true}) {
      Timed t = run_active_sweep(g, sides, dirty_sweep, reps, seed, name);
      for (int m = 1; m < min_of; ++m) {
        const Timed s = run_active_sweep(g, sides, dirty_sweep, reps, seed,
                                         name);
        if (s.wall < t.wall) t = s;
      }
      Row row;
      row.kernel = "active-sweep";
      row.circuit = name;
      row.engine = dirty_sweep ? "dirty" : "full";
      row.ops = static_cast<std::uint64_t>(reps);
      row.wall_seconds = t.wall;
      row.cpu_seconds = t.cpu;
      if (!dirty_sweep) {
        full_wall = t.wall;
        std::printf("%-12s %-10s %-8s %12llu %12.4f %9s\n", "active-sweep",
                    name, "full", static_cast<unsigned long long>(row.ops),
                    t.wall, "-");
      } else {
        if (t.wall > 0.0) row.speedup_vs_scratch = full_wall / t.wall;
        std::printf("%-12s %-10s %-8s %12llu %12.4f %8.2fx\n", "active-sweep",
                    name, "dirty", static_cast<unsigned long long>(row.ops),
                    t.wall, row.speedup_vs_scratch);
      }
      rows.push_back(row);
    }
  }

  prop::bench::print_rule(68);
  std::printf("\naggregate cached speedup (total scratch wall / total cached "
              "wall):\n");
  for (const auto& [kernel, agg] : totals) {
    const double speedup =
        agg.wall[1] > 0.0 ? agg.wall[0] / agg.wall[1] : 0.0;
    std::printf("  %-12s %6.2fx  (scratch %8.3fs, cached %8.3fs)\n",
                kernel.c_str(), speedup, agg.wall[0], agg.wall[1]);
  }

  // JSON out, one row per line (the baseline reader depends on that).
  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  f << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  {\"kernel\": \"%s\", \"circuit\": \"%s\", "
                  "\"engine\": \"%s\", \"ops\": %llu, "
                  "\"wall_seconds\": %.6f, \"cpu_seconds\": %.6f, "
                  "\"speedup_vs_scratch\": %.3f}%s\n",
                  r.kernel.c_str(), r.circuit.c_str(), r.engine.c_str(),
                  static_cast<unsigned long long>(r.ops), r.wall_seconds,
                  r.cpu_seconds, r.speedup_vs_scratch,
                  i + 1 < rows.size() ? "," : "");
    f << buf;
  }
  f << "]\n";
  f.close();
  std::printf("\nwrote %s  (sink %.3g)\n", out_path.c_str(), g_sink);

  int exit_code = 0;
  if (g_alloc_failure) {
    std::fprintf(stderr,
                 "error: steady-state kernel regions performed heap "
                 "allocations\n");
    exit_code = 6;
  }
  if (g_identity_failure) {
    std::fprintf(stderr,
                 "error: active-set sweep gains diverged from a fresh "
                 "recompute\n");
    exit_code = 7;
  }

  // Perf-regression gate: compare wall seconds cell-by-cell against the
  // committed baseline.  Cells below the absolute floor are skipped — they
  // time in the noise band of the host.
  if (!baseline_path.empty()) {
    constexpr double kAbsFloorSeconds = 0.005;
    const std::vector<Row> baseline = load_baseline(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "error: baseline %s is empty or unreadable\n",
                   baseline_path.c_str());
      return 4;
    }
    int compared = 0;
    bool regressed = false;
    for (const Row& cur : rows) {
      for (const Row& base : baseline) {
        if (base.kernel != cur.kernel || base.circuit != cur.circuit ||
            base.engine != cur.engine || base.ops != cur.ops) {
          continue;
        }
        ++compared;
        const double limit =
            base.wall_seconds * (1.0 + max_regress) + kAbsFloorSeconds;
        if (cur.wall_seconds > limit &&
            cur.wall_seconds > kAbsFloorSeconds * 2) {
          regressed = true;
          std::fprintf(stderr,
                       "PERF REGRESSION: %s/%s/%s wall %.4fs vs baseline "
                       "%.4fs (limit %.4fs)\n",
                       cur.kernel.c_str(), cur.circuit.c_str(),
                       cur.engine.c_str(), cur.wall_seconds,
                       base.wall_seconds, limit);
        }
      }
    }
    std::printf("baseline %s: compared %d cells, max allowed regression "
                "%.0f%%\n",
                baseline_path.c_str(), compared, max_regress * 100.0);
    if (compared == 0) {
      std::fprintf(stderr,
                   "error: no baseline cells matched this configuration\n");
      return 4;
    }
    if (regressed) {
      std::fprintf(stderr, "error: perf regression vs %s\n",
                   baseline_path.c_str());
      return 4;
    }
    std::printf("no perf regression vs baseline\n");
  }

  // Headline speedup contract (in-binary; the vs-seed end-to-end claim is
  // documented in EXPERIMENTS.md and cannot be asserted from one binary).
  if (assert_speedup) {
    const struct {
      const char* kernel;
      double floor;
    } gates[] = {{"gain-query", 3.0}, {"end-to-end", 1.3}};
    for (const auto& gate : gates) {
      for (const auto& [kernel, agg] : totals) {
        if (kernel != gate.kernel) continue;
        const double speedup =
            agg.wall[1] > 0.0 ? agg.wall[0] / agg.wall[1] : 0.0;
        if (speedup < gate.floor) {
          std::fprintf(stderr,
                       "SPEEDUP VIOLATION: %s aggregate %.2fx < required "
                       "%.2fx\n",
                       gate.kernel, speedup, gate.floor);
          exit_code = 5;
        }
      }
    }
    if (exit_code != 5) std::printf("speedup contract satisfied\n");
  }
  return exit_code;
}
