// Table 3 reproduction: cutset sizes under the 45-55% balance criterion —
// PROP (20 runs) against the clustering/spectral/analytic state of the art
// (MELO, PARABOLI, EIG1), with the paper's improvement percentages.
//
// Flags: --fast, --circuit NAME, --runs-scale, --seed.
#include <cstdio>

#include "bench_common.h"
#include "core/prop_partitioner.h"
#include "hypergraph/mcnc_suite.h"
#include "partition/runner.h"
#include "placement/paraboli.h"
#include "spectral/eig1.h"
#include "spectral/melo.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::bench::check_flags(
          args, {"fast", "circuit", "runs-scale", "seed", "threads"},
          "[--fast] [--circuit NAME] [--runs-scale S] [--seed N] [--threads N]\n"
          "          [--time-budget-ms N] [--on-timeout=best|fail] "
          "[--inject=SPEC] [--inject-seed N]")) {
    return 2;
  }
  prop::RuntimeSession session(args);
  prop::RunnerOptions options;
  options.context = session.context();
  options.threads = prop::bench::thread_count(args);
  prop::bench::OutcomeTracker tracker;
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const int prop_runs = prop::bench::scaled_runs(args, 20);

  std::printf("Table 3: cutset sizes, 45-55%% balance "
              "(MELO, PARABOLI, EIG1 one-shot; PROP x%d)\n\n",
              prop_runs);
  std::printf("%-10s %8s %9s %8s %8s | %8s %9s %8s\n", "circuit", "MELO",
              "PARABOLI", "EIG1", "PROP", "%MELO", "%PARA", "%EIG1");
  prop::bench::print_rule(92);

  double tot_melo = 0, tot_para = 0, tot_eig = 0, tot_prop = 0;
  for (const auto& name : prop::bench::circuit_names(args)) {
    const prop::Hypergraph g = prop::make_mcnc_circuit(name);
    const prop::BalanceConstraint balance =
        prop::BalanceConstraint::forty_five(g);

    prop::MeloPartitioner melo;
    prop::ParaboliPartitioner paraboli;
    prop::Eig1Partitioner eig1;
    prop::PropPartitioner prop_algo;
    if (session.context()) {
      melo.attach_context(session.context());
      paraboli.attach_context(session.context());
      eig1.attach_context(session.context());
    }

    const double melo_cut = melo.run(g, balance, prop::mix_seed(seed, 10)).cut_cost;
    const double para_cut =
        paraboli.run(g, balance, prop::mix_seed(seed, 11)).cut_cost;
    const double eig_cut = eig1.run(g, balance, prop::mix_seed(seed, 12)).cut_cost;
    const prop::MultiRunResult prop_sweep = prop::run_many(
        prop_algo, g, balance, prop_runs, prop::mix_seed(seed, 13), options);
    tracker.observe(prop_sweep);
    const double prop_cut = prop_sweep.best_cut();

    tot_melo += melo_cut;
    tot_para += para_cut;
    tot_eig += eig_cut;
    tot_prop += prop_cut;

    std::printf("%-10s %8.0f %9.0f %8.0f %8.0f | %8.1f %9.1f %8.1f\n",
                name.c_str(), melo_cut, para_cut, eig_cut, prop_cut,
                prop::bench::improvement_pct(prop_cut, melo_cut),
                prop::bench::improvement_pct(prop_cut, para_cut),
                prop::bench::improvement_pct(prop_cut, eig_cut));
  }
  prop::bench::print_rule(92);
  std::printf("%-10s %8.0f %9.0f %8.0f %8.0f | %8.1f %9.1f %8.1f\n", "Total",
              tot_melo, tot_para, tot_eig, tot_prop,
              prop::bench::improvement_pct(tot_prop, tot_melo),
              prop::bench::improvement_pct(tot_prop, tot_para),
              prop::bench::improvement_pct(tot_prop, tot_eig));
  std::printf("\n(paper: PROP 19.9%% over MELO, 15.0%% over PARABOLI, 57.1%% "
              "over EIG1)\n");
  return tracker.finish(session);
}
