// Chaos-soak harness for the partitioning job server (DESIGN.md Sec. 4h).
//
// For each worker count the soak floods a fresh Server with a mixed-tenant
// job burst — MCNC circuits plus inline .hgr payloads, mixed priorities,
// tight deadlines on a slice of the jobs — while fault injection fails a
// percentage of attempts at validate/serve-exec/cancel sites and the burst
// deliberately overruns the admission queue so load shedding engages.
//
// Hard assertions (exit nonzero on any violation — this is the zero-deaths /
// zero-lost / zero-duplicates gate wired into verify.sh):
//   * the server answers every submitted id exactly once,
//   * every shed response carries a structured shed_overload status,
//   * a no-shed determinism fleet returns byte-identical responses at every
//     worker count (timing fields disabled).
//
// Output schema (one object per worker count):
//   {"workers": W, "jobs": N, "wall_seconds": S, "jobs_per_sec": R,
//    "p50_ms": ..., "p99_ms": ..., "done": ..., "failed": ..., "shed": ...,
//    "retries": ..., "responses": ...}
//
// Flags: --jobs N (default 200), --workers-list 1,2,4, --queue-limit N
// (default 24), --inject SPEC, --seed N, --out FILE, --fast.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "service/json.h"
#include "service/server.h"
#include "util/cli.h"

namespace {

using Clock = std::chrono::steady_clock;

std::vector<int> parse_workers_list(const std::string& spec) {
  std::vector<int> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int w = std::atoi(item.c_str());
    if (w >= 1) out.push_back(w);
  }
  return out;
}

/// A tiny valid inline payload so the soak also exercises the untrusted
/// .hgr ingest path (8 nodes, 6 nets).
const char* kInlineHgr =
    "6 8\\n1 2\\n2 3 4\\n4 5\\n5 6 7\\n7 8\\n1 8 3\\n";

std::string job_line(int i, std::uint64_t seed, bool deterministic) {
  static const char* kAlgos[] = {"prop", "fm", "la2", "fm-tree"};
  static const char* kCircuits[] = {"balu", "struct", "bm1"};
  static const char* kTenants[] = {"alpha", "beta", "gamma"};
  std::ostringstream line;
  line << "{\"op\":\"submit\",\"id\":\"job" << i << "\",\"tenant\":\""
       << kTenants[i % 3] << "\",\"priority\":" << (i % 3)
       << ",\"algo\":\"" << kAlgos[i % 4] << "\"";
  if (i % 5 == 4) {
    line << ",\"hgr\":\"" << kInlineHgr << "\"";
  } else {
    line << ",\"circuit\":\"" << kCircuits[i % 3] << "\"";
  }
  // A slice of tight deadlines exercises the budget path under load; the
  // determinism fleet skips them (a deadline race would flip best-so-far).
  if (!deterministic && i % 11 == 10) line << ",\"deadline_ms\":1";
  line << ",\"runs\":" << (2 + i % 2) << ",\"seed\":" << (seed + i)
       << ",\"max_retries\":2,\"stats_timing\":false}";
  return line.str();
}

struct SoakResult {
  int workers = 0;
  int jobs = 0;
  double wall_seconds = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::uint64_t done = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed = 0;
  std::uint64_t retries = 0;
  std::uint64_t responses = 0;
  bool ok = true;
};

double percentile(std::vector<double> values, double p) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto rank = static_cast<std::size_t>(p * (values.size() - 1) + 0.5);
  return values[std::min(rank, values.size() - 1)];
}

SoakResult run_soak(int workers, int jobs, int queue_limit,
                    const std::string& inject, std::uint64_t seed) {
  SoakResult out;
  out.workers = workers;
  out.jobs = jobs;

  prop::service::ServerConfig config;
  config.workers = workers;
  config.queue_limit = queue_limit;
  config.inject = inject;
  config.inject_seed = seed;
  config.retry_backoff_ms = 0.1;
  config.retry_backoff_max_ms = 2.0;

  // The sink runs under the server's emit lock, so plain containers are safe.
  std::vector<std::pair<std::string, Clock::time_point>> arrivals;
  arrivals.reserve(static_cast<std::size_t>(jobs));
  prop::service::Server server(config, [&](const std::string& line) {
    arrivals.emplace_back(line, Clock::now());
  });

  // Phase 1 — burst: 3x the admission limit submitted back-to-back, which
  // is guaranteed to overrun the queue and engage the shedder.  Phase 2 —
  // paced: the client backs off while the queue is saturated, so the
  // remaining jobs actually execute and the latency percentiles measure
  // real work, not shed round-trips.
  const int burst = std::min(jobs, 3 * queue_limit);
  std::vector<Clock::time_point> submit_at(static_cast<std::size_t>(jobs));
  const Clock::time_point start = Clock::now();
  for (int i = 0; i < jobs; ++i) {
    if (i >= burst) {
      while (server.queue_depth() >=
             static_cast<std::size_t>(queue_limit) / 2 + 1) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    submit_at[static_cast<std::size_t>(i)] = Clock::now();
    if (!server.handle_line(job_line(i, seed, /*deterministic=*/false))) {
      std::fprintf(stderr, "FATAL: server stopped mid-soak\n");
      out.ok = false;
      return out;
    }
  }
  server.drain();
  out.wall_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();

  // Exactly-once audit: each submitted id answered exactly once, sheds
  // carrying a structured status.
  std::map<std::string, int> seen;
  std::vector<double> completed_latency_ms;
  for (const auto& [line, when] : arrivals) {
    std::string error;
    const auto v = prop::service::json_parse(line, &error);
    if (!v) {
      std::fprintf(stderr, "FATAL: unparseable response (%s): %s\n",
                   error.c_str(), line.c_str());
      out.ok = false;
      continue;
    }
    const auto* id = v->find("id");
    const auto* state = v->find("state");
    if (!id || !state) {
      std::fprintf(stderr, "FATAL: response missing id/state: %s\n",
                   line.c_str());
      out.ok = false;
      continue;
    }
    ++seen[id->as_string()];
    const std::string state_name = state->as_string();
    if (state_name == "shed") {
      const auto* status = v->find("status");
      const auto* code = status ? status->find("code") : nullptr;
      if (!code || code->as_string() != "shed_overload") {
        std::fprintf(stderr, "FATAL: shed without structured status: %s\n",
                     line.c_str());
        out.ok = false;
      }
    } else if (state_name == "done" || state_name == "failed") {
      const int index = std::atoi(id->as_string().c_str() + 3);
      if (index >= 0 && index < jobs) {
        completed_latency_ms.push_back(
            std::chrono::duration<double, std::milli>(
                when - submit_at[static_cast<std::size_t>(index)])
                .count());
      }
    } else {
      std::fprintf(stderr, "FATAL: unexpected job state '%s': %s\n",
                   state_name.c_str(), line.c_str());
      out.ok = false;
    }
  }
  for (int i = 0; i < jobs; ++i) {
    const auto it = seen.find("job" + std::to_string(i));
    const int count = it == seen.end() ? 0 : it->second;
    if (count != 1) {
      std::fprintf(stderr, "FATAL: job%d answered %d times (want 1)\n", i,
                   count);
      out.ok = false;
    }
  }

  out.p50_ms = percentile(completed_latency_ms, 0.50);
  out.p99_ms = percentile(completed_latency_ms, 0.99);
  const prop::service::ServerStats stats = server.stats();
  out.done = stats.done;
  out.failed = stats.failed;
  out.shed = stats.shed;
  out.retries = stats.retries;
  out.responses = stats.responses;
  if (stats.responses != static_cast<std::uint64_t>(jobs)) {
    std::fprintf(stderr, "FATAL: %llu responses for %d jobs\n",
                 static_cast<unsigned long long>(stats.responses), jobs);
    out.ok = false;
  }
  return out;
}

/// The load-independence gate: a no-shed fleet must return byte-identical
/// responses at every worker count (chaos still armed — retries included).
bool check_determinism(const std::vector<int>& workers_list, int jobs,
                       const std::string& inject, std::uint64_t seed) {
  std::map<std::string, std::string> reference;
  for (const int workers : workers_list) {
    prop::service::ServerConfig config;
    config.workers = workers;
    config.queue_limit = jobs;  // nothing sheds
    config.inject = inject;
    config.inject_seed = seed;
    config.retry_backoff_ms = 0.0;

    std::vector<std::string> lines;
    prop::service::Server server(
        config, [&](const std::string& line) { lines.push_back(line); });
    for (int i = 0; i < jobs; ++i) {
      if (!server.handle_line(job_line(i, seed, /*deterministic=*/true))) {
        std::fprintf(stderr, "FATAL: server stopped mid-fleet\n");
        return false;
      }
    }
    server.drain();

    std::map<std::string, std::string> by_id;
    for (const std::string& line : lines) {
      const auto v = prop::service::json_parse(line);
      if (!v || !v->find("id")) return false;
      by_id[v->find("id")->as_string()] = line;
    }
    if (reference.empty()) {
      reference = std::move(by_id);
    } else if (by_id != reference) {
      std::fprintf(stderr,
                   "DETERMINISM VIOLATION: workers=%d diverges from "
                   "workers=%d\n",
                   workers, workers_list.front());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::bench::check_flags(
          args,
          {"jobs", "workers-list", "queue-limit", "inject", "seed", "out",
           "fast"},
          "[--jobs N] [--workers-list 1,2,4] [--queue-limit N] "
          "[--inject SPEC] [--seed N] [--out FILE] [--fast]")) {
    return 2;
  }
  const bool fast = args.get_bool_or("fast", false);
  const int jobs = static_cast<int>(args.get_int_or("jobs", fast ? 60 : 200));
  const int queue_limit =
      static_cast<int>(args.get_int_or("queue-limit", 24));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const std::vector<int> workers_list =
      parse_workers_list(args.get_or("workers-list", "1,2,4"));
  const std::string inject = args.get_or(
      "inject", "validate-fail~0.02,serve-exec~0.01,cancel-mid-pass~0.01");
  const std::string out_path =
      args.get_or("out", "BENCH_service_throughput.json");
  if (workers_list.empty() || jobs < 1 || queue_limit < 1) {
    std::fprintf(stderr, "error: bad --workers-list/--jobs/--queue-limit\n");
    return 2;
  }

  std::printf(
      "service chaos soak: %d jobs per sweep, queue limit %d, inject "
      "\"%s\"\n\n",
      jobs, queue_limit, inject.c_str());
  std::printf("%7s %6s %10s %10s %9s %9s %6s %6s %6s %8s\n", "workers",
              "jobs", "wall (s)", "jobs/sec", "p50 (ms)", "p99 (ms)", "done",
              "fail", "shed", "retries");
  prop::bench::print_rule(88);

  std::vector<SoakResult> results;
  bool all_ok = true;
  for (const int workers : workers_list) {
    const SoakResult r = run_soak(workers, jobs, queue_limit, inject, seed);
    all_ok = all_ok && r.ok;
    std::printf("%7d %6d %10.3f %10.1f %9.2f %9.2f %6llu %6llu %6llu %8llu\n",
                r.workers, r.jobs, r.wall_seconds,
                r.wall_seconds > 0.0 ? r.jobs / r.wall_seconds : 0.0, r.p50_ms,
                r.p99_ms, static_cast<unsigned long long>(r.done),
                static_cast<unsigned long long>(r.failed),
                static_cast<unsigned long long>(r.shed),
                static_cast<unsigned long long>(r.retries));
    results.push_back(r);
  }

  // The soak must actually have engaged the shedder: a soak that never
  // overloads proves nothing about admission control.
  const bool any_shed =
      std::any_of(results.begin(), results.end(),
                  [](const SoakResult& r) { return r.shed > 0; });
  if (!any_shed) {
    std::fprintf(stderr,
                 "error: no sweep shed any job — raise --jobs or lower "
                 "--queue-limit\n");
    all_ok = false;
  }

  std::printf("\nchecking byte-determinism across worker counts...\n");
  const bool deterministic =
      check_determinism(workers_list, fast ? 12 : 24, inject, seed);

  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  f << "[\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const SoakResult& r = results[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"workers\": %d, \"jobs\": %d, \"wall_seconds\": %.6f, "
        "\"jobs_per_sec\": %.3f, \"p50_ms\": %.3f, \"p99_ms\": %.3f, "
        "\"done\": %llu, \"failed\": %llu, \"shed\": %llu, "
        "\"retries\": %llu, \"responses\": %llu}%s\n",
        r.workers, r.jobs, r.wall_seconds,
        r.wall_seconds > 0.0 ? r.jobs / r.wall_seconds : 0.0, r.p50_ms,
        r.p99_ms, static_cast<unsigned long long>(r.done),
        static_cast<unsigned long long>(r.failed),
        static_cast<unsigned long long>(r.shed),
        static_cast<unsigned long long>(r.retries),
        static_cast<unsigned long long>(r.responses),
        i + 1 < results.size() ? "," : "");
    f << buf;
  }
  f << "]\n";
  std::printf("wrote %s\n", out_path.c_str());

  if (!all_ok || !deterministic) {
    std::fprintf(stderr, "error: chaos soak failed its invariants\n");
    return 1;
  }
  std::printf(
      "soak passed: zero lost, zero duplicated, all sheds structured, "
      "responses byte-identical across worker counts\n");
  return 0;
}
