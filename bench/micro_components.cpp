// google-benchmark micro suite: the container and kernel costs behind the
// complexity analysis of paper Sec. 3.5 (bucket vs AVL operations, gain
// recomputation, incremental cut maintenance, Lanczos/CG steps, circuit
// generation).
#include <benchmark/benchmark.h>

#include <vector>

#include "core/prob_gain.h"
#include "datastruct/avl_tree.h"
#include "datastruct/bucket_list.h"
#include "fm/fm_gains.h"
#include "hypergraph/generator.h"
#include "hypergraph/mcnc_suite.h"
#include "linalg/cg.h"
#include "linalg/lanczos.h"
#include "partition/partition.h"
#include "spectral/laplacian.h"
#include "util/rng.h"

namespace {

prop::Hypergraph bench_circuit() {
  static prop::Hypergraph g = prop::make_mcnc_circuit("struct");
  return g;
}

prop::Partition bench_partition(const prop::Hypergraph& g) {
  std::vector<std::uint8_t> sides(g.num_nodes());
  prop::Rng rng(5);
  for (auto& s : sides) s = rng.chance(0.5) ? 1 : 0;
  return prop::Partition(g, sides);
}

void BM_BucketListUpdate(benchmark::State& state) {
  const auto n = static_cast<prop::BucketList::Handle>(state.range(0));
  prop::BucketList bucket(n, 64);
  prop::Rng rng(1);
  for (prop::BucketList::Handle h = 0; h < n; ++h) {
    bucket.insert(h, static_cast<int>(rng.range(-64, 64)));
  }
  for (auto _ : state) {
    const auto h = static_cast<prop::BucketList::Handle>(rng.bounded(n));
    bucket.update(h, static_cast<int>(rng.range(-64, 64)));
    benchmark::DoNotOptimize(bucket.best());
  }
}
BENCHMARK(BM_BucketListUpdate)->Arg(1 << 10)->Arg(1 << 14);

void BM_AvlTreeUpdate(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  prop::AvlTree<double> tree(n);
  prop::Rng rng(2);
  for (std::uint32_t h = 0; h < n; ++h) tree.insert(h, rng.uniform());
  for (auto _ : state) {
    const auto h = static_cast<std::uint32_t>(rng.bounded(n));
    tree.update(h, rng.uniform());
    benchmark::DoNotOptimize(tree.max());
  }
}
BENCHMARK(BM_AvlTreeUpdate)->Arg(1 << 10)->Arg(1 << 14);

void BM_FmGainRecompute(benchmark::State& state) {
  const prop::Hypergraph g = bench_circuit();
  const prop::Partition part = bench_partition(g);
  prop::Rng rng(3);
  for (auto _ : state) {
    const auto u = static_cast<prop::NodeId>(rng.bounded(g.num_nodes()));
    benchmark::DoNotOptimize(prop::fm_gain(part, u));
  }
}
BENCHMARK(BM_FmGainRecompute);

void BM_ProbGainRecompute(benchmark::State& state) {
  const prop::Hypergraph g = bench_circuit();
  const prop::Partition part = bench_partition(g);
  prop::ProbGainCalculator calc(part);
  for (prop::NodeId u = 0; u < g.num_nodes(); ++u) calc.set_probability(u, 0.9);
  prop::Rng rng(4);
  for (auto _ : state) {
    const auto u = static_cast<prop::NodeId>(rng.bounded(g.num_nodes()));
    benchmark::DoNotOptimize(calc.gain(u));
  }
}
BENCHMARK(BM_ProbGainRecompute);

void BM_PartitionMove(benchmark::State& state) {
  const prop::Hypergraph g = bench_circuit();
  prop::Partition part = bench_partition(g);
  prop::Rng rng(6);
  for (auto _ : state) {
    part.move(static_cast<prop::NodeId>(rng.bounded(g.num_nodes())));
    benchmark::DoNotOptimize(part.cut_cost());
  }
}
BENCHMARK(BM_PartitionMove);

void BM_GenerateCircuit(benchmark::State& state) {
  const prop::CircuitSpec spec{"bench", 2000, 2400, 8000};
  std::uint64_t seed = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop::generate_circuit(spec, ++seed));
  }
}
BENCHMARK(BM_GenerateCircuit);

void BM_LaplacianBuild(benchmark::State& state) {
  const prop::Hypergraph g = bench_circuit();
  for (auto _ : state) {
    benchmark::DoNotOptimize(prop::clique_laplacian(g));
  }
}
BENCHMARK(BM_LaplacianBuild);

void BM_LanczosFiedler(benchmark::State& state) {
  const prop::Hypergraph g = bench_circuit();
  const prop::CsrMatrix laplacian = prop::clique_laplacian(g);
  prop::LanczosOptions options;
  options.max_iterations = 60;
  for (auto _ : state) {
    prop::Rng rng(7);
    benchmark::DoNotOptimize(
        prop::smallest_eigenpairs(laplacian, 1, rng, options));
  }
}
BENCHMARK(BM_LanczosFiedler);

void BM_CgSolve(benchmark::State& state) {
  const prop::Hypergraph g = bench_circuit();
  prop::CsrMatrix laplacian = prop::clique_laplacian(g);
  // Regularized system (L + I) x = b: SPD.
  std::vector<prop::Triplet> t;
  for (std::uint32_t r = 0; r < laplacian.size(); ++r) {
    const auto cols = laplacian.row_cols(r);
    const auto vals = laplacian.row_values(r);
    for (std::size_t i = 0; i < cols.size(); ++i) t.push_back({r, cols[i], vals[i]});
    t.push_back({r, r, 1.0});
  }
  const prop::CsrMatrix a = prop::CsrMatrix::from_triplets(laplacian.size(), t);
  std::vector<double> b(a.size(), 1.0);
  for (auto _ : state) {
    std::vector<double> x(a.size(), 0.0);
    benchmark::DoNotOptimize(prop::conjugate_gradient(a, b, x));
  }
}
BENCHMARK(BM_CgSolve);

}  // namespace
