// Shared helpers for the table-reproduction harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "hypergraph/mcnc_suite.h"
#include "partition/runner.h"
#include "runtime/runtime_cli.h"
#include "util/cli.h"
#include "util/rng.h"

namespace prop::bench {

/// Unknown-flag gate shared by every bench binary: the bench's own flags
/// plus the uniform runtime flags (--time-budget-ms etc.).  Returns false
/// (after printing the usage line) when an unrecognized flag was passed.
/// Thin alias of the shared prop::check_flags (runtime/runtime_cli.h) so
/// benches, prop_cli and prop_serve reject malformed input identically.
inline bool check_flags(const CliArgs& args, std::vector<std::string> known,
                        const std::string& usage) {
  return prop::check_flags(args, std::move(known), usage);
}

/// Collects the first non-ok multi-run status so a bench can finish its
/// table and still report (and exit on) an exhausted budget at the end.
class OutcomeTracker {
 public:
  void observe(const MultiRunResult& r) {
    if (status_.ok() && !r.status.ok()) status_ = r.status;
  }

  /// Prints degradations / the early-stop outcome; returns the process exit
  /// code (nonzero only under --on-timeout=fail).
  int finish(const RuntimeSession& session) const {
    const std::string notes = describe_degradations(session.degradations());
    if (!notes.empty()) std::fputs(notes.c_str(), stderr);
    if (!status_.ok()) {
      std::printf("outcome: %s\n", status_.describe().c_str());
      if (session.fail_on_timeout()) return 3;
    }
    return 0;
  }

 private:
  Status status_;
};

/// Paper-style improvement percentage: (cut improvement / larger cutset) * 100.
inline double improvement_pct(double ours, double theirs) {
  const double larger = ours > theirs ? ours : theirs;
  if (larger <= 0.0) return 0.0;
  return (theirs - ours) / larger * 100.0;
}

/// Circuit subset selection: full Table 1 suite by default; --fast keeps a
/// representative 4-circuit subset; --circuit NAME picks one.
inline std::vector<std::string> circuit_names(const CliArgs& args) {
  if (const auto one = args.get("circuit")) return {*one};
  if (args.get_bool_or("fast", false)) {
    return {"balu", "struct", "t3", "p2"};
  }
  std::vector<std::string> names;
  for (const auto& spec : mcnc_specs()) names.push_back(spec.name);
  return names;
}

/// Worker-thread count for run_many: 0 (the default) keeps the legacy
/// sequential path; >= 1 selects the deterministic parallel dispatcher
/// (DESIGN.md Sec. 4e).  Results are identical either way — only wall
/// clock changes — so every table harness exposes the flag uniformly.
/// Delegates to the shared parser; a negative count exits like any other
/// malformed flag instead of being silently clamped.
inline int thread_count(const CliArgs& args) {
  const auto threads = parse_thread_count(args);
  if (!threads) std::exit(2);
  return *threads;
}

/// Scales a paper run count by --runs-scale (e.g. 0.2 for smoke runs).
inline int scaled_runs(const CliArgs& args, int paper_runs) {
  const double scale = args.get_double_or("runs-scale", 1.0);
  const int runs = static_cast<int>(paper_runs * scale + 0.5);
  return runs < 1 ? 1 : runs;
}

inline void print_rule(int width) {
  for (int i = 0; i < width; ++i) std::fputc('-', stdout);
  std::fputc('\n', stdout);
}

}  // namespace prop::bench
