// Table 1 reproduction: benchmark circuit characteristics.
//
// Generates every synthetic Table 1 stand-in and prints its node/net/pin
// counts next to the paper's, verifying the generator matches exactly, plus
// the derived statistics (p, q, d) the complexity analysis uses.
#include <cstdio>

#include "bench_common.h"
#include "hypergraph/mcnc_suite.h"
#include "hypergraph/stats.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::validate_flags(args, {"fast", "circuit", "seed"},
                            "[--fast] [--circuit NAME] [--seed N]")) {
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(
      args.get_int_or("seed", static_cast<std::int64_t>(prop::kSuiteSeed)));

  std::printf("Table 1: benchmark circuit characteristics (synthetic "
              "stand-ins, seed %llu)\n\n",
              static_cast<unsigned long long>(seed));
  std::printf("%-10s %8s %8s %8s %8s | %6s %6s %6s %6s\n", "circuit",
              "nodes", "nets", "pins", "match", "p", "q", "d", "qmax");
  prop::bench::print_rule(78);

  bool all_match = true;
  for (const auto& name : prop::bench::circuit_names(args)) {
    const prop::CircuitSpec& spec = prop::mcnc_spec(name);
    const prop::Hypergraph g = prop::make_mcnc_circuit(name, seed);
    const prop::HypergraphStats s = prop::compute_stats(g);
    const bool match = s.num_nodes == spec.num_nodes &&
                       s.num_nets == spec.num_nets && s.num_pins == spec.num_pins;
    all_match &= match;
    std::printf("%-10s %8zu %8zu %8zu %8s | %6.2f %6.2f %6.2f %6zu\n",
                name.c_str(), s.num_nodes, s.num_nets, s.num_pins,
                match ? "exact" : "MISMATCH", s.avg_degree, s.avg_net_size,
                s.avg_neighbors, s.max_net_size);
  }
  prop::bench::print_rule(78);
  std::printf("%s\n", all_match ? "all circuits match Table 1 exactly"
                                : "MISMATCH against Table 1");
  return all_match ? 0 : 1;
}
