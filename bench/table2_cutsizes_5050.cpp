// Table 2 reproduction: cutset sizes under the 50-50% balance criterion.
//
// Columns as in the paper: FM100, FM40, FM20 (best of 100/40/20 runs —
// computed from one 100-run sweep so FM20/FM40 are prefixes of FM100,
// mirroring "FM run on 20, 40 and 100 initial random partitions"), LA-2 and
// LA-3 (20 runs each), WINDOW (clustering + FM final phase), PROP
// (20 runs, paper parameters), then PROP's improvement percentages and the
// LA-2 x40 comparison quoted in the table caption.
//
// Flags: --fast (4 circuits), --circuit NAME, --runs-scale 0.2, --seed N.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "cluster/window.h"
#include "core/prop_partitioner.h"
#include "fm/fm_partitioner.h"
#include "hypergraph/mcnc_suite.h"
#include "la/la_partitioner.h"
#include "partition/runner.h"
#include "util/cli.h"

namespace {

double best_prefix(const std::vector<double>& cuts, std::size_t count) {
  double best = cuts.front();
  for (std::size_t i = 1; i < count && i < cuts.size(); ++i) {
    best = std::min(best, cuts[i]);
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::bench::check_flags(
          args, {"fast", "circuit", "runs-scale", "seed", "threads"},
          "[--fast] [--circuit NAME] [--runs-scale S] [--seed N] [--threads N]\n"
          "          [--time-budget-ms N] [--on-timeout=best|fail] "
          "[--inject=SPEC] [--inject-seed N]")) {
    return 2;
  }
  prop::RuntimeSession session(args);
  prop::RunnerOptions options;
  options.context = session.context();
  options.threads = prop::bench::thread_count(args);
  prop::bench::OutcomeTracker tracker;
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const int fm_runs = prop::bench::scaled_runs(args, 100);
  const int la_runs = prop::bench::scaled_runs(args, 20);
  const int la2x_runs = prop::bench::scaled_runs(args, 40);
  const int prop_runs = prop::bench::scaled_runs(args, 20);

  std::printf("Table 2: cutset sizes, 50-50%% balance "
              "(FM%d/%d/%d, LA-2/LA-3 x%d, WINDOW, PROP x%d)\n\n",
              fm_runs, std::max(fm_runs * 2 / 5, 1), std::max(fm_runs / 5, 1),
              la_runs, prop_runs);
  std::printf("%-10s %7s %7s %7s %7s %7s %7s %7s | %7s %7s %7s\n", "circuit",
              "FM100", "FM40", "FM20", "LA-2", "LA-3", "WINDOW", "PROP",
              "%FM100", "%LA-2", "%WIN");
  prop::bench::print_rule(110);

  double tot_fm100 = 0, tot_fm40 = 0, tot_fm20 = 0, tot_la2 = 0, tot_la3 = 0,
         tot_win = 0, tot_prop = 0, tot_la2x40 = 0;

  for (const auto& name : prop::bench::circuit_names(args)) {
    const prop::Hypergraph g = prop::make_mcnc_circuit(name);
    const prop::BalanceConstraint balance =
        prop::BalanceConstraint::fifty_fifty(g);

    prop::FmPartitioner fm;
    const prop::MultiRunResult fm_sweep =
        prop::run_many(fm, g, balance, fm_runs, prop::mix_seed(seed, 0), options);
    tracker.observe(fm_sweep);
    const double fm100 = best_prefix(fm_sweep.cuts, fm_sweep.cuts.size());
    const double fm40 = best_prefix(
        fm_sweep.cuts, std::max<std::size_t>(fm_sweep.cuts.size() * 2 / 5, 1));
    const double fm20 = best_prefix(
        fm_sweep.cuts, std::max<std::size_t>(fm_sweep.cuts.size() / 5, 1));

    prop::LaPartitioner la2({2});
    prop::LaPartitioner la3({3});
    const prop::MultiRunResult la2_sweep = prop::run_many(
        la2, g, balance, la2x_runs, prop::mix_seed(seed, 1), options);
    tracker.observe(la2_sweep);
    const double la2_cut = best_prefix(
        la2_sweep.cuts,
        std::min<std::size_t>(la2_sweep.cuts.size(),
                              static_cast<std::size_t>(la_runs)));
    const double la2x40_cut = best_prefix(la2_sweep.cuts, la2_sweep.cuts.size());
    const prop::MultiRunResult la3_sweep = prop::run_many(
        la3, g, balance, la_runs, prop::mix_seed(seed, 2), options);
    tracker.observe(la3_sweep);
    const double la3_cut = la3_sweep.best_cut();

    prop::WindowPartitioner window;
    if (session.context()) window.attach_context(session.context());
    const double win_cut =
        window.run(g, balance, prop::mix_seed(seed, 3)).cut_cost;

    prop::PropPartitioner prop_algo;
    const prop::MultiRunResult prop_sweep = prop::run_many(
        prop_algo, g, balance, prop_runs, prop::mix_seed(seed, 4), options);
    tracker.observe(prop_sweep);
    const double prop_cut = prop_sweep.best_cut();

    tot_fm100 += fm100;
    tot_fm40 += fm40;
    tot_fm20 += fm20;
    tot_la2 += la2_cut;
    tot_la2x40 += la2x40_cut;
    tot_la3 += la3_cut;
    tot_win += win_cut;
    tot_prop += prop_cut;

    std::printf("%-10s %7.0f %7.0f %7.0f %7.0f %7.0f %7.0f %7.0f | %7.1f %7.1f %7.1f\n",
                name.c_str(), fm100, fm40, fm20, la2_cut, la3_cut, win_cut,
                prop_cut, prop::bench::improvement_pct(prop_cut, fm100),
                prop::bench::improvement_pct(prop_cut, la2_cut),
                prop::bench::improvement_pct(prop_cut, win_cut));
  }

  prop::bench::print_rule(110);
  std::printf("%-10s %7.0f %7.0f %7.0f %7.0f %7.0f %7.0f %7.0f | %7.1f %7.1f %7.1f\n",
              "Total", tot_fm100, tot_fm40, tot_fm20, tot_la2, tot_la3,
              tot_win, tot_prop,
              prop::bench::improvement_pct(tot_prop, tot_fm100),
              prop::bench::improvement_pct(tot_prop, tot_la2),
              prop::bench::improvement_pct(tot_prop, tot_win));
  std::printf("\nPROP vs FM20: %.1f%%   PROP vs FM40: %.1f%%   "
              "PROP vs LA-3: %.1f%%   PROP vs LA-2(x%d): %.1f%%\n",
              prop::bench::improvement_pct(tot_prop, tot_fm20),
              prop::bench::improvement_pct(tot_prop, tot_fm40),
              prop::bench::improvement_pct(tot_prop, tot_la3), la2x_runs,
              prop::bench::improvement_pct(tot_prop, tot_la2x40));
  std::printf("(paper: PROP 30%% over FM20, 22.3%% over FM100, 27.3%% over "
              "LA-2, 16.6%% over LA-3, 25.9%% over WINDOW)\n");
  return tracker.finish(session);
}
