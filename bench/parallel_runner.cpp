// Thread-scaling harness for the deterministic parallel multi-start runner
// (DESIGN.md Sec. 4e).  Runs the same seeded multi-start sweep at each
// requested worker-thread count, asserts that every thread count reproduces
// the sequential results exactly (best cut, best seed, per-run cut vector),
// and writes the measurements to a JSON file for tracking.
//
// Output schema (one object per {circuit, algo, threads} cell):
//   {"circuit": ..., "algo": ..., "runs": N, "threads": T,
//    "wall_seconds": W, "cpu_seconds": C, "runs_per_sec": N/W,
//    "best_cut": B, "best_seed": S}
//
// Speedup is runs_per_sec relative to the threads=1 row.  On a single-core
// host all rows are flat (the pool adds only scheduling overhead); the
// determinism assertions are the part that must hold everywhere.
//
// Flags: --runs N (default 16), --seed N, --threads-list 1,2,4,8,
// --out FILE (default BENCH_parallel_runner.json), --fast.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/prop_partitioner.h"
#include "fm/fm_partitioner.h"
#include "hypergraph/generator.h"
#include "partition/runner.h"
#include "util/cli.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace {

std::vector<int> parse_threads_list(const std::string& spec) {
  std::vector<int> out;
  std::stringstream ss(spec);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const int t = std::atoi(item.c_str());
    if (t >= 1) out.push_back(t);
  }
  return out;
}

struct Cell {
  std::string circuit;
  std::string algo;
  int runs = 0;
  int threads = 0;
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  double runs_per_sec = 0.0;
  double best_cut = 0.0;
  std::uint64_t best_seed = 0;
};

}  // namespace

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::bench::check_flags(
          args, {"runs", "seed", "threads-list", "out", "fast"},
          "[--runs N] [--seed N] [--threads-list 1,2,4,8] [--out FILE] "
          "[--fast]")) {
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const int runs = static_cast<int>(args.get_int_or("runs", 16));
  const std::vector<int> thread_counts =
      parse_threads_list(args.get_or("threads-list", "1,2,4,8"));
  const std::string out_path = args.get_or("out", "BENCH_parallel_runner.json");
  if (thread_counts.empty()) {
    std::fprintf(stderr, "error: --threads-list has no usable entries\n");
    return 2;
  }

  struct Shape {
    const char* name;
    prop::NodeId nodes;
    prop::NetId nets;
    std::size_t pins;
  };
  std::vector<Shape> shapes = {{"g600", 600, 750, 2600},
                               {"g2000", 2000, 2600, 9000}};
  if (args.get_bool_or("fast", false)) shapes.resize(1);

  prop::FmPartitioner fm;
  prop::PropPartitioner prop_algo;
  std::vector<prop::Bipartitioner*> algos = {&fm, &prop_algo};

  std::printf("parallel multi-start scaling (%d runs per sweep; host has %d "
              "hardware threads)\n\n",
              runs, prop::ThreadPool::hardware_threads());
  std::printf("%-8s %-6s %8s %12s %12s %12s %9s %10s\n", "circuit", "algo",
              "threads", "wall (s)", "cpu (s)", "runs/sec", "speedup",
              "best cut");
  prop::bench::print_rule(86);

  std::vector<Cell> cells;
  bool determinism_ok = true;
  for (const auto& shape : shapes) {
    const prop::Hypergraph g = prop::generate_circuit(
        {shape.name, shape.nodes, shape.nets, shape.pins},
        prop::mix_seed(seed, 21));
    const prop::BalanceConstraint balance =
        prop::BalanceConstraint::forty_five(g);
    for (prop::Bipartitioner* algo : algos) {
      double base_rate = 0.0;
      std::vector<double> reference_cuts;
      std::uint64_t reference_best_seed = 0;
      for (const int threads : thread_counts) {
        prop::RunnerOptions options;
        options.threads = threads;
        prop::WallTimer wall;
        const prop::MultiRunResult r =
            prop::run_many(*algo, g, balance, runs, seed, options);
        const double wall_s = wall.seconds();

        if (reference_cuts.empty()) {
          reference_cuts = r.cuts;
          reference_best_seed = r.best_seed;
        } else if (r.cuts != reference_cuts ||
                   r.best_seed != reference_best_seed) {
          determinism_ok = false;
          std::fprintf(stderr,
                       "DETERMINISM VIOLATION: %s/%s threads=%d diverges "
                       "from threads=%d\n",
                       shape.name, algo->name().c_str(), threads,
                       thread_counts.front());
        }

        Cell cell;
        cell.circuit = shape.name;
        cell.algo = algo->name();
        cell.runs = runs;
        cell.threads = threads;
        cell.wall_seconds = wall_s;
        cell.cpu_seconds = r.total_cpu_seconds;
        cell.runs_per_sec = wall_s > 0.0 ? runs / wall_s : 0.0;
        cell.best_cut = r.best_cut();
        cell.best_seed = r.best_seed;
        cells.push_back(cell);

        if (threads == thread_counts.front()) base_rate = cell.runs_per_sec;
        const double speedup =
            base_rate > 0.0 ? cell.runs_per_sec / base_rate : 1.0;
        std::printf("%-8s %-6s %8d %12.4f %12.4f %12.2f %8.2fx %10.0f\n",
                    shape.name, algo->name().c_str(), threads,
                    cell.wall_seconds, cell.cpu_seconds, cell.runs_per_sec,
                    speedup, cell.best_cut);
      }
    }
  }

  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  f << "[\n";
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const Cell& c = cells[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  {\"circuit\": \"%s\", \"algo\": \"%s\", \"runs\": %d, "
                  "\"threads\": %d, \"wall_seconds\": %.6f, "
                  "\"cpu_seconds\": %.6f, \"runs_per_sec\": %.3f, "
                  "\"best_cut\": %.0f, \"best_seed\": %llu}%s\n",
                  c.circuit.c_str(), c.algo.c_str(), c.runs, c.threads,
                  c.wall_seconds, c.cpu_seconds, c.runs_per_sec, c.best_cut,
                  static_cast<unsigned long long>(c.best_seed),
                  i + 1 < cells.size() ? "," : "");
    f << buf;
  }
  f << "]\n";
  std::printf("\nwrote %s\n", out_path.c_str());

  if (!determinism_ok) {
    std::fprintf(stderr, "error: results differ across thread counts\n");
    return 1;
  }
  std::printf("all thread counts produced identical results\n");
  return 0;
}
