// Parallel round-engine benchmark and determinism gate (DESIGN §4i).
//
// For each circuit, times PROP end-to-end via run_many under:
//   * engine "seq":      pass_threads = 0, the classic sequential move loop
//                        (the quality/speed reference this PR must not touch);
//   * engine "round-N":  the deterministic round engine at pass_threads =
//                        1, 2 and 4 — same synchronous schedule, N-way
//                        intra-pass parallelism.
//
// Two contracts are enforced in-binary:
//   1. Determinism (exit 5): the round engine's best partition (sides +
//      cut) AND its full --stats-json document (timing excluded) must be
//      byte-identical across every measured pass_threads value.  This is
//      the "any N" clause of PropConfig::pass_threads made executable.
//   2. Perf regression (exit 4): with --baseline FILE, wall seconds are
//      compared cell-by-cell against the committed BENCH_parallel_pass.json
//      exactly like bench/gain_kernels — fail past --max-regress (default
//      0.25) beyond a 5 ms absolute floor.  scripts/verify.sh runs this
//      gate on every release verification.
//
// Every cell is measured --min-of K times (default 3, minimum wall kept):
// host noise is one-sided, the min is the estimator a 25% gate can sit on.
//
// Flags: --fast / --circuit NAME, --runs N, --seed N, --min-of K,
// --out FILE, --baseline FILE, --max-regress X.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/prop_partitioner.h"
#include "hypergraph/mcnc_suite.h"
#include "partition/runner.h"
#include "util/cli.h"
#include "util/timer.h"

namespace {

using prop::BalanceConstraint;
using prop::Hypergraph;
using prop::MultiRunResult;
using prop::PropConfig;
using prop::PropPartitioner;

struct Row {
  std::string kernel;
  std::string circuit;
  std::string engine;
  std::uint64_t ops = 0;  ///< runs measured
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  double cut = 0.0;  ///< best cut (identical across round-N rows by gate 1)
};

struct Measured {
  MultiRunResult result;
  std::string stats_json;  ///< timing-free document, the determinism witness
  double wall_seconds = 0.0;
};

Measured run_prop(const Hypergraph& g, const std::string& circuit,
                  const BalanceConstraint& balance, int pass_threads,
                  int runs, std::uint64_t seed, int min_of) {
  PropConfig config;
  config.pass_threads = pass_threads;
  PropPartitioner algo(config);
  prop::RunnerOptions options;
  options.collect_telemetry = true;

  Measured m;
  m.wall_seconds = 1e300;
  for (int rep = 0; rep < min_of; ++rep) {
    prop::WallTimer wall;
    MultiRunResult r = prop::run_many(algo, g, balance, runs, seed, options);
    const double elapsed = wall.seconds();
    if (elapsed < m.wall_seconds) m.wall_seconds = elapsed;
    if (rep == 0) {
      std::ostringstream json;
      prop::StatsJsonOptions json_options;
      json_options.include_timing = false;
      prop::write_stats_json(json, circuit, algo.name(), r, json_options);
      m.stats_json = json.str();
      m.result = std::move(r);
    }
  }
  return m;
}

// Line-oriented baseline reader; the JSON below keeps one row per line.
std::string extract_string(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\": \"";
  const auto at = line.find(pat);
  if (at == std::string::npos) return {};
  const auto start = at + pat.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return {};
  return line.substr(start, end - start);
}

double extract_double(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\": ";
  const auto at = line.find(pat);
  if (at == std::string::npos) return 0.0;
  return std::atof(line.c_str() + at + pat.size());
}

std::vector<Row> load_baseline(const std::string& path) {
  std::vector<Row> rows;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    if (line.find("\"kernel\"") == std::string::npos) continue;
    Row r;
    r.kernel = extract_string(line, "kernel");
    r.circuit = extract_string(line, "circuit");
    r.engine = extract_string(line, "engine");
    r.ops = static_cast<std::uint64_t>(extract_double(line, "ops"));
    r.wall_seconds = extract_double(line, "wall_seconds");
    rows.push_back(r);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::bench::check_flags(
          args,
          {"fast", "circuit", "runs", "seed", "min-of", "out", "baseline",
           "max-regress"},
          "[--fast] [--circuit NAME] [--runs N] [--seed N] [--min-of K]\n"
          "          [--out FILE] [--baseline FILE] [--max-regress X]")) {
    return 2;
  }
  // Default circuit set is deliberately small: the round engine trades CPU
  // for wall-clock scalability, so full-suite sweeps belong to the table
  // harnesses, not the perf gate.
  std::vector<std::string> circuits = {"balu", "struct"};
  if (const auto one = args.get("circuit")) circuits = {*one};
  if (args.get_bool_or("fast", false)) circuits = {"balu"};
  const int runs = static_cast<int>(args.get_int_or("runs", 3));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int_or("seed", 7));
  const int min_of = static_cast<int>(args.get_int_or("min-of", 3));
  const std::string out_path = args.get_or("out", "BENCH_parallel_pass.json");
  const std::string baseline_path = args.get_or("baseline", "");
  const double max_regress = args.get_double_or("max-regress", 0.25);
  const int thread_counts[] = {1, 2, 4};

  std::vector<Row> rows;
  bool diverged = false;
  std::printf("%-8s %-8s %10s %10s %8s\n", "circuit", "engine", "wall_s",
              "cpu_s", "cut");
  for (const std::string& name : circuits) {
    const Hypergraph g = prop::make_mcnc_circuit(name);
    const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);

    const Measured seq = run_prop(g, name, balance, 0, runs, seed, min_of);
    rows.push_back(Row{"end-to-end", name, "seq",
                       static_cast<std::uint64_t>(runs), seq.wall_seconds,
                       seq.result.total_cpu_seconds,
                       seq.result.best.cut_cost});
    std::printf("%-8s %-8s %10.4f %10.4f %8.0f\n", name.c_str(), "seq",
                seq.wall_seconds, seq.result.total_cpu_seconds,
                seq.result.best.cut_cost);

    const Measured* reference = nullptr;
    std::vector<Measured> measured;
    measured.reserve(3);
    for (const int threads : thread_counts) {
      measured.push_back(
          run_prop(g, name, balance, threads, runs, seed, min_of));
      const Measured& m = measured.back();
      const std::string engine = "round-" + std::to_string(threads);
      rows.push_back(Row{"end-to-end", name, engine,
                         static_cast<std::uint64_t>(runs), m.wall_seconds,
                         m.result.total_cpu_seconds, m.result.best.cut_cost});
      std::printf("%-8s %-8s %10.4f %10.4f %8.0f\n", name.c_str(),
                  engine.c_str(), m.wall_seconds, m.result.total_cpu_seconds,
                  m.result.best.cut_cost);
      if (reference == nullptr) {
        reference = &measured.front();
        continue;
      }
      // Determinism gate: identical best partition and identical
      // timing-free stats document, byte for byte, for every N.
      if (m.result.best.side != reference->result.best.side ||
          m.result.best.cut_cost != reference->result.best.cut_cost) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s pass_threads=%d best "
                     "partition differs from pass_threads=1\n",
                     name.c_str(), threads);
        diverged = true;
      }
      if (m.stats_json != reference->stats_json) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s pass_threads=%d stats-json "
                     "differs from pass_threads=1\n",
                     name.c_str(), threads);
        diverged = true;
      }
    }
  }

  // JSON out, one row per line (the baseline reader depends on that).
  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  f << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  {\"kernel\": \"%s\", \"circuit\": \"%s\", "
                  "\"engine\": \"%s\", \"ops\": %llu, "
                  "\"wall_seconds\": %.6f, \"cpu_seconds\": %.6f, "
                  "\"cut\": %.1f}%s\n",
                  r.kernel.c_str(), r.circuit.c_str(), r.engine.c_str(),
                  static_cast<unsigned long long>(r.ops), r.wall_seconds,
                  r.cpu_seconds, r.cut, i + 1 < rows.size() ? "," : "");
    f << buf;
  }
  f << "]\n";
  f.close();
  std::printf("\nwrote %s\n", out_path.c_str());

  if (diverged) {
    std::fprintf(stderr, "error: round engine output depends on thread "
                         "count\n");
    return 5;
  }

  if (!baseline_path.empty()) {
    constexpr double kAbsFloorSeconds = 0.005;
    const std::vector<Row> baseline = load_baseline(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "error: baseline %s is empty or unreadable\n",
                   baseline_path.c_str());
      return 4;
    }
    int compared = 0;
    bool regressed = false;
    for (const Row& cur : rows) {
      for (const Row& base : baseline) {
        if (base.kernel != cur.kernel || base.circuit != cur.circuit ||
            base.engine != cur.engine || base.ops != cur.ops) {
          continue;
        }
        ++compared;
        const double limit =
            base.wall_seconds * (1.0 + max_regress) + kAbsFloorSeconds;
        if (cur.wall_seconds > limit &&
            cur.wall_seconds > kAbsFloorSeconds * 2) {
          regressed = true;
          std::fprintf(stderr,
                       "PERF REGRESSION: %s/%s/%s wall %.4fs vs baseline "
                       "%.4fs (limit %.4fs)\n",
                       cur.kernel.c_str(), cur.circuit.c_str(),
                       cur.engine.c_str(), cur.wall_seconds,
                       base.wall_seconds, limit);
        }
      }
    }
    std::printf("baseline %s: compared %d cells, max allowed regression "
                "%.0f%%\n",
                baseline_path.c_str(), compared, max_regress * 100.0);
    if (compared == 0) {
      std::fprintf(stderr,
                   "error: no baseline cells matched this configuration\n");
      return 4;
    }
    if (regressed) {
      std::fprintf(stderr, "error: perf regression vs %s\n",
                   baseline_path.c_str());
      return 4;
    }
  }
  return 0;
}
