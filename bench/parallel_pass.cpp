// Parallel round-engine benchmark and determinism gate (DESIGN §4i/§4k).
//
// For each circuit, times PROP end-to-end via run_many under:
//   * engine "seq":         pass_threads = 0, the classic sequential move
//                           loop (the quality/speed reference);
//   * engine "roundfull-1": the round engine at pass_threads = 1 with
//                           full_sweep_rounds = true — the pre-active-set
//                           schedule (every round sweeps all free nodes and
//                           rebuilds all nets), the cost reference the §4k
//                           active set is measured against;
//   * engine "round-N":     the deterministic round engine at pass_threads
//                           = 1, 2 and 4 with active-set (delta-driven)
//                           sweeps — same synchronous schedule, N-way
//                           intra-pass parallelism.
// The "kway" kernel repeats the same grid for the k = 4 pipeline
// (recursive bisection + native k-way PROP polish), whose round engine
// mirrors the 2-way one.
//
// Two contracts are enforced in-binary:
//   1. Determinism (exit 5): the round engine's best partition (sides +
//      cut) AND its full --stats-json document (timing excluded) must be
//      byte-identical across every measured pass_threads value — AND for
//      the roundfull-1 reference, which must match round-1 exactly (the
//      active-set sweep is an exact-identity optimization).  This is the
//      "any N" clause of PropConfig::pass_threads and the §4k identity
//      contract made executable.
//   2. Perf regression (exit 4): with --baseline FILE, wall seconds are
//      compared cell-by-cell against the committed BENCH_parallel_pass.json
//      exactly like bench/gain_kernels — fail past --max-regress (default
//      0.25) beyond a 5 ms absolute floor.  scripts/verify.sh runs this
//      gate on every release verification.
//
// Every cell is measured --min-of K times (default 3, minimum wall kept):
// host noise is one-sided, the min is the estimator a 25% gate can sit on.
// Circuits named synthN are scaled synthetic instances (N nodes); the
// default set includes synth10000 so the committed baseline documents the
// active-set CPU reduction at 10^4 nodes (the roundfull-1 / round-1 cpu
// ratio printed per circuit).
//
// Flags: --fast / --circuit NAME, --runs N, --seed N, --min-of K,
// --out FILE, --baseline FILE, --max-regress X.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <memory>

#include "bench_common.h"
#include "core/prop_partitioner.h"
#include "hypergraph/generator.h"
#include "hypergraph/mcnc_suite.h"
#include "kway/kway_partitioner.h"
#include "partition/runner.h"
#include "util/cli.h"
#include "util/timer.h"

namespace {

using prop::BalanceConstraint;
using prop::Hypergraph;
using prop::MultiRunResult;
using prop::PropConfig;
using prop::PropPartitioner;

/// Bundled MCNC stand-in, or a scaled synthetic instance for "synthN".
Hypergraph make_circuit(const std::string& name) {
  if (name.rfind("synth", 0) == 0) {
    const long long n = std::atoll(name.c_str() + 5);
    return prop::generate_circuit(
        prop::scaled_spec(name, static_cast<prop::NodeId>(n)),
        prop::kSuiteSeed);
  }
  return prop::make_mcnc_circuit(name);
}

struct Row {
  std::string kernel;
  std::string circuit;
  std::string engine;
  std::uint64_t ops = 0;  ///< runs measured
  double wall_seconds = 0.0;
  double cpu_seconds = 0.0;
  double cut = 0.0;  ///< best cut (identical across round-N rows by gate 1)
};

struct Measured {
  MultiRunResult result;
  std::string stats_json;  ///< timing-free document, the determinism witness
  double wall_seconds = 0.0;
};

Measured measure(prop::Bipartitioner& algo, const Hypergraph& g,
                 const std::string& circuit, const BalanceConstraint& balance,
                 int runs, std::uint64_t seed, int min_of) {
  prop::RunnerOptions options;
  options.collect_telemetry = true;

  Measured m;
  m.wall_seconds = 1e300;
  for (int rep = 0; rep < min_of; ++rep) {
    prop::WallTimer wall;
    MultiRunResult r = prop::run_many(algo, g, balance, runs, seed, options);
    const double elapsed = wall.seconds();
    if (elapsed < m.wall_seconds) m.wall_seconds = elapsed;
    if (rep == 0) {
      std::ostringstream json;
      prop::StatsJsonOptions json_options;
      json_options.include_timing = false;
      prop::write_stats_json(json, circuit, algo.name(), r, json_options);
      m.stats_json = json.str();
      m.result = std::move(r);
    }
  }
  return m;
}

Measured run_prop(const Hypergraph& g, const std::string& circuit,
                  const BalanceConstraint& balance, int pass_threads,
                  bool full_sweep, int runs, std::uint64_t seed, int min_of) {
  PropConfig config;
  config.pass_threads = pass_threads;
  config.full_sweep_rounds = full_sweep;
  PropPartitioner algo(config);
  return measure(algo, g, circuit, balance, runs, seed, min_of);
}

/// The k = 4 pipeline (recursive PROP bisection + greedy legalization +
/// native k-way PROP).  pass_threads/full_sweep reach BOTH PROP stages so
/// the identity gates cover the 2-way and the k-way round engines at once.
Measured run_kway(const Hypergraph& g, const std::string& circuit,
                  const BalanceConstraint& balance, int pass_threads,
                  bool full_sweep, int runs, std::uint64_t seed, int min_of) {
  PropConfig bisector_config;
  bisector_config.pass_threads = pass_threads;
  bisector_config.full_sweep_rounds = full_sweep;
  prop::KWayPipelineConfig config;
  config.k = 4;
  config.refiner = prop::KWayRefinerKind::kProp;
  config.prop.pass_threads = pass_threads;
  config.prop.full_sweep_rounds = full_sweep;
  prop::KWayPartitioner algo(
      std::make_unique<PropPartitioner>(bisector_config), config);
  return measure(algo, g, circuit, balance, runs, seed, min_of);
}

// Line-oriented baseline reader; the JSON below keeps one row per line.
std::string extract_string(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\": \"";
  const auto at = line.find(pat);
  if (at == std::string::npos) return {};
  const auto start = at + pat.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return {};
  return line.substr(start, end - start);
}

double extract_double(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\": ";
  const auto at = line.find(pat);
  if (at == std::string::npos) return 0.0;
  return std::atof(line.c_str() + at + pat.size());
}

std::vector<Row> load_baseline(const std::string& path) {
  std::vector<Row> rows;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    if (line.find("\"kernel\"") == std::string::npos) continue;
    Row r;
    r.kernel = extract_string(line, "kernel");
    r.circuit = extract_string(line, "circuit");
    r.engine = extract_string(line, "engine");
    r.ops = static_cast<std::uint64_t>(extract_double(line, "ops"));
    r.wall_seconds = extract_double(line, "wall_seconds");
    rows.push_back(r);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::bench::check_flags(
          args,
          {"fast", "circuit", "runs", "seed", "min-of", "out", "baseline",
           "max-regress"},
          "[--fast] [--circuit NAME] [--runs N] [--seed N] [--min-of K]\n"
          "          [--out FILE] [--baseline FILE] [--max-regress X]")) {
    return 2;
  }
  // Default circuit set is deliberately small: the round engine trades CPU
  // for wall-clock scalability, so full-suite sweeps belong to the table
  // harnesses, not the perf gate.  synth10000 is the 10^4-node instance the
  // active-set CPU-reduction claim is documented on.
  std::vector<std::string> circuits = {"balu", "struct", "synth10000"};
  if (const auto one = args.get("circuit")) circuits = {*one};
  if (args.get_bool_or("fast", false)) circuits = {"balu"};
  const int runs = static_cast<int>(args.get_int_or("runs", 3));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(args.get_int_or("seed", 7));
  const int min_of = static_cast<int>(args.get_int_or("min-of", 3));
  const std::string out_path = args.get_or("out", "BENCH_parallel_pass.json");
  const std::string baseline_path = args.get_or("baseline", "");
  const double max_regress = args.get_double_or("max-regress", 0.25);
  const int thread_counts[] = {1, 2, 4};

  std::vector<Row> rows;
  bool diverged = false;
  std::printf("%-12s %-12s %-12s %10s %10s %8s\n", "kernel", "circuit",
              "engine", "wall_s", "cpu_s", "cut");

  // One kernel grid: seq, roundfull-1 reference, round-{1,2,4}.  The gates
  // compare every round-N AND roundfull-1 against round-1, byte for byte.
  using RunFn = Measured (*)(const Hypergraph&, const std::string&,
                             const BalanceConstraint&, int, bool, int,
                             std::uint64_t, int);
  const auto bench_kernel = [&](const char* kernel, RunFn run,
                                const std::string& name, const Hypergraph& g,
                                const BalanceConstraint& balance) {
    const auto emit = [&](const char* engine, const Measured& m) {
      rows.push_back(Row{kernel, name, engine,
                         static_cast<std::uint64_t>(runs), m.wall_seconds,
                         m.result.total_cpu_seconds, m.result.best.cut_cost});
      std::printf("%-12s %-12s %-12s %10.4f %10.4f %8.0f\n", kernel,
                  name.c_str(), engine, m.wall_seconds,
                  m.result.total_cpu_seconds, m.result.best.cut_cost);
    };
    const auto check_identity = [&](const char* engine, const Measured& m,
                                    const Measured& reference) {
      if (m.result.best.side != reference.result.best.side ||
          m.result.best.cut_cost != reference.result.best.cut_cost) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s/%s %s best partition "
                     "differs from round-1\n",
                     kernel, name.c_str(), engine);
        diverged = true;
      }
      if (m.stats_json != reference.stats_json) {
        std::fprintf(stderr,
                     "DETERMINISM VIOLATION: %s/%s %s stats-json differs "
                     "from round-1\n",
                     kernel, name.c_str(), engine);
        diverged = true;
      }
    };

    const Measured seq = run(g, name, balance, 0, false, runs, seed, min_of);
    emit("seq", seq);
    const Measured full =
        run(g, name, balance, 1, true, runs, seed, min_of);
    emit("roundfull-1", full);
    std::vector<Measured> measured;
    measured.reserve(3);
    for (const int threads : thread_counts) {
      measured.push_back(
          run(g, name, balance, threads, false, runs, seed, min_of));
      const Measured& m = measured.back();
      const std::string engine = "round-" + std::to_string(threads);
      emit(engine.c_str(), m);
      if (&m != &measured.front()) {
        check_identity(engine.c_str(), m, measured.front());
      }
    }
    // §4k identity contract: the active-set schedule is an exact-identity
    // optimization of the full-sweep schedule.
    check_identity("roundfull-1", full, measured.front());
    if (measured.front().result.total_cpu_seconds > 0.0) {
      std::printf("%-12s %-12s active-set cpu reduction: %.2fx "
                  "(roundfull-1 %.4fs / round-1 %.4fs)\n",
                  kernel, name.c_str(),
                  full.result.total_cpu_seconds /
                      measured.front().result.total_cpu_seconds,
                  full.result.total_cpu_seconds,
                  measured.front().result.total_cpu_seconds);
    }
  };

  for (const std::string& name : circuits) {
    const Hypergraph g = make_circuit(name);
    const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
    bench_kernel("end-to-end", &run_prop, name, g, balance);
    bench_kernel("kway", &run_kway, name, g, balance);
  }

  // JSON out, one row per line (the baseline reader depends on that).
  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  f << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "  {\"kernel\": \"%s\", \"circuit\": \"%s\", "
                  "\"engine\": \"%s\", \"ops\": %llu, "
                  "\"wall_seconds\": %.6f, \"cpu_seconds\": %.6f, "
                  "\"cut\": %.1f}%s\n",
                  r.kernel.c_str(), r.circuit.c_str(), r.engine.c_str(),
                  static_cast<unsigned long long>(r.ops), r.wall_seconds,
                  r.cpu_seconds, r.cut, i + 1 < rows.size() ? "," : "");
    f << buf;
  }
  f << "]\n";
  f.close();
  std::printf("\nwrote %s\n", out_path.c_str());

  if (diverged) {
    std::fprintf(stderr, "error: round engine output depends on thread "
                         "count\n");
    return 5;
  }

  if (!baseline_path.empty()) {
    constexpr double kAbsFloorSeconds = 0.005;
    const std::vector<Row> baseline = load_baseline(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "error: baseline %s is empty or unreadable\n",
                   baseline_path.c_str());
      return 4;
    }
    int compared = 0;
    bool regressed = false;
    for (const Row& cur : rows) {
      for (const Row& base : baseline) {
        if (base.kernel != cur.kernel || base.circuit != cur.circuit ||
            base.engine != cur.engine || base.ops != cur.ops) {
          continue;
        }
        ++compared;
        const double limit =
            base.wall_seconds * (1.0 + max_regress) + kAbsFloorSeconds;
        if (cur.wall_seconds > limit &&
            cur.wall_seconds > kAbsFloorSeconds * 2) {
          regressed = true;
          std::fprintf(stderr,
                       "PERF REGRESSION: %s/%s/%s wall %.4fs vs baseline "
                       "%.4fs (limit %.4fs)\n",
                       cur.kernel.c_str(), cur.circuit.c_str(),
                       cur.engine.c_str(), cur.wall_seconds,
                       base.wall_seconds, limit);
        }
      }
    }
    std::printf("baseline %s: compared %d cells, max allowed regression "
                "%.0f%%\n",
                baseline_path.c_str(), compared, max_regress * 100.0);
    if (compared == 0) {
      std::fprintf(stderr,
                   "error: no baseline cells matched this configuration\n");
      return 4;
    }
    if (regressed) {
      std::fprintf(stderr, "error: perf regression vs %s\n",
                   baseline_path.c_str());
      return 4;
    }
  }
  return 0;
}
