// Multilevel crossover benchmark (DESIGN.md Sec. 4g) — flat PROP vs the
// multilevel V-cycle on scaled MCNC-like synthetic instances, plus the
// parallel-net merge kernel that sits on the coarsening critical path.
//
// Two benches, one JSON row per cell:
//   * partition:      run_many over {prop, ml-prop, ml-fm} per instance;
//                     records best/mean cut, cpu seconds per run and wall
//                     seconds.  ml rows carry cut_vs_flat_pct (paper-style
//                     improvement percentage) and cpu_vs_flat (flat cpu /
//                     ml cpu, > 1 means the V-cycle is also faster).
//   * contract-merge: the parallel-net merge from contract() in isolation,
//                     timed as the legacy std::map<pin-vector, cost> merge
//                     ("map") vs the shipped sorted-pin-sequence hash merge
//                     ("hash"); both emit the identical lexicographically
//                     sorted (pins, cost) list, and the bench asserts that
//                     before trusting the timing.
//
// Instances: scaled_spec synthetics at 10^3 / 10^4 / 10^5 nodes (nets ~=
// 1.03x nodes, pins ~= 3.5x nodes — the Table 1 median ratios).  --fast
// keeps 10^3 + 10^4; scripts/verify.sh runs that subset as the perf gate
// against the committed BENCH_multilevel.json (--baseline, exit 4 on a
// > --max-regress wall-time regression, same cell matcher as
// gain_kernels).  --assert-crossover enforces the headline contract on the
// largest instance measured (exit 5): ml-prop strictly beats flat prop on
// best cut at equal-or-lower cpu seconds per run.
//
// Timing uses --min-of K (default 3) minima for the merge kernel; the
// partition rows are single-shot (run_many already amortizes over --runs).
//
// Flags: --fast, --nodes N (single instance), --runs N, --seed N,
// --threads N, --min-of K, --out FILE, --baseline FILE, --max-regress X,
// --assert-crossover.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/prop_partitioner.h"
#include "hypergraph/contraction.h"
#include "hypergraph/generator.h"
#include "hypergraph/mcnc_suite.h"
#include "multilevel/multilevel_driver.h"
#include "partition/runner.h"
#include "util/cli.h"
#include "util/rng.h"
#include "util/timer.h"

namespace {

using prop::NetId;
using prop::NodeId;

struct Row {
  std::string bench;     // "partition" | "contract-merge"
  std::string instance;  // "synth1000" etc.
  std::string engine;    // prop | ml-prop | ml-fm | map | hash
  std::uint64_t ops = 0;
  double best_cut = 0.0;
  double mean_cut = 0.0;
  double cpu_seconds_per_run = 0.0;
  double wall_seconds = 0.0;
  double cut_vs_flat_pct = 0.0;  // partition ml rows only
  double cpu_vs_flat = 0.0;      // partition ml rows only
  double speedup_vs_map = 0.0;   // contract-merge hash rows only
};

struct MergedNet {
  std::vector<NodeId> pins;
  double cost = 0.0;
};

/// Sorted/deduplicated coarse pin set of net `n`; empty when the net is
/// internal to one cluster (the merge loops skip those).
std::vector<NodeId> coarse_pins(const prop::Hypergraph& g, NetId n,
                                const std::vector<NodeId>& fine_to_coarse) {
  std::vector<NodeId> pins;
  for (const NodeId u : g.pins_of(n)) pins.push_back(fine_to_coarse[u]);
  std::sort(pins.begin(), pins.end());
  pins.erase(std::unique(pins.begin(), pins.end()), pins.end());
  if (pins.size() < 2) pins.clear();
  return pins;
}

/// The pre-fix merge: an ordered map keyed by the full pin vector — every
/// insertion pays O(log nets) lexicographic vector compares.
std::vector<MergedNet> merge_with_map(const prop::Hypergraph& g,
                                      const std::vector<NodeId>& fine_to_coarse) {
  std::map<std::vector<NodeId>, double> merged;
  for (NetId n = 0; n < g.num_nets(); ++n) {
    const std::vector<NodeId> pins = coarse_pins(g, n, fine_to_coarse);
    if (pins.empty()) continue;
    merged[pins] += g.net_cost(n);
  }
  std::vector<MergedNet> out;
  out.reserve(merged.size());
  for (const auto& [pins, cost] : merged) out.push_back(MergedNet{pins, cost});
  return out;
}

/// The shipped merge: hash of the sorted pin sequence, vector compares only
/// on genuine duplicates, one final sort to restore lexicographic emission
/// order (mirrors contract() in src/hypergraph/contraction.cpp).
std::vector<MergedNet> merge_with_hash(const prop::Hypergraph& g,
                                       const std::vector<NodeId>& fine_to_coarse) {
  struct PinSeqHash {
    std::size_t operator()(const std::vector<NodeId>& pins) const noexcept {
      std::uint64_t h = 0xcbf29ce484222325ULL;
      for (const NodeId p : pins) {
        h ^= p;
        h *= 0x100000001b3ULL;
      }
      return static_cast<std::size_t>(h);
    }
  };
  std::unordered_map<std::vector<NodeId>, std::size_t, PinSeqHash> index;
  index.reserve(g.num_nets());
  std::vector<MergedNet> merged;
  merged.reserve(g.num_nets());
  for (NetId n = 0; n < g.num_nets(); ++n) {
    std::vector<NodeId> pins = coarse_pins(g, n, fine_to_coarse);
    if (pins.empty()) continue;
    const auto [it, inserted] = index.try_emplace(pins, merged.size());
    if (inserted) {
      merged.push_back(MergedNet{std::move(pins), g.net_cost(n)});
    } else {
      merged[it->second].cost += g.net_cost(n);
    }
  }
  std::sort(merged.begin(), merged.end(),
            [](const MergedNet& a, const MergedNet& b) { return a.pins < b.pins; });
  return merged;
}

bool same_merge(const std::vector<MergedNet>& a, const std::vector<MergedNet>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].pins != b[i].pins || a[i].cost != b[i].cost) return false;
  }
  return true;
}

// --- baseline comparison (same line-oriented reader as gain_kernels) -------
std::string extract_string(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\": \"";
  const auto at = line.find(pat);
  if (at == std::string::npos) return {};
  const auto start = at + pat.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return {};
  return line.substr(start, end - start);
}

double extract_double(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\": ";
  const auto at = line.find(pat);
  if (at == std::string::npos) return 0.0;
  return std::atof(line.c_str() + at + pat.size());
}

std::vector<Row> load_baseline(const std::string& path) {
  std::vector<Row> rows;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    if (line.find("\"bench\"") == std::string::npos) continue;
    Row r;
    r.bench = extract_string(line, "bench");
    r.instance = extract_string(line, "instance");
    r.engine = extract_string(line, "engine");
    r.ops = static_cast<std::uint64_t>(extract_double(line, "ops"));
    r.wall_seconds = extract_double(line, "wall_seconds");
    rows.push_back(r);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::bench::check_flags(
          args,
          {"fast", "nodes", "runs", "seed", "threads", "min-of", "out",
           "baseline", "max-regress", "assert-crossover"},
          "[--fast] [--nodes N] [--runs N] [--seed N] [--threads N]\n"
          "          [--min-of K] [--out FILE] [--baseline FILE]\n"
          "          [--max-regress X] [--assert-crossover]")) {
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const int runs = static_cast<int>(args.get_int_or("runs", 3));
  const int min_of = static_cast<int>(args.get_int_or("min-of", 3));
  const int threads = prop::bench::thread_count(args);
  const std::string out_path = args.get_or("out", "BENCH_multilevel.json");
  const std::string baseline_path = args.get_or("baseline", "");
  const double max_regress = args.get_double_or("max-regress", 0.25);
  const bool assert_crossover = args.get_bool_or("assert-crossover", false);

  std::vector<NodeId> sizes;
  if (const auto one = args.get("nodes")) {
    sizes = {static_cast<NodeId>(args.get_int_or("nodes", 1000))};
  } else if (args.get_bool_or("fast", false)) {
    sizes = {1000, 10000};
  } else {
    sizes = {1000, 10000, 100000};
  }

  std::optional<prop::RuntimeSession> session;
  try {
    session.emplace(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  prop::bench::OutcomeTracker outcomes;

  std::printf("multilevel crossover: flat PROP vs V-cycle "
              "(runs=%d, seed=%llu)\n\n",
              runs, static_cast<unsigned long long>(seed));
  std::printf("%-12s %-11s %-8s %9s %9s %11s %10s\n", "bench", "instance",
              "engine", "best", "mean", "cpu s/run", "vs flat");
  prop::bench::print_rule(76);

  std::vector<Row> rows;
  bool crossover_ok = true;
  bool merge_mismatch = false;

  for (const NodeId n : sizes) {
    const std::string name = "synth" + std::to_string(n);
    const prop::Hypergraph g =
        prop::generate_circuit(prop::scaled_spec(name, n), prop::kSuiteSeed);
    const prop::BalanceConstraint balance =
        prop::BalanceConstraint::forty_five(g);

    // --- partition rows ----------------------------------------------------
    struct Engine {
      const char* label;
      std::unique_ptr<prop::Bipartitioner> algo;
    };
    std::vector<Engine> engines;
    engines.push_back({"prop", std::make_unique<prop::PropPartitioner>()});
    {
      prop::MultilevelConfig ml;
      ml.refiner = prop::MlRefiner::kProp;
      engines.push_back(
          {"ml-prop", std::make_unique<prop::MultilevelPartitioner>(ml)});
      ml.refiner = prop::MlRefiner::kFm;
      engines.push_back(
          {"ml-fm", std::make_unique<prop::MultilevelPartitioner>(ml)});
    }

    double flat_best = 0.0;
    double flat_cpu = 0.0;
    double ml_prop_best = 0.0;
    double ml_prop_cpu = 0.0;
    for (const Engine& e : engines) {
      if (session->context()) e.algo->attach_context(session->context());
      prop::RunnerOptions options;
      options.context = session->context();
      options.threads = threads;
      prop::WallTimer wall;
      const prop::MultiRunResult r =
          prop::run_many(*e.algo, g, balance, runs, seed, options);
      outcomes.observe(r);

      Row row;
      row.bench = "partition";
      row.instance = name;
      row.engine = e.label;
      row.ops = static_cast<std::uint64_t>(r.runs_attempted());
      row.best_cut = r.best_cut();
      row.mean_cut = r.mean_cut();
      row.cpu_seconds_per_run = r.cpu_seconds_per_run;
      row.wall_seconds = wall.seconds();
      if (row.engine == "prop") {
        flat_best = row.best_cut;
        flat_cpu = row.cpu_seconds_per_run;
        std::printf("%-12s %-11s %-8s %9.0f %9.1f %11.4f %10s\n",
                    row.bench.c_str(), name.c_str(), e.label, row.best_cut,
                    row.mean_cut, row.cpu_seconds_per_run, "-");
      } else {
        row.cut_vs_flat_pct =
            prop::bench::improvement_pct(row.best_cut, flat_best);
        row.cpu_vs_flat = row.cpu_seconds_per_run > 0.0
                              ? flat_cpu / row.cpu_seconds_per_run
                              : 0.0;
        if (row.engine == "ml-prop") {
          ml_prop_best = row.best_cut;
          ml_prop_cpu = row.cpu_seconds_per_run;
        }
        std::printf("%-12s %-11s %-8s %9.0f %9.1f %11.4f %+9.1f%%\n",
                    row.bench.c_str(), name.c_str(), e.label, row.best_cut,
                    row.mean_cut, row.cpu_seconds_per_run,
                    row.cut_vs_flat_pct);
      }
      rows.push_back(row);
    }
    if (n == sizes.back() &&
        (ml_prop_best >= flat_best || ml_prop_cpu > flat_cpu)) {
      crossover_ok = false;
    }

    // --- contract-merge rows -----------------------------------------------
    // One real coarsening clustering (the exact first-level clustering the
    // driver builds), then the isolated merge both ways.
    prop::Rng crng(prop::mix_seed(seed, 0xC0A45EULL, 0));
    const auto max_weight = std::max<std::int64_t>(
        1, static_cast<std::int64_t>(
               static_cast<double>(g.total_node_size()) / 32.0));
    NodeId num_clusters = 0;
    const std::vector<NodeId> cluster_of =
        prop::attraction_clusters(g, crng, max_weight, 64, num_clusters);
    std::vector<NodeId> fine_to_coarse(g.num_nodes());
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      fine_to_coarse[u] = cluster_of[u];
    }

    const std::vector<MergedNet> via_map = merge_with_map(g, fine_to_coarse);
    const std::vector<MergedNet> via_hash = merge_with_hash(g, fine_to_coarse);
    if (!same_merge(via_map, via_hash)) {
      merge_mismatch = true;
      std::fprintf(stderr,
                   "MERGE MISMATCH: %s map and hash merges disagree\n",
                   name.c_str());
    }

    double map_wall = 0.0;
    for (int variant = 0; variant < 2; ++variant) {
      double best_wall = 0.0;
      double best_cpu = 0.0;
      std::size_t sink = 0;
      for (int m = 0; m < std::max(1, min_of); ++m) {
        prop::WallTimer wall;
        prop::ThreadCpuTimer cpu;
        const std::vector<MergedNet> merged =
            variant == 0 ? merge_with_map(g, fine_to_coarse)
                         : merge_with_hash(g, fine_to_coarse);
        const double w = wall.seconds();
        sink += merged.size();
        if (m == 0 || w < best_wall) {
          best_wall = w;
          best_cpu = cpu.seconds();
        }
      }

      Row row;
      row.bench = "contract-merge";
      row.instance = name;
      row.engine = variant == 0 ? "map" : "hash";
      row.ops = g.num_nets();
      row.best_cut = 0.0;
      row.mean_cut = 0.0;
      row.cpu_seconds_per_run = best_cpu;
      row.wall_seconds = best_wall;
      if (variant == 0) {
        map_wall = best_wall;
        std::printf("%-12s %-11s %-8s %9llu %9s %11.4f %10s\n",
                    row.bench.c_str(), name.c_str(), "map",
                    static_cast<unsigned long long>(row.ops), "-", best_wall,
                    "-");
      } else {
        row.speedup_vs_map = best_wall > 0.0 ? map_wall / best_wall : 0.0;
        std::printf("%-12s %-11s %-8s %9llu %9s %11.4f %9.2fx\n",
                    row.bench.c_str(), name.c_str(), "hash",
                    static_cast<unsigned long long>(row.ops), "-", best_wall,
                    row.speedup_vs_map);
      }
      rows.push_back(row);
      if (sink == 0) std::fprintf(stderr, "warning: empty merge on %s\n",
                                  name.c_str());
    }
  }
  prop::bench::print_rule(76);

  // JSON out, one row per line (the baseline reader depends on that).
  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  f << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"bench\": \"%s\", \"instance\": \"%s\", \"engine\": \"%s\", "
        "\"ops\": %llu, \"best_cut\": %.1f, \"mean_cut\": %.1f, "
        "\"cpu_seconds_per_run\": %.6f, \"wall_seconds\": %.6f, "
        "\"cut_vs_flat_pct\": %.2f, \"cpu_vs_flat\": %.3f, "
        "\"speedup_vs_map\": %.3f}%s\n",
        r.bench.c_str(), r.instance.c_str(), r.engine.c_str(),
        static_cast<unsigned long long>(r.ops), r.best_cut, r.mean_cut,
        r.cpu_seconds_per_run, r.wall_seconds, r.cut_vs_flat_pct,
        r.cpu_vs_flat, r.speedup_vs_map, i + 1 < rows.size() ? "," : "");
    f << buf;
  }
  f << "]\n";
  f.close();
  std::printf("\nwrote %s\n", out_path.c_str());

  int exit_code = outcomes.finish(*session);
  if (merge_mismatch) {
    std::fprintf(stderr, "error: map/hash merge results diverged\n");
    exit_code = 6;
  }

  // Perf-regression gate against the committed baseline: wall seconds
  // cell-by-cell, skipping noise-band cells (same policy as gain_kernels).
  if (!baseline_path.empty()) {
    constexpr double kAbsFloorSeconds = 0.005;
    const std::vector<Row> baseline = load_baseline(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "error: baseline %s is empty or unreadable\n",
                   baseline_path.c_str());
      return 4;
    }
    int compared = 0;
    bool regressed = false;
    for (const Row& cur : rows) {
      for (const Row& base : baseline) {
        if (base.bench != cur.bench || base.instance != cur.instance ||
            base.engine != cur.engine || base.ops != cur.ops) {
          continue;
        }
        ++compared;
        const double limit =
            base.wall_seconds * (1.0 + max_regress) + kAbsFloorSeconds;
        if (cur.wall_seconds > limit &&
            cur.wall_seconds > kAbsFloorSeconds * 2) {
          regressed = true;
          std::fprintf(stderr,
                       "PERF REGRESSION: %s/%s/%s wall %.4fs vs baseline "
                       "%.4fs (limit %.4fs)\n",
                       cur.bench.c_str(), cur.instance.c_str(),
                       cur.engine.c_str(), cur.wall_seconds,
                       base.wall_seconds, limit);
        }
      }
    }
    std::printf("baseline %s: compared %d cells, max allowed regression "
                "%.0f%%\n",
                baseline_path.c_str(), compared, max_regress * 100.0);
    if (compared == 0) {
      std::fprintf(stderr,
                   "error: no baseline cells matched this configuration\n");
      return 4;
    }
    if (regressed) {
      std::fprintf(stderr, "error: perf regression vs %s\n",
                   baseline_path.c_str());
      return 4;
    }
    std::printf("no perf regression vs baseline\n");
  }

  // Headline contract: on the largest instance measured, the V-cycle beats
  // flat PROP on cut without spending more cpu per run.
  if (assert_crossover) {
    if (!crossover_ok) {
      std::fprintf(stderr,
                   "CROSSOVER VIOLATION: ml-prop does not beat flat prop on "
                   "cut at equal-or-lower cpu on the largest instance\n");
      exit_code = 5;
    } else {
      std::printf("crossover contract satisfied\n");
    }
  }
  return exit_code;
}
