// PROP gain-drift measurement harness.
//
// PROP's incremental gains[] are approximately consistent with a
// from-scratch recompute by design: updating p(v) after a move stales the
// neighbours' previously computed gains (Sec. 3.4 of the paper).  This
// harness quantifies that staleness: it runs PROP with the invariant
// auditor enabled on generated MCNC-like circuits and reports the maximum
// |gains[v] - scratch_gain(v)| observed across all audit sweeps, with and
// without a periodic gain resync.
//
// Flags: --fast (smaller circuit list), --runs N, --seed N,
// --audit-interval N, --resync-interval N (0 disables resync).
#include <cstdio>

#include "bench_common.h"
#include "core/prop_partitioner.h"
#include "hypergraph/generator.h"
#include "partition/runner.h"

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::bench::check_flags(
          args,
          {"fast", "runs", "seed", "audit-interval", "resync-interval",
           "threads"},
          "[--fast] [--runs N] [--seed N] [--audit-interval N] "
          "[--resync-interval N] [--threads N]\n"
          "          [--time-budget-ms N] [--on-timeout=best|fail] "
          "[--inject=SPEC] [--inject-seed N]")) {
    return 2;
  }
  prop::RuntimeSession session(args);
  prop::bench::OutcomeTracker tracker;
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const int runs = static_cast<int>(args.get_int_or("runs", 5));
  const int audit = static_cast<int>(args.get_int_or("audit-interval", 4));
  const int resync = static_cast<int>(args.get_int_or("resync-interval", 16));

  struct Shape {
    const char* name;
    prop::NodeId nodes;
    prop::NetId nets;
    std::size_t pins;
  };
  const Shape shapes[] = {
      {"g300", 300, 380, 1300},   {"g600", 600, 750, 2600},
      {"g1000", 1000, 1300, 4500}, {"g1500", 1500, 1900, 6600},
      {"g2000", 2000, 2600, 9000},
  };
  const int limit = args.get_bool_or("fast", false) ? 3 : 5;

  std::printf("PROP incremental-gain drift vs from-scratch recompute\n");
  std::printf("(audit every %d moves; resync cadence %d; %d runs each)\n\n",
              audit, resync, runs);
  std::printf("%-8s %8s %8s | %14s %14s | %12s\n", "circuit", "nodes", "nets",
              "drift(none)", "drift(resync)", "cut none/sync");
  prop::bench::print_rule(78);

  for (int i = 0; i < limit; ++i) {
    const Shape& s = shapes[i];
    const prop::Hypergraph g = prop::generate_circuit(
        {s.name, s.nodes, s.nets, s.pins}, prop::mix_seed(seed, 11 + i));
    const prop::BalanceConstraint balance =
        prop::BalanceConstraint::forty_five(g);
    prop::RunnerOptions options;
    options.collect_telemetry = true;
    options.context = session.context();
    options.threads = prop::bench::thread_count(args);

    prop::PropConfig raw;
    raw.audit_interval = audit;
    prop::PropPartitioner plain(raw);
    const prop::MultiRunResult none =
        prop::run_many(plain, g, balance, runs, seed, options);
    tracker.observe(none);

    prop::PropConfig bounded = raw;
    bounded.resync_interval = resync;
    prop::PropPartitioner synced(bounded);
    const prop::MultiRunResult sync =
        prop::run_many(synced, g, balance, runs, seed, options);
    tracker.observe(sync);

    std::printf("%-8s %8u %8u | %14.6g %14.6g | %6.0f /%6.0f\n", s.name,
                g.num_nodes(), g.num_nets(), none.max_gain_drift(),
                sync.max_gain_drift(), none.best_cut(), sync.best_cut());
  }

  std::printf(
      "\ndrift(none): max |incremental - scratch| gain gap over all audit\n"
      "sweeps with no resync — the paper-design staleness bound in practice.\n"
      "drift(resync): same measurement when gains are resynced from scratch\n"
      "every %d moves (the auditor additionally hard-asserts exactness to\n"
      "1e-6 immediately after each resync).\n",
      resync);
  return tracker.finish(session);
}
