// K-way pipeline benchmark (DESIGN.md Sec. 4j) — recursive bisection alone
// vs +greedy pass-based refinement vs +native k-way PROP, at k in {2, 4, 8},
// on MCNC circuits plus the 10^4-node scaled synthetic.
//
// One JSON row per (instance, k, engine) cell, engines:
//   * rb:      recursive bisection only (KWayRefinerKind::kNone)
//   * greedy:  rb + greedy k-way pass refinement
//   * prop:    rb + greedy + native k-way PROP (the shipped default)
// All three run the PROP bisector inside recursive_bisection with the same
// seeds, so the engines differ only in the refinement stack.  Objective is
// connectivity (sum c(n) * (lambda(n) - 1)); rows record the cut cost too.
//
// Every run is validated by run_many through KWayPartitioner::validate
// (exact KWayState cost recompute); any failed run exits 6.
// --assert-quality enforces the headline contract (exit 5): at k = 4 and
// k = 8 on every instance, prop matches or beats greedy on best
// connectivity.  This holds by construction — the PROP pass starts from the
// greedy result and rolls back to its best exact-gain prefix — so a
// violation means the speculative pass or its rollback broke.
//
// scripts/verify.sh runs --fast (p1 + synth10000) with --baseline against
// the committed BENCH_kway.json: exit 4 on a > --max-regress wall-time
// regression per cell, same matcher/noise policy as gain_kernels.
//
// Flags: --fast, --circuit NAME, --runs N, --seed N, --threads N,
// --out FILE, --baseline FILE, --max-regress X, --assert-quality.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "hypergraph/generator.h"
#include "hypergraph/mcnc_suite.h"
#include "kway/kway_state.h"
#include "partition/runner.h"
#include "service/algo_factory.h"
#include "util/cli.h"
#include "util/timer.h"

namespace {

using prop::NodeId;

struct Row {
  std::string bench = "kway";
  std::string instance;
  int k = 0;
  std::string engine;  // rb | greedy | prop
  std::uint64_t ops = 0;
  double best_cost = 0.0;  // connectivity (the optimized objective)
  double mean_cost = 0.0;
  double best_cut = 0.0;
  double cpu_seconds_per_run = 0.0;
  double wall_seconds = 0.0;
  double impr_vs_greedy_pct = 0.0;  // prop rows only
};

// --- baseline comparison (same line-oriented reader as gain_kernels) -------
std::string extract_string(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\": \"";
  const auto at = line.find(pat);
  if (at == std::string::npos) return {};
  const auto start = at + pat.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return {};
  return line.substr(start, end - start);
}

double extract_double(const std::string& line, const std::string& key) {
  const std::string pat = "\"" + key + "\": ";
  const auto at = line.find(pat);
  if (at == std::string::npos) return 0.0;
  return std::atof(line.c_str() + at + pat.size());
}

std::vector<Row> load_baseline(const std::string& path) {
  std::vector<Row> rows;
  std::ifstream f(path);
  std::string line;
  while (std::getline(f, line)) {
    if (line.find("\"bench\"") == std::string::npos) continue;
    Row r;
    r.instance = extract_string(line, "instance");
    r.k = static_cast<int>(extract_double(line, "k"));
    r.engine = extract_string(line, "engine");
    r.ops = static_cast<std::uint64_t>(extract_double(line, "ops"));
    r.wall_seconds = extract_double(line, "wall_seconds");
    rows.push_back(r);
  }
  return rows;
}

}  // namespace

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::bench::check_flags(
          args,
          {"fast", "circuit", "runs", "seed", "threads", "out", "baseline",
           "max-regress", "assert-quality"},
          "[--fast] [--circuit NAME] [--runs N] [--seed N] [--threads N]\n"
          "          [--out FILE] [--baseline FILE] [--max-regress X]\n"
          "          [--assert-quality]")) {
    return 2;
  }
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const int runs = static_cast<int>(args.get_int_or("runs", 3));
  const int threads = prop::bench::thread_count(args);
  const std::string out_path = args.get_or("out", "BENCH_kway.json");
  const std::string baseline_path = args.get_or("baseline", "");
  const double max_regress = args.get_double_or("max-regress", 0.25);
  const bool assert_quality = args.get_bool_or("assert-quality", false);

  std::vector<std::string> instances;
  if (const auto one = args.get("circuit")) {
    instances = {*one};
  } else if (args.get_bool_or("fast", false)) {
    instances = {"p1", "synth10000"};
  } else {
    instances = {"balu", "p1", "p2", "synth10000"};
  }
  const int ks[] = {2, 4, 8};
  const char* const engines[] = {"rb", "greedy", "prop"};

  std::optional<prop::RuntimeSession> session;
  try {
    session.emplace(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 2;
  }
  prop::bench::OutcomeTracker outcomes;

  std::printf("k-way pipeline: rb vs +greedy vs +k-way PROP "
              "(objective connectivity, runs=%d, seed=%llu)\n\n",
              runs, static_cast<unsigned long long>(seed));
  std::printf("%-11s %3s %-7s %9s %9s %9s %11s %10s\n", "instance", "k",
              "engine", "best", "mean", "cut", "cpu s/run", "vs greedy");
  prop::bench::print_rule(78);

  std::vector<Row> rows;
  bool quality_ok = true;
  bool any_failed = false;

  for (const std::string& name : instances) {
    prop::Hypergraph g;
    try {
      g = name.rfind("synth", 0) == 0
              ? prop::generate_circuit(
                    prop::scaled_spec(
                        name, static_cast<NodeId>(
                                  std::atoll(name.c_str() + 5))),
                    prop::kSuiteSeed)
              : prop::make_mcnc_circuit(name);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error loading %s: %s\n", name.c_str(), e.what());
      return 2;
    }
    const prop::BalanceConstraint balance =
        prop::BalanceConstraint::forty_five(g);

    for (const int k : ks) {
      double greedy_best = 0.0;
      for (const char* const engine : engines) {
        const prop::KWayRefinerKind refiner =
            *prop::service::parse_kway_refiner(
                std::string(engine) == "rb" ? "none" : engine);
        const std::unique_ptr<prop::Bipartitioner> algo =
            prop::service::make_kway_algo("prop", static_cast<NodeId>(k),
                                          refiner,
                                          prop::KWayObjective::kConnectivity);
        if (session->context()) algo->attach_context(session->context());
        prop::RunnerOptions options;
        options.context = session->context();
        options.threads = threads;
        prop::WallTimer wall;
        const prop::MultiRunResult r =
            prop::run_many(*algo, g, balance, runs, seed, options);
        outcomes.observe(r);
        if (r.runs_failed() > 0) {
          any_failed = true;
          std::fprintf(stderr, "VALIDATION FAILURE: %s k=%d %s: %d runs\n",
                       name.c_str(), k, engine, r.runs_failed());
        }

        // best.cut_cost is the connectivity objective; recompute the plain
        // cut of the best partition for the informational column.
        std::vector<prop::NodeId> part(r.best.side.begin(),
                                       r.best.side.end());
        const prop::KWayState state(g, std::move(part),
                                    static_cast<NodeId>(k));

        Row row;
        row.instance = name;
        row.k = k;
        row.engine = engine;
        row.ops = static_cast<std::uint64_t>(r.runs_attempted());
        row.best_cost = r.best_cut();
        row.mean_cost = r.mean_cut();
        row.best_cut = state.cut_cost();
        row.cpu_seconds_per_run = r.cpu_seconds_per_run;
        row.wall_seconds = wall.seconds();
        if (row.engine == "greedy") greedy_best = row.best_cost;
        if (row.engine == "prop") {
          row.impr_vs_greedy_pct =
              prop::bench::improvement_pct(row.best_cost, greedy_best);
          if (k > 2 && row.best_cost > greedy_best) quality_ok = false;
          std::printf("%-11s %3d %-7s %9.0f %9.1f %9.0f %11.4f %+9.1f%%\n",
                      name.c_str(), k, engine, row.best_cost, row.mean_cost,
                      row.best_cut, row.cpu_seconds_per_run,
                      row.impr_vs_greedy_pct);
        } else {
          std::printf("%-11s %3d %-7s %9.0f %9.1f %9.0f %11.4f %10s\n",
                      name.c_str(), k, engine, row.best_cost, row.mean_cost,
                      row.best_cut, row.cpu_seconds_per_run, "-");
        }
        rows.push_back(row);
      }
    }
  }
  prop::bench::print_rule(78);

  // JSON out, one row per line (the baseline reader depends on that).
  std::ofstream f(out_path);
  if (!f) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  f << "[\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "  {\"bench\": \"kway\", \"instance\": \"%s\", \"k\": %d, "
        "\"engine\": \"%s\", \"ops\": %llu, \"best_cost\": %.1f, "
        "\"mean_cost\": %.1f, \"best_cut\": %.1f, "
        "\"cpu_seconds_per_run\": %.6f, \"wall_seconds\": %.6f, "
        "\"impr_vs_greedy_pct\": %.2f}%s\n",
        r.instance.c_str(), r.k, r.engine.c_str(),
        static_cast<unsigned long long>(r.ops), r.best_cost, r.mean_cost,
        r.best_cut, r.cpu_seconds_per_run, r.wall_seconds,
        r.impr_vs_greedy_pct, i + 1 < rows.size() ? "," : "");
    f << buf;
  }
  f << "]\n";
  f.close();
  std::printf("\nwrote %s\n", out_path.c_str());

  int exit_code = outcomes.finish(*session);
  if (any_failed) {
    std::fprintf(stderr, "error: k-way validation failed on some runs\n");
    exit_code = 6;
  }

  // Perf-regression gate against the committed baseline: wall seconds
  // cell-by-cell, skipping noise-band cells (same policy as gain_kernels).
  if (!baseline_path.empty()) {
    constexpr double kAbsFloorSeconds = 0.005;
    const std::vector<Row> baseline = load_baseline(baseline_path);
    if (baseline.empty()) {
      std::fprintf(stderr, "error: baseline %s is empty or unreadable\n",
                   baseline_path.c_str());
      return 4;
    }
    int compared = 0;
    bool regressed = false;
    for (const Row& cur : rows) {
      for (const Row& base : baseline) {
        if (base.instance != cur.instance || base.k != cur.k ||
            base.engine != cur.engine || base.ops != cur.ops) {
          continue;
        }
        ++compared;
        const double limit =
            base.wall_seconds * (1.0 + max_regress) + kAbsFloorSeconds;
        if (cur.wall_seconds > limit &&
            cur.wall_seconds > kAbsFloorSeconds * 2) {
          regressed = true;
          std::fprintf(stderr,
                       "PERF REGRESSION: %s/k=%d/%s wall %.4fs vs baseline "
                       "%.4fs (limit %.4fs)\n",
                       cur.instance.c_str(), cur.k, cur.engine.c_str(),
                       cur.wall_seconds, base.wall_seconds, limit);
        }
      }
    }
    std::printf("baseline %s: compared %d cells, max allowed regression "
                "%.0f%%\n",
                baseline_path.c_str(), compared, max_regress * 100.0);
    if (compared == 0) {
      std::fprintf(stderr,
                   "error: no baseline cells matched this configuration\n");
      return 4;
    }
    if (regressed) {
      std::fprintf(stderr, "error: perf regression vs %s\n",
                   baseline_path.c_str());
      return 4;
    }
    std::printf("no perf regression vs baseline\n");
  }

  // Headline contract: at k > 2 the full pipeline never loses to its own
  // greedy prefix on best connectivity.
  if (assert_quality) {
    if (!quality_ok) {
      std::fprintf(stderr,
                   "QUALITY VIOLATION: k-way PROP lost to rb+greedy on best "
                   "connectivity at some k > 2 cell\n");
      exit_code = 5;
    } else {
      std::printf("quality contract satisfied\n");
    }
  }
  return exit_code;
}
