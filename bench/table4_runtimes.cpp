// Table 4 reproduction: CPU seconds per run for every method, plus the
// totals-over-all-runs row (FM x100, LA-2 x40, LA-3 x20, PROP x20 as in the
// paper's accounting).  Absolute times are a modern machine, not a 1996
// Sparc; the *ratios* (FM fastest, PROP a small factor over FM-bucket and
// far cheaper than the clustering methods on large circuits) are the
// reproduced shape.
//
// Flags: --fast, --circuit NAME, --reps N (timing repetitions), --seed,
// --stats-json FILE (collect per-pass refinement telemetry for the
// iterative methods and dump every run's trajectory as a JSON array —
// telemetry collection is per-run opt-in, so the timed columns without the
// flag are unaffected).
#include <cstdio>
#include <fstream>

#include "bench_common.h"
#include "cluster/window.h"
#include "core/prop_partitioner.h"
#include "fm/fm_partitioner.h"
#include "hypergraph/mcnc_suite.h"
#include "la/la_partitioner.h"
#include "partition/runner.h"
#include "placement/paraboli.h"
#include "spectral/eig1.h"
#include "spectral/melo.h"
#include "util/cli.h"

int main(int argc, char** argv) {
  const prop::CliArgs args(argc, argv);
  if (!prop::bench::check_flags(
          args, {"fast", "circuit", "reps", "seed", "stats-json", "threads"},
          "[--fast] [--circuit NAME] [--reps N] [--seed N] "
          "[--stats-json FILE] [--threads N]\n"
          "          [--time-budget-ms N] [--on-timeout=best|fail] "
          "[--inject=SPEC] [--inject-seed N]")) {
    return 2;
  }
  prop::RuntimeSession session(args);
  prop::bench::OutcomeTracker tracker;
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 1));
  const int reps = static_cast<int>(args.get_int_or("reps", 3));
  const auto stats_json = args.get("stats-json");
  prop::RunnerOptions options;
  options.collect_telemetry = stats_json.has_value();
  options.context = session.context();
  options.threads = prop::bench::thread_count(args);
  std::ofstream stats_out;
  if (stats_json) {
    stats_out.open(*stats_json);
    if (!stats_out) {
      std::fprintf(stderr, "error: cannot write %s\n", stats_json->c_str());
      return 1;
    }
    stats_out << "[";
  }
  bool stats_first = true;

  std::printf("Table 4: CPU seconds per run (mean of %d runs each)\n\n", reps);
  std::printf("%-10s %10s %10s %8s %8s %8s %8s %10s %8s %8s\n", "circuit",
              "FM-bucket", "FM-tree", "LA-2", "LA-3", "PROP", "EIG1",
              "PARABOLI", "MELO", "WINDOW");
  prop::bench::print_rule(110);

  prop::FmPartitioner fm_bucket({prop::FmStructure::kBucket});
  prop::FmPartitioner fm_tree({prop::FmStructure::kTree});
  prop::LaPartitioner la2({2});
  prop::LaPartitioner la3({3});
  prop::PropPartitioner prop_algo;
  prop::Eig1Partitioner eig1;
  prop::ParaboliPartitioner paraboli;
  prop::MeloPartitioner melo;
  prop::WindowPartitioner window;

  struct Method {
    prop::Bipartitioner* algo;
    int paper_runs;  ///< multiplier used in the paper's total row
    double total = 0.0;       ///< CPU seconds — the paper's metric
    double total_wall = 0.0;  ///< wall seconds across the whole sweep
  };
  Method methods[] = {
      {&fm_bucket, 100}, {&fm_tree, 100}, {&la2, 40},    {&la3, 20},
      {&prop_algo, 20},  {&eig1, 1},      {&paraboli, 1}, {&melo, 1},
      {&window, 1},
  };

  for (const auto& name : prop::bench::circuit_names(args)) {
    const prop::Hypergraph g = prop::make_mcnc_circuit(name);
    const prop::BalanceConstraint balance =
        prop::BalanceConstraint::forty_five(g);
    std::printf("%-10s", name.c_str());
    for (auto& m : methods) {
      const prop::MultiRunResult r = prop::run_many(
          *m.algo, g, balance, reps, prop::mix_seed(seed, 7), options);
      tracker.observe(r);
      // The paper reports per-run CPU seconds, which is the comparable
      // metric regardless of --threads; wall time is tracked separately.
      m.total += r.cpu_seconds_per_run * m.paper_runs;
      m.total_wall += r.total_wall_seconds;
      std::printf(" %9.4f", r.cpu_seconds_per_run);
      if (stats_json && !r.telemetry.empty()) {
        if (!stats_first) stats_out << ",\n";
        stats_first = false;
        prop::write_stats_json(stats_out, name, m.algo->name(), r);
      }
    }
    std::printf("\n");
  }
  if (stats_json) {
    stats_out << "]\n";
    std::printf("\nwrote per-pass telemetry to %s\n", stats_json->c_str());
  }

  prop::bench::print_rule(110);
  std::printf("%-10s", "Total*runs");
  for (const auto& m : methods) std::printf(" %9.2f", m.total);
  std::printf("\n  (x100, x100, x40, x20, x20, x1, x1, x1, x1 as in the "
              "paper's total row; CPU seconds)\n");
  std::printf("%-10s", "Wall(sum)");
  for (const auto& m : methods) std::printf(" %9.2f", m.total_wall);
  if (options.threads >= 1) {
    std::printf("\n  (wall seconds over the whole sweep, %d worker threads)\n",
                options.threads);
  } else {
    std::printf("\n  (wall seconds over the whole sweep, sequential)\n");
  }
  std::printf("\nkey ratios — paper: PROP ~4.6x FM-bucket per run; FM-tree "
              "~2-3x FM-bucket;\nPROP total comparable to FM100-bucket and "
              "LA-2(x40), much cheaper than MELO/PARABOLI.\n");
  return tracker.finish(session);
}
