#include "spectral/melo.h"

#include <gtest/gtest.h>

#include "partition/validate.h"
#include "testutil.h"

namespace prop {
namespace {

TEST(Melo, SeparatesTwoCliques) {
  const Hypergraph g = testing::chain_of_blocks(2, 10);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  MeloPartitioner melo;
  const PartitionResult r = melo.run(g, balance, 1);
  EXPECT_DOUBLE_EQ(r.cut_cost, 1.0);
  EXPECT_TRUE(validate_result(g, balance, r).ok);
}

TEST(Melo, ValidOnRandomCircuit) {
  const Hypergraph g = testing::small_random_circuit(107);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  MeloPartitioner melo;
  const PartitionResult r = melo.run(g, balance, 2);
  const ValidationReport report = validate_result(g, balance, r);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(Melo, DeterministicInSeed) {
  const Hypergraph g = testing::small_random_circuit(109);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  MeloPartitioner melo;
  EXPECT_EQ(melo.run(g, balance, 4).side, melo.run(g, balance, 4).side);
}

TEST(Melo, SingleEigenvectorDegeneratesToEig1Style) {
  const Hypergraph g = testing::chain_of_blocks(4, 6);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  MeloConfig config;
  config.num_eigenvectors = 1;
  MeloPartitioner melo(config);
  const PartitionResult r = melo.run(g, balance, 5);
  EXPECT_TRUE(validate_result(g, balance, r).ok);
  EXPECT_LE(r.cut_cost, 2.0);
}

}  // namespace
}  // namespace prop
