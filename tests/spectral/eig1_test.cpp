#include "spectral/eig1.h"

#include <gtest/gtest.h>

#include "partition/validate.h"
#include "testutil.h"

namespace prop {
namespace {

TEST(Eig1, SeparatesTwoCliques) {
  // Two dense blocks joined by one bridge net: the Fiedler vector must
  // split them apart.
  const Hypergraph g = testing::chain_of_blocks(2, 10);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Eig1Partitioner eig1;
  const PartitionResult r = eig1.run(g, balance, 1);
  EXPECT_DOUBLE_EQ(r.cut_cost, 1.0);
  EXPECT_TRUE(validate_result(g, balance, r).ok);
}

TEST(Eig1, ValidOnRandomCircuit) {
  const Hypergraph g = testing::small_random_circuit(101);
  for (const auto& balance : {BalanceConstraint::fifty_fifty(g),
                              BalanceConstraint::forty_five(g)}) {
    Eig1Partitioner eig1;
    const PartitionResult r = eig1.run(g, balance, 2);
    const ValidationReport report = validate_result(g, balance, r);
    EXPECT_TRUE(report.ok) << report.message;
  }
}

TEST(Eig1, DeterministicInSeed) {
  const Hypergraph g = testing::small_random_circuit(103);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  Eig1Partitioner eig1;
  EXPECT_EQ(eig1.run(g, balance, 7).side, eig1.run(g, balance, 7).side);
}

TEST(Eig1, HandlesChainOfManyBlocks) {
  const Hypergraph g = testing::chain_of_blocks(6, 6);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Eig1Partitioner eig1;
  const PartitionResult r = eig1.run(g, balance, 3);
  // The spectral order follows the chain, so the cut is one bridge net.
  EXPECT_LE(r.cut_cost, 2.0);
}

}  // namespace
}  // namespace prop
