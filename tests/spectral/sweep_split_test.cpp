#include "spectral/sweep_split.h"

#include <gtest/gtest.h>

#include <numeric>

#include "hypergraph/builder.h"
#include "partition/validate.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

TEST(SweepSplit, FindsObviousSplitOnChain) {
  const Hypergraph g = testing::chain_of_blocks(4, 5);  // 20 nodes
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});  // natural chain order
  const PartitionResult r = best_prefix_split(g, balance, order);
  EXPECT_DOUBLE_EQ(r.cut_cost, 1.0);  // one bridge net
  EXPECT_TRUE(validate_result(g, balance, r).ok);
}

TEST(SweepSplit, RespectsBalanceWindow) {
  const Hypergraph g = testing::chain_of_blocks(4, 5);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  const PartitionResult r = best_prefix_split(g, balance, order);
  const ValidationReport report = validate_result(g, balance, r);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(SweepSplit, ReportedCutMatchesRecomputation) {
  const Hypergraph g = testing::small_random_circuit(91);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(91);
  std::vector<NodeId> order(g.num_nodes());
  std::iota(order.begin(), order.end(), NodeId{0});
  rng.shuffle(order);
  const PartitionResult r = best_prefix_split(g, balance, order);
  EXPECT_TRUE(validate_result(g, balance, r).ok);
}

TEST(SweepSplit, PicksBestAmongFeasiblePrefixes) {
  // Chain 0-1-2-3-4-5 with a heavy net in the middle: with a wide window
  // the sweep must avoid cutting the heavy net.
  HypergraphBuilder b(6);
  b.add_net({0, 1});
  b.add_net({1, 2});
  b.add_net({2, 3}, 10.0);
  b.add_net({3, 4});
  b.add_net({4, 5});
  const Hypergraph g = std::move(b).build();
  const BalanceConstraint balance = BalanceConstraint::fraction(g, 0.3, 0.7);
  std::vector<NodeId> order = {0, 1, 2, 3, 4, 5};
  const PartitionResult r = best_prefix_split(g, balance, order);
  EXPECT_DOUBLE_EQ(r.cut_cost, 1.0);
}

TEST(SweepSplit, WrongSizeOrderThrows) {
  const Hypergraph g = testing::chain_of_blocks(2, 4);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  const std::vector<NodeId> short_order = {0, 1, 2};
  EXPECT_THROW(best_prefix_split(g, balance, short_order),
               std::invalid_argument);
}

}  // namespace
}  // namespace prop
