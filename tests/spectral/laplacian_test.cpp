#include "spectral/laplacian.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"

namespace prop {
namespace {

TEST(Laplacian, TwoPinNetIsUnitEdge) {
  HypergraphBuilder b(2);
  b.add_net({0, 1});
  const Hypergraph g = std::move(b).build();
  const CsrMatrix L = clique_laplacian(g);
  const std::vector<double> x = {1.0, -1.0};
  std::vector<double> y(2);
  L.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.0);   // L = [[1,-1],[-1,1]]
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Laplacian, RowSumsAreZero) {
  HypergraphBuilder b(5);
  b.add_net({0, 1, 2});
  b.add_net({2, 3, 4}, 2.0);
  b.add_net({0, 4});
  const Hypergraph g = std::move(b).build();
  const CsrMatrix L = clique_laplacian(g);
  const std::vector<double> ones(5, 1.0);
  std::vector<double> y(5);
  L.multiply(ones, y);
  for (const double v : y) EXPECT_NEAR(v, 0.0, 1e-12);
}

TEST(Laplacian, CliqueWeightIsCostOverSizeMinusOne) {
  HypergraphBuilder b(3);
  b.add_net({0, 1, 2}, 4.0);  // pairwise weight 4/2 = 2
  const Hypergraph g = std::move(b).build();
  const CsrMatrix L = clique_laplacian(g);
  const auto d = L.diagonal();
  // Each node connects to 2 others with weight 2 -> degree 4.
  for (const double v : d) EXPECT_DOUBLE_EQ(v, 4.0);
}

TEST(Laplacian, QuadraticFormEqualsWeightedCutOnBipartition) {
  // x in {0,1}^n: x^T L x = sum over clique edges crossing the cut.
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({1, 2});
  b.add_net({2, 3});
  const Hypergraph g = std::move(b).build();
  const CsrMatrix L = clique_laplacian(g);
  const std::vector<double> x = {0.0, 0.0, 1.0, 1.0};
  std::vector<double> y(4);
  L.multiply(x, y);
  double quad = 0.0;
  for (int i = 0; i < 4; ++i) quad += x[static_cast<std::size_t>(i)] * y[static_cast<std::size_t>(i)];
  EXPECT_DOUBLE_EQ(quad, 1.0);  // only edge {1,2} crosses
}

TEST(Laplacian, SinglePinNetsIgnored) {
  HypergraphBuilder b(2);
  b.add_net({0});
  b.add_net({0, 1});
  const Hypergraph g = std::move(b).build();
  const CsrMatrix L = clique_laplacian(g);
  EXPECT_EQ(L.nnz(), 4u);
}

TEST(Adjacency, MatchesLaplacianOffDiagonal) {
  HypergraphBuilder b(3);
  b.add_net({0, 1, 2});
  const Hypergraph g = std::move(b).build();
  const CsrMatrix W = clique_adjacency(g);
  const auto d = W.diagonal();
  for (const double v : d) EXPECT_DOUBLE_EQ(v, 0.0);
  const std::vector<double> ones(3, 1.0);
  std::vector<double> y(3);
  W.multiply(ones, y);
  for (const double v : y) EXPECT_DOUBLE_EQ(v, 1.0);  // 2 neighbors * 0.5
}

}  // namespace
}  // namespace prop
