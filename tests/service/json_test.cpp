#include "service/json.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace prop::service {
namespace {

std::string reserialize(const std::string& text) {
  std::string error;
  const auto v = json_parse(text, &error);
  EXPECT_TRUE(v.has_value()) << error;
  return v ? v->dump() : "";
}

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(json_parse("null")->is_null());
  EXPECT_TRUE(json_parse("true")->as_bool());
  EXPECT_FALSE(json_parse("false")->as_bool());
  EXPECT_EQ(json_parse("42")->as_int64(), 42);
  EXPECT_DOUBLE_EQ(json_parse("-2.5e3")->as_double(), -2500.0);
  EXPECT_EQ(json_parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, PreservesNumberLexemes) {
  // 64-bit seeds above 2^53 and precision-17 doubles must survive a
  // parse -> dump round trip byte-for-byte; a double-based tree would
  // corrupt both.
  EXPECT_EQ(reserialize("18446744073709551615"), "18446744073709551615");
  EXPECT_EQ(reserialize("0.020850935000000001"), "0.020850935000000001");
  EXPECT_EQ(reserialize("-0.0"), "-0.0");
  EXPECT_EQ(reserialize("1e308"), "1e308");
  EXPECT_EQ(json_parse("18446744073709551615")->as_uint64(),
            18446744073709551615ull);
}

TEST(Json, PreservesObjectMemberOrder) {
  const std::string text = "{\"z\":1,\"a\":2,\"m\":[3,{\"k\":null}]}";
  EXPECT_EQ(reserialize(text), text);
}

TEST(Json, DecodesEscapes) {
  const auto v = json_parse(R"("a\"b\\c\/d\n\t\u0041\u00e9")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "a\"b\\c/d\n\tA\xc3\xa9");
}

TEST(Json, EscapeMatchesStatsJsonWriter) {
  // json_escape must agree with write_stats_json's escaping so service
  // output re-serializes byte-identically.
  EXPECT_EQ(json_escape("a\"b\\c\nd\te\rf"), "a\\\"b\\\\c\\nd\\te\\rf");
  EXPECT_EQ(json_escape(std::string("x\x01y", 3)), "x\\u0001y");
}

TEST(Json, EscapedStringsRoundTrip) {
  JsonValue v = JsonValue::string("quote\" slash\\ control\x02 end");
  const std::string dumped = v.dump();
  const auto back = json_parse(dumped);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->as_string(), v.as_string());
  EXPECT_EQ(back->dump(), dumped);
}

TEST(Json, RejectsMalformedCorpus) {
  const char* corpus[] = {
      "",           "{",          "[1,]",       "{\"a\":}",
      "{\"a\" 1}",  "tru",        "1.",
      "\"unterminated", "\"bad\\q\"", "\"\\ud800\"",  // lone surrogate
      "{\"a\":1}extra", "[1] [2]",  "nan",        "+1",
      "\x01",       "\"raw\ncontrol\"",
  };
  for (const char* text : corpus) {
    std::string error;
    EXPECT_FALSE(json_parse(text, &error).has_value())
        << "accepted: " << text;
    EXPECT_EQ(error.rfind("json:", 0), 0u) << error;
  }
}

TEST(Json, EnforcesDepthCap) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += "[";
  for (int i = 0; i < 100; ++i) deep += "]";
  std::string error;
  EXPECT_FALSE(json_parse(deep, &error).has_value());
  EXPECT_NE(error.find("deep"), std::string::npos) << error;

  std::string ok = "[[[[[[[[[[1]]]]]]]]]]";  // well under the cap
  EXPECT_TRUE(json_parse(ok).has_value());
}

TEST(Json, BuildersAndAccessors) {
  JsonValue obj = JsonValue::object();
  obj.set("n", JsonValue::number(static_cast<std::int64_t>(-7)));
  obj.set("u", JsonValue::number(static_cast<std::uint64_t>(1) << 60));
  obj.set("d", JsonValue::number(0.5));
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::boolean(true));
  arr.push_back(JsonValue::null());
  obj.set("a", std::move(arr));

  EXPECT_EQ(obj.find("n")->as_int64(), -7);
  EXPECT_EQ(obj.find("u")->as_uint64(), std::uint64_t{1} << 60);
  EXPECT_DOUBLE_EQ(obj.find("d")->as_double(), 0.5);
  EXPECT_EQ(obj.find("a")->items().size(), 2u);
  EXPECT_EQ(obj.find("missing"), nullptr);

  const std::string dumped = obj.dump();
  EXPECT_EQ(reserialize(dumped), dumped);
}

TEST(Json, WrongTypeBuildersAreInert) {
  JsonValue num = JsonValue::number(1.0);
  num.set("k", JsonValue::null());   // no-op, not UB
  num.push_back(JsonValue::null());  // no-op
  EXPECT_TRUE(num.is_number());
  EXPECT_TRUE(num.members().empty());
  EXPECT_TRUE(num.items().empty());
}

}  // namespace
}  // namespace prop::service
