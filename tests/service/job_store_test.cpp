#include "service/job_store.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace prop::service {
namespace {

TEST(JobStore, InsertRejectsDuplicates) {
  JobStore store;
  EXPECT_TRUE(store.try_insert("a"));
  EXPECT_FALSE(store.try_insert("a"));
  EXPECT_TRUE(store.try_insert("b"));
  EXPECT_EQ(store.size(), 2u);
}

TEST(JobStore, UpdateAndFind) {
  JobStore store;
  ASSERT_TRUE(store.try_insert("a"));
  EXPECT_TRUE(store.update("a", [](JobRecord& r) {
    r.state = JobState::kRunning;
    r.attempts = 2;
    r.final_status = Status::failure(StatusCode::kInjectedFault, "x");
  }));
  const auto record = store.find("a");
  ASSERT_TRUE(record.has_value());
  EXPECT_EQ(record->state, JobState::kRunning);
  EXPECT_EQ(record->attempts, 2);
  EXPECT_EQ(record->final_status.code, StatusCode::kInjectedFault);

  EXPECT_FALSE(store.update("missing", [](JobRecord&) {}));
  EXPECT_FALSE(store.find("missing").has_value());
}

TEST(JobStore, MarkRespondedIsAnExactlyOnceGate) {
  JobStore store;
  ASSERT_TRUE(store.try_insert("a"));
  EXPECT_EQ(store.mark_responded("a"), 1);  // first responder wins
  EXPECT_EQ(store.mark_responded("a"), 2);  // duplicate — caller suppresses
  EXPECT_EQ(store.mark_responded("unknown"), 0);
}

TEST(JobStore, StateNamesAreStable) {
  EXPECT_STREQ(to_string(JobState::kQueued), "queued");
  EXPECT_STREQ(to_string(JobState::kRunning), "running");
  EXPECT_STREQ(to_string(JobState::kDone), "done");
  EXPECT_STREQ(to_string(JobState::kFailed), "failed");
  EXPECT_STREQ(to_string(JobState::kShed), "shed");
  EXPECT_STREQ(to_string(JobState::kInvalid), "invalid");
}

TEST(JobStore, ForEachVisitsEveryRecord) {
  JobStore store;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(store.try_insert("job" + std::to_string(i)));
  }
  int visited = 0;
  store.for_each([&](const std::string& id, const JobRecord&) {
    EXPECT_EQ(id.rfind("job", 0), 0u);
    ++visited;
  });
  EXPECT_EQ(visited, 100);
}

/// Concurrency hammer (the TSan smoke target): many threads inserting,
/// updating and racing to respond.  The invariant under test: every id is
/// inserted exactly once and exactly one thread wins mark_responded.
TEST(JobStore, ConcurrentHammerKeepsExactlyOnce) {
  JobStore store;
  constexpr int kJobs = 400;
  constexpr int kThreads = 8;

  std::atomic<int> insert_wins{0};
  std::atomic<int> respond_wins{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kJobs; ++i) {
        const std::string id = "job" + std::to_string(i);
        if (store.try_insert(id)) insert_wins.fetch_add(1);
        store.update(id, [t](JobRecord& r) {
          r.state = JobState::kRunning;
          r.attempts = t + 1;
        });
        if (store.mark_responded(id) == 1) respond_wins.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(insert_wins.load(), kJobs);
  EXPECT_EQ(respond_wins.load(), kJobs);
  EXPECT_EQ(store.size(), static_cast<std::size_t>(kJobs));
  store.for_each([](const std::string&, const JobRecord& r) {
    EXPECT_EQ(r.responses, 8);  // every thread marked, exactly one won
  });
}

}  // namespace
}  // namespace prop::service
