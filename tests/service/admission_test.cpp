#include "service/admission.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

namespace prop::service {
namespace {

JobSpec job(std::string id, std::string tenant = "default", int priority = 0) {
  JobSpec spec;
  spec.id = std::move(id);
  spec.tenant = std::move(tenant);
  spec.priority = priority;
  return spec;
}

TEST(Admission, ShedsAtDepthLimitWithStructuredStatus) {
  AdmissionQueue q(AdmissionConfig{/*max_depth=*/2, /*aging_interval=*/4});
  EXPECT_TRUE(q.push(job("a")).ok());
  EXPECT_TRUE(q.push(job("b")).ok());

  const Status shed = q.push(job("c"));
  EXPECT_EQ(shed.code, StatusCode::kShedOverload);
  EXPECT_NE(shed.message.find("limit 2"), std::string::npos) << shed.message;
  EXPECT_EQ(q.depth(), 2u);
  EXPECT_EQ(q.shed_count(), 1u);
  EXPECT_EQ(q.max_depth_seen(), 2u);

  // Popping frees a slot: admission resumes.
  (void)q.pop();
  EXPECT_TRUE(q.push(job("d")).ok());
  EXPECT_EQ(q.shed_count(), 1u);
}

TEST(Admission, FifoAtEqualPriority) {
  AdmissionQueue q(AdmissionConfig{8, 4});
  ASSERT_TRUE(q.push(job("first")).ok());
  ASSERT_TRUE(q.push(job("second")).ok());
  ASSERT_TRUE(q.push(job("third")).ok());
  EXPECT_EQ(q.pop().id, "first");
  EXPECT_EQ(q.pop().id, "second");
  EXPECT_EQ(q.pop().id, "third");
}

TEST(Admission, HigherPriorityJumpsTheQueue) {
  AdmissionQueue q(AdmissionConfig{8, 4});
  ASSERT_TRUE(q.push(job("low", "t", 0)).ok());
  ASSERT_TRUE(q.push(job("high", "t", 5)).ok());
  ASSERT_TRUE(q.push(job("mid", "t", 2)).ok());
  EXPECT_EQ(q.pop().id, "high");
  EXPECT_EQ(q.pop().id, "mid");
  EXPECT_EQ(q.pop().id, "low");
}

TEST(Admission, AgingPreventsStarvation) {
  // aging_interval=2: every 2 admissions boost effective priority by 1.
  // After enough arrivals the priority-0 job ties the priority-1 backlog on
  // effective priority, and the FIFO tie-break (oldest seq) then serves it —
  // a permanently starved job is impossible.
  AdmissionQueue q(AdmissionConfig{/*max_depth=*/64, /*aging_interval=*/2});
  ASSERT_TRUE(q.push(job("starved", "old", 0)).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(q.push(job("fresh" + std::to_string(i), "new", 1)).ok());
  }
  // seqs: starved=1, fresh0..4=2..6, logical now=7.  starved: 0 + 6/2 = 3;
  // fresh0: 1 + 5/2 = 3.  Tied -> lowest seq wins.
  EXPECT_EQ(q.pop().id, "starved");
}

TEST(Admission, TenantFairnessBreaksTies) {
  AdmissionQueue q(AdmissionConfig{64, 1000});  // aging effectively off
  // alpha floods, beta submits one job later; after alpha is served once,
  // beta's equal-priority job must be preferred over alpha's backlog.
  ASSERT_TRUE(q.push(job("a1", "alpha")).ok());
  ASSERT_TRUE(q.push(job("a2", "alpha")).ok());
  ASSERT_TRUE(q.push(job("b1", "beta")).ok());
  ASSERT_TRUE(q.push(job("a3", "alpha")).ok());

  EXPECT_EQ(q.pop().id, "a1");  // FIFO among never-served tenants
  EXPECT_EQ(q.pop().id, "b1");  // beta never served, alpha just was
  EXPECT_EQ(q.pop().id, "a2");
  EXPECT_EQ(q.pop().id, "a3");
}

TEST(Admission, PriorityBeatsFairness) {
  AdmissionQueue q(AdmissionConfig{64, 1000});
  ASSERT_TRUE(q.push(job("a1", "alpha", 0)).ok());
  ASSERT_TRUE(q.push(job("a2", "alpha", 9)).ok());
  ASSERT_TRUE(q.push(job("b1", "beta", 0)).ok());
  EXPECT_EQ(q.pop().id, "a2");  // fairness only breaks priority ties
}

TEST(Admission, PopOnEmptyIsAServerBug) {
  AdmissionQueue q(AdmissionConfig{4, 4});
  EXPECT_THROW((void)q.pop(), std::logic_error);
}

TEST(Admission, ScheduleIsDeterministic) {
  // The schedule is a pure function of the push/pop sequence (logical
  // admission counter, no wall clock): two identical replays pop
  // identically.
  const auto replay = [] {
    AdmissionQueue q(AdmissionConfig{16, 3});
    std::vector<std::string> order;
    int id = 0;
    for (int round = 0; round < 5; ++round) {
      for (int i = 0; i < 3; ++i) {
        (void)q.push(job("j" + std::to_string(id++),
                         i == 0 ? "alpha" : "beta", i % 2 ? 1 : 0));
      }
      order.push_back(q.pop().id);
    }
    while (q.depth() > 0) order.push_back(q.pop().id);
    return order;
  };
  EXPECT_EQ(replay(), replay());
}

TEST(Admission, BoundsTenantHistory) {
  // A stream of one-shot tenant names must not grow memory without limit;
  // eviction must also not crash or break subsequent scheduling.
  AdmissionQueue q(AdmissionConfig{4, 4});
  for (int i = 0; i < 3000; ++i) {
    ASSERT_TRUE(q.push(job("j" + std::to_string(i),
                           "tenant" + std::to_string(i)))
                    .ok());
    EXPECT_EQ(q.pop().id, "j" + std::to_string(i));
  }
  ASSERT_TRUE(q.push(job("last", "alpha")).ok());
  EXPECT_EQ(q.pop().id, "last");
}

}  // namespace
}  // namespace prop::service
