// End-to-end tests of the job server: exactly-once responses, admission
// shedding, deadline budgets, retry accounting, panic isolation and the
// load-independence determinism contract (DESIGN.md §4h).
#include "service/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "hypergraph/mcnc_suite.h"
#include "partition/balance.h"
#include "partition/runner.h"
#include "service/algo_factory.h"
#include "service/json.h"

namespace prop::service {
namespace {

/// Captures every response line; the server serializes sink calls, so no
/// extra locking is needed as long as reads happen after drain().
class Harness {
 public:
  explicit Harness(ServerConfig config)
      : server_(std::move(config), [this](const std::string& line) {
          responses_.push_back(line);
        }) {}

  Server& server() { return server_; }

  bool line(const std::string& text) { return server_.handle_line(text); }

  const std::vector<std::string>& responses() {
    server_.drain();
    return responses_;
  }

  /// Parsed responses keyed by id ("" for id-less protocol errors).  Fails
  /// the test on duplicate ids — the exactly-once contract.
  std::map<std::string, JsonValue> by_id() {
    std::map<std::string, JsonValue> out;
    for (const std::string& text : responses()) {
      std::string error;
      const auto v = json_parse(text, &error);
      EXPECT_TRUE(v.has_value()) << error << ": " << text;
      if (!v) continue;
      std::string id;
      if (const JsonValue* idv = v->find("id")) id = idv->as_string();
      EXPECT_EQ(out.count(id), 0u) << "duplicate response for id '" << id
                                   << "': " << text;
      out.emplace(std::move(id), *v);
    }
    return out;
  }

 private:
  std::vector<std::string> responses_;
  Server server_;  // after responses_: destroyed (and drained) first
};

std::string field(const JsonValue& v, const char* key) {
  const JsonValue* f = v.find(key);
  return f ? f->as_string() : "<missing>";
}

std::string status_code_of(const JsonValue& v) {
  const JsonValue* status = v.find("status");
  return status ? field(*status, "code") : "<missing>";
}

TEST(Server, RunsAJobAndMatchesDirectRunByteForByte) {
  ServerConfig config;
  config.workers = 2;
  Harness h(config);
  ASSERT_TRUE(h.line("{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"balu\","
                     "\"algo\":\"prop\",\"runs\":2,\"seed\":7,"
                     "\"stats_timing\":false}"));
  const auto responses = h.by_id();
  ASSERT_EQ(responses.size(), 1u);
  const JsonValue& r = responses.at("j1");
  EXPECT_EQ(field(r, "state"), "done");
  EXPECT_EQ(status_code_of(r), "ok");
  EXPECT_EQ(r.find("attempts")->as_int64(), 1);
  EXPECT_EQ(r.find("queue_ms"), nullptr);  // stats_timing=false: no timing

  // The embedded result must be byte-identical to a direct sequential
  // run_many with the same spec — the service adds no nondeterminism.
  const Hypergraph g = make_mcnc_circuit("balu");
  const auto algo = make_algo("prop");
  const MultiRunResult direct = run_many(
      *algo, g, BalanceConstraint::forty_five(g), 2, 7, RunnerOptions{});
  std::ostringstream expected;
  StatsJsonOptions json_options;
  json_options.include_timing = false;
  write_stats_json(expected, "balu", algo->name(), direct, json_options);

  ASSERT_NE(r.find("result"), nullptr);
  EXPECT_EQ(r.find("result")->dump(), expected.str());
}

TEST(Server, MalformedRequestCorpusNeverKillsTheServer) {
  ServerConfig config;
  config.workers = 1;
  config.max_request_bytes = 256;
  Harness h(config);

  const std::string oversized =
      "{\"op\":\"submit\",\"id\":\"big\",\"hgr\":\"" +
      std::string(300, '1') + "\"}";
  const char* corpus[] = {
      "this is not json",
      "[1,2,3]",
      "{\"op\":\"frobnicate\"}",
      "{\"op\":\"submit\"}",                                  // missing id
      "{\"op\":\"submit\",\"id\":\"a\",\"bogus_field\":1}",   // unknown field
      "{\"op\":\"submit\",\"id\":\"b\"}",                     // no circuit/hgr
      "{\"op\":\"submit\",\"id\":\"c\",\"circuit\":\"balu\","
      "\"hgr\":\"1 2\\n1 2\\n\"}",                            // both sources
      "{\"op\":\"submit\",\"id\":\"d\",\"circuit\":\"nope\"}",
      "{\"op\":\"submit\",\"id\":\"e\",\"circuit\":\"balu\","
      "\"algo\":\"quantum\"}",
      "{\"op\":\"submit\",\"id\":\"f\",\"circuit\":\"balu\","
      "\"balance\":\"60-40\"}",
  };
  for (const char* text : corpus) EXPECT_TRUE(h.line(text));
  EXPECT_TRUE(h.line(oversized));

  // Every rejection is structured, and the server still takes work.
  ASSERT_TRUE(h.line("{\"op\":\"submit\",\"id\":\"ok\",\"circuit\":\"balu\","
                     "\"runs\":1,\"seed\":3,\"stats_timing\":false}"));
  h.server().drain();

  int invalid_responses = 0;
  bool ok_done = false;
  for (const std::string& text : h.responses()) {
    const auto v = json_parse(text);
    ASSERT_TRUE(v.has_value()) << text;
    if (field(*v, "id") == "ok") {
      ok_done = field(*v, "state") == "done";
      continue;
    }
    EXPECT_EQ(field(*v, "state"), "invalid") << text;
    EXPECT_EQ(status_code_of(*v), "invalid_request") << text;
    ++invalid_responses;
  }
  EXPECT_EQ(invalid_responses, 11);
  EXPECT_TRUE(ok_done);
  EXPECT_EQ(h.server().stats().invalid, 11u);
}

TEST(Server, MalformedHgrPayloadIsAStructuredFailure) {
  ServerConfig config;
  config.workers = 1;
  Harness h(config);
  // Parses as a spec, fails at ingest: truncated net list.
  ASSERT_TRUE(h.line("{\"op\":\"submit\",\"id\":\"bad\","
                     "\"hgr\":\"2 4\\n1 2\\n\",\"stats_timing\":false}"));
  // A valid inline payload right after must work: the worker survived.
  ASSERT_TRUE(h.line("{\"op\":\"submit\",\"id\":\"good\",\"algo\":\"fm\","
                     "\"hgr\":\"2 4\\n1 2\\n2 3 4\\n\",\"runs\":1,"
                     "\"stats_timing\":false}"));
  const auto responses = h.by_id();
  ASSERT_EQ(responses.size(), 2u);
  EXPECT_EQ(field(responses.at("bad"), "state"), "failed");
  EXPECT_EQ(status_code_of(responses.at("bad")), "invalid_request");
  EXPECT_EQ(field(responses.at("good"), "state"), "done");
}

TEST(Server, HgrLimitsRejectOversizedPayloads) {
  ServerConfig config;
  config.workers = 1;
  config.hgr_limits.max_nodes = 3;
  config.hgr_limits.max_bytes = 64;
  Harness h(config);
  // 4 nodes > limit 3: enforced at ingest, structured failure.
  ASSERT_TRUE(h.line("{\"op\":\"submit\",\"id\":\"nodes\","
                     "\"hgr\":\"2 4\\n1 2\\n2 3 4\\n\"}"));
  // Payload bigger than max_bytes: rejected before it even queues.
  const std::string big(100, '1');
  ASSERT_TRUE(h.line("{\"op\":\"submit\",\"id\":\"bytes\",\"hgr\":\"" + big +
                     "\"}"));
  const auto responses = h.by_id();
  const JsonValue& nodes = responses.at("nodes");
  EXPECT_EQ(field(nodes, "state"), "failed");
  EXPECT_EQ(status_code_of(nodes), "invalid_request");
  EXPECT_NE(nodes.find("status")->find("message")->as_string().find("limit"),
            std::string::npos);
  const JsonValue& bytes = responses.at("bytes");
  EXPECT_EQ(field(bytes, "state"), "invalid");
  EXPECT_EQ(status_code_of(bytes), "invalid_request");
}

TEST(Server, DuplicateIdIsRejectedWithoutDisturbingTheOriginal) {
  ServerConfig config;
  config.workers = 1;
  Harness h(config);
  const std::string submit =
      "{\"op\":\"submit\",\"id\":\"dup\",\"circuit\":\"balu\",\"runs\":1,"
      "\"seed\":5,\"stats_timing\":false}";
  ASSERT_TRUE(h.line(submit));
  ASSERT_TRUE(h.line(submit));  // same id again
  h.server().drain();

  int done = 0;
  int dup_rejections = 0;
  for (const std::string& text : h.responses()) {
    const auto v = json_parse(text);
    ASSERT_TRUE(v.has_value());
    if (field(*v, "state") == "done") ++done;
    if (field(*v, "state") == "invalid") {
      EXPECT_NE(v->find("status")->find("message")->as_string().find(
                    "duplicate"),
                std::string::npos);
      ++dup_rejections;
    }
  }
  EXPECT_EQ(done, 1);
  EXPECT_EQ(dup_rejections, 1);
}

TEST(Server, ShedsPastTheQueueLimitWithStructuredStatus) {
  ServerConfig config;
  config.workers = 1;
  config.queue_limit = 2;
  Harness h(config);
  // Job 0 occupies the single worker for a while; 2 more fit the queue; the
  // rest must shed immediately with kShedOverload.
  ASSERT_TRUE(h.line("{\"op\":\"submit\",\"id\":\"slow\","
                     "\"circuit\":\"struct\",\"runs\":40,\"seed\":1,"
                     "\"stats_timing\":false}"));
  constexpr int kExtra = 6;
  for (int i = 0; i < kExtra; ++i) {
    ASSERT_TRUE(h.line("{\"op\":\"submit\",\"id\":\"q" + std::to_string(i) +
                       "\",\"circuit\":\"balu\",\"runs\":1,\"seed\":2,"
                       "\"stats_timing\":false}"));
  }
  const auto responses = h.by_id();
  ASSERT_EQ(responses.size(), static_cast<std::size_t>(1 + kExtra));

  int shed = 0;
  int completed = 0;
  for (const auto& [id, v] : responses) {
    const std::string state = field(v, "state");
    if (state == "shed") {
      EXPECT_EQ(status_code_of(v), "shed_overload");
      EXPECT_NE(v.find("status")->find("message")->as_string().find("limit"),
                std::string::npos);
      ++shed;
    } else {
      EXPECT_EQ(state, "done") << id;
      ++completed;
    }
  }
  // Exact split depends on how fast the worker drains, but overload is
  // guaranteed: at most 1 running + 2 queued when the burst lands.
  EXPECT_GE(shed, kExtra - 2);
  EXPECT_EQ(shed + completed, 1 + kExtra);
  EXPECT_EQ(h.server().stats().shed, static_cast<std::uint64_t>(shed));
}

TEST(Server, DeadlineReturnsBestSoFarWithBudgetExhausted) {
  ServerConfig config;
  config.workers = 1;
  Harness h(config);
  // s15850 (10470 nodes) cannot finish 5 runs in 2ms; the deadline starts
  // at execution and the engines return their best-so-far at the first
  // poll, so the response still carries a result.
  ASSERT_TRUE(h.line("{\"op\":\"submit\",\"id\":\"slow\","
                     "\"circuit\":\"s15850\",\"runs\":5,\"seed\":1,"
                     "\"deadline_ms\":2,\"stats_timing\":false}"));
  const auto responses = h.by_id();
  const JsonValue& r = responses.at("slow");
  EXPECT_EQ(field(r, "state"), "done");
  EXPECT_EQ(status_code_of(r), "budget_exhausted");
  ASSERT_NE(r.find("result"), nullptr);
  EXPECT_EQ(field(*r.find("result"), "outcome"), "budget_exhausted");
}

TEST(Server, RetriesTransientFaultsWithAccounting) {
  ServerConfig config;
  config.workers = 1;
  config.inject = "validate-fail";  // every validation fails, every attempt
  config.retry_backoff_ms = 0.0;    // keep the test fast
  Harness h(config);
  ASSERT_TRUE(h.line("{\"op\":\"submit\",\"id\":\"r\",\"circuit\":\"balu\","
                     "\"runs\":1,\"seed\":9,\"max_retries\":2,"
                     "\"stats_timing\":false}"));
  const auto responses = h.by_id();
  const JsonValue& r = responses.at("r");
  EXPECT_EQ(field(r, "state"), "failed");
  EXPECT_EQ(status_code_of(r), "injected_fault");
  EXPECT_EQ(r.find("attempts")->as_int64(), 3);  // initial + 2 retries
  EXPECT_EQ(h.server().stats().retries, 2u);
}

TEST(Server, InjectedPanicIsIsolatedAndClassifiedTransient) {
  ServerConfig config;
  config.workers = 2;
  config.inject = "serve-exec";  // every attempt throws inside the worker
  config.retry_backoff_ms = 0.0;
  Harness h(config);
  ASSERT_TRUE(h.line("{\"op\":\"submit\",\"id\":\"p0\",\"circuit\":\"balu\","
                     "\"runs\":1,\"seed\":1,\"max_retries\":0,"
                     "\"stats_timing\":false}"));
  ASSERT_TRUE(h.line("{\"op\":\"submit\",\"id\":\"p1\",\"circuit\":\"balu\","
                     "\"runs\":1,\"seed\":2,\"max_retries\":1,"
                     "\"stats_timing\":false}"));
  const auto responses = h.by_id();
  ASSERT_EQ(responses.size(), 2u);  // both jobs answered: workers survived

  const JsonValue& p0 = responses.at("p0");
  EXPECT_EQ(field(p0, "state"), "failed");
  EXPECT_EQ(status_code_of(p0), "injected_fault");
  EXPECT_EQ(p0.find("attempts")->as_int64(), 1);  // max_retries=0: no retry

  const JsonValue& p1 = responses.at("p1");
  EXPECT_EQ(field(p1, "state"), "failed");
  EXPECT_EQ(p1.find("attempts")->as_int64(), 2);
  EXPECT_NE(p1.find("status")->find("message")->as_string().find("serve-exec"),
            std::string::npos);

  // And the server still serves clean work (fresh harness shares nothing).
  EXPECT_TRUE(h.line("{\"op\":\"stats\"}"));
}

TEST(Server, ResponsesAreByteIdenticalAcrossWorkerCountsAndLoad) {
  const auto run_fleet = [](int workers) {
    ServerConfig config;
    config.workers = workers;
    config.queue_limit = 64;  // high enough that nothing sheds
    config.inject = "validate-fail~0.3,serve-exec~0.2";  // chaos on
    config.retry_backoff_ms = 0.0;
    Harness h(config);
    const char* algos[] = {"prop", "fm", "la2"};
    for (int i = 0; i < 12; ++i) {
      const std::string spec =
          "{\"op\":\"submit\",\"id\":\"job" + std::to_string(i) +
          "\",\"tenant\":\"t" + std::to_string(i % 3) +
          "\",\"priority\":" + std::to_string(i % 2) +
          ",\"circuit\":\"balu\",\"algo\":\"" + std::string(algos[i % 3]) +
          "\",\"runs\":2,\"seed\":" + std::to_string(100 + i) +
          ",\"max_retries\":1,\"stats_timing\":false}";
      EXPECT_TRUE(h.line(spec));
    }
    std::map<std::string, std::string> out;
    for (const auto& [id, v] : h.by_id()) out[id] = v.dump();
    return out;
  };
  const auto one = run_fleet(1);
  const auto four = run_fleet(4);
  ASSERT_EQ(one.size(), 12u);
  EXPECT_EQ(one, four);  // same bytes regardless of scheduling
}

TEST(Server, StatsOpReportsCounters) {
  ServerConfig config;
  config.workers = 1;
  Harness h(config);
  ASSERT_TRUE(h.line("{\"op\":\"submit\",\"id\":\"s\",\"circuit\":\"balu\","
                     "\"runs\":1,\"stats_timing\":false}"));
  h.server().drain();
  ASSERT_TRUE(h.line("{\"op\":\"stats\"}"));
  const auto responses = h.responses();
  const auto stats = json_parse(responses.back());
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(field(*stats, "op"), "stats");
  EXPECT_EQ(stats->find("submitted")->as_int64(), 1);
  EXPECT_EQ(stats->find("accepted")->as_int64(), 1);
  EXPECT_EQ(stats->find("done")->as_int64(), 1);
  EXPECT_EQ(stats->find("responses")->as_int64(), 1);
}

TEST(Server, ReturnPartitionIncludesSideVector) {
  ServerConfig config;
  config.workers = 1;
  Harness h(config);
  ASSERT_TRUE(h.line("{\"op\":\"submit\",\"id\":\"p\",\"circuit\":\"balu\","
                     "\"runs\":1,\"seed\":4,\"return_partition\":true,"
                     "\"stats_timing\":false}"));
  const auto responses = h.by_id();
  const JsonValue* partition = responses.at("p").find("partition");
  ASSERT_NE(partition, nullptr);
  const auto side = decode_side(partition->as_string());
  ASSERT_TRUE(side.has_value());
  EXPECT_EQ(side->size(), make_mcnc_circuit("balu").num_nodes());
}

}  // namespace
}  // namespace prop::service
