// Satellite contract: the service wire encodings of the runtime types are
// stable — serialize -> parse -> re-serialize is byte-identical.  Anything
// that breaks these tests breaks recorded soak logs and every client.
#include "service/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/run_context.h"
#include "runtime/status.h"
#include "service/json.h"

namespace prop::service {
namespace {

/// serialize -> parse -> re-serialize must reproduce the exact bytes.
void expect_stable(const JsonValue& v, const std::string& label) {
  const std::string first = v.dump();
  std::string error;
  const auto parsed = json_parse(first, &error);
  ASSERT_TRUE(parsed.has_value()) << label << ": " << error;
  EXPECT_EQ(parsed->dump(), first) << label;
}

TEST(WireRoundTrip, Status) {
  const Status cases[] = {
      Status::success(),
      Status::failure(StatusCode::kBudgetExhausted, "deadline hit"),
      Status::failure(StatusCode::kInjectedFault, "at serve-exec"),
      Status::failure(StatusCode::kShedOverload, "depth 64 at limit 64"),
      Status::failure(StatusCode::kInvalidRequest, "weird \"quoted\"\npayload"),
      Status::failure(StatusCode::kError, ""),
  };
  for (const Status& status : cases) {
    const JsonValue encoded = status_to_json(status);
    expect_stable(encoded, "status " + std::string(to_string(status.code)));

    std::string error;
    const auto decoded = status_from_json(encoded, &error);
    ASSERT_TRUE(decoded.has_value()) << error;
    EXPECT_EQ(decoded->code, status.code);
    EXPECT_EQ(decoded->message, status.message);
    EXPECT_EQ(status_to_json(*decoded).dump(), encoded.dump());
  }
}

TEST(WireRoundTrip, StatusRejectsUnknownCode) {
  const auto doc = json_parse("{\"code\":\"not_a_code\"}");
  ASSERT_TRUE(doc.has_value());
  std::string error;
  EXPECT_FALSE(status_from_json(*doc, &error).has_value());
  EXPECT_NE(error.find("not_a_code"), std::string::npos) << error;
}

TEST(WireRoundTrip, EveryStatusCodeNameParsesBack) {
  const StatusCode codes[] = {
      StatusCode::kOk,           StatusCode::kBudgetExhausted,
      StatusCode::kCancelled,    StatusCode::kInjectedFault,
      StatusCode::kEigensolverStalled, StatusCode::kInvalidResult,
      StatusCode::kSkipped,      StatusCode::kError,
      StatusCode::kShedOverload, StatusCode::kInvalidRequest,
  };
  for (const StatusCode code : codes) {
    const auto parsed = status_code_from_name(to_string(code));
    ASSERT_TRUE(parsed.has_value()) << to_string(code);
    EXPECT_EQ(*parsed, code);
  }
  EXPECT_FALSE(status_code_from_name("bogus").has_value());
}

TEST(WireRoundTrip, DegradationEvents) {
  const DegradationEvent single{"eig1.lanczos", "random-order-fallback",
                                "drift 3.2e-2 > bound 1e-3"};
  const JsonValue encoded = degradation_to_json(single);
  expect_stable(encoded, "degradation");
  std::string error;
  const auto decoded = degradation_from_json(encoded, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->site, single.site);
  EXPECT_EQ(decoded->action, single.action);
  EXPECT_EQ(decoded->detail, single.detail);

  const std::vector<DegradationEvent> log = {
      single,
      {"prop.gain-drift", "resync", ""},  // empty detail is omitted
  };
  const JsonValue array = degradations_to_json(log);
  expect_stable(array, "degradation array");
  const auto back = degradations_from_json(array, &error);
  ASSERT_TRUE(back.has_value()) << error;
  ASSERT_EQ(back->size(), 2u);
  EXPECT_EQ((*back)[1].site, "prop.gain-drift");
  EXPECT_TRUE((*back)[1].detail.empty());
  EXPECT_EQ(degradations_to_json(*back).dump(), array.dump());
}

TEST(WireRoundTrip, SideEncoding) {
  const std::vector<std::uint8_t> side = {0, 1, 1, 0, 1};
  EXPECT_EQ(encode_side(side), "01101");
  const auto decoded = decode_side("01101");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, side);
  // 'x' became a valid part id (33) with the base-36 extension; '!' and
  // uppercase stay invalid.
  EXPECT_FALSE(decode_side("01!01").has_value());
  EXPECT_FALSE(decode_side("01X01").has_value());
  EXPECT_TRUE(decode_side("")->empty());
}

TEST(WireRoundTrip, SideEncodingKWay) {
  // Part ids beyond 1 use base 36 ('a' = 10 ... 'z' = 35); 2-way vectors
  // stay pure 0/1 strings so recorded logs keep their exact bytes.
  const std::vector<std::uint8_t> part = {0, 1, 9, 10, 35};
  EXPECT_EQ(encode_side(part), "019az");
  const auto decoded = decode_side("019az");
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, part);
  EXPECT_FALSE(decode_side("AZ").has_value());  // uppercase is not valid
  EXPECT_FALSE(decode_side("3-1").has_value());
}

TEST(WireRoundTrip, RunOutcome) {
  RunOutcome outcome;
  outcome.status = Status::failure(StatusCode::kBudgetExhausted, "mid-pass");
  outcome.result.side = {1, 0, 0, 1};
  outcome.result.cut_cost = 12.0;
  outcome.result.passes = 3;
  outcome.wall_seconds = 0.020850935000000001;
  outcome.cpu_seconds = 0.0104254675;
  outcome.degradations.push_back({"prop.gain-drift", "resync", ""});

  ASSERT_TRUE(outcome.has_result());
  const JsonValue encoded = run_outcome_to_json(outcome);
  expect_stable(encoded, "run outcome");

  std::string error;
  const auto decoded = run_outcome_from_json(encoded, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->status.code, outcome.status.code);
  EXPECT_EQ(decoded->result.side, outcome.result.side);
  EXPECT_DOUBLE_EQ(decoded->result.cut_cost, outcome.result.cut_cost);
  EXPECT_EQ(decoded->result.passes, outcome.result.passes);
  EXPECT_DOUBLE_EQ(decoded->wall_seconds, outcome.wall_seconds);
  EXPECT_EQ(decoded->degradations.size(), 1u);
  EXPECT_EQ(run_outcome_to_json(*decoded).dump(), encoded.dump());
}

TEST(WireRoundTrip, RunOutcomeTimingGate) {
  RunOutcome outcome;
  outcome.wall_seconds = 1.5;
  RunOutcomeJsonOptions options;
  options.include_timing = false;
  const std::string dumped = run_outcome_to_json(outcome, options).dump();
  EXPECT_EQ(dumped.find("wall_seconds"), std::string::npos) << dumped;
  EXPECT_EQ(dumped.find("cpu_seconds"), std::string::npos) << dumped;
}

TEST(WireRoundTrip, JobSpec) {
  JobSpec spec;
  spec.id = "job-42";
  spec.tenant = "alpha";
  spec.priority = 3;
  spec.algo = "fm";
  spec.circuit = "balu";
  spec.runs = 7;
  spec.seed = 18446744073709551615ull;  // > 2^53: must survive verbatim
  spec.balance = "50-50";
  spec.deadline_ms = 250.5;
  spec.max_retries = 1;
  spec.stats_timing = false;
  spec.return_partition = true;
  spec.pass_threads = 4;
  spec.rounds_per_barrier = 16;
  spec.k = 8;
  spec.kway_refiner = "greedy";
  spec.kway_objective = "cut";

  const JsonValue encoded = job_spec_to_json(spec);
  expect_stable(encoded, "job spec");
  EXPECT_NE(encoded.dump().find("18446744073709551615"), std::string::npos);

  std::string error;
  const auto decoded = job_spec_from_json(encoded, &error);
  ASSERT_TRUE(decoded.has_value()) << error;
  EXPECT_EQ(decoded->id, spec.id);
  EXPECT_EQ(decoded->tenant, spec.tenant);
  EXPECT_EQ(decoded->priority, spec.priority);
  EXPECT_EQ(decoded->algo, spec.algo);
  EXPECT_EQ(decoded->circuit, spec.circuit);
  EXPECT_EQ(decoded->seed, spec.seed);
  EXPECT_EQ(decoded->balance, spec.balance);
  EXPECT_DOUBLE_EQ(decoded->deadline_ms, spec.deadline_ms);
  EXPECT_EQ(decoded->max_retries, spec.max_retries);
  EXPECT_FALSE(decoded->stats_timing);
  EXPECT_TRUE(decoded->return_partition);
  EXPECT_EQ(decoded->pass_threads, 4);
  EXPECT_EQ(decoded->rounds_per_barrier, 16);
  EXPECT_EQ(decoded->k, 8);
  EXPECT_EQ(decoded->kway_refiner, "greedy");
  EXPECT_EQ(decoded->kway_objective, "cut");
  EXPECT_EQ(job_spec_to_json(*decoded).dump(), encoded.dump());
}

TEST(WireRoundTrip, JobSpecRejectsBadInput) {
  const struct {
    const char* text;
    const char* needle;
  } corpus[] = {
      {"{\"circuit\":\"balu\"}", "id"},                      // missing id
      {"{\"id\":\"\"}", "id"},                               // empty id
      {"{\"id\":\"a\",\"deadline_Ms\":5}", "deadline_Ms"},   // typo'd field
      {"{\"id\":\"a\",\"runs\":0}", "runs"},                 // out of range
      {"{\"id\":\"a\",\"runs\":1000000}", "runs"},
      {"{\"id\":\"a\",\"priority\":\"high\"}", "priority"},  // wrong type
      {"{\"id\":\"a\",\"deadline_ms\":-1}", "deadline_ms"},
      {"{\"id\":\"a\",\"max_retries\":101}", "max_retries"},
      {"{\"id\":\"a\",\"tenant\":\"\"}", "tenant"},
      {"{\"id\":\"a\",\"k\":1}", "k"},                       // below 2-way
      {"{\"id\":\"a\",\"k\":37}", "k"},                      // > base-36 cap
      {"{\"id\":\"a\",\"pass_threads\":-1}", "pass_threads"},
      {"{\"id\":\"a\",\"pass_threads\":257}", "pass_threads"},
      {"{\"id\":\"a\",\"rounds_per_barrier\":0}", "rounds_per_barrier"},
      {"{\"id\":\"a\",\"rounds_per_barrier\":1025}", "rounds_per_barrier"},
      {"{\"id\":\"a\",\"kway_refiner\":7}", "kway_refiner"}, // wrong type
      {"[]", "object"},
  };
  for (const auto& c : corpus) {
    const auto doc = json_parse(c.text);
    ASSERT_TRUE(doc.has_value()) << c.text;
    std::string error;
    EXPECT_FALSE(job_spec_from_json(*doc, &error).has_value())
        << "accepted: " << c.text;
    EXPECT_NE(error.find(c.needle), std::string::npos)
        << c.text << " -> " << error;
  }
}

TEST(WireRoundTrip, JobSpecDefaults) {
  const auto doc = json_parse("{\"id\":\"only\"}");
  ASSERT_TRUE(doc.has_value());
  std::string error;
  const auto spec = job_spec_from_json(*doc, &error);
  ASSERT_TRUE(spec.has_value()) << error;
  EXPECT_EQ(spec->tenant, "default");
  EXPECT_EQ(spec->algo, "prop");
  EXPECT_EQ(spec->runs, 1);
  EXPECT_EQ(spec->seed, 1u);
  EXPECT_EQ(spec->balance, "45-55");
  EXPECT_DOUBLE_EQ(spec->deadline_ms, 0.0);
  EXPECT_EQ(spec->max_retries, -1);
  EXPECT_TRUE(spec->stats_timing);
  EXPECT_FALSE(spec->return_partition);
  EXPECT_EQ(spec->pass_threads, 0);
  EXPECT_EQ(spec->rounds_per_barrier, 1);
  EXPECT_EQ(spec->k, 2);
  EXPECT_EQ(spec->kway_refiner, "prop");
  EXPECT_EQ(spec->kway_objective, "connectivity");
}

/// The deepest round-trip: an actual write_stats_json document from a real
/// multi-start parses and re-serializes byte-identically through the
/// service JSON layer (the mechanism prop_serve uses to embed results).
TEST(WireRoundTrip, StatsJsonDocumentIsStable) {
  const std::string stats =
      "{\"circuit\":\"balu\",\"algo\":\"PROP\",\"outcome\":\"ok\","
      "\"best_cut\":83,\"best_seed\":13309476754707697221,"
      "\"runs_requested\":2,\"runs_attempted\":2,\"runs_failed\":0,"
      "\"run_records\":[{\"seed\":13309476754707697221,\"outcome\":\"ok\","
      "\"cut\":83,\"wall_seconds\":0.013978674000000001}],\"runs\":[]}";
  std::string error;
  const auto parsed = json_parse(stats, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->dump(), stats);
}

}  // namespace
}  // namespace prop::service
