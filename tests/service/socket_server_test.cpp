// Socket front end regression tests (DESIGN §4h): the three serving bugs —
// read() errors mistaken for EOF (EINTR must retry), a final request line
// without a trailing newline being dropped, and the response sink racing
// the accept loop on the client fd — each get an in-process AF_UNIX
// client that drives the real accept loop.
#ifndef _WIN32

#include "service/socket_server.h"

#include <gtest/gtest.h>
#include <pthread.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

namespace prop::service {
namespace {

// ---------------------------------------------------------------- LineFramer

TEST(LineFramer, SplitsChunksIntoLines) {
  LineFramer framer;
  std::vector<std::string> lines;
  const auto collect = [&lines](const std::string& line) {
    lines.push_back(line);
    return true;
  };
  // One request split across three chunks, then two requests in one chunk.
  EXPECT_TRUE(framer.feed("{\"op\":", 6, collect));
  EXPECT_TRUE(framer.feed("\"stats\"", 7, collect));
  EXPECT_TRUE(framer.feed("}\na\nb\n", 6, collect));
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "{\"op\":\"stats\"}");
  EXPECT_EQ(lines[1], "a");
  EXPECT_EQ(lines[2], "b");
  EXPECT_TRUE(framer.residual().empty());
}

TEST(LineFramer, FinishDeliversUnterminatedFinalLine) {
  LineFramer framer;
  std::vector<std::string> lines;
  const auto collect = [&lines](const std::string& line) {
    lines.push_back(line);
    return true;
  };
  EXPECT_TRUE(framer.feed("first\nlast-no-newline", 21, collect));
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(framer.residual(), "last-no-newline");
  EXPECT_TRUE(framer.finish(collect));
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "last-no-newline");
  // finish() on an empty buffer delivers nothing and reports true.
  EXPECT_TRUE(framer.finish(collect));
  EXPECT_EQ(lines.size(), 2u);
}

TEST(LineFramer, StopsEarlyAndKeepsLaterBytesBuffered) {
  LineFramer framer;
  int seen = 0;
  const auto stop_after_first = [&seen](const std::string&) {
    return ++seen < 1;  // false on the very first line
  };
  EXPECT_FALSE(framer.feed("shutdown\nnext\ntail", 18, stop_after_first));
  EXPECT_EQ(seen, 1);
  // The undelivered complete line and the partial tail stay buffered.
  EXPECT_EQ(framer.residual(), "next\ntail");
}

// ------------------------------------------------------------- socket client

/// Minimal blocking AF_UNIX client for driving the accept loop in-test.
class TestClient {
 public:
  explicit TestClient(const std::string& path) {
    fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::snprintf(addr.sun_path, sizeof(addr.sun_path), "%s", path.c_str());
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                           sizeof(addr)) == 0;
  }
  ~TestClient() {
    if (fd_ >= 0) ::close(fd_);
  }

  bool connected() const { return connected_; }

  bool send(const std::string& bytes) {
    std::size_t off = 0;
    while (off < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(n);
    }
    return true;
  }

  /// Half-close: signals EOF to the server while keeping the read side
  /// open for responses.
  void close_write() { ::shutdown(fd_, SHUT_WR); }

  /// Blocking read of one '\n'-terminated response line (without the
  /// newline); empty on EOF.
  std::string read_line() {
    std::string line;
    char c;
    for (;;) {
      const ssize_t n = ::read(fd_, &c, 1);
      if (n < 0) {
        if (errno == EINTR) continue;
        return line;
      }
      if (n == 0 || c == '\n') return line;
      line.push_back(c);
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

std::string temp_socket_path(const char* tag) {
  return "/tmp/prop_sock_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + ".sock";
}

ServerConfig fast_config() {
  ServerConfig config;
  config.workers = 2;
  return config;
}

/// Runs server.serve() on a background thread; join() after a client sent
/// the shutdown request.
struct ServeThread {
  explicit ServeThread(SocketLineServer& server)
      : thread([&server] { server.serve(); }) {}
  ~ServeThread() {
    if (thread.joinable()) thread.join();
  }
  std::thread thread;
};

// -------------------------------------------------------------- accept loop

TEST(SocketServer, ServesSequentialConnectionsThenShutsDown) {
  const std::string path = temp_socket_path("seq");
  SocketLineServer server(fast_config(), path);
  ASSERT_TRUE(server.listen());
  ServeThread serving(server);

  {
    TestClient c1(path);
    ASSERT_TRUE(c1.connected());
    ASSERT_TRUE(c1.send("{\"op\":\"stats\"}\n"));
    const std::string r = c1.read_line();
    EXPECT_NE(r.find("\"lines\""), std::string::npos) << r;
  }
  {
    TestClient c2(path);
    ASSERT_TRUE(c2.connected());
    ASSERT_TRUE(c2.send("{\"op\":\"submit\",\"id\":\"j1\",\"circuit\":\"balu\","
                        "\"algo\":\"prop\",\"runs\":1,\"seed\":7}\n"));
    const std::string r = c2.read_line();
    EXPECT_NE(r.find("\"id\":\"j1\""), std::string::npos) << r;
    EXPECT_NE(r.find("\"state\":\"done\""), std::string::npos) << r;
    ASSERT_TRUE(c2.send("{\"op\":\"shutdown\"}\n"));
  }
  serving.thread.join();
  const ServerStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 1u);
  EXPECT_EQ(stats.done, 1u);
}

TEST(SocketServer, FinalLineWithoutNewlineIsStillProcessed) {
  // Regression: the old inline loop discarded a request whose line was not
  // newline-terminated when the client half-closed right after sending it.
  const std::string path = temp_socket_path("eof");
  SocketLineServer server(fast_config(), path);
  ASSERT_TRUE(server.listen());
  ServeThread serving(server);

  {
    TestClient c(path);
    ASSERT_TRUE(c.connected());
    ASSERT_TRUE(c.send("{\"op\":\"submit\",\"id\":\"tail\",\"circuit\":\"balu\","
                       "\"algo\":\"prop\",\"runs\":1,\"seed\":3}"));  // no \n
    c.close_write();
    const std::string r = c.read_line();
    EXPECT_NE(r.find("\"id\":\"tail\""), std::string::npos) << r;
    EXPECT_NE(r.find("\"state\":\"done\""), std::string::npos) << r;
  }
  TestClient stopper(path);
  ASSERT_TRUE(stopper.connected());
  ASSERT_TRUE(stopper.send("{\"op\":\"shutdown\"}"));
  stopper.close_write();  // shutdown is also EOF-terminated
  serving.thread.join();
  EXPECT_EQ(server.stats().done, 1u);
}

TEST(SocketServer, MidJobHangupDoesNotKillTheServer) {
  // Regression: the response sink used to write through a dangling client
  // reference.  A client that submits and vanishes before its response is
  // ready must not poison the next connection.
  const std::string path = temp_socket_path("hup");
  SocketLineServer server(fast_config(), path);
  ASSERT_TRUE(server.listen());
  ServeThread serving(server);

  {
    TestClient ghost(path);
    ASSERT_TRUE(ghost.connected());
    ASSERT_TRUE(ghost.send("{\"op\":\"submit\",\"id\":\"ghost\","
                           "\"circuit\":\"balu\",\"algo\":\"prop\","
                           "\"runs\":2,\"seed\":1}\n"));
    // Destructor closes both directions with the job still in flight.
  }
  {
    TestClient c(path);
    ASSERT_TRUE(c.connected());
    ASSERT_TRUE(c.send("{\"op\":\"submit\",\"id\":\"after\",\"circuit\":\"balu\","
                       "\"algo\":\"prop\",\"runs\":1,\"seed\":2}\n"));
    const std::string r = c.read_line();
    EXPECT_NE(r.find("\"id\":\"after\""), std::string::npos) << r;
    ASSERT_TRUE(c.send("{\"op\":\"shutdown\"}\n"));
  }
  serving.thread.join();
  // Both jobs ran to completion; the ghost's response was dropped, not
  // delivered to the wrong client and not fatal.
  EXPECT_EQ(server.stats().submitted, 2u);
  EXPECT_EQ(server.stats().done, 2u);
}

TEST(SocketServer, ReadRetriesAfterSignalInterruption) {
  // Regression: read() returning -1 with errno == EINTR was treated as
  // EOF, silently dropping the client mid-request.  Deliver a real signal
  // (handler installed without SA_RESTART so read() genuinely returns
  // EINTR) while the accept loop is blocked reading, then complete the
  // request — the connection must survive.
  struct sigaction action{};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: read() must see EINTR
  struct sigaction previous{};
  ASSERT_EQ(sigaction(SIGUSR1, &action, &previous), 0);

  const std::string path = temp_socket_path("eintr");
  SocketLineServer server(fast_config(), path);
  ASSERT_TRUE(server.listen());
  ServeThread serving(server);

  TestClient c(path);
  ASSERT_TRUE(c.connected());
  // Half a request, so the server parks in read() with a partial line
  // buffered, then a burst of signals, then the rest of the request.
  ASSERT_TRUE(c.send("{\"op\":\"st"));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (int i = 0; i < 3; ++i) {
    pthread_kill(serving.thread.native_handle(), SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  ASSERT_TRUE(c.send("ats\"}\n"));
  const std::string r = c.read_line();
  EXPECT_NE(r.find("\"lines\""), std::string::npos) << r;
  ASSERT_TRUE(c.send("{\"op\":\"shutdown\"}\n"));
  serving.thread.join();

  ASSERT_EQ(sigaction(SIGUSR1, &previous, nullptr), 0);
}

}  // namespace
}  // namespace prop::service

#endif  // !_WIN32
