// Native k-way PROP refiner: pass monotonicity in both objectives, balance
// window preservation (including out-of-window inputs), determinism,
// cooperative cancellation, and the shared-window contract with the greedy
// refiner and recursive bisection (partition/kway_balance.h).
#include "kway/kway_prop_refiner.h"

#include <gtest/gtest.h>

#include <vector>

#include "kway/kway_refine.h"
#include "kway/kway_state.h"
#include "partition/kway_balance.h"
#include "runtime/run_context.h"
#include "telemetry/telemetry.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

std::vector<NodeId> random_parts(const Hypergraph& g, NodeId k,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> part(g.num_nodes());
  for (auto& p : part) p = static_cast<NodeId>(rng.bounded(k));
  return part;
}

double objective_cost(const Hypergraph& g, const std::vector<NodeId>& part,
                      NodeId k, KWayObjective objective) {
  const KWayState state(g, part, k);
  return objective == KWayObjective::kCut ? state.cut_cost()
                                          : state.connectivity_cost();
}

TEST(KWayPropRefiner, NeverWorsensEitherObjective) {
  const Hypergraph g = testing::small_random_circuit(1201);
  const NodeId k = 4;
  const KWayBalanceWindow window =
      kway_part_window(g.total_node_size(), k, 0.1, kway_max_node_size(g));
  for (const KWayObjective objective :
       {KWayObjective::kCut, KWayObjective::kConnectivity}) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      std::vector<NodeId> part = random_parts(g, k, 1201 + seed);
      const double before = objective_cost(g, part, k, objective);
      KWayPropConfig config;
      config.objective = objective;
      const KWayPropOutcome out = kway_prop_refine(g, part, k, window, config);
      const double after = objective_cost(g, part, k, objective);
      EXPECT_LE(after, before + 1e-9) << "seed " << seed;
      EXPECT_NEAR(objective == KWayObjective::kCut ? out.cut_cost
                                                   : out.connectivity_cost,
                  after, 1e-9);
    }
  }
}

TEST(KWayPropRefiner, ImprovesOrMatchesGreedyOnPlantedStructure) {
  // chain_of_blocks has an obvious k-way optimum (one block per part);
  // from a random start, greedy + PROP must match-or-beat greedy alone.
  const Hypergraph g = testing::chain_of_blocks(4, 12);
  const NodeId k = 4;
  const KWayBalanceWindow window =
      kway_part_window(g.total_node_size(), k, 0.1, kway_max_node_size(g));
  KWayRefineConfig greedy;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    std::vector<NodeId> greedy_part = random_parts(g, k, 7000 + seed);
    kway_refine(g, greedy_part, k, seed, greedy);
    const double greedy_cost =
        objective_cost(g, greedy_part, k, KWayObjective::kConnectivity);

    std::vector<NodeId> prop_part = greedy_part;
    const KWayPropOutcome out =
        kway_prop_refine(g, prop_part, k, window, KWayPropConfig{});
    EXPECT_LE(out.connectivity_cost, greedy_cost + 1e-9) << "seed " << seed;
  }
}

TEST(KWayPropRefiner, KeepsPartsInsideWindow) {
  const Hypergraph g = testing::small_random_circuit(1203);
  const NodeId k = 4;
  const KWayBalanceWindow window =
      kway_part_window(g.total_node_size(), k, 0.1, kway_max_node_size(g));
  // Start balanced (legalized by the greedy refiner), then PROP-refine.
  std::vector<NodeId> part = random_parts(g, k, 1203);
  kway_refine(g, part, k, 5, KWayRefineConfig{});
  KWayState before(g, part, k);
  for (NodeId p = 0; p < k; ++p) {
    ASSERT_TRUE(window.contains(before.part_size(p))) << "part " << p;
  }
  kway_prop_refine(g, part, k, window, KWayPropConfig{});
  const KWayState after(g, part, k);
  for (NodeId p = 0; p < k; ++p) {
    EXPECT_TRUE(window.contains(after.part_size(p)))
        << "part " << p << " size " << after.part_size(p) << " window ["
        << window.lo << ", " << window.hi << "]";
  }
}

TEST(KWayPropRefiner, NeverGrowsImbalanceFromOutOfWindowInput) {
  const Hypergraph g = testing::small_random_circuit(1207);
  const NodeId k = 4;
  const KWayBalanceWindow window =
      kway_part_window(g.total_node_size(), k, 0.1, kway_max_node_size(g));
  // Everything crammed into part 0: far outside the window.
  std::vector<NodeId> part(g.num_nodes(), 0);
  const KWayState before(g, part, k);
  const std::int64_t worst_before = before.part_size(0);
  kway_prop_refine(g, part, k, window, KWayPropConfig{});
  const KWayState after(g, part, k);
  for (NodeId p = 0; p < k; ++p) {
    EXPECT_LE(after.part_size(p), std::max(worst_before, window.hi));
  }
}

TEST(KWayPropRefiner, DeterministicAcrossRepeats) {
  const Hypergraph g = testing::small_random_circuit(1209);
  const NodeId k = 8;
  const KWayBalanceWindow window =
      kway_part_window(g.total_node_size(), k, 0.1, kway_max_node_size(g));
  std::vector<NodeId> a = random_parts(g, k, 1209);
  std::vector<NodeId> b = a;
  const KWayPropOutcome oa = kway_prop_refine(g, a, k, window, {});
  const KWayPropOutcome ob = kway_prop_refine(g, b, k, window, {});
  EXPECT_EQ(a, b);
  EXPECT_EQ(oa.passes, ob.passes);
  EXPECT_DOUBLE_EQ(oa.connectivity_cost, ob.connectivity_cost);
}

TEST(KWayPropRefiner, CancelledContextStopsWithValidPartition) {
  const Hypergraph g = testing::small_random_circuit(1213);
  const NodeId k = 4;
  const KWayBalanceWindow window =
      kway_part_window(g.total_node_size(), k, 0.1, kway_max_node_size(g));
  std::vector<NodeId> part = random_parts(g, k, 1213);
  const double before =
      objective_cost(g, part, k, KWayObjective::kConnectivity);

  CancelToken cancel;
  cancel.cancel();
  RunContext ctx;
  ctx.cancel = &cancel;
  KWayPropConfig config;
  config.context = &ctx;
  const KWayPropOutcome out = kway_prop_refine(g, part, k, window, config);
  EXPECT_TRUE(out.interrupted);
  // Rollback discipline: even an interrupted pass leaves a partition no
  // worse than its input.
  EXPECT_LE(objective_cost(g, part, k, KWayObjective::kConnectivity),
            before + 1e-9);
  for (const NodeId p : part) EXPECT_LT(p, k);
}

TEST(KWayPropRefiner, RecordsPerPassTelemetry) {
  const Hypergraph g = testing::small_random_circuit(1217);
  const NodeId k = 4;
  const KWayBalanceWindow window =
      kway_part_window(g.total_node_size(), k, 0.1, kway_max_node_size(g));
  std::vector<NodeId> part = random_parts(g, k, 1217);
  RefineTelemetry telemetry;
  KWayPropConfig config;
  config.telemetry = &telemetry;
  const KWayPropOutcome out = kway_prop_refine(g, part, k, window, config);
  ASSERT_EQ(static_cast<int>(telemetry.passes.size()), out.passes);
  for (const PassStats& pass : telemetry.passes) {
    EXPECT_LE(pass.cut_after, pass.cut_before + 1e-9);
  }
}

TEST(KWayPropRefiner, RejectsInvalidInputs) {
  const Hypergraph g = testing::small_random_circuit(1219);
  const KWayBalanceWindow window{0, g.total_node_size()};
  std::vector<NodeId> part(g.num_nodes(), 0);
  EXPECT_THROW(kway_prop_refine(g, part, 0, window, {}),
               std::invalid_argument);
  std::vector<NodeId> short_part(3, 0);
  EXPECT_THROW(kway_prop_refine(g, short_part, 2, window, {}),
               std::invalid_argument);
  KWayPropConfig bad;
  bad.model.pinit = 1.5;  // invalid probability model
  EXPECT_THROW(kway_prop_refine(g, part, 2, window, bad),
               std::invalid_argument);
}

// --- shared balance arithmetic (partition/kway_balance.h) ------------------

TEST(KWayBalance, WindowMatchesProportionalShare) {
  const KWayBalanceWindow w = kway_part_window(1000, 4, 0.1, 1);
  EXPECT_EQ(w.lo, 225);  // 250 * 0.9
  EXPECT_EQ(w.hi, 275);  // 250 * 1.1 rounded up
  EXPECT_TRUE(w.contains(250));
  EXPECT_FALSE(w.contains(224));
  EXPECT_FALSE(w.contains(276));
}

TEST(KWayBalance, DegenerateWindowWidensByMaxNode) {
  // Window narrower than two max-size nodes: widened one max node each way.
  const KWayBalanceWindow w = kway_part_window(40, 4, 0.1, 5);
  EXPECT_LE(w.lo, 10 - 5 + 1);
  EXPECT_GE(w.hi, 10 + 5);
  EXPECT_GE(w.hi - w.lo, 10);
  EXPECT_GE(w.lo, 0);
}

TEST(KWayBalance, SplitFractionsClampAwayFromDegenerate) {
  const KWaySplitFractions even = kway_split_fractions(0.5, 0.1);
  EXPECT_DOUBLE_EQ(even.r1, 0.45);
  EXPECT_DOUBLE_EQ(even.r2, 0.55);
  const KWaySplitFractions tiny = kway_split_fractions(0.005, 0.1);
  EXPECT_DOUBLE_EQ(tiny.r1, 0.01);  // clamped floor
  const KWaySplitFractions huge = kway_split_fractions(0.995, 0.1);
  EXPECT_DOUBLE_EQ(huge.r2, 0.99);  // clamped ceiling
}

TEST(KWayBalance, GreedyAndPropAgreeOnFeasibility) {
  // The same window drives both refiners: after greedy legalization the
  // parts sit inside kway_part_window, and the PROP refiner keeps them
  // there — i.e. neither layer can hand the other an infeasible partition.
  const Hypergraph g = testing::small_random_circuit(1223);
  const NodeId k = 4;
  const double tolerance = 0.1;
  const KWayBalanceWindow window = kway_part_window(
      g.total_node_size(), k, tolerance, kway_max_node_size(g));
  std::vector<NodeId> part = random_parts(g, k, 1223);
  KWayRefineConfig greedy;
  greedy.tolerance = tolerance;
  kway_refine(g, part, k, 3, greedy);
  {
    const KWayState s(g, part, k);
    for (NodeId p = 0; p < k; ++p) {
      EXPECT_TRUE(window.contains(s.part_size(p))) << "after greedy, part "
                                                   << p;
    }
  }
  kway_prop_refine(g, part, k, window, KWayPropConfig{});
  const KWayState s(g, part, k);
  for (NodeId p = 0; p < k; ++p) {
    EXPECT_TRUE(window.contains(s.part_size(p))) << "after prop, part " << p;
  }
}

}  // namespace
}  // namespace prop
