// KWayProbGainCalculator: the per-(net, part) generalization of the 2-way
// probabilistic gain engine (DESIGN.md §4j).  Three contracts:
//   * oracle agreement — cached gains match the per-net scratch oracle
//     within the audit tolerance, for every node and target, across a
//     locked-move sequence;
//   * k = 2 bit-identity — on the same graph, partition and probability
//     sequence, the k-way calculator returns the EXACT bytes of
//     ProbGainCalculator (operator==, no tolerance), which is what keeps
//     BENCH_gain_kernels.json honest after the refactor;
//   * shadow-mode equivalence — kShadow cross-checks the cache against
//     scratch on every query and throws past kProductAuditTol, so a clean
//     shadow run IS the cached-vs-exact equivalence statement at k > 2.
#include "kway/kway_prob_gain.h"

#include <gtest/gtest.h>

#include <vector>

#include "core/prob_gain.h"
#include "core/probability_model.h"
#include "hypergraph/builder.h"
#include "partition/partition.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

std::vector<NodeId> random_parts(const Hypergraph& g, NodeId k,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> part(g.num_nodes());
  for (auto& p : part) p = static_cast<NodeId>(rng.bounded(k));
  return part;
}

/// Random nonzero probabilities — enough structure to make products
/// nontrivial without depending on the refiner's bootstrap.
void seed_probabilities(KWayProbGainCalculator& calc, const Hypergraph& g,
                        Rng& rng) {
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    calc.set_probability(u, 0.05 + 0.9 * rng.uniform());
  }
}

TEST(KWayProbGain, CachedMatchesScratchOracle) {
  const Hypergraph g = testing::small_random_circuit(911);
  const NodeId k = 4;
  KWayState state(g, random_parts(g, k, 911), k);
  KWayProbGainCalculator cached(state, GainEngine::kCached);
  KWayProbGainCalculator scratch(state, GainEngine::kScratch);
  Rng rng(912);
  cached.reset();
  scratch.reset();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const double p = 0.05 + 0.9 * rng.uniform();
    cached.set_probability(u, p);
    scratch.set_probability(u, p);
  }

  for (int moves = 0; moves < 120; ++moves) {
    for (int probe = 0; probe < 8; ++probe) {
      const NodeId u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
      if (!cached.is_free(u)) continue;
      for (NodeId to = 0; to < k; ++to) {
        if (to == state.part(u)) continue;
        const double want = scratch.gain(u, to);
        EXPECT_NEAR(cached.gain(u, to), want,
                    KWayProbGainCalculator::kProductAuditTol)
            << "node " << u << " -> " << to;
        EXPECT_NEAR(cached.scratch_gain(u, to), want, 1e-12);
      }
    }
    // Lock-and-move a random free node, mirroring the pass protocol.
    const NodeId u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    if (!cached.is_free(u)) continue;
    const NodeId from = state.part(u);
    const NodeId to = (from + 1 + static_cast<NodeId>(rng.bounded(k - 1))) % k;
    cached.lock(u);
    scratch.lock(u);
    state.move(u, to);
    cached.move_locked(u, from);
    scratch.move_locked(u, from);
  }
  EXPECT_LE(cached.max_product_drift(),
            KWayProbGainCalculator::kProductAuditTol);
  cached.audit_consistency();
}

TEST(KWayProbGain, ShadowModeRunsCleanAtK4) {
  const Hypergraph g = testing::small_random_circuit(917, 150, 200, 600);
  const NodeId k = 4;
  KWayState state(g, random_parts(g, k, 917), k);
  KWayProbGainCalculator shadow(state, GainEngine::kShadow);
  Rng rng(918);
  shadow.reset();
  seed_probabilities(shadow, g, rng);

  // Every query cross-checks cache vs scratch internally; a drift past
  // kProductAuditTol throws std::logic_error and fails the test.
  for (int moves = 0; moves < 150; ++moves) {
    const NodeId u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    if (!shadow.is_free(u)) continue;
    const NodeId from = state.part(u);
    NodeId best_to = (from + 1) % k;
    double best = -1e300;
    for (NodeId to = 0; to < k; ++to) {
      if (to == from) continue;
      const double gain = shadow.gain(u, to);
      if (gain > best) {
        best = gain;
        best_to = to;
      }
    }
    shadow.lock(u);
    state.move(u, best_to);
    shadow.move_locked(u, from);
  }
  shadow.audit_consistency();
}

TEST(KWayProbGain, NetGainOracleMatchesPaperCases) {
  // Figure-1-style hand case, k = 3: net {0,1,2} with parts {0,0,1},
  // uniform p = 0.5.
  HypergraphBuilder b(3);
  b.add_net({0, 1, 2}, 2.0);
  const Hypergraph g = std::move(b).build();
  KWayState state(g, {0, 0, 1}, 3);
  KWayProbGainCalculator calc(state, GainEngine::kScratch);
  calc.reset();
  for (NodeId u = 0; u < 3; ++u) calc.set_probability(u, 0.5);

  // Node 0 (part 0) -> part 1 (net touches 1): c * (p(1) - p(2's part-1
  // product)) = 2 * (0.5 - 0.5) = 0.
  EXPECT_DOUBLE_EQ(calc.net_gain(0, 0, 1), 0.0);
  // Node 0 -> part 2 (net has no pin in 2): -c * (1 - p(1)) = -1.
  EXPECT_DOUBLE_EQ(calc.net_gain(0, 0, 2), -1.0);
  // Node 2 (alone in part 1) -> part 0: removal product over part-1 pins
  // minus u is empty = 1; target product = 0.5 * 0.5.  2 * (1 - 0.25).
  EXPECT_DOUBLE_EQ(calc.net_gain(2, 0, 0), 2.0 * (1.0 - 0.25));

  // Locking node 1 zeroes part 0's removal product for node 0's moves.
  calc.lock(1);
  EXPECT_DOUBLE_EQ(calc.net_gain(0, 0, 1), 2.0 * (0.0 - 0.5));
}

/// Drives ProbGainCalculator (2-way) and KWayProbGainCalculator (k = 2)
/// through one identical probability/lock/move trajectory and demands
/// bitwise-equal gains at every step.
void expect_two_way_bit_identity(GainEngine engine, std::uint64_t seed) {
  const Hypergraph g = testing::small_random_circuit(seed);
  Rng rng(seed + 1);
  std::vector<std::uint8_t> sides(g.num_nodes());
  std::vector<NodeId> part(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    sides[u] = rng.chance(0.5) ? 1 : 0;
    part[u] = sides[u];
  }
  Partition p2(g, sides);
  KWayState state(g, part, 2);
  ProbGainCalculator two(p2, engine);
  KWayProbGainCalculator kway(state, engine);
  two.reset();
  kway.reset();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const double p = 0.05 + 0.9 * rng.uniform();
    two.set_probability(u, p);
    kway.set_probability(u, p);
  }

  for (int moves = 0; moves < 200; ++moves) {
    for (int probe = 0; probe < 6; ++probe) {
      const NodeId u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
      if (!two.is_free(u)) continue;
      const NodeId to = static_cast<NodeId>(1 - p2.side(u));
      // Bitwise equality, not EXPECT_NEAR: the k-way slot layout at k = 2
      // walks the same products in the same order as the 2-way engine.
      EXPECT_EQ(kway.gain(u, to), two.gain(u)) << "node " << u;
    }
    const NodeId u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    if (!two.is_free(u)) continue;
    const int from = p2.side(u);
    two.lock(u);
    kway.lock(u);
    p2.move(u);
    state.move(u, static_cast<NodeId>(1 - from));
    two.move_locked(u, from);
    kway.move_locked(u, static_cast<NodeId>(from));
    // A fresh probability on a neighbor keeps the product caches hot.
    const NodeId v = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    if (two.is_free(v)) {
      const double p = 0.05 + 0.9 * rng.uniform();
      two.set_probability(v, p);
      kway.set_probability(v, p);
    }
  }
  two.audit_consistency();
  kway.audit_consistency();
}

TEST(KWayGainEngineBitIdentity, CachedK2MatchesTwoWayExactly) {
  expect_two_way_bit_identity(GainEngine::kCached, 931);
}

TEST(KWayGainEngineBitIdentity, ScratchK2MatchesTwoWayExactly) {
  expect_two_way_bit_identity(GainEngine::kScratch, 937);
}

TEST(KWayGainEngineBitIdentity, ShadowK2MatchesTwoWayExactly) {
  expect_two_way_bit_identity(GainEngine::kShadow, 941);
}

TEST(KWayProbGain, ShortRenormEpochStaysExact) {
  // renorm_interval = 1 renormalizes every slot on every update; gains must
  // still agree with scratch exactly at the audit tolerance.
  const Hypergraph g = testing::small_random_circuit(947, 80, 110, 330);
  const NodeId k = 3;
  KWayState state(g, random_parts(g, k, 947), k);
  KWayProbGainCalculator calc(state, GainEngine::kCached, 1);
  Rng rng(948);
  calc.reset();
  seed_probabilities(calc, g, rng);
  for (int i = 0; i < 60; ++i) {
    const NodeId u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    if (!calc.is_free(u)) continue;
    const NodeId from = state.part(u);
    const NodeId to = (from + 1) % k;
    EXPECT_NEAR(calc.gain(u, to), calc.scratch_gain(u, to),
                KWayProbGainCalculator::kProductAuditTol);
    calc.lock(u);
    state.move(u, to);
    calc.move_locked(u, from);
  }
  EXPECT_EQ(calc.max_product_drift(), 0.0);  // every slot just renormalized
  calc.audit_consistency();
}

}  // namespace
}  // namespace prop
