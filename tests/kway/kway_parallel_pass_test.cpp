// The k-way deterministic round engine (DESIGN §4i generalized to k parts,
// active set per §4k): byte-identical partitions and pass stats for every
// pass_threads >= 1, exact identity of the active-set (delta-driven) sweep
// against full_sweep_rounds, rounds_per_barrier output-neutrality, and the
// usual monotonicity / window contracts under the round schedule.
#include <gtest/gtest.h>

#include <vector>

#include "kway/kway_prop_refiner.h"
#include "kway/kway_state.h"
#include "partition/kway_balance.h"
#include "telemetry/telemetry.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

std::vector<NodeId> random_parts(const Hypergraph& g, NodeId k,
                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<NodeId> part(g.num_nodes());
  for (auto& p : part) p = static_cast<NodeId>(rng.bounded(k));
  return part;
}

KWayBalanceWindow window_for(const Hypergraph& g, NodeId k) {
  return kway_part_window(g.total_node_size(), k, 0.1, kway_max_node_size(g));
}

KWayPropConfig round_config(int pass_threads) {
  KWayPropConfig config;
  config.pass_threads = pass_threads;
  return config;
}

/// Exact PassStats equality — every counter the pass reports is part of
/// the determinism contract (exact double comparison intentional).
void expect_same_stats(const RefineTelemetry& got, const RefineTelemetry& want,
                       const char* label) {
  ASSERT_EQ(got.passes.size(), want.passes.size()) << label;
  for (std::size_t i = 0; i < want.passes.size(); ++i) {
    EXPECT_EQ(got.passes[i].moves_attempted, want.passes[i].moves_attempted)
        << label << " pass " << i;
    EXPECT_EQ(got.passes[i].moves_accepted, want.passes[i].moves_accepted)
        << label << " pass " << i;
    EXPECT_EQ(got.passes[i].rounds, want.passes[i].rounds)
        << label << " pass " << i;
    EXPECT_EQ(got.passes[i].best_prefix_gain, want.passes[i].best_prefix_gain)
        << label << " pass " << i;
  }
}

TEST(KWayParallelPass, ByteIdenticalAcrossThreadCounts) {
  // pass_threads = 1 is the serial reference execution of the k-way round
  // engine; every higher thread count must reproduce it exactly — same
  // part vector, same stats — for several k on random and planted circuits.
  const Hypergraph circuits[] = {testing::small_random_circuit(61),
                                 testing::chain_of_blocks(4, 12)};
  for (const Hypergraph& g : circuits) {
    for (const NodeId k : {3, 4, 8}) {
      const KWayBalanceWindow window = window_for(g, k);
      std::vector<NodeId> want = random_parts(g, k, 9000 + k);
      const std::vector<NodeId> init = want;
      RefineTelemetry want_telemetry;
      KWayPropConfig reference = round_config(1);
      reference.telemetry = &want_telemetry;
      const KWayPropOutcome want_out =
          kway_prop_refine(g, want, k, window, reference);
      for (const int threads : {2, 3, 4}) {
        std::vector<NodeId> got = init;
        RefineTelemetry telemetry;
        KWayPropConfig config = round_config(threads);
        config.telemetry = &telemetry;
        const KWayPropOutcome out =
            kway_prop_refine(g, got, k, window, config);
        EXPECT_EQ(got, want) << "k=" << k << " pass_threads=" << threads;
        EXPECT_EQ(out.passes, want_out.passes);
        EXPECT_EQ(out.connectivity_cost, want_out.connectivity_cost);
        EXPECT_EQ(out.cut_cost, want_out.cut_cost);
        expect_same_stats(telemetry, want_telemetry, "threads");
      }
    }
  }
}

TEST(KWayParallelPass, FullSweepRoundsReproduceActiveSetExactly) {
  // §4k identity contract: disabling the active set (full_sweep_rounds =
  // true re-sweeps every free node and rebuilds every net each round) must
  // not change a single byte of the result — the dirty set only skips
  // recomputations whose inputs are bitwise unchanged.
  const Hypergraph g = testing::small_random_circuit(67);
  const NodeId k = 4;
  const KWayBalanceWindow window = window_for(g, k);
  for (const int threads : {1, 2, 4}) {
    std::vector<NodeId> active = random_parts(g, k, 4100);
    std::vector<NodeId> full = active;
    RefineTelemetry active_telemetry;
    RefineTelemetry full_telemetry;
    KWayPropConfig active_config = round_config(threads);
    active_config.telemetry = &active_telemetry;
    KWayPropConfig full_config = round_config(threads);
    full_config.full_sweep_rounds = true;
    full_config.telemetry = &full_telemetry;
    const KWayPropOutcome a =
        kway_prop_refine(g, active, k, window, active_config);
    const KWayPropOutcome f = kway_prop_refine(g, full, k, window, full_config);
    EXPECT_EQ(active, full) << "pass_threads=" << threads;
    EXPECT_EQ(a.passes, f.passes);
    EXPECT_EQ(a.connectivity_cost, f.connectivity_cost);
    expect_same_stats(active_telemetry, full_telemetry, "full-sweep");
  }
}

TEST(KWayParallelPass, RoundsPerBarrierIsOutputNeutral) {
  // The barrier batch size only decides which rounds engage the worker
  // pool; the schedule itself is unchanged for every value.
  const Hypergraph g = testing::small_random_circuit(71);
  const NodeId k = 4;
  const KWayBalanceWindow window = window_for(g, k);
  std::vector<NodeId> want = random_parts(g, k, 4200);
  const std::vector<NodeId> init = want;
  KWayPropConfig reference = round_config(2);
  const KWayPropOutcome want_out =
      kway_prop_refine(g, want, k, window, reference);
  for (const int rpb : {2, 3, 7}) {
    std::vector<NodeId> got = init;
    KWayPropConfig config = round_config(2);
    config.rounds_per_barrier = rpb;
    const KWayPropOutcome out = kway_prop_refine(g, got, k, window, config);
    EXPECT_EQ(got, want) << "rounds_per_barrier=" << rpb;
    EXPECT_EQ(out.passes, want_out.passes);
    EXPECT_EQ(out.connectivity_cost, want_out.connectivity_cost);
  }
}

TEST(KWayParallelPass, RoundEngineNeverWorsensEitherObjective) {
  const Hypergraph g = testing::small_random_circuit(73);
  const NodeId k = 4;
  const KWayBalanceWindow window = window_for(g, k);
  for (const KWayObjective objective :
       {KWayObjective::kCut, KWayObjective::kConnectivity}) {
    for (const int threads : {1, 2}) {
      std::vector<NodeId> part = random_parts(g, k, 4300 + threads);
      const KWayState before(g, part, k);
      const double cost_before = objective == KWayObjective::kCut
                                     ? before.cut_cost()
                                     : before.connectivity_cost();
      KWayPropConfig config = round_config(threads);
      config.objective = objective;
      const KWayPropOutcome out =
          kway_prop_refine(g, part, k, window, config);
      const KWayState after(g, part, k);
      const double cost_after = objective == KWayObjective::kCut
                                    ? after.cut_cost()
                                    : after.connectivity_cost();
      EXPECT_LE(cost_after, cost_before + 1e-9)
          << "pass_threads=" << threads;
      EXPECT_NEAR(objective == KWayObjective::kCut ? out.cut_cost
                                                   : out.connectivity_cost,
                  cost_after, 1e-9);
      for (const NodeId p : part) EXPECT_LT(p, k);
    }
  }
}

TEST(KWayParallelPass, RoundEngineCountsRounds) {
  const Hypergraph g = testing::small_random_circuit(79);
  const NodeId k = 4;
  const KWayBalanceWindow window = window_for(g, k);
  std::vector<NodeId> part = random_parts(g, k, 4400);
  RefineTelemetry telemetry;
  KWayPropConfig config = round_config(2);
  config.telemetry = &telemetry;
  kway_prop_refine(g, part, k, window, config);
  ASSERT_FALSE(telemetry.passes.empty());
  EXPECT_GT(telemetry.passes.front().rounds, 0u);
  // Each round commits at least one move (or ends the pass), so the round
  // count never exceeds the speculative move count.
  EXPECT_LE(telemetry.passes.front().rounds,
            telemetry.passes.front().moves_attempted);
}

TEST(KWayParallelPass, SequentialEngineIsUntouchedByDefault) {
  // pass_threads = 0 must keep producing exactly what the pre-round-engine
  // sequential k-way path produced.
  const Hypergraph g = testing::small_random_circuit(83);
  const NodeId k = 4;
  const KWayBalanceWindow window = window_for(g, k);
  std::vector<NodeId> defaulted = random_parts(g, k, 4500);
  std::vector<NodeId> explicit_zero = defaulted;
  const KWayPropOutcome a =
      kway_prop_refine(g, defaulted, k, window, KWayPropConfig{});
  const KWayPropOutcome b =
      kway_prop_refine(g, explicit_zero, k, window, round_config(0));
  EXPECT_EQ(defaulted, explicit_zero);
  EXPECT_EQ(a.passes, b.passes);
  EXPECT_EQ(a.connectivity_cost, b.connectivity_cost);
}

}  // namespace
}  // namespace prop
