// Randomized cost-consistency property (paper Eqn. 1 generalized): the
// standalone kway_cut_cost (partition/recursive.h), KWayState's
// incrementally-maintained cut/connectivity costs, and the from-scratch
// verify_costs recomputation must agree on weighted random hypergraphs
// through arbitrary move sequences — under both objectives' definitions.
#include <gtest/gtest.h>

#include <vector>

#include "hypergraph/builder.h"
#include "kway/kway_state.h"
#include "partition/recursive.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

/// Random hypergraph with non-unit net costs and node sizes.
Hypergraph weighted_random_circuit(std::uint64_t seed, NodeId nodes,
                                   NetId nets) {
  Rng rng(seed);
  HypergraphBuilder b(nodes);
  b.set_name("weighted");
  for (NodeId u = 0; u < nodes; ++u) {
    b.set_node_size(u, 1 + static_cast<std::int64_t>(rng.bounded(4)));
  }
  for (NetId n = 0; n < nets; ++n) {
    const std::size_t arity = 2 + rng.bounded(5);
    std::vector<NodeId> pins;
    for (std::size_t i = 0; i < arity; ++i) {
      pins.push_back(static_cast<NodeId>(rng.bounded(nodes)));
    }
    const double cost = 0.5 + 0.25 * static_cast<double>(rng.bounded(10));
    b.add_net(pins, cost);
  }
  return std::move(b).build();
}

TEST(KWayCostProperty, StateMatchesStandaloneAndScratchUnderRandomMoves) {
  for (const std::uint64_t seed : {101ull, 102ull, 103ull}) {
    const Hypergraph g = weighted_random_circuit(seed, 120, 170);
    Rng rng(seed * 7);
    for (const NodeId k : {NodeId{2}, NodeId{4}, NodeId{7}}) {
      std::vector<NodeId> part(g.num_nodes());
      for (auto& p : part) p = static_cast<NodeId>(rng.bounded(k));
      KWayState state(g, part, k);

      for (int moves = 0; moves < 300; ++moves) {
        const NodeId u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
        const NodeId to = static_cast<NodeId>(rng.bounded(k));
        state.move(u, to);
        part[u] = to;
        if (moves % 50 != 0) continue;
        // Standalone cut (counts nets spanning >= 2 parts) vs incremental.
        EXPECT_NEAR(state.cut_cost(), kway_cut_cost(g, part), 1e-9);
        // From-scratch recompute of both objectives vs incremental.
        double cut = 0.0;
        double conn = 0.0;
        state.verify_costs(&cut, &conn);
        EXPECT_NEAR(state.cut_cost(), cut, 1e-9);
        EXPECT_NEAR(state.connectivity_cost(), conn, 1e-9);
        // Connectivity dominates cut (lambda - 1 >= 1 on every cut net)
        // and collapses to it exactly at k = 2.
        EXPECT_GE(state.connectivity_cost(), state.cut_cost() - 1e-9);
        if (k == 2) {
          EXPECT_NEAR(state.connectivity_cost(), state.cut_cost(), 1e-9);
        }
      }
    }
  }
}

TEST(KWayCostProperty, GainsPredictCostDeltasOnWeightedNets) {
  const Hypergraph g = weighted_random_circuit(109, 90, 140);
  Rng rng(110);
  const NodeId k = 5;
  std::vector<NodeId> part(g.num_nodes());
  for (auto& p : part) p = static_cast<NodeId>(rng.bounded(k));
  KWayState state(g, part, k);
  for (int trial = 0; trial < 250; ++trial) {
    const NodeId u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    const NodeId to = static_cast<NodeId>(rng.bounded(k));
    const double cut_before = state.cut_cost();
    const double conn_before = state.connectivity_cost();
    const double cg = state.cut_gain(u, to);
    const double kg = state.connectivity_gain(u, to);
    state.move(u, to);
    EXPECT_NEAR(state.cut_cost(), cut_before - cg, 1e-9);
    EXPECT_NEAR(state.connectivity_cost(), conn_before - kg, 1e-9);
  }
  double cut = 0.0;
  double conn = 0.0;
  state.verify_costs(&cut, &conn);
  EXPECT_NEAR(state.cut_cost(), cut, 1e-9);
  EXPECT_NEAR(state.connectivity_cost(), conn, 1e-9);
}

TEST(KWayCostProperty, SinglePartAndSpreadExtremes) {
  const Hypergraph g = weighted_random_circuit(113, 60, 80);
  // Everything in one part: zero cut, zero connectivity.
  const KWayState together(g, std::vector<NodeId>(g.num_nodes(), 2), 4);
  EXPECT_DOUBLE_EQ(together.cut_cost(), 0.0);
  EXPECT_DOUBLE_EQ(together.connectivity_cost(), 0.0);
  EXPECT_DOUBLE_EQ(kway_cut_cost(g, std::vector<NodeId>(g.num_nodes(), 2)),
                   0.0);
  // One part per node (k = n): every net with >= 2 distinct pins is cut
  // with lambda = its distinct-pin count.
  std::vector<NodeId> spread(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) spread[u] = u;
  const KWayState apart(g, spread, g.num_nodes());
  double cut = 0.0;
  double conn = 0.0;
  apart.verify_costs(&cut, &conn);
  EXPECT_NEAR(apart.cut_cost(), cut, 1e-9);
  EXPECT_NEAR(apart.connectivity_cost(), conn, 1e-9);
  EXPECT_NEAR(kway_cut_cost(g, spread), apart.cut_cost(), 1e-9);
}

}  // namespace
}  // namespace prop
