#include "kway/kway_state.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "partition/partition.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

Hypergraph triangle_nets() {
  HypergraphBuilder b(6);
  b.add_net({0, 1, 2});
  b.add_net({3, 4, 5});
  b.add_net({2, 3});
  b.add_net({0, 5});
  return std::move(b).build();
}

TEST(KWayState, InitialCosts) {
  const Hypergraph g = triangle_nets();
  KWayState s(g, {0, 0, 0, 1, 1, 2}, 3);
  // Net {0,1,2} in part 0; {3,4,5} spans {1,2}; {2,3} spans {0,1};
  // {0,5} spans {0,2}.
  EXPECT_DOUBLE_EQ(s.cut_cost(), 3.0);
  EXPECT_DOUBLE_EQ(s.connectivity_cost(), 3.0);
  EXPECT_EQ(s.spanned(0), 1u);
  EXPECT_EQ(s.spanned(1), 2u);
  EXPECT_EQ(s.part_size(0), 3);
  EXPECT_EQ(s.part_size(2), 1);
}

TEST(KWayState, MoveUpdatesCosts) {
  const Hypergraph g = triangle_nets();
  KWayState s(g, {0, 0, 0, 1, 1, 2}, 3);
  s.move(5, 1);  // {3,4,5} becomes internal to 1; {0,5} now spans {0,1}
  EXPECT_DOUBLE_EQ(s.cut_cost(), 2.0);
  double cut = 0.0;
  double conn = 0.0;
  s.verify_costs(&cut, &conn);
  EXPECT_DOUBLE_EQ(s.cut_cost(), cut);
  EXPECT_DOUBLE_EQ(s.connectivity_cost(), conn);
}

TEST(KWayState, GainsMatchMoveDeltas) {
  const Hypergraph g = testing::small_random_circuit(501);
  Rng rng(501);
  const NodeId k = 4;
  std::vector<NodeId> part(g.num_nodes());
  for (auto& p : part) p = static_cast<NodeId>(rng.bounded(k));
  KWayState s(g, part, k);

  for (int trial = 0; trial < 400; ++trial) {
    const NodeId u = static_cast<NodeId>(rng.bounded(g.num_nodes()));
    const NodeId to = static_cast<NodeId>(rng.bounded(k));
    const double cut_before = s.cut_cost();
    const double conn_before = s.connectivity_cost();
    const double cg = s.cut_gain(u, to);
    const double kg = s.connectivity_gain(u, to);
    s.move(u, to);
    EXPECT_NEAR(s.cut_cost(), cut_before - cg, 1e-9);
    EXPECT_NEAR(s.connectivity_cost(), conn_before - kg, 1e-9);
  }
  double cut = 0.0;
  double conn = 0.0;
  s.verify_costs(&cut, &conn);
  EXPECT_NEAR(s.cut_cost(), cut, 1e-9);
  EXPECT_NEAR(s.connectivity_cost(), conn, 1e-9);
}

TEST(KWayState, TwoWayMatchesPartition) {
  const Hypergraph g = testing::small_random_circuit(503);
  Rng rng(503);
  std::vector<NodeId> part(g.num_nodes());
  std::vector<std::uint8_t> sides(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    part[u] = rng.chance(0.5) ? 1 : 0;
    sides[u] = static_cast<std::uint8_t>(part[u]);
  }
  const KWayState s(g, part, 2);
  const Partition p(g, sides);
  EXPECT_DOUBLE_EQ(s.cut_cost(), p.cut_cost());
  EXPECT_DOUBLE_EQ(s.connectivity_cost(), p.cut_cost());  // lambda <= 2
}

TEST(KWayState, RejectsBadInput) {
  const Hypergraph g = triangle_nets();
  EXPECT_THROW(KWayState(g, {0, 0, 0}, 2), std::invalid_argument);
  EXPECT_THROW(KWayState(g, {0, 0, 0, 0, 0, 9}, 3), std::invalid_argument);
  EXPECT_THROW(KWayState(g, std::vector<NodeId>(6, 0), 0), std::invalid_argument);
}

}  // namespace
}  // namespace prop
