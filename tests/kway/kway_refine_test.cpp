#include "kway/kway_refine.h"

#include <gtest/gtest.h>

#include "core/prop_partitioner.h"
#include "partition/recursive.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

TEST(KWayRefine, ImprovesRandomAssignment) {
  const Hypergraph g = testing::chain_of_blocks(8, 8);
  Rng rng(1);
  const NodeId k = 4;
  std::vector<NodeId> part(g.num_nodes());
  // Balanced random start: round-robin over a shuffled order.
  std::vector<NodeId> order(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) order[u] = u;
  rng.shuffle(order);
  for (NodeId i = 0; i < g.num_nodes(); ++i) part[order[i]] = i % k;

  const double before = kway_cut_cost(g, part);
  const KWayRefineOutcome out = kway_refine(g, part, k, 7);
  EXPECT_LT(out.cut_cost, before);
  EXPECT_DOUBLE_EQ(out.cut_cost, kway_cut_cost(g, part));
  EXPECT_GT(out.moves, 0);
}

TEST(KWayRefine, NeverWorseAndBalanced) {
  const Hypergraph g = testing::small_random_circuit(601);
  PropPartitioner prop_algo;
  const NodeId k = 4;
  KWayResult initial = recursive_bisection(prop_algo, g, k, 3);
  std::vector<NodeId> part = initial.part;
  const KWayRefineOutcome out = kway_refine(g, part, k, 9);
  // Legalizing into the tighter k-way window may cost a few nets; beyond
  // that the refinement must not regress.
  EXPECT_LE(out.cut_cost, initial.cut_cost + 5.0);

  // Sizes land inside the refiner's own window (share +-10%, widened by
  // the unit node size).
  std::vector<std::int64_t> sizes(k, 0);
  for (NodeId u = 0; u < g.num_nodes(); ++u) sizes[part[u]] += g.node_size(u);
  const double share = static_cast<double>(g.total_node_size()) / k;
  for (const auto s : sizes) {
    EXPECT_GE(static_cast<double>(s), share * 0.9 - 2.0);
    EXPECT_LE(static_cast<double>(s), share * 1.1 + 2.0);
  }
}

TEST(KWayRefine, ConnectivityObjectiveReducesConnectivity) {
  const Hypergraph g = testing::small_random_circuit(603);
  Rng rng(603);
  const NodeId k = 3;
  std::vector<NodeId> part(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) part[u] = u % k;

  KWayState before(g, part, k);
  const double conn_before = before.connectivity_cost();
  KWayRefineConfig config;
  config.objective = KWayObjective::kConnectivity;
  const KWayRefineOutcome out = kway_refine(g, part, k, 5, config);
  EXPECT_LT(out.connectivity_cost, conn_before);
}

TEST(KWayRefine, DeterministicInSeed) {
  const Hypergraph g = testing::small_random_circuit(605);
  const NodeId k = 4;
  std::vector<NodeId> a(g.num_nodes());
  for (NodeId u = 0; u < g.num_nodes(); ++u) a[u] = u % k;
  std::vector<NodeId> b = a;
  kway_refine(g, a, k, 42);
  kway_refine(g, b, k, 42);
  EXPECT_EQ(a, b);
}

TEST(KWayRefine, KEqualsOneIsNoop) {
  const Hypergraph g = testing::small_random_circuit(607);
  std::vector<NodeId> part(g.num_nodes(), 0);
  const KWayRefineOutcome out = kway_refine(g, part, 1, 1);
  EXPECT_DOUBLE_EQ(out.cut_cost, 0.0);
  EXPECT_EQ(out.moves, 0);
}

}  // namespace
}  // namespace prop
