// Debug-mode invariant auditing: every refiner's incremental state is
// checked against a from-scratch recompute while full passes execute over a
// suite of generated MCNC-like circuits (the ISSUE's "incremental gains
// match scratch recompute" acceptance), plus direct sensitivity checks that
// the auditors actually fire on corrupted state.
#include <gtest/gtest.h>

#include <vector>

#include "core/prob_gain.h"
#include "core/prop_partitioner.h"
#include "fm/fm_partitioner.h"
#include "hypergraph/builder.h"
#include "hypergraph/generator.h"
#include "la/la_gains.h"
#include "la/la_partitioner.h"
#include "partition/runner.h"
#include "testutil.h"

namespace prop {
namespace {

/// Five MCNC-like circuits of varying shape (nodes, nets, pins, seed).
std::vector<Hypergraph> audit_suite() {
  std::vector<Hypergraph> circuits;
  circuits.push_back(generate_circuit({"a150", 150, 180, 560}, 101));
  circuits.push_back(generate_circuit({"a200", 200, 260, 800}, 102));
  circuits.push_back(generate_circuit({"a250", 250, 300, 1000}, 103));
  circuits.push_back(generate_circuit({"a300", 300, 350, 1200}, 104));
  circuits.push_back(generate_circuit({"a400", 400, 500, 1700}, 105));
  return circuits;
}

TEST(InvariantAudit, FmIncrementalGainsMatchScratchOnSuite) {
  for (const FmStructure structure : {FmStructure::kBucket, FmStructure::kTree}) {
    FmConfig config;
    config.structure = structure;
    config.audit_interval = 1;  // check after every single move
    FmPartitioner fm(config);
    RunnerOptions options;
    options.collect_telemetry = true;
    for (const Hypergraph& g : audit_suite()) {
      const BalanceConstraint balance = BalanceConstraint::forty_five(g);
      MultiRunResult r;
      ASSERT_NO_THROW(r = run_many(fm, g, balance, 2, 77, options)) << g.name();
      ASSERT_FALSE(r.telemetry.empty());
      // FM's update rules are exact: unit-cost gains show zero drift.
      EXPECT_EQ(r.max_gain_drift(), 0.0) << g.name();
      EXPECT_GT(r.telemetry[0].refine.total_audits(), 0u);
    }
  }
}

TEST(InvariantAudit, FmTreeWeightedNetsStayWithinTolerance) {
  // Weighted nets accumulate doubles in the tree container; drift must stay
  // within FP noise (the audit throws beyond audit_tolerance = 1e-6).
  HypergraphBuilder b(40);
  Rng rng(5);
  for (int i = 0; i < 120; ++i) {
    const NodeId u = static_cast<NodeId>(rng.bounded(40));
    NodeId v = static_cast<NodeId>(rng.bounded(40));
    if (v == u) v = (v + 1) % 40;
    b.add_net({u, v}, 0.1 + 0.01 * static_cast<double>(rng.bounded(100)));
  }
  const Hypergraph g = std::move(b).build();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmConfig config;
  config.structure = FmStructure::kTree;
  config.audit_interval = 1;
  FmPartitioner fm(config);
  EXPECT_NO_THROW(run_many(fm, g, balance, 3, 13));
}

TEST(InvariantAudit, LaIncrementalGainVectorsMatchScratchOnSuite) {
  for (const int lookahead : {2, 3}) {
    LaConfig config;
    config.lookahead = lookahead;
    config.audit_interval = 1;
    LaPartitioner la(config);
    RunnerOptions options;
    options.collect_telemetry = true;
    for (const Hypergraph& g : audit_suite()) {
      const BalanceConstraint balance = BalanceConstraint::forty_five(g);
      MultiRunResult r;
      ASSERT_NO_THROW(r = run_many(la, g, balance, 2, 78, options)) << g.name();
      // Gain vectors are integral; the incremental scheme is exact.
      EXPECT_EQ(r.max_gain_drift(), 0.0) << g.name();
    }
  }
}

TEST(InvariantAudit, PropStructuralInvariantsHoldOnSuite) {
  // Audit without resync: the structural invariants (locked-pin counts,
  // tree/gains sync, probability bounds, cut cost) are exact; the gain gap
  // vs. scratch is recorded, not asserted (Sec. 3.4 staleness is by
  // design).
  PropConfig config;
  config.audit_interval = 8;
  PropPartitioner prop_algo(config);
  RunnerOptions options;
  options.collect_telemetry = true;
  for (const Hypergraph& g : audit_suite()) {
    const BalanceConstraint balance = BalanceConstraint::forty_five(g);
    MultiRunResult r;
    ASSERT_NO_THROW(r = run_many(prop_algo, g, balance, 2, 79, options))
        << g.name();
    ASSERT_FALSE(r.telemetry.empty());
    EXPECT_GT(r.telemetry[0].refine.total_audits(), 0u);
    EXPECT_GE(r.max_gain_drift(), 0.0);
  }
}

TEST(InvariantAudit, PropGainsMatchScratchAfterResyncOnSuite) {
  // With a resync cadence aligned to the audit cadence, the auditor
  // hard-asserts gains[] == scratch recompute within 1e-6 right after every
  // resync — the acceptance invariant.
  PropConfig config;
  config.audit_interval = 8;
  config.resync_interval = 8;
  PropPartitioner prop_algo(config);
  RunnerOptions options;
  options.collect_telemetry = true;
  for (const Hypergraph& g : audit_suite()) {
    const BalanceConstraint balance = BalanceConstraint::forty_five(g);
    MultiRunResult r;
    ASSERT_NO_THROW(r = run_many(prop_algo, g, balance, 2, 80, options))
        << g.name();
    ASSERT_FALSE(r.telemetry.empty());
    EXPECT_GT(r.telemetry[0].refine.total_resyncs(), 0u);
  }
}

TEST(InvariantAudit, PropResyncKeepsResultsValidAndMeasuresDrift) {
  // Drift measurement harness (ISSUE satellite): the recorded drift with a
  // tight resync cadence reflects at most `resync_interval` moves of
  // staleness; without resync it accumulates over the whole pass.
  const Hypergraph g = testing::small_random_circuit(91, 300, 380, 1300);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  RunnerOptions options;
  options.collect_telemetry = true;

  PropConfig plain;
  plain.audit_interval = 4;
  PropPartitioner no_resync(plain);
  const MultiRunResult base = run_many(no_resync, g, balance, 2, 81, options);

  PropConfig bounded = plain;
  bounded.resync_interval = 4;
  PropPartitioner with_resync(bounded);
  const MultiRunResult sync = run_many(with_resync, g, balance, 2, 81, options);

  EXPECT_GE(base.max_gain_drift(), 0.0);
  EXPECT_GE(sync.max_gain_drift(), 0.0);
  // Resync must not break anything and must keep the refiner effective.
  EXPECT_LE(sync.best_cut(), base.cuts[0] * 2 + 10);
}

TEST(InvariantAudit, ProbGainAuditorDetectsDesyncedLockCounts) {
  const Hypergraph g = testing::chain_of_blocks(3, 4);
  Partition part(g);
  ProbGainCalculator calc(part);
  for (NodeId u = 0; u < g.num_nodes(); ++u) calc.set_probability(u, 0.5);
  EXPECT_NO_THROW(calc.audit_consistency());
  calc.lock(0);
  EXPECT_NO_THROW(calc.audit_consistency());
  // Moving the partition without telling the calculator desyncs the
  // per-(net, side) locked-pin table — the auditor must notice.
  part.move(0);
  EXPECT_THROW(calc.audit_consistency(), std::logic_error);
}

TEST(InvariantAudit, LaAuditorDetectsDesyncedBindingCounts) {
  const Hypergraph g = testing::chain_of_blocks(3, 4);
  Partition part(g);
  LaGainCalculator calc(part, 2);
  EXPECT_NO_THROW(calc.audit_consistency());
  calc.lock(0);
  EXPECT_NO_THROW(calc.audit_consistency());
  part.move(0);  // free/locked recount now disagrees with the tables
  EXPECT_THROW(calc.audit_consistency(), std::logic_error);
}

}  // namespace
}  // namespace prop
