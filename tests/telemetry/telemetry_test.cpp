#include "telemetry/telemetry.h"

#include <gtest/gtest.h>

#include <sstream>

#include "core/prop_partitioner.h"
#include "fm/fm_partitioner.h"
#include "la/la_partitioner.h"
#include "partition/initial.h"
#include "partition/runner.h"
#include "spectral/eig1.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

TEST(RefineTelemetry, BeginPassAssignsIndicesAndAggregates) {
  RefineTelemetry t;
  PassStats& a = t.begin_pass(100.0);
  a.moves_attempted = 50;
  a.moves_accepted = 30;
  a.audits = 2;
  a.resyncs = 7;
  a.max_gain_drift = 0.25;
  a.ops = {10, 20, 30};
  PassStats& b = t.begin_pass(80.0);
  b.moves_attempted = 40;
  b.moves_accepted = 40;
  b.max_gain_drift = 0.5;
  b.ops = {1, 2, 3};

  ASSERT_EQ(t.passes.size(), 2u);
  EXPECT_EQ(t.passes[0].pass, 0);
  EXPECT_EQ(t.passes[1].pass, 1);
  EXPECT_DOUBLE_EQ(t.passes[1].cut_before, 80.0);
  EXPECT_EQ(t.total_moves_attempted(), 90u);
  EXPECT_EQ(t.total_moves_accepted(), 70u);
  EXPECT_EQ(t.max_rollback_depth(), 20u);
  EXPECT_EQ(t.total_audits(), 2u);
  EXPECT_EQ(t.total_resyncs(), 7u);
  EXPECT_DOUBLE_EQ(t.max_gain_drift(), 0.5);
  EXPECT_EQ(t.total_ops().inserts, 11u);
  EXPECT_EQ(t.total_ops().erases, 22u);
  EXPECT_EQ(t.total_ops().updates, 33u);
  EXPECT_EQ(t.total_ops().total(), 66u);
}

TEST(RefineTelemetry, JsonContainsEveryField) {
  RefineTelemetry t;
  PassStats& s = t.begin_pass(12.0);
  s.cut_after = 9.0;
  s.moves_attempted = 5;
  s.moves_accepted = 3;
  s.best_prefix_gain = 3.0;
  const std::string json = to_json(t);
  for (const char* key :
       {"\"pass\":0", "\"cut_before\":12", "\"cut_after\":9",
        "\"moves_attempted\":5", "\"moves_accepted\":3", "\"rollback_depth\":2",
        "\"best_prefix_gain\":3", "\"wall_seconds\":", "\"cpu_seconds\":",
        "\"container_ops\":", "\"inserts\":", "\"audits\":0", "\"resyncs\":0",
        "\"max_gain_drift\":0"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " missing: " << json;
  }
}

/// Refine-level wiring: a telemetry pointer in the config records one
/// PassStats per executed pass, consistent with the refine outcome.
template <typename Refine, typename Config>
void expect_refine_records(Refine refine, Config config) {
  const Hypergraph g = testing::small_random_circuit(21);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(3);
  Partition part(g, random_balanced_sides(g, balance, rng));
  const double initial = part.cut_cost();

  RefineTelemetry telemetry;
  config.telemetry = &telemetry;
  const RefineOutcome out = refine(part, balance, config);

  ASSERT_EQ(telemetry.passes.size(), static_cast<std::size_t>(out.passes));
  EXPECT_DOUBLE_EQ(telemetry.passes.front().cut_before, initial);
  EXPECT_DOUBLE_EQ(telemetry.passes.back().cut_after, out.cut_cost);
  for (const PassStats& s : telemetry.passes) {
    EXPECT_LE(s.cut_after, s.cut_before);  // a pass never accepts a loss
    EXPECT_LE(s.moves_accepted, s.moves_attempted);
    EXPECT_NEAR(s.cut_before - s.cut_after, s.best_prefix_gain, 1e-9);
    EXPECT_GE(s.wall_seconds, 0.0);
    EXPECT_GE(s.cpu_seconds, 0.0);
    EXPECT_GT(s.ops.inserts, 0u);
    EXPECT_EQ(s.ops.erases, s.moves_attempted);
  }
  // Convergence: the final pass accepted nothing.
  EXPECT_EQ(telemetry.passes.back().moves_accepted, 0u);
}

TEST(RefineTelemetry, FmPassTrajectoryIsConsistent) {
  expect_refine_records(
      [](Partition& p, const BalanceConstraint& b, const FmConfig& c) {
        return fm_refine(p, b, c);
      },
      FmConfig{});
  expect_refine_records(
      [](Partition& p, const BalanceConstraint& b, const FmConfig& c) {
        return fm_refine(p, b, c);
      },
      FmConfig{FmStructure::kTree});
}

TEST(RefineTelemetry, LaPassTrajectoryIsConsistent) {
  expect_refine_records(
      [](Partition& p, const BalanceConstraint& b, const LaConfig& c) {
        return la_refine(p, b, c);
      },
      LaConfig{});
}

TEST(RefineTelemetry, PropPassTrajectoryIsConsistent) {
  expect_refine_records(
      [](Partition& p, const BalanceConstraint& b, const PropConfig& c) {
        return prop_refine(p, b, c);
      },
      PropConfig{});
}

TEST(RefineTelemetry, DisabledPointerRecordsNothingAndMatchesResult) {
  // The telemetry-enabled and telemetry-disabled paths must take identical
  // decisions: telemetry observes, never steers.
  const Hypergraph g = testing::small_random_circuit(23);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  PropPartitioner plain;
  PropPartitioner instrumented;
  RefineTelemetry telemetry;
  instrumented.attach_telemetry(&telemetry);
  const PartitionResult a = plain.run(g, balance, 11);
  const PartitionResult b = instrumented.run(g, balance, 11);
  EXPECT_EQ(a.side, b.side);
  EXPECT_FALSE(telemetry.passes.empty());
}

TEST(RunMany, CollectsOneRunTelemetryPerRun) {
  const Hypergraph g = testing::small_random_circuit(25);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner fm;
  RunnerOptions options;
  options.collect_telemetry = true;
  const MultiRunResult r = run_many(fm, g, balance, 4, 9, options);

  ASSERT_EQ(r.telemetry.size(), 4u);
  for (std::size_t i = 0; i < r.telemetry.size(); ++i) {
    EXPECT_DOUBLE_EQ(r.telemetry[i].cut, r.cuts[i]);
    EXPECT_FALSE(r.telemetry[i].refine.passes.empty());
    EXPECT_DOUBLE_EQ(r.telemetry[i].refine.passes.back().cut_after, r.cuts[i]);
  }
  EXPECT_GT(r.total_passes(), 0u);
  EXPECT_GT(r.total_moves_attempted(), 0u);
  // Seeds differ per run.
  EXPECT_NE(r.telemetry[0].seed, r.telemetry[1].seed);
}

TEST(RunMany, DefaultCollectsNothing) {
  const Hypergraph g = testing::small_random_circuit(25);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner fm;
  const MultiRunResult r = run_many(fm, g, balance, 2, 9);
  EXPECT_TRUE(r.telemetry.empty());
  EXPECT_EQ(r.total_passes(), 0u);
}

TEST(RunMany, ConstructiveMethodsRecordNoTelemetry) {
  const Hypergraph g = testing::small_random_circuit(27);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  Eig1Partitioner eig1;
  RunnerOptions options;
  options.collect_telemetry = true;
  const MultiRunResult r = run_many(eig1, g, balance, 2, 9, options);
  EXPECT_TRUE(r.telemetry.empty());
}

TEST(RunMany, StatsJsonDumpIsWellFormed) {
  const Hypergraph g = testing::small_random_circuit(29);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  PropPartitioner prop_algo;
  RunnerOptions options;
  options.collect_telemetry = true;
  const MultiRunResult r = run_many(prop_algo, g, balance, 2, 5, options);

  std::ostringstream out;
  write_stats_json(out, g.name(), prop_algo.name(), r);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"circuit\":\"small\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"algo\":\"PROP\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\":["), std::string::npos);
  // Braces and brackets balance (cheap structural well-formedness check).
  int depth = 0;
  for (const char c : json) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

}  // namespace
}  // namespace prop
