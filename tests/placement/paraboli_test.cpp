#include "placement/paraboli.h"

#include <gtest/gtest.h>

#include "partition/validate.h"
#include "testutil.h"

namespace prop {
namespace {

TEST(Paraboli, SeparatesTwoBlocks) {
  const Hypergraph g = testing::chain_of_blocks(2, 10);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  ParaboliPartitioner paraboli;
  const PartitionResult r = paraboli.run(g, balance, 1);
  EXPECT_DOUBLE_EQ(r.cut_cost, 1.0);
  EXPECT_TRUE(validate_result(g, balance, r).ok);
}

TEST(Paraboli, ValidOnRandomCircuit) {
  const Hypergraph g = testing::small_random_circuit(113);
  for (const auto& balance : {BalanceConstraint::fifty_fifty(g),
                              BalanceConstraint::forty_five(g)}) {
    ParaboliPartitioner paraboli;
    const PartitionResult r = paraboli.run(g, balance, 2);
    const ValidationReport report = validate_result(g, balance, r);
    EXPECT_TRUE(report.ok) << report.message;
  }
}

TEST(Paraboli, DeterministicInSeed) {
  const Hypergraph g = testing::small_random_circuit(115);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  ParaboliPartitioner paraboli;
  EXPECT_EQ(paraboli.run(g, balance, 6).side, paraboli.run(g, balance, 6).side);
}

TEST(Paraboli, MoreIterationsStillValid) {
  const Hypergraph g = testing::chain_of_blocks(4, 8);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  ParaboliConfig config;
  config.iterations = 6;
  ParaboliPartitioner paraboli(config);
  const PartitionResult r = paraboli.run(g, balance, 3);
  EXPECT_TRUE(validate_result(g, balance, r).ok);
  EXPECT_LE(r.cut_cost, 2.0);
}

}  // namespace
}  // namespace prop
