#include "placement/quadratic_placer.h"

#include <gtest/gtest.h>

#include "hypergraph/builder.h"
#include "testutil.h"

namespace prop {
namespace {

TEST(QuadraticPlacer, ChainSpreadsBetweenAnchors) {
  // Path 0-1-2-3-4 with ends anchored at 0 and 1: the minimizer is the
  // linear ramp 0, 1/4, 1/2, 3/4, 1 (for strong anchors, approximately).
  HypergraphBuilder b(5);
  for (NodeId u = 0; u + 1 < 5; ++u) b.add_net({u, u + 1});
  const Hypergraph g = std::move(b).build();
  QuadraticPlacer placer(g);
  std::vector<double> x(5, 0.5);
  const CgResult r = placer.solve(
      {{0, 0.0, 1000.0}, {4, 1.0, 1000.0}}, x);
  EXPECT_TRUE(r.converged);
  for (int i = 0; i < 5; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)], i / 4.0, 1e-2) << i;
  }
}

TEST(QuadraticPlacer, MonotoneAlongChain) {
  HypergraphBuilder b(10);
  for (NodeId u = 0; u + 1 < 10; ++u) b.add_net({u, u + 1});
  const Hypergraph g = std::move(b).build();
  QuadraticPlacer placer(g);
  std::vector<double> x(10, 0.5);
  placer.solve({{0, 0.0, 10.0}, {9, 1.0, 10.0}}, x);
  for (int i = 0; i + 1 < 10; ++i) {
    EXPECT_LT(x[static_cast<std::size_t>(i)], x[static_cast<std::size_t>(i + 1)]);
  }
}

TEST(QuadraticPlacer, RequiresAnchors) {
  const Hypergraph g = testing::chain_of_blocks(2, 4);
  QuadraticPlacer placer(g);
  std::vector<double> x;
  EXPECT_THROW(placer.solve({}, x), std::invalid_argument);
}

TEST(QuadraticPlacer, RejectsBadAnchor) {
  const Hypergraph g = testing::chain_of_blocks(2, 4);
  QuadraticPlacer placer(g);
  std::vector<double> x;
  EXPECT_THROW(placer.solve({{999, 0.0, 1.0}}, x), std::out_of_range);
  EXPECT_THROW(placer.solve({{0, 0.0, -1.0}}, x), std::invalid_argument);
}

TEST(QuadraticPlacer, AnchoredNodePulledToTarget) {
  const Hypergraph g = testing::chain_of_blocks(2, 5);
  QuadraticPlacer placer(g);
  std::vector<double> x(g.num_nodes(), 0.0);
  placer.solve({{0, 0.25, 10000.0}}, x);
  EXPECT_NEAR(x[0], 0.25, 1e-3);
}

}  // namespace
}  // namespace prop
