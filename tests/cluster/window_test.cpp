#include "cluster/window.h"

#include <gtest/gtest.h>

#include "partition/validate.h"
#include "testutil.h"

namespace prop {
namespace {

TEST(Window, SeparatesPlantedBlocks) {
  const Hypergraph g = testing::chain_of_blocks(8, 8);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  WindowPartitioner window;
  const PartitionResult r = window.run(g, balance, 1);
  EXPECT_LE(r.cut_cost, 2.0);
  EXPECT_TRUE(validate_result(g, balance, r).ok);
}

TEST(Window, ValidOnRandomCircuit) {
  const Hypergraph g = testing::small_random_circuit(131);
  for (const auto& balance : {BalanceConstraint::fifty_fifty(g),
                              BalanceConstraint::forty_five(g)}) {
    WindowPartitioner window;
    const PartitionResult r = window.run(g, balance, 2);
    const ValidationReport report = validate_result(g, balance, r);
    EXPECT_TRUE(report.ok) << report.message;
  }
}

TEST(Window, DeterministicInSeed) {
  const Hypergraph g = testing::small_random_circuit(133);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  WindowPartitioner window;
  EXPECT_EQ(window.run(g, balance, 5).side, window.run(g, balance, 5).side);
}

TEST(Window, SmallClusterCapStillValid) {
  const Hypergraph g = testing::small_random_circuit(137);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  WindowConfig config;
  config.max_cluster_size = 2;
  WindowPartitioner window(config);
  const PartitionResult r = window.run(g, balance, 3);
  EXPECT_TRUE(validate_result(g, balance, r).ok);
}

TEST(Window, FewerCoarseRunsStillValid) {
  const Hypergraph g = testing::small_random_circuit(139);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  WindowConfig config;
  config.coarse_runs = 1;
  WindowPartitioner window(config);
  const PartitionResult r = window.run(g, balance, 4);
  EXPECT_TRUE(validate_result(g, balance, r).ok);
}

TEST(Window, PassesReportActualRefinementPasses) {
  const Hypergraph g = testing::small_random_circuit(141);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  WindowConfig config;
  config.fm.max_passes = 1;
  WindowPartitioner window(config);
  const PartitionResult r = window.run(g, balance, 6);
  // Exactly one capped coarse pass plus one capped flat pass.  The pre-fix
  // code counted improving coarse *runs* instead of the best run's passes,
  // so the reported total tracked the multi-start trajectory rather than
  // the refinement work actually done.
  EXPECT_EQ(r.passes, 2);
}

}  // namespace
}  // namespace prop
