#include "cluster/ordering.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "hypergraph/builder.h"
#include "testutil.h"

namespace prop {
namespace {

TEST(Ordering, IsAPermutation) {
  const Hypergraph g = testing::small_random_circuit(121);
  Rng rng(1);
  const OrderingResult r = window_ordering(g, 10, rng);
  ASSERT_EQ(r.order.size(), g.num_nodes());
  ASSERT_EQ(r.attraction.size(), g.num_nodes());
  std::vector<NodeId> sorted = r.order;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_EQ(sorted[u], u);
}

TEST(Ordering, KeepsBlocksContiguous) {
  // Two dense blocks joined by a single bridge: the ordering must finish
  // one block before crossing the bridge.
  const Hypergraph g = testing::chain_of_blocks(2, 10);
  Rng rng(2);
  const OrderingResult r = window_ordering(g, 5, rng);
  std::vector<int> block_of(20);
  for (int u = 0; u < 20; ++u) block_of[static_cast<std::size_t>(u)] = u / 10;
  int switches = 0;
  for (std::size_t i = 0; i + 1 < r.order.size(); ++i) {
    if (block_of[r.order[i]] != block_of[r.order[i + 1]]) ++switches;
  }
  EXPECT_EQ(switches, 1);
}

TEST(Ordering, SeedAttractionIsZero) {
  const Hypergraph g = testing::small_random_circuit(123);
  Rng rng(3);
  const OrderingResult r = window_ordering(g, 8, rng);
  EXPECT_DOUBLE_EQ(r.attraction[0], 0.0);
  // Later nodes in a connected circuit should mostly attach positively.
  const double positive = static_cast<double>(
      std::count_if(r.attraction.begin(), r.attraction.end(),
                    [](double a) { return a > 0.0; }));
  EXPECT_GT(positive / static_cast<double>(r.attraction.size()), 0.5);
}

TEST(Ordering, UnboundedWindowWorks) {
  const Hypergraph g = testing::chain_of_blocks(3, 5);
  Rng rng(4);
  const OrderingResult r = window_ordering(g, 0, rng);
  EXPECT_EQ(r.order.size(), g.num_nodes());
}

TEST(Ordering, DeterministicInRng) {
  const Hypergraph g = testing::small_random_circuit(127);
  Rng r1(9);
  Rng r2(9);
  EXPECT_EQ(window_ordering(g, 10, r1).order, window_ordering(g, 10, r2).order);
}

}  // namespace
}  // namespace prop
