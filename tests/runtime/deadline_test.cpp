// Deadline / CancelToken unit tests.  Timing-sensitive behaviour is tested
// with already-expired or never-expiring deadlines so nothing here depends
// on scheduler latency.
#include "runtime/deadline.h"

#include <gtest/gtest.h>

#include "runtime/status.h"

namespace prop {
namespace {

TEST(Deadline, NeverIsUnlimited) {
  const Deadline d = Deadline::never();
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_TRUE(d.remaining_ms() > 1e18);
}

TEST(Deadline, NonPositiveBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::after_ms(0.0).expired());
  EXPECT_TRUE(Deadline::after_ms(-5.0).expired());
  EXPECT_EQ(Deadline::after_ms(0.0).remaining_ms(), 0.0);
}

TEST(Deadline, GenerousBudgetNotExpiredYet) {
  const Deadline d = Deadline::after_ms(60000.0);
  EXPECT_FALSE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining_ms(), 0.0);
}

TEST(CancelToken, DefaultNeverStops) {
  CancelToken token;
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(token.should_stop());
  EXPECT_FALSE(token.stop_requested());
  EXPECT_EQ(token.stop_code(), StatusCode::kOk);
}

TEST(CancelToken, CancelIsSticky) {
  CancelToken token;
  token.cancel();
  EXPECT_TRUE(token.should_stop());
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.stop_code(), StatusCode::kCancelled);
  // A later cancel with a different reason does not overwrite the first.
  token.cancel(StatusCode::kInjectedFault);
  EXPECT_EQ(token.stop_code(), StatusCode::kCancelled);
}

TEST(CancelToken, CancelReasonIsReported) {
  CancelToken token;
  token.cancel(StatusCode::kInjectedFault);
  EXPECT_EQ(token.stop_code(), StatusCode::kInjectedFault);
}

TEST(CancelToken, ExpiredDeadlineStopsWithinOneStride) {
  CancelToken token{Deadline::after_ms(0.0)};
  // The poll counter only consults the clock every kPollStride-th call, so
  // an expired deadline must be observed within one full stride.
  bool stopped = false;
  for (std::uint64_t i = 0; i < CancelToken::kPollStride; ++i) {
    if (token.should_stop()) {
      stopped = true;
      break;
    }
  }
  EXPECT_TRUE(stopped);
  EXPECT_EQ(token.stop_code(), StatusCode::kBudgetExhausted);
}

TEST(CancelToken, StopRequestedSeesExpiredDeadlineWithoutPolling) {
  const CancelToken token{Deadline::after_ms(0.0)};
  EXPECT_TRUE(token.stop_requested());
  EXPECT_EQ(token.stop_code(), StatusCode::kBudgetExhausted);
  EXPECT_EQ(token.polls(), 0u);
}

TEST(CancelToken, UnlimitedDeadlinePollIsCheap) {
  CancelToken token{Deadline::never()};
  for (int i = 0; i < 10 * 64; ++i) EXPECT_FALSE(token.should_stop());
  EXPECT_EQ(token.polls(), 10u * 64u);
}

TEST(Status, DescribeIncludesCodeAndMessage) {
  EXPECT_EQ(Status::success().describe(), "ok");
  const Status s =
      Status::failure(StatusCode::kBudgetExhausted, "deadline hit");
  EXPECT_EQ(s.describe(), "budget_exhausted: deadline hit");
  EXPECT_FALSE(s.ok());
}

TEST(Status, ToStringIsStableSnakeCase) {
  EXPECT_STREQ(to_string(StatusCode::kOk), "ok");
  EXPECT_STREQ(to_string(StatusCode::kBudgetExhausted), "budget_exhausted");
  EXPECT_STREQ(to_string(StatusCode::kCancelled), "cancelled");
  EXPECT_STREQ(to_string(StatusCode::kInjectedFault), "injected_fault");
  EXPECT_STREQ(to_string(StatusCode::kEigensolverStalled),
               "eigensolver_stalled");
  EXPECT_STREQ(to_string(StatusCode::kInvalidResult), "invalid_result");
  EXPECT_STREQ(to_string(StatusCode::kSkipped), "skipped");
  EXPECT_STREQ(to_string(StatusCode::kError), "error");
}

}  // namespace
}  // namespace prop
