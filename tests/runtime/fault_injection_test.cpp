// FaultInjector spec parsing and firing semantics.
#include "runtime/fault_injection.h"

#include <gtest/gtest.h>

#include <stdexcept>

namespace prop {
namespace {

TEST(FaultInjector, DefaultIsUnarmed) {
  FaultInjector inj;
  EXPECT_FALSE(inj.armed(FaultSite::kLanczosStall));
  EXPECT_FALSE(inj.should_fail(FaultSite::kLanczosStall));
  EXPECT_EQ(inj.query_count(FaultSite::kLanczosStall), 0u);
}

TEST(FaultInjector, EmptySpecArmsNothing) {
  FaultInjector inj("");
  for (int s = 0; s < kNumFaultSites; ++s) {
    EXPECT_FALSE(inj.armed(static_cast<FaultSite>(s)));
  }
}

TEST(FaultInjector, BareSiteFiresEveryQuery) {
  FaultInjector inj("lanczos-stall");
  EXPECT_TRUE(inj.armed(FaultSite::kLanczosStall));
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(inj.should_fail(FaultSite::kLanczosStall));
  EXPECT_EQ(inj.query_count(FaultSite::kLanczosStall), 5u);
  EXPECT_EQ(inj.fire_count(FaultSite::kLanczosStall), 5u);
  // Other sites stay unarmed.
  EXPECT_FALSE(inj.should_fail(FaultSite::kCgStall));
}

TEST(FaultInjector, OccurrenceFiresExactlyOnce) {
  FaultInjector inj("cancel-mid-pass@3");
  EXPECT_FALSE(inj.should_fail(FaultSite::kCancelMidPass));
  EXPECT_FALSE(inj.should_fail(FaultSite::kCancelMidPass));
  EXPECT_TRUE(inj.should_fail(FaultSite::kCancelMidPass));
  EXPECT_FALSE(inj.should_fail(FaultSite::kCancelMidPass));
  EXPECT_EQ(inj.fire_count(FaultSite::kCancelMidPass), 1u);
}

TEST(FaultInjector, CommaSeparatedEntriesArmIndependently) {
  FaultInjector inj("lanczos-stall,validate-fail@2,cg-stall");
  EXPECT_TRUE(inj.armed(FaultSite::kLanczosStall));
  EXPECT_TRUE(inj.armed(FaultSite::kValidateFail));
  EXPECT_TRUE(inj.armed(FaultSite::kCgStall));
  EXPECT_FALSE(inj.armed(FaultSite::kCancelMidPass));
  EXPECT_FALSE(inj.should_fail(FaultSite::kValidateFail));
  EXPECT_TRUE(inj.should_fail(FaultSite::kValidateFail));
}

TEST(FaultInjector, ProbabilityIsDeterministicPerSeed) {
  const auto fires = [](std::uint64_t seed) {
    FaultInjector inj("prop-drift~0.5", seed);
    std::uint64_t count = 0;
    for (int i = 0; i < 1000; ++i) {
      if (inj.should_fail(FaultSite::kPropDrift)) ++count;
    }
    return count;
  };
  EXPECT_EQ(fires(7), fires(7));  // same seed -> same firing pattern
  // ~0.5 should fire roughly half the time for any reasonable seed.
  const std::uint64_t n = fires(7);
  EXPECT_GT(n, 350u);
  EXPECT_LT(n, 650u);
}

TEST(FaultInjector, ZeroProbabilityNeverFires) {
  FaultInjector inj("prop-drift~0");
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(inj.should_fail(FaultSite::kPropDrift));
  EXPECT_EQ(inj.query_count(FaultSite::kPropDrift), 100u);
}

TEST(FaultInjector, RejectsUnknownSite) {
  EXPECT_THROW(FaultInjector("bogus-site"), std::invalid_argument);
  EXPECT_THROW(FaultInjector("lanczos-stall,nope@3"), std::invalid_argument);
}

TEST(FaultInjector, RejectsMalformedOccurrence) {
  EXPECT_THROW(FaultInjector("lanczos-stall@0"), std::invalid_argument);
  EXPECT_THROW(FaultInjector("lanczos-stall@-1"), std::invalid_argument);
  EXPECT_THROW(FaultInjector("lanczos-stall@abc"), std::invalid_argument);
  EXPECT_THROW(FaultInjector("lanczos-stall@"), std::invalid_argument);
}

TEST(FaultInjector, RejectsMalformedProbability) {
  EXPECT_THROW(FaultInjector("prop-drift~1.5"), std::invalid_argument);
  EXPECT_THROW(FaultInjector("prop-drift~-0.1"), std::invalid_argument);
  EXPECT_THROW(FaultInjector("prop-drift~x"), std::invalid_argument);
}

TEST(FaultInjector, SiteNamesRoundTrip) {
  EXPECT_STREQ(to_string(FaultSite::kLanczosStall), "lanczos-stall");
  EXPECT_STREQ(to_string(FaultSite::kCancelMidPass), "cancel-mid-pass");
  EXPECT_STREQ(to_string(FaultSite::kValidateFail), "validate-fail");
  EXPECT_STREQ(to_string(FaultSite::kPropDrift), "prop-drift");
  EXPECT_STREQ(to_string(FaultSite::kCgStall), "cg-stall");
}

}  // namespace
}  // namespace prop
