#include "linalg/csr_matrix.h"

#include <gtest/gtest.h>

namespace prop {
namespace {

TEST(CsrMatrix, BuildAndMultiply) {
  // [[2, 1], [1, 3]]
  const CsrMatrix m = CsrMatrix::from_triplets(
      2, {{0, 0, 2.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 3.0}});
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(m.nnz(), 4u);
  const std::vector<double> x = {1.0, 2.0};
  std::vector<double> y(2);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 4.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
}

TEST(CsrMatrix, SumsDuplicates) {
  const CsrMatrix m =
      CsrMatrix::from_triplets(2, {{0, 1, 1.0}, {0, 1, 2.5}, {1, 0, 3.5}});
  EXPECT_EQ(m.nnz(), 2u);
  const std::vector<double> x = {1.0, 1.0};
  std::vector<double> y(2);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.5);
  EXPECT_DOUBLE_EQ(y[1], 3.5);
}

TEST(CsrMatrix, Diagonal) {
  const CsrMatrix m = CsrMatrix::from_triplets(
      3, {{0, 0, 5.0}, {1, 2, 1.0}, {2, 2, -2.0}, {2, 2, 1.0}});
  const auto d = m.diagonal();
  EXPECT_DOUBLE_EQ(d[0], 5.0);
  EXPECT_DOUBLE_EQ(d[1], 0.0);
  EXPECT_DOUBLE_EQ(d[2], -1.0);
}

TEST(CsrMatrix, EmptyMatrix) {
  const CsrMatrix m = CsrMatrix::from_triplets(3, {});
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.nnz(), 0u);
  const std::vector<double> x = {1, 2, 3};
  std::vector<double> y(3, 99.0);
  m.multiply(x, y);
  for (const double v : y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(CsrMatrix, RejectsOutOfRange) {
  EXPECT_THROW(CsrMatrix::from_triplets(2, {{0, 2, 1.0}}), std::out_of_range);
  EXPECT_THROW(CsrMatrix::from_triplets(2, {{5, 0, 1.0}}), std::out_of_range);
}

TEST(CsrMatrix, RowAccess) {
  const CsrMatrix m =
      CsrMatrix::from_triplets(3, {{1, 0, 4.0}, {1, 2, 5.0}});
  EXPECT_EQ(m.row_cols(0).size(), 0u);
  ASSERT_EQ(m.row_cols(1).size(), 2u);
  EXPECT_EQ(m.row_cols(1)[0], 0u);
  EXPECT_EQ(m.row_cols(1)[1], 2u);
  EXPECT_DOUBLE_EQ(m.row_values(1)[1], 5.0);
}

}  // namespace
}  // namespace prop
