#include "linalg/cg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/vector_ops.h"
#include "util/rng.h"

namespace prop {
namespace {

TEST(Cg, SolvesSmallSpdSystem) {
  // A = [[4, 1], [1, 3]], b = [1, 2] -> x = [1/11, 7/11].
  const CsrMatrix a = CsrMatrix::from_triplets(
      2, {{0, 0, 4.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 3.0}});
  const std::vector<double> b = {1.0, 2.0};
  std::vector<double> x(2, 0.0);
  const CgResult r = conjugate_gradient(a, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_NEAR(x[0], 1.0 / 11.0, 1e-7);
  EXPECT_NEAR(x[1], 7.0 / 11.0, 1e-7);
}

TEST(Cg, SolvesRandomDiagonallyDominantSystem) {
  constexpr std::uint32_t n = 100;
  Rng rng(5);
  std::vector<Triplet> t;
  for (std::uint32_t i = 0; i < n; ++i) {
    t.push_back({i, i, 10.0 + rng.uniform()});
    const std::uint32_t j = static_cast<std::uint32_t>(rng.bounded(n));
    if (j != i) {
      const double v = rng.uniform();
      t.push_back({i, j, v});
      t.push_back({j, i, v});
    }
  }
  const CsrMatrix a = CsrMatrix::from_triplets(n, std::move(t));
  std::vector<double> x_true(n);
  for (auto& v : x_true) v = rng.uniform() - 0.5;
  std::vector<double> b(n);
  a.multiply(x_true, b);

  std::vector<double> x(n, 0.0);
  const CgResult r = conjugate_gradient(a, b, x);
  EXPECT_TRUE(r.converged);
  for (std::uint32_t i = 0; i < n; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-5);
}

TEST(Cg, ZeroRhsGivesZeroSolution) {
  const CsrMatrix a = CsrMatrix::from_triplets(2, {{0, 0, 1.0}, {1, 1, 1.0}});
  const std::vector<double> b = {0.0, 0.0};
  std::vector<double> x = {5.0, -3.0};
  const CgResult r = conjugate_gradient(a, b, x);
  EXPECT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
}

TEST(Cg, WarmStartConvergesFaster) {
  const CsrMatrix a = CsrMatrix::from_triplets(
      2, {{0, 0, 4.0}, {0, 1, 1.0}, {1, 0, 1.0}, {1, 1, 3.0}});
  const std::vector<double> b = {1.0, 2.0};
  std::vector<double> cold(2, 0.0);
  const CgResult cold_r = conjugate_gradient(a, b, cold);
  std::vector<double> warm = cold;  // exact solution as the start
  const CgResult warm_r = conjugate_gradient(a, b, warm);
  EXPECT_LE(warm_r.iterations, cold_r.iterations);
}

TEST(Cg, DimensionMismatchThrows) {
  const CsrMatrix a = CsrMatrix::from_triplets(2, {{0, 0, 1.0}});
  std::vector<double> x(2, 0.0);
  const std::vector<double> b_bad = {1.0};
  EXPECT_THROW(conjugate_gradient(a, b_bad, x), std::invalid_argument);
}

TEST(VectorOps, Basics) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  const std::vector<double> b = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(norm2(a), std::sqrt(14.0));
  std::vector<double> y = {1.0, 1.0, 1.0};
  axpy(2.0, a, y);
  EXPECT_DOUBLE_EQ(y[1], 5.0);
  scale(y, 0.5);
  EXPECT_DOUBLE_EQ(y[1], 2.5);
}

TEST(VectorOps, ProjectOutMakesOrthogonal) {
  std::vector<double> v = {3.0, 4.0, 5.0};
  const std::vector<double> u = {1.0, 1.0, 1.0};
  project_out(v, u);
  EXPECT_NEAR(dot(v, u), 0.0, 1e-12);
}

TEST(VectorOps, NormalizeUnitLength) {
  std::vector<double> v = {3.0, 4.0};
  const double n = normalize(v);
  EXPECT_DOUBLE_EQ(n, 5.0);
  EXPECT_NEAR(norm2(v), 1.0, 1e-12);
  std::vector<double> zero = {0.0, 0.0};
  EXPECT_DOUBLE_EQ(normalize(zero), 0.0);
}

}  // namespace
}  // namespace prop
