#include "linalg/lanczos.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "linalg/vector_ops.h"

namespace prop {
namespace {

/// Path-graph Laplacian P_n: eigenvalues 2 - 2 cos(pi k / n), k = 0..n-1.
CsrMatrix path_laplacian(std::uint32_t n) {
  std::vector<Triplet> t;
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    t.push_back({i, i, 1.0});
    t.push_back({i + 1, i + 1, 1.0});
    t.push_back({i, i + 1, -1.0});
    t.push_back({i + 1, i, -1.0});
  }
  return CsrMatrix::from_triplets(n, std::move(t));
}

TEST(TridiagonalEigen, TwoByTwo) {
  // [[2, 1], [1, 2]] -> eigenvalues 1, 3.
  std::vector<double> d = {2.0, 2.0};
  std::vector<double> e = {1.0, 0.0};
  std::vector<double> z;
  ASSERT_TRUE(tridiagonal_eigen(d, e, z));
  std::sort(d.begin(), d.end());
  EXPECT_NEAR(d[0], 1.0, 1e-12);
  EXPECT_NEAR(d[1], 3.0, 1e-12);
}

TEST(TridiagonalEigen, EigenvectorsSatisfyDefinition) {
  // T = tridiag(offdiag 1, diag 2): classic second-difference matrix.
  constexpr int n = 8;
  std::vector<double> d(n, 2.0);
  std::vector<double> e(n, 1.0);
  e[n - 1] = 0.0;
  std::vector<double> orig_d = d;
  std::vector<double> z;
  ASSERT_TRUE(tridiagonal_eigen(d, e, z));
  // For each eigenpair check T v = lambda v.
  for (int col = 0; col < n; ++col) {
    for (int row = 0; row < n; ++row) {
      double tv = orig_d[static_cast<std::size_t>(row)] *
                  z[static_cast<std::size_t>(row) * n + col];
      if (row > 0) tv += z[static_cast<std::size_t>(row - 1) * n + col];
      if (row + 1 < n) tv += z[static_cast<std::size_t>(row + 1) * n + col];
      EXPECT_NEAR(tv, d[static_cast<std::size_t>(col)] *
                          z[static_cast<std::size_t>(row) * n + col],
                  1e-9);
    }
  }
}

TEST(Lanczos, PathGraphFiedlerValue) {
  constexpr std::uint32_t n = 40;
  const CsrMatrix L = path_laplacian(n);
  Rng rng(1);
  const EigenResult r = smallest_eigenpairs(L, 2, rng);
  const double expected_fiedler =
      2.0 - 2.0 * std::cos(std::numbers::pi / static_cast<double>(n));
  EXPECT_NEAR(r.values[0], expected_fiedler, 1e-6);
}

TEST(Lanczos, FiedlerVectorIsMonotoneOnPath) {
  // The path's Fiedler vector is cos(pi (i + 1/2) / n): strictly monotone.
  constexpr std::uint32_t n = 30;
  const CsrMatrix L = path_laplacian(n);
  Rng rng(2);
  const EigenResult r = smallest_eigenpairs(L, 1, rng);
  const auto& v = r.vectors[0];
  const double dir = v[1] - v[0];
  for (std::uint32_t i = 0; i + 1 < n; ++i) {
    EXPECT_GT((v[i + 1] - v[i]) * dir, 0.0) << "position " << i;
  }
}

TEST(Lanczos, EigenvectorResidualSmall) {
  constexpr std::uint32_t n = 60;
  const CsrMatrix L = path_laplacian(n);
  Rng rng(3);
  const EigenResult r = smallest_eigenpairs(L, 3, rng);
  std::vector<double> lv(n);
  for (int j = 0; j < 3; ++j) {
    L.multiply(r.vectors[static_cast<std::size_t>(j)], lv);
    axpy(-r.values[static_cast<std::size_t>(j)],
         r.vectors[static_cast<std::size_t>(j)], lv);
    EXPECT_LT(norm2(lv), 1e-5) << "pair " << j;
  }
}

TEST(Lanczos, VectorsOrthogonalToOnesAndEachOther) {
  constexpr std::uint32_t n = 50;
  const CsrMatrix L = path_laplacian(n);
  Rng rng(4);
  const EigenResult r = smallest_eigenpairs(L, 3, rng);
  const std::vector<double> ones(n, 1.0);
  for (int j = 0; j < 3; ++j) {
    EXPECT_NEAR(dot(r.vectors[static_cast<std::size_t>(j)], ones), 0.0, 1e-6);
  }
  EXPECT_NEAR(dot(r.vectors[0], r.vectors[1]), 0.0, 1e-6);
  EXPECT_NEAR(dot(r.vectors[1], r.vectors[2]), 0.0, 1e-6);
}

TEST(Lanczos, DisconnectedGraphSecondZeroEigenvalue) {
  // Two disjoint edges: Laplacian eigenvalues {0, 0, 2, 2}; after deflating
  // the global constant, the smallest remaining eigenvalue is 0 (the
  // component indicator difference).
  std::vector<Triplet> t = {{0, 0, 1.0}, {1, 1, 1.0}, {0, 1, -1.0}, {1, 0, -1.0},
                            {2, 2, 1.0}, {3, 3, 1.0}, {2, 3, -1.0}, {3, 2, -1.0}};
  const CsrMatrix L = CsrMatrix::from_triplets(4, std::move(t));
  Rng rng(5);
  const EigenResult r = smallest_eigenpairs(L, 2, rng);
  EXPECT_NEAR(r.values[0], 0.0, 1e-8);
  EXPECT_NEAR(r.values[1], 2.0, 1e-6);
}

TEST(Lanczos, DeterministicInRngSeed) {
  const CsrMatrix L = path_laplacian(25);
  Rng r1(9);
  Rng r2(9);
  const EigenResult a = smallest_eigenpairs(L, 1, r1);
  const EigenResult b = smallest_eigenpairs(L, 1, r2);
  EXPECT_DOUBLE_EQ(a.values[0], b.values[0]);
  for (std::uint32_t i = 0; i < 25; ++i) {
    EXPECT_DOUBLE_EQ(a.vectors[0][i], b.vectors[0][i]);
  }
}

}  // namespace
}  // namespace prop
