// Shared helpers for the test suite.
#pragma once

#include <cstdint>
#include <vector>

#include "hypergraph/builder.h"
#include "hypergraph/generator.h"
#include "hypergraph/hypergraph.h"

namespace prop::testing {

/// Small planted-structure circuit for partitioner tests: `blocks` cliques
/// of `block_size` nodes (as 2-pin net rings plus one block-spanning net),
/// chained together by single 2-pin bridge nets.  The optimal bisection
/// cuts exactly one bridge net.
inline Hypergraph chain_of_blocks(int blocks, int block_size) {
  const NodeId n = static_cast<NodeId>(blocks * block_size);
  HypergraphBuilder b(n);
  b.set_name("chain_of_blocks");
  for (int k = 0; k < blocks; ++k) {
    const NodeId base = static_cast<NodeId>(k * block_size);
    std::vector<NodeId> all;
    for (int i = 0; i < block_size; ++i) {
      all.push_back(base + static_cast<NodeId>(i));
      b.add_net({base + static_cast<NodeId>(i),
                 base + static_cast<NodeId>((i + 1) % block_size)});
    }
    b.add_net(all);
    if (k + 1 < blocks) {
      b.add_net({static_cast<NodeId>(base + block_size - 1),
                 static_cast<NodeId>(base + block_size)});
    }
  }
  return std::move(b).build();
}

/// Medium random circuit for property tests.
inline Hypergraph small_random_circuit(std::uint64_t seed = 7,
                                       NodeId nodes = 200, NetId nets = 260,
                                       std::size_t pins = 800) {
  return generate_circuit({"small", nodes, nets, pins}, seed);
}

}  // namespace prop::testing
