// Weighted-net behaviour across the suite — the paper's timing-driven
// motivation requires partitioners to respect non-unit net costs.
#include <gtest/gtest.h>

#include "core/prop_partitioner.h"
#include "fm/fm_partitioner.h"
#include "hypergraph/builder.h"
#include "hypergraph/generator.h"
#include "partition/runner.h"
#include "partition/validate.h"
#include "timing/timing_graph.h"
#include "util/rng.h"

namespace prop {
namespace {

/// Ring of 12 nodes; the two nets crossing the natural halves have very
/// different costs, so a cost-aware partitioner must cut the two cheap ones
/// (rotating the split) rather than the expensive one.
Hypergraph weighted_ring() {
  HypergraphBuilder b(12);
  for (NodeId u = 0; u < 12; ++u) {
    const NodeId v = static_cast<NodeId>((u + 1) % 12);
    b.add_net({u, v}, u == 0 ? 10.0 : 1.0);  // net {0,1} is precious
  }
  return std::move(b).build();
}

TEST(WeightedNets, PropAvoidsExpensiveNet) {
  const Hypergraph g = weighted_ring();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  PropPartitioner prop_algo;
  const MultiRunResult r = run_many(prop_algo, g, balance, 10, 5);
  // Best balanced ring cuts sever two unit nets: cost 2.
  EXPECT_DOUBLE_EQ(r.best_cut(), 2.0);
}

TEST(WeightedNets, FmTreeAvoidsExpensiveNet) {
  const Hypergraph g = weighted_ring();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner fm({FmStructure::kTree});
  const MultiRunResult r = run_many(fm, g, balance, 10, 5);
  EXPECT_DOUBLE_EQ(r.best_cut(), 2.0);
}

TEST(WeightedNets, PropValidOnTimingWeightedCircuit) {
  const Hypergraph base =
      generate_circuit({"w", 300, 380, 1250}, 99);
  const TimingAnalysis sta = analyze_timing(base);
  const Hypergraph g = apply_timing_weights(base, sta, 3.0);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  PropPartitioner prop_algo;
  const PartitionResult r = prop_algo.run(g, balance, 11);
  const ValidationReport report = validate_result(g, balance, r);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(WeightedNets, TimingWeightsReduceCriticalCut) {
  // Statistical-shape test mirroring examples/timing_driven: over several
  // circuits, weighting must not increase the total critical-net cut.
  double plain_critical = 0.0;
  double weighted_critical = 0.0;
  for (std::uint64_t inst = 0; inst < 3; ++inst) {
    const Hypergraph base =
        generate_circuit({"tw", 250, 320, 1050}, 300 + inst);
    const TimingAnalysis sta = analyze_timing(base);
    const Hypergraph weighted = apply_timing_weights(base, sta, 5.0);

    PropPartitioner prop_algo;
    const BalanceConstraint b1 = BalanceConstraint::forty_five(base);
    const BalanceConstraint b2 = BalanceConstraint::forty_five(weighted);
    const auto plain = run_many(prop_algo, base, b1, 5, inst);
    const auto timed = run_many(prop_algo, weighted, b2, 5, inst);

    const auto critical_cut = [&](const std::vector<std::uint8_t>& side) {
      const Partition part(base, side);
      double c = 0.0;
      for (NetId n = 0; n < base.num_nets(); ++n) {
        if (part.is_cut(n) && sta.net_criticality(n) >= 0.9) c += 1.0;
      }
      return c;
    };
    plain_critical += critical_cut(plain.best.side);
    weighted_critical += critical_cut(timed.best.side);
  }
  EXPECT_LE(weighted_critical, plain_critical + 1.0);
}

}  // namespace
}  // namespace prop
