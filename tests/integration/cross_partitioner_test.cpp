// Cross-cutting integration tests: every partitioner in the suite against
// the same circuits, validating results and sanity-checking the quality
// ordering the paper's tables report.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/window.h"
#include "core/prop_partitioner.h"
#include "fm/fm_partitioner.h"
#include "hypergraph/mcnc_suite.h"
#include "la/la_partitioner.h"
#include "partition/runner.h"
#include "partition/validate.h"
#include "placement/paraboli.h"
#include "spectral/eig1.h"
#include "spectral/melo.h"
#include "testutil.h"

namespace prop {
namespace {

std::vector<std::unique_ptr<Bipartitioner>> all_partitioners() {
  std::vector<std::unique_ptr<Bipartitioner>> v;
  v.push_back(std::make_unique<FmPartitioner>(FmConfig{FmStructure::kBucket}));
  v.push_back(std::make_unique<FmPartitioner>(FmConfig{FmStructure::kTree}));
  v.push_back(std::make_unique<LaPartitioner>(LaConfig{2}));
  v.push_back(std::make_unique<LaPartitioner>(LaConfig{3}));
  v.push_back(std::make_unique<PropPartitioner>());
  v.push_back(std::make_unique<Eig1Partitioner>());
  v.push_back(std::make_unique<MeloPartitioner>());
  v.push_back(std::make_unique<ParaboliPartitioner>());
  v.push_back(std::make_unique<WindowPartitioner>());
  return v;
}

TEST(CrossPartitioner, AllValidOnGeneratedCircuit) {
  const Hypergraph g = testing::small_random_circuit(211, 300, 380, 1250);
  for (const auto& balance : {BalanceConstraint::fifty_fifty(g),
                              BalanceConstraint::forty_five(g)}) {
    for (const auto& p : all_partitioners()) {
      const PartitionResult r = p->run(g, balance, 17);
      const ValidationReport report = validate_result(g, balance, r);
      EXPECT_TRUE(report.ok) << p->name() << ": " << report.message;
    }
  }
}

TEST(CrossPartitioner, AllValidOnSmallestMcncStandIn) {
  const Hypergraph g = make_mcnc_circuit("balu");
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  for (const auto& p : all_partitioners()) {
    const PartitionResult r = p->run(g, balance, 23);
    const ValidationReport report = validate_result(g, balance, r);
    EXPECT_TRUE(report.ok) << p->name() << ": " << report.message;
    EXPECT_GT(r.cut_cost, 0.0) << p->name();
    EXPECT_LT(r.cut_cost, static_cast<double>(g.num_nets())) << p->name();
  }
}

TEST(CrossPartitioner, PropBeatsEig1OnStructuredCircuit) {
  // Table 3 shape: PROP (20 runs) clearly ahead of one-shot spectral.
  const Hypergraph g = make_mcnc_circuit("struct");
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  PropPartitioner prop_algo;
  Eig1Partitioner eig1;
  const double prop_cut = run_many(prop_algo, g, balance, 5, 3).best_cut();
  const double eig1_cut = eig1.run(g, balance, 3).cut_cost;
  EXPECT_LE(prop_cut, eig1_cut * 1.10 + 1.0);
}

TEST(CrossPartitioner, MultiStartOrderingFmFamily) {
  // Table 2 shape on one circuit: best-of-N cuts should not get worse as
  // the method gets smarter, modulo noise (allow generous slack).
  const Hypergraph g = make_mcnc_circuit("balu");
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner fm;
  LaPartitioner la2({2});
  PropPartitioner prop_algo;
  const double fm_cut = run_many(fm, g, balance, 8, 7).best_cut();
  const double la_cut = run_many(la2, g, balance, 8, 7).best_cut();
  const double prop_cut = run_many(prop_algo, g, balance, 8, 7).best_cut();
  EXPECT_LE(prop_cut, fm_cut * 1.15 + 2.0);
  EXPECT_LE(la_cut, fm_cut * 1.25 + 3.0);
}

TEST(CrossPartitioner, RunnerRecordsPerRunCuts) {
  const Hypergraph g = testing::small_random_circuit(223);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner fm;
  const MultiRunResult r = run_many(fm, g, balance, 6, 1);
  EXPECT_EQ(r.cuts.size(), 6u);
  for (const double c : r.cuts) EXPECT_GE(c, r.best_cut());
  EXPECT_GE(r.mean_cut(), r.best_cut());
  EXPECT_GE(r.total_seconds, 0.0);
}

}  // namespace
}  // namespace prop
