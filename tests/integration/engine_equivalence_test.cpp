// Engine-equivalence contract of the cached-product gain engine (DESIGN.md
// Sec. 4f): the cached engine must not change *what PROP computes*, only
// how fast it computes it.
//
// Exact trajectory equality is asserted through kShadow: a shadow run
// answers every gain query via the scratch code path (so its decisions are
// move-for-move those of a kScratch run) while maintaining the product
// cache and cross-checking it at every query.  Shadow == scratch on final
// sides and cut, with no cross-check throw, is therefore the statement
// "the cache stays within its audit tolerance through entire real runs on
// the reproduction circuits".  The cached *fast path* is compared on
// solution quality (its ulp-level differences feed back through the
// probability model chaotically, so per-run equality is not a meaningful
// contract — see DESIGN.md), and its PR 3 determinism contract (identical
// results for every --threads value) is re-asserted engine-specifically.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/prop_partitioner.h"
#include "hypergraph/mcnc_suite.h"
#include "partition/runner.h"
#include "partition/validate.h"

namespace prop {
namespace {

PropConfig config_for(GainEngine engine) {
  PropConfig config;
  config.gain_engine = engine;
  return config;
}

TEST(EngineEquivalence, ShadowReproducesScratchRunsExactly) {
  const std::vector<std::string> circuits = {"balu", "bm1", "p1", "t3"};
  for (const auto& name : circuits) {
    const Hypergraph g = make_mcnc_circuit(name);
    for (const bool fifty : {true, false}) {
      const BalanceConstraint balance = fifty
                                            ? BalanceConstraint::fifty_fifty(g)
                                            : BalanceConstraint::forty_five(g);
      for (const std::uint64_t seed : {3ULL, 19ULL}) {
        PropPartitioner scratch(config_for(GainEngine::kScratch));
        PropPartitioner shadow(config_for(GainEngine::kShadow));
        const PartitionResult a = scratch.run(g, balance, seed);
        // Any cache/scratch disagreement beyond kProductAuditTol inside the
        // shadow run throws std::logic_error out of run().
        const PartitionResult b = shadow.run(g, balance, seed);
        ASSERT_TRUE(a.valid());
        ASSERT_TRUE(b.valid());
        EXPECT_EQ(a.cut_cost, b.cut_cost)
            << name << " seed " << seed << (fifty ? " 50-50" : " 45-55");
        EXPECT_EQ(a.side, b.side)
            << name << " seed " << seed << (fifty ? " 50-50" : " 45-55");
        EXPECT_EQ(a.passes, b.passes) << name << " seed " << seed;
      }
    }
  }
}

TEST(EngineEquivalence, CachedMatchesScratchSolutionQuality) {
  // The fast path makes its own (equally valid) tie-breaks, so compare
  // best-of-N quality rather than per-run trajectories: over a multi-start
  // sweep the two engines must land within a few percent of each other.
  const std::vector<std::string> circuits = {"balu", "struct", "t3"};
  constexpr int kRuns = 8;
  for (const auto& name : circuits) {
    const Hypergraph g = make_mcnc_circuit(name);
    const BalanceConstraint balance = BalanceConstraint::forty_five(g);
    PropPartitioner cached(config_for(GainEngine::kCached));
    PropPartitioner scratch(config_for(GainEngine::kScratch));
    const MultiRunResult rc = run_many(cached, g, balance, kRuns, 5);
    const MultiRunResult rs = run_many(scratch, g, balance, kRuns, 5);
    ASSERT_TRUE(rc.best.valid());
    ASSERT_TRUE(rs.best.valid());
    const ValidationReport report = validate_result(g, balance, rc.best);
    EXPECT_TRUE(report.ok) << name << ": " << report.message;
    const double larger =
        rc.best.cut_cost > rs.best.cut_cost ? rc.best.cut_cost
                                            : rs.best.cut_cost;
    EXPECT_LE(rc.best.cut_cost, rs.best.cut_cost + 0.15 * larger + 2.0)
        << name << ": cached " << rc.best.cut_cost << " vs scratch "
        << rs.best.cut_cost;
  }
}

TEST(EngineEquivalence, CachedEngineDeterministicAcrossThreadCounts) {
  // PR 3 contract, re-pinned for the cached engine: run_many produces the
  // identical cut vector and best seed at every worker-thread count.
  const Hypergraph g = make_mcnc_circuit("struct");
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  PropPartitioner cached(config_for(GainEngine::kCached));
  RunnerOptions sequential;
  sequential.threads = 0;
  const MultiRunResult reference =
      run_many(cached, g, balance, 6, 9, sequential);
  for (const int threads : {1, 2, 4}) {
    RunnerOptions options;
    options.threads = threads;
    const MultiRunResult r = run_many(cached, g, balance, 6, 9, options);
    EXPECT_EQ(r.cuts, reference.cuts) << "threads=" << threads;
    EXPECT_EQ(r.best_seed, reference.best_seed) << "threads=" << threads;
    EXPECT_EQ(r.best.cut_cost, reference.best.cut_cost)
        << "threads=" << threads;
  }
}

}  // namespace
}  // namespace prop
