// Parameterized property sweep over every iterative-improvement refiner:
// the invariants that make a pass engine correct, checked for each
// (algorithm, circuit) combination.
//
//   * a refine call never increases the cut;
//   * the claimed cut matches a from-scratch recomputation;
//   * balance holds afterwards;
//   * refinement is idempotent at convergence (a second call gains ~0);
//   * results are deterministic given the same starting partition.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "core/prop_partitioner.h"
#include "fm/fm_partitioner.h"
#include "hypergraph/generator.h"
#include "kl/kl_partitioner.h"
#include "la/la_partitioner.h"
#include "partition/initial.h"
#include "testutil.h"
#include "util/rng.h"

namespace prop {
namespace {

using RefineFn = std::function<RefineOutcome(Partition&, const BalanceConstraint&)>;

struct RefinerCase {
  std::string name;
  RefineFn refine;
};

RefinerCase make_case(const std::string& name) {
  if (name == "fm_bucket") {
    return {name, [](Partition& p, const BalanceConstraint& b) {
              return fm_refine(p, b, {FmStructure::kBucket});
            }};
  }
  if (name == "fm_tree") {
    return {name, [](Partition& p, const BalanceConstraint& b) {
              return fm_refine(p, b, {FmStructure::kTree});
            }};
  }
  if (name == "la2") {
    return {name, [](Partition& p, const BalanceConstraint& b) {
              return la_refine(p, b, {2});
            }};
  }
  if (name == "la3") {
    return {name, [](Partition& p, const BalanceConstraint& b) {
              return la_refine(p, b, {3});
            }};
  }
  if (name == "kl") {
    return {name, [](Partition& p, const BalanceConstraint& b) {
              return kl_refine(p, b);
            }};
  }
  return {name, [](Partition& p, const BalanceConstraint& b) {
            return prop_refine(p, b);
          }};
}

class RefinerProperties
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
 protected:
  RefinerCase refiner() const { return make_case(std::get<0>(GetParam())); }
  std::uint64_t circuit_seed() const { return std::get<1>(GetParam()); }
};

INSTANTIATE_TEST_SUITE_P(
    AllRefinersTimesCircuits, RefinerProperties,
    ::testing::Combine(::testing::Values("fm_bucket", "fm_tree", "la2", "la3",
                                         "kl", "prop"),
                       ::testing::Values(1001, 1002, 1003)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_c" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(RefinerProperties, NeverIncreasesCutAndStaysBalancedAndConsistent) {
  const Hypergraph g = testing::small_random_circuit(circuit_seed());
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(circuit_seed());
  Partition part(g, random_balanced_sides(g, balance, rng));
  const double initial = part.cut_cost();

  const RefineOutcome out = refiner().refine(part, balance);
  EXPECT_LE(out.cut_cost, initial);
  EXPECT_NEAR(out.cut_cost, part.recompute_cut_cost(), 1e-9);
  EXPECT_TRUE(balance.feasible(part.side_size(0)));
  EXPECT_GE(out.passes, 1);
}

TEST_P(RefinerProperties, IdempotentAtConvergence) {
  const Hypergraph g = testing::small_random_circuit(circuit_seed());
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(circuit_seed() + 7);
  Partition part(g, random_balanced_sides(g, balance, rng));
  const RefinerCase r = refiner();
  const RefineOutcome first = r.refine(part, balance);
  const RefineOutcome second = r.refine(part, balance);
  // Converged means a second invocation finds (almost) nothing: PROP's
  // probabilistic selection may occasionally shave one more net, but never
  // regress.
  EXPECT_LE(second.cut_cost, first.cut_cost);
  EXPECT_GE(second.cut_cost, first.cut_cost - 3.0);
}

TEST_P(RefinerProperties, DeterministicFromSameStart) {
  const Hypergraph g = testing::small_random_circuit(circuit_seed());
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  Rng rng(circuit_seed() + 13);
  const auto start = random_balanced_sides(g, balance, rng);
  Partition a(g, start);
  Partition b(g, start);
  const RefinerCase r = refiner();
  const RefineOutcome oa = r.refine(a, balance);
  const RefineOutcome ob = r.refine(b, balance);
  EXPECT_DOUBLE_EQ(oa.cut_cost, ob.cut_cost);
  EXPECT_EQ(a.sides(), b.sides());
}

/// Generator sweep: exact spec adherence across a grid of shapes.
class GeneratorSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

INSTANTIATE_TEST_SUITE_P(
    Shapes, GeneratorSweep,
    ::testing::Values(std::make_tuple(100, 120, 400),
                      std::make_tuple(500, 400, 1400),
                      std::make_tuple(1000, 1300, 4500),
                      std::make_tuple(64, 200, 700),
                      std::make_tuple(2000, 2000, 7000)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_e" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(GeneratorSweep, ExactCountsNoIsolatedNodes) {
  const auto [n, e, pins] = GetParam();
  const CircuitSpec spec{"sweep", static_cast<NodeId>(n),
                         static_cast<NetId>(e), static_cast<std::size_t>(pins)};
  const Hypergraph g = generate_circuit(spec, 42);
  EXPECT_EQ(g.num_nodes(), static_cast<NodeId>(n));
  EXPECT_EQ(g.num_nets(), static_cast<NetId>(e));
  EXPECT_EQ(g.num_pins(), static_cast<std::size_t>(pins));
  for (NodeId u = 0; u < g.num_nodes(); ++u) EXPECT_GE(g.degree(u), 1u);
  for (NetId net = 0; net < g.num_nets(); ++net) EXPECT_GE(g.net_size(net), 2u);
}

}  // namespace
}  // namespace prop
