// End-to-end robustness: deadlines, fault injection and graceful
// degradation across the partitioner suite.  All deadline behaviour is
// exercised with pre-expired budgets or explicit cancellation, so nothing
// here depends on wall-clock timing.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "cluster/window.h"
#include "core/prop_partitioner.h"
#include "fm/fm_partitioner.h"
#include "hypergraph/builder.h"
#include "kl/kl_partitioner.h"
#include "la/la_partitioner.h"
#include "partition/runner.h"
#include "partition/validate.h"
#include "placement/paraboli.h"
#include "runtime/run_context.h"
#include "spectral/eig1.h"
#include "spectral/melo.h"
#include "testutil.h"

namespace prop {
namespace {

/// Bundles the objects a RunContext borrows, for one test scenario.
struct Harness {
  CancelToken cancel;
  FaultInjector injector;
  DegradationLog log;
  RunContext context;

  explicit Harness(const std::string& spec = {}, Deadline deadline = Deadline::never())
      : cancel(deadline), injector(spec) {
    context.cancel = &cancel;
    context.injector = &injector;
    context.degradations = &log;
  }
};

TEST(RuntimeRobustness, CancelledMidPassStillReturnsValidBalancedPartition) {
  const Hypergraph g = testing::small_random_circuit(31, 300, 380, 1250);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  std::vector<std::unique_ptr<Bipartitioner>> refiners;
  refiners.push_back(std::make_unique<FmPartitioner>());
  refiners.push_back(std::make_unique<LaPartitioner>(LaConfig{2}));
  refiners.push_back(std::make_unique<PropPartitioner>());
  for (const auto& p : refiners) {
    // Fire the injected cancellation a few dozen moves into the first pass.
    Harness h("cancel-mid-pass@40");
    const RunOutcome outcome = run_checked(*p, g, balance, 11, &h.context);
    ASSERT_TRUE(outcome.has_result()) << p->name();
    EXPECT_EQ(outcome.status.code, StatusCode::kInjectedFault) << p->name();
    const ValidationReport report = validate_result(g, balance, outcome.result);
    EXPECT_TRUE(report.ok) << p->name() << ": " << report.message;
  }
}

TEST(RuntimeRobustness, KlCancelledMidPassPreservesBalance) {
  // KL needs unit node sizes and equal halves; swaps preserve balance even
  // when the pass is cut short.
  const Hypergraph g = testing::chain_of_blocks(6, 10);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  KlPartitioner kl;
  Harness h("cancel-mid-pass@5");
  const RunOutcome outcome = run_checked(kl, g, balance, 3, &h.context);
  ASSERT_TRUE(outcome.has_result());
  const ValidationReport report = validate_result(g, balance, outcome.result);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(RuntimeRobustness, ExpiredBudgetStillYieldsOneBestEffortRun) {
  const Hypergraph g = testing::small_random_circuit(32);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  FmPartitioner fm;
  Harness h({}, Deadline::after_ms(0.0));
  RunnerOptions options;
  options.context = &h.context;
  const MultiRunResult r = run_many(fm, g, balance, 8, 5, options);
  // Run 0 is always attempted; the rest are skipped.
  EXPECT_EQ(r.runs_attempted(), 1);
  EXPECT_EQ(r.runs_requested, 8);
  EXPECT_EQ(r.status.code, StatusCode::kBudgetExhausted);
  ASSERT_TRUE(r.best.valid());
  const ValidationReport report = validate_result(g, balance, r.best);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(RuntimeRobustness, InjectedLanczosStallDegradesToRandomOrdering) {
  const Hypergraph g = testing::small_random_circuit(33);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  for (const bool melo : {false, true}) {
    std::unique_ptr<Bipartitioner> algo;
    if (melo) {
      algo = std::make_unique<MeloPartitioner>();
    } else {
      algo = std::make_unique<Eig1Partitioner>();
    }
    Harness h("lanczos-stall");
    const RunOutcome outcome = run_checked(*algo, g, balance, 7, &h.context);
    ASSERT_TRUE(outcome.has_result()) << algo->name();
    EXPECT_TRUE(outcome.ok()) << algo->name() << ": "
                              << outcome.status.describe();
    const ValidationReport report = validate_result(g, balance, outcome.result);
    EXPECT_TRUE(report.ok) << algo->name() << ": " << report.message;
    // The fallback must be on the record.
    ASSERT_FALSE(outcome.degradations.empty()) << algo->name();
    EXPECT_EQ(outcome.degradations.front().action, "random-order-fallback");
  }
}

TEST(RuntimeRobustness, InjectedCgStallStillYieldsValidParaboli) {
  const Hypergraph g = testing::small_random_circuit(34);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  ParaboliPartitioner paraboli;
  Harness h("cg-stall");
  const RunOutcome outcome = run_checked(paraboli, g, balance, 9, &h.context);
  ASSERT_TRUE(outcome.has_result());
  const ValidationReport report = validate_result(g, balance, outcome.result);
  EXPECT_TRUE(report.ok) << report.message;
}

TEST(RuntimeRobustness, PropDriftBlowupFallsBackToFm) {
  const Hypergraph g = testing::small_random_circuit(35);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  PropConfig config;
  config.max_emergency_resyncs = 2;
  PropPartitioner prop_algo(config);
  // Every PROP move reports a drift blowup: two emergency resyncs, then the
  // deterministic-FM fallback.
  Harness h("prop-drift");
  const RunOutcome outcome = run_checked(prop_algo, g, balance, 13, &h.context);
  ASSERT_TRUE(outcome.has_result());
  EXPECT_TRUE(outcome.ok()) << outcome.status.describe();
  const ValidationReport report = validate_result(g, balance, outcome.result);
  EXPECT_TRUE(report.ok) << report.message;
  bool saw_fallback = false;
  for (const DegradationEvent& e : outcome.degradations) {
    EXPECT_EQ(e.site, "prop.gain-drift");
    if (e.action == "fm-fallback") saw_fallback = true;
  }
  EXPECT_TRUE(saw_fallback);
}

TEST(RuntimeRobustness, PerRunFailureIsolation) {
  const Hypergraph g = testing::small_random_circuit(36);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  FmPartitioner fm;
  // Exactly the first run's validation fails; the remaining seeds run.
  Harness h("validate-fail@1");
  RunnerOptions options;
  options.context = &h.context;
  const MultiRunResult r = run_many(fm, g, balance, 4, 21, options);
  EXPECT_EQ(r.runs_attempted(), 4);
  EXPECT_EQ(r.runs_failed(), 1);
  EXPECT_TRUE(r.status.ok());
  ASSERT_EQ(r.records.size(), 4u);
  EXPECT_EQ(r.records[0].status.code, StatusCode::kInjectedFault);
  EXPECT_FALSE(r.records[0].produced_result());
  for (int i = 1; i < 4; ++i) {
    EXPECT_TRUE(r.records[i].status.ok()) << i;
    EXPECT_TRUE(r.records[i].produced_result()) << i;
  }
  EXPECT_EQ(r.cuts.size(), 3u);
  ASSERT_TRUE(r.best.valid());
  EXPECT_TRUE(validate_result(g, balance, r.best).ok);
}

TEST(RuntimeRobustness, AllRunsFailingThrows) {
  const Hypergraph g = testing::small_random_circuit(37);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  FmPartitioner fm;
  Harness h("validate-fail");  // every validation fails
  RunnerOptions options;
  options.context = &h.context;
  EXPECT_THROW(run_many(fm, g, balance, 3, 2, options), std::runtime_error);
}

TEST(RuntimeRobustness, ExceptionBecomesErrorStatus) {
  // KL requires unit node sizes; a weighted graph makes it throw, which
  // run_checked must convert into a kError outcome instead of propagating.
  HypergraphBuilder b(4);
  b.add_net({0, 1});
  b.add_net({2, 3});
  b.set_node_size(0, 3.0);
  const Hypergraph g = std::move(b).build();
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  KlPartitioner kl;
  const RunOutcome outcome = run_checked(kl, g, balance, 1);
  EXPECT_FALSE(outcome.has_result());
  EXPECT_EQ(outcome.status.code, StatusCode::kError);
  EXPECT_FALSE(outcome.status.message.empty());
}

TEST(RuntimeRobustness, StatsJsonCarriesOutcomeAndRecords) {
  const Hypergraph g = testing::small_random_circuit(38);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  FmPartitioner fm;
  Harness h("validate-fail@1");
  RunnerOptions options;
  options.context = &h.context;
  const MultiRunResult r = run_many(fm, g, balance, 3, 9, options);
  std::ostringstream out;
  write_stats_json(out, g.name(), fm.name(), r);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"outcome\":\"ok\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"runs_failed\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"outcome\":\"injected_fault\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"run_records\":["), std::string::npos) << json;
}

TEST(RuntimeRobustness, WindowRunsUnderInjectedMidPassCancel) {
  const Hypergraph g = testing::small_random_circuit(39);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  WindowPartitioner window;
  Harness h("cancel-mid-pass@30");
  const RunOutcome outcome = run_checked(window, g, balance, 3, &h.context);
  ASSERT_TRUE(outcome.has_result());
  EXPECT_TRUE(validate_result(g, balance, outcome.result).ok);
}

TEST(RuntimeRobustness, InertContextChangesNothing) {
  // Attaching a context with no deadline/injector must not perturb results:
  // same seed, same cut, with and without the context.
  const Hypergraph g = testing::small_random_circuit(40);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  FmPartitioner fm;
  const PartitionResult plain = fm.run(g, balance, 77);
  Harness h;
  const RunOutcome wrapped = run_checked(fm, g, balance, 77, &h.context);
  ASSERT_TRUE(wrapped.has_result());
  EXPECT_TRUE(wrapped.ok());
  EXPECT_EQ(wrapped.result.cut_cost, plain.cut_cost);
  EXPECT_EQ(wrapped.result.side, plain.side);
  EXPECT_TRUE(h.log.empty());
}

}  // namespace
}  // namespace prop
