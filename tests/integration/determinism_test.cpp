// Determinism and seed-independence guarantees across the whole suite —
// the property that makes EXPERIMENTS.md regenerable bit-for-bit.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/window.h"
#include "core/prop_partitioner.h"
#include "fm/fm_partitioner.h"
#include "hypergraph/mcnc_suite.h"
#include "kl/kl_partitioner.h"
#include "la/la_partitioner.h"
#include "partition/recursive.h"
#include "partition/runner.h"
#include "placement/paraboli.h"
#include "spectral/eig1.h"
#include "spectral/melo.h"
#include "testutil.h"

namespace prop {
namespace {

TEST(Determinism, SuiteGenerationIsReproducible) {
  const Hypergraph a = make_mcnc_circuit("t2");
  const Hypergraph b = make_mcnc_circuit("t2");
  ASSERT_EQ(a.num_pins(), b.num_pins());
  for (NetId n = 0; n < a.num_nets(); ++n) {
    const auto pa = a.pins_of(n);
    const auto pb = b.pins_of(n);
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) ASSERT_EQ(pa[i], pb[i]);
  }
}

TEST(Determinism, EveryPartitionerIsSeedDeterministic) {
  const Hypergraph g = testing::small_random_circuit(401);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  std::vector<std::unique_ptr<Bipartitioner>> algos;
  algos.push_back(std::make_unique<KlPartitioner>());
  algos.push_back(std::make_unique<FmPartitioner>());
  algos.push_back(std::make_unique<LaPartitioner>(LaConfig{2}));
  algos.push_back(std::make_unique<PropPartitioner>());
  algos.push_back(std::make_unique<Eig1Partitioner>());
  algos.push_back(std::make_unique<MeloPartitioner>());
  algos.push_back(std::make_unique<ParaboliPartitioner>());
  algos.push_back(std::make_unique<WindowPartitioner>());
  for (const auto& algo : algos) {
    const PartitionResult a = algo->run(g, balance, 77);
    const PartitionResult b = algo->run(g, balance, 77);
    EXPECT_EQ(a.side, b.side) << algo->name();
    EXPECT_DOUBLE_EQ(a.cut_cost, b.cut_cost) << algo->name();
  }
}

TEST(Determinism, RunManyIsReproducible) {
  const Hypergraph g = testing::small_random_circuit(403);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner fm;
  const MultiRunResult a = run_many(fm, g, balance, 8, 123);
  const MultiRunResult b = run_many(fm, g, balance, 8, 123);
  EXPECT_EQ(a.cuts, b.cuts);
  EXPECT_EQ(a.best.side, b.best.side);
}

TEST(Determinism, RunsUseDistinctSeeds) {
  // Different runs must explore different starts: on a random circuit the
  // per-run cuts should not all be identical.
  const Hypergraph g = testing::small_random_circuit(405);
  const BalanceConstraint balance = BalanceConstraint::fifty_fifty(g);
  FmPartitioner fm;
  const MultiRunResult r = run_many(fm, g, balance, 10, 7);
  bool any_diff = false;
  for (const double c : r.cuts) any_diff |= (c != r.cuts.front());
  EXPECT_TRUE(any_diff);
}

TEST(Determinism, RecursiveKWayReproducible) {
  const Hypergraph g = testing::small_random_circuit(407);
  PropPartitioner prop_algo;
  const KWayResult a = recursive_bisection(prop_algo, g, 5, 31);
  const KWayResult b = recursive_bisection(prop_algo, g, 5, 31);
  EXPECT_EQ(a.part, b.part);
}

}  // namespace
}  // namespace prop
