// K-way determinism guarantees (satellite of DESIGN.md §4j): the k-way
// pipeline inside run_many produces byte-identical part vectors and
// stats-json for ANY --threads value, for any --pass-threads >= 1 of the
// PROP bisector's round engine, and the multilevel k-way driver does the
// same — so EXPERIMENTS.md k-way sweeps are regenerable bit-for-bit no
// matter what parallelism they ran with.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/prop_partitioner.h"
#include "kway/kway_partitioner.h"
#include "multilevel/multilevel_kway.h"
#include "partition/runner.h"
#include "testutil.h"

namespace prop {
namespace {

std::unique_ptr<KWayPartitioner> make_pipeline(NodeId k,
                                               int pass_threads = 0) {
  PropConfig prop;
  prop.pass_threads = pass_threads;
  KWayPipelineConfig config;
  config.k = k;
  return std::make_unique<KWayPartitioner>(
      std::make_unique<PropPartitioner>(prop), config);
}

/// run_many + stats-json with timing excluded — the byte-identity surface.
struct Capture {
  MultiRunResult result;
  std::string stats;
};

Capture run_capture(Bipartitioner& algo, const Hypergraph& g, int runs,
                    std::uint64_t seed, int threads) {
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  RunnerOptions options;
  options.threads = threads;
  options.collect_telemetry = true;
  Capture c;
  c.result = run_many(algo, g, balance, runs, seed, options);
  std::ostringstream out;
  StatsJsonOptions json;
  json.include_timing = false;
  write_stats_json(out, g.name(), algo.name(), c.result, json);
  c.stats = out.str();
  return c;
}

TEST(KWayDeterminism, RunManyByteIdenticalAcrossThreadCounts) {
  const Hypergraph g = testing::small_random_circuit(601);
  const auto algo = make_pipeline(4);
  const Capture sequential = run_capture(*algo, g, 6, 19, 0);
  for (const int threads : {2, 4}) {
    const auto fresh = make_pipeline(4);
    const Capture parallel = run_capture(*fresh, g, 6, 19, threads);
    EXPECT_EQ(parallel.result.best.side, sequential.result.best.side)
        << threads << " threads";
    EXPECT_EQ(parallel.result.cuts, sequential.result.cuts);
    EXPECT_EQ(parallel.stats, sequential.stats) << threads << " threads";
  }
}

TEST(KWayDeterminism, RoundEnginePassThreadsByteIdentical) {
  // The PROP bisector's deterministic round engine guarantees identical
  // bytes for every pass_threads >= 1; that survives recursive bisection
  // plus both k-way refiners on top.
  const Hypergraph g = testing::small_random_circuit(607);
  const auto one = make_pipeline(4, 1);
  const Capture base = run_capture(*one, g, 4, 23, 0);
  for (const int pass_threads : {2, 4}) {
    const auto algo = make_pipeline(4, pass_threads);
    const Capture c = run_capture(*algo, g, 4, 23, 0);
    EXPECT_EQ(c.result.best.side, base.result.best.side)
        << pass_threads << " pass threads";
    EXPECT_EQ(c.stats, base.stats);
  }
}

TEST(KWayDeterminism, MultilevelByteIdenticalAcrossThreadCounts) {
  const Hypergraph g = testing::chain_of_blocks(16, 24);
  MultilevelKWayConfig config;
  config.k = 4;
  config.coarsest_max_nodes = 32;
  MultilevelKWayPartitioner algo(config);
  const Capture sequential = run_capture(algo, g, 4, 29, 0);
  for (const int threads : {2, 3}) {
    MultilevelKWayPartitioner fresh(config);
    const Capture parallel = run_capture(fresh, g, 4, 29, threads);
    EXPECT_EQ(parallel.result.best.side, sequential.result.best.side)
        << threads << " threads";
    EXPECT_EQ(parallel.stats, sequential.stats) << threads << " threads";
  }
}

TEST(KWayDeterminism, PipelineSeedDeterministicAndSeedSensitive) {
  const Hypergraph g = testing::small_random_circuit(613);
  const auto algo = make_pipeline(8);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  const PartitionResult a = algo->run(g, balance, 77);
  const PartitionResult b = algo->run(g, balance, 77);
  EXPECT_EQ(a.side, b.side);
  EXPECT_DOUBLE_EQ(a.cut_cost, b.cut_cost);
  // Different seeds must explore different starts on a random circuit.
  const MultiRunResult many = run_many(*algo, g, balance, 8, 7);
  bool any_diff = false;
  for (const double c : many.cuts) any_diff |= (c != many.cuts.front());
  EXPECT_TRUE(any_diff);
}

TEST(KWayDeterminism, CloneIsolatesWorkerState) {
  // run_many with threads clones the whole pipeline per worker; a clone
  // must behave exactly like its source and share no mutable state.
  const Hypergraph g = testing::small_random_circuit(617);
  const auto algo = make_pipeline(4);
  const auto copy = algo->clone();
  ASSERT_NE(copy, nullptr);
  const BalanceConstraint balance = BalanceConstraint::forty_five(g);
  const PartitionResult a = algo->run(g, balance, 31);
  const PartitionResult b = copy->run(g, balance, 31);
  EXPECT_EQ(a.side, b.side);
  EXPECT_EQ(copy->name(), algo->name());
}

}  // namespace
}  // namespace prop
